//! The Kepler register-bank story (Sections 3.3 and 5.4): measure the
//! throughput cost of operand bank conflicts, then solve the 6x6 SGEMM
//! register allocation so the main loop is conflict-free.
//!
//! ```sh
//! cargo run --release --example register_allocation
//! ```

use peakperf::arch::{register_bank, GpuConfig};
use peakperf::kernels::microbench::math::{measure_math, MathOp, MathPattern};
use peakperf::regalloc::{solve, AllocProblem, SgemmPlan, VReg};
use peakperf::sass::Reg;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let kepler = GpuConfig::gtx680();

    // The four banks, per the mapping reverse-engineered in Section 3.3.
    println!("register bank of R0..R9:");
    for r in 0..10u8 {
        print!("  R{r}={}", register_bank(r));
    }
    println!("\n");

    // Measure the cost of conflicts (Table 2 rows).
    println!("FFMA throughput vs operand banks (simulated GTX680):");
    for (b, c, label) in [
        (4u8, 5u8, "R1,R4,R5 on three banks"),
        (3, 5, "R1,R3 share odd0 (2-way)"),
        (3, 9, "R1,R3,R9 all odd0 (3-way)"),
    ] {
        let pattern = MathPattern {
            op: MathOp::Ffma,
            dst: Reg::r(0),
            a: Reg::r(1),
            b: Reg::r(b),
            c: Reg::r(c),
        };
        let t = measure_math(&kepler, &pattern)?;
        println!("  {:<28} {:>6.1} thread insts/cycle", label, t.throughput);
    }

    // The general solver: three FFMA sources on distinct banks, with an
    // LDS.64-aligned pair.
    let mut p = AllocProblem::new(5);
    p.require_wide(&[VReg(0), VReg(1)]); // an LDS.64 destination pair
    p.require_distinct_banks(&[VReg(0), VReg(2), VReg(3)]);
    p.require_distinct_banks(&[VReg(1), VReg(2), VReg(4)]);
    let assignment = solve(&p)?;
    println!("\nsmall allocation problem solved:");
    for v in 0..5 {
        let r = assignment[&VReg(v)];
        println!("  v{v} -> {r} ({})", r.bank());
    }

    // The full SGEMM plan (Figure 9).
    let naive = SgemmPlan::naive(6);
    let optimized = SgemmPlan::bank_optimized(6)?;
    let (nf, n2, n3) = naive.conflict_census();
    let (of, o2, o3) = optimized.conflict_census();
    println!("\n6x6 SGEMM main-loop FFMA conflicts (36 FFMAs per k-step):");
    println!("  naive sequential plan: {nf} free, {n2} 2-way, {n3} 3-way");
    println!("  bank-optimized plan:   {of} free, {o2} 2-way, {o3} 3-way");
    println!(
        "\npaper: the first Kepler version had 68.8% 2-way / 10.6% 3-way and ran \
         ~1100 GFLOPS;\nthe conflict-free version reached ~1300 GFLOPS (Section 5.4)"
    );
    Ok(())
}
