//! Quickstart: write a kernel in SASS-like assembly text, assemble it, run
//! it on the functional simulator, and disassemble the binary.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use peakperf::arch::Generation;
use peakperf::sass::{assemble, Module};
use peakperf::sim::{Gpu, LaunchConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A tiny kernel: out[tid] = a[tid] * a[tid] + tid.
    let source = r#"
.kernel square_plus_tid
.param a
.param out
S2R R0, SR_TID.X;            // R0 = tid
MOV R1, c[0x0][0x20];        // R1 = a
ISCADD R1, R0, R1, 0x2;      // R1 = a + 4*tid
LD R2, [R1];                 // R2 = a[tid]
FFMA R2, R2, R2, RZ;         // R2 = a[tid]^2
MOV R3, c[0x0][0x24];        // R3 = out
ISCADD R3, R0, R3, 0x2;
ST [R3], R2;
EXIT;
"#;
    let module = assemble(source, Generation::Fermi)?;
    let kernel = module.kernel("square_plus_tid").expect("kernel exists");
    println!(
        "assembled `{}`: {} instructions, {} registers",
        kernel.name,
        kernel.code.len(),
        kernel.num_regs
    );

    // Round-trip through the cubin-like binary container.
    let bytes = module.to_bytes()?;
    let back = Module::from_bytes(&bytes)?;
    assert_eq!(back, module);
    println!(
        "binary container: {} bytes, round-trips exactly",
        bytes.len()
    );

    // Run it on 64 threads.
    let mut gpu = Gpu::new(Generation::Fermi);
    let n = 64u32;
    let input: Vec<f32> = (0..n).map(|i| i as f32 / 2.0).collect();
    let a = gpu.memory_mut().alloc_f32(&input)?;
    let out = gpu.memory_mut().alloc_zeroed(n * 4)?;
    let stats = gpu.launch(kernel, LaunchConfig::linear(1, n), &[a, out])?;

    let result = gpu.memory().read_f32_slice(out, n as usize)?;
    for (i, v) in result.iter().enumerate().take(5) {
        println!("out[{i}] = {v}");
        assert_eq!(*v, (i as f32 / 2.0) * (i as f32 / 2.0));
    }
    println!("... all {n} values verified");
    println!("\nexecuted instruction mix:\n{}", stats.mix);

    // The disassembly is the canonical text form and re-assembles.
    println!("disassembly:\n{kernel}");
    Ok(())
}
