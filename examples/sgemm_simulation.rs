//! Build the register-blocked assembly SGEMM, verify it against the CPU
//! reference, and time it on the cycle-level simulator.
//!
//! ```sh
//! cargo run --release --example sgemm_simulation
//! ```

use peakperf::arch::GpuConfig;
use peakperf::bound::UpperBoundModel;
use peakperf::kernels::cpu;
use peakperf::kernels::matrix::Matrix;
use peakperf::kernels::sgemm::{
    build_preset, run_sgemm, upload_problem, Preset, SgemmProblem, Variant,
};
use peakperf::sim::timing::time_kernel;
use peakperf::sim::{GlobalMemory, Gpu};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let gpu_config = GpuConfig::gtx580();

    // --- Correctness: 192x192x64, all four variants -----------------------
    println!("verifying the generated kernels against the CPU reference...");
    for variant in Variant::ALL {
        let problem = SgemmProblem {
            variant,
            m: 192,
            n: 192,
            k: 64,
        };
        let build = build_preset(gpu_config.generation, &problem, Preset::AsmOpt)?;
        let (ar, ac) = problem.a_shape();
        let (br, bc) = problem.b_shape();
        let a = Matrix::random(ar, ac, 1);
        let b = Matrix::random(br, bc, 2);
        let c0 = Matrix::random(192, 192, 3);
        let (alpha, beta) = (0.75f32, -0.25f32);

        let mut gpu = Gpu::new(gpu_config.generation);
        let run = run_sgemm(&mut gpu, &build, &a, &b, &c0, alpha, beta)?;

        let mut c_ref = c0.data.clone();
        cpu::sgemm(
            variant,
            192,
            192,
            64,
            alpha,
            &a.data,
            problem.lda() as usize,
            &b.data,
            problem.ldb() as usize,
            beta,
            &mut c_ref,
            192,
        );
        let reference = Matrix {
            rows: 192,
            cols: 192,
            ld: 192,
            data: c_ref,
        };
        let diff = run.c.max_abs_diff(&reference);
        println!(
            "  {}: max |diff| = {diff:.2e} over {} executed warp instructions \
             ({:.1}% FFMA)",
            variant.name(),
            run.stats.warp_instructions,
            100.0 * run.stats.mix.fraction_prefix("FFMA"),
        );
        assert!(diff < 1e-3);
    }

    // --- Performance: 960^3 on the cycle-level engine ---------------------
    println!(
        "\ntiming SGEMM NN 960x960x960 on the simulated {}...",
        gpu_config.name
    );
    let problem = SgemmProblem::square(Variant::NN, 960);
    let bound = UpperBoundModel::new(&gpu_config).best_sgemm_bound();
    for preset in [Preset::AsmOpt, Preset::CublasLike, Preset::MagmaLike] {
        let build = build_preset(gpu_config.generation, &problem, preset)?;
        let mut memory = GlobalMemory::new();
        let (a, b, c) = upload_problem(&mut memory, &problem, 42)?;
        let timing = time_kernel(
            &gpu_config,
            &build.kernel,
            build.config,
            &[a, b, c, 1.0f32.to_bits(), 0.0f32.to_bits()],
            &mut memory,
            Some(problem.flops()),
        )?;
        println!(
            "  {:<12} {:>7.1} GFLOPS  ({:.1}% of peak, {:.1}% of the {:.0} GFLOPS bound)",
            preset.name(),
            timing.gflops,
            100.0 * timing.gflops / gpu_config.theoretical_peak_gflops(),
            100.0 * timing.gflops / bound.gflops,
            bound.gflops,
        );
    }
    println!(
        "\npaper reference on real silicon: ~74.2% of peak for the assembly \
         kernel, ~70% for CUBLAS 4.1"
    );
    Ok(())
}
