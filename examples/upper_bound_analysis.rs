//! Walk through the paper's performance upper-bound analysis (Section 4)
//! for SGEMM on the Fermi GTX580 and Kepler GTX680.
//!
//! ```sh
//! cargo run --example upper_bound_analysis
//! ```

use peakperf::arch::{GpuConfig, LdsWidth};
use peakperf::bound::{
    ffma_fraction, ffma_lds_ratio, max_blocking_factor, registers_detailed, sweep, SgemmConfig,
    UpperBoundModel,
};

fn main() {
    for gpu in [GpuConfig::gtx580(), GpuConfig::gtx680()] {
        println!("=== {} ({}) ===", gpu.name, gpu.generation);
        println!(
            "theoretical peak: {:.0} GFLOPS",
            gpu.theoretical_peak_gflops()
        );

        // Step 1 (Eq. 2/4): the 63-register encoding limit caps the
        // register blocking factor.
        let max_regs = gpu.generation.max_registers_per_thread();
        let br = max_blocking_factor(max_regs, 256, 16, LdsWidth::B64);
        println!("max registers/thread = {max_regs} -> max blocking factor BR = {br}");

        // Step 2 (Fig. 3): the blocking factor and LDS width set the FFMA
        // percentage of the main loop.
        for width in LdsWidth::ALL {
            println!(
                "  BR={br} with LDS{:<4} -> ratio {:>4}:1, {:>5.1}% FFMA",
                width.suffix(),
                ffma_lds_ratio(br, width),
                100.0 * ffma_fraction(br, width)
            );
        }

        // Step 3 (Eq. 6-9): combine with the measured throughput database.
        let model = UpperBoundModel::new(&gpu);
        for width in [LdsWidth::B64, LdsWidth::B128] {
            let cfg = SgemmConfig {
                br,
                tb: 256,
                l: 16,
                width,
            };
            if let Some(est) = model.sgemm_bound(&cfg) {
                println!(
                    "  bound with LDS{:<4}: {:.0} GFLOPS = {:.1}% of peak ({}; {} regs/thread)",
                    width.suffix(),
                    est.gflops,
                    100.0 * est.fraction_of_peak,
                    est.limited_by,
                    registers_detailed(&cfg),
                );
            }
        }

        // Step 4 (Sec. 5.5): the bound points an auto-tuner at the small
        // feasible region worth exploring.
        let best = &sweep(&model)[0];
        let c = best.estimate.config;
        println!(
            "best feasible configuration: BR={} TB={} L={} {:?} -> {:.0} GFLOPS \
             ({} blocks x {} threads per SM)\n",
            c.br, c.tb, c.l, c.width, best.estimate.gflops, best.blocks_per_sm, c.tb,
        );
    }

    println!(
        "paper reference: 82.5% of peak on GTX580; 54.6% (LDS.64) and 57.6% \
         (LDS.128) on GTX680"
    );
}
