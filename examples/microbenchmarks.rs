//! Run the assembly-level microbenchmark family of Sections 3-4: the
//! FFMA/LDS mixing curve (Figure 2) and the active-thread sweep
//! (Figure 4) on both simulated GPUs.
//!
//! ```sh
//! cargo run --release --example microbenchmarks
//! ```

use peakperf::arch::{GpuConfig, LdsWidth};
use peakperf::kernels::microbench::{mix, threads};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    for gpu in [GpuConfig::gtx580(), GpuConfig::gtx680()] {
        println!("=== {} ===", gpu.name);

        println!("FFMA:LDS.X mix (thread insts/cycle/SM), Figure 2:");
        println!("  ratio   LDS  LDS.64  LDS.128");
        for ratio in [0u32, 2, 4, 6, 12, 24] {
            let p32 = mix::measure_mix(&gpu, ratio, LdsWidth::B32)?;
            let p64 = mix::measure_mix(&gpu, ratio, LdsWidth::B64)?;
            let p128 = mix::measure_mix(&gpu, ratio, LdsWidth::B128)?;
            println!(
                "  {:>5} {:>5.1} {:>7.1} {:>8.1}",
                ratio, p32.throughput, p64.throughput, p128.throughput
            );
        }

        println!("active-thread sweep at 6:1 (Figure 4):");
        println!("  threads  dependent  independent");
        for t in [128u32, 256, 512, 1024, gpu.max_threads_per_sm] {
            let dep = threads::measure_threads(&gpu, threads::Dependence::Dependent, t)?;
            let ind = threads::measure_threads(&gpu, threads::Dependence::Independent, t)?;
            println!(
                "  {:>7} {:>10.1} {:>12.1}",
                t, dep.throughput, ind.throughput
            );
        }
        println!();
    }
    println!(
        "expected shapes: Fermi saturates near 32 by ~512 threads; Kepler needs \
         far more threads in the dependent case and tops out near its measured \
         ~122-132 issue limit (Sections 4.2-4.3)"
    );
    Ok(())
}
