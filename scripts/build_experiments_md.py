#!/usr/bin/env python3
"""Assemble EXPERIMENTS.md from the `reproduce all` output plus
per-experiment commentary. Run from the repository root:

    python3 scripts/build_experiments_md.py
"""

import re
from pathlib import Path

OUTPUT = Path("reproduce_output.txt")
TARGET = Path("EXPERIMENTS.md")

HEADER = """# EXPERIMENTS — paper vs. reproduction

Every table and figure of Lai & Seznec (CGO 2013), regenerated on the
simulated GPUs by `cargo run --release -p peakperf-bench --bin reproduce --
all` (quick mode; `--full` widens the size/ratio grids). The raw harness
output is committed as `reproduce_output.txt`.

**Reading guide.** The paper measured silicon; we measure a simulator whose
calibration constants *are* the paper's published measurements (DESIGN.md
S5). Microbenchmark-level results (Tables 1-2, Figures 2-4 and 9, the S4.5
bounds) therefore reproduce closely -- that is the closed loop the paper
itself relies on. Kernel-level results (Figures 5-8, "achieved") are
emergent: the SGEMM kernels are built, scheduled, and register-allocated by
this repository's own toolchain and run on the simulated microarchitecture,
so absolute GFLOPS are *our* numbers; the paper's relative claims are what
we verify. Quick mode caps `k` at 960 (steady-state GFLOPS are k-invariant
to within a few percent).

"""

# Commentary inserted after the section whose title contains the key.
COMMENTARY = {
    "Table 1": """**Match: exact.** Regenerated from the configuration database; every
cell equals the paper's Table 1 (the GT200 933-GFLOPS peak counts the
dual-issued MUL, 3 flops/SP/cycle).""",

    "Table 2": """**Match: within 6% on every row; all ratios preserved.** The claims —
conflict-free math at ~132 thread-insts/cycle, 2-way bank conflicts
halving it, 3-way cutting it to a third, the IMUL/IMAD quarter-rate path,
and the 3-way-conflicted IMAD at ~26.5 — all reproduce. Our values sit
~5% below the paper's because the measured loop carries its own branch
overhead (the paper's 8192-instruction unroll amortizes more).""",

    "Figure 2 — GTX580": """**Shape match.** All three widths saturate toward the 32 insts/cycle
issue limit as the FFMA share grows; LDS.128's curve is depressed by its
16-cycle pipe occupancy exactly as in the paper (crossing ~24.9 at 12:1,
paper: 24.5); the 6:1 LDS.64 point lands at 30.4 (paper: 30.4).""",

    "Figure 2 — GTX680": """**Shape match.** Kepler saturates toward its measured ~132 issue limit
(126.5 at 32:1); the 6:1 LDS.64 point lands at 121.0 (paper uses 122.4 in
its Section 4.5 arithmetic). LDS and LDS.64 overlay (same instruction
rate, half the data rate for 32-bit LDS) and LDS.128 catches up once the
ratio is high enough — the paper's "no penalty" observation.""",

    "Figure 3": """**Match: exact (analytical).** The paper's anchors at BR=6 — 75%,
85.7%, 92.3% — are the same closed-form values.""",

    "Figure 4 — GTX580": """**Shape match.** The dependent curve is within ~7% of saturation by 512
threads (the paper's observation verbatim), saturating at ~30 of the
32-wide issue limit.""",

    "Figure 4 — GTX680": """**Shape match.** Kepler keeps climbing far beyond 512 threads and the
dependent curve stays well under the independent one until >1024 threads
— the "increasing need for active threads" the paper demonstrates. It
saturates at ~119 (paper's curve: ~120).""",

    "Section 4.5": """**Match: exact.** All three headline bounds — 82.5% (Fermi LDS.64),
54.6% (Kepler LDS.64), 57.6% (Kepler LDS.128) — equal the paper's
Section 4.5 arithmetic, and both GPUs are SM-throughput-bound, not
memory-bound, as the paper concludes. The design-space sweep puts the
paper's configuration (BR=6, 256 threads, LDS.64/LDS.128) at the top,
which is the Section 5.5 claim that the bound analysis shrinks the
auto-tuning search space.""",

    "Figure 5": """**Relative claims preserved.** The assembly kernel beats the CUBLAS-like
build for all four variants on both GPUs; the gap is ~4-5% on Fermi
(paper: ~5% average) and much larger on Kepler (paper's Figure 5 shows
the same asymmetry). Absolute values are simulator GFLOPS at k=960.""",

    "Figure 6": """**Shape match.** Performance climbs with size as waves fill the GPU and
flattens past ~1920 with a mild sawtooth from partial waves; ordering
asm > cublas-like > magma-like holds at every size. Absolute plateau
~1128 GFLOPS vs the paper's ~1170 (we sit ~4% low; our kernel pays two
barriers per 16-step tile against a 1-warp-instruction/cycle issue
budget).""",

    "Figure 7": """**Shape match with a known deviation.** Ordering and saturation shape
hold (asm ~1230 vs baselines ~940). Two honest gaps against the paper's
~1300-1400: (1) our shared-memory padding (stride 98) costs one resident
block — 768 threads/SM instead of the paper's 1024 — and Figure 4 shows
Kepler is still latency-sensitive there; (2) the magma-like and
cublas-like builds nearly coincide because our L1 model absorbs most of
the 40-byte spill traffic at this occupancy.""",

    "Figure 8": """**Claim preserved.** The nvcc-like builds carry a substantial conflicted
fraction (24.8% vs the paper's ~30%), the naive first-version assembly is
the worst (40.7% vs the paper's 68.8+10.6%), and the optimized allocation
is near conflict-free (1.1% vs the paper's 1.2%) — the main loop is fully
clean; the residue is the epilogue, as in the paper.""",

    "Figure 9": """**Match.** The solver reproduces the paper's scheme: the A column
alternates even0/odd0, the B pair sits on even1/odd1, and all 36
main-loop FFMAs are conflict-free with the accumulators spread across the
four banks (the paper balances 9/bank; our solver lands 8/10/8/10, which
is equally conflict-free).""",

    "Section 5 —": """**Relative claims preserved.** Fermi: 71.3% of peak / 86.5% of the bound
(paper: 74.2% / ~90%) and a 1.04x edge over the CUBLAS-like baseline
(paper: ~5%). Kepler: 39.0% of peak / 67.7% of bound against the paper's
44.5% / 77.3% — the shortfall is dominated by the 768-vs-1024 resident
thread deficit discussed under Figure 7. On both GPUs the simulated
kernels respect the bound, as an upper bound must.""",

    "Ablation": """**Extension (not in the paper's evaluation).** Motivated by the paper's
K20X remark: raising the per-thread register limit lifts the Fermi-style
bound dramatically (more blocking) but barely moves Kepler — because
Kepler's limiter is issue throughput, not registers. This is the paper's
Section 6 conclusion, quantified.""",

    "automatic bank-conflict removal": """**Extension implementing the paper's Section 5.5 proposal.** A
semantics-preserving register renaming (solved by the same backtracking
allocator) removes every main-loop conflict from the naive-register
kernel and recovers the full bank-optimized performance — the paper did
this by hand (1100 -> 1300 GFLOPS); here a tool does it.""",

    "microbenchmark reference database": """**Extension implementing the paper's Section 5.5 proposal** ("a small
database of performance references"): the declarative microbenchmark
family, measured once per GPU and cached for use by auto-tuners. The
pure-component rows recover the Table 2 / Section 4.1 anchors; the
dependent mixes quantify what the SGEMM main loop can actually extract.""",
}


def main() -> None:
    text = OUTPUT.read_text()
    sections = re.split(r"(?m)^(?=## )", text)
    out = [HEADER]
    for section in sections:
        if not section.strip():
            continue
        title = section.splitlines()[0]
        out.append(section.rstrip() + "\n")
        for key, comment in COMMENTARY.items():
            if key in title:
                out.append("\n" + comment + "\n")
                break
        out.append("\n")
    TARGET.write_text("".join(out))
    print(f"wrote {TARGET} ({len(out)} blocks)")


if __name__ == "__main__":
    main()
