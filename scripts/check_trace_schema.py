#!/usr/bin/env python3
"""Validate `reproduce` JSON output against the checked-in schemas.

Usage:
    scripts/check_trace_schema.py --profile profile.json [--trace trace.json]
    scripts/check_trace_schema.py --bench bench.json
    scripts/check_trace_schema.py --hostprof hostprof.json
    scripts/check_trace_schema.py --service service.json
    scripts/check_trace_schema.py --servicetrace journal.json

Checks, for the peakperf-profile-v1 document:
  * required keys and their types (scripts/trace_schema.json);
  * the document's stall_kinds list matches the schema's, in order —
    adding a StallKind in the simulator without updating the schema (or
    reordering the serialization) fails CI;
  * per-profile invariant: the per-kind stall totals sum to
    stalled_cycles (the acceptance criterion of the observability layer).

For the Chrome trace: required top-level keys, event shape on a sample of
events, and that every stall event names a known stall kind.

For the peakperf-bench-v1 document (scripts/bench_schema.json):
  * required keys and their types, on the envelope and on every row;
  * per-row stall_cycles / stall_share keys match the schema's stall
    kinds;
  * full-suite coverage — every Table-2 row and all eight SGEMM
    GPU x variant rows must be present (the telemetry acceptance
    criterion), with unique row ids;
  * per-row invariant: pct_error is consistent with simulated vs paper.

For the peakperf-hostprof-v1 document (scripts/hostprof_schema.json):
  * required keys and their types, on the envelope and on every target;
  * the document's (and every target's) phase list matches the schema's,
    in order — adding a perfmon Phase without updating the schema fails
    CI, like a StallKind drift would;
  * per-target invariants: the per-phase wall shares sum to ~1.0, the
    idle-run histograms cover every stall kind plus `unattributed` and
    their run counts sum to idle_runs, skippable_cycles <= idle_cycles <=
    cycles, and every projection field is a speedup (>= 1.0).

For the peakperf-service-v1 document (scripts/service_schema.json):
  * required keys and their types, on the envelope, the health object,
    and every result;
  * every result carries a known job kind and a *terminal* status — a
    hung or lost job cannot produce a valid document;
  * the accounting identity: completed + failed + cancelled + deadline +
    rejected == submitted, and results agree with the health counters
    status by status;
  * liveness at shutdown: queue_depth and in_flight are 0, and the queue
    high-water mark never exceeded queue_capacity (bounded backpressure);
  * attempts >= 1 for every executed job and == 0 for shed/queue-cancelled
    ones, with unique result ids.

For the peakperf-servicetrace-v1 document (scripts/servicetrace_schema.json),
the flight-recorder journal:
  * required keys and their types, on the envelope, the health and derived
    objects, and every event (per-type payload shapes);
  * enum fields carry known values only (terminal statuses, error classes,
    cancel sources, reject reasons);
  * `seq` is strictly increasing across the journal and `ts_us` is
    monotone per job;
  * when the journal is complete (dropped == 0): every job's span chain is
    gap-free — opens with `submitted`, closes with exactly one `terminal` —
    and the accounting identity re-derived from the event stream alone
    (completed + failed + cancelled + deadline + rejected == submitted)
    matches both the document's `derived` object and the live health
    counters, status by status.

Exit code 0 on success, 1 on any violation (all violations are listed).
"""

import argparse
import json
import os
import sys

SCHEMA_PATH = os.path.join(os.path.dirname(__file__), "trace_schema.json")
BENCH_SCHEMA_PATH = os.path.join(os.path.dirname(__file__), "bench_schema.json")
HOSTPROF_SCHEMA_PATH = os.path.join(os.path.dirname(__file__), "hostprof_schema.json")
SERVICE_SCHEMA_PATH = os.path.join(os.path.dirname(__file__), "service_schema.json")
SERVICETRACE_SCHEMA_PATH = os.path.join(
    os.path.dirname(__file__), "servicetrace_schema.json"
)

TYPES = {
    "str": str,
    "int": int,
    "number": (int, float),
    "list": list,
    "dict": dict,
}


def check_required(obj, spec, where, errors):
    for key, type_name in spec.items():
        if key not in obj:
            errors.append(f"{where}: missing required key `{key}`")
            continue
        expected = TYPES[type_name]
        if isinstance(obj[key], bool) or not isinstance(obj[key], expected):
            errors.append(
                f"{where}: key `{key}` should be {type_name}, "
                f"got {type(obj[key]).__name__}"
            )


def check_profile_document(doc, schema, errors):
    check_required(doc, schema["profile_document"]["required"], "profile document", errors)
    if doc.get("schema") != schema["profile_schema"]:
        errors.append(
            f"profile document: schema is {doc.get('schema')!r}, "
            f"expected {schema['profile_schema']!r}"
        )
    kinds = schema["stall_kinds"]
    if doc.get("stall_kinds") != kinds:
        errors.append(
            "profile document: stall_kinds drifted from scripts/trace_schema.json\n"
            f"  document: {doc.get('stall_kinds')}\n"
            f"  schema:   {kinds}\n"
            "  (update the schema if StallKind changed on purpose)"
        )
    for i, entry in enumerate(doc.get("profiles", [])):
        where = f"profiles[{i}]"
        check_required(entry, schema["profile_entry"]["required"], where, errors)
        body = entry.get("profile")
        if not isinstance(body, dict):
            continue
        check_required(body, schema["profile_body"]["required"], f"{where}.profile", errors)
        totals = body.get("stall_totals", {})
        if isinstance(totals, dict):
            if sorted(totals.keys()) != sorted(kinds):
                errors.append(
                    f"{where}.profile.stall_totals keys {sorted(totals.keys())} "
                    f"!= schema stall kinds {sorted(kinds)}"
                )
            total = sum(v for v in totals.values() if isinstance(v, int))
            if total != body.get("stalled_cycles"):
                errors.append(
                    f"{where}.profile: stall_totals sum {total} != "
                    f"stalled_cycles {body.get('stalled_cycles')}"
                )
        for key in ("gap_attribution",):
            attribution = entry.get(key, {})
            for label in attribution:
                if label not in kinds and label != "loop_control":
                    errors.append(f"{where}.{key}: unknown gap source {label!r}")


def check_bench_document(doc, schema, errors):
    check_required(doc, schema["bench_document"]["required"], "bench document", errors)
    if doc.get("schema") != schema["bench_schema"]:
        errors.append(
            f"bench document: schema is {doc.get('schema')!r}, "
            f"expected {schema['bench_schema']!r}"
        )
    kinds = schema["stall_kinds"]
    accuracy = doc.get("accuracy")
    if isinstance(accuracy, dict):
        check_required(
            accuracy, schema["bench_accuracy"]["required"], "bench accuracy", errors
        )
    if isinstance(doc.get("totals"), dict):
        check_required(
            doc["totals"], schema["bench_counters"]["required"], "bench totals", errors
        )

    rows = doc.get("rows", [])
    seen_ids = []
    for i, row in enumerate(rows):
        where = f"rows[{i}]"
        check_required(row, schema["bench_row"]["required"], where, errors)
        row_id = row.get("id")
        if isinstance(row_id, str):
            seen_ids.append(row_id)
            where = f"rows[{i}] ({row_id})"
        counters = row.get("counters")
        if isinstance(counters, dict):
            check_required(
                counters, schema["bench_counters"]["required"], f"{where}.counters", errors
            )
            stalls = counters.get("stall_cycles")
            if isinstance(stalls, dict) and list(stalls.keys()) != kinds:
                errors.append(
                    f"{where}.counters.stall_cycles keys drifted from the schema's "
                    f"stall kinds: {list(stalls.keys())}"
                )
        share = row.get("stall_share")
        if isinstance(share, dict) and list(share.keys()) != kinds:
            errors.append(
                f"{where}.stall_share keys drifted from the schema's "
                f"stall kinds: {list(share.keys())}"
            )
        simulated, paper, pct = row.get("simulated"), row.get("paper"), row.get("pct_error")
        if all(isinstance(v, (int, float)) for v in (simulated, paper, pct)) and paper:
            want = 100.0 * (simulated - paper) / paper
            if abs(want - pct) > 0.01:
                errors.append(
                    f"{where}: pct_error {pct} inconsistent with "
                    f"simulated {simulated} vs paper {paper} (want {want:.3f})"
                )

    if len(seen_ids) != len(set(seen_ids)):
        dupes = sorted({i for i in seen_ids if seen_ids.count(i) > 1})
        errors.append(f"bench document: duplicate row ids {dupes}")
    table2 = [i for i in seen_ids if i.startswith("table2/")]
    if len(table2) != schema["expected_table2_rows"]:
        errors.append(
            f"bench document: {len(table2)} table2 rows, "
            f"expected {schema['expected_table2_rows']} (full Table-2 coverage)"
        )
    missing = [i for i in schema["expected_sgemm_ids"] if i not in seen_ids]
    if missing:
        errors.append(f"bench document: missing SGEMM rows {missing}")


def check_hostprof_document(doc, schema, errors):
    check_required(doc, schema["hostprof_document"]["required"], "hostprof document", errors)
    if doc.get("schema") != schema["hostprof_schema"]:
        errors.append(
            f"hostprof document: schema is {doc.get('schema')!r}, "
            f"expected {schema['hostprof_schema']!r}"
        )
    phases = schema["phases"]
    if doc.get("phases") != phases:
        errors.append(
            "hostprof document: phases drifted from scripts/hostprof_schema.json\n"
            f"  document: {doc.get('phases')}\n"
            f"  schema:   {phases}\n"
            "  (update the schema if perfmon::Phase changed on purpose)"
        )
    hist_keys = schema["stall_kinds"] + ["unattributed"]

    targets = doc.get("targets", [])
    if not targets:
        errors.append("hostprof document: targets is empty")
    for i, target in enumerate(targets):
        where = f"targets[{i}]"
        check_required(target, schema["hostprof_target"]["required"], where, errors)
        name = target.get("target")
        if isinstance(name, str):
            where = f"targets[{i}] ({name})"

        entries = target.get("phases", [])
        if isinstance(entries, list):
            names = []
            share_sum = 0.0
            for j, entry in enumerate(entries):
                check_required(
                    entry, schema["hostprof_phase"]["required"], f"{where}.phases[{j}]", errors
                )
                names.append(entry.get("phase"))
                share = entry.get("share")
                if isinstance(share, (int, float)):
                    share_sum += share
            if names != phases:
                errors.append(
                    f"{where}.phases names drifted from the schema's phase list: {names}"
                )
            if abs(share_sum - 1.0) > 0.01:
                errors.append(
                    f"{where}: phase shares sum to {share_sum:.4f}, "
                    "expected ~1.0 (shares must partition the wall time)"
                )

        cycles = target.get("cycles")
        idle = target.get("idle")
        if isinstance(idle, dict):
            check_required(idle, schema["hostprof_idle"]["required"], f"{where}.idle", errors)
            idle_cycles = idle.get("idle_cycles")
            skippable = idle.get("skippable_cycles")
            if isinstance(cycles, int) and isinstance(idle_cycles, int):
                if idle_cycles > cycles:
                    errors.append(f"{where}: idle_cycles {idle_cycles} > cycles {cycles}")
                if isinstance(skippable, int) and skippable > idle_cycles:
                    errors.append(
                        f"{where}: skippable_cycles {skippable} > idle_cycles {idle_cycles}"
                    )
            hists = idle.get("run_length_histograms")
            if isinstance(hists, dict):
                if sorted(hists.keys()) != sorted(hist_keys):
                    errors.append(
                        f"{where}.idle.run_length_histograms keys {sorted(hists.keys())} "
                        f"!= schema stall kinds + unattributed {sorted(hist_keys)}"
                    )
                runs = 0
                for kind, buckets in hists.items():
                    if not isinstance(buckets, list):
                        errors.append(f"{where}: histogram {kind!r} is not a list")
                        continue
                    for bucket in buckets:
                        if not isinstance(bucket, dict):
                            errors.append(
                                f"{where}: histogram {kind!r} has a non-object bucket"
                            )
                            continue
                        lo, hi, count = (
                            bucket.get("lo"),
                            bucket.get("hi"),
                            bucket.get("count"),
                        )
                        if not all(isinstance(v, int) for v in (lo, hi, count)) or lo > hi:
                            errors.append(
                                f"{where}: histogram {kind!r} has a malformed bucket {bucket}"
                            )
                            continue
                        runs += count
                if isinstance(idle.get("idle_runs"), int) and runs != idle["idle_runs"]:
                    errors.append(
                        f"{where}: histogram run counts sum to {runs} != "
                        f"idle_runs {idle['idle_runs']}"
                    )

        periodicity = target.get("periodicity")
        if isinstance(periodicity, dict):
            check_required(
                periodicity,
                schema["hostprof_periodicity"]["required"],
                f"{where}.periodicity",
                errors,
            )
            period = periodicity.get("period", "absent")
            if period != "absent" and period is not None and not isinstance(period, int):
                errors.append(f"{where}.periodicity: period must be an int or null")
            if period == "absent":
                errors.append(f"{where}.periodicity: missing required key `period`")

        projection = target.get("projection")
        if isinstance(projection, dict):
            check_required(
                projection,
                schema["hostprof_projection"]["required"],
                f"{where}.projection",
                errors,
            )
            for key, value in projection.items():
                if isinstance(value, (int, float)) and value < 1.0:
                    errors.append(
                        f"{where}.projection: {key} = {value} is not a speedup (>= 1.0)"
                    )


def check_service_document(doc, schema, errors):
    check_required(doc, schema["service_document"]["required"], "service document", errors)
    if doc.get("schema") != schema["service_schema"]:
        errors.append(
            f"service document: schema is {doc.get('schema')!r}, "
            f"expected {schema['service_schema']!r}"
        )
    statuses = schema["terminal_statuses"]
    kinds = set(schema["job_kinds"])

    health = doc.get("health")
    if not isinstance(health, dict):
        return
    check_required(health, schema["service_health"]["required"], "service health", errors)

    results = doc.get("results", [])
    seen_ids = []
    result_tally = dict.fromkeys(statuses, 0)
    for i, result in enumerate(results):
        where = f"results[{i}]"
        check_required(result, schema["service_result"]["required"], where, errors)
        if result.get("schema") != schema["result_schema"]:
            errors.append(
                f"{where}: schema is {result.get('schema')!r}, "
                f"expected {schema['result_schema']!r}"
            )
        rid = result.get("id")
        if isinstance(rid, str):
            seen_ids.append(rid)
            where = f"results[{i}] ({rid})"
        if result.get("kind") not in kinds:
            errors.append(f"{where}: unknown job kind {result.get('kind')!r}")
        status = result.get("status")
        if status not in statuses:
            # The load-bearing check: every job must reach a *terminal*
            # state; anything else means a job hung or was lost.
            errors.append(f"{where}: status {status!r} is not terminal {statuses}")
            continue
        result_tally[status] += 1
        attempts = result.get("attempts")
        if isinstance(attempts, int):
            if status == "rejected" and attempts != 0:
                errors.append(f"{where}: rejected job reports {attempts} attempt(s)")
            if status in ("completed", "failed", "deadline") and attempts < 1:
                errors.append(f"{where}: {status} job reports {attempts} attempt(s)")

    if len(seen_ids) != len(set(seen_ids)):
        dupes = sorted({i for i in seen_ids if seen_ids.count(i) > 1})
        errors.append(f"service document: duplicate result ids {dupes}")

    counts = {k: health.get(k) for k in schema["service_health"]["required"]}
    if not all(isinstance(v, int) for v in counts.values()):
        return
    terminal = sum(counts[s] for s in statuses)
    if terminal != counts["submitted"]:
        # The accounting identity of the resilient core.
        errors.append(
            "service document: accounting identity violated: "
            + " + ".join(f"{s} {counts[s]}" for s in statuses)
            + f" = {terminal} != submitted {counts['submitted']}"
        )
    for status in statuses:
        if result_tally[status] != counts[status]:
            errors.append(
                f"service document: {result_tally[status]} {status} result(s) "
                f"but health counts {counts[status]}"
            )
    if counts["queue_depth"] != 0 or counts["in_flight"] != 0:
        errors.append(
            f"service document: shutdown left queue_depth {counts['queue_depth']}, "
            f"in_flight {counts['in_flight']} (expected 0/0)"
        )
    cap = doc.get("queue_capacity")
    if isinstance(cap, int) and counts["queue_depth_max"] > cap:
        errors.append(
            f"service document: queue_depth_max {counts['queue_depth_max']} "
            f"exceeds queue_capacity {cap} (backpressure bound violated)"
        )


def check_servicetrace_document(doc, schema, errors):
    check_required(
        doc, schema["servicetrace_document"]["required"], "servicetrace document", errors
    )
    if doc.get("schema") != schema["servicetrace_schema"]:
        errors.append(
            f"servicetrace document: schema is {doc.get('schema')!r}, "
            f"expected {schema['servicetrace_schema']!r}"
        )
    health = doc.get("health")
    if isinstance(health, dict):
        check_required(
            health, schema["servicetrace_health"]["required"], "servicetrace health", errors
        )
    derived = doc.get("derived")
    if isinstance(derived, dict):
        check_required(
            derived,
            schema["servicetrace_derived"]["required"],
            "servicetrace derived",
            errors,
        )

    statuses = schema["terminal_statuses"]
    payloads = schema["event_payloads"]
    enums = {
        "status": set(statuses),
        "error_class": set(schema["error_classes"]),
        "source": set(schema["cancel_sources"]),
        "reason": set(schema["reject_reasons"]),
    }

    events = doc.get("events", [])
    last_seq = None
    last_ts_per_job = {}
    chains = {}
    recomputed = dict.fromkeys(statuses, 0)
    recomputed["submitted"] = 0
    recomputed["retried"] = 0
    for i, event in enumerate(events):
        where = f"events[{i}]"
        check_required(event, schema["event_common"]["required"], where, errors)
        etype = event.get("type")
        if etype not in payloads:
            errors.append(f"{where}: unknown event type {etype!r}")
            continue
        check_required(event, payloads[etype], f"{where} ({etype})", errors)
        for field, allowed in enums.items():
            if field in payloads[etype] and event.get(field) not in allowed:
                errors.append(
                    f"{where} ({etype}): {field} {event.get(field)!r} "
                    f"not in {sorted(allowed)}"
                )
        seq, ts = event.get("seq"), event.get("ts_us")
        if isinstance(seq, int):
            if last_seq is not None and seq <= last_seq:
                errors.append(f"{where}: seq {seq} not strictly after {last_seq}")
            last_seq = seq
        job = event.get("job")
        if isinstance(job, str) and isinstance(ts, int):
            if ts < last_ts_per_job.get(job, 0):
                errors.append(
                    f"{where}: ts_us {ts} goes backwards for job {job!r} "
                    f"(was {last_ts_per_job[job]})"
                )
            last_ts_per_job[job] = ts
            chains.setdefault(job, []).append(etype)
        if etype == "submitted":
            recomputed["submitted"] += 1
        elif etype == "attempt_failed":
            recomputed["retried"] += 1
        elif etype == "terminal" and event.get("status") in recomputed:
            recomputed[event.get("status")] += 1
        if len(errors) > 20:
            errors.append("... (stopping after 20 violations)")
            return

    if doc.get("dropped") != 0:
        # A truncated ring dump: span chains and the identity are only
        # checkable on a complete journal.
        return
    for job, chain in chains.items():
        if chain[0] != "submitted":
            errors.append(
                f"servicetrace document: job {job!r} chain opens with "
                f"{chain[0]!r}, not 'submitted' (gap at the front)"
            )
        if chain[-1] != "terminal":
            errors.append(
                f"servicetrace document: job {job!r} chain ends with "
                f"{chain[-1]!r}, not 'terminal' (job lost mid-flight)"
            )
        if chain.count("terminal") != 1:
            errors.append(
                f"servicetrace document: job {job!r} has "
                f"{chain.count('terminal')} terminal events, expected exactly 1"
            )
    identity = sum(recomputed[s] for s in statuses)
    if identity != recomputed["submitted"]:
        errors.append(
            "servicetrace document: identity re-derived from events violated: "
            + " + ".join(f"{s} {recomputed[s]}" for s in statuses)
            + f" = {identity} != submitted {recomputed['submitted']}"
        )
    for obj_name in ("derived", "health"):
        obj = doc.get(obj_name)
        if not isinstance(obj, dict):
            continue
        for key, want in recomputed.items():
            if isinstance(obj.get(key), int) and obj[key] != want:
                errors.append(
                    f"servicetrace document: events re-derive {key} = {want} "
                    f"but {obj_name} says {obj[key]}"
                )
    cap = doc.get("queue_capacity")
    peak = doc.get("snapshot_queue_depth_max")
    if isinstance(cap, int) and isinstance(peak, int) and peak > cap:
        errors.append(
            f"servicetrace document: snapshot_queue_depth_max {peak} "
            f"exceeds queue_capacity {cap} (backpressure bound violated)"
        )


def check_chrome_trace(doc, schema, errors):
    spec = schema["chrome_trace"]
    check_required(doc, spec["required"], "chrome trace", errors)
    kinds = set(schema["stall_kinds"])
    events = doc.get("traceEvents", [])
    if not events:
        errors.append("chrome trace: traceEvents is empty")
    for i, event in enumerate(events):
        required = dict(spec["event_required"])
        if event.get("ph") == "M":
            # Metadata records (thread names) carry no timestamp.
            required.pop("ts", None)
        check_required(event, required, f"traceEvents[{i}]", errors)
        if event.get("cat") == "stall":
            name = event.get("name", "")
            kind = name.removeprefix("stall:")
            if kind not in kinds:
                errors.append(f"traceEvents[{i}]: unknown stall kind in {name!r}")
        if len(errors) > 20:
            errors.append("... (stopping after 20 violations)")
            return


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--profile", help="peakperf-profile-v1 document to validate")
    parser.add_argument("--trace", help="Chrome trace-event JSON to validate")
    parser.add_argument("--bench", help="peakperf-bench-v1 document to validate")
    parser.add_argument("--hostprof", help="peakperf-hostprof-v1 document to validate")
    parser.add_argument("--service", help="peakperf-service-v1 document to validate")
    parser.add_argument(
        "--servicetrace", help="peakperf-servicetrace-v1 journal document to validate"
    )
    args = parser.parse_args()
    if not any(
        (args.profile, args.trace, args.bench, args.hostprof, args.service, args.servicetrace)
    ):
        parser.error(
            "nothing to validate: pass --profile, --trace, --bench, --hostprof, "
            "--service, and/or --servicetrace"
        )

    with open(SCHEMA_PATH, encoding="utf-8") as f:
        schema = json.load(f)

    errors = []
    if args.profile:
        with open(args.profile, encoding="utf-8") as f:
            check_profile_document(json.load(f), schema, errors)
    if args.trace:
        with open(args.trace, encoding="utf-8") as f:
            check_chrome_trace(json.load(f), schema, errors)
    if args.bench:
        with open(BENCH_SCHEMA_PATH, encoding="utf-8") as f:
            bench_schema = json.load(f)
        with open(args.bench, encoding="utf-8") as f:
            check_bench_document(json.load(f), bench_schema, errors)
    if args.hostprof:
        with open(HOSTPROF_SCHEMA_PATH, encoding="utf-8") as f:
            hostprof_schema = json.load(f)
        with open(args.hostprof, encoding="utf-8") as f:
            check_hostprof_document(json.load(f), hostprof_schema, errors)
    if args.service:
        with open(SERVICE_SCHEMA_PATH, encoding="utf-8") as f:
            service_schema = json.load(f)
        with open(args.service, encoding="utf-8") as f:
            check_service_document(json.load(f), service_schema, errors)
    if args.servicetrace:
        with open(SERVICETRACE_SCHEMA_PATH, encoding="utf-8") as f:
            servicetrace_schema = json.load(f)
        with open(args.servicetrace, encoding="utf-8") as f:
            check_servicetrace_document(json.load(f), servicetrace_schema, errors)

    if errors:
        print(f"schema check FAILED ({len(errors)} violation(s)):", file=sys.stderr)
        for e in errors:
            print(f"  - {e}", file=sys.stderr)
        return 1
    checked = " and ".join(
        p
        for p in (
            args.profile,
            args.trace,
            args.bench,
            args.hostprof,
            args.service,
            args.servicetrace,
        )
        if p
    )
    print(f"schema check OK: {checked}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
