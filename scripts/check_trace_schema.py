#!/usr/bin/env python3
"""Validate `reproduce` JSON output against the checked-in schemas.

Usage:
    scripts/check_trace_schema.py --profile profile.json [--trace trace.json]
    scripts/check_trace_schema.py --bench bench.json

Checks, for the peakperf-profile-v1 document:
  * required keys and their types (scripts/trace_schema.json);
  * the document's stall_kinds list matches the schema's, in order —
    adding a StallKind in the simulator without updating the schema (or
    reordering the serialization) fails CI;
  * per-profile invariant: the per-kind stall totals sum to
    stalled_cycles (the acceptance criterion of the observability layer).

For the Chrome trace: required top-level keys, event shape on a sample of
events, and that every stall event names a known stall kind.

For the peakperf-bench-v1 document (scripts/bench_schema.json):
  * required keys and their types, on the envelope and on every row;
  * per-row stall_cycles / stall_share keys match the schema's stall
    kinds;
  * full-suite coverage — every Table-2 row and all eight SGEMM
    GPU x variant rows must be present (the telemetry acceptance
    criterion), with unique row ids;
  * per-row invariant: pct_error is consistent with simulated vs paper.

Exit code 0 on success, 1 on any violation (all violations are listed).
"""

import argparse
import json
import os
import sys

SCHEMA_PATH = os.path.join(os.path.dirname(__file__), "trace_schema.json")
BENCH_SCHEMA_PATH = os.path.join(os.path.dirname(__file__), "bench_schema.json")

TYPES = {
    "str": str,
    "int": int,
    "number": (int, float),
    "list": list,
    "dict": dict,
}


def check_required(obj, spec, where, errors):
    for key, type_name in spec.items():
        if key not in obj:
            errors.append(f"{where}: missing required key `{key}`")
            continue
        expected = TYPES[type_name]
        if isinstance(obj[key], bool) or not isinstance(obj[key], expected):
            errors.append(
                f"{where}: key `{key}` should be {type_name}, "
                f"got {type(obj[key]).__name__}"
            )


def check_profile_document(doc, schema, errors):
    check_required(doc, schema["profile_document"]["required"], "profile document", errors)
    if doc.get("schema") != schema["profile_schema"]:
        errors.append(
            f"profile document: schema is {doc.get('schema')!r}, "
            f"expected {schema['profile_schema']!r}"
        )
    kinds = schema["stall_kinds"]
    if doc.get("stall_kinds") != kinds:
        errors.append(
            "profile document: stall_kinds drifted from scripts/trace_schema.json\n"
            f"  document: {doc.get('stall_kinds')}\n"
            f"  schema:   {kinds}\n"
            "  (update the schema if StallKind changed on purpose)"
        )
    for i, entry in enumerate(doc.get("profiles", [])):
        where = f"profiles[{i}]"
        check_required(entry, schema["profile_entry"]["required"], where, errors)
        body = entry.get("profile")
        if not isinstance(body, dict):
            continue
        check_required(body, schema["profile_body"]["required"], f"{where}.profile", errors)
        totals = body.get("stall_totals", {})
        if isinstance(totals, dict):
            if sorted(totals.keys()) != sorted(kinds):
                errors.append(
                    f"{where}.profile.stall_totals keys {sorted(totals.keys())} "
                    f"!= schema stall kinds {sorted(kinds)}"
                )
            total = sum(v for v in totals.values() if isinstance(v, int))
            if total != body.get("stalled_cycles"):
                errors.append(
                    f"{where}.profile: stall_totals sum {total} != "
                    f"stalled_cycles {body.get('stalled_cycles')}"
                )
        for key in ("gap_attribution",):
            attribution = entry.get(key, {})
            for label in attribution:
                if label not in kinds and label != "loop_control":
                    errors.append(f"{where}.{key}: unknown gap source {label!r}")


def check_bench_document(doc, schema, errors):
    check_required(doc, schema["bench_document"]["required"], "bench document", errors)
    if doc.get("schema") != schema["bench_schema"]:
        errors.append(
            f"bench document: schema is {doc.get('schema')!r}, "
            f"expected {schema['bench_schema']!r}"
        )
    kinds = schema["stall_kinds"]
    accuracy = doc.get("accuracy")
    if isinstance(accuracy, dict):
        check_required(
            accuracy, schema["bench_accuracy"]["required"], "bench accuracy", errors
        )
    if isinstance(doc.get("totals"), dict):
        check_required(
            doc["totals"], schema["bench_counters"]["required"], "bench totals", errors
        )

    rows = doc.get("rows", [])
    seen_ids = []
    for i, row in enumerate(rows):
        where = f"rows[{i}]"
        check_required(row, schema["bench_row"]["required"], where, errors)
        row_id = row.get("id")
        if isinstance(row_id, str):
            seen_ids.append(row_id)
            where = f"rows[{i}] ({row_id})"
        counters = row.get("counters")
        if isinstance(counters, dict):
            check_required(
                counters, schema["bench_counters"]["required"], f"{where}.counters", errors
            )
            stalls = counters.get("stall_cycles")
            if isinstance(stalls, dict) and list(stalls.keys()) != kinds:
                errors.append(
                    f"{where}.counters.stall_cycles keys drifted from the schema's "
                    f"stall kinds: {list(stalls.keys())}"
                )
        share = row.get("stall_share")
        if isinstance(share, dict) and list(share.keys()) != kinds:
            errors.append(
                f"{where}.stall_share keys drifted from the schema's "
                f"stall kinds: {list(share.keys())}"
            )
        simulated, paper, pct = row.get("simulated"), row.get("paper"), row.get("pct_error")
        if all(isinstance(v, (int, float)) for v in (simulated, paper, pct)) and paper:
            want = 100.0 * (simulated - paper) / paper
            if abs(want - pct) > 0.01:
                errors.append(
                    f"{where}: pct_error {pct} inconsistent with "
                    f"simulated {simulated} vs paper {paper} (want {want:.3f})"
                )

    if len(seen_ids) != len(set(seen_ids)):
        dupes = sorted({i for i in seen_ids if seen_ids.count(i) > 1})
        errors.append(f"bench document: duplicate row ids {dupes}")
    table2 = [i for i in seen_ids if i.startswith("table2/")]
    if len(table2) != schema["expected_table2_rows"]:
        errors.append(
            f"bench document: {len(table2)} table2 rows, "
            f"expected {schema['expected_table2_rows']} (full Table-2 coverage)"
        )
    missing = [i for i in schema["expected_sgemm_ids"] if i not in seen_ids]
    if missing:
        errors.append(f"bench document: missing SGEMM rows {missing}")


def check_chrome_trace(doc, schema, errors):
    spec = schema["chrome_trace"]
    check_required(doc, spec["required"], "chrome trace", errors)
    kinds = set(schema["stall_kinds"])
    events = doc.get("traceEvents", [])
    if not events:
        errors.append("chrome trace: traceEvents is empty")
    for i, event in enumerate(events):
        required = dict(spec["event_required"])
        if event.get("ph") == "M":
            # Metadata records (thread names) carry no timestamp.
            required.pop("ts", None)
        check_required(event, required, f"traceEvents[{i}]", errors)
        if event.get("cat") == "stall":
            name = event.get("name", "")
            kind = name.removeprefix("stall:")
            if kind not in kinds:
                errors.append(f"traceEvents[{i}]: unknown stall kind in {name!r}")
        if len(errors) > 20:
            errors.append("... (stopping after 20 violations)")
            return


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--profile", help="peakperf-profile-v1 document to validate")
    parser.add_argument("--trace", help="Chrome trace-event JSON to validate")
    parser.add_argument("--bench", help="peakperf-bench-v1 document to validate")
    args = parser.parse_args()
    if not args.profile and not args.trace and not args.bench:
        parser.error("nothing to validate: pass --profile, --trace, and/or --bench")

    with open(SCHEMA_PATH, encoding="utf-8") as f:
        schema = json.load(f)

    errors = []
    if args.profile:
        with open(args.profile, encoding="utf-8") as f:
            check_profile_document(json.load(f), schema, errors)
    if args.trace:
        with open(args.trace, encoding="utf-8") as f:
            check_chrome_trace(json.load(f), schema, errors)
    if args.bench:
        with open(BENCH_SCHEMA_PATH, encoding="utf-8") as f:
            bench_schema = json.load(f)
        with open(args.bench, encoding="utf-8") as f:
            check_bench_document(json.load(f), bench_schema, errors)

    if errors:
        print(f"schema check FAILED ({len(errors)} violation(s)):", file=sys.stderr)
        for e in errors:
            print(f"  - {e}", file=sys.stderr)
        return 1
    checked = " and ".join(p for p in (args.profile, args.trace, args.bench) if p)
    print(f"schema check OK: {checked}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
