#!/usr/bin/env python3
"""Validate `reproduce profile` JSON output against the checked-in schema.

Usage:
    scripts/check_trace_schema.py --profile profile.json [--trace trace.json]

Checks, for the peakperf-profile-v1 document:
  * required keys and their types (scripts/trace_schema.json);
  * the document's stall_kinds list matches the schema's, in order —
    adding a StallKind in the simulator without updating the schema (or
    reordering the serialization) fails CI;
  * per-profile invariant: the per-kind stall totals sum to
    stalled_cycles (the acceptance criterion of the observability layer).

For the Chrome trace: required top-level keys, event shape on a sample of
events, and that every stall event names a known stall kind.

Exit code 0 on success, 1 on any violation (all violations are listed).
"""

import argparse
import json
import os
import sys

SCHEMA_PATH = os.path.join(os.path.dirname(__file__), "trace_schema.json")

TYPES = {
    "str": str,
    "int": int,
    "number": (int, float),
    "list": list,
    "dict": dict,
}


def check_required(obj, spec, where, errors):
    for key, type_name in spec.items():
        if key not in obj:
            errors.append(f"{where}: missing required key `{key}`")
            continue
        expected = TYPES[type_name]
        if isinstance(obj[key], bool) or not isinstance(obj[key], expected):
            errors.append(
                f"{where}: key `{key}` should be {type_name}, "
                f"got {type(obj[key]).__name__}"
            )


def check_profile_document(doc, schema, errors):
    check_required(doc, schema["profile_document"]["required"], "profile document", errors)
    if doc.get("schema") != schema["profile_schema"]:
        errors.append(
            f"profile document: schema is {doc.get('schema')!r}, "
            f"expected {schema['profile_schema']!r}"
        )
    kinds = schema["stall_kinds"]
    if doc.get("stall_kinds") != kinds:
        errors.append(
            "profile document: stall_kinds drifted from scripts/trace_schema.json\n"
            f"  document: {doc.get('stall_kinds')}\n"
            f"  schema:   {kinds}\n"
            "  (update the schema if StallKind changed on purpose)"
        )
    for i, entry in enumerate(doc.get("profiles", [])):
        where = f"profiles[{i}]"
        check_required(entry, schema["profile_entry"]["required"], where, errors)
        body = entry.get("profile")
        if not isinstance(body, dict):
            continue
        check_required(body, schema["profile_body"]["required"], f"{where}.profile", errors)
        totals = body.get("stall_totals", {})
        if isinstance(totals, dict):
            if sorted(totals.keys()) != sorted(kinds):
                errors.append(
                    f"{where}.profile.stall_totals keys {sorted(totals.keys())} "
                    f"!= schema stall kinds {sorted(kinds)}"
                )
            total = sum(v for v in totals.values() if isinstance(v, int))
            if total != body.get("stalled_cycles"):
                errors.append(
                    f"{where}.profile: stall_totals sum {total} != "
                    f"stalled_cycles {body.get('stalled_cycles')}"
                )
        for key in ("gap_attribution",):
            attribution = entry.get(key, {})
            for label in attribution:
                if label not in kinds and label != "loop_control":
                    errors.append(f"{where}.{key}: unknown gap source {label!r}")


def check_chrome_trace(doc, schema, errors):
    spec = schema["chrome_trace"]
    check_required(doc, spec["required"], "chrome trace", errors)
    kinds = set(schema["stall_kinds"])
    events = doc.get("traceEvents", [])
    if not events:
        errors.append("chrome trace: traceEvents is empty")
    for i, event in enumerate(events):
        required = dict(spec["event_required"])
        if event.get("ph") == "M":
            # Metadata records (thread names) carry no timestamp.
            required.pop("ts", None)
        check_required(event, required, f"traceEvents[{i}]", errors)
        if event.get("cat") == "stall":
            name = event.get("name", "")
            kind = name.removeprefix("stall:")
            if kind not in kinds:
                errors.append(f"traceEvents[{i}]: unknown stall kind in {name!r}")
        if len(errors) > 20:
            errors.append("... (stopping after 20 violations)")
            return


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--profile", help="peakperf-profile-v1 document to validate")
    parser.add_argument("--trace", help="Chrome trace-event JSON to validate")
    args = parser.parse_args()
    if not args.profile and not args.trace:
        parser.error("nothing to validate: pass --profile and/or --trace")

    with open(SCHEMA_PATH, encoding="utf-8") as f:
        schema = json.load(f)

    errors = []
    if args.profile:
        with open(args.profile, encoding="utf-8") as f:
            check_profile_document(json.load(f), schema, errors)
    if args.trace:
        with open(args.trace, encoding="utf-8") as f:
            check_chrome_trace(json.load(f), schema, errors)

    if errors:
        print(f"schema check FAILED ({len(errors)} violation(s)):", file=sys.stderr)
        for e in errors:
            print(f"  - {e}", file=sys.stderr)
        return 1
    checked = " and ".join(p for p in (args.profile, args.trace) if p)
    print(f"schema check OK: {checked}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
