//! Occupancy calculation: how many blocks/threads an SM can keep resident.
//!
//! This implements Equations 1 and 5 of the paper: the register budget of the
//! active warps cannot exceed the SM's register file, and the shared memory
//! of the active blocks cannot exceed the SM's shared memory.

use std::fmt;

use crate::GpuConfig;
use crate::WARP_SIZE;

/// Thread-block shape, up to 3 dimensions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BlockShape {
    /// Threads along x.
    pub x: u32,
    /// Threads along y.
    pub y: u32,
    /// Threads along z.
    pub z: u32,
}

impl BlockShape {
    /// A 1-D block.
    pub fn new_1d(x: u32) -> BlockShape {
        BlockShape { x, y: 1, z: 1 }
    }

    /// A 2-D block.
    pub fn new_2d(x: u32, y: u32) -> BlockShape {
        BlockShape { x, y, z: 1 }
    }

    /// Total threads in the block.
    pub fn threads(&self) -> u32 {
        self.x * self.y * self.z
    }

    /// Number of warps the block occupies (rounded up).
    pub fn warps(&self) -> u32 {
        self.threads().div_ceil(WARP_SIZE)
    }
}

impl fmt::Display for BlockShape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {}, {})", self.x, self.y, self.z)
    }
}

/// The per-SM resource limits of a GPU configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OccupancyLimits {
    registers_per_sm: u32,
    shared_mem_per_sm: u32,
    max_threads_per_sm: u32,
    max_blocks_per_sm: u32,
    max_threads_per_block: u32,
    max_registers_per_thread: u32,
}

/// The outcome of an occupancy query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OccupancyResult {
    /// Resident blocks per SM.
    pub blocks_per_sm: u32,
    /// Resident threads per SM.
    pub threads_per_sm: u32,
    /// The resource that bounds occupancy.
    pub limiter: OccupancyLimiter,
}

/// Which resource capped the number of resident blocks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OccupancyLimiter {
    /// Register file capacity (Equation 1).
    Registers,
    /// Shared memory capacity (Equation 5).
    SharedMemory,
    /// Hardware thread/CTA limits.
    Hardware,
}

impl fmt::Display for OccupancyLimiter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            OccupancyLimiter::Registers => "registers",
            OccupancyLimiter::SharedMemory => "shared memory",
            OccupancyLimiter::Hardware => "hardware limits",
        };
        f.write_str(s)
    }
}

impl OccupancyLimits {
    /// Extract the limits from a GPU configuration.
    pub fn new(config: &GpuConfig) -> OccupancyLimits {
        OccupancyLimits {
            registers_per_sm: config.registers_per_sm,
            shared_mem_per_sm: config.shared_mem_per_sm,
            max_threads_per_sm: config.max_threads_per_sm,
            max_blocks_per_sm: config.max_blocks_per_sm,
            max_threads_per_block: config.max_threads_per_block,
            max_registers_per_thread: config.generation.max_registers_per_thread(),
        }
    }

    /// Maximum active threads per SM for a kernel using `regs_per_thread`
    /// registers, ignoring shared memory (Equation 1:
    /// `T_SM * R_T <= R_SM`).
    pub fn threads_by_registers(&self, regs_per_thread: u32) -> u32 {
        if regs_per_thread == 0 {
            return self.max_threads_per_sm;
        }
        // Allocation granularity is a warp: round down to whole warps.
        let threads = self.registers_per_sm / regs_per_thread;
        (threads / WARP_SIZE) * WARP_SIZE
    }

    /// Resident blocks/threads per SM for a kernel with the given per-thread
    /// register count, per-block shared memory, and block size.
    ///
    /// Returns `None` if a single block already exceeds some resource
    /// (including the per-thread register encoding limit).
    pub fn occupancy(
        &self,
        regs_per_thread: u32,
        shared_bytes_per_block: u32,
        threads_per_block: u32,
    ) -> Option<OccupancyResult> {
        if threads_per_block == 0
            || threads_per_block > self.max_threads_per_block
            || regs_per_thread > self.max_registers_per_thread
            || shared_bytes_per_block > self.shared_mem_per_sm
        {
            return None;
        }
        let by_regs = if regs_per_thread == 0 {
            u32::MAX
        } else {
            self.registers_per_sm / (regs_per_thread * threads_per_block)
        };
        let by_smem = self
            .shared_mem_per_sm
            .checked_div(shared_bytes_per_block)
            .unwrap_or(u32::MAX);
        let by_threads = self.max_threads_per_sm / threads_per_block;
        let by_hw = by_threads.min(self.max_blocks_per_sm);

        let blocks = by_regs.min(by_smem).min(by_hw);
        if blocks == 0 {
            return None;
        }
        let limiter = if blocks == by_regs && by_regs <= by_smem && by_regs <= by_hw {
            OccupancyLimiter::Registers
        } else if blocks == by_smem && by_smem <= by_hw {
            OccupancyLimiter::SharedMemory
        } else {
            OccupancyLimiter::Hardware
        };
        Some(OccupancyResult {
            blocks_per_sm: blocks,
            threads_per_sm: blocks * threads_per_block,
            limiter,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fermi_limits() -> OccupancyLimits {
        OccupancyLimits::new(&GpuConfig::gtx580())
    }

    fn kepler_limits() -> OccupancyLimits {
        OccupancyLimits::new(&GpuConfig::gtx680())
    }

    #[test]
    fn block_shape_warps() {
        assert_eq!(BlockShape::new_1d(256).warps(), 8);
        assert_eq!(BlockShape::new_2d(16, 16).threads(), 256);
        assert_eq!(BlockShape::new_1d(33).warps(), 2);
        assert_eq!(BlockShape::new_1d(1024).warps(), 32);
    }

    #[test]
    fn fermi_sgemm_occupancy_matches_paper() {
        // Section 4.5: with 63 registers/thread the Fermi register file
        // (32K regs) supports up to 512 threads per SM.
        assert_eq!(fermi_limits().threads_by_registers(63), 512);
        // 256-thread blocks, 12 KiB shared (A+B tiles, 96x16 floats each):
        // two blocks resident, register-bound.
        let occ = fermi_limits().occupancy(63, 12 * 1024, 256).unwrap();
        assert_eq!(occ.blocks_per_sm, 2);
        assert_eq!(occ.threads_per_sm, 512);
        assert_eq!(occ.limiter, OccupancyLimiter::Registers);
    }

    #[test]
    fn kepler_sgemm_occupancy_matches_paper() {
        // Section 4.5: 64K registers per SMX support 1024 active threads at
        // 63 registers each.
        assert_eq!(kepler_limits().threads_by_registers(63), 1024);
        let occ = kepler_limits().occupancy(63, 12 * 1024, 256).unwrap();
        assert_eq!(occ.blocks_per_sm, 4);
        assert_eq!(occ.threads_per_sm, 1024);
    }

    #[test]
    fn shared_memory_can_be_the_limiter() {
        // 25 KiB per block -> only one block fits in 48 KiB.
        let occ = fermi_limits().occupancy(20, 25 * 1024, 256).unwrap();
        assert_eq!(occ.blocks_per_sm, 1);
        assert_eq!(occ.limiter, OccupancyLimiter::SharedMemory);
    }

    #[test]
    fn hardware_limit_applies() {
        let occ = fermi_limits().occupancy(10, 0, 32).unwrap();
        assert_eq!(occ.blocks_per_sm, 8); // max_blocks_per_sm
        assert_eq!(occ.limiter, OccupancyLimiter::Hardware);
    }

    #[test]
    fn over_limit_kernels_are_rejected() {
        assert!(fermi_limits().occupancy(64, 0, 256).is_none()); // >63 regs
        assert!(fermi_limits().occupancy(32, 49 * 1024, 256).is_none());
        assert!(fermi_limits().occupancy(32, 0, 2048).is_none());
        assert!(fermi_limits().occupancy(32, 0, 0).is_none());
    }

    #[test]
    fn zero_register_kernel_uses_thread_limit() {
        assert_eq!(
            fermi_limits().threads_by_registers(0),
            GpuConfig::gtx580().max_threads_per_sm
        );
    }
}
