//! GPU generations covered by the study.

use std::fmt;
use std::str::FromStr;

/// The three NVIDIA GPU generations compared in Table 1 of the paper.
///
/// `Gt200` is only used as a historical comparison point (its scheduler can
/// over-issue relative to the SPs); the analysis and the SGEMM kernels target
/// `Fermi` (GF110, e.g. GTX580) and `Kepler` (GK104, e.g. GTX680).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Generation {
    /// GT200 (e.g. GTX280): 8 SPs/SM, one warp scheduler, hot-clock shaders.
    Gt200,
    /// Fermi GF110 (e.g. GTX580): 32 SPs/SM, 2 schedulers, hot-clock shaders.
    Fermi,
    /// Kepler GK104 (e.g. GTX680): 192 SPs/SMX, 4 schedulers, unified clock.
    Kepler,
}

impl Generation {
    /// All generations, in chronological order.
    pub const ALL: [Generation; 3] = [Generation::Gt200, Generation::Fermi, Generation::Kepler];

    /// The CUDA "compute capability" style tag used by the assembler
    /// (`sm_13`, `sm_20`, `sm_30`).
    pub fn sm_tag(self) -> &'static str {
        match self {
            Generation::Gt200 => "sm_13",
            Generation::Fermi => "sm_20",
            Generation::Kepler => "sm_30",
        }
    }

    /// Hard limit on registers per thread imposed by the instruction
    /// encoding (Section 2: 6 bits per register operand on Fermi/GK104,
    /// 7 bits on GT200).
    pub fn max_registers_per_thread(self) -> u32 {
        match self {
            Generation::Gt200 => 127,
            Generation::Fermi | Generation::Kepler => 63,
        }
    }

    /// Whether the binary format requires control-notation words
    /// (one per group of 7 instructions; Kepler only, Section 3.2).
    pub fn uses_control_notation(self) -> bool {
        matches!(self, Generation::Kepler)
    }

    /// Maximum static shared memory per block, in bytes (16 KB on GT200;
    /// 48 KB of the 64 KB unified array on Fermi/Kepler, Section 5.5).
    pub fn max_shared_bytes_per_block(self) -> u32 {
        match self {
            Generation::Gt200 => 16 * 1024,
            Generation::Fermi | Generation::Kepler => 48 * 1024,
        }
    }

    /// Whether the register file is split into 4 banks with FFMA operand
    /// conflicts (Kepler only, Section 3.3).
    pub fn has_register_banks(self) -> bool {
        matches!(self, Generation::Kepler)
    }
}

impl fmt::Display for Generation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Generation::Gt200 => "GT200",
            Generation::Fermi => "Fermi",
            Generation::Kepler => "Kepler",
        };
        f.write_str(name)
    }
}

/// Error returned when parsing a [`Generation`] from a string fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseGenerationError(String);

impl fmt::Display for ParseGenerationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown GPU generation `{}`", self.0)
    }
}

impl std::error::Error for ParseGenerationError {}

impl FromStr for Generation {
    type Err = ParseGenerationError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "gt200" | "sm_13" | "gtx280" => Ok(Generation::Gt200),
            "fermi" | "sm_20" | "gf110" | "gtx580" => Ok(Generation::Fermi),
            "kepler" | "sm_30" | "gk104" | "gtx680" => Ok(Generation::Kepler),
            other => Err(ParseGenerationError(other.to_owned())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_limits_match_paper() {
        assert_eq!(Generation::Gt200.max_registers_per_thread(), 127);
        assert_eq!(Generation::Fermi.max_registers_per_thread(), 63);
        assert_eq!(Generation::Kepler.max_registers_per_thread(), 63);
    }

    #[test]
    fn only_kepler_has_control_notation_and_banks() {
        assert!(!Generation::Fermi.uses_control_notation());
        assert!(Generation::Kepler.uses_control_notation());
        assert!(!Generation::Fermi.has_register_banks());
        assert!(Generation::Kepler.has_register_banks());
    }

    #[test]
    fn parse_round_trips() {
        for gen in Generation::ALL {
            let parsed: Generation = gen.to_string().parse().unwrap();
            assert_eq!(parsed, gen);
        }
        assert_eq!("gtx680".parse::<Generation>().unwrap(), Generation::Kepler);
        assert!("voodoo2".parse::<Generation>().is_err());
    }

    #[test]
    fn sm_tags() {
        assert_eq!(Generation::Fermi.sm_tag(), "sm_20");
        assert_eq!(Generation::Kepler.sm_tag(), "sm_30");
    }
}
