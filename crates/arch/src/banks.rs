//! Kepler register-bank mapping (Section 3.3 of the paper).
//!
//! The paper's microbenchmarks show that on GK104 the register file behaves
//! as four banks, named after the parity and low-octet position of the
//! register index:
//!
//! * `even 0`: `R % 8 < 4  && R % 2 == 0`
//! * `even 1`: `R % 8 >= 4 && R % 2 == 0`
//! * `odd 0` : `R % 8 < 4  && R % 2 == 1`
//! * `odd 1` : `R % 8 >= 4 && R % 2 == 1`
//!
//! An FFMA whose *distinct* source registers share a bank loses throughput:
//! two sources on one bank halve it, three sources on one bank cut it to a
//! third (Table 2).

use std::fmt;

/// One of the four Kepler register-file banks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum RegisterBank {
    /// `R % 8 < 4` and even index.
    Even0,
    /// `R % 8 >= 4` and even index.
    Even1,
    /// `R % 8 < 4` and odd index.
    Odd0,
    /// `R % 8 >= 4` and odd index.
    Odd1,
}

impl RegisterBank {
    /// All four banks.
    pub const ALL: [RegisterBank; 4] = [
        RegisterBank::Even0,
        RegisterBank::Even1,
        RegisterBank::Odd0,
        RegisterBank::Odd1,
    ];

    /// A stable small index (0..=3) for use in tables/bitsets.
    pub fn index(self) -> usize {
        match self {
            RegisterBank::Even0 => 0,
            RegisterBank::Even1 => 1,
            RegisterBank::Odd0 => 2,
            RegisterBank::Odd1 => 3,
        }
    }

    /// Inverse of [`RegisterBank::index`].
    ///
    /// # Panics
    ///
    /// Panics if `index >= 4`.
    pub fn from_index(index: usize) -> RegisterBank {
        RegisterBank::ALL[index]
    }
}

impl fmt::Display for RegisterBank {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            RegisterBank::Even0 => "even0",
            RegisterBank::Even1 => "even1",
            RegisterBank::Odd0 => "odd0",
            RegisterBank::Odd1 => "odd1",
        };
        f.write_str(name)
    }
}

/// Map a register index to its Kepler bank, per Section 3.3.
///
/// The mapping only depends on `r % 8`, so it is total over all 63
/// architectural registers (and the RZ pseudo-register, though RZ reads do
/// not consume bank bandwidth).
pub fn register_bank(r: u8) -> RegisterBank {
    let low = r % 8 < 4;
    let even = r.is_multiple_of(2);
    match (even, low) {
        (true, true) => RegisterBank::Even0,
        (true, false) => RegisterBank::Even1,
        (false, true) => RegisterBank::Odd0,
        (false, false) => RegisterBank::Odd1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mapping_matches_paper_definition() {
        // R0..R7 cycle through: E0 O0 E0 O0 E1 O1 E1 O1
        assert_eq!(register_bank(0), RegisterBank::Even0);
        assert_eq!(register_bank(1), RegisterBank::Odd0);
        assert_eq!(register_bank(2), RegisterBank::Even0);
        assert_eq!(register_bank(3), RegisterBank::Odd0);
        assert_eq!(register_bank(4), RegisterBank::Even1);
        assert_eq!(register_bank(5), RegisterBank::Odd1);
        assert_eq!(register_bank(6), RegisterBank::Even1);
        assert_eq!(register_bank(7), RegisterBank::Odd1);
    }

    #[test]
    fn mapping_is_periodic_mod_8() {
        for r in 0u8..64 {
            assert_eq!(register_bank(r), register_bank(r % 8));
        }
    }

    #[test]
    fn banks_are_balanced() {
        let mut counts = [0usize; 4];
        for r in 0u8..64 {
            counts[register_bank(r).index()] += 1;
        }
        assert_eq!(counts, [16, 16, 16, 16]);
    }

    #[test]
    fn index_round_trips() {
        for bank in RegisterBank::ALL {
            assert_eq!(RegisterBank::from_index(bank.index()), bank);
        }
    }

    #[test]
    fn paper_table2_examples() {
        // FFMA R0, R1, R4, R5: sources R1(O0), R4(E1), R5(O1) -> 3 banks, full speed.
        let banks = [register_bank(1), register_bank(4), register_bank(5)];
        assert_eq!(banks[0], RegisterBank::Odd0);
        assert_eq!(banks[1], RegisterBank::Even1);
        assert_eq!(banks[2], RegisterBank::Odd1);
        // FFMA R0, R1, R3, R5: R1(O0), R3(O0) share a bank -> 2-way conflict.
        assert_eq!(register_bank(1), register_bank(3));
        // FFMA R0, R1, R3, R9: R1, R3, R9 all odd0 -> 3-way conflict.
        assert_eq!(register_bank(9), RegisterBank::Odd0);
    }
}
