//! Measured instruction-throughput database (the paper's calibration data).
//!
//! Section 3.3 and Figures 2/4 of the paper are produced by microbenchmarks
//! run on real silicon. Those measurements are the constants below; the
//! simulator in `peakperf-sim` is parameterized by them, and the
//! microbenchmarks in `peakperf-kernels` re-derive them (and the emergent
//! curve shapes) on the simulator.

use crate::Generation;

/// Width of an `LDS` shared-memory load instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum LdsWidth {
    /// `LDS` — one 32-bit word per thread.
    B32,
    /// `LDS.64` — two consecutive 32-bit words per thread.
    B64,
    /// `LDS.128` — four consecutive 32-bit words per thread.
    B128,
}

impl LdsWidth {
    /// All widths, narrow to wide.
    pub const ALL: [LdsWidth; 3] = [LdsWidth::B32, LdsWidth::B64, LdsWidth::B128];

    /// Bytes moved per thread by one instruction.
    pub fn bytes(self) -> u32 {
        match self {
            LdsWidth::B32 => 4,
            LdsWidth::B64 => 8,
            LdsWidth::B128 => 16,
        }
    }

    /// Number of 32-bit registers written per thread.
    pub fn words(self) -> u32 {
        self.bytes() / 4
    }

    /// The assembly suffix (`""`, `".64"`, `".128"`).
    pub fn suffix(self) -> &'static str {
        match self {
            LdsWidth::B32 => "",
            LdsWidth::B64 => ".64",
            LdsWidth::B128 => ".128",
        }
    }
}

/// Per-generation measured throughput limits, in *thread instructions per
/// shader cycle per SM* unless noted.
///
/// All numbers are taken from the paper (Table 2, Section 4.1, Section 4.5).
#[derive(Debug, Clone, PartialEq)]
pub struct ThroughputTable {
    generation: Generation,
}

impl ThroughputTable {
    /// The throughput table of one generation.
    pub fn for_generation(generation: Generation) -> ThroughputTable {
        ThroughputTable { generation }
    }

    /// The generation this table describes.
    pub fn generation(&self) -> Generation {
        self.generation
    }

    /// Peak FFMA thread-instruction throughput with conflict-free distinct
    /// operands. On Fermi this is the SP count (32); on Kepler the measured
    /// scheduler/operand limit of ~132 (Table 2), well below the 192 SPs.
    pub fn ffma_peak(&self) -> f64 {
        match self.generation {
            Generation::Gt200 => 8.0,
            Generation::Fermi => 32.0,
            Generation::Kepler => 132.0,
        }
    }

    /// The Kepler effective issue limit in thread instructions per cycle
    /// (~132, i.e. 33 warp instructions per 8 cycles). Returns `None` for
    /// generations whose issue limit equals the structural scheduler limit.
    pub fn kepler_issue_limit(&self) -> Option<f64> {
        match self.generation {
            Generation::Kepler => Some(132.0),
            _ => None,
        }
    }

    /// Measured FFMA throughput when two *distinct* source registers share a
    /// register bank (Kepler only; Table 2 shows 66.2).
    pub fn ffma_two_way_conflict(&self) -> f64 {
        match self.generation {
            Generation::Kepler => 66.2,
            _ => self.ffma_peak(),
        }
    }

    /// Measured FFMA throughput when all three distinct source registers
    /// share one bank (Kepler only; Table 2 shows 44.2).
    pub fn ffma_three_way_conflict(&self) -> f64 {
        match self.generation {
            Generation::Kepler => 44.2,
            _ => self.ffma_peak(),
        }
    }

    /// Measured FFMA throughput ceiling when source registers repeat
    /// (e.g. `FFMA RA, RB, RB, RA`): ~178 on Kepler with carefully designed
    /// code (Section 3.3).
    pub fn ffma_reuse_peak(&self) -> f64 {
        match self.generation {
            Generation::Kepler => 178.0,
            _ => self.ffma_peak(),
        }
    }

    /// IMUL/IMAD throughput (quarter rate on Kepler: Table 2 shows 33.2).
    pub fn imul_peak(&self) -> f64 {
        match self.generation {
            Generation::Gt200 => 2.0,
            Generation::Fermi => 16.0,
            Generation::Kepler => 33.2,
        }
    }

    /// LDS.X thread-instruction throughput per shader cycle per SM
    /// (Section 4.1):
    ///
    /// * Fermi: LDS 16/cycle; LDS.64 8/cycle (same data rate); LDS.128
    ///   2/cycle (intrinsic 2-way bank conflict).
    /// * Kepler: LDS.64 33.1/cycle; LDS 33.1/cycle (half the data rate);
    ///   LDS.128 16.5/cycle (same data rate as LDS.64, "no penalty").
    pub fn lds_inst_throughput(&self, width: LdsWidth) -> f64 {
        match (self.generation, width) {
            (Generation::Gt200, LdsWidth::B32) => 8.0,
            (Generation::Gt200, LdsWidth::B64) => 4.0,
            (Generation::Gt200, LdsWidth::B128) => 1.0,
            (Generation::Fermi, LdsWidth::B32) => 16.0,
            (Generation::Fermi, LdsWidth::B64) => 8.0,
            (Generation::Fermi, LdsWidth::B128) => 2.0,
            (Generation::Kepler, LdsWidth::B32) => 33.1,
            (Generation::Kepler, LdsWidth::B64) => 33.1,
            (Generation::Kepler, LdsWidth::B128) => 16.55,
        }
    }

    /// Shared-memory *data* throughput in bytes per shader cycle per SM for
    /// the given access width.
    pub fn lds_data_throughput(&self, width: LdsWidth) -> f64 {
        self.lds_inst_throughput(width) * f64::from(width.bytes())
    }

    /// The measured *mixed* thread-instruction throughput for a main loop of
    /// `ratio` FFMA per one LDS of `width` (Figure 2 / Section 4.2).
    ///
    /// This is an analytic pipe model: in steady state a group of
    /// `ratio + 1` instructions needs
    /// `max(issue cycles, SP cycles, LD/ST cycles)` per warp, with the
    /// per-pipe costs taken from the measured peaks above, then derated by
    /// the small measured issue inefficiency (Fermi 6:1 LDS.64 measures 30.4
    /// against an ideal 32).
    pub fn mixed_throughput(&self, ratio: u32, width: LdsWidth) -> f64 {
        self.mixed_throughput_ideal(ratio, width) * self.mix_efficiency(width)
    }

    /// The *ideal* mixed throughput from the pipe model alone, before the
    /// measured derating of [`ThroughputTable::mixed_throughput`]. The
    /// upper-bound model uses a more optimistic derating than the steady
    /// measurement (the paper quotes 30.4 as measured for the Fermi 6:1
    /// LDS.64 mix in Section 4.2 but uses 30.8 — "close to 32" — in the
    /// Section 4.5 bound).
    pub fn mixed_throughput_ideal(&self, ratio: u32, width: LdsWidth) -> f64 {
        let ratio = f64::from(ratio);
        let group = ratio + 1.0;
        // Cycles consumed per group of (ratio FFMA + 1 LDS) warp insts,
        // normalized to thread instructions: each pipe processes at its peak.
        let ffma_cycles = ratio * 32.0 / self.ffma_peak();
        let lds_cycles = 32.0 / self.lds_inst_throughput(width);
        let issue_peak = match self.generation {
            Generation::Gt200 => 16.0,
            Generation::Fermi => 32.0,
            Generation::Kepler => 132.0,
        };
        let issue_cycles = group * 32.0 / issue_peak;
        // The SP and LD/ST pipes drain in parallel; the group takes as long
        // as its most loaded resource (issue, SP, or LD/ST).
        let cycles = issue_cycles.max(ffma_cycles).max(lds_cycles);
        group * 32.0 / cycles
    }

    /// Measured derating of the mixed throughput against the ideal pipe
    /// model. Calibrated from the paper's quoted points: Fermi 6:1 ratios
    /// 31.3 (LDS), 30.4 (LDS.64), 24.5 (LDS.128 at 12:1); Kepler 122.4
    /// (LDS.64 at 6:1) and 119.9 (LDS.128 at 12:1).
    fn mix_efficiency(&self, width: LdsWidth) -> f64 {
        match (self.generation, width) {
            (Generation::Fermi, LdsWidth::B32) => 0.978,
            (Generation::Fermi, LdsWidth::B64) => 0.95,
            (Generation::Fermi, LdsWidth::B128) => 0.942,
            (Generation::Kepler, LdsWidth::B32) => 0.95,
            (Generation::Kepler, LdsWidth::B64) => 0.927,
            (Generation::Kepler, LdsWidth::B128) => 0.908,
            (Generation::Gt200, _) => 1.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fermi() -> ThroughputTable {
        ThroughputTable::for_generation(Generation::Fermi)
    }

    fn kepler() -> ThroughputTable {
        ThroughputTable::for_generation(Generation::Kepler)
    }

    #[test]
    fn lds_width_properties() {
        assert_eq!(LdsWidth::B32.bytes(), 4);
        assert_eq!(LdsWidth::B64.words(), 2);
        assert_eq!(LdsWidth::B128.suffix(), ".128");
    }

    #[test]
    fn fermi_lds_data_rates_match_section_4_1() {
        let t = fermi();
        // LDS.64 does not increase the data throughput over LDS (64 B/cycle).
        assert_eq!(
            t.lds_data_throughput(LdsWidth::B32),
            t.lds_data_throughput(LdsWidth::B64)
        );
        // LDS.128 is a throughput loss.
        assert!(t.lds_data_throughput(LdsWidth::B128) < t.lds_data_throughput(LdsWidth::B64));
    }

    #[test]
    fn kepler_lds_data_rates_match_section_4_1() {
        let t = kepler();
        // 32-bit LDS halves the data throughput vs LDS.64.
        let r = t.lds_data_throughput(LdsWidth::B32) / t.lds_data_throughput(LdsWidth::B64);
        assert!((r - 0.5).abs() < 1e-9);
        // LDS.128 introduces no data-rate penalty.
        let r128 = t.lds_data_throughput(LdsWidth::B128) / t.lds_data_throughput(LdsWidth::B64);
        assert!((r128 - 1.0).abs() < 1e-9);
    }

    #[test]
    fn fermi_mixed_throughput_matches_section_4_2() {
        let t = fermi();
        // Paper: with 6-register blocking, overall SM throughputs are
        // 31.3 (LDS, 3:1), 30.4 (LDS.64, 6:1), 24.5 (LDS.128, 12:1).
        assert!((t.mixed_throughput(3, LdsWidth::B32) - 31.3).abs() < 0.2);
        assert!((t.mixed_throughput(6, LdsWidth::B64) - 30.4).abs() < 0.2);
        assert!((t.mixed_throughput(12, LdsWidth::B128) - 24.5).abs() < 0.3);
    }

    #[test]
    fn kepler_mixed_throughput_matches_section_4_5() {
        let t = kepler();
        // Paper Section 4.5 uses 122.4 (LDS.64, 6:1) and 119.9 (LDS.128, 12:1).
        assert!((t.mixed_throughput(6, LdsWidth::B64) - 122.4).abs() < 0.5);
        assert!((t.mixed_throughput(12, LdsWidth::B128) - 119.9).abs() < 0.6);
    }

    #[test]
    fn mixed_throughput_saturates_with_ratio() {
        for table in [fermi(), kepler()] {
            for width in LdsWidth::ALL {
                let mut last = 0.0;
                for ratio in 1..32 {
                    let cur = table.mixed_throughput(ratio, width);
                    assert!(
                        cur + 1e-9 >= last,
                        "{:?} {:?} ratio {} dropped: {} < {}",
                        table.generation(),
                        width,
                        ratio,
                        cur,
                        last
                    );
                    last = cur;
                }
                assert!(last <= table.ffma_peak() + 1e-9);
            }
        }
    }

    #[test]
    fn table2_conflict_levels() {
        let t = kepler();
        assert!(t.ffma_two_way_conflict() < t.ffma_peak());
        assert!(t.ffma_three_way_conflict() < t.ffma_two_way_conflict());
        assert!(t.ffma_reuse_peak() > t.ffma_peak());
        // 2-way conflict is ~50% of peak, 3-way ~33%.
        assert!((t.ffma_two_way_conflict() / t.ffma_peak() - 0.5).abs() < 0.02);
        assert!((t.ffma_three_way_conflict() / t.ffma_peak() - 1.0 / 3.0).abs() < 0.01);
    }
}
