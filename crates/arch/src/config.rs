//! Concrete GPU configurations (the cards used in the paper).

use crate::{Generation, OccupancyLimits, ThroughputTable, WARP_SIZE};

/// A concrete GPU configuration: one row of Table 1, plus the derived
/// quantities the upper-bound analysis and the simulator need.
///
/// Constructors are provided for the three cards of the study
/// ([`GpuConfig::gtx280`], [`GpuConfig::gtx580`], [`GpuConfig::gtx680`]); the
/// fields are public so that "what-if" configurations can be derived by
/// mutation (e.g. to sweep scheduler counts in ablation benches).
#[derive(Debug, Clone, PartialEq)]
pub struct GpuConfig {
    /// Marketing name of the card (e.g. `"GTX580"`).
    pub name: &'static str,
    /// Architecture generation.
    pub generation: Generation,
    /// Core (scheduler) clock in MHz.
    pub core_clock_mhz: f64,
    /// Shader clock in MHz. On Kepler this equals the core clock; the paper
    /// keeps the term so that all throughputs are in shader cycles.
    pub shader_clock_mhz: f64,
    /// Boost clock in MHz, used by the paper to convert Kepler measurements
    /// (GTX680 boost = 1058 MHz). Equal to the shader clock when the card
    /// has no boost.
    pub boost_clock_mhz: f64,
    /// Global memory bandwidth in GB/s.
    pub mem_bandwidth_gbps: f64,
    /// Number of SMs (SMX on Kepler).
    pub num_sms: u32,
    /// Warp schedulers per SM.
    pub warp_schedulers_per_sm: u32,
    /// Dispatch units per SM.
    pub dispatch_units_per_sm: u32,
    /// Streaming processors (CUDA cores) per SM.
    pub sps_per_sm: u32,
    /// Load/store units per SM.
    pub ldst_units_per_sm: u32,
    /// Shared memory per SM in bytes.
    pub shared_mem_per_sm: u32,
    /// 32-bit registers per SM.
    pub registers_per_sm: u32,
    /// Maximum resident threads per SM (hardware limit, independent of
    /// register/shared-memory pressure).
    pub max_threads_per_sm: u32,
    /// Maximum resident blocks per SM.
    pub max_blocks_per_sm: u32,
    /// Maximum threads per block.
    pub max_threads_per_block: u32,
}

impl GpuConfig {
    /// GTX280 (GT200), the historical comparison point of Table 1.
    pub fn gtx280() -> GpuConfig {
        GpuConfig {
            name: "GTX280",
            generation: Generation::Gt200,
            core_clock_mhz: 602.0,
            shader_clock_mhz: 1296.0,
            boost_clock_mhz: 1296.0,
            mem_bandwidth_gbps: 141.7,
            num_sms: 30,
            warp_schedulers_per_sm: 1,
            dispatch_units_per_sm: 1,
            sps_per_sm: 8,
            ldst_units_per_sm: 8, // "unknown" in Table 1; modeled as 8
            shared_mem_per_sm: 16 * 1024,
            registers_per_sm: 16 * 1024,
            max_threads_per_sm: 1024,
            max_blocks_per_sm: 8,
            max_threads_per_block: 512,
        }
    }

    /// GTX580 (Fermi GF110), the primary Fermi target of the paper.
    pub fn gtx580() -> GpuConfig {
        GpuConfig {
            name: "GTX580",
            generation: Generation::Fermi,
            core_clock_mhz: 772.0,
            shader_clock_mhz: 1544.0,
            boost_clock_mhz: 1544.0,
            mem_bandwidth_gbps: 192.4,
            num_sms: 16,
            warp_schedulers_per_sm: 2,
            dispatch_units_per_sm: 2,
            sps_per_sm: 32,
            ldst_units_per_sm: 16,
            shared_mem_per_sm: 48 * 1024,
            registers_per_sm: 32 * 1024,
            max_threads_per_sm: 1536,
            max_blocks_per_sm: 8,
            max_threads_per_block: 1024,
        }
    }

    /// GTX680 (Kepler GK104), the primary Kepler target of the paper.
    pub fn gtx680() -> GpuConfig {
        GpuConfig {
            name: "GTX680",
            generation: Generation::Kepler,
            core_clock_mhz: 1006.0,
            shader_clock_mhz: 1006.0,
            boost_clock_mhz: 1058.0,
            mem_bandwidth_gbps: 192.26,
            num_sms: 8,
            warp_schedulers_per_sm: 4,
            dispatch_units_per_sm: 8,
            sps_per_sm: 192,
            ldst_units_per_sm: 32,
            shared_mem_per_sm: 48 * 1024,
            registers_per_sm: 64 * 1024,
            max_threads_per_sm: 2048,
            max_blocks_per_sm: 16,
            max_threads_per_block: 1024,
        }
    }

    /// The preset for a generation (the card the paper used for it).
    pub fn preset(generation: Generation) -> GpuConfig {
        match generation {
            Generation::Gt200 => GpuConfig::gtx280(),
            Generation::Fermi => GpuConfig::gtx580(),
            Generation::Kepler => GpuConfig::gtx680(),
        }
    }

    /// Theoretical single-precision peak in GFLOPS.
    ///
    /// Every SP retires one FFMA (2 flops) per shader cycle; on GT200 the
    /// marketing peak additionally counts the dual-issued MUL in the SFU
    /// path (3 flops per SP-cycle), which is how Table 1 arrives at 933
    /// GFLOPS for the GTX280. Matches the last row of Table 1
    /// (933 / 1581 / 3090).
    pub fn theoretical_peak_gflops(&self) -> f64 {
        let flops_per_sp = match self.generation {
            Generation::Gt200 => 3,
            Generation::Fermi | Generation::Kepler => 2,
        };
        let flops_per_cycle = f64::from(self.num_sms * self.sps_per_sm * flops_per_sp);
        flops_per_cycle * self.shader_clock_mhz / 1000.0
    }

    /// SP thread-instruction processing throughput per shader cycle per SM
    /// (Table 1 row "SP Thread Instruction processing throughput").
    pub fn sp_throughput_per_cycle(&self) -> u32 {
        self.sps_per_sm
    }

    /// Thread-instruction *issue* throughput per shader cycle per SM
    /// (Table 1). GT200's single scheduler issues one warp instruction per
    /// core cycle = 16 thread instructions per shader cycle; Fermi's two
    /// schedulers sustain 32; Kepler's claimed figure is 128 (marked `?` in
    /// the paper — the measured effective limit is lower, see
    /// [`ThroughputTable::kepler_issue_limit`]).
    pub fn issue_throughput_per_cycle(&self) -> u32 {
        match self.generation {
            Generation::Gt200 => 16,
            Generation::Fermi => 32,
            Generation::Kepler => 128,
        }
    }

    /// Global memory bandwidth expressed in bytes per shader cycle for the
    /// whole GPU.
    pub fn mem_bytes_per_cycle(&self) -> f64 {
        self.mem_bandwidth_gbps * 1.0e9 / (self.shader_clock_mhz * 1.0e6)
    }

    /// Global memory bandwidth share of one SM, in bytes per shader cycle.
    pub fn mem_bytes_per_cycle_per_sm(&self) -> f64 {
        self.mem_bytes_per_cycle() / f64::from(self.num_sms)
    }

    /// Maximum resident warps per SM (thread limit / warp size).
    pub fn max_warps_per_sm(&self) -> u32 {
        self.max_threads_per_sm / WARP_SIZE
    }

    /// The occupancy calculator for this configuration.
    pub fn occupancy(&self) -> OccupancyLimits {
        OccupancyLimits::new(self)
    }

    /// The measured instruction-throughput table for this generation
    /// (the calibration database of Section 3.3 / Figure 2).
    pub fn throughput(&self) -> ThroughputTable {
        ThroughputTable::for_generation(self.generation)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn theoretical_peaks_match_table1() {
        assert!((GpuConfig::gtx280().theoretical_peak_gflops() - 933.0).abs() < 15.0);
        assert!((GpuConfig::gtx580().theoretical_peak_gflops() - 1581.0).abs() < 1.0);
        assert!((GpuConfig::gtx680().theoretical_peak_gflops() - 3090.0).abs() < 1.0);
    }

    #[test]
    fn kepler_unified_clock() {
        let k = GpuConfig::gtx680();
        assert_eq!(k.core_clock_mhz, k.shader_clock_mhz);
        let f = GpuConfig::gtx580();
        assert_eq!(f.shader_clock_mhz, 2.0 * f.core_clock_mhz);
    }

    #[test]
    fn memory_bandwidth_per_cycle() {
        let f = GpuConfig::gtx580();
        // 192.4 GB/s at 1544 MHz = ~124.6 B/cycle for the GPU.
        assert!((f.mem_bytes_per_cycle() - 124.6).abs() < 0.5);
        assert!((f.mem_bytes_per_cycle_per_sm() - 7.79).abs() < 0.05);
    }

    #[test]
    fn preset_lookup() {
        for gen in Generation::ALL {
            assert_eq!(GpuConfig::preset(gen).generation, gen);
        }
    }

    #[test]
    fn issue_vs_sp_throughput_relationship() {
        // GT200: issue (16) > SP (8) -> free issue slots for auxiliary work.
        let g = GpuConfig::gtx280();
        assert!(g.issue_throughput_per_cycle() > g.sp_throughput_per_cycle());
        // Fermi: issue (32) == SP (32) -> every auxiliary instruction steals
        // an FFMA slot, the central observation of Section 4.2.
        let f = GpuConfig::gtx580();
        assert_eq!(f.issue_throughput_per_cycle(), f.sp_throughput_per_cycle());
        // Kepler: claimed issue (128) < SP (192) -> cannot even theoretically
        // saturate the SPs with one-instruction-per-thread streams.
        let k = GpuConfig::gtx680();
        assert!(k.issue_throughput_per_cycle() < k.sp_throughput_per_cycle());
    }
}
