//! Rendering of Table 1 ("Architecture Evolution") from the configuration
//! database.

use crate::{Generation, GpuConfig};

/// One labelled row of Table 1: the metric name and its value for each of the
/// three generations (GT200 / Fermi / Kepler).
#[derive(Debug, Clone, PartialEq)]
pub struct Table1Row {
    /// Metric label as printed in the paper.
    pub label: &'static str,
    /// Values for `[GT200, Fermi, Kepler]`.
    pub values: [String; 3],
}

fn fmt_num(v: f64) -> String {
    if (v - v.round()).abs() < 1e-9 {
        format!("{}", v.round() as i64)
    } else {
        format!("{v:.2}")
    }
}

/// Regenerate the rows of Table 1 from the three card presets.
pub fn render_table1() -> Vec<Table1Row> {
    let cards: Vec<GpuConfig> = Generation::ALL
        .iter()
        .map(|&g| GpuConfig::preset(g))
        .collect();
    let row = |label: &'static str, f: &dyn Fn(&GpuConfig) -> String| Table1Row {
        label,
        values: [f(&cards[0]), f(&cards[1]), f(&cards[2])],
    };
    vec![
        row("Core Clock (MHz)", &|c| fmt_num(c.core_clock_mhz)),
        row("Shader Clock (MHz)", &|c| fmt_num(c.shader_clock_mhz)),
        row("Global Memory Bandwidth (GB/s)", &|c| {
            fmt_num(c.mem_bandwidth_gbps)
        }),
        row("Warp Scheduler per SM", &|c| {
            fmt_num(f64::from(c.warp_schedulers_per_sm))
        }),
        row("Dispatch Unit per SM", &|c| {
            fmt_num(f64::from(c.dispatch_units_per_sm))
        }),
        row(
            "Thread Instruction issue throughput per shader cycle per SM",
            &|c| fmt_num(f64::from(c.issue_throughput_per_cycle())),
        ),
        row("SP per SM", &|c| fmt_num(f64::from(c.sps_per_sm))),
        row(
            "SP Thread Instruction processing throughput per shader cycle per SM (FMAD/FFMA)",
            &|c| fmt_num(f64::from(c.sp_throughput_per_cycle())),
        ),
        row("LD/ST Unit per SM", &|c| {
            fmt_num(f64::from(c.ldst_units_per_sm))
        }),
        row("Shared Memory per SM (KB)", &|c| {
            fmt_num(f64::from(c.shared_mem_per_sm) / 1024.0)
        }),
        row("32bit Registers per SM (K)", &|c| {
            fmt_num(f64::from(c.registers_per_sm) / 1024.0)
        }),
        row("Theoretical Peak Performance (GFLOPS)", &|c| {
            fmt_num(c.theoretical_peak_gflops().round())
        }),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_has_paper_values() {
        let rows = render_table1();
        let find = |label: &str| -> &Table1Row {
            rows.iter()
                .find(|r| r.label == label)
                .unwrap_or_else(|| panic!("missing row {label}"))
        };
        assert_eq!(find("Core Clock (MHz)").values, ["602", "772", "1006"]);
        assert_eq!(find("Shader Clock (MHz)").values, ["1296", "1544", "1006"]);
        assert_eq!(find("SP per SM").values, ["8", "32", "192"]);
        assert_eq!(find("Warp Scheduler per SM").values, ["1", "2", "4"]);
        assert_eq!(find("Dispatch Unit per SM").values, ["1", "2", "8"]);
        assert_eq!(
            find("Theoretical Peak Performance (GFLOPS)").values,
            ["933", "1581", "3090"]
        );
        assert_eq!(find("Shared Memory per SM (KB)").values, ["16", "48", "48"]);
        assert_eq!(
            find("32bit Registers per SM (K)").values,
            ["16", "32", "64"]
        );
    }

    #[test]
    fn table1_row_count_is_stable() {
        assert_eq!(render_table1().len(), 12);
    }
}
