//! GPU architecture descriptions for the Fermi/Kepler SGEMM upper-bound study.
//!
//! This crate is the static knowledge base of the reproduction: it encodes the
//! architecture parameters from Table 1 of Lai & Seznec (CGO 2013) for the
//! three GPU generations the paper compares (GT200 / Fermi GF110 / Kepler
//! GK104), plus the derived quantities the analysis needs — theoretical peak
//! GFLOPS, issue and load/store throughput, occupancy limits, and the Kepler
//! register-bank mapping reverse-engineered in Section 3.3 of the paper.
//!
//! # Example
//!
//! ```
//! use peakperf_arch::{GpuConfig, Generation};
//!
//! let gtx580 = GpuConfig::gtx580();
//! assert_eq!(gtx580.generation, Generation::Fermi);
//! // Table 1: 1581 GFLOPS theoretical peak.
//! assert!((gtx580.theoretical_peak_gflops() - 1581.0).abs() < 1.0);
//! ```

mod banks;
mod config;
mod generation;
mod limits;
mod table1;
mod throughput;

pub use banks::{register_bank, RegisterBank};
pub use config::GpuConfig;
pub use generation::Generation;
pub use limits::{BlockShape, OccupancyLimits, OccupancyResult};
pub use table1::{render_table1, Table1Row};
pub use throughput::{LdsWidth, ThroughputTable};

/// Number of threads in a warp on every generation this crate models.
pub const WARP_SIZE: u32 = 32;
