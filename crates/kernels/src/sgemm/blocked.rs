//! The register-blocked SGEMM generator (Sections 4.5 and 5 of the paper).
//!
//! Structure (per block, 256 threads as 16×16, computing a 96×96 tile of
//! C with 6×6 register blocking):
//!
//! * shared memory holds one 96×16 tile of op(A) and one 16×96 tile of
//!   op(B), both stored k-major with a **stride of 98 words** — the even,
//!   non-multiple-of-32 padding that makes every store pattern
//!   bank-conflict-free while keeping `LDS.64` destinations 8-byte aligned
//!   (Section 5.1: "proper padding needs to be applied");
//! * the main loop runs 16 k-steps per tile; each step issues 3 `LDS.64`
//!   for the A column, and three times {1 `LDS.64` B pair + 12 FFMA} —
//!   exactly the 6:1 FFMA:LDS.64 ratio of Section 4.5;
//! * global data for the *next* tile is prefetched through 12 registers,
//!   interleaved into the FFMA stream (Section 5.3), and stored to shared
//!   memory between the two barriers (the only shared-memory stores live
//!   there, as the paper describes);
//! * matrix sizes and leading dimensions are immediates (the kernel is
//!   size-specialized), which is how the register budget closes at 63.

use peakperf_arch::Generation;
use peakperf_regalloc::SgemmPlan;
use peakperf_sass::{
    CmpOp, CtlInfo, KernelBuilder, MemSpace, MemWidth, Op, OpClass, Operand, Pred, Reg, SpecialReg,
};
use peakperf_sim::{LaunchConfig, SimError};

use super::{SgemmBuild, SgemmProblem, Trans};

/// Block tile edge (`B_Sh = sqrt(256) * 6 = 96`).
const BM: u32 = 96;
/// k-depth of a shared tile (`L`).
const L: u32 = 16;
/// Shared tile stride in 32-bit words: even (keeps `LDS.64` aligned) and
/// not a multiple of 32 (keeps the 16-row store patterns conflict-free).
const STRIDE: u32 = 98;
/// Byte size of one shared tile.
const TILE_BYTES: u32 = STRIDE * L * 4;

/// Register-assignment strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PlanKind {
    /// The conflict-free assignment of Section 5.4 / Figure 9.
    BankOptimized,
    /// Sequential assignment — the paper's first Kepler version
    /// (68.8 % 2-way conflicts).
    Naive,
    /// nvcc-typical assignment: mostly reasonable but ~30 % of main-loop
    /// FFMAs carry a 2-way bank conflict (Figure 8, MAGMA bars).
    NvccLike,
}

/// Kepler control-notation strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CtlMode {
    /// Full static scheduling: stall fields sized from the dependency
    /// structure (what a perfect assembler would emit).
    Scheduled,
    /// One notation per instruction *type* — the paper's compromise, since
    /// NVIDIA never disclosed the encoding (Section 3.2).
    PerType,
}

/// Generator options (the presets in [`super::Preset`] map onto these).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockedOptions {
    /// Register plan.
    pub plan: PlanKind,
    /// Interleave next-tile global loads into the FFMA stream
    /// (Section 5.3) instead of issuing them as a burst before the stores.
    pub interleave_prefetch: bool,
    /// Keep address arithmetic at the loop head instead of mixing it into
    /// the shared-memory access stream (Section 5.3 optimization 1, off
    /// for the optimized kernel).
    pub hoist_addresses: bool,
    /// Number of registers to spill through local memory per tile
    /// (MAGMA-like builds use 10 — Section 5.5).
    pub spill_registers: u32,
    /// Redundant auxiliary instructions a compiler would emit per k-step
    /// (address recomputation the hand-written kernel eliminates;
    /// Section 5.1/6: "the general guideline is to reduce the auxiliary
    /// instructions").
    pub extra_aux_per_step: u32,
    /// Kepler control-notation strategy (ignored on Fermi).
    pub ctl: CtlMode,
}

impl Default for BlockedOptions {
    fn default() -> BlockedOptions {
        super::Preset::AsmOpt.options()
    }
}

/// How one matrix operand is streamed from global memory into its shared
/// tile.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LoaderShape {
    /// The fast dimension of the stored matrix runs along the 96-wide tile
    /// edge: each thread moves 6 consecutive floats with 3 `LD.64`/
    /// `STS.64` pairs. Cursor advances by `16 * ld * 4` bytes per tile.
    ColumnRuns,
    /// The fast dimension runs along k: each thread moves one float from
    /// each of 6 columns (6 × 32-bit `LD`/`STS`). Cursor advances 64 bytes
    /// per tile.
    RowRuns,
}

struct LoaderPlan {
    shape: LoaderShape,
    /// Leading dimension of the stored matrix (elements).
    ld: u32,
    /// Which grid coordinate selects this operand's 96-block.
    block_coord: SpecialReg,
    /// Byte base of the tile in shared memory.
    smem_base: u32,
}

impl LoaderPlan {
    fn cursor_step(&self) -> i32 {
        match self.shape {
            LoaderShape::ColumnRuns => (L * self.ld * 4) as i32,
            LoaderShape::RowRuns => (L * 4) as i32,
        }
    }
}

fn loader_plans(problem: &SgemmProblem) -> (LoaderPlan, LoaderPlan) {
    let (ta, tb) = problem.variant.ops();
    let a = LoaderPlan {
        shape: match ta {
            Trans::N => LoaderShape::ColumnRuns,
            Trans::T => LoaderShape::RowRuns,
        },
        ld: problem.lda(),
        block_coord: SpecialReg::CtaidX,
        smem_base: 0,
    };
    let b = LoaderPlan {
        shape: match tb {
            Trans::N => LoaderShape::RowRuns,
            Trans::T => LoaderShape::ColumnRuns,
        },
        ld: problem.ldb(),
        block_coord: SpecialReg::CtaidY,
        smem_base: TILE_BYTES,
    };
    (a, b)
}

fn make_plan(kind: PlanKind) -> Result<SgemmPlan, SimError> {
    match kind {
        PlanKind::Naive => Ok(SgemmPlan::naive(6)),
        PlanKind::BankOptimized | PlanKind::NvccLike => {
            let mut plan = SgemmPlan::bank_optimized(6).map_err(|e| SimError::Invalid {
                message: e.to_string(),
            })?;
            if kind == PlanKind::NvccLike {
                degrade_plan(&mut plan);
            }
            Ok(plan)
        }
    }
}

/// Perturb a conflict-free plan the way an unaware compiler would: rotate
/// part of the accumulator assignment so roughly a third of the main-loop
/// FFMAs pick up a 2-way bank conflict (Figure 8's MAGMA profile).
fn degrade_plan(plan: &mut SgemmPlan) {
    let br = plan.br;
    let mut flat: Vec<Reg> = plan.c.iter().flatten().copied().collect();
    // Rotate the first two rows' accumulators by one position.
    let n = 2 * br;
    flat[..n].rotate_right(1);
    for i in 0..br {
        for j in 0..br {
            plan.c[i][j] = flat[i * br + j];
        }
    }
}

/// Build a register-blocked SGEMM kernel.
///
/// # Errors
///
/// Returns [`SimError::Launch`] for unsupported sizes (m, n must be
/// multiples of 96, k a positive multiple of 16, leading dimensions at
/// most 8191) and propagates builder/allocator failures.
pub fn build_blocked(
    generation: Generation,
    problem: &SgemmProblem,
    opts: &BlockedOptions,
) -> Result<SgemmBuild, SimError> {
    if !problem.m.is_multiple_of(BM) || !problem.n.is_multiple_of(BM) {
        return Err(SimError::Launch {
            message: format!(
                "blocked sgemm requires m, n multiples of {BM}, got {}x{}",
                problem.m, problem.n
            ),
        });
    }
    if problem.k == 0 || !problem.k.is_multiple_of(L) {
        return Err(SimError::Launch {
            message: format!("blocked sgemm requires k a positive multiple of {L}"),
        });
    }
    for ld in [problem.lda(), problem.ldb(), problem.ldc()] {
        if ld > 8191 {
            return Err(SimError::Launch {
                message: format!("leading dimension {ld} exceeds the immediate budget"),
            });
        }
    }

    let plan = make_plan(opts.plan)?;
    let (a_loader, b_loader) = loader_plans(problem);
    let tiles = problem.k / L;

    let mut b = KernelBuilder::new(
        format!("sgemm_{}_blocked", problem.variant.name()),
        generation,
    );
    b.shared_bytes(2 * TILE_BYTES);
    if opts.spill_registers > 0 {
        b.local_bytes(opts.spill_registers * 4);
    }
    let p_a = b.param("a");
    let p_b = b.param("b");
    let p_c = b.param("c");
    let p_alpha = b.param("alpha");
    let p_beta = b.param("beta");

    let gen = Emitter {
        builder: b,
        plan,
        problem: *problem,
        opts: *opts,
        p_a,
        p_b,
        p_c,
        p_alpha,
        p_beta,
    };
    let kernel = gen.emit(&a_loader, &b_loader, tiles)?;
    Ok(SgemmBuild {
        kernel,
        config: LaunchConfig {
            grid: peakperf_sim::Dim3::new_2d(problem.m / BM, problem.n / BM),
            block: peakperf_sim::Dim3::new_1d(256),
        },
        problem: *problem,
    })
}

struct Emitter {
    builder: KernelBuilder,
    plan: SgemmPlan,
    problem: SgemmProblem,
    opts: BlockedOptions,
    p_a: Operand,
    p_b: Operand,
    p_c: Operand,
    p_alpha: Operand,
    p_beta: Operand,
}

impl Emitter {
    fn c_flat(&self, idx: usize) -> Reg {
        self.plan.c[idx / 6][idx % 6]
    }

    /// Emit the global loads of one tile into the prefetch registers.
    /// Returns the instruction emitters deferred as closure-free steps so
    /// the main loop can interleave them.
    fn prefetch_steps(&self, loader: &LoaderPlan, cursor: Reg, pf: &[Reg]) -> Vec<Op> {
        match loader.shape {
            LoaderShape::ColumnRuns => (0..3)
                .map(|p| Op::Ld {
                    space: MemSpace::Global,
                    width: MemWidth::B64,
                    dst: pf[2 * p],
                    addr: cursor,
                    offset: (p as i32) * 8,
                })
                .collect(),
            LoaderShape::RowRuns => (0..6)
                .map(|j| Op::Ld {
                    space: MemSpace::Global,
                    width: MemWidth::B32,
                    dst: pf[j],
                    addr: cursor,
                    offset: (j as u32 * loader.ld * 4) as i32,
                })
                .collect(),
        }
    }

    /// Emit the shared-memory stores of one tile from the prefetch
    /// registers.
    fn store_steps(&self, loader: &LoaderPlan, store: Reg, pf: &[Reg]) -> Vec<Op> {
        match loader.shape {
            LoaderShape::ColumnRuns => (0..3)
                .map(|p| Op::St {
                    space: MemSpace::Shared,
                    width: MemWidth::B64,
                    src: pf[2 * p],
                    addr: store,
                    offset: (p as i32) * 8,
                })
                .collect(),
            LoaderShape::RowRuns => (0..6)
                .map(|j| Op::St {
                    space: MemSpace::Shared,
                    width: MemWidth::B32,
                    src: pf[j],
                    addr: store,
                    offset: (j as i32) * 4,
                })
                .collect(),
        }
    }

    /// Prologue cursor setup for one operand. Uses `s0..s3` scratch
    /// registers (tx, ty, and two temporaries).
    #[allow(clippy::too_many_arguments)]
    fn setup_cursors(
        &mut self,
        loader: &LoaderPlan,
        pointer: Operand,
        cursor: Reg,
        store: Reg,
        tx: Reg,
        ty: Reg,
        t0: Reg,
        t1: Reg,
    ) {
        let b = &mut self.builder;
        let ld4 = (loader.ld * 4) as i32;
        b.s2r(t0, loader.block_coord);
        match loader.shape {
            LoaderShape::ColumnRuns => {
                // cursor = p + coord*384 + ty*ld*4 + tx*24
                b.mov(cursor, pointer);
                b.imad(cursor, t0, 384, cursor);
                b.imad(cursor, ty, ld4, cursor);
                b.imad(cursor, tx, 24, cursor);
                // store = base + (ty*98 + tx*6)*4 = base + ty*392 + tx*24
                b.imul(t1, tx, 24);
                b.imad(store, ty, 392, t1);
                if loader.smem_base > 0 {
                    b.iadd(store, store, loader.smem_base as i32);
                }
            }
            LoaderShape::RowRuns => {
                // cursor = p + (tx + (coord*96 + ty*6)*ld)*4
                b.imul(t0, t0, 96);
                b.imad(t0, ty, 6, t0);
                b.mov(cursor, pointer);
                b.imad(cursor, t0, ld4, cursor);
                b.iscadd(cursor, tx, cursor, 2);
                // store = base + (tx*98 + ty*6)*4 = base + tx*392 + ty*24
                b.imul(t1, ty, 24);
                b.imad(store, tx, 392, t1);
                if loader.smem_base > 0 {
                    b.iadd(store, store, loader.smem_base as i32);
                }
            }
        }
    }

    fn emit(
        mut self,
        a_loader: &LoaderPlan,
        b_loader: &LoaderPlan,
        tiles: u32,
    ) -> Result<peakperf_sass::Kernel, SimError> {
        let addr = self.plan.addr;
        let (pf_a, pf_b): (Vec<Reg>, Vec<Reg>) = (
            self.plan.prefetch[..6].to_vec(),
            self.plan.prefetch[6..].to_vec(),
        );
        let a_col = self.plan.a_col.clone();
        let b_row = self.plan.b_row.clone();

        // --- Prologue ---------------------------------------------------
        // Scratch: accumulators are still free.
        let s_tid = self.c_flat(0);
        let tx = self.c_flat(1);
        let ty = self.c_flat(2);
        let t0 = self.c_flat(3);
        let t1 = self.c_flat(4);
        {
            let b = &mut self.builder;
            b.s2r(s_tid, SpecialReg::TidX);
            b.push(Op::Lop {
                op: peakperf_sass::LogicOp::And,
                dst: tx,
                a: s_tid,
                b: Operand::Imm(15),
            });
            b.shr(ty, s_tid, 4);
        }
        let (p_a, p_b) = (self.p_a, self.p_b);
        self.setup_cursors(
            a_loader,
            p_a,
            addr.a_global,
            addr.a_smem_store,
            tx,
            ty,
            t0,
            t1,
        );
        self.setup_cursors(
            b_loader,
            p_b,
            addr.b_global,
            addr.b_smem_store,
            tx,
            ty,
            t0,
            t1,
        );
        {
            let b = &mut self.builder;
            // Main-loop shared cursors: A at tx*24, B at TILE_BYTES + ty*24.
            b.imul(addr.a_smem, tx, 24);
            b.imul(addr.b_smem, ty, 24);
            b.iadd(addr.b_smem, addr.b_smem, TILE_BYTES as i32);
            b.mov32i(addr.loop_end, tiles);
        }
        // First tile: load + store + barrier.
        for op in self.prefetch_steps(a_loader, addr.a_global, &pf_a) {
            self.builder.push(op);
        }
        for op in self.prefetch_steps(b_loader, addr.b_global, &pf_b) {
            self.builder.push(op);
        }
        // Zero the accumulators while the loads are in flight.
        for i in 0..36 {
            let c = self.c_flat(i);
            self.builder.mov(c, Reg::RZ);
        }
        for op in self.store_steps(a_loader, addr.a_smem_store, &pf_a) {
            self.builder.push(op);
        }
        for op in self.store_steps(b_loader, addr.b_smem_store, &pf_b) {
            self.builder.push(op);
        }
        self.builder.bar();

        // --- Main loop ---------------------------------------------------
        // Queue of interleavable work: the address updates and next-tile
        // prefetch loads, spread across the k-steps when interleaving.
        let mut side_ops: Vec<(Option<Pred>, Op)> = vec![
            (
                None,
                Op::Iadd {
                    dst: addr.loop_end,
                    a: addr.loop_end,
                    b: Operand::Imm(-1),
                },
            ),
            (
                None,
                Op::Isetp {
                    p: Pred::p(1),
                    cmp: CmpOp::Gt,
                    a: addr.loop_end,
                    b: Operand::Imm(0),
                },
            ),
            (
                None,
                Op::Iadd {
                    dst: addr.a_global,
                    a: addr.a_global,
                    b: Operand::Imm(a_loader.cursor_step()),
                },
            ),
            (
                None,
                Op::Iadd {
                    dst: addr.b_global,
                    a: addr.b_global,
                    b: Operand::Imm(b_loader.cursor_step()),
                },
            ),
        ];
        let pf_ops: Vec<Op> = self
            .prefetch_steps(a_loader, addr.a_global, &pf_a)
            .into_iter()
            .chain(self.prefetch_steps(b_loader, addr.b_global, &pf_b))
            .collect();
        for op in pf_ops {
            side_ops.push((Some(Pred::p(1)), op));
        }

        let top = self.builder.label_here();

        // Spill traffic for MAGMA-like builds: store `spill` accumulators
        // to local memory and reload them, once per tile. The round trip
        // leaves the values unchanged (the FFMAs below keep updating the
        // live registers); the traffic, latency, and LD/ST pipe pressure
        // are the real cost being modeled (Section 5.5).
        let spill = self.opts.spill_registers.min(36) as usize;
        for sidx in 0..spill {
            let c = self.c_flat(sidx);
            self.builder.st(
                MemSpace::Local,
                MemWidth::B32,
                c,
                Reg::RZ,
                (sidx as i32) * 4,
            );
        }
        for sidx in 0..spill {
            let c = self.c_flat(sidx);
            self.builder.ld(
                MemSpace::Local,
                MemWidth::B32,
                c,
                Reg::RZ,
                (sidx as i32) * 4,
            );
        }

        let mut side_iter = side_ops.into_iter();
        if self.opts.hoist_addresses {
            // Compiler-style: everything at the loop head.
            for (pred, op) in side_iter.by_ref() {
                if let Some(p) = pred {
                    self.builder.with_pred(p, false);
                }
                self.builder.push(op);
            }
        }

        for kk in 0..L {
            let koff = (kk * STRIDE * 4) as i32;
            // Compiler-typical redundant address recomputation.
            for x in 0..self.opts.extra_aux_per_step {
                let victim = match x % 4 {
                    0 => addr.a_smem,
                    1 => addr.b_smem,
                    2 => addr.a_smem_store,
                    _ => addr.b_smem_store,
                };
                self.builder.iadd(victim, victim, 0);
            }
            // A column: 3 x LDS.64.
            for p in 0..3 {
                self.lds64(a_col[2 * p], addr.a_smem, koff + (p as i32) * 8);
            }
            // Mix one side op (address update / prefetch load) per k-step.
            if !self.opts.hoist_addresses {
                if let Some((pred, op)) = side_iter.next() {
                    if let Some(p) = pred {
                        self.builder.with_pred(p, false);
                    }
                    self.builder.push(op);
                }
                if !self.opts.interleave_prefetch {
                    // Drain everything immediately after the first k-step's
                    // loads: a burst, not an interleave.
                    for (pred, op) in side_iter.by_ref() {
                        if let Some(p) = pred {
                            self.builder.with_pred(p, false);
                        }
                        self.builder.push(op);
                    }
                }
            }
            // Three B pairs, each feeding 12 FFMAs.
            for chunk in 0..3 {
                self.lds64(b_row[0], addr.b_smem, koff + chunk * 8);
                for (i, &a) in a_col.iter().enumerate().take(6) {
                    for jj in 0..2 {
                        let j = (chunk * 2 + jj) as usize;
                        let c = self.plan.c[i][j];
                        let ctl = self.ffma_ctl();
                        self.builder.with_ctl(ctl);
                        self.builder.ffma(c, a, Operand::Reg(b_row[jj as usize]), c);
                    }
                }
            }
        }
        // Any side ops not yet drained (e.g. very short loops).
        for (pred, op) in side_iter {
            if let Some(p) = pred {
                self.builder.with_pred(p, false);
            }
            self.builder.push(op);
        }
        self.builder.bar();
        for op in self.store_steps(a_loader, addr.a_smem_store, &pf_a) {
            self.builder.with_pred(Pred::p(1), false);
            self.builder.push(op);
        }
        for op in self.store_steps(b_loader, addr.b_smem_store, &pf_b) {
            self.builder.with_pred(Pred::p(1), false);
            self.builder.push(op);
        }
        self.builder.bar();
        self.builder.bra_if(Pred::p(1), false, top);

        // --- Epilogue -----------------------------------------------------
        // c_addr (reusing the dead A cursor):
        //   c + (ctaid.x*96 + tx*6 + (ctaid.y*96 + ty*6)*ldc)*4
        let ldc4 = (self.problem.ldc() * 4) as i32;
        let c_addr = addr.a_global;
        let (e0, e1, e2) = (pf_a[0], pf_a[1], pf_a[2]);
        {
            let p_c = self.p_c;
            let b = &mut self.builder;
            b.s2r(e0, SpecialReg::TidX);
            b.push(Op::Lop {
                op: peakperf_sass::LogicOp::And,
                dst: e1,
                a: e0,
                b: Operand::Imm(15),
            });
            b.shr(e0, e0, 4);
            b.s2r(e2, SpecialReg::CtaidY);
            b.imul(e2, e2, 96);
            b.imad(e2, e0, 6, e2);
            b.mov(c_addr, p_c);
            b.imad(c_addr, e2, ldc4, c_addr);
            b.s2r(e2, SpecialReg::CtaidX);
            b.imad(c_addr, e2, 384, c_addr);
            b.imad(c_addr, e1, 24, c_addr);
        }
        for j in 0..6usize {
            let coff = (j as i32) * ldc4;
            for p in 0..3 {
                self.builder.ld(
                    MemSpace::Global,
                    MemWidth::B64,
                    pf_a[2 * p],
                    c_addr,
                    coff + (p as i32) * 8,
                );
            }
            let p_beta = self.p_beta;
            let p_alpha = self.p_alpha;
            for &r in pf_a.iter().take(6) {
                self.builder.fmul(r, r, p_beta);
            }
            for (w, &r) in pf_a.iter().enumerate().take(6) {
                let acc = self.plan.c[w][j];
                self.builder.ffma(r, acc, p_alpha, r);
            }
            for p in 0..3 {
                self.builder.st(
                    MemSpace::Global,
                    MemWidth::B64,
                    pf_a[2 * p],
                    c_addr,
                    coff + (p as i32) * 8,
                );
            }
        }
        self.builder.exit();

        if self.builder.generation().uses_control_notation() {
            self.apply_ctl_defaults();
        }
        // Note: sched::auto_ctl can compute latency-exact stall fields, but
        // on a scoreboarded simulator long warp-level stalls only idle the
        // warp — the lightweight per-class notation measures faster, so the
        // Scheduled mode keeps it (the auto_ctl pass stays available as a
        // library transform).
        self.builder.finish().map_err(SimError::from)
    }

    fn lds64(&mut self, dst: Reg, addr: Reg, offset: i32) {
        self.builder
            .ld(MemSpace::Shared, MemWidth::B64, dst, addr, offset);
    }

    fn ffma_ctl(&self) -> CtlInfo {
        match self.opts.ctl {
            CtlMode::Scheduled => CtlInfo::stall(1),
            CtlMode::PerType => CtlInfo::stall(2),
        }
    }

    /// Give every instruction that still has the default (empty) notation a
    /// per-class stall field. FFMAs were tagged at emission; this covers
    /// the rest.
    fn apply_ctl_defaults(&mut self) {
        // The builder attaches ctl at push time; everything without an
        // explicit tag got CtlInfo::NONE and is patched here with a
        // per-class default.
        let mode = self.opts.ctl;
        let stall_for = move |class: OpClass| -> u8 {
            match class {
                OpClass::Fp32 | OpClass::Int | OpClass::Mov => match mode {
                    CtlMode::Scheduled => 1,
                    CtlMode::PerType => 2,
                },
                OpClass::IntMul => 4,
                OpClass::Mem(_) => 1,
                OpClass::Ctrl | OpClass::Barrier | OpClass::Nop => 0,
            }
        };
        self.builder
            .retag_default_ctl(|op| CtlInfo::stall(stall_for(op.class())));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpu;
    use crate::matrix::Matrix;
    use crate::sgemm::{run_sgemm, Preset, Variant};
    use peakperf_sim::Gpu;

    #[allow(clippy::too_many_arguments)]
    fn verify(
        generation: Generation,
        variant: Variant,
        m: u32,
        n: u32,
        k: u32,
        preset: Preset,
        alpha: f32,
        beta: f32,
    ) {
        let problem = SgemmProblem { variant, m, n, k };
        let build = super::super::build_preset(generation, &problem, preset).unwrap();
        assert!(
            build.kernel.num_regs <= 63,
            "uses {}",
            build.kernel.num_regs
        );
        let (ar, ac) = problem.a_shape();
        let (br, bc) = problem.b_shape();
        let a = Matrix::random(ar, ac, 11);
        let b = Matrix::random(br, bc, 22);
        let c0 = Matrix::random(m as usize, n as usize, 33);

        let mut gpu = Gpu::new(generation);
        let run = run_sgemm(&mut gpu, &build, &a, &b, &c0, alpha, beta).unwrap();

        let mut c_ref = c0.data.clone();
        cpu::sgemm(
            variant,
            m as usize,
            n as usize,
            k as usize,
            alpha,
            &a.data,
            problem.lda() as usize,
            &b.data,
            problem.ldb() as usize,
            beta,
            &mut c_ref,
            problem.ldc() as usize,
        );
        let c_ref = Matrix {
            rows: m as usize,
            cols: n as usize,
            ld: m as usize,
            data: c_ref,
        };
        let diff = run.c.max_abs_diff(&c_ref);
        let tol = 1e-3 * (k as f32).sqrt() / 16.0 + 1e-4;
        assert!(
            diff < tol,
            "{generation:?} {} {m}x{n}x{k} {}: diff {diff} > {tol}",
            variant.name(),
            preset.name()
        );
    }

    #[test]
    fn nn_matches_cpu_on_fermi() {
        verify(
            Generation::Fermi,
            Variant::NN,
            96,
            96,
            32,
            Preset::AsmOpt,
            1.0,
            0.0,
        );
    }

    #[test]
    fn all_variants_match_cpu_on_fermi() {
        for variant in Variant::ALL {
            verify(
                Generation::Fermi,
                variant,
                96,
                96,
                16,
                Preset::AsmOpt,
                1.0,
                0.0,
            );
        }
    }

    #[test]
    fn multi_block_grid_and_alpha_beta() {
        verify(
            Generation::Fermi,
            Variant::NN,
            192,
            96,
            48,
            Preset::AsmOpt,
            0.5,
            -1.5,
        );
    }

    #[test]
    fn kepler_kernel_is_also_correct() {
        verify(
            Generation::Kepler,
            Variant::NN,
            96,
            96,
            32,
            Preset::AsmOpt,
            1.0,
            2.0,
        );
    }

    #[test]
    fn degraded_presets_stay_correct() {
        for preset in [Preset::AsmNaiveRegs, Preset::CublasLike, Preset::MagmaLike] {
            verify(Generation::Fermi, Variant::NN, 96, 96, 16, preset, 1.0, 0.0);
        }
    }

    #[test]
    fn magma_like_spills_through_local_memory() {
        let problem = SgemmProblem::square(Variant::NN, 96);
        let build =
            super::super::build_preset(Generation::Fermi, &problem, Preset::MagmaLike).unwrap();
        assert_eq!(build.kernel.local_bytes, 40);
        assert!(build.kernel.count_mnemonic("STL") > 0);
        assert!(build.kernel.count_mnemonic("LDL") > 0);
    }

    #[test]
    fn instruction_mix_matches_section_4() {
        // With 1024^3 the paper reports 80.5% FFMA and 13.4% LDS.64; the
        // static main-loop mix must show the 6:1 ratio.
        let problem = SgemmProblem::square(Variant::NN, 96);
        let build =
            super::super::build_preset(Generation::Fermi, &problem, Preset::AsmOpt).unwrap();
        let ffma = build.kernel.count_mnemonic("FFMA");
        let lds = build.kernel.count_mnemonic("LDS");
        // Main loop has 16*36 = 576 FFMAs and 16*6 = 96 LDS.64 per tile.
        assert!(ffma >= 576);
        assert!(lds >= 96);
    }

    #[test]
    fn invalid_sizes_are_rejected() {
        for (m, n, k) in [(95, 96, 16), (96, 100, 16), (96, 96, 15), (96, 96, 0)] {
            let problem = SgemmProblem {
                variant: Variant::NN,
                m,
                n,
                k,
            };
            assert!(
                build_blocked(Generation::Fermi, &problem, &BlockedOptions::default()).is_err(),
                "{m}x{n}x{k} should be rejected"
            );
        }
    }

    #[test]
    fn plans_differ_in_conflicts() {
        let naive = make_plan(PlanKind::Naive).unwrap();
        let opt = make_plan(PlanKind::BankOptimized).unwrap();
        let nvcc = make_plan(PlanKind::NvccLike).unwrap();
        let (_, n2, n3) = naive.conflict_census();
        let (o1, o2, o3) = opt.conflict_census();
        let (_, v2, v3) = nvcc.conflict_census();
        assert_eq!((o1, o2, o3), (36, 0, 0));
        assert!(
            n2 + n3 > v2 + v3,
            "naive should conflict more than nvcc-like"
        );
        let nvcc_frac = (v2 + v3) as f64 / 36.0;
        assert!(
            (0.15..=0.5).contains(&nvcc_frac),
            "nvcc-like conflict fraction {nvcc_frac}"
        );
    }
}
