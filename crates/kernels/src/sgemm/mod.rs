//! SGEMM kernel generators and launch helpers.
//!
//! The generated kernels are *size-specialized*, like hand-written
//! assembly: matrix dimensions and leading dimensions are baked into the
//! instruction stream as immediates (this is also what lets the paper's
//! register budget close at exactly 63 — no registers are wasted on
//! strides). Pointers and the `alpha`/`beta` scalars remain runtime kernel
//! parameters in constant bank 0.

mod blocked;
mod naive;

pub use blocked::{build_blocked, BlockedOptions, CtlMode, PlanKind};
pub use naive::build_naive;

use peakperf_sass::Kernel;
use peakperf_sim::{FuncStats, GlobalMemory, Gpu, LaunchConfig, SimError};

pub use crate::cpu::{Trans, Variant};
use crate::matrix::Matrix;
use peakperf_arch::Generation;

/// A size-specialized SGEMM problem description.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SgemmProblem {
    /// Transpose variant.
    pub variant: Variant,
    /// Rows of C (and of op(A)).
    pub m: u32,
    /// Columns of C (and of op(B)).
    pub n: u32,
    /// Inner dimension.
    pub k: u32,
}

impl SgemmProblem {
    /// A square problem of edge `size`.
    pub fn square(variant: Variant, size: u32) -> SgemmProblem {
        SgemmProblem {
            variant,
            m: size,
            n: size,
            k: size,
        }
    }

    /// Leading dimension of A as stored (`m` untransposed, `k`
    /// transposed).
    pub fn lda(&self) -> u32 {
        match self.variant.ops().0 {
            Trans::N => self.m,
            Trans::T => self.k,
        }
    }

    /// Leading dimension of B as stored (`k` untransposed, `n`
    /// transposed).
    pub fn ldb(&self) -> u32 {
        match self.variant.ops().1 {
            Trans::N => self.k,
            Trans::T => self.n,
        }
    }

    /// Leading dimension of C.
    pub fn ldc(&self) -> u32 {
        self.m
    }

    /// Useful flops: `2·m·n·k`.
    pub fn flops(&self) -> u64 {
        crate::cpu::gemm_flops(u64::from(self.m), u64::from(self.n), u64::from(self.k))
    }

    /// Shape of the stored A matrix `(rows, cols)`.
    pub fn a_shape(&self) -> (usize, usize) {
        match self.variant.ops().0 {
            Trans::N => (self.m as usize, self.k as usize),
            Trans::T => (self.k as usize, self.m as usize),
        }
    }

    /// Shape of the stored B matrix `(rows, cols)`.
    pub fn b_shape(&self) -> (usize, usize) {
        match self.variant.ops().1 {
            Trans::N => (self.k as usize, self.n as usize),
            Trans::T => (self.n as usize, self.k as usize),
        }
    }
}

/// A generated kernel plus its launch geometry.
#[derive(Debug, Clone)]
pub struct SgemmBuild {
    /// The kernel (parameters: `a`, `b`, `c`, `alpha`, `beta`).
    pub kernel: Kernel,
    /// Grid/block configuration for the problem it was specialized for.
    pub config: LaunchConfig,
    /// The problem it was specialized for.
    pub problem: SgemmProblem,
}

/// Ready-made kernel builds corresponding to the implementations compared
/// in Figures 5-8.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Preset {
    /// The paper's hand-optimized assembly kernel: 6×6 blocking, LDS.64,
    /// interleaved prefetch, mixed address arithmetic, bank-optimized
    /// registers, scheduled control notation (Section 5).
    AsmOpt,
    /// The paper's *first* Kepler version: identical structure but naive
    /// sequential register assignment (68.8 % 2-way conflicts, Figure 8).
    AsmNaiveRegs,
    /// A CUBLAS-4.x-like build: same blocking, but compiler-typical
    /// weaknesses — burst (non-interleaved) prefetch, address arithmetic
    /// hoisted to the loop head, nvcc-style register assignment, per-type
    /// control notation.
    CublasLike,
    /// A MAGMA-like build: additionally spills 10 registers through local
    /// memory (40 bytes/thread, Section 5.5).
    MagmaLike,
}

impl Preset {
    /// All presets.
    pub const ALL: [Preset; 4] = [
        Preset::AsmOpt,
        Preset::AsmNaiveRegs,
        Preset::CublasLike,
        Preset::MagmaLike,
    ];

    /// Display name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            Preset::AsmOpt => "asm",
            Preset::AsmNaiveRegs => "asm_naive_regs",
            Preset::CublasLike => "cublas_like",
            Preset::MagmaLike => "magma_like",
        }
    }

    /// The generator options of this preset.
    pub fn options(self) -> BlockedOptions {
        match self {
            Preset::AsmOpt => BlockedOptions {
                plan: PlanKind::BankOptimized,
                interleave_prefetch: true,
                hoist_addresses: false,
                spill_registers: 0,
                extra_aux_per_step: 0,
                ctl: CtlMode::Scheduled,
            },
            Preset::AsmNaiveRegs => BlockedOptions {
                plan: PlanKind::Naive,
                interleave_prefetch: true,
                hoist_addresses: false,
                spill_registers: 0,
                extra_aux_per_step: 0,
                ctl: CtlMode::Scheduled,
            },
            Preset::CublasLike => BlockedOptions {
                plan: PlanKind::NvccLike,
                interleave_prefetch: false,
                hoist_addresses: true,
                spill_registers: 0,
                extra_aux_per_step: 2,
                ctl: CtlMode::PerType,
            },
            Preset::MagmaLike => BlockedOptions {
                plan: PlanKind::NvccLike,
                interleave_prefetch: false,
                hoist_addresses: true,
                spill_registers: 10,
                extra_aux_per_step: 3,
                ctl: CtlMode::PerType,
            },
        }
    }
}

/// Build a preset kernel for a problem.
///
/// # Errors
///
/// Propagates generator errors (unsupported sizes, register allocation).
pub fn build_preset(
    generation: Generation,
    problem: &SgemmProblem,
    preset: Preset,
) -> Result<SgemmBuild, SimError> {
    build_blocked(generation, problem, &preset.options())
}

/// Outcome of [`run_sgemm`].
#[derive(Debug)]
pub struct SgemmRun {
    /// The computed C matrix.
    pub c: Matrix,
    /// Functional execution statistics.
    pub stats: FuncStats,
}

/// Functionally execute a generated SGEMM on fresh random matrices and
/// return the result (the caller compares against [`crate::cpu::sgemm`]).
///
/// # Errors
///
/// Propagates launch and memory errors.
pub fn run_sgemm(
    gpu: &mut Gpu,
    build: &SgemmBuild,
    a: &Matrix,
    b: &Matrix,
    c: &Matrix,
    alpha: f32,
    beta: f32,
) -> Result<SgemmRun, SimError> {
    let a_addr = a.upload(gpu.memory_mut())?;
    let b_addr = b.upload(gpu.memory_mut())?;
    let c_addr = c.upload(gpu.memory_mut())?;
    let stats = gpu.launch(
        &build.kernel,
        build.config,
        &[a_addr, b_addr, c_addr, alpha.to_bits(), beta.to_bits()],
    )?;
    let c_out = Matrix::download(
        gpu.memory(),
        c_addr,
        build.problem.m as usize,
        build.problem.n as usize,
    )?;
    Ok(SgemmRun { c: c_out, stats })
}

/// Upload matrices for a problem into `memory` and return
/// `(a, b, c)` addresses, with C zero-initialized.
///
/// # Errors
///
/// Propagates allocation failures.
pub fn upload_problem(
    memory: &mut GlobalMemory,
    problem: &SgemmProblem,
    seed: u64,
) -> Result<(u32, u32, u32), SimError> {
    let (ar, ac) = problem.a_shape();
    let (br, bc) = problem.b_shape();
    let a = Matrix::random(ar, ac, seed);
    let b = Matrix::random(br, bc, seed + 1);
    let a_addr = a.upload(memory)?;
    let b_addr = b.upload(memory)?;
    let c_addr = memory.alloc_zeroed(problem.m * problem.n * 4)?;
    Ok((a_addr, b_addr, c_addr))
}
