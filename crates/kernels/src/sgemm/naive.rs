//! The naive SGEMM: one thread per C element, no shared memory.
//!
//! This is the "worst case" of Section 4.2 — every FFMA is fed straight
//! from global memory — and the functional baseline the blocked kernels
//! are verified against.

use peakperf_arch::Generation;
use peakperf_sass::{CmpOp, KernelBuilder, MemSpace, MemWidth, Pred, Reg, SpecialReg};
use peakperf_sim::{LaunchConfig, SimError};

use super::{SgemmBuild, SgemmProblem, Trans};

/// Tile edge: each block computes a 16×16 tile of C.
const TILE: u32 = 16;

/// Build the naive kernel for a problem.
///
/// # Errors
///
/// Returns [`SimError::Launch`] when `m`/`n` are not multiples of 16 or
/// `k` is zero, and propagates builder failures.
pub fn build_naive(generation: Generation, problem: &SgemmProblem) -> Result<SgemmBuild, SimError> {
    if !problem.m.is_multiple_of(TILE) || !problem.n.is_multiple_of(TILE) || problem.k == 0 {
        return Err(SimError::Launch {
            message: format!(
                "naive sgemm requires m, n multiples of {TILE} and k > 0, got {}x{}x{}",
                problem.m, problem.n, problem.k
            ),
        });
    }
    let (ta, tb) = problem.variant.ops();
    let lda = problem.lda() as i32;
    let ldb = problem.ldb() as i32;
    let ldc = problem.ldc() as i32;

    let mut b = KernelBuilder::new(
        format!("sgemm_naive_{}", problem.variant.name()),
        generation,
    );
    let p_a = b.param("a");
    let p_b = b.param("b");
    let p_c = b.param("c");
    let p_alpha = b.param("alpha");
    let p_beta = b.param("beta");

    let r_tx = Reg::r(0);
    let r_ty = Reg::r(1);
    let r_row = Reg::r(2);
    let r_col = Reg::r(3);
    let r_a = Reg::r(4);
    let r_b = Reg::r(5);
    let r_acc = Reg::r(6);
    let r_k = Reg::r(7);
    let r_av = Reg::r(8);
    let r_bv = Reg::r(9);
    let r_c = Reg::r(10);
    let r_tmp = Reg::r(11);
    let r_old = Reg::r(12);

    b.s2r(r_tx, SpecialReg::TidX);
    b.s2r(r_ty, SpecialReg::TidY);
    b.s2r(r_row, SpecialReg::CtaidX);
    b.s2r(r_col, SpecialReg::CtaidY);
    // row = ctaid.x*16 + tid.x ; col = ctaid.y*16 + tid.y
    b.imad(r_row, r_row, TILE as i32, r_tx);
    b.imad(r_col, r_col, TILE as i32, r_ty);

    // A cursor: element (row, 0) of op(A); per-k step stride.
    let (a_init_scale, a_step) = match ta {
        Trans::N => (1i32, lda * 4), // addr = a + row*4,     += lda*4
        Trans::T => (lda, 4),        // addr = a + row*lda*4, += 4
    };
    b.mov(r_a, p_a);
    b.imul(r_tmp, r_row, a_init_scale * 4);
    b.iadd(r_a, r_tmp, Reg::r(4));
    // B cursor: element (0, col) of op(B).
    let (b_init_scale, b_step) = match tb {
        Trans::N => (ldb, 4),        // addr = b + col*ldb*4, += 4
        Trans::T => (1i32, ldb * 4), // addr = b + col*4,     += ldb*4
    };
    b.mov(r_b, p_b);
    b.imul(r_tmp, r_col, b_init_scale * 4);
    b.iadd(r_b, r_tmp, Reg::r(5));

    b.mov32i(r_acc, 0);
    b.mov32i(r_k, problem.k);
    let top = b.label_here();
    b.ld(MemSpace::Global, MemWidth::B32, r_av, r_a, 0);
    b.ld(MemSpace::Global, MemWidth::B32, r_bv, r_b, 0);
    b.ffma(r_acc, r_av, r_bv, r_acc);
    b.iadd(r_a, r_a, a_step);
    b.iadd(r_b, r_b, b_step);
    b.iadd(r_k, r_k, -1);
    b.isetp(Pred::p(0), CmpOp::Gt, r_k, 0);
    b.bra_if(Pred::p(0), false, top);

    // c[row + col*ldc] = alpha*acc + beta*old
    b.mov(r_c, p_c);
    b.imul(r_tmp, r_col, ldc * 4);
    b.iadd(r_c, r_tmp, Reg::r(10));
    b.iscadd(r_c, r_row, r_c, 2);
    b.ld(MemSpace::Global, MemWidth::B32, r_old, r_c, 0);
    b.mov(r_tmp, p_beta);
    b.fmul(r_old, r_old, r_tmp);
    b.mov(r_tmp, p_alpha);
    b.ffma(r_old, r_acc, r_tmp, r_old);
    b.st(MemSpace::Global, MemWidth::B32, r_old, r_c, 0);
    b.exit();

    let _ = (p_a, p_b, p_c, p_alpha, p_beta);
    let kernel = b.finish()?;
    Ok(SgemmBuild {
        kernel,
        config: LaunchConfig::grid_2d(problem.m / TILE, problem.n / TILE, TILE, TILE),
        problem: *problem,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpu;
    use crate::matrix::Matrix;
    use crate::sgemm::run_sgemm;
    use crate::sgemm::Variant;
    use peakperf_sim::Gpu;

    fn check(variant: Variant, m: u32, n: u32, k: u32, alpha: f32, beta: f32) {
        let problem = SgemmProblem { variant, m, n, k };
        let build = build_naive(Generation::Fermi, &problem).unwrap();
        let (ar, ac) = problem.a_shape();
        let (br, bc) = problem.b_shape();
        let a = Matrix::random(ar, ac, 1);
        let b = Matrix::random(br, bc, 2);
        let c0 = Matrix::random(m as usize, n as usize, 3);

        let mut gpu = Gpu::new(Generation::Fermi);
        let run = run_sgemm(&mut gpu, &build, &a, &b, &c0, alpha, beta).unwrap();

        let mut c_ref = c0.data.clone();
        cpu::sgemm(
            variant,
            m as usize,
            n as usize,
            k as usize,
            alpha,
            &a.data,
            problem.lda() as usize,
            &b.data,
            problem.ldb() as usize,
            beta,
            &mut c_ref,
            problem.ldc() as usize,
        );
        let c_ref = Matrix {
            rows: m as usize,
            cols: n as usize,
            ld: m as usize,
            data: c_ref,
        };
        let diff = run.c.max_abs_diff(&c_ref);
        assert!(diff < 1e-4, "{variant:?} {m}x{n}x{k}: diff {diff}");
    }

    #[test]
    fn all_variants_match_cpu_reference() {
        for variant in Variant::ALL {
            check(variant, 16, 16, 8, 1.0, 0.0);
        }
    }

    #[test]
    fn alpha_beta_and_rectangular() {
        check(Variant::NN, 32, 16, 24, 0.5, 2.0);
        check(Variant::NT, 16, 32, 5, -1.0, 0.25);
        check(Variant::TN, 48, 16, 7, 2.0, 0.0);
    }

    #[test]
    fn unsupported_sizes_are_rejected() {
        let p = SgemmProblem::square(Variant::NN, 17);
        assert!(build_naive(Generation::Fermi, &p).is_err());
        let p = SgemmProblem {
            variant: Variant::NN,
            m: 16,
            n: 16,
            k: 0,
        };
        assert!(build_naive(Generation::Fermi, &p).is_err());
    }
}
