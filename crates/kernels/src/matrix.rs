//! Host-side matrix utilities: generation, upload, and comparison.

use peakperf_sim::{GlobalMemory, SimError};

use crate::rng::Rng;

/// A column-major host matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    /// Rows.
    pub rows: usize,
    /// Columns.
    pub cols: usize,
    /// Leading dimension (>= rows).
    pub ld: usize,
    /// Column-major data, `ld * cols` elements.
    pub data: Vec<f32>,
}

impl Matrix {
    /// A zero matrix with `ld == rows`.
    pub fn zeros(rows: usize, cols: usize) -> Matrix {
        Matrix {
            rows,
            cols,
            ld: rows,
            data: vec![0.0; rows * cols],
        }
    }

    /// A deterministic pseudo-random matrix with entries in `[-1, 1)`.
    ///
    /// Small magnitudes keep long GEMM accumulations well-conditioned so
    /// the simulator and CPU reference can be compared with tight
    /// tolerances.
    pub fn random(rows: usize, cols: usize, seed: u64) -> Matrix {
        let mut rng = Rng::seed_from_u64(seed);
        let data = (0..rows * cols)
            .map(|_| rng.gen_range_f32(-1.0, 1.0))
            .collect();
        Matrix {
            rows,
            cols,
            ld: rows,
            data,
        }
    }

    /// Element accessor (column-major).
    pub fn at(&self, row: usize, col: usize) -> f32 {
        self.data[row + col * self.ld]
    }

    /// Upload to simulator global memory; returns the base address.
    ///
    /// # Errors
    ///
    /// Propagates allocation failures.
    pub fn upload(&self, memory: &mut GlobalMemory) -> Result<u32, SimError> {
        memory.alloc_f32(&self.data)
    }

    /// Download `rows x cols` (with this matrix's `ld`) from simulator
    /// memory into a new matrix.
    ///
    /// # Errors
    ///
    /// Propagates memory faults.
    pub fn download(
        memory: &GlobalMemory,
        addr: u32,
        rows: usize,
        cols: usize,
    ) -> Result<Matrix, SimError> {
        let data = memory.read_f32_slice(addr, rows * cols)?;
        Ok(Matrix {
            rows,
            cols,
            ld: rows,
            data,
        })
    }

    /// Maximum absolute difference against another matrix.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn max_abs_diff(&self, other: &Matrix) -> f32 {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        let mut worst = 0.0f32;
        for col in 0..self.cols {
            for row in 0..self.rows {
                worst = worst.max((self.at(row, col) - other.at(row, col)).abs());
            }
        }
        worst
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_is_deterministic_and_bounded() {
        let a = Matrix::random(8, 8, 42);
        let b = Matrix::random(8, 8, 42);
        assert_eq!(a, b);
        assert!(a.data.iter().all(|v| (-1.0..1.0).contains(v)));
        let c = Matrix::random(8, 8, 43);
        assert_ne!(a, c);
    }

    #[test]
    fn upload_download_round_trip() {
        let m = Matrix::random(4, 3, 7);
        let mut mem = GlobalMemory::new();
        let addr = m.upload(&mut mem).unwrap();
        let back = Matrix::download(&mem, addr, 4, 3).unwrap();
        assert_eq!(back.data, m.data);
        assert_eq!(m.max_abs_diff(&back), 0.0);
    }

    #[test]
    fn diff_detects_changes() {
        let a = Matrix::zeros(2, 2);
        let mut b = Matrix::zeros(2, 2);
        b.data[3] = 0.5;
        assert_eq!(a.max_abs_diff(&b), 0.5);
    }
}
