//! CPU reference GEMM (the correctness oracle).

/// Transpose selector for one GEMM operand (`op(X) = X` or `op(X) = Xᵀ`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Trans {
    /// Use the matrix as stored.
    N,
    /// Use the transpose.
    T,
}

/// The four GEMM variants (`op(A)`, `op(B)`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Variant {
    /// `C = alpha * A * B + beta * C`.
    NN,
    /// `C = alpha * A * Bᵀ + beta * C`.
    NT,
    /// `C = alpha * Aᵀ * B + beta * C`.
    TN,
    /// `C = alpha * Aᵀ * Bᵀ + beta * C`.
    TT,
}

impl Variant {
    /// All four variants.
    pub const ALL: [Variant; 4] = [Variant::NN, Variant::NT, Variant::TN, Variant::TT];

    /// The `(op(A), op(B))` pair.
    pub fn ops(self) -> (Trans, Trans) {
        match self {
            Variant::NN => (Trans::N, Trans::N),
            Variant::NT => (Trans::N, Trans::T),
            Variant::TN => (Trans::T, Trans::N),
            Variant::TT => (Trans::T, Trans::T),
        }
    }

    /// Name as used in the paper's figures (`NN`, `NT`, ...).
    pub fn name(self) -> &'static str {
        match self {
            Variant::NN => "NN",
            Variant::NT => "NT",
            Variant::TN => "TN",
            Variant::TT => "TT",
        }
    }
}

/// Reference single-precision GEMM on column-major data:
/// `C := alpha * op(A) * op(B) + beta * C`.
///
/// `a` is `M×K` when `op(A) = N` (stored with leading dimension `lda`),
/// `K×M` when transposed; similarly for `b`. `c` is always `M×N` with
/// leading dimension `ldc`.
///
/// Accumulates in `f32` with `mul_add`, matching the GPU's FFMA data path,
/// so results are bit-comparable with the simulated kernels when the
/// summation order matches (k-inner, ascending).
///
/// # Panics
///
/// Panics if a slice is too small for its dimensions.
#[allow(clippy::too_many_arguments)]
pub fn sgemm(
    variant: Variant,
    m: usize,
    n: usize,
    k: usize,
    alpha: f32,
    a: &[f32],
    lda: usize,
    b: &[f32],
    ldb: usize,
    beta: f32,
    c: &mut [f32],
    ldc: usize,
) {
    let (ta, tb) = variant.ops();
    let a_at = |row: usize, kk: usize| -> f32 {
        match ta {
            Trans::N => a[row + kk * lda],
            Trans::T => a[kk + row * lda],
        }
    };
    let b_at = |kk: usize, col: usize| -> f32 {
        match tb {
            Trans::N => b[kk + col * ldb],
            Trans::T => b[col + kk * ldb],
        }
    };
    for col in 0..n {
        for row in 0..m {
            let mut acc = 0.0f32;
            for kk in 0..k {
                acc = a_at(row, kk).mul_add(b_at(kk, col), acc);
            }
            let idx = row + col * ldc;
            c[idx] = acc.mul_add(alpha, beta * c[idx]);
        }
    }
}

/// Useful floating-point operations of a GEMM: `2·M·N·K`.
pub fn gemm_flops(m: u64, n: u64, k: u64) -> u64 {
    2 * m * n * k
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_times_matrix() {
        // A = I (2x2), B arbitrary.
        let a = vec![1.0, 0.0, 0.0, 1.0];
        let b = vec![1.0, 2.0, 3.0, 4.0]; // cols: [1,2], [3,4]
        let mut c = vec![0.0; 4];
        sgemm(Variant::NN, 2, 2, 2, 1.0, &a, 2, &b, 2, 0.0, &mut c, 2);
        assert_eq!(c, b);
    }

    #[test]
    fn alpha_beta_combine() {
        let a = vec![1.0, 0.0, 0.0, 1.0];
        let b = vec![1.0, 1.0, 1.0, 1.0];
        let mut c = vec![10.0, 20.0, 30.0, 40.0];
        sgemm(Variant::NN, 2, 2, 2, 2.0, &a, 2, &b, 2, 0.5, &mut c, 2);
        assert_eq!(c, vec![2.0 + 5.0, 2.0 + 10.0, 2.0 + 15.0, 2.0 + 20.0]);
    }

    #[test]
    fn transpose_variants_agree_on_symmetric_data() {
        // With A symmetric, NN == TN; with B symmetric, NN == NT.
        let a = vec![1.0, 2.0, 2.0, 3.0];
        let b = vec![4.0, 5.0, 5.0, 6.0];
        let mut c1 = vec![0.0; 4];
        let mut c2 = vec![0.0; 4];
        let mut c3 = vec![0.0; 4];
        sgemm(Variant::NN, 2, 2, 2, 1.0, &a, 2, &b, 2, 0.0, &mut c1, 2);
        sgemm(Variant::TN, 2, 2, 2, 1.0, &a, 2, &b, 2, 0.0, &mut c2, 2);
        sgemm(Variant::NT, 2, 2, 2, 1.0, &a, 2, &b, 2, 0.0, &mut c3, 2);
        assert_eq!(c1, c2);
        assert_eq!(c1, c3);
    }

    #[test]
    fn rectangular_shapes() {
        // A: 2x3, B: 3x1 -> C: 2x1.
        let a = vec![1.0, 4.0, 2.0, 5.0, 3.0, 6.0]; // cols (1,4),(2,5),(3,6)
        let b = vec![1.0, 1.0, 1.0];
        let mut c = vec![0.0; 2];
        sgemm(Variant::NN, 2, 1, 3, 1.0, &a, 2, &b, 3, 0.0, &mut c, 2);
        assert_eq!(c, vec![6.0, 15.0]);
    }

    #[test]
    fn tt_matches_manual() {
        // A (KxM stored) = [[1,2],[3,4]] col-major, B (NxK stored).
        let a = vec![1.0, 3.0, 2.0, 4.0]; // 2x2: a(0,0)=1 a(1,0)=3 a(0,1)=2 a(1,1)=4
        let b = vec![5.0, 7.0, 6.0, 8.0];
        let mut c = vec![0.0; 4];
        sgemm(Variant::TT, 2, 2, 2, 1.0, &a, 2, &b, 2, 0.0, &mut c, 2);
        // op(A) = A^T = [[1,3],[2,4]], op(B) = B^T = [[5,7],[6,8]]
        // C = A^T B^T: C(0,0)=1*5+3*6=23, C(1,0)=2*5+4*6=34,
        //              C(0,1)=1*7+3*8=31, C(1,1)=2*7+4*8=46
        assert_eq!(c, vec![23.0, 34.0, 31.0, 46.0]);
    }

    #[test]
    fn flop_count() {
        assert_eq!(gemm_flops(1024, 1024, 1024), 2 * 1024 * 1024 * 1024);
    }
}
