//! Assembly-level microbenchmarks (Sections 3.3 and 4 of the paper).
//!
//! Each generator produces a kernel that saturates one SM of the simulated
//! GPU with a specific instruction pattern; the cycle-level engine then
//! measures thread-instruction throughput exactly the way the paper
//! measured silicon:
//!
//! * [`math`] — math-instruction throughput for chosen operand register
//!   indices (Table 2: bank conflicts, operand reuse, the IMUL path);
//! * [`mix`] — FFMA/LDS.X mixing curves (Figure 2);
//! * [`threads`] — the active-thread sweep with dependent or independent
//!   operands (Figure 4).

pub mod family;
pub mod math;
pub mod mix;
pub mod threads;

use peakperf_arch::GpuConfig;
use peakperf_sass::Kernel;
use peakperf_sim::timing::{TimingReport, TimingSim};
use peakperf_sim::{GlobalMemory, LaunchConfig, SimError};

/// Run a microbenchmark kernel on one SM with `blocks` resident blocks of
/// `threads` threads and return the timing report.
///
/// Microbenchmarks never inspect memory afterwards, so this goes through
/// the (opt-in) timing cache — identical patterns re-timed across figures
/// are answered without re-simulating.
///
/// # Errors
///
/// Propagates simulation errors.
pub fn run_on_sm(
    gpu: &GpuConfig,
    kernel: &Kernel,
    threads: u32,
    blocks: u32,
) -> Result<TimingReport, SimError> {
    let mut memory = GlobalMemory::new();
    let mut sim = TimingSim::new(
        gpu,
        kernel,
        LaunchConfig::linear(blocks, threads),
        &[],
        blocks,
    )?;
    sim.run_cached(&mut memory)
}

/// Thread-instruction throughput (per shader cycle per SM) of the
/// instructions whose mnemonic starts with `prefix`, excluding loop
/// overhead.
pub fn throughput_of(report: &TimingReport, prefix: &str) -> f64 {
    report.mix.count_prefix(prefix) as f64 * 32.0 / report.cycles.max(1) as f64
}
