//! FFMA + LDS.X mixing throughput (Figure 2).

use peakperf_arch::{Generation, GpuConfig, LdsWidth};
use peakperf_sass::{
    CmpOp, CtlInfo, Kernel, KernelBuilder, MemSpace, MemWidth, Operand, Pred, Reg, SpecialReg,
};
use peakperf_sim::SimError;

use super::run_on_sm;

/// Build the mix kernel: each loop iteration contains `groups` repetitions
/// of (`ratio` independent FFMAs + one LDS of `width`), with conflict-free
/// shared addresses (lane-linear, width-strided).
///
/// # Errors
///
/// Propagates builder failures.
pub fn build_mix_kernel(
    generation: Generation,
    ratio: u32,
    width: LdsWidth,
    groups: u32,
    iters: u32,
) -> Result<Kernel, SimError> {
    let width = MemWidth::from(width);
    let mut b = KernelBuilder::new(format!("mix_{}to1{}", ratio, width.suffix()), generation);
    // Threads need (threads * width.bytes()) shared bytes; sized for 1024.
    b.shared_bytes(1024 * width.bytes());

    // FFMA operands on distinct banks: R1 (odd0), R4 (even1). The
    // accumulators are read too (FFMA dst, R1, R4, dst), so they must live
    // on the two remaining banks — even0 and odd1 — or the benchmark would
    // measure bank conflicts instead of the mix (Section 3.3).
    const ACCS: [u8; 8] = [8, 13, 10, 15, 24, 29, 26, 31];
    for i in 0..8u8 {
        b.mov_f32(Reg::r(i), 0.5 + f32::from(i));
    }
    for (k, &acc) in ACCS.iter().enumerate() {
        b.mov_f32(Reg::r(acc), 0.125 * (k as f32 + 1.0));
    }
    // Shared address: tid * width.bytes().
    let addr = Reg::r(16);
    b.s2r(addr, SpecialReg::TidX);
    b.imul(addr, addr, width.bytes() as i32);
    let counter = Reg::r(17);
    b.mov32i(counter, iters);
    // LDS destination: R20.. (aligned for the widest case).
    let lds_dst = Reg::r(20);

    let top = b.label_here();
    for _ in 0..groups {
        for f in 0..ratio {
            let dst = Reg::r(ACCS[(f % 8) as usize]);
            if generation.uses_control_notation() {
                b.with_ctl(CtlInfo::stall(1));
            }
            b.ffma(dst, Reg::r(1), Operand::reg(4), dst);
        }
        if generation.uses_control_notation() {
            b.with_ctl(CtlInfo::stall(1));
        }
        b.ld(MemSpace::Shared, width, lds_dst, addr, 0);
    }
    b.iadd(counter, counter, -1);
    b.isetp(Pred::p(0), CmpOp::Gt, counter, 0);
    b.bra_if(Pred::p(0), false, top);
    b.exit();
    b.finish().map_err(SimError::from)
}

/// One point of Figure 2.
#[derive(Debug, Clone, Copy)]
pub struct MixPoint {
    /// FFMA : LDS ratio.
    pub ratio: u32,
    /// LDS width.
    pub width: LdsWidth,
    /// Overall thread-instruction throughput (FFMA + LDS, excluding loop
    /// overhead) per shader cycle per SM.
    pub throughput: f64,
}

/// Measure one `(ratio, width)` point with saturating threads.
///
/// # Errors
///
/// Propagates simulation errors.
pub fn measure_mix(gpu: &GpuConfig, ratio: u32, width: LdsWidth) -> Result<MixPoint, SimError> {
    let kernel = build_mix_kernel(gpu.generation, ratio, width, 12, 16)?;
    let threads = 1024.min(gpu.max_threads_per_block);
    let blocks = (gpu.max_threads_per_sm / threads).clamp(1, 2);
    let report = run_on_sm(gpu, &kernel, threads, blocks)?;
    let useful = report.mix.count("FFMA") + report.mix.count_prefix("LDS");
    Ok(MixPoint {
        ratio,
        width,
        throughput: useful as f64 * 32.0 / report.cycles.max(1) as f64,
    })
}

/// Sweep ratios 0..=32 for one width (the x-axis of Figure 2).
///
/// # Errors
///
/// Propagates simulation errors.
pub fn sweep_ratio(gpu: &GpuConfig, width: LdsWidth) -> Result<Vec<MixPoint>, SimError> {
    (0..=32).map(|r| measure_mix(gpu, r, width)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fermi_6to1_lds64_lands_near_30() {
        let gpu = GpuConfig::gtx580();
        let p = measure_mix(&gpu, 6, LdsWidth::B64).unwrap();
        assert!(
            (28.0..=32.0).contains(&p.throughput),
            "Fermi 6:1 LDS.64 -> {}",
            p.throughput
        );
    }

    #[test]
    fn fermi_lds128_mix_is_pipe_limited() {
        let gpu = GpuConfig::gtx580();
        // 12:1 with LDS.128: paper measures 24.5 (the LDS.128 pipe caps it).
        let p = measure_mix(&gpu, 12, LdsWidth::B128).unwrap();
        assert!(
            (21.0..=27.0).contains(&p.throughput),
            "Fermi 12:1 LDS.128 -> {}",
            p.throughput
        );
    }

    #[test]
    fn throughput_grows_with_ratio_on_fermi() {
        let gpu = GpuConfig::gtx580();
        let low = measure_mix(&gpu, 1, LdsWidth::B64).unwrap().throughput;
        let mid = measure_mix(&gpu, 6, LdsWidth::B64).unwrap().throughput;
        let high = measure_mix(&gpu, 24, LdsWidth::B64).unwrap().throughput;
        assert!(low < mid && mid <= high + 1.0, "{low} {mid} {high}");
    }

    #[test]
    fn kepler_6to1_lds64_lands_near_122() {
        let gpu = GpuConfig::gtx680();
        let p = measure_mix(&gpu, 6, LdsWidth::B64).unwrap();
        assert!(
            (110.0..=133.0).contains(&p.throughput),
            "Kepler 6:1 LDS.64 -> {}",
            p.throughput
        );
    }

    #[test]
    fn pure_lds_matches_pipe_rates() {
        let gpu = GpuConfig::gtx580();
        let p32 = measure_mix(&gpu, 0, LdsWidth::B32).unwrap().throughput;
        let p64 = measure_mix(&gpu, 0, LdsWidth::B64).unwrap().throughput;
        let p128 = measure_mix(&gpu, 0, LdsWidth::B128).unwrap().throughput;
        assert!((13.0..=16.5).contains(&p32), "LDS -> {p32}");
        assert!((7.0..=8.5).contains(&p64), "LDS.64 -> {p64}");
        assert!((1.7..=2.2).contains(&p128), "LDS.128 -> {p128}");
    }
}
