//! Active-thread sweep with dependent/independent operands (Figure 4).
//!
//! The mix is fixed at 6 FFMA : 1 LDS.64 (the SGEMM main-loop ratio). In
//! the *independent* case all seven instructions are independent; in the
//! *dependent* case the six FFMAs read the LDS.64 destination pair —
//! which is what the real SGEMM main loop does, and what makes Kepler
//! hungry for more than 1024 active threads.

use peakperf_arch::{Generation, GpuConfig};
use peakperf_sass::{
    CmpOp, CtlInfo, Kernel, KernelBuilder, MemSpace, MemWidth, Operand, Pred, Reg, SpecialReg,
};
use peakperf_sim::SimError;

use super::run_on_sm;

/// Operand dependence mode of the 6:1 kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dependence {
    /// All instructions independent.
    Independent,
    /// The 6 FFMAs consume the LDS.64 result.
    Dependent,
}

impl Dependence {
    /// Label used in Figure 4.
    pub fn name(self) -> &'static str {
        match self {
            Dependence::Independent => "independent",
            Dependence::Dependent => "dependent",
        }
    }
}

/// Build the 6:1 FFMA/LDS.64 kernel in one of the two dependence modes.
///
/// # Errors
///
/// Propagates builder failures.
pub fn build_threads_kernel(
    generation: Generation,
    dep: Dependence,
    groups: u32,
    iters: u32,
) -> Result<Kernel, SimError> {
    let mut b = KernelBuilder::new(format!("active_{}", dep.name()), generation);
    b.shared_bytes(1024 * 8);
    // Accumulators avoid the banks of their other sources: in the
    // independent case the sources are R1 (odd0) and R4 (even1), so the
    // accumulators live on even0/odd1; in the dependent case the sources
    // are the LDS pair R20 (even1) / R21 (odd1), so they live on
    // even0/odd0.
    const ACCS_IND: [u8; 6] = [8, 13, 10, 15, 24, 29];
    const ACCS_DEP: [u8; 6] = [8, 9, 10, 11, 24, 25];
    for i in 0..8u8 {
        b.mov_f32(Reg::r(i), 0.25 + f32::from(i));
    }
    for &acc in ACCS_IND.iter().chain(ACCS_DEP.iter()) {
        b.mov_f32(Reg::r(acc), 0.5);
    }
    let addr = Reg::r(16);
    b.s2r(addr, SpecialReg::TidX);
    b.imul(addr, addr, 8);
    let counter = Reg::r(17);
    b.mov32i(counter, iters);
    let lds_dst = Reg::r(20); // pair R20:R21

    let top = b.label_here();
    for _ in 0..groups {
        if generation.uses_control_notation() {
            b.with_ctl(CtlInfo::stall(1));
        }
        b.ld(MemSpace::Shared, MemWidth::B64, lds_dst, addr, 0);
        for f in 0..6usize {
            if generation.uses_control_notation() {
                b.with_ctl(CtlInfo::stall(1));
            }
            match dep {
                Dependence::Independent => {
                    let dst = Reg::r(ACCS_IND[f]);
                    b.ffma(dst, Reg::r(1), Operand::reg(4), dst);
                }
                Dependence::Dependent => {
                    // Read the freshly loaded pair.
                    let dst = Reg::r(ACCS_DEP[f]);
                    b.ffma(dst, lds_dst, Operand::Reg(lds_dst.offset(1)), dst);
                }
            }
        }
    }
    b.iadd(counter, counter, -1);
    b.isetp(Pred::p(0), CmpOp::Gt, counter, 0);
    b.bra_if(Pred::p(0), false, top);
    b.exit();
    b.finish().map_err(SimError::from)
}

/// One point of Figure 4.
#[derive(Debug, Clone, Copy)]
pub struct ThreadsPoint {
    /// Active threads on the SM.
    pub threads: u32,
    /// Dependence mode.
    pub dep: Dependence,
    /// Overall useful thread-instruction throughput.
    pub throughput: f64,
}

/// Measure the 6:1 mix at a given number of active threads per SM.
///
/// Thread counts up to 1024 run as one block; larger counts split into two
/// resident blocks.
///
/// # Errors
///
/// Propagates simulation errors.
pub fn measure_threads(
    gpu: &GpuConfig,
    dep: Dependence,
    threads: u32,
) -> Result<ThreadsPoint, SimError> {
    let (per_block, blocks) = if threads <= 1024 {
        (threads, 1)
    } else {
        (threads / 2, 2)
    };
    let kernel = build_threads_kernel(gpu.generation, dep, 12, 16)?;
    let report = run_on_sm(gpu, &kernel, per_block, blocks)?;
    let useful = report.mix.count("FFMA") + report.mix.count_prefix("LDS");
    Ok(ThreadsPoint {
        threads,
        dep,
        throughput: useful as f64 * 32.0 / report.cycles.max(1) as f64,
    })
}

/// Sweep the active-thread axis of Figure 4.
///
/// # Errors
///
/// Propagates simulation errors.
pub fn sweep_threads(gpu: &GpuConfig, dep: Dependence) -> Result<Vec<ThreadsPoint>, SimError> {
    let max = gpu.max_threads_per_sm;
    let mut out = Vec::new();
    let mut t = 32;
    while t <= max {
        out.push(measure_threads(gpu, dep, t)?);
        t += if t < 256 { 32 } else { 128 };
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fermi_dependent_saturates_by_512_threads() {
        let gpu = GpuConfig::gtx580();
        let t512 = measure_threads(&gpu, Dependence::Dependent, 512)
            .unwrap()
            .throughput;
        let t1536 = measure_threads(&gpu, Dependence::Dependent, 1536)
            .unwrap()
            .throughput;
        // Paper: with 512 active threads the dependent case is already
        // close to the best situation on Fermi.
        assert!(
            t512 > 0.88 * t1536,
            "512 threads ({t512}) should be close to saturation ({t1536})"
        );
        assert!(t1536 > 26.0, "Fermi should approach 32: {t1536}");
    }

    #[test]
    fn dependence_hurts_at_low_occupancy() {
        let gpu = GpuConfig::gtx580();
        let dep = measure_threads(&gpu, Dependence::Dependent, 64)
            .unwrap()
            .throughput;
        let ind = measure_threads(&gpu, Dependence::Independent, 64)
            .unwrap()
            .throughput;
        assert!(
            ind > dep,
            "independent ({ind}) should beat dependent ({dep}) at 64 threads"
        );
    }

    #[test]
    fn kepler_needs_more_threads_than_fermi() {
        // Normalized to each GPU's own saturation level, Kepler at 512
        // threads must be farther from saturation than Fermi at 512.
        let fermi = GpuConfig::gtx580();
        let kepler = GpuConfig::gtx680();
        let f512 = measure_threads(&fermi, Dependence::Dependent, 512)
            .unwrap()
            .throughput;
        let fmax = measure_threads(&fermi, Dependence::Dependent, 1536)
            .unwrap()
            .throughput;
        let k512 = measure_threads(&kepler, Dependence::Dependent, 512)
            .unwrap()
            .throughput;
        let kmax = measure_threads(&kepler, Dependence::Dependent, 2048)
            .unwrap()
            .throughput;
        assert!(
            k512 / kmax < f512 / fmax,
            "Kepler 512/{kmax} = {}, Fermi 512/{fmax} = {}",
            k512 / kmax,
            f512 / fmax
        );
    }

    #[test]
    fn throughput_is_monotonic_in_threads() {
        let gpu = GpuConfig::gtx580();
        let pts = [64, 128, 256, 512].map(|t| {
            measure_threads(&gpu, Dependence::Dependent, t)
                .unwrap()
                .throughput
        });
        for w in pts.windows(2) {
            assert!(w[1] + 0.5 >= w[0], "{pts:?}");
        }
    }
}
