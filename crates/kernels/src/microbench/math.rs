//! Math-instruction throughput with chosen operand register indices
//! (Table 2).
//!
//! The paper's benchmark: each thread executes 8192 copies of one math
//! instruction (4 independent instances unrolled 2048 times), 1024 threads
//! per block, enough blocks to keep the GPU busy. The operand register
//! *indices* are the experiment: on Kepler, distinct source registers that
//! share a register-file bank halve (2 on one bank) or third (3 on one
//! bank) the throughput.

use peakperf_arch::{Generation, GpuConfig};
use peakperf_sass::{CmpOp, CtlInfo, Kernel, KernelBuilder, Operand, Pred, Reg};
use peakperf_sim::SimError;

use super::{run_on_sm, throughput_of};

/// The math operation being measured.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MathOp {
    /// `FADD dst, a, b`.
    Fadd,
    /// `FMUL dst, a, b`.
    Fmul,
    /// `FFMA dst, a, b, c`.
    Ffma,
    /// `IADD dst, a, b`.
    Iadd,
    /// `IMUL dst, a, b`.
    Imul,
    /// `IMAD dst, a, b, c`.
    Imad,
}

impl MathOp {
    /// Mnemonic for reports.
    pub fn mnemonic(self) -> &'static str {
        match self {
            MathOp::Fadd => "FADD",
            MathOp::Fmul => "FMUL",
            MathOp::Ffma => "FFMA",
            MathOp::Iadd => "IADD",
            MathOp::Imul => "IMUL",
            MathOp::Imad => "IMAD",
        }
    }

    fn has_three_sources(self) -> bool {
        matches!(self, MathOp::Ffma | MathOp::Imad)
    }
}

/// One row of Table 2: an operation plus concrete operand registers.
///
/// `dst` aliasing a source (e.g. `FADD R0, R1, R0`) is part of the pattern;
/// bank conflicts are determined by the *distinct* source registers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MathPattern {
    /// The operation.
    pub op: MathOp,
    /// Destination register.
    pub dst: Reg,
    /// First source.
    pub a: Reg,
    /// Second source.
    pub b: Reg,
    /// Third source (FFMA/IMAD only; ignored otherwise).
    pub c: Reg,
}

impl MathPattern {
    /// Render like the paper: `FFMA R0, R1, R4, R5`.
    pub fn label(&self) -> String {
        if self.op.has_three_sources() {
            format!(
                "{} {}, {}, {}, {}",
                self.op.mnemonic(),
                self.dst,
                self.a,
                self.b,
                self.c
            )
        } else {
            format!(
                "{} {}, {}, {}",
                self.op.mnemonic(),
                self.dst,
                self.a,
                self.b
            )
        }
    }

    fn emit(&self, b: &mut KernelBuilder, dst: Reg) {
        match self.op {
            MathOp::Fadd => {
                b.fadd(dst, self.a, Operand::Reg(self.b));
            }
            MathOp::Fmul => {
                b.fmul(dst, self.a, Operand::Reg(self.b));
            }
            MathOp::Ffma => {
                b.ffma(dst, self.a, Operand::Reg(self.b), self.c);
            }
            MathOp::Iadd => {
                b.iadd(dst, self.a, Operand::Reg(self.b));
            }
            MathOp::Imul => {
                b.imul(dst, self.a, Operand::Reg(self.b));
            }
            MathOp::Imad => {
                b.imad(dst, self.a, Operand::Reg(self.b), self.c);
            }
        }
    }
}

/// The exact pattern set of Table 2.
pub fn table2_patterns() -> Vec<MathPattern> {
    let r = Reg::r;
    let p = |op, dst, a, b, c| MathPattern {
        op,
        dst: r(dst),
        a: r(a),
        b: r(b),
        c: r(c),
    };
    vec![
        p(MathOp::Fadd, 0, 1, 0, 0),
        p(MathOp::Fadd, 0, 1, 2, 0),
        p(MathOp::Fadd, 0, 1, 3, 0),
        p(MathOp::Fmul, 0, 1, 0, 0),
        p(MathOp::Fmul, 0, 1, 2, 0),
        p(MathOp::Fmul, 0, 1, 3, 0),
        p(MathOp::Ffma, 0, 1, 4, 0),
        p(MathOp::Ffma, 0, 1, 4, 5),
        p(MathOp::Ffma, 0, 1, 3, 5),
        p(MathOp::Ffma, 0, 1, 3, 9),
        p(MathOp::Iadd, 0, 1, 0, 0),
        p(MathOp::Iadd, 0, 1, 2, 0),
        p(MathOp::Iadd, 0, 1, 3, 0),
        p(MathOp::Imul, 0, 1, 0, 0),
        p(MathOp::Imul, 0, 1, 2, 0),
        p(MathOp::Imul, 0, 1, 3, 0),
        p(MathOp::Imad, 0, 1, 4, 0),
        p(MathOp::Imad, 0, 1, 4, 5),
        p(MathOp::Imad, 0, 1, 3, 5),
        p(MathOp::Imad, 0, 1, 3, 9),
    ]
}

/// Build the throughput kernel for one pattern: `unroll` independent
/// instances per loop iteration (destinations rotate over four registers
/// well away from the pattern's sources, so every instance is
/// independent), `iters` iterations.
///
/// # Errors
///
/// Propagates builder failures.
pub fn build_math_kernel(
    generation: Generation,
    pattern: &MathPattern,
    unroll: u32,
    iters: u32,
) -> Result<Kernel, SimError> {
    let mut b = KernelBuilder::new(
        format!("tp_{}", pattern.op.mnemonic().to_lowercase()),
        generation,
    );
    // Initialize source registers (R0..R15 covers all patterns).
    for i in 0..16u8 {
        b.mov_f32(Reg::r(i), 1.0 + f32::from(i) / 16.0);
    }
    let counter = Reg::r(30);
    b.mov32i(counter, iters);
    let top = b.label_here();
    // Decrement and test at the loop top, the way compilers schedule
    // unrolled loops: the math block then covers the IADD->ISETP->BRA
    // dependence latency, instead of every warp bubbling on it at the
    // bottom of each iteration.
    if generation.uses_control_notation() {
        b.with_ctl(CtlInfo::stall(1));
    }
    b.iadd(counter, counter, -1);
    if generation.uses_control_notation() {
        b.with_ctl(CtlInfo::stall(1));
    }
    b.isetp(Pred::p(0), CmpOp::Gt, counter, 0);
    for k in 0..unroll {
        // Rotate destinations over R24..R27 unless the pattern aliases the
        // destination onto a source — then keep it, to preserve the
        // dependence structure of the original benchmark.
        let dst = if pattern.dst == pattern.a
            || pattern.dst == pattern.b
            || (pattern.op.has_three_sources() && pattern.dst == pattern.c)
        {
            pattern.dst
        } else {
            Reg::r(24 + (k % 4) as u8)
        };
        if generation.uses_control_notation() {
            // Schedule the stream the way `cuobjdump` shows compiled Kepler
            // math streams: consecutive independent instructions form dual
            // pairs (dual flag on the leader, the trailer's stall pacing the
            // pair), which lets the per-scheduler second dispatch slot work
            // and the issue rate reach the 33/8-token ceiling of 132
            // thread-insts/cycle instead of the 4-issue cap of 128.
            //
            // Only 3-source patterns (FFMA/IMAD) are paired: a dual flag on
            // a 2-source instruction means its operands fit the reuse path
            // of the paper's Section 3.3 "carefully designed" streams and
            // would be charged the discounted issue-token cost (176/cycle),
            // which Table 2's plain 2-source streams do not reach.
            let ctl = if pattern.op.has_three_sources() && k % 2 == 0 {
                CtlInfo::dual_stall(1)
            } else {
                CtlInfo::stall(1)
            };
            b.with_ctl(ctl);
        }
        pattern.emit(&mut b, dst);
    }
    if generation.uses_control_notation() {
        b.with_ctl(CtlInfo::stall(1));
    }
    b.bra_if(Pred::p(0), false, top);
    b.exit();
    b.finish().map_err(SimError::from)
}

/// One measured row: the pattern and its thread-instruction throughput per
/// shader cycle per SM.
#[derive(Debug, Clone)]
pub struct MathThroughput {
    /// The pattern measured.
    pub pattern: MathPattern,
    /// Thread instructions per shader cycle per SM.
    pub throughput: f64,
}

/// Measure one pattern on a GPU (saturating resident threads).
///
/// # Errors
///
/// Propagates simulation errors.
pub fn measure_math(gpu: &GpuConfig, pattern: &MathPattern) -> Result<MathThroughput, SimError> {
    // 256 instances per iteration keeps the loop-control overhead (three
    // unannotated tail instructions) close to 1%, so the conflict-free
    // patterns can approach their issue ceilings; 12 iterations keeps the
    // total instruction count the same as the previous 128x24 shape.
    let kernel = build_math_kernel(gpu.generation, pattern, 256, 12)?;
    let threads = 1024.min(gpu.max_threads_per_block);
    let blocks = (gpu.max_threads_per_sm / threads).clamp(1, 2);
    let report = run_on_sm(gpu, &kernel, threads, blocks)?;
    Ok(MathThroughput {
        pattern: *pattern,
        throughput: throughput_of(&report, pattern.op.mnemonic()),
    })
}

/// Measure the full Table 2 set.
///
/// # Errors
///
/// Propagates simulation errors.
pub fn measure_table2(gpu: &GpuConfig) -> Result<Vec<MathThroughput>, SimError> {
    table2_patterns()
        .iter()
        .map(|p| measure_math(gpu, p))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kepler() -> GpuConfig {
        GpuConfig::gtx680()
    }

    fn tp(pattern: MathPattern) -> f64 {
        measure_math(&kepler(), &pattern).unwrap().throughput
    }

    fn find(op: MathOp, b: u8, c: u8) -> MathPattern {
        *table2_patterns()
            .iter()
            .find(|p| p.op == op && p.b == Reg::r(b) && p.c == Reg::r(c))
            .unwrap()
    }

    #[test]
    fn ffma_conflict_free_reaches_132() {
        // Paper: 132.0 (the 33-token/8-cycle issue ceiling). Measured:
        // 129.4 — about 2% under, from the unannotated loop tail and the
        // start/drain transient. The band is ±3.5% around the paper value.
        let t = tp(find(MathOp::Ffma, 4, 5));
        assert!((127.4..=136.6).contains(&t), "FFMA R0,R1,R4,R5 -> {t}");
    }

    #[test]
    fn ffma_two_way_conflict_halves() {
        let t = tp(find(MathOp::Ffma, 3, 5));
        assert!((60.0..=70.0).contains(&t), "FFMA R0,R1,R3,R5 -> {t}");
    }

    #[test]
    fn ffma_three_way_conflict_thirds() {
        let t = tp(find(MathOp::Ffma, 3, 9));
        assert!((40.0..=48.0).contains(&t), "FFMA R0,R1,R3,R9 -> {t}");
    }

    #[test]
    fn imad_runs_at_quarter_rate() {
        let t = tp(find(MathOp::Imad, 4, 5));
        assert!((30.0..=36.0).contains(&t), "IMAD R0,R1,R4,R5 -> {t}");
        // 2-way conflict is hidden under the 4x cost...
        let t2 = tp(find(MathOp::Imad, 3, 5));
        assert!((30.0..=36.0).contains(&t2), "IMAD R0,R1,R3,R5 -> {t2}");
        // ...but a 3-way conflict shows (26.5 in Table 2).
        let t3 = tp(find(MathOp::Imad, 3, 9));
        assert!((24.0..=29.0).contains(&t3), "IMAD R0,R1,R3,R9 -> {t3}");
    }

    #[test]
    fn fermi_ffma_saturates_its_32() {
        let fermi = GpuConfig::gtx580();
        let p = find(MathOp::Ffma, 4, 5);
        let t = measure_math(&fermi, &p).unwrap().throughput;
        assert!((28.0..=32.5).contains(&t), "Fermi FFMA -> {t}");
    }

    #[test]
    fn patterns_cover_table2() {
        assert_eq!(table2_patterns().len(), 20);
        let p = find(MathOp::Ffma, 3, 9);
        assert_eq!(p.label(), "FFMA R0, R1, R3, R9");
    }
}
