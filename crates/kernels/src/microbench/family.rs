//! A systematic microbenchmark family (the Section 5.5 proposal).
//!
//! The paper closes by proposing "systematic and automatic development of a
//! set of microbenchmarks ... a small database of performance references
//! that could be used by the auto-tuning tool". This module implements that
//! proposal: a declarative [`MixSpec`] describes an instruction mix
//! (components, dependence structure), [`generate`] turns it into a kernel,
//! and [`ThroughputDb`] measures and caches the whole family for a GPU.

use std::collections::BTreeMap;
use std::fmt;

use peakperf_arch::{Generation, GpuConfig, LdsWidth};
use peakperf_sass::{
    CmpOp, CtlInfo, Kernel, KernelBuilder, MemSpace, MemWidth, Operand, Pred, Reg, SpecialReg,
};
use peakperf_sim::SimError;

use super::run_on_sm;

/// One component of an instruction mix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Component {
    /// FFMA with conflict-free operands.
    Ffma,
    /// FFMA whose distinct sources share a bank `ways` deep (2 or 3).
    FfmaConflicted(u8),
    /// Integer add.
    Iadd,
    /// Integer multiply-add (the quarter-rate path on Kepler).
    Imad,
    /// Shared-memory load of the given width, conflict-free addresses.
    Lds(LdsWidth),
}

impl fmt::Display for Component {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Component::Ffma => f.write_str("FFMA"),
            Component::FfmaConflicted(w) => write!(f, "FFMA(x{w})"),
            Component::Iadd => f.write_str("IADD"),
            Component::Imad => f.write_str("IMAD"),
            Component::Lds(w) => write!(f, "LDS{}", w.suffix()),
        }
    }
}

/// A declarative mix: `count` copies of each component per group, with the
/// math instructions either independent or consuming the load results.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MixSpec {
    /// Components with repeat counts, executed in order within a group.
    pub parts: Vec<(Component, u32)>,
    /// Whether math components read the most recent load destination.
    pub dependent: bool,
}

impl MixSpec {
    /// The classic `ratio` FFMA : 1 LDS.X mix of Figures 2 and 4.
    pub fn ffma_lds(ratio: u32, width: LdsWidth, dependent: bool) -> MixSpec {
        MixSpec {
            parts: vec![(Component::Lds(width), 1), (Component::Ffma, ratio)],
            dependent,
        }
    }

    /// A pure stream of one component.
    pub fn pure(component: Component) -> MixSpec {
        MixSpec {
            parts: vec![(component, 1)],
            dependent: false,
        }
    }

    /// Total instructions per group.
    pub fn group_len(&self) -> u32 {
        self.parts.iter().map(|(_, n)| *n).sum()
    }

    /// A stable label for reports (`LDS.64:1+FFMA:6 dep`).
    pub fn label(&self) -> String {
        let parts: Vec<String> = self.parts.iter().map(|(c, n)| format!("{c}:{n}")).collect();
        format!(
            "{}{}",
            parts.join("+"),
            if self.dependent { " dep" } else { " ind" }
        )
    }
}

/// Generate the benchmark kernel for a spec.
///
/// Register discipline mirrors the hand-written microbenchmarks: FFMA
/// sources R1 (odd0) / R4 (even1), accumulators on even0/odd1, loads into
/// the R20 quad, conflicted variants use the Table 2 register patterns.
///
/// # Errors
///
/// Propagates builder failures.
pub fn generate(
    generation: Generation,
    spec: &MixSpec,
    groups: u32,
    iters: u32,
) -> Result<Kernel, SimError> {
    const ACCS: [u8; 8] = [8, 13, 10, 15, 24, 29, 26, 31];
    let mut b = KernelBuilder::new(format!("family_{}", spec.group_len()), generation);
    let max_width = spec
        .parts
        .iter()
        .filter_map(|(c, _)| match c {
            Component::Lds(w) => Some(MemWidth::from(*w).bytes()),
            _ => None,
        })
        .max()
        .unwrap_or(4);
    b.shared_bytes(1024 * max_width);

    for i in 0..8u8 {
        b.mov_f32(Reg::r(i), 0.5 + f32::from(i));
    }
    for (k, &acc) in ACCS.iter().enumerate() {
        b.mov_f32(Reg::r(acc), 0.25 * (k as f32 + 1.0));
    }
    let addr = Reg::r(16);
    b.s2r(addr, SpecialReg::TidX);
    b.imul(addr, addr, max_width as i32);
    let counter = Reg::r(17);
    b.mov32i(counter, iters);
    let lds_dst = Reg::r(20);

    let top = b.label_here();
    let mut acc_idx = 0usize;
    for _ in 0..groups {
        for &(component, count) in &spec.parts {
            for _ in 0..count {
                if generation.uses_control_notation() {
                    b.with_ctl(CtlInfo::stall(1));
                }
                match component {
                    Component::Ffma => {
                        // Dependent mode reads the loaded pair R20/R21
                        // (even1/odd1), so the accumulator moves to
                        // even0/odd0.
                        if spec.dependent {
                            const DEP_ACCS: [u8; 6] = [8, 9, 10, 11, 24, 25];
                            let dst = Reg::r(DEP_ACCS[acc_idx % DEP_ACCS.len()]);
                            b.ffma(dst, lds_dst, Operand::Reg(lds_dst.offset(1)), dst);
                        } else {
                            let dst = Reg::r(ACCS[acc_idx % ACCS.len()]);
                            b.ffma(dst, Reg::r(1), Operand::reg(4), dst);
                        }
                        acc_idx += 1;
                    }
                    Component::FfmaConflicted(ways) => {
                        // Table 2 patterns: R1,R3 share odd0 (2-way);
                        // R1,R3,R9 all odd0 (3-way).
                        let c = if ways >= 3 { Reg::r(9) } else { Reg::r(5) };
                        let dst = Reg::r(ACCS[acc_idx % ACCS.len()]);
                        acc_idx += 1;
                        b.ffma(dst, Reg::r(1), Operand::reg(3), c);
                    }
                    Component::Iadd => {
                        let dst = Reg::r(ACCS[acc_idx % ACCS.len()]);
                        acc_idx += 1;
                        b.iadd(dst, Reg::r(1), Operand::reg(4));
                    }
                    Component::Imad => {
                        let dst = Reg::r(ACCS[acc_idx % ACCS.len()]);
                        acc_idx += 1;
                        b.imad(dst, Reg::r(1), Operand::reg(4), dst);
                    }
                    Component::Lds(width) => {
                        b.ld(MemSpace::Shared, MemWidth::from(width), lds_dst, addr, 0);
                    }
                }
            }
        }
    }
    b.iadd(counter, counter, -1);
    b.isetp(Pred::p(0), CmpOp::Gt, counter, 0);
    b.bra_if(Pred::p(0), false, top);
    b.exit();
    b.finish().map_err(SimError::from)
}

/// A measured reference point.
#[derive(Debug, Clone, PartialEq)]
pub struct Reference {
    /// Overall thread-instruction throughput of the mix (loop overhead
    /// excluded), per shader cycle per SM.
    pub throughput: f64,
    /// Active threads used for the measurement.
    pub threads: u32,
}

/// Measure a spec on a GPU (uncached — [`ThroughputDb::measure`] adds the
/// memoization layer).
///
/// # Errors
///
/// Propagates simulation errors.
pub fn measure_spec(gpu: &GpuConfig, spec: &MixSpec) -> Result<Reference, SimError> {
    // Enough groups that the loop overhead (3 instructions) is noise.
    let groups = (120 / spec.group_len().max(1)).max(4);
    let kernel = generate(gpu.generation, spec, groups, 12)?;
    let threads = 1024.min(gpu.max_threads_per_block);
    let blocks = (gpu.max_threads_per_sm / threads).clamp(1, 2);
    let report = run_on_sm(gpu, &kernel, threads, blocks)?;
    let useful = report.mix.count("FFMA")
        + report.mix.count("IADD")
        + report.mix.count("IMAD")
        + report.mix.count_prefix("LDS");
    Ok(Reference {
        throughput: useful as f64 * 32.0 / report.cycles.max(1) as f64,
        threads: threads * blocks,
    })
}

/// The standard family [`ThroughputDb::populate_standard`] measures: pure
/// streams of every component plus the FFMA/LDS mixes the SGEMM analysis
/// needs. Exposed so callers can fan the measurements out in parallel and
/// [`ThroughputDb::insert`] the results.
pub fn standard_specs() -> Vec<MixSpec> {
    let mut specs: Vec<MixSpec> = [
        Component::Ffma,
        Component::FfmaConflicted(2),
        Component::FfmaConflicted(3),
        Component::Iadd,
        Component::Imad,
        Component::Lds(LdsWidth::B32),
        Component::Lds(LdsWidth::B64),
        Component::Lds(LdsWidth::B128),
    ]
    .into_iter()
    .map(MixSpec::pure)
    .collect();
    for width in LdsWidth::ALL {
        for ratio in [3u32, 6, 12] {
            specs.push(MixSpec::ffma_lds(ratio, width, true));
        }
    }
    specs
}

/// The database of performance references the Section 5.5 auto-tuner would
/// consult.
#[derive(Debug, Clone, Default)]
pub struct ThroughputDb {
    entries: BTreeMap<String, Reference>,
}

impl ThroughputDb {
    /// An empty database.
    pub fn new() -> ThroughputDb {
        ThroughputDb::default()
    }

    /// Number of cached references.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the database is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Measure a spec on a GPU (or return the cached reference).
    ///
    /// # Errors
    ///
    /// Propagates simulation errors.
    pub fn measure(&mut self, gpu: &GpuConfig, spec: &MixSpec) -> Result<Reference, SimError> {
        let key = format!("{}/{}", gpu.name, spec.label());
        if let Some(r) = self.entries.get(&key) {
            return Ok(r.clone());
        }
        let reference = measure_spec(gpu, spec)?;
        self.entries.insert(key, reference.clone());
        Ok(reference)
    }

    /// Insert a reference measured elsewhere (e.g. by [`measure_spec`] on a
    /// worker thread) under the standard `gpu/spec` key.
    pub fn insert(&mut self, gpu: &GpuConfig, spec: &MixSpec, reference: Reference) {
        self.entries
            .insert(format!("{}/{}", gpu.name, spec.label()), reference);
    }

    /// Populate the standard family ([`standard_specs`]) for one GPU.
    ///
    /// # Errors
    ///
    /// Propagates simulation errors.
    pub fn populate_standard(&mut self, gpu: &GpuConfig) -> Result<(), SimError> {
        for spec in standard_specs() {
            self.measure(gpu, &spec)?;
        }
        Ok(())
    }

    /// Iterate over `(key, reference)` pairs in order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Reference)> {
        self.entries.iter().map(|(k, v)| (k.as_str(), v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_stable() {
        let spec = MixSpec::ffma_lds(6, LdsWidth::B64, true);
        assert_eq!(spec.label(), "LDS.64:1+FFMA:6 dep");
        assert_eq!(spec.group_len(), 7);
        assert_eq!(MixSpec::pure(Component::Imad).label(), "IMAD:1 ind");
    }

    #[test]
    fn database_caches() {
        let gpu = GpuConfig::gtx580();
        let mut db = ThroughputDb::new();
        let spec = MixSpec::pure(Component::Ffma);
        let a = db.measure(&gpu, &spec).unwrap();
        let b = db.measure(&gpu, &spec).unwrap();
        assert_eq!(a, b);
        assert_eq!(db.len(), 1);
    }

    #[test]
    fn pure_ffma_matches_direct_microbenchmark() {
        let gpu = GpuConfig::gtx580();
        let mut db = ThroughputDb::new();
        let r = db.measure(&gpu, &MixSpec::pure(Component::Ffma)).unwrap();
        assert!(
            (26.0..=32.5).contains(&r.throughput),
            "Fermi pure FFMA: {}",
            r.throughput
        );
    }

    #[test]
    fn conflicted_ffma_is_slower_on_kepler() {
        let gpu = GpuConfig::gtx680();
        let mut db = ThroughputDb::new();
        let free = db.measure(&gpu, &MixSpec::pure(Component::Ffma)).unwrap();
        let two = db
            .measure(&gpu, &MixSpec::pure(Component::FfmaConflicted(2)))
            .unwrap();
        let three = db
            .measure(&gpu, &MixSpec::pure(Component::FfmaConflicted(3)))
            .unwrap();
        assert!(free.throughput > 1.7 * two.throughput);
        assert!(two.throughput > 1.2 * three.throughput);
    }

    #[test]
    fn standard_family_populates() {
        let gpu = GpuConfig::gtx580();
        let mut db = ThroughputDb::new();
        db.populate_standard(&gpu).unwrap();
        assert!(db.len() >= 17);
        for (key, r) in db.iter() {
            assert!(r.throughput > 0.0, "{key} has zero throughput");
        }
    }
}
