//! A tiny deterministic PRNG (SplitMix64) used for matrix generation and
//! randomized tests.
//!
//! The repository builds offline, so we carry our own generator instead of
//! depending on the `rand` crate. SplitMix64 is statistically solid for the
//! sizes used here (matrix fills, property-test sampling), passes through a
//! full 2^64 period, and — crucially for reproducibility — is defined by a
//! dozen lines of arithmetic that will never change under us.

/// A deterministic 64-bit PRNG with SplitMix64 state transition.
#[derive(Debug, Clone)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// Seed the generator. Every distinct seed yields an independent,
    /// reproducible stream.
    pub fn seed_from_u64(seed: u64) -> Rng {
        Rng { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Next 32-bit value.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// `true`/`false` with equal probability.
    pub fn gen_bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// Uniform `u64` in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn gen_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "gen_below bound must be positive");
        // Multiply-shift rejection-free mapping is fine here: the modulo
        // bias of `2^64 % bound` is negligible for every bound we use.
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// Uniform `i64` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn gen_range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo < hi, "empty range");
        let span = hi.wrapping_sub(lo) as u64;
        lo.wrapping_add(self.gen_below(span) as i64)
    }

    /// Uniform `usize` in `[lo, hi)`.
    pub fn gen_range_usize(&mut self, lo: usize, hi: usize) -> usize {
        self.gen_range_i64(lo as i64, hi as i64) as usize
    }

    /// Uniform `u32` in `[lo, hi)`.
    pub fn gen_range_u32(&mut self, lo: u32, hi: u32) -> u32 {
        self.gen_range_i64(i64::from(lo), i64::from(hi)) as u32
    }

    /// Uniform `f32` in `[lo, hi)` with 24 bits of precision.
    pub fn gen_range_f32(&mut self, lo: f32, hi: f32) -> f32 {
        let unit = (self.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32);
        lo + unit * (hi - lo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = Rng::seed_from_u64(7);
        let mut b = Rng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Rng::seed_from_u64(8);
        assert_ne!(Rng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = Rng::seed_from_u64(99);
        for _ in 0..10_000 {
            let v = r.gen_range_i64(-5, 17);
            assert!((-5..17).contains(&v));
            let f = r.gen_range_f32(-1.0, 1.0);
            assert!((-1.0..1.0).contains(&f));
            let u = r.gen_below(3);
            assert!(u < 3);
        }
    }

    #[test]
    fn unit_floats_cover_the_interval() {
        let mut r = Rng::seed_from_u64(1);
        let mut lo_seen = false;
        let mut hi_seen = false;
        for _ in 0..10_000 {
            let f = r.gen_range_f32(0.0, 1.0);
            if f < 0.1 {
                lo_seen = true;
            }
            if f > 0.9 {
                hi_seen = true;
            }
        }
        assert!(lo_seen && hi_seen);
    }
}
