//! Kernel generators: the SGEMM implementations of Section 5 and the
//! microbenchmarks of Sections 3-4.
//!
//! Everything here emits SASS-like kernels through
//! [`peakperf_sass::KernelBuilder`] and runs on the simulator in
//! `peakperf-sim`:
//!
//! * [`sgemm`] — the register-blocked assembly SGEMM (NN/NT/TN/TT variants,
//!   6×6 blocking, 256-thread blocks, single-buffered shared tiles with two
//!   barriers per k-tile, full prefetching through registers — Sections
//!   4.5/5), plus the degraded presets used as baselines: a `cublas-like`
//!   build (no prefetch interleaving, nvcc-style register assignment on
//!   Kepler) and a `magma-like` build (register spills + bank conflicts,
//!   Figure 8), and a naive one-thread-per-element kernel;
//! * [`microbench`] — the instruction-throughput microbenchmarks: math
//!   instructions with chosen operand register indices (Table 2), FFMA +
//!   LDS.X mixes (Figure 2), and the active-thread sweep with dependent or
//!   independent operands (Figure 4);
//! * [`cpu`] — a CPU reference GEMM used as the correctness oracle;
//! * [`matrix`] — host-side matrix helpers (generation, upload, compare).

pub mod cpu;
pub mod matrix;
pub mod microbench;
pub mod rng;
pub mod sgemm;

pub use peakperf_arch::Generation;
