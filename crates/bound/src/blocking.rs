//! Register blocking and the FFMA instruction percentage (Figure 3).

use peakperf_arch::LdsWidth;

/// The FFMA : LDS.X instruction ratio of the SGEMM main loop with register
/// blocking factor `br`.
///
/// Each main-loop stage computes a `br × br` outer product (`br²` FFMAs)
/// and must fetch `2·br` floats from shared memory, which takes
/// `2·br / width.words()` LDS.X instructions; the ratio is therefore
/// `br · width.words() / 2`.
///
/// For `br = 6`: 3:1 with LDS, 6:1 with LDS.64, 12:1 with LDS.128
/// (Section 4.2).
pub fn ffma_lds_ratio(br: u32, width: LdsWidth) -> f64 {
    f64::from(br) * f64::from(width.words()) / 2.0
}

/// The percentage of FFMA instructions in the SGEMM main loop (Figure 3):
/// `br² / (br² + 2·br/width.words())`.
///
/// For `br = 6`: 75 % (LDS), 85.7 % (LDS.64), 92.3 % (LDS.128).
pub fn ffma_fraction(br: u32, width: LdsWidth) -> f64 {
    let ffma = f64::from(br * br);
    let lds = 2.0 * f64::from(br) / f64::from(width.words());
    ffma / (ffma + lds)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios_match_section_4_2() {
        assert_eq!(ffma_lds_ratio(6, LdsWidth::B32), 3.0);
        assert_eq!(ffma_lds_ratio(6, LdsWidth::B64), 6.0);
        assert_eq!(ffma_lds_ratio(6, LdsWidth::B128), 12.0);
    }

    #[test]
    fn fractions_match_figure_3() {
        assert!((ffma_fraction(6, LdsWidth::B32) - 0.75).abs() < 1e-9);
        assert!((ffma_fraction(6, LdsWidth::B64) - 0.857).abs() < 1e-3);
        assert!((ffma_fraction(6, LdsWidth::B128) - 0.923).abs() < 1e-3);
    }

    #[test]
    fn worst_case_without_blocking() {
        // Section 4.2: without register reuse, 2 LDS feed 1 FFMA -> only
        // 1/3 of instructions are floating point.
        assert!((ffma_fraction(1, LdsWidth::B32) - 1.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn fraction_grows_with_blocking_and_width() {
        for width in LdsWidth::ALL {
            let mut last = 0.0;
            for br in 1..=14 {
                let f = ffma_fraction(br, width);
                assert!(f > last);
                last = f;
            }
        }
        for br in 2..=14 {
            assert!(ffma_fraction(br, LdsWidth::B64) > ffma_fraction(br, LdsWidth::B32));
            assert!(ffma_fraction(br, LdsWidth::B128) > ffma_fraction(br, LdsWidth::B64));
        }
    }
}
