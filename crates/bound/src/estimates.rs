//! The paper's published reference numbers, used by the benchmark harness
//! to print paper-vs-reproduced comparisons (EXPERIMENTS.md).

use peakperf_arch::Generation;

/// Reference results quoted in the paper for one GPU.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PaperNumbers {
    /// The GPU generation.
    pub generation: Generation,
    /// Theoretical peak, GFLOPS (Table 1).
    pub theoretical_peak_gflops: f64,
    /// Estimated upper bound as a fraction of the theoretical peak
    /// (Section 4.5).
    pub upper_bound_fraction: f64,
    /// Achieved performance of the paper's assembly SGEMM as a fraction of
    /// the theoretical peak (Section 5: 74.2 % on Fermi; on Kepler 77.3 %
    /// of the bound ≈ 44.5 % of peak).
    pub achieved_fraction: f64,
    /// CUBLAS performance as a fraction of the theoretical peak
    /// (Section 1: ~70 % on Fermi with CUDA 4.1, ~42 % on Kepler with 4.2).
    pub cublas_fraction: f64,
}

/// The paper's reference numbers for a generation.
///
/// # Panics
///
/// Panics for [`Generation::Gt200`], which the paper does not evaluate.
pub fn paper_reference(generation: Generation) -> PaperNumbers {
    match generation {
        Generation::Fermi => PaperNumbers {
            generation,
            theoretical_peak_gflops: 1581.0,
            upper_bound_fraction: 0.825,
            achieved_fraction: 0.742,
            cublas_fraction: 0.70,
        },
        Generation::Kepler => PaperNumbers {
            generation,
            theoretical_peak_gflops: 3090.0,
            upper_bound_fraction: 0.576,
            achieved_fraction: 0.576 * 0.773,
            cublas_fraction: 0.42,
        },
        Generation::Gt200 => panic!("the paper does not evaluate SGEMM on GT200"),
    }
}

impl PaperNumbers {
    /// Achieved performance as a fraction of the estimated bound
    /// (~90 % on Fermi, 77.3 % on Kepler — Section 5).
    pub fn achieved_fraction_of_bound(&self) -> f64 {
        self.achieved_fraction / self.upper_bound_fraction
    }

    /// Achieved GFLOPS.
    pub fn achieved_gflops(&self) -> f64 {
        self.achieved_fraction * self.theoretical_peak_gflops
    }

    /// Upper bound in GFLOPS.
    pub fn upper_bound_gflops(&self) -> f64 {
        self.upper_bound_fraction * self.theoretical_peak_gflops
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fermi_reference_is_consistent() {
        let p = paper_reference(Generation::Fermi);
        // ~90% of the estimated bound (Section 5).
        assert!((p.achieved_fraction_of_bound() - 0.90).abs() < 0.01);
        // ~1173 GFLOPS achieved on GTX580.
        assert!((p.achieved_gflops() - 1173.0).abs() < 5.0);
    }

    #[test]
    fn kepler_reference_is_consistent() {
        let p = paper_reference(Generation::Kepler);
        assert!((p.achieved_fraction_of_bound() - 0.773).abs() < 0.001);
        // ~1376 GFLOPS achieved on GTX680 (~1300 for NN in Section 5.4).
        assert!(p.achieved_gflops() > 1300.0 && p.achieved_gflops() < 1450.0);
    }

    #[test]
    #[should_panic(expected = "GT200")]
    fn gt200_has_no_reference() {
        let _ = paper_reference(Generation::Gt200);
    }
}
