//! The performance upper-bound model of Lai & Seznec (CGO 2013),
//! Section 4.
//!
//! Different from performance *prediction* models, this crate computes the
//! performance an application **cannot exceed** on a GPU, from
//!
//! * the architecture limits ([`peakperf_arch::GpuConfig`]: register file,
//!   63-register encoding limit, shared-memory size, scheduler issue
//!   throughput), and
//! * the measured instruction-throughput database
//!   ([`peakperf_arch::ThroughputTable`], populated from assembly-level
//!   microbenchmarks — Figures 2 and 4, Table 2).
//!
//! The flow for SGEMM (Sections 4.2-4.5):
//!
//! 1. [`ffma_fraction`] — the FFMA percentage of the main loop as a
//!    function of the register blocking factor and LDS width (Figure 3);
//! 2. [`constraints`] — Equations 1-5: the register/shared-memory budget
//!    that limits the blocking factor to 6 and the active threads to
//!    512 (Fermi) / 1024 (Kepler);
//! 3. [`UpperBoundModel`] — Equations 6-9: the memory-bandwidth bound and
//!    the SM-throughput bound, whose minimum is the potential peak
//!    ([`UpperBoundModel::sgemm_bound`]);
//! 4. [`sweep`] — the Section 5.5 design-space exploration that an
//!    auto-tuner would use.
//!
//! Headline results reproduced here (within small tolerances):
//! 82.5 % of theoretical peak on GTX580, 54.6 % (LDS.64) and 57.6 %
//! (LDS.128) on GTX680.

mod blocking;
mod constraints;
mod estimates;
mod model;
mod sweep;
mod whatif;

pub use blocking::{ffma_fraction, ffma_lds_ratio};
pub use constraints::{
    max_blocking_factor, occupancy, registers_detailed, registers_required, shared_bytes_per_block,
    stride_is_valid, SgemmConfig,
};
pub use estimates::{paper_reference, PaperNumbers};
pub use model::{BoundEstimate, Limiter, UpperBoundModel};
pub use sweep::{sweep, SweepEntry};
pub use whatif::{register_limit_sweep, RegisterLimitPoint};

pub use peakperf_arch::{Generation, GpuConfig, LdsWidth};
