//! Design-space exploration (Section 5.5).
//!
//! The paper argues that the upper-bound analysis shrinks the search space
//! an auto-tuner must explore: the estimated bound "actually corresponds to
//! a set of parameters and optimization options". This module enumerates
//! the candidate `(B_R, T_B, L, LDS width)` space, filters it through the
//! constraints of Section 4.4, and ranks the survivors by their bound.

use peakperf_arch::LdsWidth;

use crate::constraints::{occupancy, registers_required, shared_bytes_per_block, SgemmConfig};
use crate::model::{BoundEstimate, UpperBoundModel};
use crate::stride_is_valid;

/// One feasible configuration with its bound and occupancy.
#[derive(Debug, Clone)]
pub struct SweepEntry {
    /// The bound estimate (contains the configuration).
    pub estimate: BoundEstimate,
    /// Registers per thread (Equation 4).
    pub regs_per_thread: u32,
    /// Shared memory per block in bytes (Equation 5).
    pub shared_per_block: u32,
    /// Resident blocks per SM.
    pub blocks_per_sm: u32,
    /// Resident threads per SM.
    pub threads_per_sm: u32,
}

/// Enumerate the feasible design space for a GPU and return the entries
/// sorted by decreasing bound.
///
/// The candidate grid covers `B_R` in 1..=8, square block sizes 64..1024,
/// strides 8..=32 in steps of 8, and the three LDS widths — comfortably
/// containing every configuration the paper discusses.
pub fn sweep(model: &UpperBoundModel) -> Vec<SweepEntry> {
    let mut candidates = Vec::new();
    for br in 1..=8u32 {
        for tb in [64u32, 144, 256, 400, 576, 1024] {
            for l in [8u32, 16, 24, 32] {
                for width in LdsWidth::ALL {
                    candidates.push(SgemmConfig { br, tb, l, width });
                }
            }
        }
    }

    let evaluate = |config: &SgemmConfig| -> Option<SweepEntry> {
        if !stride_is_valid(config) {
            return None;
        }
        let (blocks, threads) = occupancy(model.gpu(), config)?;
        let estimate = model.sgemm_bound(config)?;
        Some(SweepEntry {
            regs_per_thread: registers_required(config),
            shared_per_block: shared_bytes_per_block(config),
            blocks_per_sm: blocks,
            threads_per_sm: threads,
            estimate,
        })
    };

    // Evaluate candidates on scoped worker threads, one contiguous chunk
    // each; chunks are concatenated in enumeration order, so the result
    // (including the stable tie-breaking sort below) is identical to the
    // serial loop whatever the thread count.
    let workers = std::thread::available_parallelism()
        .map_or(1, std::num::NonZeroUsize::get)
        .min(candidates.len().max(1));
    let mut out: Vec<SweepEntry> = if workers <= 1 {
        candidates.iter().filter_map(evaluate).collect()
    } else {
        let chunk = candidates.len().div_ceil(workers);
        let chunks: Vec<Vec<SweepEntry>> = std::thread::scope(|scope| {
            let handles: Vec<_> = candidates
                .chunks(chunk)
                .map(|part| scope.spawn(move || part.iter().filter_map(evaluate).collect()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        chunks.into_iter().flatten().collect()
    };
    // Rank by bound; break ties toward configurations with at least two
    // resident blocks (so computation overlaps across barriers), then more
    // resident threads (latency hiding, Figure 4), then larger blocks.
    out.sort_by(|a, b| {
        b.estimate
            .gflops
            .total_cmp(&a.estimate.gflops)
            .then((b.blocks_per_sm >= 2).cmp(&(a.blocks_per_sm >= 2)))
            .then(b.threads_per_sm.cmp(&a.threads_per_sm))
            .then(b.estimate.config.tb.cmp(&a.estimate.config.tb))
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use peakperf_arch::GpuConfig;

    #[test]
    fn sweep_is_nonempty_and_sorted() {
        let model = UpperBoundModel::new(&GpuConfig::gtx580());
        let entries = sweep(&model);
        assert!(entries.len() > 20);
        for pair in entries.windows(2) {
            assert!(pair[0].estimate.gflops >= pair[1].estimate.gflops);
        }
    }

    #[test]
    fn every_entry_respects_the_budget() {
        let gpu = GpuConfig::gtx680();
        let model = UpperBoundModel::new(&gpu);
        for e in sweep(&model) {
            assert!(e.regs_per_thread <= 63);
            assert!(e.shared_per_block <= gpu.shared_mem_per_sm);
            assert!(e.threads_per_sm <= gpu.max_threads_per_sm);
        }
    }

    #[test]
    fn fermi_winner_is_the_paper_config() {
        let model = UpperBoundModel::new(&GpuConfig::gtx580());
        let best = &sweep(&model)[0];
        assert_eq!(best.estimate.config.br, 6);
        assert_eq!(best.estimate.config.tb, 256);
        // The bound is indifferent between LDS and LDS.64 only below the
        // issue limit; the winner must use a wide load.
        assert_ne!(best.estimate.config.width, LdsWidth::B32);
    }

    #[test]
    fn blocking_factor_7_never_survives_the_register_budget() {
        // Equation 2 allows BR=7 (49+7+1 < 63) but Equation 4 with
        // prefetching does not (Section 4.5 chooses 6).
        let model = UpperBoundModel::new(&GpuConfig::gtx580());
        for e in sweep(&model) {
            assert!(e.estimate.config.br <= 6, "BR={}", e.estimate.config.br);
        }
    }
}
