//! Equations 6-9: the upper-bound model itself.

use std::fmt;

use peakperf_arch::{GpuConfig, LdsWidth, ThroughputTable};

use crate::constraints::{occupancy, SgemmConfig};
use crate::{ffma_lds_ratio, stride_is_valid};

/// Which bound limits the potential peak (Equation 9).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Limiter {
    /// SM instruction-processing throughput (Equation 8).
    SmThroughput,
    /// Global-memory bandwidth (Equation 6).
    MemoryBandwidth,
}

impl fmt::Display for Limiter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Limiter::SmThroughput => f.write_str("SM throughput"),
            Limiter::MemoryBandwidth => f.write_str("memory bandwidth"),
        }
    }
}

/// An upper-bound estimate for one configuration.
#[derive(Debug, Clone)]
pub struct BoundEstimate {
    /// The configuration evaluated.
    pub config: SgemmConfig,
    /// Potential peak as a fraction of the theoretical peak (Equation 9).
    pub fraction_of_peak: f64,
    /// Potential peak in GFLOPS.
    pub gflops: f64,
    /// The SM-throughput bound alone, as a fraction of peak (Equation 8).
    pub sm_bound_fraction: f64,
    /// The memory-bandwidth bound alone, in GFLOPS (Equation 6).
    pub mem_bound_gflops: f64,
    /// Which bound is the minimum.
    pub limited_by: Limiter,
}

/// The performance upper-bound model (Section 4.5): architecture limits
/// plus the measured throughput database.
#[derive(Debug, Clone)]
pub struct UpperBoundModel {
    gpu: GpuConfig,
    throughput: ThroughputTable,
}

impl UpperBoundModel {
    /// Build the model for a GPU.
    pub fn new(gpu: &GpuConfig) -> UpperBoundModel {
        UpperBoundModel {
            gpu: gpu.clone(),
            throughput: gpu.throughput(),
        }
    }

    /// The GPU this model describes.
    pub fn gpu(&self) -> &GpuConfig {
        &self.gpu
    }

    /// The throughput factor `F_T` (Equation 7): the achievable mixed
    /// FFMA/LDS.X thread-instruction throughput divided by the SP
    /// processing throughput, for the optimistic conditions of the bound
    /// (saturating active threads, best measured efficiency).
    ///
    /// The paper's Section 4.5 plugs in slightly more optimistic values
    /// than its own steady measurements (30.8 vs 30.4 on Fermi); we follow
    /// it: the ideal pipe model derated by the *bound* efficiency — Fermi
    /// 30.8/32, Kepler the measured 122.4/132 (LDS.64) and 119.9/132
    /// (LDS.128) points.
    pub fn throughput_factor(&self, config: &SgemmConfig) -> f64 {
        let ratio = ffma_lds_ratio(config.br, config.width).round() as u32;
        let ideal = self.throughput.mixed_throughput_ideal(ratio, config.width);
        let eff = match (self.gpu.generation, config.width) {
            (peakperf_arch::Generation::Fermi, _) => 30.8 / 32.0,
            (peakperf_arch::Generation::Kepler, LdsWidth::B64) => 122.4 / 132.0,
            (peakperf_arch::Generation::Kepler, LdsWidth::B128) => 119.9 / 132.0,
            (peakperf_arch::Generation::Kepler, LdsWidth::B32) => 122.4 / 132.0,
            (peakperf_arch::Generation::Gt200, _) => 1.0,
        };
        ideal * eff / f64::from(self.gpu.sp_throughput_per_cycle())
    }

    /// The instruction factor `F_I` as plugged into Equation 8:
    /// `1 / width.words()` — 1 for LDS, 0.5 for LDS.64, 0.25 for LDS.128
    /// (Section 4.5 uses 0.5 for the Fermi configuration).
    pub fn instruction_factor(&self, config: &SgemmConfig) -> f64 {
        1.0 / f64::from(config.width.words())
    }

    /// Equation 8: the SM-processing-throughput bound as a fraction of the
    /// theoretical peak: `B_R² / (B_R² + 2·B_R·F_I) × F_T`.
    pub fn sm_bound_fraction(&self, config: &SgemmConfig) -> f64 {
        let br = f64::from(config.br);
        let fi = self.instruction_factor(config);
        let ft = self.throughput_factor(config);
        br * br / (br * br + 2.0 * br * fi) * ft
    }

    /// Equation 6: the memory-bandwidth bound in GFLOPS:
    /// `2·B_Sh² / (2·B_Sh·4)` flops per byte times the bandwidth.
    pub fn mem_bound_gflops(&self, config: &SgemmConfig) -> f64 {
        let bsh = f64::from(config.bsh());
        let flops_per_byte = 2.0 * bsh * bsh / (2.0 * bsh * 4.0);
        flops_per_byte * self.gpu.mem_bandwidth_gbps
    }

    /// Equation 9: the potential peak of a configuration — the minimum of
    /// the SM bound and the memory bound.
    ///
    /// Returns `None` when the configuration violates Equation 3 or does
    /// not fit on the SM at all (Equations 1, 4, 5).
    pub fn sgemm_bound(&self, config: &SgemmConfig) -> Option<BoundEstimate> {
        if !stride_is_valid(config) {
            return None;
        }
        occupancy(&self.gpu, config)?;
        let peak = self.gpu.theoretical_peak_gflops();
        let sm_fraction = self.sm_bound_fraction(config);
        let sm_gflops = sm_fraction * peak;
        let mem_gflops = self.mem_bound_gflops(config);
        let (gflops, limited_by) = if mem_gflops < sm_gflops {
            (mem_gflops, Limiter::MemoryBandwidth)
        } else {
            (sm_gflops, Limiter::SmThroughput)
        };
        Some(BoundEstimate {
            config: *config,
            fraction_of_peak: gflops / peak,
            gflops,
            sm_bound_fraction: sm_fraction,
            mem_bound_gflops: mem_gflops,
            limited_by,
        })
    }

    /// The best bound over the paper's candidate configurations — the
    /// headline numbers of Section 4.5 (82.5 % on Fermi with LDS.64,
    /// 57.6 % on Kepler with LDS.128).
    pub fn best_sgemm_bound(&self) -> BoundEstimate {
        crate::sweep(self)
            .into_iter()
            .map(|e| e.estimate)
            .max_by(|a, b| a.gflops.total_cmp(&b.gflops))
            .expect("at least one feasible configuration exists")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fermi_bound_is_82_5_percent() {
        let model = UpperBoundModel::new(&GpuConfig::gtx580());
        let est = model.sgemm_bound(&SgemmConfig::paper_fermi()).unwrap();
        // Paper: 36/42 * 30.8/32 = 82.5%.
        assert!(
            (est.fraction_of_peak - 0.825).abs() < 0.005,
            "got {}",
            est.fraction_of_peak
        );
        assert_eq!(est.limited_by, Limiter::SmThroughput);
    }

    #[test]
    fn kepler_bounds_match_section_4_5() {
        let model = UpperBoundModel::new(&GpuConfig::gtx680());
        let lds64 = model
            .sgemm_bound(&SgemmConfig {
                width: LdsWidth::B64,
                ..SgemmConfig::paper_kepler()
            })
            .unwrap();
        assert!(
            (lds64.fraction_of_peak - 0.546).abs() < 0.005,
            "LDS.64 got {}",
            lds64.fraction_of_peak
        );
        let lds128 = model.sgemm_bound(&SgemmConfig::paper_kepler()).unwrap();
        assert!(
            (lds128.fraction_of_peak - 0.576).abs() < 0.005,
            "LDS.128 got {}",
            lds128.fraction_of_peak
        );
    }

    #[test]
    fn both_cards_are_sm_bound_not_memory_bound() {
        // Section 4.5: "the performance is bounded by SMs' processing
        // throughput" on both GPUs.
        for gpu in [GpuConfig::gtx580(), GpuConfig::gtx680()] {
            let model = UpperBoundModel::new(&gpu);
            let est = model.best_sgemm_bound();
            assert_eq!(est.limited_by, Limiter::SmThroughput, "{}", gpu.name);
        }
    }

    #[test]
    fn mem_bound_uses_equation_6() {
        let model = UpperBoundModel::new(&GpuConfig::gtx580());
        let cfg = SgemmConfig::paper_fermi();
        // BSh = 96 -> 24 flops/byte * 192.4 GB/s = 4617.6 GFLOPS.
        assert!((model.mem_bound_gflops(&cfg) - 4617.6).abs() < 1.0);
    }

    #[test]
    fn small_shared_tiles_would_be_memory_bound() {
        // Equation 6 at the formula level: a hypothetical BSh = 16 tile
        // yields 4 flops/byte * 192.4 GB/s = 769.6 GFLOPS, below the best
        // SM bound (~1304 GFLOPS) — blocking is what keeps SGEMM off the
        // bandwidth wall. (No *feasible* configuration of the sweep is
        // memory-bound, which is exactly the paper's conclusion.)
        let model = UpperBoundModel::new(&GpuConfig::gtx580());
        let tiny = SgemmConfig {
            br: 2,
            tb: 64,
            l: 16,
            width: LdsWidth::B64,
        };
        assert_eq!(tiny.bsh(), 16);
        let best_sm = model.best_sgemm_bound().gflops;
        assert!(model.mem_bound_gflops(&tiny) < best_sm);
    }

    #[test]
    fn invalid_stride_is_rejected() {
        let model = UpperBoundModel::new(&GpuConfig::gtx580());
        let cfg = SgemmConfig {
            l: 4,
            ..SgemmConfig::paper_fermi()
        };
        assert!(model.sgemm_bound(&cfg).is_none());
    }

    #[test]
    fn best_bounds_select_paper_configs() {
        let fermi = UpperBoundModel::new(&GpuConfig::gtx580());
        let best = fermi.best_sgemm_bound();
        assert_eq!(best.config.br, 6);
        assert!((best.fraction_of_peak - 0.825).abs() < 0.01);

        let kepler = UpperBoundModel::new(&GpuConfig::gtx680());
        let best = kepler.best_sgemm_bound();
        assert_eq!(best.config.br, 6);
        assert_eq!(best.config.width, LdsWidth::B128);
        assert!((best.fraction_of_peak - 0.576).abs() < 0.01);
    }
}
