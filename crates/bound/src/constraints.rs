//! The resource constraints of Section 4.4 (Equations 1-5).

use peakperf_arch::{GpuConfig, LdsWidth};

/// A candidate SGEMM configuration: the critical parameters the analysis
/// identifies (Sections 4.4-4.5).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SgemmConfig {
    /// Register blocking factor `B_R`.
    pub br: u32,
    /// Threads per block `T_B`.
    pub tb: u32,
    /// The k-stride `L` of the shared-memory tiles.
    pub l: u32,
    /// LDS width used in the main loop.
    pub width: LdsWidth,
}

impl SgemmConfig {
    /// The paper's Fermi configuration: 6-register blocking, 256 threads
    /// per block, stride 16, LDS.64.
    pub fn paper_fermi() -> SgemmConfig {
        SgemmConfig {
            br: 6,
            tb: 256,
            l: 16,
            width: LdsWidth::B64,
        }
    }

    /// The paper's best Kepler configuration: as Fermi but LDS.128.
    pub fn paper_kepler() -> SgemmConfig {
        SgemmConfig {
            br: 6,
            tb: 256,
            l: 16,
            width: LdsWidth::B128,
        }
    }

    /// The shared-memory block edge `B_Sh = sqrt(T_B) * B_R`
    /// (96 for the paper's configuration).
    pub fn bsh(&self) -> u32 {
        (self.tb as f64).sqrt().round() as u32 * self.br
    }
}

/// Equation 3: the stride `L` must let each thread load the same amount of
/// data: `(sqrt(T_B) * B_R * L) % T_B == 0`.
pub fn stride_is_valid(config: &SgemmConfig) -> bool {
    let root = (config.tb as f64).sqrt().round() as u32;
    if root * root != config.tb {
        return false;
    }
    (root * config.br * config.l).is_multiple_of(config.tb)
}

/// Equation 4 (strict form): per-thread registers required with
/// prefetching — `B_R² + 2·sqrt(T_B)·B_R·L/T_B + B_R + 1 + R_addr`, with
/// `R_addr = 7` (Section 5.2). The width-specific operand count of the
/// concrete implementation is in [`registers_detailed`].
pub fn registers_required(config: &SgemmConfig) -> u32 {
    let root = (config.tb as f64).sqrt().round() as u32;
    let prefetch = 2 * root * config.br * config.l / config.tb;
    config.br * config.br + prefetch + config.br + 1 + 7
}

/// The Section 5.2 detailed register allocation: like
/// [`registers_required`] but counting the real B-operand registers of the
/// chosen LDS width (2 for `LDS.64`), which makes the paper's Fermi
/// configuration land on exactly 63 registers.
pub fn registers_detailed(config: &SgemmConfig) -> u32 {
    let root = (config.tb as f64).sqrt().round() as u32;
    let prefetch = 2 * root * config.br * config.l / config.tb;
    config.br * config.br + prefetch + config.br + config.width.words() + 7
}

/// Equation 5 (per block): shared memory for the double tile,
/// `2 · sqrt(T_B) · B_R · L · 4` bytes.
pub fn shared_bytes_per_block(config: &SgemmConfig) -> u32 {
    let root = (config.tb as f64).sqrt().round() as u32;
    2 * root * config.br * config.l * 4
}

/// The largest register blocking factor whose strict budget (Equation 4)
/// fits in `max_regs` registers for the given `tb`, `l`, and width.
///
/// For the Fermi/GK104 limit of 63 with the paper's `T_B = 256`, `L = 16`:
/// returns 6 — "because of the hard limit of 63 registers per thread ...
/// the maximum blocking factor is only 6" (Section 4.5).
pub fn max_blocking_factor(max_regs: u32, tb: u32, l: u32, width: LdsWidth) -> u32 {
    (1..=16)
        .filter(|&br| {
            let cfg = SgemmConfig { br, tb, l, width };
            registers_required(&cfg) <= max_regs
        })
        .max()
        .unwrap_or(0)
}

/// Equation 1 occupancy check plus Equation 5: blocks and threads that fit
/// on one SM for a configuration. Returns `(blocks, threads)` or `None` if
/// even one block does not fit.
pub fn occupancy(gpu: &GpuConfig, config: &SgemmConfig) -> Option<(u32, u32)> {
    let regs = registers_required(config);
    let shared = shared_bytes_per_block(config);
    gpu.occupancy()
        .occupancy(regs, shared, config.tb)
        .map(|o| (o.blocks_per_sm, o.threads_per_sm))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_fermi_budget_is_exactly_63() {
        // Section 5.2: 36 + 12 + 6 + 2 + 7 = 63 registers.
        let cfg = SgemmConfig::paper_fermi();
        assert_eq!(registers_detailed(&cfg), 63);
        assert_eq!(registers_required(&cfg), 62);
        assert!(stride_is_valid(&cfg));
        assert_eq!(cfg.bsh(), 96);
        // A+B tiles: 2 * 96 * 16 floats = 12 KiB.
        assert_eq!(shared_bytes_per_block(&cfg), 12 * 1024);
    }

    #[test]
    fn max_blocking_factor_is_6_on_fermi() {
        assert_eq!(max_blocking_factor(63, 256, 16, LdsWidth::B64), 6);
        // GT200's 127-register budget would allow more.
        assert!(max_blocking_factor(127, 256, 16, LdsWidth::B64) > 6);
    }

    #[test]
    fn stride_validity_matches_equation_3() {
        // With TB=256, BR=6: sqrt(TB)*BR = 96, L must make 96*L % 256 == 0
        // -> L in {8, 16, 24, ...} (Section 4.5).
        for l in [8u32, 16, 24, 32] {
            let cfg = SgemmConfig {
                br: 6,
                tb: 256,
                l,
                width: LdsWidth::B64,
            };
            assert!(stride_is_valid(&cfg), "L={l}");
        }
        let cfg = SgemmConfig {
            br: 6,
            tb: 256,
            l: 4,
            width: LdsWidth::B64,
        };
        assert!(!stride_is_valid(&cfg));
        // Non-square block sizes are rejected.
        let cfg = SgemmConfig {
            br: 6,
            tb: 200,
            l: 16,
            width: LdsWidth::B64,
        };
        assert!(!stride_is_valid(&cfg));
    }

    #[test]
    fn occupancy_matches_section_4_5() {
        let fermi = GpuConfig::gtx580();
        let (blocks, threads) = occupancy(&fermi, &SgemmConfig::paper_fermi()).unwrap();
        assert_eq!((blocks, threads), (2, 512));
        let kepler = GpuConfig::gtx680();
        let (blocks, threads) = occupancy(&kepler, &SgemmConfig::paper_kepler()).unwrap();
        assert_eq!(threads, 1024);
        assert_eq!(blocks, 4);
    }

    #[test]
    fn oversized_configs_do_not_fit() {
        let fermi = GpuConfig::gtx580();
        let cfg = SgemmConfig {
            br: 8,
            tb: 256,
            l: 16,
            width: LdsWidth::B64,
        };
        // 8*8 + 16 + 8 + 1 + 7 = 96 > 63.
        assert!(occupancy(&fermi, &cfg).is_none());
    }
}
