//! What-if ablations over the architectural constraints.
//!
//! The paper's introduction points out that the Tesla K20X (GK110) raises
//! the per-thread register limit from 63 to 255 and documents ~73 % SGEMM
//! efficiency. This module asks the model the corresponding questions:
//! *how much of the SGEMM gap is the 63-register encoding limit?* and *how
//! much is the issue-throughput ceiling?* — the two factors Section 4.5
//! names as the main limiters.

use peakperf_arch::{GpuConfig, LdsWidth};

use crate::constraints::{
    registers_required, shared_bytes_per_block, stride_is_valid, SgemmConfig,
};
use crate::model::UpperBoundModel;

/// The bound under a hypothetical per-thread register limit.
#[derive(Debug, Clone)]
pub struct RegisterLimitPoint {
    /// The register limit assumed.
    pub max_regs: u32,
    /// Best feasible blocking factor under that limit.
    pub best_br: u32,
    /// Best bound as a fraction of theoretical peak.
    pub fraction_of_peak: f64,
    /// The winning configuration.
    pub config: SgemmConfig,
}

/// Sweep hypothetical per-thread register limits (e.g. 63 for Fermi/GK104
/// vs 255 for GK110) and report the best achievable SGEMM bound for each.
///
/// Occupancy is still constrained by the SM's register file and shared
/// memory; only the ISA encoding limit changes — this isolates the effect
/// the paper attributes to "the nature of the Fermi (Kepler) instruction
/// set".
pub fn register_limit_sweep(gpu: &GpuConfig, limits: &[u32]) -> Vec<RegisterLimitPoint> {
    let model = UpperBoundModel::new(gpu);
    limits
        .iter()
        .map(|&max_regs| {
            let mut best: Option<RegisterLimitPoint> = None;
            for br in 1..=16u32 {
                for tb in [64u32, 144, 256, 576, 1024] {
                    for l in [8u32, 16, 24, 32] {
                        for width in LdsWidth::ALL {
                            let config = SgemmConfig { br, tb, l, width };
                            if !stride_is_valid(&config) {
                                continue;
                            }
                            let regs = registers_required(&config);
                            if regs > max_regs {
                                continue;
                            }
                            // At least 128 resident threads (4 warps) to
                            // have any latency hiding at all.
                            let threads_fit = gpu.registers_per_sm / regs.max(1);
                            if threads_fit < 128 || tb > threads_fit {
                                continue;
                            }
                            if shared_bytes_per_block(&config) > gpu.shared_mem_per_sm {
                                continue;
                            }
                            // Reuse the model's Equation 8/6 math directly
                            // (occupancy was checked by hand above because
                            // the architectural limit differs).
                            let sm = model.sm_bound_fraction(&config);
                            let mem =
                                model.mem_bound_gflops(&config) / gpu.theoretical_peak_gflops();
                            let fraction = sm.min(mem);
                            if best.as_ref().is_none_or(|b| fraction > b.fraction_of_peak) {
                                best = Some(RegisterLimitPoint {
                                    max_regs,
                                    best_br: br,
                                    fraction_of_peak: fraction,
                                    config,
                                });
                            }
                        }
                    }
                }
            }
            best.expect("some configuration is always feasible")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn more_registers_raise_the_bound() {
        let gpu = GpuConfig::gtx680();
        let points = register_limit_sweep(&gpu, &[63, 127, 255]);
        assert_eq!(points.len(), 3);
        // GK110-style 255 registers allow a larger blocking factor and a
        // strictly better bound than the 63-register encoding.
        assert!(points[0].best_br <= points[1].best_br);
        assert!(points[1].fraction_of_peak >= points[0].fraction_of_peak);
        assert!(points[2].fraction_of_peak > points[0].fraction_of_peak);
        assert!(points[2].best_br > 6);
    }

    #[test]
    fn the_63_limit_reproduces_the_paper_br() {
        let gpu = GpuConfig::gtx580();
        let points = register_limit_sweep(&gpu, &[63]);
        assert_eq!(points[0].best_br, 6);
        assert!((points[0].fraction_of_peak - 0.825).abs() < 0.01);
    }

    #[test]
    fn bound_is_monotone_in_the_register_limit() {
        let gpu = GpuConfig::gtx580();
        let limits = [40u32, 63, 96, 127, 191, 255];
        let points = register_limit_sweep(&gpu, &limits);
        for pair in points.windows(2) {
            assert!(
                pair[1].fraction_of_peak + 1e-9 >= pair[0].fraction_of_peak,
                "{} -> {}",
                pair[0].max_regs,
                pair[1].max_regs
            );
        }
    }
}
