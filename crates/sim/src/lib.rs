//! Functional + cycle-level simulator for Fermi (GF110) and Kepler (GK104)
//! streaming multiprocessors.
//!
//! The paper measures real silicon; this crate is the substitute substrate
//! (see `DESIGN.md` at the repository root). It has two engines sharing one
//! functional core:
//!
//! * **Functional execution** ([`Gpu::launch`]): runs every block of a grid
//!   to completion and is used to verify kernels (e.g. SGEMM against a CPU
//!   reference). Warp divergence is handled with a min-PC SIMT executor.
//! * **Cycle-level timing** ([`timing::TimingSim`]): simulates the resident
//!   warps of one SM cycle by cycle — warp schedulers with the generation's
//!   issue model (Fermi: one warp instruction per shader cycle; Kepler: an
//!   issue-token bucket calibrated to the measured ~132 thread-insts/cycle
//!   with register-bank conflict surcharges), a scoreboard with pipeline
//!   latencies, LD/ST pipe occupancy with shared-memory bank-conflict
//!   serialization, a global-memory interface with bandwidth queueing and
//!   fixed latency, and barrier handling. [`timing::time_kernel`] then
//!   extrapolates one SM's steady state to the full GPU, which is how the
//!   paper-style GFLOPS numbers in Figures 5-7 are produced.
//!
//! Calibration constants (latencies, issue rates, pipe initiation
//! intervals) live in [`timing::Calibration`] and come from the paper's
//! microbenchmark measurements (Tables 1-2, Figures 2 and 4).
//!
//! # Example: run a kernel functionally
//!
//! ```
//! use peakperf_sass::{Generation, KernelBuilder, MemSpace, MemWidth, Reg, SpecialReg};
//! use peakperf_sim::{Gpu, LaunchConfig};
//!
//! // out[tid] = tid * 3
//! let mut b = KernelBuilder::new("triple", Generation::Fermi);
//! let out = b.param("out");
//! b.s2r(Reg::r(0), SpecialReg::TidX);
//! b.imul(Reg::r(2), Reg::r(0), 3);
//! b.mov(Reg::r(1), out);
//! b.iscadd(Reg::r(1), Reg::r(0), Reg::r(1), 2);
//! b.st(MemSpace::Global, MemWidth::B32, Reg::r(2), Reg::r(1), 0);
//! b.exit();
//! let kernel = b.finish()?;
//!
//! let mut gpu = Gpu::new(Generation::Fermi);
//! let buf = gpu.memory_mut().alloc_zeroed(64 * 4)?;
//! gpu.launch(&kernel, LaunchConfig::linear(1, 64), &[buf])?;
//! assert_eq!(gpu.memory().read_u32(buf + 5 * 4)?, 15);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

// The simulator is fuzzed with adversarial kernels (see
// `peakperf-bench::fault`): every failure must surface as a typed
// `SimError`, so panicking shortcuts are rejected outside test code.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod cancel;
mod error;
mod exec;
mod func;
mod launch;
mod mem;
pub mod perfmon;
mod stats;
pub mod timing;
mod warp;

pub use cancel::{CancelCause, CancelSource, CancelToken};
pub use error::{HangSnapshot, SimError, WarpHang};
pub use func::Gpu;
pub use launch::{Dim3, LaunchConfig};
pub use mem::GlobalMemory;
pub use stats::{with_counter_scope, Counters, FuncStats, InstMix};
pub use warp::{StepEvent, WarpState};

// The parallel experiment executor in `peakperf-bench` moves simulator
// state onto worker threads; these assertions keep the core types `Send`
// (a regression here would surface far away, as an executor build error).
const _: fn() = || {
    fn assert_send<T: Send>() {}
    assert_send::<GlobalMemory>();
    assert_send::<Gpu>();
    assert_send::<SimError>();
    assert_send::<timing::TimingSim>();
    assert_send::<timing::TimingReport>();
    assert_send::<timing::GpuTiming>();
    assert_send::<Counters>();
    fn assert_sync<T: Send + Sync>() {}
    assert_sync::<CancelToken>();
};

pub use peakperf_arch::Generation;
