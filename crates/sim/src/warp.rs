//! Per-warp architectural state and the min-PC SIMT grouping.

use peakperf_sass::{Pred, Reg};

/// Sentinel PC for exited lanes.
pub const EXITED: u32 = u32::MAX;

/// Events produced by stepping a warp (see `exec::step_warp`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepEvent {
    /// One warp instruction was executed.
    Executed {
        /// Instruction index that was executed.
        pc: u32,
        /// Lanes that truly executed (after divergence and guards).
        exec_mask: u32,
    },
    /// The warp reached a `BAR.SYNC` and is waiting for the block.
    AtBarrier {
        /// Instruction index of the barrier.
        pc: u32,
    },
    /// All lanes have exited.
    Exited,
}

/// The architectural state of one warp: 32 lanes × (PC, 63 registers + RZ,
/// 7 predicates).
///
/// Divergence is handled with *min-PC scheduling*: at each step the warp
/// executes the group of lanes whose PC is minimal. For structured control
/// flow this reconverges exactly where the hardware's SSY/reconvergence
/// stack would, and it is robust for arbitrary (even unstructured) branch
/// patterns.
#[derive(Debug, Clone)]
pub struct WarpState {
    /// Warp index within its block.
    pub warp_id: u32,
    pcs: [u32; 32],
    /// Lanes that exist (blocks whose size is not a multiple of 32 leave
    /// the tail lanes dead).
    live: u32,
    regs: Box<[u32; 32 * 64]>,
    preds: [u8; 32],
}

impl WarpState {
    /// A fresh warp with `lanes` live lanes, all registers zero, all PCs 0.
    ///
    /// # Panics
    ///
    /// Panics if `lanes` is 0 or exceeds 32.
    pub fn new(warp_id: u32, lanes: u32) -> WarpState {
        assert!((1..=32).contains(&lanes), "warp must have 1..=32 lanes");
        let mut pcs = [EXITED; 32];
        for pc in pcs.iter_mut().take(lanes as usize) {
            *pc = 0;
        }
        WarpState {
            warp_id,
            pcs,
            live: if lanes == 32 {
                u32::MAX
            } else {
                (1 << lanes) - 1
            },
            regs: Box::new([0u32; 32 * 64]),
            preds: [0; 32],
        }
    }

    /// Bitmask of live (created) lanes.
    pub fn live_mask(&self) -> u32 {
        self.live
    }

    /// Bitmask of lanes that have not exited.
    pub fn running_mask(&self) -> u32 {
        let mut m = 0u32;
        for lane in 0..32 {
            if self.live & (1 << lane) != 0 && self.pcs[lane] != EXITED {
                m |= 1 << lane;
            }
        }
        m
    }

    /// Whether every lane has exited.
    pub fn done(&self) -> bool {
        self.running_mask() == 0
    }

    /// The current min-PC group: the smallest PC among running lanes and
    /// the mask of lanes at it. `None` when the warp is done.
    pub fn current_group(&self) -> Option<(u32, u32)> {
        let mut min_pc = EXITED;
        for lane in 0..32 {
            if self.live & (1 << lane) != 0 {
                min_pc = min_pc.min(self.pcs[lane]);
            }
        }
        if min_pc == EXITED {
            return None;
        }
        let mut mask = 0u32;
        for lane in 0..32 {
            if self.live & (1 << lane) != 0 && self.pcs[lane] == min_pc {
                mask |= 1 << lane;
            }
        }
        Some((min_pc, mask))
    }

    /// Read a register in one lane (RZ reads as zero).
    pub fn reg(&self, lane: usize, r: Reg) -> u32 {
        if r.is_rz() {
            0
        } else {
            self.regs[lane * 64 + r.index() as usize]
        }
    }

    /// Write a register in one lane (writes to RZ are discarded).
    pub fn set_reg(&mut self, lane: usize, r: Reg, value: u32) {
        if !r.is_rz() {
            self.regs[lane * 64 + r.index() as usize] = value;
        }
    }

    /// Read a predicate in one lane (PT reads as true).
    pub fn pred(&self, lane: usize, p: Pred) -> bool {
        p.is_pt() || self.preds[lane] & (1 << p.index()) != 0
    }

    /// Write a predicate in one lane (writes to PT are discarded).
    pub fn set_pred(&mut self, lane: usize, p: Pred, value: bool) {
        if !p.is_pt() {
            if value {
                self.preds[lane] |= 1 << p.index();
            } else {
                self.preds[lane] &= !(1 << p.index());
            }
        }
    }

    /// Advance the PC of every lane in `mask` to `pc + 1`.
    pub(crate) fn advance(&mut self, mask: u32, pc: u32) {
        for lane in 0..32 {
            if mask & (1 << lane) != 0 {
                self.pcs[lane] = pc + 1;
            }
        }
    }

    /// Redirect lanes in `mask` to `target`.
    pub(crate) fn jump(&mut self, mask: u32, target: u32) {
        for lane in 0..32 {
            if mask & (1 << lane) != 0 {
                self.pcs[lane] = target;
            }
        }
    }

    /// Mark lanes in `mask` as exited.
    pub(crate) fn exit_lanes(&mut self, mask: u32) {
        for lane in 0..32 {
            if mask & (1 << lane) != 0 {
                self.pcs[lane] = EXITED;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_warp_groups_all_lanes_at_zero() {
        let w = WarpState::new(0, 32);
        assert_eq!(w.current_group(), Some((0, u32::MAX)));
        assert!(!w.done());
    }

    #[test]
    fn partial_warp_masks_dead_lanes() {
        let w = WarpState::new(0, 5);
        assert_eq!(w.live_mask(), 0b11111);
        assert_eq!(w.current_group(), Some((0, 0b11111)));
    }

    #[test]
    fn min_pc_selects_laggards() {
        let mut w = WarpState::new(0, 4);
        w.jump(0b0011, 10);
        w.jump(0b1100, 3);
        assert_eq!(w.current_group(), Some((3, 0b1100)));
        w.advance(0b1100, 3);
        assert_eq!(w.current_group(), Some((4, 0b1100)));
        w.jump(0b1100, 10);
        // Reconverged.
        assert_eq!(w.current_group(), Some((10, 0b1111)));
    }

    #[test]
    fn rz_and_pt_behave() {
        let mut w = WarpState::new(0, 1);
        w.set_reg(0, Reg::RZ, 42);
        assert_eq!(w.reg(0, Reg::RZ), 0);
        assert!(w.pred(0, Pred::PT));
        w.set_pred(0, Pred::PT, false);
        assert!(w.pred(0, Pred::PT));
        w.set_pred(0, Pred::p(2), true);
        assert!(w.pred(0, Pred::p(2)));
        w.set_pred(0, Pred::p(2), false);
        assert!(!w.pred(0, Pred::p(2)));
    }

    #[test]
    fn exit_empties_warp() {
        let mut w = WarpState::new(0, 2);
        w.exit_lanes(0b11);
        assert!(w.done());
        assert_eq!(w.current_group(), None);
    }
}
