//! Functional (untimed) whole-grid execution.

use peakperf_arch::{Generation, GpuConfig, WARP_SIZE};
use peakperf_sass::{validate_kernel, Kernel};

use crate::exec::{release_barrier, step_warp, BlockCtx, MemCtx};
use crate::warp::{StepEvent, WarpState};
use crate::{Dim3, FuncStats, GlobalMemory, HangSnapshot, LaunchConfig, SimError, WarpHang};

/// Default per-block safety valve: maximum warp-instruction steps.
const STEP_LIMIT: u64 = 1 << 34;

/// A functional GPU: global memory plus a target generation.
///
/// `Gpu::launch` runs a kernel over a whole grid, block by block, and is
/// the oracle the test suite uses to verify generated kernels (the timing
/// engine in [`crate::timing`] shares the same functional core, so a kernel
/// that is functionally correct here computes the same values there).
#[derive(Debug, Clone)]
pub struct Gpu {
    generation: Generation,
    memory: GlobalMemory,
    step_limit: u64,
}

impl Gpu {
    /// A GPU of the given generation with empty memory.
    pub fn new(generation: Generation) -> Gpu {
        Gpu {
            generation,
            memory: GlobalMemory::new(),
            step_limit: STEP_LIMIT,
        }
    }

    /// Lower (or raise) the per-block step watchdog. Fuzzing campaigns use
    /// a small budget so runaway mutants trip quickly instead of spinning
    /// for the default 2^34 steps.
    pub fn set_step_limit(&mut self, limit: u64) {
        self.step_limit = limit.max(1);
    }

    /// The GPU built from a card configuration.
    pub fn from_config(config: &GpuConfig) -> Gpu {
        Gpu::new(config.generation)
    }

    /// The target generation.
    pub fn generation(&self) -> Generation {
        self.generation
    }

    /// Global memory (read access).
    pub fn memory(&self) -> &GlobalMemory {
        &self.memory
    }

    /// Global memory (mutable access, e.g. for allocation).
    pub fn memory_mut(&mut self) -> &mut GlobalMemory {
        &mut self.memory
    }

    /// Run `kernel` functionally over the whole grid.
    ///
    /// `params` are the kernel parameters in declaration order (scalars or
    /// buffer addresses from [`GlobalMemory::alloc_zeroed`]).
    ///
    /// Returns aggregate execution statistics.
    ///
    /// # Errors
    ///
    /// Fails on validation errors, launch mismatches (parameter count,
    /// block size), memory faults, divergent barriers, or suspected
    /// infinite loops.
    pub fn launch(
        &mut self,
        kernel: &Kernel,
        config: LaunchConfig,
        params: &[u32],
    ) -> Result<FuncStats, SimError> {
        validate_kernel(kernel, self.generation)?;
        if params.len() != kernel.params.len() {
            return Err(SimError::Launch {
                message: format!(
                    "kernel `{}` expects {} parameters, got {}",
                    kernel.name,
                    kernel.params.len(),
                    params.len()
                ),
            });
        }
        let threads = config.threads_per_block();
        if threads == 0 || threads > 1024 {
            return Err(SimError::Launch {
                message: format!("block size {threads} out of range 1..=1024"),
            });
        }
        let mut stats = FuncStats::default();
        for bz in 0..config.grid.z {
            for by in 0..config.grid.y {
                for bx in 0..config.grid.x {
                    let ctaid = Dim3 {
                        x: bx,
                        y: by,
                        z: bz,
                    };
                    let block_stats = self.run_block(kernel, config, ctaid, params)?;
                    stats.merge(&block_stats);
                }
            }
        }
        Ok(stats)
    }

    fn run_block(
        &mut self,
        kernel: &Kernel,
        config: LaunchConfig,
        ctaid: Dim3,
        params: &[u32],
    ) -> Result<FuncStats, SimError> {
        let threads = config.threads_per_block();
        let n_warps = config.warps_per_block();
        let block = BlockCtx {
            ctaid,
            ntid: config.block,
            nctaid: config.grid,
        };
        let mut warps: Vec<WarpState> = (0..n_warps)
            .map(|w| {
                let lanes = (threads - w * WARP_SIZE).min(WARP_SIZE);
                WarpState::new(w, lanes)
            })
            .collect();
        let mut shared = vec![0u8; kernel.shared_bytes as usize];
        let mut local = vec![0u8; kernel.local_bytes as usize * threads as usize];
        let mut stats = FuncStats::default();

        // Warp status: None = runnable, Some(pc) = waiting at barrier.
        let mut at_barrier: Vec<Option<u32>> = vec![None; n_warps as usize];
        let mut steps: u64 = 0;

        loop {
            for w in 0..n_warps as usize {
                if at_barrier[w].is_some() || warps[w].done() {
                    continue;
                }
                // Run this warp until it blocks or exits.
                loop {
                    steps += 1;
                    if steps > self.step_limit {
                        return Err(SimError::StepLimit {
                            limit: self.step_limit,
                            snapshot: Some(hang_snapshot(steps, &warps, &at_barrier)),
                        });
                    }
                    let mut mem = MemCtx {
                        global: &mut self.memory,
                        shared: &mut shared,
                        local: &mut local,
                        local_bytes: kernel.local_bytes,
                        params,
                    };
                    let result = step_warp(&kernel.code, &mut warps[w], &mut mem, &block)?;
                    match result.event {
                        StepEvent::Executed { pc, exec_mask } => {
                            stats.record(&kernel.code[pc as usize], exec_mask.count_ones());
                        }
                        StepEvent::AtBarrier { pc } => {
                            stats.record(&kernel.code[pc as usize], 32);
                            at_barrier[w] = Some(pc);
                            break;
                        }
                        StepEvent::Exited => break,
                    }
                }
            }

            // After the stepping pass every non-exited warp is parked at a
            // barrier. The barrier is satisfiable only if *all* member warps
            // of the block reached it; if some already exited, the waiters
            // can never be released — a deadlock on real hardware.
            let running: Vec<usize> = (0..n_warps as usize)
                .filter(|&w| !warps[w].done())
                .collect();
            if running.is_empty() {
                return Ok(stats);
            }
            if running.len() < n_warps as usize {
                let pc = running.first().and_then(|&w| at_barrier[w]).unwrap_or(0);
                return Err(SimError::BarrierDeadlock {
                    pc,
                    waiting: running.len() as u32,
                    exited: n_warps - running.len() as u32,
                });
            }
            for &w in &running {
                if let Some(pc) = at_barrier[w].take() {
                    release_barrier(&mut warps[w], pc);
                }
            }
        }
    }
}

/// Capture the scheduling state of every warp of the current block for
/// step-limit diagnostics.
fn hang_snapshot(at: u64, warps: &[WarpState], at_barrier: &[Option<u32>]) -> HangSnapshot {
    let warps = warps
        .iter()
        .enumerate()
        .map(|(w, warp)| {
            if warp.done() {
                WarpHang {
                    warp: w as u32,
                    pc: None,
                    state: "done",
                }
            } else if let Some(pc) = at_barrier[w] {
                WarpHang {
                    warp: w as u32,
                    pc: Some(pc),
                    state: "barrier",
                }
            } else {
                WarpHang {
                    warp: w as u32,
                    pc: warp.current_group().map(|(pc, _)| pc),
                    state: "runnable",
                }
            }
        })
        .collect();
    HangSnapshot { at, warps }
}

#[cfg(test)]
mod tests {
    use super::*;
    use peakperf_sass::{CmpOp, KernelBuilder, MemSpace, MemWidth, Pred, Reg, SpecialReg};

    /// out[global_tid] = a[global_tid] * alpha + out[global_tid]
    fn saxpy_kernel() -> Kernel {
        let mut b = KernelBuilder::new("saxpy", Generation::Fermi);
        let p_a = b.param("a");
        let p_out = b.param("out");
        let p_alpha = b.param("alpha");
        let r_tid = Reg::r(0);
        let r_cta = Reg::r(1);
        let r_gid = Reg::r(2);
        let r_a = Reg::r(3);
        let r_o = Reg::r(4);
        let r_av = Reg::r(5);
        let r_ov = Reg::r(6);
        let r_alpha = Reg::r(7);
        b.s2r(r_tid, SpecialReg::TidX);
        b.s2r(r_cta, SpecialReg::CtaidX);
        b.imad(r_gid, r_cta, 64, r_tid); // 64 threads/block
        b.mov(r_a, p_a);
        b.iscadd(r_a, r_gid, r_a, 2);
        b.mov(r_o, p_out);
        b.iscadd(r_o, r_gid, r_o, 2);
        b.ld(MemSpace::Global, MemWidth::B32, r_av, r_a, 0);
        b.ld(MemSpace::Global, MemWidth::B32, r_ov, r_o, 0);
        b.mov(r_alpha, p_alpha);
        b.ffma(r_ov, r_av, r_alpha, r_ov);
        b.st(MemSpace::Global, MemWidth::B32, r_ov, r_o, 0);
        b.exit();
        b.finish().unwrap()
    }

    #[test]
    fn saxpy_multi_block() {
        let mut gpu = Gpu::new(Generation::Fermi);
        let n = 256usize;
        let a: Vec<f32> = (0..n).map(|i| i as f32).collect();
        let out: Vec<f32> = (0..n).map(|i| 2.0 * i as f32).collect();
        let a_buf = gpu.memory_mut().alloc_f32(&a).unwrap();
        let out_buf = gpu.memory_mut().alloc_f32(&out).unwrap();
        let stats = gpu
            .launch(
                &saxpy_kernel(),
                LaunchConfig::linear(4, 64),
                &[a_buf, out_buf, 0.5f32.to_bits()],
            )
            .unwrap();
        let result = gpu.memory().read_f32_slice(out_buf, n).unwrap();
        for (i, &v) in result.iter().enumerate() {
            assert_eq!(v, 2.0 * i as f32 + 0.5 * i as f32, "element {i}");
        }
        assert_eq!(stats.mix.count("FFMA"), 4 * 2); // 4 blocks x 2 warps
        assert!(stats.flops == 4 * 64 * 2);
    }

    #[test]
    fn barrier_synchronizes_shared_memory() {
        // Warp 0 writes shared[tid], all warps read shared[tid^32] after a
        // barrier: warp 1 must see warp 0's writes and vice versa.
        let mut b = KernelBuilder::new("barrier", Generation::Fermi);
        let p_out = b.param("out");
        b.shared_bytes(64 * 4);
        let r_tid = Reg::r(0);
        let r_sh = Reg::r(1);
        let r_v = Reg::r(2);
        let r_other = Reg::r(3);
        let r_o = Reg::r(4);
        b.s2r(r_tid, SpecialReg::TidX);
        b.shl(r_sh, r_tid, 2);
        b.st(MemSpace::Shared, MemWidth::B32, r_tid, r_sh, 0);
        b.bar();
        // other = tid ^ 32
        b.push(peakperf_sass::Op::Lop {
            op: peakperf_sass::LogicOp::Xor,
            dst: r_other,
            a: r_tid,
            b: peakperf_sass::Operand::Imm(32),
        });
        b.shl(r_other, r_other, 2);
        b.ld(MemSpace::Shared, MemWidth::B32, r_v, r_other, 0);
        b.mov(r_o, p_out);
        b.iscadd(r_o, r_tid, r_o, 2);
        b.st(MemSpace::Global, MemWidth::B32, r_v, r_o, 0);
        b.exit();
        let kernel = b.finish().unwrap();

        let mut gpu = Gpu::new(Generation::Fermi);
        let out = gpu.memory_mut().alloc_zeroed(64 * 4).unwrap();
        gpu.launch(&kernel, LaunchConfig::linear(1, 64), &[out])
            .unwrap();
        for i in 0..64u32 {
            assert_eq!(gpu.memory().read_u32(out + i * 4).unwrap(), i ^ 32);
        }
    }

    #[test]
    fn loop_kernel_terminates_with_counted_iterations() {
        let mut b = KernelBuilder::new("looper", Generation::Fermi);
        let p_out = b.param("out");
        let r_i = Reg::r(0);
        let r_acc = Reg::r(1);
        let r_o = Reg::r(2);
        b.mov32i(r_i, 10);
        b.mov32i(r_acc, 0);
        let top = b.label_here();
        b.iadd(r_acc, r_acc, Reg::r(0));
        b.iadd(r_i, r_i, -1);
        b.isetp(Pred::p(0), CmpOp::Gt, r_i, 0);
        b.bra_if(Pred::p(0), false, top);
        b.mov(r_o, p_out);
        b.st(MemSpace::Global, MemWidth::B32, r_acc, r_o, 0);
        b.exit();
        let kernel = b.finish().unwrap();
        let mut gpu = Gpu::new(Generation::Fermi);
        let out = gpu.memory_mut().alloc_zeroed(4).unwrap();
        gpu.launch(&kernel, LaunchConfig::linear(1, 1), &[out])
            .unwrap();
        // sum of 10+9+...+1 = 55
        assert_eq!(gpu.memory().read_u32(out).unwrap(), 55);
    }

    #[test]
    fn param_count_mismatch_is_launch_error() {
        let kernel = saxpy_kernel();
        let mut gpu = Gpu::new(Generation::Fermi);
        let e = gpu
            .launch(&kernel, LaunchConfig::linear(1, 64), &[1])
            .unwrap_err();
        assert!(matches!(e, SimError::Launch { .. }));
    }

    #[test]
    fn infinite_loop_hits_step_limit_with_snapshot() {
        let mut b = KernelBuilder::new("spin", Generation::Fermi);
        let top = b.label_here();
        b.bra(top);
        b.exit();
        let kernel = b.finish().unwrap();
        let mut gpu = Gpu::new(Generation::Fermi);
        gpu.set_step_limit(1_000);
        let e = gpu
            .launch(&kernel, LaunchConfig::linear(1, 32), &[])
            .unwrap_err();
        match e {
            SimError::StepLimit { limit, snapshot } => {
                assert_eq!(limit, 1_000);
                let snap = snapshot.expect("step limit carries a snapshot");
                assert_eq!(snap.warps.len(), 1);
                assert_eq!(snap.warps[0].state, "runnable");
                assert_eq!(snap.warps[0].pc, Some(0));
            }
            other => panic!("expected StepLimit, got {other:?}"),
        }
    }

    #[test]
    fn exited_sibling_makes_barrier_deadlock() {
        // Warp 0 (tid < 32) exits before the barrier; warp 1 waits forever.
        let mut b = KernelBuilder::new("deadlock", Generation::Fermi);
        b.s2r(Reg::r(0), SpecialReg::TidX);
        b.isetp(Pred::p(0), CmpOp::Lt, Reg::r(0), 32);
        b.with_pred(Pred::p(0), false).exit();
        b.bar();
        b.exit();
        let kernel = b.finish().unwrap();
        let mut gpu = Gpu::new(Generation::Fermi);
        let e = gpu
            .launch(&kernel, LaunchConfig::linear(1, 64), &[])
            .unwrap_err();
        assert_eq!(
            e,
            SimError::BarrierDeadlock {
                pc: 3,
                waiting: 1,
                exited: 1,
            }
        );
    }
}
