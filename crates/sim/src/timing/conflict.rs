//! Shared-memory bank-conflict and global-memory coalescing analysis.

use std::collections::HashMap;

use peakperf_arch::Generation;
use peakperf_sass::MemWidth;

/// Size of a global-memory transaction segment in bytes (Fermi/Kepler L2
/// line granularity for coalesced accesses).
pub const SEGMENT_BYTES: u32 = 128;

/// Compute the shared-memory bank-conflict serialization factor of a warp
/// access (1 = conflict-free; the LD/ST pipe occupancy scales linearly
/// with it).
///
/// `addrs` are the per-lane base byte addresses (active lanes only); the
/// access moves `width.words()` consecutive 32-bit words per lane.
///
/// Modeled as the hardware does: the warp is processed in *phases*, each
/// servicing up to one full bank-row of data — 128 bytes on Fermi (32
/// banks × 4 bytes) and 256 bytes on Kepler (32 banks × 8 bytes). Wide
/// accesses split the warp into lane subsets (e.g. half-warps for `LDS.64`
/// on Fermi), which is why consecutive `LDS.64` addresses are conflict-free
/// even though lane 0 and lane 16 share a bank: they are serviced in
/// different phases. Within a phase, distinct words mapping to one bank
/// serialize; lanes reading the same word broadcast.
///
/// The returned factor is the per-phase serialization averaged over phases
/// (rounded up), so a conflict-free access of any width yields 1.
pub fn shared_conflict_factor(generation: Generation, width: MemWidth, addrs: &[u32]) -> u32 {
    if addrs.is_empty() {
        return 1;
    }
    let (bank_bytes, row_bytes) = match generation {
        Generation::Gt200 | Generation::Fermi => (4u32, 128u32),
        Generation::Kepler => (8, 256),
    };
    // Lanes per phase so that one phase moves at most one bank row.
    let lanes_per_phase = (row_bytes / width.bytes()).max(1) as usize;
    let mut total_ser = 0u32;
    let mut phases = 0u32;
    for subset in addrs.chunks(lanes_per_phase) {
        let mut banks: HashMap<u32, Vec<u32>> = HashMap::new();
        for &a in subset {
            for w in 0..width.words() {
                let word = (a + w * 4) / bank_bytes;
                let bank = word % 32;
                let words = banks.entry(bank).or_default();
                if !words.contains(&word) {
                    words.push(word);
                }
            }
        }
        total_ser += banks.values().map(|w| w.len() as u32).max().unwrap_or(1);
        phases += 1;
    }
    total_ser.div_ceil(phases.max(1)).max(1)
}

/// Number of [`SEGMENT_BYTES`]-byte global-memory transactions needed to
/// service a warp access: the count of distinct 128-byte segments touched.
pub fn global_transactions(width: MemWidth, addrs: &[u32]) -> u32 {
    let mut segments: Vec<u32> = addrs
        .iter()
        .flat_map(|&a| {
            let first = a / SEGMENT_BYTES;
            let last = (a + width.bytes() - 1) / SEGMENT_BYTES;
            first..=last
        })
        .collect();
    segments.sort_unstable();
    segments.dedup();
    segments.len() as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq_addrs(n: u32, stride: u32) -> Vec<u32> {
        (0..n).map(|i| i * stride).collect()
    }

    #[test]
    fn fermi_sequential_32bit_is_conflict_free() {
        let addrs = seq_addrs(32, 4);
        assert_eq!(
            shared_conflict_factor(Generation::Fermi, MemWidth::B32, &addrs),
            1
        );
    }

    #[test]
    fn fermi_stride_two_words_is_two_way() {
        // Stride 8 bytes: lanes 0 and 16 hit bank 0 with different words in
        // the same phase.
        let addrs = seq_addrs(32, 8);
        assert_eq!(
            shared_conflict_factor(Generation::Fermi, MemWidth::B32, &addrs),
            2
        );
    }

    #[test]
    fn fermi_stride_32_words_is_32_way() {
        let addrs = seq_addrs(32, 128);
        assert_eq!(
            shared_conflict_factor(Generation::Fermi, MemWidth::B32, &addrs),
            32
        );
    }

    #[test]
    fn broadcast_is_free() {
        let addrs = vec![64; 32];
        assert_eq!(
            shared_conflict_factor(Generation::Fermi, MemWidth::B32, &addrs),
            1
        );
        assert_eq!(
            shared_conflict_factor(Generation::Kepler, MemWidth::B64, &addrs),
            1
        );
    }

    #[test]
    fn fermi_sequential_lds64_is_conflict_free() {
        // Consecutive 64-bit accesses are serviced as two half-warp phases,
        // each covering words 0..31 exactly once — no conflict. This is why
        // "using LDS.64 does not increase the data throughput" (4.1): same
        // 128 B/phase, conflict-free.
        let addrs = seq_addrs(32, 8);
        assert_eq!(
            shared_conflict_factor(Generation::Fermi, MemWidth::B64, &addrs),
            1
        );
    }

    #[test]
    fn fermi_sequential_lds128_is_conflict_free_factor() {
        // Quarter-warp phases cover words 0..31 once each; the intrinsic
        // LDS.128 2x penalty is applied by the pipe model, not here.
        let addrs = seq_addrs(32, 16);
        assert_eq!(
            shared_conflict_factor(Generation::Fermi, MemWidth::B128, &addrs),
            1
        );
    }

    #[test]
    fn kepler_sequential_lds64_is_conflict_free() {
        let addrs = seq_addrs(32, 8);
        assert_eq!(
            shared_conflict_factor(Generation::Kepler, MemWidth::B64, &addrs),
            1
        );
    }

    #[test]
    fn kepler_sequential_lds128_is_conflict_free() {
        // Half-warp phases on 64-bit banks: "properly used LDS.128
        // instruction does not introduce penalty" (4.1).
        let addrs = seq_addrs(32, 16);
        assert_eq!(
            shared_conflict_factor(Generation::Kepler, MemWidth::B128, &addrs),
            1
        );
    }

    #[test]
    fn kepler_same_bank_stride_conflicts() {
        // Stride 256 bytes: every lane hits bank 0 with a distinct word.
        let addrs = seq_addrs(32, 256);
        assert_eq!(
            shared_conflict_factor(Generation::Kepler, MemWidth::B64, &addrs),
            32
        );
    }

    #[test]
    fn coalesced_transaction_counts() {
        // 32 consecutive floats = 128 bytes = 1 transaction.
        assert_eq!(global_transactions(MemWidth::B32, &seq_addrs(32, 4)), 1);
        // Stride-128 floats: one transaction per lane.
        assert_eq!(global_transactions(MemWidth::B32, &seq_addrs(32, 128)), 32);
        // 32 consecutive 128-bit accesses = 512 bytes = 4 transactions.
        assert_eq!(global_transactions(MemWidth::B128, &seq_addrs(32, 16)), 4);
        // Access straddling a segment boundary counts both.
        assert_eq!(global_transactions(MemWidth::B128, &[120]), 2);
        assert_eq!(global_transactions(MemWidth::B32, &[]), 0);
    }
}
