//! Cycle-level timing simulation of one SM, with whole-GPU extrapolation.
//!
//! The timing engine executes the kernel functionally (sharing the
//! functional core in [`crate::exec`]) while modeling, per shader cycle:
//!
//! * warp schedulers (Fermi: 2 schedulers at core clock → one warp
//!   instruction per shader cycle per SM; Kepler: 4 schedulers with dual
//!   dispatch, limited by an issue-token bucket calibrated to the measured
//!   132 thread-insts/cycle);
//! * Kepler register-bank conflicts on instruction operands (Section 3.3),
//!   which multiply an instruction's issue-token cost;
//! * a scoreboard with per-class result latencies;
//! * LD/ST pipe occupancy with shared-memory bank-conflict serialization;
//! * a global-memory interface with per-SM bandwidth and fixed latency;
//! * `BAR.SYNC` barriers;
//! * the Kepler control notation: stall fields gate back-to-back issue, and
//!   uncovered ALU read-after-write hazards pay a replay penalty
//!   (Section 3.2: without proper notation, "the performance is very
//!   poor").

pub mod cache;
mod calib;
mod conflict;
pub mod profile;
mod sm;
pub mod trace;

pub use calib::Calibration;
pub use conflict::{global_transactions, shared_conflict_factor};
pub use profile::{Profile, ProfileBuilder};
pub use sm::{StallKind, TimingReport, TimingSim};
pub use trace::{
    chrome_trace, ChromeTraceWriter, NoopSink, TraceBuffer, TraceEvent, TraceEventKind, TraceSink,
};

use peakperf_arch::GpuConfig;
use peakperf_sass::Kernel;

use crate::{LaunchConfig, SimError};

/// Whole-GPU timing estimate produced by [`time_kernel`].
#[derive(Debug, Clone)]
pub struct GpuTiming {
    /// The single-SM report for one resident wave.
    pub sm: TimingReport,
    /// Blocks resident per SM during the simulated wave.
    pub blocks_per_sm: u32,
    /// Number of waves needed to cover the grid.
    pub waves: u64,
    /// Estimated total execution cycles (shader clock).
    pub total_cycles: u64,
    /// Estimated kernel time in milliseconds.
    pub time_ms: f64,
    /// Sustained GFLOPS over the whole grid.
    pub gflops: f64,
}

/// Time a kernel launch on `config`'s GPU.
///
/// Simulates one resident wave of blocks on a single SM cycle by cycle and
/// extrapolates: the grid is split into `waves` sequential waves of
/// `blocks_per_sm * num_sms` blocks; total time is `waves` times the
/// simulated wave (the standard steady-state approximation for regular
/// kernels such as GEMM).
///
/// `flops_override`: when the caller knows the true useful FLOP count of
/// the whole launch (e.g. `2*M*N*K` for GEMM), pass it to get GFLOPS of
/// useful work rather than of executed FFMAs.
///
/// # Errors
///
/// Propagates validation/launch/memory errors from the simulation.
pub fn time_kernel(
    gpu: &GpuConfig,
    kernel: &Kernel,
    config: LaunchConfig,
    params: &[u32],
    memory: &mut crate::GlobalMemory,
    flops_override: Option<u64>,
) -> Result<GpuTiming, SimError> {
    let threads = config.threads_per_block();
    let occ = gpu
        .occupancy()
        .occupancy(kernel.num_regs, kernel.shared_bytes, threads)
        .ok_or_else(|| SimError::Launch {
            message: format!(
                "kernel `{}` ({} regs, {} B shared, {} threads) does not fit on {}",
                kernel.name, kernel.num_regs, kernel.shared_bytes, threads, gpu.name
            ),
        })?;
    let blocks_per_sm = occ.blocks_per_sm;
    let total_blocks = config.total_blocks();
    let wave_capacity = u64::from(blocks_per_sm) * u64::from(gpu.num_sms);
    let waves = total_blocks.div_ceil(wave_capacity).max(1);

    let resident = (total_blocks.min(u64::from(blocks_per_sm))) as u32;
    let mut sim = TimingSim::new(gpu, kernel, config, params, resident)?;
    let report = sim.run_cached(memory)?;

    // Full waves run back to back; the trailing partial wave still pays a
    // latency floor (its blocks take roughly a full wave's critical path on
    // their SMs even though most SMs idle) — this produces the mild
    // sawtooth over matrix size seen in Figures 6-7 without charging a
    // 1/32-full wave the cost of a full one.
    let full_waves = total_blocks / wave_capacity;
    let rem = total_blocks % wave_capacity;
    let tail = if rem == 0 {
        0.0
    } else {
        (rem as f64 / wave_capacity as f64).max(0.7)
    };
    let total_cycles = (report.cycles as f64 * (full_waves as f64 + tail)) as u64;
    let total_cycles = total_cycles.max(report.cycles);
    let time_ms = total_cycles as f64 / (gpu.shader_clock_mhz * 1e3);
    // Useful flops over the whole grid: either supplied by the caller
    // (e.g. 2*M*N*K for GEMM) or the simulated per-block flops scaled up.
    let total_flops = flops_override
        .map(|f| f as f64)
        .unwrap_or_else(|| report.flops as f64 * total_blocks as f64 / f64::from(resident));
    let gflops = total_flops / (time_ms * 1e6);
    Ok(GpuTiming {
        sm: report,
        blocks_per_sm,
        waves,
        total_cycles,
        time_ms,
        gflops,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use peakperf_sass::{KernelBuilder, Reg};

    fn tiny_kernel(gen: peakperf_arch::Generation) -> Kernel {
        let mut b = KernelBuilder::new("tiny", gen);
        for k in 0..16 {
            b.ffma(
                Reg::r(8 + (k % 4)),
                Reg::r(1),
                peakperf_sass::Operand::reg(4),
                Reg::r(8 + (k % 4)),
            );
        }
        b.exit();
        b.finish().unwrap()
    }

    #[test]
    fn oversubscribed_kernel_is_rejected() {
        let gpu = peakperf_arch::GpuConfig::gtx580();
        let mut kernel = tiny_kernel(gpu.generation);
        kernel.shared_bytes = 49 * 1024; // more than the SM has
        let mut mem = crate::GlobalMemory::new();
        let err = time_kernel(
            &gpu,
            &kernel,
            LaunchConfig::linear(1, 64),
            &[],
            &mut mem,
            None,
        )
        .unwrap_err();
        assert!(matches!(err, SimError::Launch { .. }));
    }

    #[test]
    fn waves_scale_total_cycles() {
        let gpu = peakperf_arch::GpuConfig::gtx580();
        let kernel = tiny_kernel(gpu.generation);
        let mut mem = crate::GlobalMemory::new();
        // Hardware cap is 8 blocks/SM on Fermi -> wave capacity 128 blocks.
        let one = time_kernel(
            &gpu,
            &kernel,
            LaunchConfig::linear(128, 64),
            &[],
            &mut mem,
            None,
        )
        .unwrap();
        assert_eq!(one.waves, 1);
        let two = time_kernel(
            &gpu,
            &kernel,
            LaunchConfig::linear(256, 64),
            &[],
            &mut mem,
            None,
        )
        .unwrap();
        assert_eq!(two.waves, 2);
        assert_eq!(two.total_cycles, 2 * one.total_cycles);
        // Equal per-block work -> equal GFLOPS at full waves.
        assert!((two.gflops - one.gflops).abs() / one.gflops < 1e-9);
    }

    #[test]
    fn partial_tail_wave_pays_a_latency_floor() {
        let gpu = peakperf_arch::GpuConfig::gtx580();
        let kernel = tiny_kernel(gpu.generation);
        let mut mem = crate::GlobalMemory::new();
        let full = time_kernel(
            &gpu,
            &kernel,
            LaunchConfig::linear(128, 64),
            &[],
            &mut mem,
            None,
        )
        .unwrap();
        // 129 blocks: one extra block spills into a second, nearly empty
        // wave, which still costs at least 70% of a wave.
        let spill = time_kernel(
            &gpu,
            &kernel,
            LaunchConfig::linear(129, 64),
            &[],
            &mut mem,
            None,
        )
        .unwrap();
        assert!(spill.total_cycles > full.total_cycles);
        assert!(spill.gflops < full.gflops);
        let ratio = spill.total_cycles as f64 / full.total_cycles as f64;
        assert!((1.5..=1.8).contains(&ratio), "tail ratio {ratio}");
    }

    #[test]
    fn flops_override_sets_the_rate_basis() {
        let gpu = peakperf_arch::GpuConfig::gtx580();
        let kernel = tiny_kernel(gpu.generation);
        let mut mem = crate::GlobalMemory::new();
        let auto = time_kernel(
            &gpu,
            &kernel,
            LaunchConfig::linear(128, 64),
            &[],
            &mut mem,
            None,
        )
        .unwrap();
        let halved = time_kernel(
            &gpu,
            &kernel,
            LaunchConfig::linear(128, 64),
            &[],
            &mut mem,
            Some((auto.sm.flops * 128 / u64::from(auto.blocks_per_sm)) / 2),
        )
        .unwrap();
        assert!((halved.gflops - auto.gflops / 2.0).abs() / auto.gflops < 0.01);
    }
}
