//! Streaming aggregation of trace events into a profile.
//!
//! [`ProfileBuilder`] is a [`TraceSink`] that aggregates in-flight, so a
//! run of any length can be profiled with O(kernel size + warps) memory —
//! unlike [`super::trace::TraceBuffer`], nothing is ever dropped. The
//! finished [`Profile`] holds per-SASS-instruction issue histograms, a
//! per-warp and overall stall-reason breakdown, per-scheduler issue
//! statistics, and an occupancy timeline with adaptive bucketing.

use std::fmt::Write as _;

use peakperf_sass::Kernel;

use crate::timing::sm::{StallKind, TimingReport};
use crate::timing::trace::{json_string, TraceEvent, TraceEventKind, TraceSink, NO_PC};

/// Timeline buckets are merged pairwise once the run outgrows this many.
const MAX_TIMELINE_BUCKETS: usize = 128;

/// Per-instruction issue statistics.
#[derive(Debug, Clone, Default)]
pub struct PcStats {
    /// Instruction index in the kernel.
    pub pc: u32,
    /// Disassembly text (filled in by [`ProfileBuilder::finish`]).
    pub text: String,
    /// Warp instructions issued from this pc.
    pub issues: u64,
    /// Of those, how many went through the dual-dispatch slot.
    pub dual: u64,
    /// Sum of active lanes over all issues (for the average).
    pub lanes: u64,
    /// Stall warp-cycles attributed to this pc, by kind.
    pub stalls: [u64; StallKind::COUNT],
}

impl PcStats {
    /// Average active lanes per issue.
    pub fn avg_lanes(&self) -> f64 {
        self.lanes as f64 / self.issues.max(1) as f64
    }

    /// Total stall warp-cycles charged to this pc.
    pub fn stalled(&self) -> u64 {
        self.stalls.iter().sum()
    }
}

/// Per-warp statistics.
#[derive(Debug, Clone, Default)]
pub struct WarpStats {
    /// Warp slot on the SM.
    pub warp: u16,
    /// Scheduler that owns the slot.
    pub scheduler: u8,
    /// Warp instructions issued.
    pub issues: u64,
    /// Cycle the warp exited, if it did.
    pub exit_cycle: Option<u64>,
    /// Barrier releases observed.
    pub barrier_releases: u64,
    /// Stall warp-cycles by kind.
    pub stalls: [u64; StallKind::COUNT],
}

impl WarpStats {
    /// Total stall warp-cycles for this warp.
    pub fn stalled(&self) -> u64 {
        self.stalls.iter().sum()
    }
}

/// Per-scheduler statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct SchedStats {
    /// Scheduler index.
    pub scheduler: u8,
    /// Warp instructions issued.
    pub issues: u64,
    /// Of those, dual-dispatch issues.
    pub dual: u64,
    /// Stall warp-cycles observed by this scheduler.
    pub stalls: u64,
    /// Cycles on which this scheduler issued at least one instruction.
    pub active_cycles: u64,
}

/// Occupancy timeline: issue/stall counts per fixed-width cycle bucket.
///
/// The bucket width doubles whenever the run outgrows
/// [`MAX_TIMELINE_BUCKETS`], so the timeline is always a bounded,
/// power-of-two-granular view regardless of kernel length.
#[derive(Debug, Clone)]
pub struct Timeline {
    shift: u32,
    issued: Vec<u64>,
    stalled: Vec<u64>,
}

impl Timeline {
    fn new() -> Timeline {
        Timeline {
            shift: 0,
            issued: Vec::new(),
            stalled: Vec::new(),
        }
    }

    /// Width of each bucket in shader cycles.
    pub fn bucket_cycles(&self) -> u64 {
        1 << self.shift
    }

    /// Warp instructions issued per bucket.
    pub fn issued(&self) -> &[u64] {
        &self.issued
    }

    /// Stall warp-cycles per bucket.
    pub fn stalled(&self) -> &[u64] {
        &self.stalled
    }

    fn bucket(&mut self, cycle: u64) -> usize {
        let mut idx = (cycle >> self.shift) as usize;
        while idx >= MAX_TIMELINE_BUCKETS {
            Timeline::halve(&mut self.issued);
            Timeline::halve(&mut self.stalled);
            self.shift += 1;
            idx = (cycle >> self.shift) as usize;
        }
        let need = idx + 1;
        if self.issued.len() < need {
            self.issued.resize(need, 0);
            self.stalled.resize(need, 0);
        }
        idx
    }

    fn halve(v: &mut Vec<u64>) {
        let merged: Vec<u64> = v.chunks(2).map(|c| c.iter().sum()).collect();
        *v = merged;
    }
}

/// A [`TraceSink`] that aggregates events into a [`Profile`] in-flight.
#[derive(Debug)]
pub struct ProfileBuilder {
    per_pc: Vec<PcStats>,
    per_warp: Vec<WarpStats>,
    per_sched: Vec<SchedStats>,
    stall_totals: [u64; StallKind::COUNT],
    timeline: Timeline,
    issues: u64,
    dual_issues: u64,
    last_issue_cycle: Vec<u64>,
    events: u64,
}

impl Default for ProfileBuilder {
    fn default() -> ProfileBuilder {
        ProfileBuilder::new()
    }
}

impl ProfileBuilder {
    /// An empty builder.
    pub fn new() -> ProfileBuilder {
        ProfileBuilder {
            per_pc: Vec::new(),
            per_warp: Vec::new(),
            per_sched: Vec::new(),
            stall_totals: [0; StallKind::COUNT],
            timeline: Timeline::new(),
            issues: 0,
            dual_issues: 0,
            last_issue_cycle: Vec::new(),
            events: 0,
        }
    }

    fn pc_mut(&mut self, pc: u32) -> &mut PcStats {
        let idx = pc as usize;
        if self.per_pc.len() <= idx {
            self.per_pc.resize_with(idx + 1, PcStats::default);
        }
        let slot = &mut self.per_pc[idx];
        slot.pc = pc;
        slot
    }

    fn warp_mut(&mut self, warp: u16, scheduler: u8) -> &mut WarpStats {
        let idx = warp as usize;
        if self.per_warp.len() <= idx {
            self.per_warp.resize_with(idx + 1, WarpStats::default);
        }
        let slot = &mut self.per_warp[idx];
        slot.warp = warp;
        slot.scheduler = scheduler;
        slot
    }

    fn sched_mut(&mut self, scheduler: u8) -> &mut SchedStats {
        let idx = scheduler as usize;
        if self.per_sched.len() <= idx {
            self.per_sched.resize_with(idx + 1, SchedStats::default);
        }
        let slot = &mut self.per_sched[idx];
        slot.scheduler = scheduler;
        slot
    }

    /// Finish aggregation, resolving instruction text against `kernel`
    /// and cross-checking against the run's [`TimingReport`].
    pub fn finish(mut self, kernel: &Kernel, report: &TimingReport) -> Profile {
        for stats in &mut self.per_pc {
            stats.text = kernel
                .code
                .get(stats.pc as usize)
                .map(|inst| inst.to_string())
                .unwrap_or_default();
        }
        // Drop trailing all-zero pc slots (pcs never issued nor blamed).
        while self
            .per_pc
            .last()
            .is_some_and(|p| p.issues == 0 && p.stalled() == 0)
        {
            self.per_pc.pop();
        }
        Profile {
            kernel: kernel.name.clone(),
            cycles: report.cycles,
            warp_instructions: report.warp_instructions,
            thread_instructions: report.thread_instructions,
            issues: self.issues,
            dual_issues: self.dual_issues,
            per_pc: self.per_pc,
            per_warp: self.per_warp,
            per_sched: self.per_sched,
            stall_totals: self.stall_totals,
            timeline: self.timeline,
            events: self.events,
        }
    }
}

impl TraceSink for ProfileBuilder {
    fn record(&mut self, event: TraceEvent) {
        self.events += 1;
        match event.kind {
            TraceEventKind::Issue { lanes, dual } => {
                self.issues += 1;
                if dual {
                    self.dual_issues += 1;
                }
                if event.pc != NO_PC {
                    let pc = self.pc_mut(event.pc);
                    pc.issues += 1;
                    pc.lanes += u64::from(lanes);
                    if dual {
                        pc.dual += 1;
                    }
                }
                self.warp_mut(event.warp, event.scheduler).issues += 1;
                let sidx = event.scheduler as usize;
                if self.last_issue_cycle.len() <= sidx {
                    self.last_issue_cycle.resize(sidx + 1, u64::MAX);
                }
                let sched = self.sched_mut(event.scheduler);
                sched.issues += 1;
                if dual {
                    sched.dual += 1;
                }
                // Count a cycle active once even under dual dispatch.
                if self.last_issue_cycle[sidx] != event.cycle {
                    self.last_issue_cycle[sidx] = event.cycle;
                    self.sched_mut(event.scheduler).active_cycles += 1;
                }
                let idx = self.timeline.bucket(event.cycle);
                self.timeline.issued[idx] += 1;
            }
            TraceEventKind::Stall(kind) => {
                self.stall_totals[kind.index()] += 1;
                if event.pc != NO_PC {
                    self.pc_mut(event.pc).stalls[kind.index()] += 1;
                }
                self.warp_mut(event.warp, event.scheduler).stalls[kind.index()] += 1;
                self.sched_mut(event.scheduler).stalls += 1;
                let idx = self.timeline.bucket(event.cycle);
                self.timeline.stalled[idx] += 1;
            }
            TraceEventKind::BarrierRelease => {
                self.warp_mut(event.warp, event.scheduler).barrier_releases += 1;
            }
            TraceEventKind::WarpExit => {
                self.warp_mut(event.warp, event.scheduler).exit_cycle = Some(event.cycle);
            }
        }
    }
}

/// A finished profile of one timing run.
#[derive(Debug, Clone)]
pub struct Profile {
    /// Kernel name.
    pub kernel: String,
    /// Total shader cycles of the run.
    pub cycles: u64,
    /// Warp instructions issued (from the [`TimingReport`]).
    pub warp_instructions: u64,
    /// Thread instructions issued.
    pub thread_instructions: u64,
    /// Issue events observed by the trace (should equal
    /// `warp_instructions`; the profile keeps both for cross-checking).
    pub issues: u64,
    /// Dual-dispatch issues among them.
    pub dual_issues: u64,
    /// Per-instruction issue histogram, indexed by pc.
    pub per_pc: Vec<PcStats>,
    /// Per-warp statistics, indexed by warp slot.
    pub per_warp: Vec<WarpStats>,
    /// Per-scheduler statistics.
    pub per_sched: Vec<SchedStats>,
    /// Stall warp-cycles by kind, over the whole run.
    pub stall_totals: [u64; StallKind::COUNT],
    /// Occupancy timeline.
    pub timeline: Timeline,
    /// Trace events observed in total.
    pub events: u64,
}

impl Profile {
    /// Total stall warp-cycles across all kinds.
    pub fn stalled_cycles(&self) -> u64 {
        self.stall_totals.iter().sum()
    }

    /// Warp instructions per cycle.
    pub fn ipc(&self) -> f64 {
        self.issues as f64 / self.cycles.max(1) as f64
    }

    /// Render the profile as a human-readable report.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "profile: {}  cycles={}  warp_insts={}  ipc={:.3}  dual={}",
            self.kernel,
            self.cycles,
            self.warp_instructions,
            self.ipc(),
            self.dual_issues
        );
        let stalled = self.stalled_cycles();
        let _ = writeln!(out, "stall breakdown (warp-cycles, total {stalled}):");
        for kind in StallKind::ALL {
            let n = self.stall_totals[kind.index()];
            if n == 0 {
                continue;
            }
            let _ = writeln!(
                out,
                "  {:<14} {:>12}  {:>6.2}%",
                kind.as_str(),
                n,
                100.0 * n as f64 / stalled.max(1) as f64
            );
        }
        let _ = writeln!(out, "per-instruction issue histogram:");
        let _ = writeln!(
            out,
            "  {:>4} {:>10} {:>8} {:>6}  {:<14} instruction",
            "pc", "issues", "stalled", "lanes", "top-stall"
        );
        for p in &self.per_pc {
            if p.issues == 0 && p.stalled() == 0 {
                continue;
            }
            let top = StallKind::ALL
                .into_iter()
                .max_by_key(|k| p.stalls[k.index()])
                .filter(|k| p.stalls[k.index()] > 0)
                .map(|k| k.as_str())
                .unwrap_or("-");
            let _ = writeln!(
                out,
                "  {:>4} {:>10} {:>8} {:>6.1}  {:<14} {}",
                p.pc,
                p.issues,
                p.stalled(),
                p.avg_lanes(),
                top,
                p.text
            );
        }
        let _ = writeln!(out, "per-scheduler:");
        for s in &self.per_sched {
            let _ = writeln!(
                out,
                "  sched {}  issues={:<10} dual={:<8} stalls={:<10} active={:.1}%",
                s.scheduler,
                s.issues,
                s.dual,
                s.stalls,
                100.0 * s.active_cycles as f64 / self.cycles.max(1) as f64
            );
        }
        let _ = writeln!(
            out,
            "occupancy timeline (bucket = {} cycles, issued warp-insts per bucket):",
            self.timeline.bucket_cycles()
        );
        out.push_str("  ");
        let peak = self.timeline.issued().iter().copied().max().unwrap_or(0);
        const RAMP: &[u8] = b" .:-=+*#%@";
        for &n in self.timeline.issued() {
            let level = if peak == 0 {
                0
            } else {
                ((n * (RAMP.len() as u64 - 1)).div_ceil(peak)) as usize
            };
            out.push(RAMP[level.min(RAMP.len() - 1)] as char);
        }
        out.push('\n');
        out
    }

    /// Render the profile as a JSON object (schema
    /// `peakperf-profile-v1`, validated by `scripts/check_trace_schema.py`).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"kernel\": {},", json_string(&self.kernel));
        let _ = writeln!(out, "  \"cycles\": {},", self.cycles);
        let _ = writeln!(out, "  \"warp_instructions\": {},", self.warp_instructions);
        let _ = writeln!(
            out,
            "  \"thread_instructions\": {},",
            self.thread_instructions
        );
        let _ = writeln!(out, "  \"issues\": {},", self.issues);
        let _ = writeln!(out, "  \"dual_issues\": {},", self.dual_issues);
        let _ = writeln!(out, "  \"stalled_cycles\": {},", self.stalled_cycles());
        out.push_str("  \"stall_totals\": {");
        for (i, kind) in StallKind::ALL.into_iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(
                out,
                "\"{}\": {}",
                kind.as_str(),
                self.stall_totals[kind.index()]
            );
        }
        out.push_str("},\n");
        out.push_str("  \"per_pc\": [\n");
        let mut first = true;
        for p in &self.per_pc {
            if p.issues == 0 && p.stalled() == 0 {
                continue;
            }
            if !first {
                out.push_str(",\n");
            }
            first = false;
            let _ = write!(
                out,
                "    {{\"pc\": {}, \"text\": {}, \"issues\": {}, \"dual\": {}, \
                 \"avg_lanes\": {:.2}, \"stalled\": {}}}",
                p.pc,
                json_string(&p.text),
                p.issues,
                p.dual,
                p.avg_lanes(),
                p.stalled()
            );
        }
        out.push_str("\n  ],\n");
        out.push_str("  \"per_warp\": [\n");
        for (i, w) in self.per_warp.iter().enumerate() {
            if i > 0 {
                out.push_str(",\n");
            }
            let _ = write!(
                out,
                "    {{\"warp\": {}, \"scheduler\": {}, \"issues\": {}, \"stalled\": {}, \
                 \"barrier_releases\": {}, \"exit_cycle\": {}}}",
                w.warp,
                w.scheduler,
                w.issues,
                w.stalled(),
                w.barrier_releases,
                w.exit_cycle
                    .map(|c| c.to_string())
                    .unwrap_or_else(|| "null".to_owned())
            );
        }
        out.push_str("\n  ],\n");
        out.push_str("  \"per_scheduler\": [\n");
        for (i, s) in self.per_sched.iter().enumerate() {
            if i > 0 {
                out.push_str(",\n");
            }
            let _ = write!(
                out,
                "    {{\"scheduler\": {}, \"issues\": {}, \"dual\": {}, \"stalls\": {}, \
                 \"active_cycles\": {}}}",
                s.scheduler, s.issues, s.dual, s.stalls, s.active_cycles
            );
        }
        out.push_str("\n  ],\n");
        let _ = writeln!(
            out,
            "  \"timeline\": {{\"bucket_cycles\": {}, \"issued\": {:?}, \"stalled\": {:?}}}",
            self.timeline.bucket_cycles(),
            self.timeline.issued(),
            self.timeline.stalled()
        );
        out.push('}');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(cycle: u64, sched: u8, warp: u16, pc: u32, kind: TraceEventKind) -> TraceEvent {
        TraceEvent {
            cycle,
            scheduler: sched,
            warp,
            pc,
            kind,
        }
    }

    #[test]
    fn aggregates_issues_and_stalls() {
        let mut b = ProfileBuilder::new();
        b.record(ev(
            0,
            0,
            0,
            0,
            TraceEventKind::Issue {
                lanes: 32,
                dual: false,
            },
        ));
        b.record(ev(
            0,
            0,
            0,
            1,
            TraceEventKind::Issue {
                lanes: 32,
                dual: true,
            },
        ));
        b.record(ev(1, 1, 1, 0, TraceEventKind::Stall(StallKind::Scoreboard)));
        b.record(ev(1, 1, 1, 0, TraceEventKind::Stall(StallKind::Scoreboard)));
        b.record(ev(
            2,
            1,
            1,
            NO_PC,
            TraceEventKind::Stall(StallKind::Barrier),
        ));
        b.record(ev(3, 1, 1, 5, TraceEventKind::WarpExit));
        assert_eq!(b.issues, 2);
        assert_eq!(b.dual_issues, 1);
        assert_eq!(b.stall_totals[StallKind::Scoreboard.index()], 2);
        assert_eq!(b.stall_totals[StallKind::Barrier.index()], 1);
        assert_eq!(b.per_warp[1].stalled(), 3);
        assert_eq!(b.per_warp[1].exit_cycle, Some(3));
        assert_eq!(b.per_sched[0].issues, 2);
        assert_eq!(b.per_sched[0].active_cycles, 1);
        assert_eq!(b.per_sched[1].stalls, 3);
        // NO_PC stalls count toward totals but are not blamed on a pc.
        let pc_stalled: u64 = b.per_pc.iter().map(PcStats::stalled).sum();
        assert_eq!(pc_stalled, 2);
    }

    #[test]
    fn timeline_buckets_merge_past_cap() {
        let mut t = Timeline::new();
        for c in 0..1000u64 {
            let idx = t.bucket(c);
            t.issued[idx] += 1;
        }
        assert!(t.issued().len() <= MAX_TIMELINE_BUCKETS);
        assert!(t.bucket_cycles() >= 8);
        assert_eq!(t.issued().iter().sum::<u64>(), 1000);
    }

    #[test]
    fn json_has_balanced_braces_and_sums() {
        let mut b = ProfileBuilder::new();
        for c in 0..40u64 {
            b.record(ev(
                c,
                (c % 2) as u8,
                (c % 4) as u16,
                (c % 8) as u32,
                if c % 3 == 0 {
                    TraceEventKind::Stall(StallKind::Pipe)
                } else {
                    TraceEventKind::Issue {
                        lanes: 32,
                        dual: false,
                    }
                },
            ));
        }
        let kernel = Kernel::new("k");
        let report = TimingReport {
            cycles: 40,
            warp_instructions: b.issues,
            thread_instructions: b.issues * 32,
            flops: 0,
            mix: Default::default(),
            stalls: Default::default(),
            lds_conflict_cycles: 0,
            global_transactions: 0,
            global_bytes: 0,
            hazard_replays: 0,
        };
        let profile = b.finish(&kernel, &report);
        let json = profile.to_json();
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert!(json.contains("\"stall_totals\""));
        let per_warp: u64 = profile.per_warp.iter().map(WarpStats::stalled).sum();
        assert_eq!(per_warp, profile.stalled_cycles());
        let text = profile.render_text();
        assert!(text.contains("stall breakdown"));
        assert!(text.contains("per-scheduler"));
    }
}
