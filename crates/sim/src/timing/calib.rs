//! Calibration constants of the timing model.
//!
//! Every number here is either taken directly from the paper's published
//! measurements (Tables 1-2, Section 4.1, Figures 2 and 4) or tuned so that
//! the microbenchmarks of `peakperf-kernels` reproduce those measurements
//! on the simulator. `DESIGN.md` (Section 5) documents the mapping.

use peakperf_arch::Generation;
use peakperf_sass::{MemWidth, Op, OpClass};

/// Issue-token arithmetic scale: on Kepler the bucket gains
/// [`Calibration::tokens_per_cycle`] tokens per cycle and a conflict-free
/// single-issue instruction costs [`TOKEN_UNIT`], giving the measured
/// 33/8 warp instructions per cycle (= 132 thread instructions).
pub const TOKEN_UNIT: u64 = 8;

/// Per-generation microarchitectural constants.
#[derive(Debug, Clone, PartialEq)]
pub struct Calibration {
    /// Target generation.
    pub generation: Generation,
    /// Warp schedulers per SM.
    pub schedulers: u32,
    /// Maximum instructions issued per scheduler per cycle (dual dispatch).
    pub dispatch_per_scheduler: u32,
    /// On hot-clock generations (GT200/Fermi) each scheduler runs at the
    /// core clock and may only issue on alternate shader cycles.
    pub scheduler_half_rate: bool,
    /// Kepler issue-token refill per cycle (`None` disables the bucket).
    pub tokens_per_cycle: Option<u64>,
    /// Result latency of SP-pipe ALU instructions (FFMA/FADD/IADD/...).
    pub alu_latency: u32,
    /// Result latency of the integer-multiply path.
    pub imul_latency: u32,
    /// Extra issue cost multiplier of the integer-multiply path
    /// (Kepler IMUL/IMAD run at 33/cycle = 4x the FFMA token cost).
    pub imul_token_factor: u64,
    /// Shared-memory load-to-use latency.
    pub lds_latency: u32,
    /// Global-memory latency (from transaction service start to data).
    pub global_latency: u32,
    /// Cycles per 32-bit shared-memory *phase* on the LD/ST pipe
    /// (Fermi: 2 → LDS at 16 thread-insts/cycle; Kepler uses 64-bit banks).
    pub lds_phase_cycles: u32,
    /// Global-memory bandwidth share of one SM, bytes per shader cycle.
    pub mem_bytes_per_cycle_sm: f64,
    /// Barrier release overhead in cycles.
    pub barrier_latency: u32,
    /// Replay penalty (cycles) when a Kepler ALU read-after-write hazard is
    /// not covered by the producer's control-notation stall field.
    pub hazard_penalty: u32,
    /// SP-pipe warp-instruction capacity per cycle (192 SPs / 32 = 6 on
    /// Kepler; on Fermi the issue rate already limits the SP pipe).
    pub sp_warps_per_cycle: u32,
}

impl Calibration {
    /// The calibration for a generation, using the paper's card presets
    /// (GTX280 / GTX580 / GTX680).
    pub fn for_generation(generation: Generation) -> Calibration {
        let config = peakperf_arch::GpuConfig::preset(generation);
        let mem_bpc_sm = config.mem_bytes_per_cycle_per_sm();
        match generation {
            Generation::Gt200 => Calibration {
                generation,
                schedulers: 1,
                dispatch_per_scheduler: 1,
                scheduler_half_rate: false,
                tokens_per_cycle: None,
                alu_latency: 24,
                imul_latency: 32,
                imul_token_factor: 4,
                lds_latency: 36,
                global_latency: 500,
                lds_phase_cycles: 4,
                mem_bytes_per_cycle_sm: mem_bpc_sm,
                barrier_latency: 12,
                hazard_penalty: 0,
                sp_warps_per_cycle: 1,
            },
            Generation::Fermi => Calibration {
                generation,
                schedulers: 2,
                dispatch_per_scheduler: 1,
                scheduler_half_rate: true,
                tokens_per_cycle: None,
                alu_latency: 18,
                imul_latency: 24,
                imul_token_factor: 2,
                lds_latency: 30,
                global_latency: 450,
                lds_phase_cycles: 2,
                mem_bytes_per_cycle_sm: mem_bpc_sm,
                barrier_latency: 10,
                hazard_penalty: 0,
                sp_warps_per_cycle: 1,
            },
            Generation::Kepler => Calibration {
                generation,
                schedulers: 4,
                dispatch_per_scheduler: 2,
                scheduler_half_rate: false,
                tokens_per_cycle: Some(33),
                alu_latency: 9,
                imul_latency: 18,
                imul_token_factor: 4,
                lds_latency: 24,
                global_latency: 350,
                lds_phase_cycles: 1,
                mem_bytes_per_cycle_sm: mem_bpc_sm,
                barrier_latency: 6,
                hazard_penalty: 10,
                sp_warps_per_cycle: 6,
            },
        }
    }

    /// Issue-token cost of an instruction, given the register-bank conflict
    /// degree (`ways` = the maximum number of *distinct* source registers
    /// sharing one bank; 1 when conflict-free) and whether the dual-issue
    /// control hint is set.
    ///
    /// Reproduces Table 2:
    /// * conflict-free FFMA/FADD/IADD: 1 unit → 132/cycle;
    /// * 2-way conflict: ×2 → 66; 3-way: ×3 → 44;
    /// * IMUL/IMAD: ×4 → 33 (3-way conflicted IMAD: ×5 → 26.5);
    /// * operand-reuse with dual-issue arranged: ×0.75 → ~176
    ///   (the "carefully designed code structures" of Section 3.3).
    pub fn token_cost(&self, op: &Op, ways: u32, dual_hint: bool, distinct_srcs: usize) -> u64 {
        let base = match op.class() {
            OpClass::IntMul => self.imul_token_factor * TOKEN_UNIT,
            _ => TOKEN_UNIT,
        };
        let conflict = match op.class() {
            // The multiply path's 4x cost already covers 2-way operand
            // fetch; only a 3-way conflict adds a unit (Table 2: 26.5).
            OpClass::IntMul => {
                if ways >= 3 {
                    base + TOKEN_UNIT
                } else {
                    base
                }
            }
            _ => base * u64::from(ways.max(1)),
        };
        if dual_hint && distinct_srcs <= 2 && ways <= 1 {
            // Reuse fast path: 6 tokens → 33/6*8 = 5.5 warps = 176/cycle.
            conflict.min(6)
        } else {
            conflict
        }
    }

    /// LD/ST pipe occupancy (cycles) of a shared-memory access with the
    /// given width and bank-conflict serialization factor (from
    /// [`super::shared_conflict_factor`]).
    pub fn lds_pipe_cycles(&self, width: MemWidth, serialization: u32) -> u32 {
        match self.generation {
            // Fermi: 2 cycles per 32-bit phase; LDS.128 phases have an
            // intrinsic minimum serialization of 2 (Section 4.1).
            Generation::Gt200 | Generation::Fermi => {
                let phases = width.words();
                let ser = if width == MemWidth::B128 {
                    serialization.max(2)
                } else {
                    serialization
                };
                self.lds_phase_cycles * phases * ser
            }
            // Kepler: 64-bit banks; LDS and LDS.64 both take 1 cycle
            // conflict-free, LDS.128 takes 2.
            Generation::Kepler => {
                let phases = width.words().div_ceil(2);
                self.lds_phase_cycles * phases * serialization
            }
        }
    }

    /// Result latency by instruction class.
    pub fn latency(&self, op: &Op) -> u32 {
        match op.class() {
            OpClass::Fp32 | OpClass::Int => self.alu_latency,
            OpClass::IntMul => self.imul_latency,
            OpClass::Mov => self.alu_latency,
            OpClass::Mem(peakperf_sass::MemSpace::Shared) => self.lds_latency,
            OpClass::Mem(peakperf_sass::MemSpace::Local) => self.lds_latency + 12,
            OpClass::Mem(peakperf_sass::MemSpace::Global) => self.global_latency,
            OpClass::Ctrl | OpClass::Barrier | OpClass::Nop => 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use peakperf_sass::{Operand, Reg};

    fn ffma() -> Op {
        Op::Ffma {
            dst: Reg::r(0),
            a: Reg::r(1),
            b: Operand::reg(4),
            c: Reg::r(5),
        }
    }

    fn imad() -> Op {
        Op::Imad {
            dst: Reg::r(0),
            a: Reg::r(1),
            b: Operand::reg(4),
            c: Reg::r(5),
        }
    }

    #[test]
    fn kepler_token_costs_reproduce_table2() {
        let c = Calibration::for_generation(Generation::Kepler);
        let tokens = c.tokens_per_cycle.unwrap() as f64;
        // thread-insts/cycle = tokens/cost * 32
        let tp = |cost: u64| tokens / cost as f64 * 32.0;
        assert!((tp(c.token_cost(&ffma(), 1, false, 3)) - 132.0).abs() < 1.0);
        assert!((tp(c.token_cost(&ffma(), 2, false, 3)) - 66.0).abs() < 0.5);
        assert!((tp(c.token_cost(&ffma(), 3, false, 3)) - 44.0).abs() < 0.5);
        assert!((tp(c.token_cost(&imad(), 1, false, 3)) - 33.0).abs() < 0.5);
        assert!((tp(c.token_cost(&imad(), 2, false, 3)) - 33.0).abs() < 0.5);
        assert!((tp(c.token_cost(&imad(), 3, false, 3)) - 26.4).abs() < 0.5);
        // Reuse fast path approaches 178.
        let reuse = tp(c.token_cost(&ffma(), 1, true, 2));
        assert!((reuse - 176.0).abs() < 4.0);
    }

    #[test]
    fn fermi_lds_pipe_matches_section_4_1() {
        let c = Calibration::for_generation(Generation::Fermi);
        // thread-insts/cycle = 32 / II
        assert_eq!(c.lds_pipe_cycles(MemWidth::B32, 1), 2); // 16/cycle
        assert_eq!(c.lds_pipe_cycles(MemWidth::B64, 1), 4); // 8/cycle
        assert_eq!(c.lds_pipe_cycles(MemWidth::B128, 1), 16); // 2/cycle
                                                              // A 2-way conflict doubles the occupancy.
        assert_eq!(c.lds_pipe_cycles(MemWidth::B32, 2), 4);
    }

    #[test]
    fn kepler_lds_pipe_matches_section_4_1() {
        let c = Calibration::for_generation(Generation::Kepler);
        assert_eq!(c.lds_pipe_cycles(MemWidth::B32, 1), 1); // ~33/cycle
        assert_eq!(c.lds_pipe_cycles(MemWidth::B64, 1), 1); // ~33/cycle
        assert_eq!(c.lds_pipe_cycles(MemWidth::B128, 1), 2); // ~16.5/cycle
    }

    #[test]
    fn fermi_has_no_token_bucket() {
        let c = Calibration::for_generation(Generation::Fermi);
        assert!(c.tokens_per_cycle.is_none());
        assert!(c.scheduler_half_rate);
    }

    #[test]
    fn latencies_are_ordered() {
        for gen in Generation::ALL {
            let c = Calibration::for_generation(gen);
            let lds = Op::Ld {
                space: peakperf_sass::MemSpace::Shared,
                width: MemWidth::B64,
                dst: Reg::r(0),
                addr: Reg::r(2),
                offset: 0,
            };
            let ldg = Op::Ld {
                space: peakperf_sass::MemSpace::Global,
                width: MemWidth::B32,
                dst: Reg::r(0),
                addr: Reg::r(2),
                offset: 0,
            };
            assert!(c.latency(&ffma()) <= c.latency(&lds));
            assert!(c.latency(&lds) < c.latency(&ldg));
        }
    }
}
