//! A memoization cache for timing runs.
//!
//! A [`TimingSim`](crate::timing::TimingSim) run is a pure function of its
//! inputs (GPU configuration, kernel, launch configuration, parameter
//! values, resident-block count), so repeated runs — the experiment drivers
//! re-time identical microbenchmark kernels across figures, and repeated
//! `reproduce` invocations redo everything — can be answered from a cache.
//!
//! The cache is **opt-in** (see [`enable_global`]) because a hit skips the
//! functional execution entirely, including its writes to global memory.
//! Every caller in this repository discards the memory after timing, so the
//! experiment drivers enable it; code that inspects memory afterwards must
//! not.
//!
//! Keys are 128-bit [FNV-1a] hashes over the `Debug` rendering of the
//! inputs plus the raw parameter words. FNV is used instead of the standard
//! library's `Hasher` because the key also names on-disk entries, so it
//! must be stable across Rust versions and processes.
//!
//! The disk tier is hardened for concurrent, long-lived use (the
//! simulation service shares one `--cache-dir` across processes and
//! restarts): entries are written atomically (temp file + rename, so a
//! killed process never leaves a torn entry under a valid name), carry a
//! trailing FNV checksum verified on load, and anything unparseable is
//! quarantined — renamed to `.bad` and counted ([`quarantined_count`]) —
//! instead of silently accepted.
//!
//! [FNV-1a]: http://www.isthe.com/chongo/tech/comp/fnv/

use std::collections::{BTreeMap, HashMap};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

use peakperf_arch::GpuConfig;
use peakperf_sass::Kernel;

use crate::timing::sm::{StallKind, TimingReport};
use crate::{InstMix, LaunchConfig};

// ---------------------------------------------------------------------
// Key hashing
// ---------------------------------------------------------------------

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Two independent 64-bit FNV-1a streams (different offset bases) giving a
/// 128-bit digest — collision-safe for the few thousand distinct runs an
/// experiment suite produces, and stable across processes.
struct Fnv128 {
    lo: u64,
    hi: u64,
}

impl Fnv128 {
    fn new() -> Fnv128 {
        Fnv128 {
            lo: FNV_OFFSET,
            // A second, distinct basis: FNV-1a of the tag byte `1`.
            hi: (FNV_OFFSET ^ 1).wrapping_mul(FNV_PRIME),
        }
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.lo = (self.lo ^ u64::from(b)).wrapping_mul(FNV_PRIME);
            self.hi = (self.hi ^ u64::from(b.wrapping_add(0x9e))).wrapping_mul(FNV_PRIME);
        }
    }

    fn finish(&self) -> u128 {
        (u128::from(self.hi) << 64) | u128::from(self.lo)
    }
}

/// The cache key of one timing run.
pub(crate) fn run_key(
    gpu: &GpuConfig,
    kernel: &Kernel,
    config: LaunchConfig,
    params: &[u32],
    resident_blocks: u32,
) -> u128 {
    let mut h = Fnv128::new();
    // `Debug` renderings cover every field, including the instruction
    // stream and control notation; a separator guards against ambiguous
    // concatenation.
    h.write(format!("{gpu:?}").as_bytes());
    h.write(b"\x1f");
    h.write(format!("{kernel:?}").as_bytes());
    h.write(b"\x1f");
    h.write(format!("{config:?}").as_bytes());
    h.write(b"\x1f");
    for p in params {
        h.write(&p.to_le_bytes());
    }
    h.write(b"\x1f");
    h.write(&resident_blocks.to_le_bytes());
    h.finish()
}

// ---------------------------------------------------------------------
// The cache proper
// ---------------------------------------------------------------------

/// In-memory timing-result cache with an optional on-disk tier.
pub struct SimCache {
    mem: Mutex<HashMap<u128, TimingReport>>,
    disk: Mutex<Option<PathBuf>>,
}

/// Lock a mutex, recovering the data if a previous holder panicked. Both
/// cache maps stay coherent under partial updates (inserts are atomic per
/// entry), so poison recovery is safe and keeps the cache usable after a
/// caught experiment panic.
fn lock_recover<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

impl SimCache {
    /// An empty cache; `disk_dir`, when given, names a directory where
    /// entries are persisted as one small text file each (created on first
    /// store).
    pub fn new(disk_dir: Option<PathBuf>) -> SimCache {
        SimCache {
            mem: Mutex::new(HashMap::new()),
            disk: Mutex::new(disk_dir),
        }
    }

    /// Look up a report by key: memory first, then disk (a disk hit is
    /// promoted into memory).
    pub fn lookup(&self, key: u128) -> Option<TimingReport> {
        if !crate::perfmon::enabled() {
            return self.lookup_inner(key).map(|(r, _)| r);
        }
        let t0 = std::time::Instant::now();
        let found = self.lookup_inner(key);
        crate::perfmon::counter_add("timing_cache.lookup_ns", t0.elapsed().as_nanos() as u64);
        crate::perfmon::counter_add("timing_cache.lookups", 1);
        match found {
            Some((r, from_disk)) => {
                crate::perfmon::counter_add("timing_cache.hits", 1);
                if from_disk {
                    crate::perfmon::counter_add("timing_cache.disk_hits", 1);
                }
                Some(r)
            }
            None => None,
        }
    }

    fn lookup_inner(&self, key: u128) -> Option<(TimingReport, bool)> {
        if let Some(r) = lock_recover(&self.mem).get(&key) {
            return Some((r.clone(), false));
        }
        let path = self.entry_path(key)?;
        let text = std::fs::read_to_string(&path).ok()?;
        let Some(report) = parse_report(&text) else {
            // A torn, truncated, bit-flipped, or foreign entry: quarantine
            // it (rename to `.bad`, atomic even against a concurrent
            // writer) and count it, instead of silently accepting zeroed
            // fields. The slot becomes a plain miss and is re-simulated.
            quarantine(&path);
            return None;
        };
        lock_recover(&self.mem).insert(key, report.clone());
        Some((report, true))
    }

    /// Store a report under `key` (in memory, and on disk when configured).
    /// Disk write failures are ignored: the cache is an accelerator, not a
    /// store of record.
    ///
    /// Disk entries are written atomically — serialized to a unique temp
    /// file in the same directory, then renamed over the final name — so a
    /// process killed mid-write (or two processes sharing a `--cache-dir`)
    /// can never leave a torn entry under a valid entry name.
    pub fn store(&self, key: u128, report: &TimingReport) {
        let t0 = if crate::perfmon::enabled() {
            Some(std::time::Instant::now())
        } else {
            None
        };
        lock_recover(&self.mem).insert(key, report.clone());
        if let Some(path) = self.entry_path(key) {
            if let Some(dir) = path.parent() {
                let _ = std::fs::create_dir_all(dir);
            }
            static WRITE_SEQ: AtomicU64 = AtomicU64::new(0);
            let tmp = path.with_extension(format!(
                "tmp.{}.{}",
                std::process::id(),
                WRITE_SEQ.fetch_add(1, Ordering::Relaxed)
            ));
            if std::fs::write(&tmp, serialize_report(report)).is_ok()
                && std::fs::rename(&tmp, &path).is_err()
            {
                let _ = std::fs::remove_file(&tmp);
            }
        }
        if let Some(t0) = t0 {
            crate::perfmon::counter_add("timing_cache.store_ns", t0.elapsed().as_nanos() as u64);
            crate::perfmon::counter_add("timing_cache.stores", 1);
        }
    }

    /// Number of in-memory entries.
    pub fn len(&self) -> usize {
        lock_recover(&self.mem).len()
    }

    /// Whether the in-memory tier is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn entry_path(&self, key: u128) -> Option<PathBuf> {
        let disk = lock_recover(&self.disk);
        disk.as_ref()
            .map(|dir| dir.join(format!("{key:032x}.simcache")))
    }
}

// ---------------------------------------------------------------------
// Global (process-wide) instance
// ---------------------------------------------------------------------

static GLOBAL: OnceLock<SimCache> = OnceLock::new();
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Enable the process-wide cache used by
/// [`TimingSim::run_cached`](crate::timing::TimingSim::run_cached).
///
/// `disk_dir`, when given, adds a persistent tier under that directory;
/// passing `None` after a directory was set keeps the existing directory.
pub fn enable_global(disk_dir: Option<PathBuf>) {
    let cache = GLOBAL.get_or_init(|| SimCache::new(None));
    if let Some(dir) = disk_dir {
        *lock_recover(&cache.disk) = Some(dir);
    }
    ENABLED.store(true, Ordering::Release);
}

/// Disable the process-wide cache (entries are retained and reused if it is
/// re-enabled).
pub fn disable_global() {
    ENABLED.store(false, Ordering::Release);
}

/// Whether the process-wide cache is currently enabled.
pub fn global_enabled() -> bool {
    ENABLED.load(Ordering::Acquire)
}

/// The active process-wide cache, or `None` when disabled.
pub(crate) fn active() -> Option<&'static SimCache> {
    if ENABLED.load(Ordering::Acquire) {
        GLOBAL.get()
    } else {
        None
    }
}

// ---------------------------------------------------------------------
// Quarantine of corrupt disk entries
// ---------------------------------------------------------------------

/// Corrupt entries quarantined (renamed to `.bad`) by this process.
static QUARANTINED: AtomicU64 = AtomicU64::new(0);

/// Number of corrupt disk entries this process has quarantined.
pub fn quarantined_count() -> u64 {
    QUARANTINED.load(Ordering::Relaxed)
}

/// Move a corrupt entry out of the way (`<entry>.bad`) so it is never
/// re-parsed, and count it. Rename failures (e.g. a concurrent process
/// already quarantined or replaced it) are ignored — the entry is treated
/// as a miss either way.
fn quarantine(path: &Path) {
    let bad = path.with_extension("simcache.bad");
    let _ = std::fs::remove_file(&bad);
    let _ = std::fs::rename(path, &bad);
    QUARANTINED.fetch_add(1, Ordering::Relaxed);
    crate::perfmon::counter_add("timing_cache.quarantined", 1);
}

// ---------------------------------------------------------------------
// Report (de)serialization — line-oriented text, versioned, checksummed
// ---------------------------------------------------------------------

/// v2 adds a trailing `checksum` line and a strict parser (all scalar
/// fields required exactly once); v1 entries predate both and are
/// quarantined like any other unparseable file.
const FORMAT_TAG: &str = "peakperf-simcache v2";

/// The scalar (non-repeating) fields of an entry, in serialization order.
/// The parser requires each of these exactly once — a truncated or
/// tag-only file must never parse into an all-zero report.
const SCALAR_FIELDS: [&str; 8] = [
    "cycles",
    "warp_instructions",
    "thread_instructions",
    "flops",
    "lds_conflict_cycles",
    "global_transactions",
    "global_bytes",
    "hazard_replays",
];

/// FNV-1a over the entry body — stable across processes (same reason the
/// key hash is FNV), written as the final `checksum` line and verified on
/// load so a torn or bit-flipped entry is detected even when the damage
/// leaves every line individually well-formed.
fn body_checksum(body: &str) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in body.as_bytes() {
        h = (h ^ u64::from(b)).wrapping_mul(FNV_PRIME);
    }
    h
}

fn serialize_report(r: &TimingReport) -> String {
    let mut out = String::new();
    out.push_str(FORMAT_TAG);
    out.push('\n');
    out.push_str(&format!("cycles {}\n", r.cycles));
    out.push_str(&format!("warp_instructions {}\n", r.warp_instructions));
    out.push_str(&format!("thread_instructions {}\n", r.thread_instructions));
    out.push_str(&format!("flops {}\n", r.flops));
    out.push_str(&format!("lds_conflict_cycles {}\n", r.lds_conflict_cycles));
    out.push_str(&format!("global_transactions {}\n", r.global_transactions));
    out.push_str(&format!("global_bytes {}\n", r.global_bytes));
    out.push_str(&format!("hazard_replays {}\n", r.hazard_replays));
    for (kind, n) in &r.stalls {
        out.push_str(&format!("stall {} {n}\n", kind.as_str()));
    }
    for (mnemonic, n) in r.mix.iter() {
        out.push_str(&format!("mix {mnemonic} {n}\n"));
    }
    out.push_str(&format!("checksum {:016x}\n", body_checksum(&out)));
    out
}

fn parse_report(text: &str) -> Option<TimingReport> {
    // The checksum line covers everything before it, including the tag.
    let body_end = text.rfind("checksum ")?;
    // The checksum must be the final line, not a value embedded elsewhere.
    if body_end > 0 && text.as_bytes()[body_end - 1] != b'\n' {
        return None;
    }
    let (body, trailer) = text.split_at(body_end);
    let recorded = trailer
        .strip_prefix("checksum ")?
        .trim_end_matches('\n')
        .trim();
    if recorded.len() != 16 || u64::from_str_radix(recorded, 16).ok()? != body_checksum(body) {
        return None;
    }

    let mut lines = body.lines();
    if lines.next()? != FORMAT_TAG {
        return None;
    }
    let mut report = TimingReport {
        cycles: 0,
        warp_instructions: 0,
        thread_instructions: 0,
        flops: 0,
        mix: InstMix::new(),
        stalls: BTreeMap::new(),
        lds_conflict_cycles: 0,
        global_transactions: 0,
        global_bytes: 0,
        hazard_replays: 0,
    };
    let mut seen_scalar = [false; SCALAR_FIELDS.len()];
    for line in lines {
        let mut parts = line.split_whitespace();
        let field = parts.next()?;
        match field {
            "stall" => {
                let kind = StallKind::parse(parts.next()?)?;
                let n = parts.next()?.parse().ok()?;
                if report.stalls.insert(kind, n).is_some() {
                    return None; // duplicate stall kind
                }
            }
            "mix" => {
                let mnemonic = parts.next()?;
                if report.mix.count(mnemonic) != 0 {
                    return None; // duplicate mnemonic
                }
                let n = parts.next()?.parse().ok()?;
                report.mix.add_count(mnemonic, n);
            }
            _ => {
                let slot = SCALAR_FIELDS.iter().position(|f| *f == field)?;
                if seen_scalar[slot] {
                    return None; // duplicate scalar field
                }
                seen_scalar[slot] = true;
                let value: u64 = parts.next()?.parse().ok()?;
                match field {
                    "cycles" => report.cycles = value,
                    "warp_instructions" => report.warp_instructions = value,
                    "thread_instructions" => report.thread_instructions = value,
                    "flops" => report.flops = value,
                    "lds_conflict_cycles" => report.lds_conflict_cycles = value,
                    "global_transactions" => report.global_transactions = value,
                    "global_bytes" => report.global_bytes = value,
                    "hazard_replays" => report.hazard_replays = value,
                    _ => return None,
                }
            }
        }
        if parts.next().is_some() {
            return None;
        }
    }
    // Every scalar field is required: a tag-only or truncated entry must
    // not parse into a silent zero-cycle report.
    if !seen_scalar.iter().all(|&s| s) {
        return None;
    }
    Some(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use peakperf_arch::Generation;
    use peakperf_sass::{KernelBuilder, Operand, Reg};

    fn sample_kernel() -> Kernel {
        let mut b = KernelBuilder::new("k", Generation::Fermi);
        for _ in 0..4 {
            b.ffma(Reg::r(8), Reg::r(1), Operand::reg(4), Reg::r(8));
        }
        b.exit();
        b.finish().unwrap()
    }

    fn sample_report() -> TimingReport {
        let gpu = GpuConfig::gtx580();
        let kernel = sample_kernel();
        let mut mem = crate::GlobalMemory::new();
        let mut sim =
            crate::timing::TimingSim::new(&gpu, &kernel, LaunchConfig::linear(1, 64), &[], 1)
                .unwrap();
        sim.run(&mut mem).unwrap()
    }

    #[test]
    fn round_trips_through_text() {
        let report = sample_report();
        let parsed = parse_report(&serialize_report(&report)).unwrap();
        assert_eq!(parsed.cycles, report.cycles);
        assert_eq!(parsed.warp_instructions, report.warp_instructions);
        assert_eq!(parsed.thread_instructions, report.thread_instructions);
        assert_eq!(parsed.flops, report.flops);
        assert_eq!(parsed.stalls, report.stalls);
        assert_eq!(parsed.mix, report.mix);
    }

    #[test]
    fn rejects_foreign_text() {
        assert!(parse_report("not a cache file").is_none());
        assert!(parse_report(&format!("{FORMAT_TAG}\nbogus_field 3")).is_none());
    }

    /// Re-checksum a tampered body so the parser's rejection exercises the
    /// field rules rather than the checksum (tampering alone would trip
    /// the checksum first).
    fn with_fresh_checksum(body: &str) -> String {
        format!("{body}checksum {:016x}\n", body_checksum(body))
    }

    #[test]
    fn rejects_corrupt_entry_corpus() {
        let good = serialize_report(&sample_report());
        let body = good
            .split_inclusive('\n')
            .filter(|l| !l.starts_with("checksum "))
            .collect::<String>();

        // Tag-only and truncated entries: must never parse into an
        // all-zero report.
        assert!(parse_report(&with_fresh_checksum(&format!("{FORMAT_TAG}\n"))).is_none());
        assert!(parse_report(FORMAT_TAG).is_none());
        let half = &good[..good.len() / 2];
        assert!(parse_report(half).is_none());
        // Truncation that keeps whole lines but drops trailing fields.
        let three_lines = body.split_inclusive('\n').take(3).collect::<String>();
        assert!(parse_report(&with_fresh_checksum(&three_lines)).is_none());

        // Wrong tag.
        assert!(parse_report(&with_fresh_checksum(&body.replacen("v2", "v9", 1))).is_none());
        assert!(parse_report(&good.replacen(FORMAT_TAG, "peakperf-simcache v1", 1)).is_none());

        // Duplicate fields: scalars, stall kinds, and mix mnemonics.
        assert!(parse_report(&with_fresh_checksum(&format!("{body}cycles 7\n"))).is_none());
        assert!(parse_report(&with_fresh_checksum(&format!(
            "{body}stall scoreboard 1\nstall scoreboard 2\n"
        )))
        .is_none());
        assert!(parse_report(&with_fresh_checksum(&format!(
            "{body}mix NOP 1\nmix NOP 2\n"
        )))
        .is_none());

        // Bit flips anywhere in the body trip the checksum.
        for pos in [0, good.len() / 3, good.len() - 2] {
            let mut bytes = good.clone().into_bytes();
            bytes[pos] ^= 0x10;
            if let Ok(flipped) = String::from_utf8(bytes) {
                assert!(parse_report(&flipped).is_none(), "bit flip at {pos} parsed");
            }
        }

        // A checksum line that is not the final line.
        let misplaced = format!("checksum {:016x}\n{good}", body_checksum(""));
        assert!(parse_report(&misplaced).is_none());

        // The unmodified entry still parses (the corpus is not vacuous).
        assert!(parse_report(&good).is_some());
    }

    #[test]
    fn corrupt_disk_entries_are_quarantined_not_parsed() {
        let dir = std::env::temp_dir().join(format!(
            "peakperf-simcache-quarantine-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let report = sample_report();
        let cache = SimCache::new(Some(dir.clone()));

        // A valid entry for key 1, then three corrupt files: truncated,
        // tag-only, and garbage.
        cache.store(1, &report);
        let entry = |k: u128| dir.join(format!("{k:032x}.simcache"));
        let good_text = std::fs::read_to_string(entry(1)).unwrap();
        std::fs::write(entry(2), &good_text[..good_text.len() / 2]).unwrap();
        std::fs::write(entry(3), format!("{FORMAT_TAG}\n")).unwrap();
        std::fs::write(entry(4), "garbage\n").unwrap();

        let before = quarantined_count();
        // Fresh cache instance: all lookups go to disk.
        let fresh = SimCache::new(Some(dir.clone()));
        assert_eq!(fresh.lookup(1).unwrap().cycles, report.cycles);
        assert!(fresh.lookup(2).is_none());
        assert!(fresh.lookup(3).is_none());
        assert!(fresh.lookup(4).is_none());
        assert_eq!(quarantined_count() - before, 3);

        // The corrupt files moved aside; a re-lookup does not re-count.
        for k in [2u128, 3, 4] {
            assert!(!entry(k).exists(), "corrupt entry {k} still in place");
            assert!(
                entry(k).with_extension("simcache.bad").exists(),
                "quarantined file for {k} missing"
            );
            assert!(fresh.lookup(k).is_none());
        }
        assert_eq!(quarantined_count() - before, 3);

        // A re-store over a quarantined slot works and parses again.
        fresh.store(2, &report);
        let again = SimCache::new(Some(dir.clone()));
        assert_eq!(again.lookup(2).unwrap().cycles, report.cycles);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn store_leaves_no_temp_files_and_survives_concurrent_writers() {
        let dir =
            std::env::temp_dir().join(format!("peakperf-simcache-atomic-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let report = sample_report();
        let cache = SimCache::new(Some(dir.clone()));
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..25 {
                        cache.store(99, &report);
                    }
                });
            }
        });
        let names: Vec<String> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .collect();
        assert_eq!(names.len(), 1, "leftover files: {names:?}");
        assert!(names[0].ends_with(".simcache"));
        let fresh = SimCache::new(Some(dir.clone()));
        assert_eq!(fresh.lookup(99).unwrap().cycles, report.cycles);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn key_is_sensitive_to_each_input() {
        let gpu = GpuConfig::gtx580();
        let kernel = sample_kernel();
        let config = LaunchConfig::linear(4, 64);
        let base = run_key(&gpu, &kernel, config, &[7], 2);

        let mut other_gpu = gpu.clone();
        other_gpu.num_sms += 1;
        assert_ne!(base, run_key(&other_gpu, &kernel, config, &[7], 2));

        let mut other_kernel = kernel.clone();
        other_kernel.num_regs += 1;
        assert_ne!(base, run_key(&gpu, &other_kernel, config, &[7], 2));

        assert_ne!(
            base,
            run_key(&gpu, &kernel, LaunchConfig::linear(4, 128), &[7], 2)
        );
        assert_ne!(base, run_key(&gpu, &kernel, config, &[8], 2));
        assert_ne!(base, run_key(&gpu, &kernel, config, &[7], 3));
        assert_eq!(base, run_key(&gpu, &kernel, config, &[7], 2));
    }

    #[test]
    fn memory_tier_hits() {
        let cache = SimCache::new(None);
        let report = sample_report();
        assert!(cache.lookup(42).is_none());
        cache.store(42, &report);
        let hit = cache.lookup(42).unwrap();
        assert_eq!(hit.cycles, report.cycles);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn disk_tier_round_trips() {
        let dir =
            std::env::temp_dir().join(format!("peakperf-simcache-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let report = sample_report();
        {
            let cache = SimCache::new(Some(dir.clone()));
            cache.store(7, &report);
        }
        // A fresh cache instance (empty memory tier) must find it on disk.
        let cache = SimCache::new(Some(dir.clone()));
        let hit = cache.lookup(7).expect("disk entry");
        assert_eq!(hit.cycles, report.cycles);
        assert_eq!(hit.mix, report.mix);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
