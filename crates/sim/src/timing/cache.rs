//! A memoization cache for timing runs.
//!
//! A [`TimingSim`](crate::timing::TimingSim) run is a pure function of its
//! inputs (GPU configuration, kernel, launch configuration, parameter
//! values, resident-block count), so repeated runs — the experiment drivers
//! re-time identical microbenchmark kernels across figures, and repeated
//! `reproduce` invocations redo everything — can be answered from a cache.
//!
//! The cache is **opt-in** (see [`enable_global`]) because a hit skips the
//! functional execution entirely, including its writes to global memory.
//! Every caller in this repository discards the memory after timing, so the
//! experiment drivers enable it; code that inspects memory afterwards must
//! not.
//!
//! Keys are 128-bit [FNV-1a] hashes over the `Debug` rendering of the
//! inputs plus the raw parameter words. FNV is used instead of the standard
//! library's `Hasher` because the key also names on-disk entries, so it
//! must be stable across Rust versions and processes.
//!
//! [FNV-1a]: http://www.isthe.com/chongo/tech/comp/fnv/

use std::collections::{BTreeMap, HashMap};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock};

use peakperf_arch::GpuConfig;
use peakperf_sass::Kernel;

use crate::timing::sm::{StallKind, TimingReport};
use crate::{InstMix, LaunchConfig};

// ---------------------------------------------------------------------
// Key hashing
// ---------------------------------------------------------------------

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Two independent 64-bit FNV-1a streams (different offset bases) giving a
/// 128-bit digest — collision-safe for the few thousand distinct runs an
/// experiment suite produces, and stable across processes.
struct Fnv128 {
    lo: u64,
    hi: u64,
}

impl Fnv128 {
    fn new() -> Fnv128 {
        Fnv128 {
            lo: FNV_OFFSET,
            // A second, distinct basis: FNV-1a of the tag byte `1`.
            hi: (FNV_OFFSET ^ 1).wrapping_mul(FNV_PRIME),
        }
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.lo = (self.lo ^ u64::from(b)).wrapping_mul(FNV_PRIME);
            self.hi = (self.hi ^ u64::from(b.wrapping_add(0x9e))).wrapping_mul(FNV_PRIME);
        }
    }

    fn finish(&self) -> u128 {
        (u128::from(self.hi) << 64) | u128::from(self.lo)
    }
}

/// The cache key of one timing run.
pub(crate) fn run_key(
    gpu: &GpuConfig,
    kernel: &Kernel,
    config: LaunchConfig,
    params: &[u32],
    resident_blocks: u32,
) -> u128 {
    let mut h = Fnv128::new();
    // `Debug` renderings cover every field, including the instruction
    // stream and control notation; a separator guards against ambiguous
    // concatenation.
    h.write(format!("{gpu:?}").as_bytes());
    h.write(b"\x1f");
    h.write(format!("{kernel:?}").as_bytes());
    h.write(b"\x1f");
    h.write(format!("{config:?}").as_bytes());
    h.write(b"\x1f");
    for p in params {
        h.write(&p.to_le_bytes());
    }
    h.write(b"\x1f");
    h.write(&resident_blocks.to_le_bytes());
    h.finish()
}

// ---------------------------------------------------------------------
// The cache proper
// ---------------------------------------------------------------------

/// In-memory timing-result cache with an optional on-disk tier.
pub struct SimCache {
    mem: Mutex<HashMap<u128, TimingReport>>,
    disk: Mutex<Option<PathBuf>>,
}

/// Lock a mutex, recovering the data if a previous holder panicked. Both
/// cache maps stay coherent under partial updates (inserts are atomic per
/// entry), so poison recovery is safe and keeps the cache usable after a
/// caught experiment panic.
fn lock_recover<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

impl SimCache {
    /// An empty cache; `disk_dir`, when given, names a directory where
    /// entries are persisted as one small text file each (created on first
    /// store).
    pub fn new(disk_dir: Option<PathBuf>) -> SimCache {
        SimCache {
            mem: Mutex::new(HashMap::new()),
            disk: Mutex::new(disk_dir),
        }
    }

    /// Look up a report by key: memory first, then disk (a disk hit is
    /// promoted into memory).
    pub fn lookup(&self, key: u128) -> Option<TimingReport> {
        if !crate::perfmon::enabled() {
            return self.lookup_inner(key).map(|(r, _)| r);
        }
        let t0 = std::time::Instant::now();
        let found = self.lookup_inner(key);
        crate::perfmon::counter_add("timing_cache.lookup_ns", t0.elapsed().as_nanos() as u64);
        crate::perfmon::counter_add("timing_cache.lookups", 1);
        match found {
            Some((r, from_disk)) => {
                crate::perfmon::counter_add("timing_cache.hits", 1);
                if from_disk {
                    crate::perfmon::counter_add("timing_cache.disk_hits", 1);
                }
                Some(r)
            }
            None => None,
        }
    }

    fn lookup_inner(&self, key: u128) -> Option<(TimingReport, bool)> {
        if let Some(r) = lock_recover(&self.mem).get(&key) {
            return Some((r.clone(), false));
        }
        let path = self.entry_path(key)?;
        let text = std::fs::read_to_string(path).ok()?;
        let report = parse_report(&text)?;
        lock_recover(&self.mem).insert(key, report.clone());
        Some((report, true))
    }

    /// Store a report under `key` (in memory, and on disk when configured).
    /// Disk write failures are ignored: the cache is an accelerator, not a
    /// store of record.
    pub fn store(&self, key: u128, report: &TimingReport) {
        let t0 = if crate::perfmon::enabled() {
            Some(std::time::Instant::now())
        } else {
            None
        };
        lock_recover(&self.mem).insert(key, report.clone());
        if let Some(path) = self.entry_path(key) {
            if let Some(dir) = path.parent() {
                let _ = std::fs::create_dir_all(dir);
            }
            let _ = std::fs::write(path, serialize_report(report));
        }
        if let Some(t0) = t0 {
            crate::perfmon::counter_add("timing_cache.store_ns", t0.elapsed().as_nanos() as u64);
            crate::perfmon::counter_add("timing_cache.stores", 1);
        }
    }

    /// Number of in-memory entries.
    pub fn len(&self) -> usize {
        lock_recover(&self.mem).len()
    }

    /// Whether the in-memory tier is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn entry_path(&self, key: u128) -> Option<PathBuf> {
        let disk = lock_recover(&self.disk);
        disk.as_ref()
            .map(|dir| dir.join(format!("{key:032x}.simcache")))
    }
}

// ---------------------------------------------------------------------
// Global (process-wide) instance
// ---------------------------------------------------------------------

static GLOBAL: OnceLock<SimCache> = OnceLock::new();
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Enable the process-wide cache used by
/// [`TimingSim::run_cached`](crate::timing::TimingSim::run_cached).
///
/// `disk_dir`, when given, adds a persistent tier under that directory;
/// passing `None` after a directory was set keeps the existing directory.
pub fn enable_global(disk_dir: Option<PathBuf>) {
    let cache = GLOBAL.get_or_init(|| SimCache::new(None));
    if let Some(dir) = disk_dir {
        *lock_recover(&cache.disk) = Some(dir);
    }
    ENABLED.store(true, Ordering::Release);
}

/// Disable the process-wide cache (entries are retained and reused if it is
/// re-enabled).
pub fn disable_global() {
    ENABLED.store(false, Ordering::Release);
}

/// Whether the process-wide cache is currently enabled.
pub fn global_enabled() -> bool {
    ENABLED.load(Ordering::Acquire)
}

/// The active process-wide cache, or `None` when disabled.
pub(crate) fn active() -> Option<&'static SimCache> {
    if ENABLED.load(Ordering::Acquire) {
        GLOBAL.get()
    } else {
        None
    }
}

// ---------------------------------------------------------------------
// Report (de)serialization — line-oriented text, versioned
// ---------------------------------------------------------------------

const FORMAT_TAG: &str = "peakperf-simcache v1";

fn serialize_report(r: &TimingReport) -> String {
    let mut out = String::new();
    out.push_str(FORMAT_TAG);
    out.push('\n');
    out.push_str(&format!("cycles {}\n", r.cycles));
    out.push_str(&format!("warp_instructions {}\n", r.warp_instructions));
    out.push_str(&format!("thread_instructions {}\n", r.thread_instructions));
    out.push_str(&format!("flops {}\n", r.flops));
    out.push_str(&format!("lds_conflict_cycles {}\n", r.lds_conflict_cycles));
    out.push_str(&format!("global_transactions {}\n", r.global_transactions));
    out.push_str(&format!("global_bytes {}\n", r.global_bytes));
    out.push_str(&format!("hazard_replays {}\n", r.hazard_replays));
    for (kind, n) in &r.stalls {
        out.push_str(&format!("stall {} {n}\n", kind.as_str()));
    }
    for (mnemonic, n) in r.mix.iter() {
        out.push_str(&format!("mix {mnemonic} {n}\n"));
    }
    out
}

fn parse_report(text: &str) -> Option<TimingReport> {
    let mut lines = text.lines();
    if lines.next()? != FORMAT_TAG {
        return None;
    }
    let mut report = TimingReport {
        cycles: 0,
        warp_instructions: 0,
        thread_instructions: 0,
        flops: 0,
        mix: InstMix::new(),
        stalls: BTreeMap::new(),
        lds_conflict_cycles: 0,
        global_transactions: 0,
        global_bytes: 0,
        hazard_replays: 0,
    };
    for line in lines {
        let mut parts = line.split_whitespace();
        let field = parts.next()?;
        match field {
            "stall" => {
                let kind = StallKind::parse(parts.next()?)?;
                let n = parts.next()?.parse().ok()?;
                report.stalls.insert(kind, n);
            }
            "mix" => {
                let mnemonic = parts.next()?;
                let n = parts.next()?.parse().ok()?;
                report.mix.add_count(mnemonic, n);
            }
            _ => {
                let value: u64 = parts.next()?.parse().ok()?;
                match field {
                    "cycles" => report.cycles = value,
                    "warp_instructions" => report.warp_instructions = value,
                    "thread_instructions" => report.thread_instructions = value,
                    "flops" => report.flops = value,
                    "lds_conflict_cycles" => report.lds_conflict_cycles = value,
                    "global_transactions" => report.global_transactions = value,
                    "global_bytes" => report.global_bytes = value,
                    "hazard_replays" => report.hazard_replays = value,
                    _ => return None,
                }
            }
        }
        if parts.next().is_some() {
            return None;
        }
    }
    Some(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use peakperf_arch::Generation;
    use peakperf_sass::{KernelBuilder, Operand, Reg};

    fn sample_kernel() -> Kernel {
        let mut b = KernelBuilder::new("k", Generation::Fermi);
        for _ in 0..4 {
            b.ffma(Reg::r(8), Reg::r(1), Operand::reg(4), Reg::r(8));
        }
        b.exit();
        b.finish().unwrap()
    }

    fn sample_report() -> TimingReport {
        let gpu = GpuConfig::gtx580();
        let kernel = sample_kernel();
        let mut mem = crate::GlobalMemory::new();
        let mut sim =
            crate::timing::TimingSim::new(&gpu, &kernel, LaunchConfig::linear(1, 64), &[], 1)
                .unwrap();
        sim.run(&mut mem).unwrap()
    }

    #[test]
    fn round_trips_through_text() {
        let report = sample_report();
        let parsed = parse_report(&serialize_report(&report)).unwrap();
        assert_eq!(parsed.cycles, report.cycles);
        assert_eq!(parsed.warp_instructions, report.warp_instructions);
        assert_eq!(parsed.thread_instructions, report.thread_instructions);
        assert_eq!(parsed.flops, report.flops);
        assert_eq!(parsed.stalls, report.stalls);
        assert_eq!(parsed.mix, report.mix);
    }

    #[test]
    fn rejects_foreign_text() {
        assert!(parse_report("not a cache file").is_none());
        assert!(parse_report(&format!("{FORMAT_TAG}\nbogus_field 3")).is_none());
    }

    #[test]
    fn key_is_sensitive_to_each_input() {
        let gpu = GpuConfig::gtx580();
        let kernel = sample_kernel();
        let config = LaunchConfig::linear(4, 64);
        let base = run_key(&gpu, &kernel, config, &[7], 2);

        let mut other_gpu = gpu.clone();
        other_gpu.num_sms += 1;
        assert_ne!(base, run_key(&other_gpu, &kernel, config, &[7], 2));

        let mut other_kernel = kernel.clone();
        other_kernel.num_regs += 1;
        assert_ne!(base, run_key(&gpu, &other_kernel, config, &[7], 2));

        assert_ne!(
            base,
            run_key(&gpu, &kernel, LaunchConfig::linear(4, 128), &[7], 2)
        );
        assert_ne!(base, run_key(&gpu, &kernel, config, &[8], 2));
        assert_ne!(base, run_key(&gpu, &kernel, config, &[7], 3));
        assert_eq!(base, run_key(&gpu, &kernel, config, &[7], 2));
    }

    #[test]
    fn memory_tier_hits() {
        let cache = SimCache::new(None);
        let report = sample_report();
        assert!(cache.lookup(42).is_none());
        cache.store(42, &report);
        let hit = cache.lookup(42).unwrap();
        assert_eq!(hit.cycles, report.cycles);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn disk_tier_round_trips() {
        let dir =
            std::env::temp_dir().join(format!("peakperf-simcache-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let report = sample_report();
        {
            let cache = SimCache::new(Some(dir.clone()));
            cache.store(7, &report);
        }
        // A fresh cache instance (empty memory tier) must find it on disk.
        let cache = SimCache::new(Some(dir.clone()));
        let hit = cache.lookup(7).expect("disk entry");
        assert_eq!(hit.cycles, report.cycles);
        assert_eq!(hit.mix, report.mix);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
