//! The cycle-level single-SM simulator.

use std::collections::BTreeMap;

use peakperf_arch::{GpuConfig, WARP_SIZE};
use peakperf_sass::{validate_kernel, CtlInfo, Kernel, Op, OpClass};

use crate::cancel::{CancelCause, CancelToken, CHECK_INTERVAL_CYCLES};
use crate::exec::{release_barrier, step_warp, BlockCtx, MemCtx};
use crate::perfmon::{NoopProbe, PerfProbe, Phase, Stopwatch};
use crate::timing::conflict::{global_transactions, shared_conflict_factor, SEGMENT_BYTES};
use crate::timing::trace::{NoopSink, TraceEvent, TraceEventKind, TraceSink, NO_PC};
use crate::timing::Calibration;
use crate::warp::{StepEvent, WarpState};
use crate::{Dim3, GlobalMemory, HangSnapshot, InstMix, LaunchConfig, SimError, WarpHang};

/// Default safety limit on simulated cycles.
const DEFAULT_CYCLE_LIMIT: u64 = 200_000_000;

/// L1 cache per SM available for local-memory (spill) data when shared
/// memory takes 48 KB of the 64 KB unified array (Section 5.5).
const L1_BYTES: u32 = 16 * 1024;

/// Why a warp could not issue on a given attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum StallKind {
    /// Operand not ready (scoreboard).
    Scoreboard,
    /// LD/ST or SP pipe busy.
    Pipe,
    /// Kepler issue-token bucket exhausted.
    IssueTokens,
    /// Waiting at a barrier.
    Barrier,
    /// Control-notation stall field (Kepler) or post-issue spacing.
    CtlStall,
    /// Kepler replay penalty for an uncovered ALU hazard.
    HazardReplay,
}

impl StallKind {
    /// Number of stall kinds (the length of [`StallKind::ALL`]).
    pub const COUNT: usize = 6;

    /// Every stall kind, in declaration (= serialization) order:
    /// `ALL[k.index()] == k` for every kind, which the property tests
    /// assert so a new kind cannot silently desync the three views
    /// (enum declaration, `ALL`, `as_str`/`parse`).
    pub const ALL: [StallKind; StallKind::COUNT] = [
        StallKind::Scoreboard,
        StallKind::Pipe,
        StallKind::IssueTokens,
        StallKind::Barrier,
        StallKind::CtlStall,
        StallKind::HazardReplay,
    ];

    /// This kind's position in [`StallKind::ALL`] — the canonical index
    /// used by dense per-kind counter arrays (e.g.
    /// [`crate::Counters::stall_cycles`]).
    pub const fn index(self) -> usize {
        match self {
            StallKind::Scoreboard => 0,
            StallKind::Pipe => 1,
            StallKind::IssueTokens => 2,
            StallKind::Barrier => 3,
            StallKind::CtlStall => 4,
            StallKind::HazardReplay => 5,
        }
    }

    /// Stable identifier used in reports and the on-disk timing cache.
    pub fn as_str(self) -> &'static str {
        match self {
            StallKind::Scoreboard => "scoreboard",
            StallKind::Pipe => "pipe",
            StallKind::IssueTokens => "issue_tokens",
            StallKind::Barrier => "barrier",
            StallKind::CtlStall => "ctl_stall",
            StallKind::HazardReplay => "hazard_replay",
        }
    }

    /// Inverse of [`StallKind::as_str`].
    pub fn parse(s: &str) -> Option<StallKind> {
        StallKind::ALL.into_iter().find(|k| k.as_str() == s)
    }
}

/// Aggregate results of one timing run.
#[derive(Debug, Clone)]
pub struct TimingReport {
    /// Total shader cycles until all resident warps exited.
    pub cycles: u64,
    /// Warp instructions issued.
    pub warp_instructions: u64,
    /// Thread instructions issued (warp instructions × active lanes).
    pub thread_instructions: u64,
    /// FP32 operations executed (FFMA counts 2 per lane).
    pub flops: u64,
    /// Instruction mix.
    pub mix: InstMix,
    /// Stall cycles by cause (each cycle a runnable-but-blocked warp
    /// contributes to its blocking cause, at most one count per warp-cycle).
    pub stalls: BTreeMap<StallKind, u64>,
    /// Cycles of LD/ST pipe occupancy beyond the conflict-free cost.
    pub lds_conflict_cycles: u64,
    /// Global-memory transactions issued.
    pub global_transactions: u64,
    /// Global-memory bytes moved.
    pub global_bytes: u64,
    /// Kepler hazard replays charged.
    pub hazard_replays: u64,
}

impl TimingReport {
    /// Thread instructions per cycle (the unit of Figures 2 and 4).
    pub fn thread_ipc(&self) -> f64 {
        self.thread_instructions as f64 / self.cycles.max(1) as f64
    }

    /// FP32 operations per cycle on this SM.
    pub fn flops_per_cycle(&self) -> f64 {
        self.flops as f64 / self.cycles.max(1) as f64
    }
}

struct WarpSlot {
    state: WarpState,
    block: usize,
    next_issue: u64,
    /// Ready cycle per architectural register.
    sb_reg: [u64; 64],
    /// Ready cycle per predicate.
    sb_pred: [u64; 8],
    /// Kepler: the producer of this register did not carry a covering
    /// control-notation stall (replay hazard).
    hazard: u64, // bitmask over 64 registers
    at_barrier: bool,
    done: bool,
}

struct BlockRes {
    ctx: BlockCtx,
    shared: Vec<u8>,
    local: Vec<u8>,
}

/// Global-memory interface of one SM: fixed latency plus bandwidth
/// queueing.
struct MemIf {
    bytes_per_cycle: f64,
    latency: u32,
    next_free: f64,
}

impl MemIf {
    /// Service `bytes` starting no earlier than `now`; returns the cycle
    /// the data is available.
    fn access(&mut self, now: u64, bytes: u64) -> u64 {
        let start = self.next_free.max(now as f64);
        self.next_free = start + bytes as f64 / self.bytes_per_cycle;
        (start + f64::from(self.latency)) as u64
    }
}

/// A timing simulation of `resident_blocks` blocks of a kernel on one SM.
pub struct TimingSim {
    calib: Calibration,
    kernel: Kernel,
    config: LaunchConfig,
    params: Vec<u32>,
    resident_blocks: u32,
    cycle_limit: u64,
    /// Cooperative cancellation handle, polled every
    /// [`CHECK_INTERVAL_CYCLES`]; `None` skips the poll entirely.
    cancel: Option<CancelToken>,
    /// Pre-extracted per-instruction metadata.
    meta: Vec<InstMeta>,
    /// Hash of every input the run result depends on (see
    /// [`TimingSim::cache_key`]).
    cache_key: u128,
}

struct InstMeta {
    uses: Vec<peakperf_sass::Reg>,
    defs: Vec<peakperf_sass::Reg>,
    def_pred: Option<peakperf_sass::Pred>,
    ctl: CtlInfo,
    class: OpClass,
    token_ways: u32,
    distinct_srcs: usize,
    latency: u32,
}

impl TimingSim {
    /// Prepare a timing run.
    ///
    /// # Errors
    ///
    /// Fails if the kernel does not validate for the GPU's generation or
    /// the launch parameters are inconsistent.
    pub fn new(
        gpu: &GpuConfig,
        kernel: &Kernel,
        config: LaunchConfig,
        params: &[u32],
        resident_blocks: u32,
    ) -> Result<TimingSim, SimError> {
        validate_kernel(kernel, gpu.generation)?;
        if params.len() != kernel.params.len() {
            return Err(SimError::Launch {
                message: format!(
                    "kernel `{}` expects {} parameters, got {}",
                    kernel.name,
                    kernel.params.len(),
                    params.len()
                ),
            });
        }
        if resident_blocks == 0 {
            return Err(SimError::Launch {
                message: "resident block count must be positive".to_owned(),
            });
        }
        let calib = Calibration::for_generation(gpu.generation);
        let meta = kernel
            .code
            .iter()
            .enumerate()
            .map(|(i, inst)| {
                let ctl = kernel.ctl_for(i);
                let uses = inst.op.use_regs();
                let mut distinct = uses.clone();
                distinct.sort_unstable();
                distinct.dedup();
                // Register-bank conflict degree over distinct sources.
                let mut per_bank = [0u32; 4];
                for r in &distinct {
                    per_bank[r.bank().index()] += 1;
                }
                let token_ways = per_bank.iter().copied().max().unwrap_or(1).max(1);
                InstMeta {
                    defs: inst.op.def_regs(),
                    def_pred: inst.op.def_pred(),
                    ctl,
                    class: inst.op.class(),
                    token_ways,
                    distinct_srcs: distinct.len(),
                    latency: calib.latency(&inst.op),
                    uses,
                }
            })
            .collect();
        let cache_key = crate::timing::cache::run_key(gpu, kernel, config, params, resident_blocks);
        Ok(TimingSim {
            calib,
            kernel: kernel.clone(),
            config,
            params: params.to_vec(),
            resident_blocks,
            cycle_limit: DEFAULT_CYCLE_LIMIT,
            cancel: None,
            meta,
            cache_key,
        })
    }

    /// Override the safety cycle limit.
    pub fn set_cycle_limit(&mut self, limit: u64) {
        self.cycle_limit = limit;
    }

    /// Attach a cooperative [`CancelToken`]: the scheduler loop polls it
    /// every [`CHECK_INTERVAL_CYCLES`] simulated cycles (one relaxed
    /// atomic load) and aborts with [`SimError::Cancelled`] /
    /// [`SimError::DeadlineExceeded`] carrying the per-warp scheduling
    /// snapshot. A token that never fires leaves the run cycle-identical
    /// to an untokened run (the poll is a pure observer).
    pub fn set_cancel_token(&mut self, token: CancelToken) {
        self.cancel = Some(token);
    }

    /// Run to completion and report.
    ///
    /// # Errors
    ///
    /// Propagates memory faults and reports [`SimError::StepLimit`] if the
    /// cycle limit is exceeded.
    pub fn run(&mut self, memory: &mut GlobalMemory) -> Result<TimingReport, SimError> {
        self.run_traced(memory, &mut NoopSink)
    }

    /// Like [`TimingSim::run`], but streams per-cycle scheduler events
    /// (issues, stalls with [`StallKind`] attribution, barrier releases,
    /// warp exits) into `sink`.
    ///
    /// Sinks are pure observers, so the timing result is identical to an
    /// untraced run; with the default [`NoopSink`] every emission site
    /// compiles away (see [`crate::timing::trace`]).
    ///
    /// # Errors
    ///
    /// Same as [`TimingSim::run`].
    pub fn run_traced<S: TraceSink>(
        &mut self,
        memory: &mut GlobalMemory,
        sink: &mut S,
    ) -> Result<TimingReport, SimError> {
        self.run_probed(memory, sink, &mut NoopProbe)
    }

    /// Like [`TimingSim::run_traced`], but also streams host-performance
    /// observations (wall time per scheduler-loop phase, per-cycle issue
    /// and stall tallies) into `probe`.
    ///
    /// Probes, like sinks, are pure observers: the timing result is
    /// identical with any probe, and with the default [`NoopProbe`] every
    /// probe site — including its `Instant` reads — compiles away (see
    /// [`crate::perfmon`]).
    ///
    /// # Errors
    ///
    /// Same as [`TimingSim::run`].
    pub fn run_probed<S: TraceSink, P: PerfProbe>(
        &mut self,
        memory: &mut GlobalMemory,
        sink: &mut S,
        probe: &mut P,
    ) -> Result<TimingReport, SimError> {
        let run_t0 = if P::ENABLED {
            Some(std::time::Instant::now())
        } else {
            None
        };
        let threads = self.config.threads_per_block();
        let warps_per_block = self.config.warps_per_block();
        let n_warps = (warps_per_block * self.resident_blocks) as usize;

        let mut blocks: Vec<BlockRes> = (0..self.resident_blocks)
            .map(|b| BlockRes {
                ctx: BlockCtx {
                    // Resident blocks take the first grid slots along x.
                    ctaid: Dim3 {
                        x: b % self.config.grid.x.max(1),
                        y: (b / self.config.grid.x.max(1)) % self.config.grid.y.max(1),
                        z: 0,
                    },
                    ntid: self.config.block,
                    nctaid: self.config.grid,
                },
                shared: vec![0u8; self.kernel.shared_bytes as usize],
                local: vec![0u8; self.kernel.local_bytes as usize * threads as usize],
            })
            .collect();

        let mut slots: Vec<WarpSlot> = (0..n_warps)
            .map(|i| {
                let w_in_block = (i as u32) % warps_per_block;
                let lanes = (threads - w_in_block * WARP_SIZE).min(WARP_SIZE);
                WarpSlot {
                    state: WarpState::new(w_in_block, lanes),
                    block: i / warps_per_block as usize,
                    next_issue: 0,
                    sb_reg: [0; 64],
                    sb_pred: [0; 8],
                    hazard: 0,
                    at_barrier: false,
                    done: false,
                }
            })
            .collect();

        // Local-memory spill traffic: fraction of accesses missing L1.
        let spill_footprint =
            self.kernel.local_bytes as u64 * u64::from(threads) * u64::from(self.resident_blocks);
        let local_miss_fraction = if spill_footprint > u64::from(L1_BYTES) {
            1.0 - L1_BYTES as f64 / spill_footprint as f64
        } else {
            0.0
        };

        let mut memif = MemIf {
            bytes_per_cycle: self.calib.mem_bytes_per_cycle_sm,
            latency: self.calib.global_latency,
            next_free: 0.0,
        };
        let mut ldst_free: f64 = 0.0;
        let mut sp_free: f64 = 0.0;
        let mut tokens: f64 = 0.0;
        let token_cap = self.calib.tokens_per_cycle.unwrap_or(0) as f64 * 2.0;

        let mut report = TimingReport {
            cycles: 0,
            warp_instructions: 0,
            thread_instructions: 0,
            flops: 0,
            mix: InstMix::new(),
            stalls: BTreeMap::new(),
            lds_conflict_cycles: 0,
            global_transactions: 0,
            global_bytes: 0,
            hazard_replays: 0,
        };

        let schedulers = self.calib.schedulers as usize;
        // Round-robin pointers per scheduler.
        let mut rr: Vec<usize> = vec![0; schedulers];

        let mut cycle: u64 = 0;
        loop {
            if slots.iter().all(|s| s.done) {
                break;
            }
            if cycle > self.cycle_limit {
                return Err(SimError::StepLimit {
                    limit: self.cycle_limit,
                    snapshot: Some(timing_hang_snapshot(cycle, &slots)),
                });
            }
            if cycle.is_multiple_of(CHECK_INTERVAL_CYCLES) {
                if let Some(token) = &self.cancel {
                    match token.fire_state(cycle) {
                        None => {}
                        Some(CancelCause::Cancelled) => {
                            return Err(SimError::Cancelled {
                                at_cycle: cycle,
                                snapshot: Some(timing_hang_snapshot(cycle, &slots)),
                            });
                        }
                        Some(CancelCause::DeadlineExceeded) => {
                            return Err(SimError::DeadlineExceeded {
                                deadline_ms: token.deadline_ms(),
                                at_cycle: cycle,
                                snapshot: Some(timing_hang_snapshot(cycle, &slots)),
                            });
                        }
                    }
                }
            }
            if let Some(refill) = self.calib.tokens_per_cycle {
                tokens = (tokens + refill as f64).min(token_cap.max(refill as f64));
            }

            for s in 0..schedulers {
                // Rotate which scheduler gets first claim on shared issue
                // resources (the Kepler token bucket): with a fixed priority
                // order, schedulers 0 and 1 would consume the whole refill
                // every cycle once dual issue lets a scheduler spend two
                // instructions' worth, and the warps of schedulers 2 and 3
                // would starve until the end of the kernel.
                let sched = (s + cycle as usize) % schedulers;
                if self.calib.scheduler_half_rate && !(cycle as usize + sched).is_multiple_of(2) {
                    continue;
                }
                // Warps owned by this scheduler.
                let owned: Vec<usize> = (0..n_warps).filter(|&w| w % schedulers == sched).collect();
                if owned.is_empty() {
                    continue;
                }
                let start = rr[sched] % owned.len();
                let mut issued_from: Option<usize> = None;
                for k in 0..owned.len() {
                    let w = owned[(start + k) % owned.len()];
                    match self.try_issue(
                        w,
                        cycle,
                        &mut slots,
                        &mut blocks,
                        memory,
                        &mut ldst_free,
                        &mut sp_free,
                        &mut tokens,
                        &mut memif,
                        local_miss_fraction,
                        &mut report,
                        probe,
                    )? {
                        IssueResult::Issued { pc, lanes } => {
                            if S::ENABLED {
                                let sw = Stopwatch::start::<P>();
                                sink.record(TraceEvent {
                                    cycle,
                                    scheduler: sched as u8,
                                    warp: w as u16,
                                    pc,
                                    kind: TraceEventKind::Issue {
                                        lanes: lanes as u8,
                                        dual: false,
                                    },
                                });
                                if slots[w].done {
                                    sink.record(TraceEvent {
                                        cycle,
                                        scheduler: sched as u8,
                                        warp: w as u16,
                                        pc,
                                        kind: TraceEventKind::WarpExit,
                                    });
                                }
                                sw.stop(probe, Phase::TraceEmit);
                            }
                            issued_from = Some((start + k) % owned.len());
                            // Dual dispatch: try one more instruction from
                            // the same warp (Kepler's second dispatch unit).
                            if self.calib.dispatch_per_scheduler > 1 {
                                let second = self.try_issue(
                                    w,
                                    cycle,
                                    &mut slots,
                                    &mut blocks,
                                    memory,
                                    &mut ldst_free,
                                    &mut sp_free,
                                    &mut tokens,
                                    &mut memif,
                                    local_miss_fraction,
                                    &mut report,
                                    probe,
                                )?;
                                if S::ENABLED {
                                    if let IssueResult::Issued { pc, lanes } = second {
                                        let sw = Stopwatch::start::<P>();
                                        sink.record(TraceEvent {
                                            cycle,
                                            scheduler: sched as u8,
                                            warp: w as u16,
                                            pc,
                                            kind: TraceEventKind::Issue {
                                                lanes: lanes as u8,
                                                dual: true,
                                            },
                                        });
                                        if slots[w].done {
                                            sink.record(TraceEvent {
                                                cycle,
                                                scheduler: sched as u8,
                                                warp: w as u16,
                                                pc,
                                                kind: TraceEventKind::WarpExit,
                                            });
                                        }
                                        sw.stop(probe, Phase::TraceEmit);
                                    }
                                }
                            }
                            break;
                        }
                        IssueResult::Blocked { kind, pc } => {
                            *report.stalls.entry(kind).or_insert(0) += 1;
                            if P::ENABLED {
                                probe.stall(kind);
                            }
                            if S::ENABLED {
                                let sw = Stopwatch::start::<P>();
                                sink.record(TraceEvent {
                                    cycle,
                                    scheduler: sched as u8,
                                    warp: w as u16,
                                    pc,
                                    kind: TraceEventKind::Stall(kind),
                                });
                                sw.stop(probe, Phase::TraceEmit);
                            }
                        }
                        IssueResult::NotReady => {}
                    }
                }
                if let Some(pos) = issued_from {
                    rr[sched] = pos + 1;
                }
            }

            // Barrier release: per block, when every non-done warp waits.
            let barrier_sw = Stopwatch::start::<P>();
            for (b, block) in blocks.iter().enumerate() {
                let members: Vec<usize> = (0..n_warps).filter(|&w| slots[w].block == b).collect();
                let _ = block;
                let running: Vec<usize> = members
                    .iter()
                    .copied()
                    .filter(|&w| !slots[w].done)
                    .collect();
                if !running.is_empty() && running.iter().all(|&w| slots[w].at_barrier) {
                    // Matching the functional model (`func::run_block`): if
                    // any member warp of the block already exited, the
                    // barrier can never be satisfied — report the deadlock
                    // instead of silently releasing the waiters.
                    if running.len() != members.len() {
                        let pc = running
                            .first()
                            .and_then(|&w| slots[w].state.current_group())
                            .map(|(pc, _)| pc)
                            .unwrap_or(0);
                        return Err(SimError::BarrierDeadlock {
                            pc,
                            waiting: running.len() as u32,
                            exited: (members.len() - running.len()) as u32,
                        });
                    }
                    for &w in &running {
                        let slot = &mut slots[w];
                        slot.at_barrier = false;
                        let mut bar_pc = NO_PC;
                        if let Some((pc, _)) = slot.state.current_group() {
                            release_barrier(&mut slot.state, pc);
                            bar_pc = pc;
                        }
                        slot.next_issue = cycle + u64::from(self.calib.barrier_latency);
                        if S::ENABLED {
                            sink.record(TraceEvent {
                                cycle,
                                scheduler: (w % schedulers) as u8,
                                warp: w as u16,
                                pc: bar_pc,
                                kind: TraceEventKind::BarrierRelease,
                            });
                        }
                    }
                }
            }

            barrier_sw.stop(probe, Phase::BarrierRelease);

            if P::ENABLED {
                probe.cycle_end(cycle);
            }
            cycle += 1;
        }
        report.cycles = cycle.max(1);
        crate::stats::record_timing_run(&report);
        if let Some(t0) = run_t0 {
            probe.finish(report.cycles, t0.elapsed().as_nanos() as u64);
        }
        Ok(report)
    }

    /// Like [`TimingSim::run`], but consults the process-wide timing cache
    /// (see [`crate::timing::cache`]) when it has been enabled.
    ///
    /// On a cache hit the simulation is skipped entirely, so the functional
    /// side effects of the kernel (writes to `memory`) do **not** happen.
    /// Callers that inspect memory after timing — none of the experiment
    /// drivers do — must use [`TimingSim::run`] directly.
    ///
    /// # Errors
    ///
    /// Same as [`TimingSim::run`].
    pub fn run_cached(&mut self, memory: &mut GlobalMemory) -> Result<TimingReport, SimError> {
        let Some(cache) = crate::timing::cache::active() else {
            return self.run(memory);
        };
        if let Some(report) = cache.lookup(self.cache_key) {
            crate::stats::record_cache_hit();
            return Ok(report);
        }
        crate::stats::record_cache_miss();
        let report = self.run(memory)?;
        cache.store(self.cache_key, &report);
        Ok(report)
    }

    /// The key under which this run is cached: a 128-bit hash over the GPU
    /// configuration, the kernel (code, control notation, metadata), the
    /// launch configuration, the parameter values, and the resident-block
    /// count — everything [`TimingSim::run`]'s result depends on.
    pub fn cache_key(&self) -> u128 {
        self.cache_key
    }

    #[allow(clippy::too_many_arguments)]
    fn try_issue<P: PerfProbe>(
        &self,
        w: usize,
        cycle: u64,
        slots: &mut [WarpSlot],
        blocks: &mut [BlockRes],
        memory: &mut GlobalMemory,
        ldst_free: &mut f64,
        sp_free: &mut f64,
        tokens: &mut f64,
        memif: &mut MemIf,
        local_miss_fraction: f64,
        report: &mut TimingReport,
        probe: &mut P,
    ) -> Result<IssueResult, SimError> {
        let slot = &mut slots[w];
        if slot.done {
            return Ok(IssueResult::NotReady);
        }
        if slot.at_barrier {
            return Ok(IssueResult::Blocked {
                kind: StallKind::Barrier,
                pc: NO_PC,
            });
        }
        if slot.next_issue > cycle {
            return Ok(IssueResult::Blocked {
                kind: StallKind::CtlStall,
                pc: NO_PC,
            });
        }
        let Some((pc, _mask)) = slot.state.current_group() else {
            slot.done = true;
            return Ok(IssueResult::NotReady);
        };
        let inst = self
            .kernel
            .code
            .get(pc as usize)
            .ok_or(SimError::RanOffEnd)?;
        let meta = &self.meta[pc as usize];

        // Scoreboard.
        let sb_sw = Stopwatch::start::<P>();
        let mut ready = 0u64;
        let mut blocking_hazard = false;
        for r in meta.uses.iter().chain(meta.defs.iter()) {
            let idx = r.index() as usize;
            let t = slot.sb_reg[idx];
            if t > ready {
                ready = t;
            }
            if t > cycle && slot.hazard & (1 << idx) != 0 {
                blocking_hazard = true;
            }
        }
        if let Some(p) = inst.pred {
            ready = ready.max(slot.sb_pred[p.index() as usize]);
        }
        if let Some(p) = meta.def_pred {
            ready = ready.max(slot.sb_pred[p.index() as usize]);
        }
        if ready > cycle {
            if blocking_hazard && self.calib.hazard_penalty > 0 {
                // Kepler replay: the scheduler trusted the (insufficient)
                // control notation and must replay the instruction.
                slot.next_issue = ready + u64::from(self.calib.hazard_penalty);
                // Clear hazard flags we just paid for.
                for r in meta.uses.iter().chain(meta.defs.iter()) {
                    slot.hazard &= !(1 << r.index());
                }
                report.hazard_replays += 1;
                sb_sw.stop(probe, Phase::Scoreboard);
                return Ok(IssueResult::Blocked {
                    kind: StallKind::HazardReplay,
                    pc,
                });
            }
            sb_sw.stop(probe, Phase::Scoreboard);
            return Ok(IssueResult::Blocked {
                kind: StallKind::Scoreboard,
                pc,
            });
        }
        sb_sw.stop(probe, Phase::Scoreboard);

        // Structural pipes.
        let is_mem = matches!(meta.class, OpClass::Mem(_));
        let is_math = matches!(
            meta.class,
            OpClass::Fp32 | OpClass::Int | OpClass::IntMul | OpClass::Mov
        );
        if is_mem && *ldst_free >= (cycle + 1) as f64 {
            return Ok(IssueResult::Blocked {
                kind: StallKind::Pipe,
                pc,
            });
        }
        if is_math && *sp_free >= (cycle + 1) as f64 {
            return Ok(IssueResult::Blocked {
                kind: StallKind::Pipe,
                pc,
            });
        }

        // Kepler issue tokens.
        let cost = if self.calib.tokens_per_cycle.is_some() && (is_math || is_mem) {
            let c =
                self.calib
                    .token_cost(&inst.op, meta.token_ways, meta.ctl.dual, meta.distinct_srcs)
                    as f64;
            if *tokens < c {
                return Ok(IssueResult::Blocked {
                    kind: StallKind::IssueTokens,
                    pc,
                });
            }
            c
        } else {
            0.0
        };

        // Execute functionally.
        let block = &mut blocks[slot.block];
        let mut mem_ctx = MemCtx {
            global: memory,
            shared: &mut block.shared,
            local: &mut block.local,
            local_bytes: self.kernel.local_bytes,
            params: &self.params,
        };
        let fx_sw = Stopwatch::start::<P>();
        let result = step_warp(&self.kernel.code, &mut slot.state, &mut mem_ctx, &block.ctx)?;
        fx_sw.stop(probe, Phase::FuncExec);

        *tokens -= cost;

        let issued_lanes: u32;
        match result.event {
            StepEvent::AtBarrier { .. } => {
                slot.at_barrier = true;
                report.warp_instructions += 1;
                let lanes = slot.state.running_mask().count_ones();
                report.thread_instructions += u64::from(lanes);
                report.mix.record(inst, 1);
                if P::ENABLED {
                    probe.issue(pc);
                }
                return Ok(IssueResult::Issued { pc, lanes });
            }
            StepEvent::Exited => {
                slot.done = true;
                report.warp_instructions += 1;
                report.mix.record(inst, 1);
                if P::ENABLED {
                    probe.issue(pc);
                }
                return Ok(IssueResult::Issued { pc, lanes: 0 });
            }
            StepEvent::Executed { exec_mask, .. } => {
                let lanes = exec_mask.count_ones();
                issued_lanes = lanes;
                report.warp_instructions += 1;
                report.thread_instructions += u64::from(lanes);
                report.mix.record(inst, 1);
                if meta.class == OpClass::Fp32 {
                    let per_lane: u64 = if matches!(inst.op, Op::Ffma { .. }) {
                        2
                    } else {
                        1
                    };
                    report.flops += u64::from(lanes) * per_lane;
                }
            }
        }

        // Post-issue costs. A Kepler dual-issue hint keeps the warp
        // eligible for the scheduler's second dispatch slot this same
        // cycle (the pair partner's own stall field then paces the warp);
        // without it, issue is capped at one warp instruction per
        // scheduler per cycle — 128 thread-insts/cycle on 4 schedulers —
        // and the 33/8-token ceiling of 132 is unreachable.
        let ctl_stall = u64::from(meta.ctl.stall);
        let kepler_ctl = self.calib.generation.uses_control_notation();
        slot.next_issue = if kepler_ctl && meta.ctl.dual {
            cycle
        } else {
            cycle + 1 + if kepler_ctl { ctl_stall } else { 0 }
        };

        if is_math {
            *sp_free = sp_free.max(cycle as f64) + 32.0 / self.sp_rate();
        }

        let mut result_ready = cycle + u64::from(meta.latency);
        if let Some(access) = &result.mem {
            let mem_sw = Stopwatch::start::<P>();
            match access.space {
                peakperf_sass::MemSpace::Shared => {
                    let factor =
                        shared_conflict_factor(self.calib.generation, access.width, &access.addrs);
                    let occ = self.calib.lds_pipe_cycles(access.width, factor);
                    let base = self.calib.lds_pipe_cycles(access.width, 1);
                    report.lds_conflict_cycles += u64::from(occ - base);
                    *ldst_free = ldst_free.max(cycle as f64) + f64::from(occ);
                    result_ready = cycle + u64::from(meta.latency) + u64::from(occ - base);
                    mem_sw.stop(probe, Phase::BankConflict);
                }
                peakperf_sass::MemSpace::Global => {
                    let txns = global_transactions(access.width, &access.addrs);
                    let bytes = u64::from(txns) * u64::from(SEGMENT_BYTES);
                    report.global_transactions += u64::from(txns);
                    report.global_bytes += bytes;
                    *ldst_free = ldst_free.max(cycle as f64) + f64::from(txns.max(1));
                    let data_at = memif.access(cycle, bytes);
                    if !access.store {
                        result_ready = data_at;
                    }
                    mem_sw.stop(probe, Phase::MemModel);
                }
                peakperf_sass::MemSpace::Local => {
                    // Spill traffic: occupies the LD/ST pipe like shared
                    // memory; the L1-miss fraction also pays global
                    // bandwidth and latency (Section 5.5).
                    let occ = self.calib.lds_pipe_cycles(access.width, 1);
                    *ldst_free = ldst_free.max(cycle as f64) + f64::from(occ);
                    if local_miss_fraction > 0.0 {
                        let bytes = (access.addrs.len() as f64
                            * f64::from(access.width.bytes())
                            * local_miss_fraction) as u64;
                        let data_at = memif.access(cycle, bytes);
                        if !access.store {
                            result_ready = result_ready
                                .max(cycle + u64::from(self.calib.global_latency / 2))
                                .max(data_at);
                        }
                    }
                    mem_sw.stop(probe, Phase::MemModel);
                }
            }
        }

        // Scoreboard updates. A producer counts as "covered" when it
        // carries any scheduling stall at all: raw unannotated Kepler code
        // (stall 0 everywhere) replays on ALU hazards and runs very poorly,
        // exactly as the paper observed before decoding the notation
        // (Section 3.2).
        let kepler = self.calib.generation.uses_control_notation();
        let covered = ctl_stall >= 1;
        let sbu_sw = Stopwatch::start::<P>();
        for r in &meta.defs {
            let idx = r.index() as usize;
            slot.sb_reg[idx] = result_ready;
            let alu_like = matches!(
                meta.class,
                OpClass::Fp32 | OpClass::Int | OpClass::IntMul | OpClass::Mov
            );
            if kepler && alu_like && !covered && self.calib.hazard_penalty > 0 {
                slot.hazard |= 1 << idx;
            } else {
                slot.hazard &= !(1 << idx);
            }
        }
        if let Some(p) = meta.def_pred {
            slot.sb_pred[p.index() as usize] = result_ready;
        }
        sbu_sw.stop(probe, Phase::Scoreboard);

        if P::ENABLED {
            probe.issue(pc);
        }
        Ok(IssueResult::Issued {
            pc,
            lanes: issued_lanes,
        })
    }

    fn sp_rate(&self) -> f64 {
        // Warp-instructions per cycle the SP array can absorb.
        match self.calib.generation {
            peakperf_arch::Generation::Gt200 => 8.0,
            peakperf_arch::Generation::Fermi => 32.0,
            peakperf_arch::Generation::Kepler => 192.0,
        }
    }
}

enum IssueResult {
    Issued { pc: u32, lanes: u32 },
    Blocked { kind: StallKind, pc: u32 },
    NotReady,
}

/// Capture the scheduling state of every warp slot for cycle-limit
/// diagnostics.
fn timing_hang_snapshot(cycle: u64, slots: &[WarpSlot]) -> HangSnapshot {
    let warps = slots
        .iter()
        .enumerate()
        .map(|(w, slot)| {
            let pc = slot.state.current_group().map(|(pc, _)| pc);
            let (pc, state) = if slot.done {
                (None, "done")
            } else if slot.at_barrier {
                (pc, "barrier")
            } else if slot.next_issue > cycle {
                (pc, "ctl_stall")
            } else {
                (pc, "runnable")
            };
            WarpHang {
                warp: w as u32,
                pc,
                state,
            }
        })
        .collect();
    HangSnapshot { at: cycle, warps }
}

#[cfg(test)]
mod tests {
    use super::*;
    use peakperf_sass::{Generation, KernelBuilder, Operand, Reg};

    /// A kernel of `n` independent FFMAs per thread in a tight loop.
    fn ffma_kernel(gen: Generation, unroll: usize, iters: u32) -> Kernel {
        let mut b = KernelBuilder::new("ffma_tp", gen);
        let r_i = Reg::r(16);
        b.mov32i(r_i, iters);
        // Initialize operand registers on distinct banks: R1, R4, R2, ...
        for r in 0..8u8 {
            b.mov_f32(Reg::r(r), 1.0 + f32::from(r));
        }
        let top = b.label_here();
        // Accumulators on even0/odd1 so they never share a bank with the
        // sources R1 (odd0) / R4 (even1) — the Section 3.3 discipline.
        const ACCS: [u8; 4] = [8, 13, 10, 15];
        for k in 0..unroll {
            let dst = Reg::r(ACCS[k % 4]);
            if gen.uses_control_notation() {
                // Annotated code, as nvcc would emit (a zero stall field
                // marks unscheduled code and replays on ALU hazards).
                // Independent FFMAs pair up for the second dispatch slot:
                // dual flag on the leader, the trailer's stall paces the
                // pair.
                if k % 2 == 0 {
                    b.with_ctl(CtlInfo::dual_stall(1));
                } else {
                    b.with_ctl(CtlInfo::stall(1));
                }
            }
            b.ffma(dst, Reg::r(1), Operand::reg(4), dst);
        }
        b.iadd(r_i, r_i, -1);
        b.isetp(peakperf_sass::Pred::p(0), peakperf_sass::CmpOp::Gt, r_i, 0);
        b.bra_if(peakperf_sass::Pred::p(0), false, top);
        b.exit();
        b.finish().unwrap()
    }

    fn run_sm(gen: Generation, kernel: &Kernel, threads: u32, blocks: u32) -> TimingReport {
        let gpu = GpuConfig::preset(gen);
        let mut mem = GlobalMemory::new();
        let mut sim = TimingSim::new(
            &gpu,
            kernel,
            LaunchConfig::linear(blocks, threads),
            &[],
            blocks,
        )
        .unwrap();
        sim.run(&mut mem).unwrap()
    }

    #[test]
    fn fermi_ffma_throughput_saturates_at_32() {
        let kernel = ffma_kernel(Generation::Fermi, 32, 64);
        let report = run_sm(Generation::Fermi, &kernel, 512, 1);
        let ipc = report.thread_ipc();
        assert!(
            (25.0..=32.5).contains(&ipc),
            "Fermi FFMA thread IPC {ipc} outside expected band"
        );
    }

    #[test]
    fn kepler_ffma_throughput_saturates_near_132() {
        let kernel = ffma_kernel(Generation::Kepler, 32, 64);
        let report = run_sm(Generation::Kepler, &kernel, 1024, 2);
        let ipc = report.thread_ipc();
        // The token bucket sustains 33/8 warp-issues/cycle = 132
        // thread-insts/cycle for the charged instructions; BRA issues
        // outside the bucket, so a 35-instruction loop body can reach
        // 132 * 35/34 = 135.9. Measured: 134.6.
        assert!(
            (128.0..=136.5).contains(&ipc),
            "Kepler FFMA thread IPC {ipc} outside expected band"
        );
    }

    #[test]
    fn few_threads_cannot_hide_latency() {
        let kernel = ffma_kernel(Generation::Fermi, 32, 16);
        let low = run_sm(Generation::Fermi, &kernel, 32, 1).thread_ipc();
        let high = run_sm(Generation::Fermi, &kernel, 512, 1).thread_ipc();
        assert!(
            low < high,
            "32 threads ({low}) should be slower than 512 ({high})"
        );
    }

    #[test]
    fn cycle_limit_catches_runaway() {
        let mut b = KernelBuilder::new("spin", Generation::Fermi);
        let top = b.label_here();
        b.bra(top);
        b.exit();
        let kernel = b.finish().unwrap();
        let gpu = GpuConfig::gtx580();
        let mut mem = GlobalMemory::new();
        let mut sim = TimingSim::new(&gpu, &kernel, LaunchConfig::linear(1, 32), &[], 1).unwrap();
        sim.set_cycle_limit(10_000);
        match sim.run(&mut mem) {
            Err(SimError::StepLimit { limit, snapshot }) => {
                assert_eq!(limit, 10_000);
                let snap = snapshot.expect("cycle limit carries a snapshot");
                assert_eq!(snap.warps.len(), 1);
                assert_ne!(snap.warps[0].state, "done");
            }
            other => panic!("expected StepLimit, got {other:?}"),
        }
    }

    #[test]
    fn barrier_deadlock_matches_functional_model() {
        // Warp 0 (tid < 32) exits before the barrier; warp 1 waits forever.
        // Both engines must report the same typed deadlock.
        let mut b = KernelBuilder::new("deadlock", Generation::Fermi);
        b.s2r(Reg::r(0), peakperf_sass::SpecialReg::TidX);
        b.isetp(
            peakperf_sass::Pred::p(0),
            peakperf_sass::CmpOp::Lt,
            Reg::r(0),
            32,
        );
        b.with_pred(peakperf_sass::Pred::p(0), false).exit();
        b.bar();
        b.exit();
        let kernel = b.finish().unwrap();

        let mut gpu = crate::Gpu::new(Generation::Fermi);
        let func_err = gpu
            .launch(&kernel, LaunchConfig::linear(1, 64), &[])
            .unwrap_err();

        let config = GpuConfig::gtx580();
        let mut mem = GlobalMemory::new();
        let mut sim =
            TimingSim::new(&config, &kernel, LaunchConfig::linear(1, 64), &[], 1).unwrap();
        sim.set_cycle_limit(100_000);
        let timing_err = sim.run(&mut mem).unwrap_err();

        assert_eq!(
            func_err,
            SimError::BarrierDeadlock {
                pc: 3,
                waiting: 1,
                exited: 1,
            }
        );
        assert_eq!(func_err, timing_err);
    }

    #[test]
    fn probed_run_is_cycle_identical() {
        // Probes are pure observers: a HostProf-probed run must produce the
        // exact report of an unprobed run — the same lock NoopSink has.
        for gen in [Generation::Fermi, Generation::Kepler] {
            let kernel = ffma_kernel(gen, 16, 32);
            let gpu = GpuConfig::preset(gen);
            let config = LaunchConfig::linear(2, 128);

            let mut mem = GlobalMemory::new();
            let mut sim = TimingSim::new(&gpu, &kernel, config, &[], 2).unwrap();
            let plain = sim.run(&mut mem).unwrap();

            let mut mem = GlobalMemory::new();
            let mut sim = TimingSim::new(&gpu, &kernel, config, &[], 2).unwrap();
            let mut probe = crate::perfmon::HostProf::new();
            let probed = sim.run_probed(&mut mem, &mut NoopSink, &mut probe).unwrap();

            assert_eq!(plain.cycles, probed.cycles);
            assert_eq!(plain.warp_instructions, probed.warp_instructions);
            assert_eq!(plain.thread_instructions, probed.thread_instructions);
            assert_eq!(plain.stalls, probed.stalls);
            assert_eq!(plain.flops, probed.flops);

            // And the probe saw a coherent stream: one cycle_end per
            // simulated cycle (the final report adds max(1)), stall tallies
            // matching the report, and wall shares that sum to the total.
            assert_eq!(probe.cycles(), probed.cycles);
            let total: u64 = crate::perfmon::Phase::ALL
                .into_iter()
                .map(|p| probe.phase_nanos(p))
                .sum();
            assert_eq!(total, probe.total_nanos());
            let a = probe.analyze();
            assert!(a.idle_cycles <= a.cycles);
            assert!(a.combined_speedup() >= 1.0);
        }
    }

    #[test]
    fn never_firing_token_is_cycle_identical() {
        // The token poll is a pure observer: a run carrying a token that
        // never fires (even one with a generous deadline) must produce the
        // exact report of a token-less run — the cancellation analogue of
        // the NoopSink / NoopProbe identity locks.
        for gen in [Generation::Fermi, Generation::Kepler] {
            let kernel = ffma_kernel(gen, 16, 32);
            let gpu = GpuConfig::preset(gen);
            let config = LaunchConfig::linear(2, 128);

            let mut mem = GlobalMemory::new();
            let mut sim = TimingSim::new(&gpu, &kernel, config, &[], 2).unwrap();
            let plain = sim.run(&mut mem).unwrap();

            let mut mem = GlobalMemory::new();
            let mut sim = TimingSim::new(&gpu, &kernel, config, &[], 2).unwrap();
            sim.set_cancel_token(CancelToken::with_deadline(std::time::Duration::from_secs(
                3600,
            )));
            let tokened = sim.run(&mut mem).unwrap();

            assert_eq!(plain.cycles, tokened.cycles);
            assert_eq!(plain.warp_instructions, tokened.warp_instructions);
            assert_eq!(plain.thread_instructions, tokened.thread_instructions);
            assert_eq!(plain.stalls, tokened.stalls);
            assert_eq!(plain.flops, tokened.flops);
            assert_eq!(plain.hazard_replays, tokened.hazard_replays);
        }
    }

    #[test]
    fn cancel_at_cycle_is_deterministic_and_snapshotted() {
        // A spin kernel runs forever; a cycle-armed token must abort it at
        // the first poll boundary >= the armed cycle, identically on every
        // run, with a coherent per-warp snapshot.
        let mut b = KernelBuilder::new("spin", Generation::Fermi);
        let top = b.label_here();
        b.bra(top);
        b.exit();
        let kernel = b.finish().unwrap();
        let gpu = GpuConfig::gtx580();

        let run_cancelled = |at: u64| -> SimError {
            let mut mem = GlobalMemory::new();
            let mut sim =
                TimingSim::new(&gpu, &kernel, LaunchConfig::linear(1, 64), &[], 1).unwrap();
            let token = CancelToken::new();
            token.cancel_at_cycle(at);
            sim.set_cancel_token(token);
            sim.run(&mut mem).unwrap_err()
        };

        let first = run_cancelled(5000);
        let second = run_cancelled(5000);
        assert_eq!(first, second, "cancelled runs must be deterministic");
        match first {
            SimError::Cancelled { at_cycle, snapshot } => {
                // First poll boundary at or after the armed cycle.
                assert_eq!(at_cycle, 5000_u64.next_multiple_of(CHECK_INTERVAL_CYCLES));
                let snap = snapshot.expect("cancellation carries a snapshot");
                assert_eq!(snap.at, at_cycle);
                assert_eq!(snap.warps.len(), 2); // 64 threads = 2 warps
                assert!(snap.warps.iter().all(|w| w.state != "done"));
            }
            other => panic!("expected Cancelled, got {other:?}"),
        }
        // A different armed cycle lands on a different boundary.
        match run_cancelled(0) {
            SimError::Cancelled { at_cycle, .. } => assert_eq!(at_cycle, 0),
            other => panic!("expected Cancelled, got {other:?}"),
        }
    }

    #[test]
    fn pre_cancelled_token_aborts_immediately() {
        let kernel = ffma_kernel(Generation::Fermi, 16, 1 << 20);
        let gpu = GpuConfig::gtx580();
        let mut mem = GlobalMemory::new();
        let mut sim = TimingSim::new(&gpu, &kernel, LaunchConfig::linear(1, 64), &[], 1).unwrap();
        let token = CancelToken::new();
        token.cancel();
        sim.set_cancel_token(token);
        match sim.run(&mut mem) {
            Err(SimError::Cancelled { at_cycle, .. }) => assert_eq!(at_cycle, 0),
            other => panic!("expected immediate Cancelled, got {other:?}"),
        }
    }

    #[test]
    fn elapsed_deadline_aborts_with_budget_in_error() {
        let kernel = ffma_kernel(Generation::Fermi, 16, 1 << 20);
        let gpu = GpuConfig::gtx580();
        let mut mem = GlobalMemory::new();
        let mut sim = TimingSim::new(&gpu, &kernel, LaunchConfig::linear(1, 64), &[], 1).unwrap();
        sim.set_cancel_token(CancelToken::with_deadline(std::time::Duration::ZERO));
        std::thread::sleep(std::time::Duration::from_millis(1));
        match sim.run(&mut mem) {
            Err(SimError::DeadlineExceeded {
                deadline_ms,
                snapshot,
                ..
            }) => {
                assert_eq!(deadline_ms, 0);
                assert!(snapshot.is_some());
            }
            other => panic!("expected DeadlineExceeded, got {other:?}"),
        }
    }

    #[test]
    fn barrier_round_trips_in_timing() {
        let mut b = KernelBuilder::new("bar", Generation::Fermi);
        b.shared_bytes(256);
        b.nop();
        b.bar();
        b.nop();
        b.exit();
        let kernel = b.finish().unwrap();
        let report = run_sm(Generation::Fermi, &kernel, 128, 1);
        assert_eq!(report.mix.count("BAR.SYNC"), 4); // 4 warps
        assert!(
            report.cycles
                > u64::from(Calibration::for_generation(Generation::Fermi).barrier_latency)
        );
    }
}
