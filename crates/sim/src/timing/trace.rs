//! Cycle-level event tracing for the timing simulator.
//!
//! The simulator's scheduler loop emits one [`TraceEvent`] per issue
//! attempt outcome — an instruction issued (primary or dual dispatch
//! slot), a runnable warp blocked with a [`StallKind`], a barrier
//! released, a warp exited. Consumers implement [`TraceSink`]; the two
//! in-tree sinks are [`TraceBuffer`] (records raw events, for the Chrome
//! trace export) and [`super::profile::ProfileBuilder`] (aggregates
//! in-flight, for arbitrarily long runs).
//!
//! # Overhead guarantee
//!
//! Tracing must never perturb timing and must cost nothing when unused.
//! [`TraceSink`] therefore carries an associated `const ENABLED`; every
//! emission site in the simulator is guarded by `if S::ENABLED`, which for
//! the default [`NoopSink`] is a compile-time `false` — the untraced
//! monomorphization of the scheduler loop contains no tracing code at
//! all. Sinks only *observe*: nothing they return feeds back into the
//! simulation, so a traced run and an untraced run of the same kernel
//! produce identical cycle counts (asserted by `tests/trace.rs`).

use std::fmt::Write as _;

use peakperf_sass::Kernel;

use crate::timing::sm::StallKind;

/// Sentinel PC for events where the instruction index is not known
/// without extra work (e.g. a warp parked at a barrier).
pub const NO_PC: u32 = u32::MAX;

/// What happened at one (cycle, scheduler, warp) point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEventKind {
    /// A warp instruction issued.
    Issue {
        /// Active lanes of the issued instruction.
        lanes: u8,
        /// Whether this went through the scheduler's second dispatch
        /// slot (Kepler dual issue).
        dual: bool,
    },
    /// A runnable warp could not issue, for the given reason.
    Stall(StallKind),
    /// The warp was released from a block-wide barrier.
    BarrierRelease,
    /// The warp executed its last instruction and left the SM.
    WarpExit,
}

/// One per-cycle scheduler event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Shader cycle the event happened on.
    pub cycle: u64,
    /// Scheduler that attempted the issue.
    pub scheduler: u8,
    /// Warp slot index on the SM.
    pub warp: u16,
    /// Instruction index, or [`NO_PC`] when unknown.
    pub pc: u32,
    /// The event payload.
    pub kind: TraceEventKind,
}

/// A consumer of trace events.
///
/// Implementations must be pure observers: recording an event may not
/// influence the simulation. The `ENABLED` constant lets the compiler
/// remove every emission site from the no-op instantiation.
pub trait TraceSink {
    /// Whether this sink observes anything at all. Emission sites are
    /// guarded with `if S::ENABLED`, so a `false` here erases them.
    const ENABLED: bool = true;

    /// Observe one event.
    fn record(&mut self, event: TraceEvent);
}

/// The default sink: records nothing, costs nothing.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopSink;

impl TraceSink for NoopSink {
    const ENABLED: bool = false;

    #[inline(always)]
    fn record(&mut self, _event: TraceEvent) {}
}

/// Default event cap of a [`TraceBuffer`] (~112 MB of events).
pub const DEFAULT_TRACE_LIMIT: usize = 4_000_000;

/// A sink that stores raw events in memory, up to a cap.
///
/// Past the cap further events are counted but dropped, so a runaway
/// kernel cannot exhaust memory; [`TraceBuffer::dropped`] tells consumers
/// the record is incomplete.
#[derive(Debug, Clone, Default)]
pub struct TraceBuffer {
    events: Vec<TraceEvent>,
    limit: usize,
    dropped: u64,
}

impl TraceBuffer {
    /// An empty buffer with the default cap.
    pub fn new() -> TraceBuffer {
        TraceBuffer::with_limit(DEFAULT_TRACE_LIMIT)
    }

    /// An empty buffer that keeps at most `limit` events.
    pub fn with_limit(limit: usize) -> TraceBuffer {
        TraceBuffer {
            events: Vec::new(),
            limit,
            dropped: 0,
        }
    }

    /// The recorded events, in emission order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Events dropped after the cap was reached.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }
}

impl TraceSink for TraceBuffer {
    fn record(&mut self, event: TraceEvent) {
        if self.events.len() < self.limit {
            self.events.push(event);
        } else {
            self.dropped += 1;
        }
    }
}

/// Fan one event stream out to two sinks (e.g. a [`TraceBuffer`] for the
/// Chrome export and a `ProfileBuilder` for aggregation, in one run).
#[derive(Debug)]
pub struct Tee<'a, A, B>(pub &'a mut A, pub &'a mut B);

impl<A: TraceSink, B: TraceSink> TraceSink for Tee<'_, A, B> {
    const ENABLED: bool = A::ENABLED || B::ENABLED;

    fn record(&mut self, event: TraceEvent) {
        if A::ENABLED {
            self.0.record(event);
        }
        if B::ENABLED {
            self.1.record(event);
        }
    }
}

// ---------------------------------------------------------------------
// Chrome trace-event export
// ---------------------------------------------------------------------

/// Incremental writer for Chrome trace-event JSON (the format
/// `chrome://tracing` and Perfetto load).
///
/// Shared between the simulator's cycle-level export ([`chrome_trace`])
/// and the service journal's job-level export in `peakperf-bench`: both
/// produce one `traceEvents` array of metadata / complete / instant /
/// counter records plus an `otherData` trailer, and this writer owns the
/// separators, indentation and escaping so the two exports cannot drift
/// apart in shape.
#[derive(Debug)]
pub struct ChromeTraceWriter {
    out: String,
    first: bool,
}

impl Default for ChromeTraceWriter {
    fn default() -> ChromeTraceWriter {
        ChromeTraceWriter::new()
    }
}

impl ChromeTraceWriter {
    /// A writer with the `traceEvents` array opened.
    pub fn new() -> ChromeTraceWriter {
        ChromeTraceWriter {
            out: "{\n  \"traceEvents\": [\n".to_owned(),
            first: true,
        }
    }

    /// Append one pre-rendered event object (no surrounding separators).
    pub fn raw_event(&mut self, line: &str) {
        if !self.first {
            self.out.push_str(",\n");
        }
        self.first = false;
        self.out.push_str("    ");
        self.out.push_str(line);
    }

    /// A `thread_name` metadata record naming track `tid` of `pid`.
    pub fn thread_name(&mut self, pid: u32, tid: u64, name: &str) {
        self.raw_event(&format!(
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\
             \"args\":{{\"name\":{}}}}}",
            json_string(name)
        ));
    }

    /// A complete (`"ph":"X"`) event spanning `[ts, ts+dur]` on one track.
    /// `args` is a pre-rendered JSON object (pass `"{}"` for none).
    pub fn complete(&mut self, name: &str, cat: &str, ts: u64, dur: u64, tid: u64, args: &str) {
        self.raw_event(&format!(
            "{{\"name\":{},\"ph\":\"X\",\"ts\":{ts},\"dur\":{dur},\"pid\":0,\"tid\":{tid},\
             \"cat\":\"{cat}\",\"args\":{args}}}",
            json_string(name)
        ));
    }

    /// A thread-scoped instant (`"ph":"i"`) event.
    pub fn instant(&mut self, name: &str, cat: &str, ts: u64, tid: u64, args: &str) {
        self.raw_event(&format!(
            "{{\"name\":{},\"ph\":\"i\",\"ts\":{ts},\"s\":\"t\",\"pid\":0,\"tid\":{tid},\
             \"cat\":\"{cat}\",\"args\":{args}}}",
            json_string(name)
        ));
    }

    /// A counter (`"ph":"C"`) sample — Perfetto renders these as a value
    /// track (e.g. queue depth over time).
    pub fn counter(&mut self, name: &str, ts: u64, value: u64) {
        self.raw_event(&format!(
            "{{\"name\":{},\"ph\":\"C\",\"ts\":{ts},\"pid\":0,\"tid\":0,\
             \"cat\":\"counter\",\"args\":{{\"value\":{value}}}}}",
            json_string(name)
        ));
    }

    /// Close the array, append `displayTimeUnit` and the `otherData`
    /// trailer (`other` values are pre-rendered JSON), and return the
    /// finished document.
    pub fn finish(mut self, other: &[(&str, String)]) -> String {
        self.out.push_str("\n  ],\n");
        self.out
            .push_str("  \"displayTimeUnit\": \"ms\",\n  \"otherData\": {\n");
        for (i, (name, value)) in other.iter().enumerate() {
            let _ = write!(self.out, "    \"{name}\": {value}");
            self.out
                .push_str(if i + 1 < other.len() { ",\n" } else { "\n" });
        }
        self.out.push_str("  }\n}\n");
        self.out
    }
}

/// Render a recorded trace as Chrome trace-event JSON.
///
/// Mapping: one process (`pid` 0, the SM); one thread per warp (`tid` =
/// warp slot, named `warp N (sched S)`); issues and stalls are complete
/// (`"ph":"X"`) events one cycle long; barrier releases and warp exits
/// are instant (`"ph":"i"`) events. Timestamps are shader *cycles*, not
/// microseconds — `otherData.unit` records this.
pub fn chrome_trace(buffer: &TraceBuffer, kernel: &Kernel, schedulers: u32) -> String {
    let mut writer = ChromeTraceWriter::new();

    // Thread-name metadata for every warp that appears.
    let mut warps: Vec<u16> = buffer.events.iter().map(|e| e.warp).collect();
    warps.sort_unstable();
    warps.dedup();
    for &w in &warps {
        let sched = u32::from(w) % schedulers.max(1);
        writer.thread_name(0, u64::from(w), &format!("warp {w} (sched {sched})"));
    }

    for e in &buffer.events {
        let name = match e.kind {
            TraceEventKind::Issue { .. } => kernel
                .code
                .get(e.pc as usize)
                .map(|inst| inst.to_string())
                .unwrap_or_else(|| format!("pc {:#x}", e.pc)),
            TraceEventKind::Stall(kind) => format!("stall:{}", kind.as_str()),
            TraceEventKind::BarrierRelease => "barrier_release".to_owned(),
            TraceEventKind::WarpExit => "warp_exit".to_owned(),
        };
        let mut line = String::new();
        let _ = write!(
            line,
            "{{\"name\":{},\"ph\":\"{}\",\"ts\":{},",
            json_string(&name),
            match e.kind {
                TraceEventKind::Issue { .. } | TraceEventKind::Stall(_) => "X",
                TraceEventKind::BarrierRelease | TraceEventKind::WarpExit => "i",
            },
            e.cycle
        );
        if matches!(
            e.kind,
            TraceEventKind::Issue { .. } | TraceEventKind::Stall(_)
        ) {
            line.push_str("\"dur\":1,");
        }
        if matches!(
            e.kind,
            TraceEventKind::BarrierRelease | TraceEventKind::WarpExit
        ) {
            line.push_str("\"s\":\"t\",");
        }
        let _ = write!(line, "\"pid\":0,\"tid\":{},", e.warp);
        let cat = match e.kind {
            TraceEventKind::Issue { .. } => "issue",
            TraceEventKind::Stall(_) => "stall",
            TraceEventKind::BarrierRelease => "barrier",
            TraceEventKind::WarpExit => "exit",
        };
        let _ = write!(line, "\"cat\":\"{cat}\",");
        match e.kind {
            TraceEventKind::Issue { lanes, dual } => {
                let _ = write!(
                    line,
                    "\"args\":{{\"pc\":{},\"scheduler\":{},\"lanes\":{lanes},\"dual\":{dual}}}}}",
                    e.pc, e.scheduler
                );
            }
            _ => {
                let _ = write!(line, "\"args\":{{\"scheduler\":{}}}}}", e.scheduler);
            }
        }
        writer.raw_event(&line);
    }
    writer.finish(&[
        ("kernel", json_string(&kernel.name)),
        ("unit", "\"shader cycles\"".to_owned()),
        ("schedulers", schedulers.to_string()),
        ("dropped_events", buffer.dropped.to_string()),
    ])
}

/// Escape a string per RFC 8259.
pub(crate) fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(cycle: u64, warp: u16, kind: TraceEventKind) -> TraceEvent {
        TraceEvent {
            cycle,
            scheduler: (warp % 2) as u8,
            warp,
            pc: 0,
            kind,
        }
    }

    #[test]
    fn buffer_caps_and_counts_drops() {
        let mut buf = TraceBuffer::with_limit(2);
        for i in 0..5 {
            buf.record(ev(i, 0, TraceEventKind::Stall(StallKind::Scoreboard)));
        }
        assert_eq!(buf.len(), 2);
        assert_eq!(buf.dropped(), 3);
        assert!(!buf.is_empty());
    }

    #[test]
    fn tee_feeds_both_sinks() {
        let mut a = TraceBuffer::new();
        let mut b = TraceBuffer::new();
        let mut tee = Tee(&mut a, &mut b);
        tee.record(ev(1, 3, TraceEventKind::WarpExit));
        assert_eq!(a.len(), 1);
        assert_eq!(b.len(), 1);
        assert_eq!(a.events()[0], b.events()[0]);
    }

    #[test]
    fn noop_sink_is_disabled() {
        const {
            assert!(!NoopSink::ENABLED);
            assert!(TraceBuffer::ENABLED);
            assert!(<Tee<'_, NoopSink, TraceBuffer> as TraceSink>::ENABLED);
            assert!(!<Tee<'_, NoopSink, NoopSink> as TraceSink>::ENABLED);
        }
    }

    #[test]
    fn chrome_trace_is_balanced_json() {
        let mut buf = TraceBuffer::new();
        buf.record(ev(
            0,
            0,
            TraceEventKind::Issue {
                lanes: 32,
                dual: false,
            },
        ));
        buf.record(ev(1, 1, TraceEventKind::Stall(StallKind::Pipe)));
        buf.record(ev(2, 0, TraceEventKind::BarrierRelease));
        buf.record(ev(3, 1, TraceEventKind::WarpExit));
        let kernel = Kernel::new("t");
        let json = chrome_trace(&buf, &kernel, 2);
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains("stall:pipe"));
        assert!(json.contains("warp_exit"));
        assert!(json.contains("\"unit\": \"shader cycles\""));
    }
}
