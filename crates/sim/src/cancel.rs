//! Cooperative cancellation for long-running simulations.
//!
//! A [`CancelToken`] is a cheap, cloneable handle shared between a host
//! (a service worker enforcing a deadline, a user pressing Ctrl-C) and a
//! running [`TimingSim`](crate::timing::TimingSim). The simulator polls
//! the token every [`CHECK_INTERVAL_CYCLES`] simulated cycles — one
//! relaxed atomic load on the hot path, plus one `Instant::now()` per
//! check when a wall-clock deadline is armed — and aborts with a typed
//! [`SimError`](crate::SimError) carrying the same per-warp scheduling
//! snapshot the step-limit watchdog produces, so a cancelled run is
//! debuggable rather than opaque.
//!
//! Cancellation is strictly cooperative and observational: a token that
//! never fires leaves the simulated cycle count bit-identical to a run
//! without any token (locked by test in `timing::sm`).
//!
//! Three trigger paths, all funneled through [`CancelToken::fire_state`]:
//!
//! * [`CancelToken::cancel`] — an explicit host-side request
//!   (service shutdown, user abort);
//! * a wall-clock deadline armed with [`CancelToken::with_deadline`] —
//!   the per-job budget of the simulation service;
//! * a simulated-cycle trigger armed with
//!   [`CancelToken::cancel_at_cycle`] — deterministic by construction,
//!   used by tests to prove cancelled runs leave consistent state.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How often (in simulated cycles) the timing loop polls its token.
///
/// Small enough that a deadline trips within a fraction of a millisecond
/// of host time even for slow cycles, large enough that the poll —
/// a relaxed load — is unmeasurable against the per-cycle work.
pub const CHECK_INTERVAL_CYCLES: u64 = 1024;

/// Why a poll decided the run must stop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CancelCause {
    /// [`CancelToken::cancel`] was called (or a cycle trigger fired).
    Cancelled,
    /// The wall-clock deadline armed at token creation has passed.
    DeadlineExceeded,
}

#[derive(Debug)]
struct Inner {
    cancelled: AtomicBool,
    /// Simulated cycle at or after which the token fires
    /// (`u64::MAX` = never).
    cancel_at_cycle: AtomicU64,
    /// Wall-clock point after which the token fires.
    deadline: Option<Instant>,
    /// The deadline's original budget, for diagnostics.
    deadline_ms: u64,
}

/// A cloneable cancellation handle (see the module docs).
#[derive(Debug, Clone)]
pub struct CancelToken {
    inner: Arc<Inner>,
}

impl Default for CancelToken {
    fn default() -> CancelToken {
        CancelToken::new()
    }
}

impl CancelToken {
    /// A token that only fires on an explicit [`CancelToken::cancel`] (or
    /// an armed cycle trigger).
    pub fn new() -> CancelToken {
        CancelToken {
            inner: Arc::new(Inner {
                cancelled: AtomicBool::new(false),
                cancel_at_cycle: AtomicU64::new(u64::MAX),
                deadline: None,
                deadline_ms: 0,
            }),
        }
    }

    /// A token that additionally fires once `budget` of wall-clock time
    /// has elapsed from now.
    pub fn with_deadline(budget: Duration) -> CancelToken {
        CancelToken {
            inner: Arc::new(Inner {
                cancelled: AtomicBool::new(false),
                cancel_at_cycle: AtomicU64::new(u64::MAX),
                deadline: Some(Instant::now() + budget),
                deadline_ms: budget.as_millis().min(u128::from(u64::MAX)) as u64,
            }),
        }
    }

    /// Request cancellation. Idempotent; visible to every clone.
    pub fn cancel(&self) {
        self.inner.cancelled.store(true, Ordering::Relaxed);
    }

    /// Arm a deterministic trigger: polls at simulated cycle >= `cycle`
    /// report [`CancelCause::Cancelled`]. Because the simulator polls on a
    /// fixed cycle grid, the abort point is a pure function of `cycle` —
    /// the determinism the cancellation tests rely on.
    pub fn cancel_at_cycle(&self, cycle: u64) {
        self.inner.cancel_at_cycle.store(cycle, Ordering::Relaxed);
    }

    /// Whether [`CancelToken::cancel`] has been called.
    pub fn is_cancelled(&self) -> bool {
        self.inner.cancelled.load(Ordering::Relaxed)
    }

    /// The deadline budget in milliseconds (0 when no deadline is armed).
    pub fn deadline_ms(&self) -> u64 {
        self.inner.deadline_ms
    }

    /// Poll the token at simulated cycle `cycle`: `None` to keep running.
    ///
    /// This is the (cold-path) check the timing loop performs every
    /// [`CHECK_INTERVAL_CYCLES`]; explicit cancellation wins over the
    /// deadline when both have fired.
    pub fn fire_state(&self, cycle: u64) -> Option<CancelCause> {
        if self.inner.cancelled.load(Ordering::Relaxed)
            || cycle >= self.inner.cancel_at_cycle.load(Ordering::Relaxed)
        {
            return Some(CancelCause::Cancelled);
        }
        if let Some(deadline) = self.inner.deadline {
            if Instant::now() >= deadline {
                return Some(CancelCause::DeadlineExceeded);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_token_never_fires_on_its_own() {
        let t = CancelToken::new();
        assert_eq!(t.fire_state(0), None);
        assert_eq!(t.fire_state(u64::MAX - 1), None);
        assert!(!t.is_cancelled());
        assert_eq!(t.deadline_ms(), 0);
    }

    #[test]
    fn cancel_is_visible_to_clones() {
        let t = CancelToken::new();
        let clone = t.clone();
        t.cancel();
        assert!(clone.is_cancelled());
        assert_eq!(clone.fire_state(0), Some(CancelCause::Cancelled));
    }

    #[test]
    fn cycle_trigger_fires_at_or_after_the_armed_cycle() {
        let t = CancelToken::new();
        t.cancel_at_cycle(5000);
        assert_eq!(t.fire_state(4999), None);
        assert_eq!(t.fire_state(5000), Some(CancelCause::Cancelled));
        assert_eq!(t.fire_state(1_000_000), Some(CancelCause::Cancelled));
    }

    #[test]
    fn elapsed_deadline_fires() {
        let t = CancelToken::with_deadline(Duration::ZERO);
        // The deadline is `now`, so any later poll must fire.
        std::thread::sleep(Duration::from_millis(1));
        assert_eq!(t.fire_state(0), Some(CancelCause::DeadlineExceeded));
        assert_eq!(t.deadline_ms(), 0);
        let generous = CancelToken::with_deadline(Duration::from_secs(3600));
        assert_eq!(generous.fire_state(0), None);
        assert_eq!(generous.deadline_ms(), 3_600_000);
    }

    #[test]
    fn explicit_cancel_wins_over_deadline() {
        let t = CancelToken::with_deadline(Duration::ZERO);
        std::thread::sleep(Duration::from_millis(1));
        t.cancel();
        assert_eq!(t.fire_state(0), Some(CancelCause::Cancelled));
    }
}
