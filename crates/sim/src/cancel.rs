//! Cooperative cancellation for long-running simulations.
//!
//! A [`CancelToken`] is a cheap, cloneable handle shared between a host
//! (a service worker enforcing a deadline, a user pressing Ctrl-C) and a
//! running [`TimingSim`](crate::timing::TimingSim). The simulator polls
//! the token every [`CHECK_INTERVAL_CYCLES`] simulated cycles — one
//! relaxed atomic load on the hot path, plus one `Instant::now()` per
//! check when a wall-clock deadline is armed — and aborts with a typed
//! [`SimError`](crate::SimError) carrying the same per-warp scheduling
//! snapshot the step-limit watchdog produces, so a cancelled run is
//! debuggable rather than opaque.
//!
//! Cancellation is strictly cooperative and observational: a token that
//! never fires leaves the simulated cycle count bit-identical to a run
//! without any token (locked by test in `timing::sm`).
//!
//! Three trigger paths, all funneled through [`CancelToken::fire_state`]:
//!
//! * [`CancelToken::cancel`] — an explicit host-side request
//!   (service shutdown, user abort);
//! * a wall-clock deadline armed with [`CancelToken::with_deadline`] —
//!   the per-job budget of the simulation service;
//! * a simulated-cycle trigger armed with
//!   [`CancelToken::cancel_at_cycle`] — deterministic by construction,
//!   used by tests to prove cancelled runs leave consistent state.
//!
//! Whichever path fires first is recorded as a [`CancelSource`]
//! (`api | cycle | deadline | shutdown`), queryable with
//! [`CancelToken::fired_source`] — the provenance the service journal
//! attaches to `CancelRequested` events and job results.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How often (in simulated cycles) the timing loop polls its token.
///
/// Small enough that a deadline trips within a fraction of a millisecond
/// of host time even for slow cycles, large enough that the poll —
/// a relaxed load — is unmeasurable against the per-cycle work.
pub const CHECK_INTERVAL_CYCLES: u64 = 1024;

/// Why a poll decided the run must stop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CancelCause {
    /// [`CancelToken::cancel`] was called (or a cycle trigger fired).
    Cancelled,
    /// The wall-clock deadline armed at token creation has passed.
    DeadlineExceeded,
}

/// *Which* trigger path fired a token first — the provenance the service
/// journal records as `CancelRequested{source}` and surfaces on the job
/// result, so a cancelled soak job says whether the API, the cycle grid,
/// a deadline, or shutdown killed it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CancelSource {
    /// An explicit host-side [`CancelToken::cancel`] (cancel-by-id).
    Api,
    /// The deterministic [`CancelToken::cancel_at_cycle`] trigger.
    Cycle,
    /// The wall-clock deadline armed at token creation.
    Deadline,
    /// Service shutdown ([`CancelToken::cancel_from`] with this source).
    Shutdown,
}

impl CancelSource {
    /// Stable tag used in journal events and result documents.
    pub fn as_str(self) -> &'static str {
        match self {
            CancelSource::Api => "api",
            CancelSource::Cycle => "cycle",
            CancelSource::Deadline => "deadline",
            CancelSource::Shutdown => "shutdown",
        }
    }

    fn to_u8(self) -> u8 {
        match self {
            CancelSource::Api => 1,
            CancelSource::Cycle => 2,
            CancelSource::Deadline => 3,
            CancelSource::Shutdown => 4,
        }
    }

    fn from_u8(v: u8) -> Option<CancelSource> {
        match v {
            1 => Some(CancelSource::Api),
            2 => Some(CancelSource::Cycle),
            3 => Some(CancelSource::Deadline),
            4 => Some(CancelSource::Shutdown),
            _ => None,
        }
    }
}

#[derive(Debug)]
struct Inner {
    cancelled: AtomicBool,
    /// Simulated cycle at or after which the token fires
    /// (`u64::MAX` = never).
    cancel_at_cycle: AtomicU64,
    /// Wall-clock point after which the token fires.
    deadline: Option<Instant>,
    /// The deadline's original budget, for diagnostics.
    deadline_ms: u64,
    /// First trigger path that fired (0 = none yet); first writer wins,
    /// so the recorded source names the cause, not a later bystander.
    source: AtomicU8,
}

/// A cloneable cancellation handle (see the module docs).
#[derive(Debug, Clone)]
pub struct CancelToken {
    inner: Arc<Inner>,
}

impl Default for CancelToken {
    fn default() -> CancelToken {
        CancelToken::new()
    }
}

impl CancelToken {
    /// A token that only fires on an explicit [`CancelToken::cancel`] (or
    /// an armed cycle trigger).
    pub fn new() -> CancelToken {
        CancelToken {
            inner: Arc::new(Inner {
                cancelled: AtomicBool::new(false),
                cancel_at_cycle: AtomicU64::new(u64::MAX),
                deadline: None,
                deadline_ms: 0,
                source: AtomicU8::new(0),
            }),
        }
    }

    /// A token that additionally fires once `budget` of wall-clock time
    /// has elapsed from now.
    pub fn with_deadline(budget: Duration) -> CancelToken {
        CancelToken {
            inner: Arc::new(Inner {
                cancelled: AtomicBool::new(false),
                cancel_at_cycle: AtomicU64::new(u64::MAX),
                deadline: Some(Instant::now() + budget),
                deadline_ms: budget.as_millis().min(u128::from(u64::MAX)) as u64,
                source: AtomicU8::new(0),
            }),
        }
    }

    /// Request cancellation. Idempotent; visible to every clone. Tagged
    /// [`CancelSource::Api`]; use [`CancelToken::cancel_from`] for other
    /// provenances.
    pub fn cancel(&self) {
        self.cancel_from(CancelSource::Api);
    }

    /// [`CancelToken::cancel`] with an explicit provenance tag (e.g.
    /// [`CancelSource::Shutdown`] when a service tears down in-flight
    /// work). The first recorded source wins.
    pub fn cancel_from(&self, source: CancelSource) {
        self.tag(source);
        self.inner.cancelled.store(true, Ordering::Relaxed);
    }

    fn tag(&self, source: CancelSource) {
        let _ = self.inner.source.compare_exchange(
            0,
            source.to_u8(),
            Ordering::Relaxed,
            Ordering::Relaxed,
        );
    }

    /// The first trigger path that fired this token, once one has.
    pub fn fired_source(&self) -> Option<CancelSource> {
        CancelSource::from_u8(self.inner.source.load(Ordering::Relaxed))
    }

    /// Arm a deterministic trigger: polls at simulated cycle >= `cycle`
    /// report [`CancelCause::Cancelled`]. Because the simulator polls on a
    /// fixed cycle grid, the abort point is a pure function of `cycle` —
    /// the determinism the cancellation tests rely on.
    pub fn cancel_at_cycle(&self, cycle: u64) {
        self.inner.cancel_at_cycle.store(cycle, Ordering::Relaxed);
    }

    /// Whether [`CancelToken::cancel`] has been called.
    pub fn is_cancelled(&self) -> bool {
        self.inner.cancelled.load(Ordering::Relaxed)
    }

    /// The deadline budget in milliseconds (0 when no deadline is armed).
    pub fn deadline_ms(&self) -> u64 {
        self.inner.deadline_ms
    }

    /// Poll the token at simulated cycle `cycle`: `None` to keep running.
    ///
    /// This is the (cold-path) check the timing loop performs every
    /// [`CHECK_INTERVAL_CYCLES`]; explicit cancellation wins over the
    /// deadline when both have fired.
    pub fn fire_state(&self, cycle: u64) -> Option<CancelCause> {
        if self.inner.cancelled.load(Ordering::Relaxed) {
            // cancel()/cancel_from() already tagged the source.
            return Some(CancelCause::Cancelled);
        }
        if cycle >= self.inner.cancel_at_cycle.load(Ordering::Relaxed) {
            self.tag(CancelSource::Cycle);
            return Some(CancelCause::Cancelled);
        }
        if let Some(deadline) = self.inner.deadline {
            if Instant::now() >= deadline {
                self.tag(CancelSource::Deadline);
                return Some(CancelCause::DeadlineExceeded);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_token_never_fires_on_its_own() {
        let t = CancelToken::new();
        assert_eq!(t.fire_state(0), None);
        assert_eq!(t.fire_state(u64::MAX - 1), None);
        assert!(!t.is_cancelled());
        assert_eq!(t.deadline_ms(), 0);
    }

    #[test]
    fn cancel_is_visible_to_clones() {
        let t = CancelToken::new();
        let clone = t.clone();
        t.cancel();
        assert!(clone.is_cancelled());
        assert_eq!(clone.fire_state(0), Some(CancelCause::Cancelled));
    }

    #[test]
    fn cycle_trigger_fires_at_or_after_the_armed_cycle() {
        let t = CancelToken::new();
        t.cancel_at_cycle(5000);
        assert_eq!(t.fire_state(4999), None);
        assert_eq!(t.fire_state(5000), Some(CancelCause::Cancelled));
        assert_eq!(t.fire_state(1_000_000), Some(CancelCause::Cancelled));
    }

    #[test]
    fn elapsed_deadline_fires() {
        let t = CancelToken::with_deadline(Duration::ZERO);
        // The deadline is `now`, so any later poll must fire.
        std::thread::sleep(Duration::from_millis(1));
        assert_eq!(t.fire_state(0), Some(CancelCause::DeadlineExceeded));
        assert_eq!(t.deadline_ms(), 0);
        let generous = CancelToken::with_deadline(Duration::from_secs(3600));
        assert_eq!(generous.fire_state(0), None);
        assert_eq!(generous.deadline_ms(), 3_600_000);
    }

    #[test]
    fn explicit_cancel_wins_over_deadline() {
        let t = CancelToken::with_deadline(Duration::ZERO);
        std::thread::sleep(Duration::from_millis(1));
        t.cancel();
        assert_eq!(t.fire_state(0), Some(CancelCause::Cancelled));
        assert_eq!(t.fired_source(), Some(CancelSource::Api));
    }

    #[test]
    fn fired_source_names_the_trigger_path() {
        let api = CancelToken::new();
        assert_eq!(api.fired_source(), None, "unfired token has no source");
        api.cancel();
        assert_eq!(api.fired_source(), Some(CancelSource::Api));

        let cycle = CancelToken::new();
        cycle.cancel_at_cycle(100);
        assert_eq!(cycle.fired_source(), None, "armed but not yet polled");
        assert_eq!(cycle.fire_state(100), Some(CancelCause::Cancelled));
        assert_eq!(cycle.fired_source(), Some(CancelSource::Cycle));

        let deadline = CancelToken::with_deadline(Duration::ZERO);
        std::thread::sleep(Duration::from_millis(1));
        assert_eq!(deadline.fire_state(0), Some(CancelCause::DeadlineExceeded));
        assert_eq!(deadline.fired_source(), Some(CancelSource::Deadline));

        let shutdown = CancelToken::new();
        shutdown.cancel_from(CancelSource::Shutdown);
        assert_eq!(shutdown.fired_source(), Some(CancelSource::Shutdown));
    }

    #[test]
    fn first_fired_source_wins() {
        // A cycle trigger that fired first is not re-attributed to a
        // later explicit cancel (the journal must name the real cause).
        let t = CancelToken::new();
        t.cancel_at_cycle(10);
        assert_eq!(t.fire_state(10), Some(CancelCause::Cancelled));
        t.cancel();
        assert_eq!(t.fired_source(), Some(CancelSource::Cycle));
        // Source is visible across clones like the flag itself.
        assert_eq!(t.clone().fired_source(), Some(CancelSource::Cycle));
    }
}
