//! Functional execution of warp instructions (shared by the functional and
//! timing engines).

use peakperf_sass::{Instruction, MemSpace, MemWidth, Op, Operand, SpecialReg};

use crate::warp::{StepEvent, WarpState};
use crate::{Dim3, GlobalMemory, SimError};

/// Identification of a block within the grid plus launch geometry, used to
/// materialize special registers.
#[derive(Debug, Clone, Copy)]
pub struct BlockCtx {
    /// Block index.
    pub ctaid: Dim3,
    /// Block dimensions.
    pub ntid: Dim3,
    /// Grid dimensions.
    pub nctaid: Dim3,
}

/// Mutable memory context for a block's warps.
pub struct MemCtx<'a> {
    /// Global memory of the GPU.
    pub global: &'a mut GlobalMemory,
    /// The block's shared memory.
    pub shared: &'a mut [u8],
    /// Per-thread local (spill) memory for the whole block:
    /// `local_bytes` bytes per thread, indexed by linear thread id.
    pub local: &'a mut [u8],
    /// Per-thread local size in bytes.
    pub local_bytes: u32,
    /// Constant bank 0 contents from [`peakperf_sass::PARAM_BASE`] onward
    /// (the kernel parameters).
    pub params: &'a [u32],
}

/// Addresses touched by one memory warp-instruction (used by the timing
/// model for coalescing and bank-conflict analysis).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemAccess {
    /// Address space.
    pub space: MemSpace,
    /// Access width.
    pub width: MemWidth,
    /// Whether this was a store.
    pub store: bool,
    /// Per-lane base byte addresses (active lanes only).
    pub addrs: Vec<u32>,
}

/// The outcome of executing one warp instruction.
#[derive(Debug, Default)]
pub struct ExecOutcome {
    /// Memory access record, if the instruction touched memory.
    pub mem: Option<MemAccess>,
}

fn lane_linear_tid(warp_id: u32, lane: usize) -> u32 {
    warp_id * 32 + lane as u32
}

fn special_value(ctx: &BlockCtx, warp_id: u32, lane: usize, sr: SpecialReg) -> u32 {
    let t = lane_linear_tid(warp_id, lane);
    let nx = ctx.ntid.x.max(1);
    let ny = ctx.ntid.y.max(1);
    match sr {
        SpecialReg::TidX => t % nx,
        SpecialReg::TidY => (t / nx) % ny,
        SpecialReg::TidZ => t / (nx * ny),
        SpecialReg::CtaidX => ctx.ctaid.x,
        SpecialReg::CtaidY => ctx.ctaid.y,
        SpecialReg::CtaidZ => ctx.ctaid.z,
        SpecialReg::NtidX => ctx.ntid.x,
        SpecialReg::NtidY => ctx.ntid.y,
        SpecialReg::NtidZ => ctx.ntid.z,
        SpecialReg::NctaidX => ctx.nctaid.x,
        SpecialReg::NctaidY => ctx.nctaid.y,
        SpecialReg::LaneId => lane as u32,
    }
}

fn read_const(mem: &MemCtx<'_>, block: &BlockCtx, offset: u32) -> Result<u32, SimError> {
    use peakperf_sass::PARAM_BASE;
    if offset < PARAM_BASE {
        // The sub-0x20 area mirrors launch geometry, as on Fermi.
        return Ok(match offset {
            0x0 => block.ntid.x,
            0x4 => block.ntid.y,
            0x8 => block.ntid.z,
            0xc => block.nctaid.x,
            0x10 => block.nctaid.y,
            _ => 0,
        });
    }
    let idx = ((offset - PARAM_BASE) / 4) as usize;
    mem.params.get(idx).copied().ok_or(SimError::OutOfBounds {
        space: "const",
        addr: u64::from(offset),
        size: u64::from(PARAM_BASE) + 4 * mem.params.len() as u64,
    })
}

fn operand_value(
    warp: &WarpState,
    lane: usize,
    op: Operand,
    mem: &MemCtx<'_>,
    block: &BlockCtx,
) -> Result<u32, SimError> {
    match op {
        Operand::Reg(r) => Ok(warp.reg(lane, r)),
        Operand::Imm(v) => Ok(v as u32),
        Operand::Const { offset, .. } => read_const(mem, block, offset),
    }
}

fn shared_access(shared: &mut [u8], addr: u32, width: MemWidth) -> Result<usize, SimError> {
    let bytes = width.bytes();
    if !addr.is_multiple_of(bytes) {
        return Err(SimError::Misaligned {
            space: "shared",
            addr: u64::from(addr),
            align: bytes,
        });
    }
    if u64::from(addr) + u64::from(bytes) > shared.len() as u64 {
        return Err(SimError::OutOfBounds {
            space: "shared",
            addr: u64::from(addr),
            size: shared.len() as u64,
        });
    }
    Ok(addr as usize)
}

fn local_access(local_bytes: u32, addr: u32, width: MemWidth) -> Result<usize, SimError> {
    let bytes = width.bytes();
    if !addr.is_multiple_of(bytes) {
        return Err(SimError::Misaligned {
            space: "local",
            addr: u64::from(addr),
            align: bytes,
        });
    }
    if u64::from(addr) + u64::from(bytes) > u64::from(local_bytes) {
        return Err(SimError::OutOfBounds {
            space: "local",
            addr: u64::from(addr),
            size: u64::from(local_bytes),
        });
    }
    Ok(addr as usize)
}

/// Read a little-endian word out of a byte buffer without the panicking
/// `try_into().unwrap()` slice conversion.
fn read_word(buf: &[u8], i: usize) -> u32 {
    let mut b = [0u8; 4];
    b.copy_from_slice(&buf[i..i + 4]);
    u32::from_le_bytes(b)
}

fn global_check(_global: &GlobalMemory, addr: u32, width: MemWidth) -> Result<(), SimError> {
    if !addr.is_multiple_of(width.bytes()) {
        return Err(SimError::Misaligned {
            space: "global",
            addr: u64::from(addr),
            align: width.bytes(),
        });
    }
    Ok(())
}

/// Execute one non-control instruction for the lanes in `exec_mask`.
///
/// Control flow (`BRA`, `EXIT`, `BAR`) is handled by [`step_warp`]; passing
/// such an instruction here is a no-op.
///
/// # Errors
///
/// Propagates memory faults.
pub fn execute_op(
    inst: &Instruction,
    warp: &mut WarpState,
    exec_mask: u32,
    mem: &mut MemCtx<'_>,
    block: &BlockCtx,
) -> Result<ExecOutcome, SimError> {
    let mut outcome = ExecOutcome::default();
    let lanes = (0..32usize).filter(|&l| exec_mask & (1 << l) != 0);
    match inst.op {
        Op::Nop | Op::Exit | Op::Bra { .. } | Op::Bar => {}
        Op::Mov { dst, src } => {
            for l in lanes {
                let v = operand_value(warp, l, src, mem, block)?;
                warp.set_reg(l, dst, v);
            }
        }
        Op::Mov32i { dst, imm } => {
            for l in lanes {
                warp.set_reg(l, dst, imm);
            }
        }
        Op::S2r { dst, sr } => {
            for l in lanes {
                let v = special_value(block, warp.warp_id, l, sr);
                warp.set_reg(l, dst, v);
            }
        }
        Op::Fadd { dst, a, b } => {
            for l in lanes {
                let av = f32::from_bits(warp.reg(l, a));
                let bv = f32::from_bits(operand_value(warp, l, b, mem, block)?);
                warp.set_reg(l, dst, (av + bv).to_bits());
            }
        }
        Op::Fmul { dst, a, b } => {
            for l in lanes {
                let av = f32::from_bits(warp.reg(l, a));
                let bv = f32::from_bits(operand_value(warp, l, b, mem, block)?);
                warp.set_reg(l, dst, (av * bv).to_bits());
            }
        }
        Op::Ffma { dst, a, b, c } => {
            for l in lanes {
                let av = f32::from_bits(warp.reg(l, a));
                let bv = f32::from_bits(operand_value(warp, l, b, mem, block)?);
                let cv = f32::from_bits(warp.reg(l, c));
                warp.set_reg(l, dst, av.mul_add(bv, cv).to_bits());
            }
        }
        Op::Iadd { dst, a, b } => {
            for l in lanes {
                let av = warp.reg(l, a);
                let bv = operand_value(warp, l, b, mem, block)?;
                warp.set_reg(l, dst, av.wrapping_add(bv));
            }
        }
        Op::Imul { dst, a, b } => {
            for l in lanes {
                let av = warp.reg(l, a);
                let bv = operand_value(warp, l, b, mem, block)?;
                warp.set_reg(l, dst, av.wrapping_mul(bv));
            }
        }
        Op::Imad { dst, a, b, c } => {
            for l in lanes {
                let av = warp.reg(l, a);
                let bv = operand_value(warp, l, b, mem, block)?;
                let cv = warp.reg(l, c);
                warp.set_reg(l, dst, av.wrapping_mul(bv).wrapping_add(cv));
            }
        }
        Op::Iscadd { dst, a, b, shift } => {
            for l in lanes {
                let av = warp.reg(l, a);
                let bv = operand_value(warp, l, b, mem, block)?;
                warp.set_reg(l, dst, av.wrapping_shl(u32::from(shift)).wrapping_add(bv));
            }
        }
        Op::Shl { dst, a, b } => {
            for l in lanes {
                let av = warp.reg(l, a);
                let bv = operand_value(warp, l, b, mem, block)? & 31;
                warp.set_reg(l, dst, av << bv);
            }
        }
        Op::Shr { dst, a, b } => {
            for l in lanes {
                let av = warp.reg(l, a);
                let bv = operand_value(warp, l, b, mem, block)? & 31;
                warp.set_reg(l, dst, av >> bv);
            }
        }
        Op::Lop { op, dst, a, b } => {
            for l in lanes {
                let av = warp.reg(l, a);
                let bv = operand_value(warp, l, b, mem, block)?;
                warp.set_reg(l, dst, op.eval(av, bv));
            }
        }
        Op::Isetp { p, cmp, a, b } => {
            for l in lanes {
                let av = warp.reg(l, a) as i32;
                let bv = operand_value(warp, l, b, mem, block)? as i32;
                warp.set_pred(l, p, cmp.eval(av, bv));
            }
        }
        Op::Ldc { dst, offset, .. } => {
            for l in lanes {
                let v = read_const(mem, block, offset)?;
                warp.set_reg(l, dst, v);
            }
        }
        Op::Ld {
            space,
            width,
            dst,
            addr,
            offset,
        } => {
            let mut addrs = Vec::new();
            for l in lanes {
                let base = warp.reg(l, addr).wrapping_add(offset as u32);
                addrs.push(base);
                for w in 0..width.words() {
                    let value = match space {
                        MemSpace::Global => {
                            global_check(mem.global, base, width)?;
                            mem.global.read_u32(base + 4 * w)?
                        }
                        MemSpace::Shared => {
                            let i = shared_access(mem.shared, base, width)? + 4 * w as usize;
                            read_word(mem.shared, i)
                        }
                        MemSpace::Local => {
                            let t = lane_linear_tid(warp.warp_id, l) as usize;
                            let i = t * mem.local_bytes as usize
                                + local_access(mem.local_bytes, base, width)?
                                + 4 * w as usize;
                            read_word(mem.local, i)
                        }
                    };
                    // `offset_checked` keeps this total on unvalidated
                    // kernels; a slot at/past RZ discards the word (the
                    // memory access itself still happened above).
                    if let Some(r) = dst.offset_checked(w as u8) {
                        warp.set_reg(l, r, value);
                    }
                }
            }
            outcome.mem = Some(MemAccess {
                space,
                width,
                store: false,
                addrs,
            });
        }
        Op::St {
            space,
            width,
            src,
            addr,
            offset,
        } => {
            let mut addrs = Vec::new();
            for l in lanes {
                let base = warp.reg(l, addr).wrapping_add(offset as u32);
                addrs.push(base);
                for w in 0..width.words() {
                    // RZ (or a slot past the file) sources zero — `ST
                    // [addr], RZ` is the store-zero idiom.
                    let value = src.offset_checked(w as u8).map_or(0, |r| warp.reg(l, r));
                    match space {
                        MemSpace::Global => {
                            global_check(mem.global, base, width)?;
                            mem.global.write_u32(base + 4 * w, value)?;
                        }
                        MemSpace::Shared => {
                            let i = shared_access(mem.shared, base, width)? + 4 * w as usize;
                            mem.shared[i..i + 4].copy_from_slice(&value.to_le_bytes());
                        }
                        MemSpace::Local => {
                            let t = lane_linear_tid(warp.warp_id, l) as usize;
                            let i = t * mem.local_bytes as usize
                                + local_access(mem.local_bytes, base, width)?
                                + 4 * w as usize;
                            mem.local[i..i + 4].copy_from_slice(&value.to_le_bytes());
                        }
                    }
                }
            }
            outcome.mem = Some(MemAccess {
                space,
                width,
                store: true,
                addrs,
            });
        }
    }
    Ok(outcome)
}

/// Result of [`step_warp`]: the event plus the executed instruction's
/// outcome (memory record) when an instruction actually executed.
#[derive(Debug)]
pub struct StepResult {
    /// What happened.
    pub event: StepEvent,
    /// Memory access of the executed instruction, if any.
    pub mem: Option<MemAccess>,
}

/// Execute one min-PC group step of a warp.
///
/// Returns [`StepEvent::AtBarrier`] *without advancing* when the group
/// reaches a barrier (the caller releases it with [`release_barrier`] once
/// every warp in the block has arrived).
///
/// # Errors
///
/// Propagates memory faults; reports [`SimError::DivergentBarrier`] when a
/// barrier is reached by a diverged warp and [`SimError::RanOffEnd`] when
/// the PC leaves the instruction stream.
pub fn step_warp(
    code: &[Instruction],
    warp: &mut WarpState,
    mem: &mut MemCtx<'_>,
    block: &BlockCtx,
) -> Result<StepResult, SimError> {
    let Some((pc, mask)) = warp.current_group() else {
        return Ok(StepResult {
            event: StepEvent::Exited,
            mem: None,
        });
    };
    let inst = code.get(pc as usize).ok_or(SimError::RanOffEnd)?;

    // Guard evaluation: lanes in the group whose predicate holds.
    let mut exec_mask = 0u32;
    for l in 0..32usize {
        if mask & (1 << l) != 0 {
            let ok = match inst.pred {
                None => true,
                Some(p) => warp.pred(l, p) != inst.pred_neg,
            };
            if ok {
                exec_mask |= 1 << l;
            }
        }
    }

    match inst.op {
        Op::Bar => {
            if exec_mask != warp.running_mask() {
                return Err(SimError::DivergentBarrier { pc });
            }
            Ok(StepResult {
                event: StepEvent::AtBarrier { pc },
                mem: None,
            })
        }
        Op::Exit => {
            warp.exit_lanes(exec_mask);
            warp.advance(mask & !exec_mask, pc);
            let event = if warp.done() {
                StepEvent::Exited
            } else {
                StepEvent::Executed { pc, exec_mask }
            };
            Ok(StepResult { event, mem: None })
        }
        Op::Bra { target } => {
            warp.jump(exec_mask, target);
            warp.advance(mask & !exec_mask, pc);
            Ok(StepResult {
                event: StepEvent::Executed { pc, exec_mask },
                mem: None,
            })
        }
        _ => {
            let outcome = execute_op(inst, warp, exec_mask, mem, block)?;
            warp.advance(mask, pc);
            Ok(StepResult {
                event: StepEvent::Executed { pc, exec_mask },
                mem: outcome.mem,
            })
        }
    }
}

/// Release a warp waiting at the barrier at `pc`: advance every running
/// lane past it.
pub fn release_barrier(warp: &mut WarpState, pc: u32) {
    let mask = warp.running_mask();
    warp.advance(mask, pc);
}

#[cfg(test)]
mod tests {
    use super::*;
    use peakperf_sass::{CmpOp, Pred, Reg};

    fn ctx_1d(threads: u32) -> BlockCtx {
        BlockCtx {
            ctaid: Dim3::new_1d(0),
            ntid: Dim3::new_1d(threads),
            nctaid: Dim3::new_1d(1),
        }
    }

    fn empty_mem(global: &mut GlobalMemory) -> MemCtx<'_> {
        MemCtx {
            global,
            shared: &mut [],
            local: &mut [],
            local_bytes: 0,
            params: &[],
        }
    }

    #[test]
    fn tid_mapping_2d() {
        let block = BlockCtx {
            ctaid: Dim3::new_2d(2, 3),
            ntid: Dim3::new_2d(16, 16),
            nctaid: Dim3::new_2d(4, 4),
        };
        // Thread 35 = warp 1, lane 3 => tid.x = 3, tid.y = 2.
        assert_eq!(special_value(&block, 1, 3, SpecialReg::TidX), 3);
        assert_eq!(special_value(&block, 1, 3, SpecialReg::TidY), 2);
        assert_eq!(special_value(&block, 1, 3, SpecialReg::CtaidY), 3);
        assert_eq!(special_value(&block, 0, 7, SpecialReg::LaneId), 7);
    }

    #[test]
    fn ffma_is_fused() {
        let mut warp = WarpState::new(0, 1);
        let mut global = GlobalMemory::new();
        let mut mem = empty_mem(&mut global);
        let block = ctx_1d(32);
        warp.set_reg(0, Reg::r(1), 3.0f32.to_bits());
        warp.set_reg(0, Reg::r(2), 4.0f32.to_bits());
        warp.set_reg(0, Reg::r(3), 5.0f32.to_bits());
        let inst = Instruction::new(Op::Ffma {
            dst: Reg::r(0),
            a: Reg::r(1),
            b: peakperf_sass::Operand::reg(2),
            c: Reg::r(3),
        });
        execute_op(&inst, &mut warp, 1, &mut mem, &block).unwrap();
        assert_eq!(f32::from_bits(warp.reg(0, Reg::r(0))), 17.0);
    }

    #[test]
    fn divergent_branch_reconverges() {
        // if (tid < 2) r1 = 10 else r1 = 20; r2 = r1 + 1
        let code = vec![
            Instruction::new(Op::S2r {
                dst: Reg::r(0),
                sr: SpecialReg::TidX,
            }),
            Instruction::new(Op::Isetp {
                p: Pred::p(0),
                cmp: CmpOp::Lt,
                a: Reg::r(0),
                b: peakperf_sass::Operand::Imm(2),
            }),
            Instruction::predicated(Pred::p(0), true, Op::Bra { target: 5 }),
            Instruction::new(Op::Mov32i {
                dst: Reg::r(1),
                imm: 20,
            }),
            Instruction::new(Op::Bra { target: 6 }),
            Instruction::new(Op::Mov32i {
                dst: Reg::r(1),
                imm: 10,
            }),
            Instruction::new(Op::Iadd {
                dst: Reg::r(2),
                a: Reg::r(1),
                b: peakperf_sass::Operand::Imm(1),
            }),
            Instruction::new(Op::Exit),
        ];
        let mut warp = WarpState::new(0, 4);
        let mut global = GlobalMemory::new();
        let mut mem = empty_mem(&mut global);
        let block = ctx_1d(4);
        for _ in 0..32 {
            let r = step_warp(&code, &mut warp, &mut mem, &block).unwrap();
            if r.event == StepEvent::Exited {
                break;
            }
        }
        assert!(warp.done());
        // The guard is `@!P0 BRA 5` with P0 = (tid < 2): lanes 2 and 3 take
        // the branch to the r1=10 path; lanes 0 and 1 fall through to r1=20.
        assert_eq!(warp.reg(0, Reg::r(2)), 21);
        assert_eq!(warp.reg(1, Reg::r(2)), 21);
        assert_eq!(warp.reg(2, Reg::r(2)), 11);
        assert_eq!(warp.reg(3, Reg::r(2)), 11);
    }

    #[test]
    fn guarded_lanes_skip_execution() {
        let mut warp = WarpState::new(0, 2);
        warp.set_pred(0, Pred::p(1), true);
        let code = vec![
            Instruction::predicated(
                Pred::p(1),
                false,
                Op::Mov32i {
                    dst: Reg::r(0),
                    imm: 7,
                },
            ),
            Instruction::new(Op::Exit),
        ];
        let mut global = GlobalMemory::new();
        let mut mem = empty_mem(&mut global);
        let block = ctx_1d(2);
        let r = step_warp(&code, &mut warp, &mut mem, &block).unwrap();
        assert_eq!(
            r.event,
            StepEvent::Executed {
                pc: 0,
                exec_mask: 0b01
            }
        );
        assert_eq!(warp.reg(0, Reg::r(0)), 7);
        assert_eq!(warp.reg(1, Reg::r(0)), 0);
    }

    #[test]
    fn shared_memory_round_trip() {
        let mut warp = WarpState::new(0, 2);
        let mut global = GlobalMemory::new();
        let mut shared = vec![0u8; 256];
        let mut mem = MemCtx {
            global: &mut global,
            shared: &mut shared,
            local: &mut [],
            local_bytes: 0,
            params: &[],
        };
        let block = ctx_1d(2);
        warp.set_reg(0, Reg::r(1), 0); // lane 0 -> addr 0
        warp.set_reg(1, Reg::r(1), 8); // lane 1 -> addr 8
        warp.set_reg(0, Reg::r(2), 111);
        warp.set_reg(1, Reg::r(2), 222);
        let st = Instruction::new(Op::St {
            space: MemSpace::Shared,
            width: MemWidth::B32,
            src: Reg::r(2),
            addr: Reg::r(1),
            offset: 4,
        });
        let out = execute_op(&st, &mut warp, 0b11, &mut mem, &block).unwrap();
        assert_eq!(out.mem.as_ref().unwrap().addrs, vec![4, 12]);
        let ld = Instruction::new(Op::Ld {
            space: MemSpace::Shared,
            width: MemWidth::B32,
            dst: Reg::r(3),
            addr: Reg::r(1),
            offset: 4,
        });
        execute_op(&ld, &mut warp, 0b11, &mut mem, &block).unwrap();
        assert_eq!(warp.reg(0, Reg::r(3)), 111);
        assert_eq!(warp.reg(1, Reg::r(3)), 222);
    }

    #[test]
    fn shared_oob_faults() {
        let mut warp = WarpState::new(0, 1);
        let mut global = GlobalMemory::new();
        let mut shared = vec![0u8; 16];
        let mut mem = MemCtx {
            global: &mut global,
            shared: &mut shared,
            local: &mut [],
            local_bytes: 0,
            params: &[],
        };
        let block = ctx_1d(1);
        warp.set_reg(0, Reg::r(1), 16);
        let ld = Instruction::new(Op::Ld {
            space: MemSpace::Shared,
            width: MemWidth::B32,
            dst: Reg::r(3),
            addr: Reg::r(1),
            offset: 0,
        });
        assert!(execute_op(&ld, &mut warp, 1, &mut mem, &block).is_err());
    }

    #[test]
    fn divergent_barrier_detected() {
        // Lane 0 branches PAST the barrier (to just before EXIT), so when
        // the other lane reaches BAR.SYNC the warp is genuinely diverged.
        // (A branch *to* the barrier reconverges there under min-PC
        // scheduling and is legal — covered by the func barrier tests.)
        let code = vec![
            Instruction::new(Op::S2r {
                dst: Reg::r(0),
                sr: SpecialReg::TidX,
            }),
            Instruction::new(Op::Isetp {
                p: Pred::p(0),
                cmp: CmpOp::Lt,
                a: Reg::r(0),
                b: peakperf_sass::Operand::Imm(1),
            }),
            Instruction::predicated(Pred::p(0), false, Op::Bra { target: 5 }),
            Instruction::new(Op::Nop),
            Instruction::new(Op::Bar),
            Instruction::new(Op::Nop),
            Instruction::new(Op::Exit),
        ];
        let mut warp = WarpState::new(0, 2);
        let mut global = GlobalMemory::new();
        let mut mem = empty_mem(&mut global);
        let block = ctx_1d(2);
        let err = loop {
            match step_warp(&code, &mut warp, &mut mem, &block) {
                Ok(r) if r.event == StepEvent::Exited => panic!("should have diverged"),
                Ok(r) if matches!(r.event, StepEvent::AtBarrier { .. }) => {
                    panic!("barrier reached by a diverged warp without error")
                }
                Ok(_) => continue,
                Err(e) => break e,
            }
        };
        assert!(matches!(err, SimError::DivergentBarrier { .. }));
    }

    #[test]
    fn local_memory_is_per_thread() {
        let mut warp = WarpState::new(0, 2);
        let mut global = GlobalMemory::new();
        let mut local = vec![0u8; 2 * 8];
        let mut mem = MemCtx {
            global: &mut global,
            shared: &mut [],
            local: &mut local,
            local_bytes: 8,
            params: &[],
        };
        let block = ctx_1d(2);
        warp.set_reg(0, Reg::r(2), 5);
        warp.set_reg(1, Reg::r(2), 9);
        // Both lanes store to local offset 0; values must not collide.
        let st = Instruction::new(Op::St {
            space: MemSpace::Local,
            width: MemWidth::B32,
            src: Reg::r(2),
            addr: Reg::RZ,
            offset: 0,
        });
        execute_op(&st, &mut warp, 0b11, &mut mem, &block).unwrap();
        let ld = Instruction::new(Op::Ld {
            space: MemSpace::Local,
            width: MemWidth::B32,
            dst: Reg::r(3),
            addr: Reg::RZ,
            offset: 0,
        });
        execute_op(&ld, &mut warp, 0b11, &mut mem, &block).unwrap();
        assert_eq!(warp.reg(0, Reg::r(3)), 5);
        assert_eq!(warp.reg(1, Reg::r(3)), 9);
    }

    #[test]
    fn params_visible_via_const() {
        let mut warp = WarpState::new(0, 1);
        let mut global = GlobalMemory::new();
        let params = [42u32, 77];
        let mut mem = MemCtx {
            global: &mut global,
            shared: &mut [],
            local: &mut [],
            local_bytes: 0,
            params: &params,
        };
        let block = ctx_1d(1);
        let inst = Instruction::new(Op::Ldc {
            dst: Reg::r(0),
            bank: 0,
            offset: peakperf_sass::PARAM_BASE + 4,
        });
        execute_op(&inst, &mut warp, 1, &mut mem, &block).unwrap();
        assert_eq!(warp.reg(0, Reg::r(0)), 77);
        // ntid.x readable below PARAM_BASE
        let inst = Instruction::new(Op::Ldc {
            dst: Reg::r(1),
            bank: 0,
            offset: 0,
        });
        execute_op(&inst, &mut warp, 1, &mut mem, &block).unwrap();
        assert_eq!(warp.reg(0, Reg::r(1)), 1);
    }
}
