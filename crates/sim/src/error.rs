//! Simulator error type.

use std::fmt;

/// Errors raised while simulating a kernel.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// A memory access fell outside the allocated space.
    OutOfBounds {
        /// Which address space was accessed.
        space: &'static str,
        /// The faulting byte address.
        addr: u64,
        /// Size of that space in bytes.
        size: u64,
    },
    /// A memory access was not aligned to its width.
    Misaligned {
        /// Which address space was accessed.
        space: &'static str,
        /// The faulting byte address.
        addr: u64,
        /// Required alignment in bytes.
        align: u32,
    },
    /// A `BAR.SYNC` executed while the warp was diverged, or with some
    /// threads already exited — undefined behaviour on real hardware,
    /// reported as an error here.
    DivergentBarrier {
        /// Instruction index of the barrier.
        pc: u32,
    },
    /// The kernel ran past its instruction stream without `EXIT`.
    RanOffEnd,
    /// Kernel/launch mismatch (parameter count, block size, resources).
    Launch {
        /// Description of the problem.
        message: String,
    },
    /// The kernel exceeded the simulator's safety step limit
    /// (almost certainly an unintended infinite loop).
    StepLimit {
        /// The limit that was hit.
        limit: u64,
    },
    /// Structural validation failed before execution.
    Invalid {
        /// Description from the validator.
        message: String,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::OutOfBounds { space, addr, size } => {
                write!(
                    f,
                    "{space} access at {addr:#x} outside {size:#x}-byte space"
                )
            }
            SimError::Misaligned { space, addr, align } => {
                write!(f, "{space} access at {addr:#x} not {align}-byte aligned")
            }
            SimError::DivergentBarrier { pc } => {
                write!(f, "BAR.SYNC at pc {pc:#x} executed by a diverged warp")
            }
            SimError::RanOffEnd => f.write_str("execution ran past the end of the kernel"),
            SimError::Launch { message } => write!(f, "launch error: {message}"),
            SimError::StepLimit { limit } => {
                write!(f, "step limit of {limit} exceeded (infinite loop?)")
            }
            SimError::Invalid { message } => write!(f, "invalid kernel: {message}"),
        }
    }
}

impl std::error::Error for SimError {}

impl From<peakperf_sass::SassError> for SimError {
    fn from(e: peakperf_sass::SassError) -> SimError {
        SimError::Invalid {
            message: e.to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        let e = SimError::OutOfBounds {
            space: "global",
            addr: 0x100,
            size: 0x80,
        };
        assert!(e.to_string().contains("global"));
        assert!(e.to_string().contains("0x100"));
        let e = SimError::StepLimit { limit: 10 };
        assert!(e.to_string().contains("10"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_bounds<T: Send + Sync + std::error::Error>() {}
        assert_bounds::<SimError>();
    }
}
