//! Simulator error type.

use std::fmt;

/// The scheduling state of one warp at the moment a watchdog tripped.
///
/// `pc` is `None` once the warp has exited; `state` is a short tag such as
/// `"done"`, `"barrier"`, `"ctl_stall"` or `"runnable"`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WarpHang {
    /// Warp index within the snapshot (block-local for the functional
    /// simulator, SM-slot index for the timing simulator).
    pub warp: u32,
    /// Instruction index the warp is parked at, if it has not exited.
    pub pc: Option<u32>,
    /// Short scheduling-state tag.
    pub state: &'static str,
}

/// A per-warp scheduling snapshot attached to hang/deadlock errors so a
/// tripped watchdog is debuggable rather than opaque.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HangSnapshot {
    /// Step count (functional sim) or cycle (timing sim) at capture time.
    pub at: u64,
    /// One entry per warp still tracked by the engine.
    pub warps: Vec<WarpHang>,
}

impl fmt::Display for HangSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "at {}:", self.at)?;
        for w in &self.warps {
            match w.pc {
                Some(pc) => write!(f, " w{}@{:#x}[{}]", w.warp, pc, w.state)?,
                None => write!(f, " w{}[{}]", w.warp, w.state)?,
            }
        }
        Ok(())
    }
}

/// Errors raised while simulating a kernel.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// A memory access fell outside the allocated space.
    OutOfBounds {
        /// Which address space was accessed.
        space: &'static str,
        /// The faulting byte address.
        addr: u64,
        /// Size of that space in bytes.
        size: u64,
    },
    /// A memory access was not aligned to its width.
    Misaligned {
        /// Which address space was accessed.
        space: &'static str,
        /// The faulting byte address.
        addr: u64,
        /// Required alignment in bytes.
        align: u32,
    },
    /// A `BAR.SYNC` executed while the warp was diverged, or with some
    /// threads already exited — undefined behaviour on real hardware,
    /// reported as an error here.
    DivergentBarrier {
        /// Instruction index of the barrier.
        pc: u32,
    },
    /// The kernel ran past its instruction stream without `EXIT`.
    RanOffEnd,
    /// Some warps of a block wait at a `BAR.SYNC` that can never be
    /// satisfied because other member warps have already exited.
    BarrierDeadlock {
        /// Instruction index of a barrier being waited on.
        pc: u32,
        /// Number of member warps parked at the barrier.
        waiting: u32,
        /// Number of member warps that already exited.
        exited: u32,
    },
    /// Kernel/launch mismatch (parameter count, block size, resources).
    Launch {
        /// Description of the problem.
        message: String,
    },
    /// The kernel exceeded the simulator's safety step limit
    /// (almost certainly an unintended infinite loop).
    StepLimit {
        /// The limit that was hit.
        limit: u64,
        /// Per-warp scheduling state at the moment the limit tripped.
        snapshot: Option<HangSnapshot>,
    },
    /// Structural validation failed before execution.
    Invalid {
        /// Description from the validator.
        message: String,
    },
    /// The run was cancelled through a
    /// [`CancelToken`](crate::CancelToken) (host-side abort).
    Cancelled {
        /// Simulated cycle at which the cancellation was observed.
        at_cycle: u64,
        /// Per-warp scheduling state at the abort point.
        snapshot: Option<HangSnapshot>,
    },
    /// The run's wall-clock deadline (armed on its
    /// [`CancelToken`](crate::CancelToken)) elapsed mid-simulation.
    DeadlineExceeded {
        /// The deadline budget in milliseconds.
        deadline_ms: u64,
        /// Simulated cycle at which the expiry was observed.
        at_cycle: u64,
        /// Per-warp scheduling state at the abort point.
        snapshot: Option<HangSnapshot>,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::OutOfBounds { space, addr, size } => {
                write!(
                    f,
                    "{space} access at {addr:#x} outside {size:#x}-byte space"
                )
            }
            SimError::Misaligned { space, addr, align } => {
                write!(f, "{space} access at {addr:#x} not {align}-byte aligned")
            }
            SimError::DivergentBarrier { pc } => {
                write!(f, "BAR.SYNC at pc {pc:#x} executed by a diverged warp")
            }
            SimError::RanOffEnd => f.write_str("execution ran past the end of the kernel"),
            SimError::BarrierDeadlock {
                pc,
                waiting,
                exited,
            } => {
                write!(
                    f,
                    "barrier deadlock at pc {pc:#x}: {waiting} warp(s) waiting, \
                     {exited} member warp(s) already exited"
                )
            }
            SimError::Launch { message } => write!(f, "launch error: {message}"),
            SimError::StepLimit { limit, snapshot } => {
                write!(f, "step limit of {limit} exceeded (infinite loop?)")?;
                if let Some(snap) = snapshot {
                    write!(f, "; {snap}")?;
                }
                Ok(())
            }
            SimError::Invalid { message } => write!(f, "invalid kernel: {message}"),
            SimError::Cancelled { at_cycle, snapshot } => {
                write!(f, "run cancelled at cycle {at_cycle}")?;
                if let Some(snap) = snapshot {
                    write!(f, "; {snap}")?;
                }
                Ok(())
            }
            SimError::DeadlineExceeded {
                deadline_ms,
                at_cycle,
                snapshot,
            } => {
                write!(
                    f,
                    "deadline of {deadline_ms} ms exceeded at cycle {at_cycle}"
                )?;
                if let Some(snap) = snapshot {
                    write!(f, "; {snap}")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for SimError {}

impl From<peakperf_sass::SassError> for SimError {
    fn from(e: peakperf_sass::SassError) -> SimError {
        SimError::Invalid {
            message: e.to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        let e = SimError::OutOfBounds {
            space: "global",
            addr: 0x100,
            size: 0x80,
        };
        assert!(e.to_string().contains("global"));
        assert!(e.to_string().contains("0x100"));
        let e = SimError::StepLimit {
            limit: 10,
            snapshot: None,
        };
        assert!(e.to_string().contains("10"));
        let e = SimError::StepLimit {
            limit: 10,
            snapshot: Some(HangSnapshot {
                at: 11,
                warps: vec![
                    WarpHang {
                        warp: 0,
                        pc: Some(4),
                        state: "barrier",
                    },
                    WarpHang {
                        warp: 1,
                        pc: None,
                        state: "done",
                    },
                ],
            }),
        };
        let text = e.to_string();
        assert!(text.contains("w0@0x4[barrier]"), "{text}");
        assert!(text.contains("w1[done]"), "{text}");
        let e = SimError::BarrierDeadlock {
            pc: 3,
            waiting: 7,
            exited: 1,
        };
        assert!(e.to_string().contains("deadlock"));
        let e = SimError::Cancelled {
            at_cycle: 2048,
            snapshot: Some(HangSnapshot {
                at: 2048,
                warps: vec![WarpHang {
                    warp: 0,
                    pc: Some(2),
                    state: "runnable",
                }],
            }),
        };
        let text = e.to_string();
        assert!(text.contains("cancelled at cycle 2048"), "{text}");
        assert!(text.contains("w0@0x2[runnable]"), "{text}");
        let e = SimError::DeadlineExceeded {
            deadline_ms: 50,
            at_cycle: 4096,
            snapshot: None,
        };
        let text = e.to_string();
        assert!(text.contains("50 ms"), "{text}");
        assert!(text.contains("4096"), "{text}");
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_bounds<T: Send + Sync + std::error::Error>() {}
        assert_bounds::<SimError>();
    }
}
