//! Host-side performance observability for the simulator itself.
//!
//! PR 2 added observability *into the simulated GPU* (the trace/profile
//! layer); this module applies the same "measure with near-zero overhead
//! before you optimize" discipline to the *host code* that runs the
//! simulation, in three layers:
//!
//! * a process-wide **metrics registry** ([`counter_add`], [`snapshot`]) —
//!   monotonic named counters behind one runtime flag ([`enable`]), used by
//!   the timing cache and the bench executor to surface hit/store counts
//!   and queue-wait time. One relaxed atomic load when disabled.
//! * a **[`PerfProbe`]** observer threaded through the timing simulator's
//!   scheduler loop, carrying the same compile-time gate as
//!   [`TraceSink`](crate::timing::TraceSink): every probe site is guarded
//!   by `if P::ENABLED`, so the default [`NoopProbe`] monomorphization
//!   contains no probe code at all and the production hot loop is
//!   untouched. Probes are pure observers — a probed run's cycle results
//!   are identical to an unprobed run (locked by the perfmon tests).
//! * the **[`HostProf`]** probe: wall-time attribution per loop [`Phase`],
//!   idle-cycle run-length histograms by dominant [`StallKind`] (the
//!   event-driven fast-forward headroom), per-cycle issue fingerprints fed
//!   to the [`detect_period`] loop-periodicity detector (the steady-state
//!   memoization headroom), and the combined speedup projection
//!   ([`HostProf::analyze`]) that turns ROADMAP's ≥10× speedup goal into a
//!   ranked work list.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

use crate::timing::StallKind;

// ---------------------------------------------------------------------
// Phases of the timing simulator's main loop
// ---------------------------------------------------------------------

/// Wall-time attribution buckets for one `TimingSim` run.
///
/// The six leaf phases are measured with [`Stopwatch`] pairs around
/// disjoint sections of the scheduler loop; [`Phase::IssueSelect`] is the
/// remainder (loop bookkeeping, warp polling, pipe/token checks), computed
/// at [`PerfProbe::finish`] so the per-phase shares sum to exactly the run
/// wall time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Phase {
    /// Scheduler bookkeeping and warp selection (the unmeasured remainder).
    IssueSelect,
    /// Scoreboard readiness checks and post-issue scoreboard updates.
    Scoreboard,
    /// Functional execution (`step_warp`).
    FuncExec,
    /// Shared-memory bank-conflict modeling.
    BankConflict,
    /// Global/local memory interface modeling.
    MemModel,
    /// Barrier release scanning.
    BarrierRelease,
    /// Trace-event emission into an attached [`crate::timing::TraceSink`].
    TraceEmit,
}

impl Phase {
    /// Number of phases (the length of [`Phase::ALL`]).
    pub const COUNT: usize = 7;

    /// Every phase, in declaration (= serialization) order:
    /// `ALL[p.index()] == p`, asserted by the property tests.
    pub const ALL: [Phase; Phase::COUNT] = [
        Phase::IssueSelect,
        Phase::Scoreboard,
        Phase::FuncExec,
        Phase::BankConflict,
        Phase::MemModel,
        Phase::BarrierRelease,
        Phase::TraceEmit,
    ];

    /// This phase's position in [`Phase::ALL`].
    pub const fn index(self) -> usize {
        match self {
            Phase::IssueSelect => 0,
            Phase::Scoreboard => 1,
            Phase::FuncExec => 2,
            Phase::BankConflict => 3,
            Phase::MemModel => 4,
            Phase::BarrierRelease => 5,
            Phase::TraceEmit => 6,
        }
    }

    /// Stable identifier used in the hostprof document and its schema.
    pub fn as_str(self) -> &'static str {
        match self {
            Phase::IssueSelect => "issue_select",
            Phase::Scoreboard => "scoreboard",
            Phase::FuncExec => "func_exec",
            Phase::BankConflict => "bank_conflict",
            Phase::MemModel => "mem_model",
            Phase::BarrierRelease => "barrier_release",
            Phase::TraceEmit => "trace_emit",
        }
    }
}

// ---------------------------------------------------------------------
// The probe trait and its no-op default
// ---------------------------------------------------------------------

/// A host-performance observer for the timing simulator's scheduler loop.
///
/// Implementations must be pure observers: nothing they record may feed
/// back into the simulation, so a probed and an unprobed run produce
/// identical cycle counts. The `ENABLED` constant mirrors
/// [`TraceSink::ENABLED`](crate::timing::TraceSink::ENABLED): every probe
/// site is guarded with `if P::ENABLED`, so a `false` erases the sites and
/// their `Instant` reads from the monomorphization.
pub trait PerfProbe {
    /// Whether this probe observes anything at all.
    const ENABLED: bool = true;

    /// Add `nanos` of wall time to a leaf `phase`.
    fn phase(&mut self, phase: Phase, nanos: u64);

    /// A warp instruction issued at `pc` during the current cycle.
    fn issue(&mut self, pc: u32);

    /// A runnable warp could not issue this cycle, for the given reason
    /// (one call per counted stall, mirroring `TimingReport::stalls`).
    fn stall(&mut self, kind: StallKind);

    /// The simulator finished `cycle` and is about to advance.
    fn cycle_end(&mut self, cycle: u64);

    /// The run completed: `cycles` simulated in `wall_nanos` of host time.
    fn finish(&mut self, cycles: u64, wall_nanos: u64);
}

/// The default probe: observes nothing, costs nothing.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopProbe;

impl PerfProbe for NoopProbe {
    const ENABLED: bool = false;

    #[inline(always)]
    fn phase(&mut self, _phase: Phase, _nanos: u64) {}
    #[inline(always)]
    fn issue(&mut self, _pc: u32) {}
    #[inline(always)]
    fn stall(&mut self, _kind: StallKind) {}
    #[inline(always)]
    fn cycle_end(&mut self, _cycle: u64) {}
    #[inline(always)]
    fn finish(&mut self, _cycles: u64, _wall_nanos: u64) {}
}

/// A wall-clock section timer that compiles away with [`NoopProbe`].
///
/// `start` reads the clock only when the probe type is enabled; `stop`
/// charges the elapsed time to a [`Phase`]. Constructed per section in the
/// scheduler loop, so the disabled instantiation carries no `Instant` at
/// all.
#[derive(Debug)]
pub struct Stopwatch(Option<Instant>);

impl Stopwatch {
    /// Start timing a section (a no-op unless `P::ENABLED`).
    #[inline]
    pub fn start<P: PerfProbe>() -> Stopwatch {
        Stopwatch(if P::ENABLED {
            Some(Instant::now())
        } else {
            None
        })
    }

    /// Charge the elapsed time to `phase`.
    #[inline]
    pub fn stop<P: PerfProbe>(self, probe: &mut P, phase: Phase) {
        if let Some(t0) = self.0 {
            probe.phase(phase, t0.elapsed().as_nanos() as u64);
        }
    }
}

// ---------------------------------------------------------------------
// Log-scaled histograms
// ---------------------------------------------------------------------

/// A power-of-two-bucketed histogram of `u64` samples.
///
/// Bucket 0 holds the value 0; bucket `i ≥ 1` holds `[2^(i-1), 2^i - 1]`
/// — the standard log2 layout, chosen because idle-run lengths and queue
/// waits span many orders of magnitude and the *shape* (is the mass in
/// 1-cycle bubbles or 1000-cycle memory shadows?) is what the speedup
/// projection needs, not exact quantiles.
#[derive(Debug, Clone)]
pub struct Histogram {
    buckets: [u64; Histogram::BUCKETS],
    count: u64,
    sum: u64,
}

impl Histogram {
    /// Bucket count: one for zero plus one per bit of `u64`.
    pub const BUCKETS: usize = 65;

    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            buckets: [0; Histogram::BUCKETS],
            count: 0,
            sum: 0,
        }
    }

    /// The bucket index a value lands in.
    pub fn bucket_index(value: u64) -> usize {
        (u64::BITS - value.leading_zeros()) as usize
    }

    /// The inclusive `[lo, hi]` range of bucket `i`.
    pub fn bucket_bounds(i: usize) -> (u64, u64) {
        if i == 0 {
            (0, 0)
        } else {
            let lo = 1u64 << (i - 1);
            let hi = if i == 64 { u64::MAX } else { (1u64 << i) - 1 };
            (lo, hi)
        }
    }

    /// Record one sample.
    pub fn record(&mut self, value: u64) {
        self.buckets[Histogram::bucket_index(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Iterate over the non-empty buckets as `(lo, hi, count)`.
    pub fn iter_nonzero(&self) -> impl Iterator<Item = (u64, u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| {
                let (lo, hi) = Histogram::bucket_bounds(i);
                (lo, hi, c)
            })
    }
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

// ---------------------------------------------------------------------
// Loop-periodicity detection
// ---------------------------------------------------------------------

/// Result of [`detect_period`] on a per-cycle fingerprint stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Periodicity {
    /// The detected period, in cycles (smallest anchor-confirmed period).
    pub period: u32,
    /// Cycles `i` with `fp[i] == fp[i + period]` over the whole stream.
    pub matched: u64,
    /// Longest contiguous run of such cycles.
    pub longest_run: u64,
    /// Cycles a memoized replay of one period could cover: the longest
    /// steady-state run minus the one period that must still simulate.
    pub replay_covered: u64,
}

/// Fingerprint window compared at each anchor.
const ANCHOR_LEN: usize = 32;
/// Largest candidate period searched (SGEMM inner loops are far shorter).
const MAX_PERIOD: usize = 4096;

/// Detect a steady-state issue period in a per-cycle fingerprint stream.
///
/// Three anchors at n/4, n/2 and 3n/4 each compare a 32-cycle window
/// against the window one candidate period later; the smallest period
/// confirmed by at least two anchors wins (two of three tolerates one
/// anchor landing on a prologue/epilogue or a barrier hiccup). The winner
/// is then verified over the whole stream in O(n) to report how many
/// cycles actually repeat and the longest contiguous steady-state run.
///
/// Returns `None` for streams too short to anchor (< 128 cycles) or with
/// no confirmed period up to 4096 cycles.
pub fn detect_period(fps: &[u64]) -> Option<Periodicity> {
    let n = fps.len();
    if n < 4 * ANCHOR_LEN {
        return None;
    }
    let anchors = [n / 4, n / 2, (3 * n) / 4];
    let max_p = MAX_PERIOD.min(n / 4);
    for p in 1..=max_p {
        let hits = anchors
            .iter()
            .filter(|&&a| {
                a + p + ANCHOR_LEN <= n && fps[a..a + ANCHOR_LEN] == fps[a + p..a + p + ANCHOR_LEN]
            })
            .count();
        if hits < 2 {
            continue;
        }
        let mut matched = 0u64;
        let mut run = 0u64;
        let mut longest = 0u64;
        for i in 0..n - p {
            if fps[i] == fps[i + p] {
                matched += 1;
                run += 1;
                longest = longest.max(run);
            } else {
                run = 0;
            }
        }
        return Some(Periodicity {
            period: p as u32,
            matched,
            longest_run: longest,
            replay_covered: longest.saturating_sub(p as u64),
        });
    }
    None
}

// ---------------------------------------------------------------------
// The HostProf probe
// ---------------------------------------------------------------------

/// Per-cycle-fingerprint FNV-1a basis (same constants as the timing
/// cache's key hash; stability across processes is not required here, only
/// cheap, well-mixed equality).
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Cap on stored per-cycle fingerprints (8 words each → 32 MB); beyond it
/// cycles are counted but not fingerprinted, making the replay projection
/// a lower bound.
pub const DEFAULT_FINGERPRINT_LIMIT: usize = 4_194_304;

/// The opportunity analysis distilled from one probed run.
#[derive(Debug, Clone)]
pub struct Opportunity {
    /// Total simulated cycles.
    pub cycles: u64,
    /// Cycles in which no warp issued on any scheduler.
    pub idle_cycles: u64,
    /// Maximal runs of consecutive idle cycles.
    pub idle_runs: u64,
    /// Idle cycles an event-driven scheduler could skip outright
    /// (`idle_cycles - idle_runs`: each run still pays one cycle of event
    /// processing).
    pub idle_skippable: u64,
    /// Steady-state issue period, when one was detected.
    pub periodicity: Option<Periodicity>,
    /// Cycles a memoized replay of the steady-state window would cover.
    pub replay_covered: u64,
    /// Cycles that were fingerprinted (≤ `cycles` when the cap was hit).
    pub fingerprinted: u64,
    /// Cycles past the fingerprint cap (projection is a lower bound).
    pub fingerprints_dropped: u64,
}

impl Opportunity {
    fn speedup(&self, skipped: u64) -> f64 {
        let cycles = self.cycles.max(1);
        let remaining = cycles.saturating_sub(skipped).max(1);
        cycles as f64 / remaining as f64
    }

    /// Projected speedup from skipping idle runs alone.
    pub fn idle_skip_speedup(&self) -> f64 {
        self.speedup(self.idle_skippable)
    }

    /// Projected speedup from steady-state replay alone.
    pub fn replay_speedup(&self) -> f64 {
        self.speedup(self.replay_covered)
    }

    /// Projected speedup applying both (an optimistic union bound: the
    /// steady-state window may contain idle cycles already counted by the
    /// idle-skip term, so the true combined gain lies between the larger
    /// single term and this).
    pub fn combined_speedup(&self) -> f64 {
        let skipped =
            (self.idle_skippable + self.replay_covered).min(self.cycles.saturating_sub(1));
        self.speedup(skipped)
    }
}

/// The in-tree [`PerfProbe`]: phase wall-time attribution plus the
/// idle-run and periodicity analyses behind `reproduce hostprof`.
#[derive(Debug, Clone)]
pub struct HostProf {
    phase_nanos: [u64; Phase::COUNT],
    total_nanos: u64,
    cycles: u64,
    /// Per-cycle scratch, reset by `cycle_end`.
    issues_this_cycle: u32,
    stalls_this_cycle: [u64; StallKind::COUNT],
    fp_acc: u64,
    /// Open idle run.
    idle_run_len: u64,
    idle_run_stalls: [u64; StallKind::COUNT],
    /// Totals.
    idle_cycles: u64,
    idle_runs: u64,
    /// Run-length histograms by dominant stall kind; the extra slot
    /// ([`StallKind::COUNT`]) holds runs with no recorded stall (e.g.
    /// every poll skipped by the Kepler half-rate scheduler gate).
    idle_hist: Vec<Histogram>,
    fps: Vec<u64>,
    fp_limit: usize,
    fp_dropped: u64,
}

impl HostProf {
    /// A fresh probe with the default fingerprint cap.
    pub fn new() -> HostProf {
        HostProf::with_fingerprint_limit(DEFAULT_FINGERPRINT_LIMIT)
    }

    /// A fresh probe storing at most `limit` per-cycle fingerprints.
    pub fn with_fingerprint_limit(limit: usize) -> HostProf {
        HostProf {
            phase_nanos: [0; Phase::COUNT],
            total_nanos: 0,
            cycles: 0,
            issues_this_cycle: 0,
            stalls_this_cycle: [0; StallKind::COUNT],
            fp_acc: FNV_OFFSET,
            idle_run_len: 0,
            idle_run_stalls: [0; StallKind::COUNT],
            idle_cycles: 0,
            idle_runs: 0,
            idle_hist: vec![Histogram::new(); StallKind::COUNT + 1],
            fps: Vec::new(),
            fp_limit: limit,
            fp_dropped: 0,
        }
    }

    fn close_idle_run(&mut self) {
        if self.idle_run_len == 0 {
            return;
        }
        self.idle_runs += 1;
        // Dominant blocking cause over the run; ties break toward the
        // smaller StallKind index, runs with no recorded stall go to the
        // unattributed slot.
        let mut dominant = StallKind::COUNT;
        let mut best = 0u64;
        for (i, &n) in self.idle_run_stalls.iter().enumerate() {
            if n > best {
                best = n;
                dominant = i;
            }
        }
        self.idle_hist[dominant].record(self.idle_run_len);
        self.idle_run_len = 0;
        self.idle_run_stalls = [0; StallKind::COUNT];
    }

    /// Wall nanoseconds attributed to `phase` (with [`Phase::IssueSelect`]
    /// holding the remainder after [`PerfProbe::finish`]).
    pub fn phase_nanos(&self, phase: Phase) -> u64 {
        self.phase_nanos[phase.index()]
    }

    /// Total run wall time in nanoseconds.
    pub fn total_nanos(&self) -> u64 {
        self.total_nanos
    }

    /// Total simulated cycles observed.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Idle-run length histogram for one dominant stall kind, or the
    /// unattributed slot when `kind` is `None`.
    pub fn idle_histogram(&self, kind: Option<StallKind>) -> &Histogram {
        match kind {
            Some(k) => &self.idle_hist[k.index()],
            None => &self.idle_hist[StallKind::COUNT],
        }
    }

    /// Distill the recorded stream into the speedup-opportunity analysis.
    pub fn analyze(&self) -> Opportunity {
        let periodicity = detect_period(&self.fps);
        Opportunity {
            cycles: self.cycles,
            idle_cycles: self.idle_cycles,
            idle_runs: self.idle_runs,
            idle_skippable: self.idle_cycles.saturating_sub(self.idle_runs),
            periodicity,
            replay_covered: periodicity.map_or(0, |p| p.replay_covered),
            fingerprinted: self.fps.len() as u64,
            fingerprints_dropped: self.fp_dropped,
        }
    }
}

impl Default for HostProf {
    fn default() -> HostProf {
        HostProf::new()
    }
}

impl PerfProbe for HostProf {
    fn phase(&mut self, phase: Phase, nanos: u64) {
        self.phase_nanos[phase.index()] += nanos;
    }

    fn issue(&mut self, pc: u32) {
        self.issues_this_cycle += 1;
        for b in pc.to_le_bytes() {
            self.fp_acc = (self.fp_acc ^ u64::from(b)).wrapping_mul(FNV_PRIME);
        }
    }

    fn stall(&mut self, kind: StallKind) {
        self.stalls_this_cycle[kind.index()] += 1;
    }

    fn cycle_end(&mut self, _cycle: u64) {
        self.cycles += 1;
        if self.issues_this_cycle == 0 {
            self.idle_cycles += 1;
            self.idle_run_len += 1;
            for (run, &now) in self
                .idle_run_stalls
                .iter_mut()
                .zip(self.stalls_this_cycle.iter())
            {
                *run += now;
            }
        } else {
            self.close_idle_run();
        }
        // Idle cycles fingerprint as 0 so steady-state windows that
        // include latency bubbles still match period-for-period.
        let fp = if self.issues_this_cycle == 0 {
            0
        } else {
            self.fp_acc
        };
        if self.fps.len() < self.fp_limit {
            self.fps.push(fp);
        } else {
            self.fp_dropped += 1;
        }
        self.issues_this_cycle = 0;
        self.stalls_this_cycle = [0; StallKind::COUNT];
        self.fp_acc = FNV_OFFSET;
    }

    fn finish(&mut self, cycles: u64, wall_nanos: u64) {
        self.close_idle_run();
        self.cycles = cycles;
        self.total_nanos = wall_nanos;
        let leaves: u64 = Phase::ALL
            .into_iter()
            .filter(|p| *p != Phase::IssueSelect)
            .map(|p| self.phase_nanos[p.index()])
            .sum();
        self.phase_nanos[Phase::IssueSelect.index()] = wall_nanos.saturating_sub(leaves);
    }
}

// ---------------------------------------------------------------------
// The process-wide metrics registry
// ---------------------------------------------------------------------

static ENABLED: AtomicBool = AtomicBool::new(false);
static REGISTRY: OnceLock<Mutex<BTreeMap<&'static str, u64>>> = OnceLock::new();

/// Enable the process-wide metrics registry (off by default; when off,
/// every [`counter_add`] is a single relaxed atomic load).
pub fn enable() {
    ENABLED.store(true, Ordering::Relaxed);
}

/// Disable the registry (accumulated values are retained).
pub fn disable() {
    ENABLED.store(false, Ordering::Relaxed);
}

/// Whether the registry is currently recording.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

fn registry() -> &'static Mutex<BTreeMap<&'static str, u64>> {
    REGISTRY.get_or_init(|| Mutex::new(BTreeMap::new()))
}

/// Add `n` to the named monotonic counter (a no-op while disabled).
///
/// Names are dotted paths (`timing_cache.hits`, `executor.queue_wait_ns`);
/// `_ns` suffixes mark wall-time totals so report layers know which values
/// are volatile.
pub fn counter_add(name: &'static str, n: u64) {
    if !enabled() {
        return;
    }
    let mut map = registry()
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    *map.entry(name).or_insert(0) += n;
}

/// A point-in-time copy of every registry counter (same snapshot/delta
/// pattern as [`crate::Counters`]).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    counters: BTreeMap<&'static str, u64>,
}

/// Snapshot the registry.
pub fn snapshot() -> MetricsSnapshot {
    let map = registry()
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    MetricsSnapshot {
        counters: map.clone(),
    }
}

impl MetricsSnapshot {
    /// Counter growth since an earlier snapshot (counters absent earlier
    /// count from zero).
    pub fn delta_since(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        let counters = self
            .counters
            .iter()
            .map(|(&k, &v)| (k, v - earlier.counters.get(k).copied().unwrap_or(0)))
            .filter(|(_, v)| *v > 0)
            .collect();
        MetricsSnapshot { counters }
    }

    /// Value of one counter (0 when absent).
    pub fn get(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Whether no counter has a value.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
    }

    /// Iterate over `(name, value)` in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.counters.iter().map(|(&k, &v)| (k, v))
    }

    /// Render as a JSON object, one counter per line, indented by
    /// `indent`. Wall-time counters (`*_ns`) are kept on their own lines
    /// like every other volatile field in the document family.
    pub fn to_json_object(&self, indent: &str) -> String {
        if self.counters.is_empty() {
            return "{}".to_owned();
        }
        let mut out = String::from("{");
        for (i, (name, value)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\n{indent}  \"{name}\": {value}");
        }
        let _ = write!(out, "\n{indent}}}");
        out
    }
}

impl FromIterator<(&'static str, u64)> for MetricsSnapshot {
    /// Build a snapshot from explicit `(name, value)` pairs — the fixture
    /// path for consumers that render snapshots, so their tests need not
    /// touch the process-global registry.
    fn from_iter<I: IntoIterator<Item = (&'static str, u64)>>(iter: I) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // A tiny deterministic generator for the property tests (no
    // Math.random in this codebase's test style either).
    fn lcg(seed: &mut u64) -> u64 {
        *seed = seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        *seed
    }

    #[test]
    fn phase_views_stay_in_sync() {
        for (i, p) in Phase::ALL.into_iter().enumerate() {
            assert_eq!(p.index(), i);
        }
        let mut names: Vec<&str> = Phase::ALL.iter().map(|p| p.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Phase::COUNT, "phase names must be unique");
    }

    #[test]
    fn noop_probe_is_disabled() {
        const {
            assert!(!NoopProbe::ENABLED);
            assert!(HostProf::ENABLED);
        }
    }

    #[test]
    fn histogram_buckets_partition_the_domain() {
        // Every bucket's bounds are contiguous and ordered.
        let mut expected_lo = 0u64;
        for i in 0..Histogram::BUCKETS {
            let (lo, hi) = Histogram::bucket_bounds(i);
            assert_eq!(lo, expected_lo, "bucket {i} lo");
            assert!(hi >= lo, "bucket {i} ordering");
            expected_lo = hi.wrapping_add(1);
        }
        assert_eq!(expected_lo, 0, "bucket 64 must end at u64::MAX");
    }

    #[test]
    fn histogram_samples_land_in_their_bucket() {
        let mut seed = 7u64;
        let mut h = Histogram::new();
        let mut values = vec![0u64, 1, 2, 3, 4, u64::MAX, u64::MAX / 2];
        for _ in 0..500 {
            values.push(lcg(&mut seed) >> (lcg(&mut seed) % 64));
        }
        for &v in &values {
            let i = Histogram::bucket_index(v);
            let (lo, hi) = Histogram::bucket_bounds(i);
            assert!(
                (lo..=hi).contains(&v),
                "value {v} bucketed into [{lo}, {hi}]"
            );
            h.record(v);
        }
        assert_eq!(h.count(), values.len() as u64);
        let bucket_total: u64 = h.iter_nonzero().map(|(_, _, c)| c).sum();
        assert_eq!(bucket_total, h.count(), "bucket counts must sum to count");
    }

    #[test]
    fn detect_period_finds_planted_periods() {
        for period in [3usize, 7, 50, 377] {
            let fps: Vec<u64> = (0..8192).map(|i| (i % period) as u64 + 100).collect();
            let p = detect_period(&fps).unwrap_or_else(|| panic!("period {period} not found"));
            assert_eq!(p.period as usize, period);
            assert_eq!(p.matched, (fps.len() - period) as u64);
            assert_eq!(p.longest_run, (fps.len() - period) as u64);
            assert_eq!(p.replay_covered, (fps.len() - 2 * period) as u64);
        }
    }

    #[test]
    fn detect_period_survives_a_prologue_and_epilogue() {
        let mut seed = 99u64;
        let mut fps: Vec<u64> = (0..300).map(|_| lcg(&mut seed)).collect();
        fps.extend((0..4000).map(|i| (i % 11) as u64 + 7));
        fps.extend((0..300).map(|_| lcg(&mut seed)));
        let p = detect_period(&fps).expect("period through noise flanks");
        assert_eq!(p.period, 11);
        assert!(p.longest_run >= 4000 - 11 - 1);
    }

    #[test]
    fn detect_period_rejects_noise_and_short_streams() {
        let mut seed = 1234u64;
        let noise: Vec<u64> = (0..4096).map(|_| lcg(&mut seed)).collect();
        assert_eq!(detect_period(&noise), None);
        let short: Vec<u64> = (0..100).map(|i| i % 5).collect();
        assert_eq!(detect_period(&short), None, "below the anchor minimum");
        assert_eq!(detect_period(&[]), None);
    }

    #[test]
    fn detect_period_prefers_the_smallest_period() {
        // Period 4 is also period 8/12/...; the smallest must win.
        let fps: Vec<u64> = (0..2048).map(|i| (i % 4) as u64).collect();
        assert_eq!(detect_period(&fps).map(|p| p.period), Some(4));
    }

    #[test]
    fn hostprof_attributes_idle_runs_by_dominant_stall() {
        let mut p = HostProf::new();
        // Cycle 0: an issue (busy).
        p.issue(3);
        p.cycle_end(0);
        // Cycles 1-3: idle, dominated by Scoreboard.
        for c in 1..=3 {
            p.stall(StallKind::Scoreboard);
            p.stall(StallKind::Scoreboard);
            p.stall(StallKind::Pipe);
            p.cycle_end(c);
        }
        // Cycle 4: busy again closes the run.
        p.issue(4);
        p.cycle_end(4);
        // Cycles 5-6: idle with no recorded stall at all.
        p.cycle_end(5);
        p.cycle_end(6);
        p.finish(7, 1_000);

        assert_eq!(p.idle_cycles, 5);
        assert_eq!(p.idle_runs, 2);
        let sb = p.idle_histogram(Some(StallKind::Scoreboard));
        assert_eq!(sb.count(), 1);
        assert_eq!(sb.sum(), 3);
        assert_eq!(p.idle_histogram(None).count(), 1);
        assert_eq!(p.idle_histogram(None).sum(), 2);
        assert_eq!(p.idle_histogram(Some(StallKind::Pipe)).count(), 0);

        let a = p.analyze();
        assert_eq!(a.idle_skippable, 3);
        assert!(a.idle_skip_speedup() > 1.0);
        assert!((a.combined_speedup() - 7.0 / 4.0).abs() < 1e-12);
    }

    #[test]
    fn hostprof_issue_select_is_the_remainder() {
        let mut p = HostProf::new();
        p.phase(Phase::Scoreboard, 300);
        p.phase(Phase::FuncExec, 200);
        p.finish(10, 1_000);
        assert_eq!(p.phase_nanos(Phase::IssueSelect), 500);
        let total: u64 = Phase::ALL.into_iter().map(|ph| p.phase_nanos(ph)).sum();
        assert_eq!(total, p.total_nanos(), "shares must sum to the run wall");
        // Leaves exceeding the (noisy) total must not underflow.
        let mut q = HostProf::new();
        q.phase(Phase::MemModel, 2_000);
        q.finish(10, 1_000);
        assert_eq!(q.phase_nanos(Phase::IssueSelect), 0);
    }

    #[test]
    fn hostprof_fingerprint_cap_counts_drops() {
        let mut p = HostProf::with_fingerprint_limit(4);
        for c in 0..10 {
            p.issue(c as u32);
            p.cycle_end(c);
        }
        p.finish(10, 1);
        let a = p.analyze();
        assert_eq!(a.fingerprinted, 4);
        assert_eq!(a.fingerprints_dropped, 6);
    }

    #[test]
    fn registry_counts_only_while_enabled() {
        // The registry is process-global; use names no other test touches.
        let before = snapshot();
        counter_add("test.perfmon.disabled", 5);
        assert_eq!(
            snapshot().delta_since(&before).get("test.perfmon.disabled"),
            0
        );
        enable();
        counter_add("test.perfmon.enabled", 2);
        counter_add("test.perfmon.enabled", 3);
        disable();
        counter_add("test.perfmon.enabled", 100);
        let delta = snapshot().delta_since(&before);
        assert_eq!(delta.get("test.perfmon.enabled"), 5);
        assert_eq!(delta.get("test.perfmon.disabled"), 0);
        let json = delta.to_json_object("  ");
        assert!(json.contains("\"test.perfmon.enabled\": 5"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(MetricsSnapshot::default().to_json_object(""), "{}");
    }
}
