//! Simulated global memory with a bump allocator.
//!
//! Addresses are 32-bit byte offsets — matching the paper's kernels, which
//! deliberately use 32-bit addressing to save address registers
//! (Section 5.2). Address 0 is kept unmapped so that a zero pointer faults.

use crate::SimError;

/// The flat global memory of a simulated GPU.
#[derive(Debug, Clone)]
pub struct GlobalMemory {
    data: Vec<u8>,
    next: u32,
}

/// Allocation alignment (matches a 128-byte memory transaction, so distinct
/// buffers never share a transaction segment).
const ALLOC_ALIGN: u32 = 128;

impl GlobalMemory {
    /// An empty memory with the default capacity (256 MiB address ceiling;
    /// storage grows on demand).
    pub fn new() -> GlobalMemory {
        GlobalMemory {
            data: Vec::new(),
            next: ALLOC_ALIGN, // keep address 0 unmapped
        }
    }

    /// Bytes currently backed by storage.
    pub fn size(&self) -> u32 {
        self.data.len() as u32
    }

    /// Allocate `bytes` zero-initialized bytes and return the base address.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::OutOfBounds`] if the 32-bit address space is
    /// exhausted.
    pub fn alloc_zeroed(&mut self, bytes: u32) -> Result<u32, SimError> {
        let base = self.next;
        let end = base
            .checked_add(bytes)
            .and_then(|e| e.checked_add(ALLOC_ALIGN - 1))
            .ok_or(SimError::OutOfBounds {
                space: "global",
                addr: u64::from(base) + u64::from(bytes),
                size: u64::from(u32::MAX),
            })?;
        let end = end / ALLOC_ALIGN * ALLOC_ALIGN;
        self.next = end;
        if self.data.len() < end as usize {
            self.data.resize(end as usize, 0);
        }
        Ok(base)
    }

    /// Allocate and fill with `f32` values; returns the base address.
    ///
    /// # Errors
    ///
    /// See [`GlobalMemory::alloc_zeroed`].
    pub fn alloc_f32(&mut self, values: &[f32]) -> Result<u32, SimError> {
        let base = self.alloc_zeroed((values.len() * 4) as u32)?;
        for (i, v) in values.iter().enumerate() {
            self.write_f32(base + (i * 4) as u32, *v)?;
        }
        Ok(base)
    }

    fn check(&self, addr: u32, len: u32) -> Result<usize, SimError> {
        let end = u64::from(addr) + u64::from(len);
        if addr == 0 || end > self.data.len() as u64 {
            return Err(SimError::OutOfBounds {
                space: "global",
                addr: u64::from(addr),
                size: self.data.len() as u64,
            });
        }
        Ok(addr as usize)
    }

    /// Read a 32-bit word.
    ///
    /// # Errors
    ///
    /// Out-of-bounds and misaligned accesses fail.
    pub fn read_u32(&self, addr: u32) -> Result<u32, SimError> {
        if !addr.is_multiple_of(4) {
            return Err(SimError::Misaligned {
                space: "global",
                addr: u64::from(addr),
                align: 4,
            });
        }
        let i = self.check(addr, 4)?;
        let mut b = [0u8; 4];
        b.copy_from_slice(&self.data[i..i + 4]);
        Ok(u32::from_le_bytes(b))
    }

    /// Write a 32-bit word.
    ///
    /// # Errors
    ///
    /// Out-of-bounds and misaligned accesses fail.
    pub fn write_u32(&mut self, addr: u32, value: u32) -> Result<(), SimError> {
        if !addr.is_multiple_of(4) {
            return Err(SimError::Misaligned {
                space: "global",
                addr: u64::from(addr),
                align: 4,
            });
        }
        let i = self.check(addr, 4)?;
        self.data[i..i + 4].copy_from_slice(&value.to_le_bytes());
        Ok(())
    }

    /// Read an `f32`.
    ///
    /// # Errors
    ///
    /// See [`GlobalMemory::read_u32`].
    pub fn read_f32(&self, addr: u32) -> Result<f32, SimError> {
        Ok(f32::from_bits(self.read_u32(addr)?))
    }

    /// Write an `f32`.
    ///
    /// # Errors
    ///
    /// See [`GlobalMemory::write_u32`].
    pub fn write_f32(&mut self, addr: u32, value: f32) -> Result<(), SimError> {
        self.write_u32(addr, value.to_bits())
    }

    /// Read `n` consecutive `f32` values starting at `addr`.
    ///
    /// # Errors
    ///
    /// See [`GlobalMemory::read_u32`].
    pub fn read_f32_slice(&self, addr: u32, n: usize) -> Result<Vec<f32>, SimError> {
        (0..n)
            .map(|i| self.read_f32(addr + (i * 4) as u32))
            .collect()
    }
}

impl Default for GlobalMemory {
    fn default() -> GlobalMemory {
        GlobalMemory::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_is_transaction_aligned_and_nonzero() {
        let mut m = GlobalMemory::new();
        let a = m.alloc_zeroed(100).unwrap();
        let b = m.alloc_zeroed(4).unwrap();
        assert_ne!(a, 0);
        assert_eq!(a % 128, 0);
        assert_eq!(b % 128, 0);
        assert!(b >= a + 100);
    }

    #[test]
    fn read_write_round_trip() {
        let mut m = GlobalMemory::new();
        let a = m.alloc_zeroed(16).unwrap();
        m.write_f32(a + 8, 3.5).unwrap();
        assert_eq!(m.read_f32(a + 8).unwrap(), 3.5);
        assert_eq!(m.read_f32(a).unwrap(), 0.0);
    }

    #[test]
    fn null_and_oob_fault() {
        let mut m = GlobalMemory::new();
        let a = m.alloc_zeroed(16).unwrap();
        assert!(m.read_u32(0).is_err());
        assert!(m.read_u32(a + 4096).is_err());
        assert!(m.read_u32(a + 2).is_err()); // misaligned
    }

    #[test]
    fn alloc_f32_contents() {
        let mut m = GlobalMemory::new();
        let a = m.alloc_f32(&[1.0, 2.0, -3.0]).unwrap();
        assert_eq!(m.read_f32_slice(a, 3).unwrap(), vec![1.0, 2.0, -3.0]);
    }
}
