//! Grid/block launch geometry.

use std::fmt;

use peakperf_arch::WARP_SIZE;

/// A 3-component dimension (grid or block).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Dim3 {
    /// x extent.
    pub x: u32,
    /// y extent.
    pub y: u32,
    /// z extent.
    pub z: u32,
}

impl Dim3 {
    /// A 1-D dimension.
    pub fn new_1d(x: u32) -> Dim3 {
        Dim3 { x, y: 1, z: 1 }
    }

    /// A 2-D dimension.
    pub fn new_2d(x: u32, y: u32) -> Dim3 {
        Dim3 { x, y, z: 1 }
    }

    /// Total element count.
    pub fn count(&self) -> u64 {
        u64::from(self.x) * u64::from(self.y) * u64::from(self.z)
    }
}

impl fmt::Display for Dim3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {}, {})", self.x, self.y, self.z)
    }
}

/// Launch configuration: grid and block dimensions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LaunchConfig {
    /// Blocks in the grid.
    pub grid: Dim3,
    /// Threads in a block.
    pub block: Dim3,
}

impl LaunchConfig {
    /// A 1-D grid of 1-D blocks.
    pub fn linear(blocks: u32, threads_per_block: u32) -> LaunchConfig {
        LaunchConfig {
            grid: Dim3::new_1d(blocks),
            block: Dim3::new_1d(threads_per_block),
        }
    }

    /// A 2-D grid of 2-D blocks.
    pub fn grid_2d(gx: u32, gy: u32, bx: u32, by: u32) -> LaunchConfig {
        LaunchConfig {
            grid: Dim3::new_2d(gx, gy),
            block: Dim3::new_2d(bx, by),
        }
    }

    /// Threads per block.
    pub fn threads_per_block(&self) -> u32 {
        (self.block.count()).min(u64::from(u32::MAX)) as u32
    }

    /// Warps per block (rounded up).
    pub fn warps_per_block(&self) -> u32 {
        self.threads_per_block().div_ceil(WARP_SIZE)
    }

    /// Total blocks in the grid.
    pub fn total_blocks(&self) -> u64 {
        self.grid.count()
    }

    /// Total threads in the launch.
    pub fn total_threads(&self) -> u64 {
        self.total_blocks() * u64::from(self.threads_per_block())
    }
}

impl fmt::Display for LaunchConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "grid {} block {}", self.grid, self.block)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_geometry() {
        let cfg = LaunchConfig::linear(10, 256);
        assert_eq!(cfg.threads_per_block(), 256);
        assert_eq!(cfg.warps_per_block(), 8);
        assert_eq!(cfg.total_blocks(), 10);
        assert_eq!(cfg.total_threads(), 2560);
    }

    #[test]
    fn two_d_geometry() {
        let cfg = LaunchConfig::grid_2d(4, 3, 16, 16);
        assert_eq!(cfg.threads_per_block(), 256);
        assert_eq!(cfg.total_blocks(), 12);
    }

    #[test]
    fn partial_warp_rounds_up() {
        let cfg = LaunchConfig::linear(1, 33);
        assert_eq!(cfg.warps_per_block(), 2);
    }
}
