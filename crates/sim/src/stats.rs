//! Execution statistics.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

use peakperf_sass::{Instruction, OpClass};

use crate::timing::StallKind;

// ---------------------------------------------------------------------
// Process-wide simulation counters
// ---------------------------------------------------------------------

static TIMING_RUNS: AtomicU64 = AtomicU64::new(0);
static SIM_CYCLES: AtomicU64 = AtomicU64::new(0);
static SIM_WARP_INSTRUCTIONS: AtomicU64 = AtomicU64::new(0);
static CACHE_HITS: AtomicU64 = AtomicU64::new(0);
static CACHE_MISSES: AtomicU64 = AtomicU64::new(0);
static STALL_CYCLES: [AtomicU64; StallKind::COUNT] = [
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
];

/// A monotonic snapshot of the process-wide simulation counters.
///
/// The counters only ever grow; observability layers (e.g. the `reproduce`
/// binary's JSON report) take a snapshot before and after a unit of work
/// and report the difference via [`Counters::delta_since`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counters {
    /// Completed cycle-level timing runs (cache hits not included).
    pub timing_runs: u64,
    /// Total simulated shader cycles across those runs.
    pub sim_cycles: u64,
    /// Total warp instructions issued across those runs.
    pub warp_instructions: u64,
    /// Timing-cache hits (runs answered without simulating).
    pub cache_hits: u64,
    /// Timing-cache misses (lookups that had to simulate).
    pub cache_misses: u64,
    /// Stall warp-cycles by cause, indexed by [`StallKind::index`].
    pub stall_cycles: [u64; StallKind::COUNT],
}

impl Counters {
    /// Current values of the process-wide counters.
    pub fn snapshot() -> Counters {
        let mut stall_cycles = [0u64; StallKind::COUNT];
        for (slot, counter) in stall_cycles.iter_mut().zip(STALL_CYCLES.iter()) {
            *slot = counter.load(Ordering::Relaxed);
        }
        Counters {
            timing_runs: TIMING_RUNS.load(Ordering::Relaxed),
            sim_cycles: SIM_CYCLES.load(Ordering::Relaxed),
            warp_instructions: SIM_WARP_INSTRUCTIONS.load(Ordering::Relaxed),
            cache_hits: CACHE_HITS.load(Ordering::Relaxed),
            cache_misses: CACHE_MISSES.load(Ordering::Relaxed),
            stall_cycles,
        }
    }

    /// Counter growth since an earlier snapshot.
    pub fn delta_since(&self, earlier: &Counters) -> Counters {
        let mut stall_cycles = [0u64; StallKind::COUNT];
        for (i, slot) in stall_cycles.iter_mut().enumerate() {
            *slot = self.stall_cycles[i] - earlier.stall_cycles[i];
        }
        Counters {
            timing_runs: self.timing_runs - earlier.timing_runs,
            sim_cycles: self.sim_cycles - earlier.sim_cycles,
            warp_instructions: self.warp_instructions - earlier.warp_instructions,
            cache_hits: self.cache_hits - earlier.cache_hits,
            cache_misses: self.cache_misses - earlier.cache_misses,
            stall_cycles,
        }
    }

    /// Total stall warp-cycles across all kinds.
    pub fn stalled_cycles(&self) -> u64 {
        self.stall_cycles.iter().sum()
    }

    /// Add another counter record into this one.
    pub fn accumulate(&mut self, other: &Counters) {
        self.timing_runs += other.timing_runs;
        self.sim_cycles += other.sim_cycles;
        self.warp_instructions += other.warp_instructions;
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
        for (slot, n) in self.stall_cycles.iter_mut().zip(other.stall_cycles) {
            *slot += n;
        }
    }
}

// ---------------------------------------------------------------------
// Per-run counter scopes
// ---------------------------------------------------------------------

// The process-wide counters above are shared by every thread, so two
// experiments running concurrently on the parallel executor interleave
// their cache-hit/run counts and neither can be attributed. Counter
// scopes solve attribution without giving up the global view: every
// `record_*` call *also* adds to each scope active on the calling thread,
// and [`with_counter_scope`] hands the accumulated delta back to the
// caller. Scopes nest (an inner scope's work counts toward the outer one
// too) and are strictly thread-local: work a closure hands to *other*
// threads is only visible to their own scopes, which is exactly the
// executor-boundary contract of `peakperf-bench::exec` — one job runs
// entirely on one worker thread.
thread_local! {
    static SCOPES: RefCell<Vec<Counters>> = const { RefCell::new(Vec::new()) };
}

/// Run `f` and return its result together with the simulation-counter
/// growth produced *by the calling thread* while `f` ran.
///
/// Unlike a global [`Counters::snapshot`]/[`Counters::delta_since`] pair,
/// the delta is unaffected by concurrent work on other threads, so
/// per-experiment cache-hit/miss and run counts stay attributable under
/// the parallel executor. The process-global counters are updated as
/// before.
pub fn with_counter_scope<T>(f: impl FnOnce() -> T) -> (T, Counters) {
    SCOPES.with(|s| s.borrow_mut().push(Counters::default()));
    // Pop the scope even if `f` unwinds, so a caught panic (the harness
    // runs experiments under `catch_unwind`) cannot leave a stale frame
    // that would misattribute later work on this thread.
    struct PopOnDrop;
    impl Drop for PopOnDrop {
        fn drop(&mut self) {
            SCOPES.with(|s| {
                s.borrow_mut().pop();
            });
        }
    }
    let guard = PopOnDrop;
    let value = f();
    let delta = SCOPES.with(|s| s.borrow().last().copied().unwrap_or_default());
    drop(guard);
    (value, delta)
}

fn scope_record(f: impl Fn(&mut Counters)) {
    SCOPES.with(|s| {
        for frame in s.borrow_mut().iter_mut() {
            f(frame);
        }
    });
}

pub(crate) fn record_timing_run(report: &crate::timing::TimingReport) {
    TIMING_RUNS.fetch_add(1, Ordering::Relaxed);
    SIM_CYCLES.fetch_add(report.cycles, Ordering::Relaxed);
    SIM_WARP_INSTRUCTIONS.fetch_add(report.warp_instructions, Ordering::Relaxed);
    for (&kind, &n) in &report.stalls {
        STALL_CYCLES[kind.index()].fetch_add(n, Ordering::Relaxed);
    }
    scope_record(|c| {
        c.timing_runs += 1;
        c.sim_cycles += report.cycles;
        c.warp_instructions += report.warp_instructions;
        for (&kind, &n) in &report.stalls {
            c.stall_cycles[kind.index()] += n;
        }
    });
}

pub(crate) fn record_cache_hit() {
    CACHE_HITS.fetch_add(1, Ordering::Relaxed);
    scope_record(|c| c.cache_hits += 1);
}

pub(crate) fn record_cache_miss() {
    CACHE_MISSES.fetch_add(1, Ordering::Relaxed);
    scope_record(|c| c.cache_misses += 1);
}

/// Instruction-mix counters, keyed by mnemonic.
///
/// The paper reports, e.g., that 80.5% of executed instructions in the
/// 1024×1024 SGEMM are FFMA and 13.4% LDS.64 (Section 4); this type
/// produces those numbers.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct InstMix {
    counts: BTreeMap<String, u64>,
    total: u64,
}

impl InstMix {
    /// An empty mix.
    pub fn new() -> InstMix {
        InstMix::default()
    }

    /// Record `n` executions of `inst`.
    pub fn record(&mut self, inst: &Instruction, n: u64) {
        *self.counts.entry(inst.op.mnemonic()).or_insert(0) += n;
        self.total += n;
    }

    /// Record `n` executions of a mnemonic directly (used when
    /// reconstructing a mix from a serialized cache entry).
    pub fn add_count(&mut self, mnemonic: &str, n: u64) {
        *self.counts.entry(mnemonic.to_owned()).or_insert(0) += n;
        self.total += n;
    }

    /// Total instructions recorded.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Count for one mnemonic (exact match).
    pub fn count(&self, mnemonic: &str) -> u64 {
        self.counts.get(mnemonic).copied().unwrap_or(0)
    }

    /// Sum of counts over mnemonics starting with `prefix`.
    pub fn count_prefix(&self, prefix: &str) -> u64 {
        self.counts
            .iter()
            .filter(|(m, _)| m.starts_with(prefix))
            .map(|(_, &c)| c)
            .sum()
    }

    /// Fraction (0..=1) of instructions whose mnemonic starts with `prefix`.
    pub fn fraction_prefix(&self, prefix: &str) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.count_prefix(prefix) as f64 / self.total as f64
        }
    }

    /// Iterate over `(mnemonic, count)` in lexical order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counts.iter().map(|(m, &c)| (m.as_str(), c))
    }
}

impl fmt::Display for InstMix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (m, c) in self.iter() {
            writeln!(
                f,
                "{m:<12} {c:>12} ({:5.1}%)",
                100.0 * c as f64 / self.total.max(1) as f64
            )?;
        }
        Ok(())
    }
}

/// Statistics from a functional launch.
#[derive(Debug, Clone, Default)]
pub struct FuncStats {
    /// Warp instructions executed, by mnemonic.
    pub mix: InstMix,
    /// Thread instructions executed (warp instructions weighted by the
    /// number of active lanes).
    pub thread_instructions: u64,
    /// Warp instructions executed.
    pub warp_instructions: u64,
    /// FP32 floating-point operations performed (FFMA counts 2).
    pub flops: u64,
}

impl FuncStats {
    /// Record an executed warp instruction with `lanes` active lanes.
    pub fn record(&mut self, inst: &Instruction, lanes: u32) {
        self.mix.record(inst, 1);
        self.warp_instructions += 1;
        self.thread_instructions += u64::from(lanes);
        if inst.op.class() == OpClass::Fp32 {
            let per_lane = if matches!(inst.op, peakperf_sass::Op::Ffma { .. }) {
                2
            } else {
                1
            };
            self.flops += u64::from(lanes) * per_lane;
        }
    }

    /// Merge another stats record into this one.
    pub fn merge(&mut self, other: &FuncStats) {
        for (m, c) in other.mix.counts.iter() {
            *self.mix.counts.entry(m.clone()).or_insert(0) += c;
        }
        self.mix.total += other.mix.total;
        self.thread_instructions += other.thread_instructions;
        self.warp_instructions += other.warp_instructions;
        self.flops += other.flops;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use peakperf_sass::{Op, Operand, Reg};

    fn ffma() -> Instruction {
        Instruction::new(Op::Ffma {
            dst: Reg::r(0),
            a: Reg::r(1),
            b: Operand::reg(2),
            c: Reg::r(0),
        })
    }

    fn lds64() -> Instruction {
        Instruction::new(Op::Ld {
            space: peakperf_sass::MemSpace::Shared,
            width: peakperf_sass::MemWidth::B64,
            dst: Reg::r(4),
            addr: Reg::r(6),
            offset: 0,
        })
    }

    #[test]
    fn mix_fractions() {
        let mut s = FuncStats::default();
        for _ in 0..6 {
            s.record(&ffma(), 32);
        }
        s.record(&lds64(), 32);
        assert_eq!(s.mix.count("FFMA"), 6);
        assert_eq!(s.mix.count("LDS.64"), 1);
        assert!((s.mix.fraction_prefix("FFMA") - 6.0 / 7.0).abs() < 1e-12);
        assert_eq!(s.flops, 6 * 32 * 2);
        assert_eq!(s.thread_instructions, 7 * 32);
    }

    #[test]
    fn prefix_counts_cover_widths() {
        let mut m = InstMix::new();
        m.record(&lds64(), 3);
        assert_eq!(m.count_prefix("LDS"), 3);
        assert_eq!(m.count("LDS"), 0);
    }

    #[test]
    fn counter_scopes_attribute_per_thread_and_nest() {
        let ((), outer) = with_counter_scope(|| {
            record_cache_hit();
            let ((), inner) = with_counter_scope(|| {
                record_cache_miss();
                // Work on another thread is attributed to that thread's
                // scopes (none here), not to ours.
                std::thread::scope(|s| {
                    s.spawn(record_cache_hit);
                });
            });
            assert_eq!(inner.cache_misses, 1);
            assert_eq!(inner.cache_hits, 0);
        });
        // The outer scope saw its own hit plus the nested scope's miss,
        // but not the other thread's hit.
        assert_eq!(outer.cache_hits, 1);
        assert_eq!(outer.cache_misses, 1);
    }

    #[test]
    fn counter_scope_pops_on_unwind() {
        let hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let caught = std::panic::catch_unwind(|| {
            let _ = with_counter_scope(|| panic!("boom"));
        });
        std::panic::set_hook(hook);
        assert!(caught.is_err());
        // No stale frame: later work on this thread is not attributed to
        // the unwound scope (a stale frame would double-count into it).
        let ((), delta) = with_counter_scope(record_cache_hit);
        assert_eq!(delta.cache_hits, 1);
    }

    #[test]
    fn accumulate_sums_fields() {
        let mut a = Counters {
            timing_runs: 1,
            sim_cycles: 10,
            ..Counters::default()
        };
        let mut b = Counters::default();
        b.stall_cycles[0] = 4;
        b.cache_hits = 2;
        a.accumulate(&b);
        assert_eq!(a.timing_runs, 1);
        assert_eq!(a.stall_cycles[0], 4);
        assert_eq!(a.cache_hits, 2);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = FuncStats::default();
        a.record(&ffma(), 32);
        let mut b = FuncStats::default();
        b.record(&ffma(), 16);
        a.merge(&b);
        assert_eq!(a.mix.count("FFMA"), 2);
        assert_eq!(a.flops, 2 * 32 + 2 * 16);
    }
}
