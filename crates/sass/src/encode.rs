//! Binary instruction encoding.
//!
//! Each instruction occupies one 64-bit word, as on Fermi. The real SASS
//! encodings are undocumented; this layout is our own, but it reproduces the
//! structural properties the paper relies on — in particular **6-bit
//! register fields**, which is why Fermi/GK104 threads cannot address more
//! than 63 registers (Section 2).
//!
//! Field layout (bit 0 = LSB):
//!
//! ```text
//! all:    [0..3] guard pred  [3] guard negate  [4] has guard  [5..13] opcode
//! alu:    [13..19] dst       [19..25] srcA     [25..31] srcC
//!         [31..36] modifier (shift / cmp / special-reg id)
//!         [36..38] b-mode (0 reg, 1 imm, 2 const)
//!         reg:   [38..44] srcB
//!         imm:   [38..58] signed 20-bit immediate
//!         const: [38..42] bank, [42..56] word offset
//! mov32i: [13..19] dst       [19..51] imm32
//! mem:    [13..19] data reg  [19..25] addr reg [25..27] width
//!         [27..29] space     [29..53] signed 24-bit byte offset
//! ldc:    [13..19] dst       [19..23] bank     [23..37] word offset
//! bra:    [13..37] signed 24-bit instruction offset relative to pc+1
//! ```

use crate::op::{CmpOp, LogicOp, MemSpace, MemWidth, SpecialReg};
use crate::{Instruction, Op, Operand, Pred, Reg, SassError};

const OPC_NOP: u64 = 0;
const OPC_EXIT: u64 = 1;
const OPC_BRA: u64 = 2;
const OPC_BAR: u64 = 3;
const OPC_MOV: u64 = 4;
const OPC_MOV32I: u64 = 5;
const OPC_S2R: u64 = 6;
const OPC_FADD: u64 = 7;
const OPC_FMUL: u64 = 8;
const OPC_FFMA: u64 = 9;
const OPC_IADD: u64 = 10;
const OPC_IMUL: u64 = 11;
const OPC_IMAD: u64 = 12;
const OPC_ISCADD: u64 = 13;
const OPC_SHL: u64 = 14;
const OPC_SHR: u64 = 15;
const OPC_LOP_AND: u64 = 16;
const OPC_LOP_OR: u64 = 17;
const OPC_LOP_XOR: u64 = 18;
const OPC_ISETP: u64 = 19;
const OPC_LD: u64 = 20;
const OPC_ST: u64 = 21;
const OPC_LDC: u64 = 22;

fn bits(v: u64, lo: u32, hi: u32) -> u64 {
    (v >> lo) & ((1u64 << (hi - lo)) - 1)
}

fn sign_extend(v: u64, bits: u32) -> i64 {
    let shift = 64 - bits;
    ((v << shift) as i64) >> shift
}

fn fits_signed(v: i64, bits: u32) -> bool {
    let min = -(1i64 << (bits - 1));
    let max = (1i64 << (bits - 1)) - 1;
    (min..=max).contains(&v)
}

fn guard_bits(inst: &Instruction) -> u64 {
    match inst.pred {
        None => 0,
        Some(p) => u64::from(p.index()) | (u64::from(inst.pred_neg) << 3) | (1 << 4),
    }
}

fn encode_operand_b(b: Operand) -> Result<u64, SassError> {
    b.check()?;
    Ok(match b {
        Operand::Reg(r) => u64::from(r.index()) << 38,
        Operand::Imm(v) => (1u64 << 36) | ((v as u32 as u64 & 0xF_FFFF) << 38),
        Operand::Const { bank, offset } => {
            (2u64 << 36) | (u64::from(bank) << 38) | (u64::from(offset / 4) << 42)
        }
    })
}

fn decode_operand_b(w: u64) -> Result<Operand, SassError> {
    match bits(w, 36, 38) {
        0 => Ok(Operand::Reg(Reg::new(bits(w, 38, 44) as u8)?)),
        1 => Ok(Operand::Imm(sign_extend(bits(w, 38, 58), 20) as i32)),
        2 => Ok(Operand::Const {
            bank: bits(w, 38, 42) as u8,
            offset: (bits(w, 42, 56) as u32) * 4,
        }),
        m => Err(SassError::Decode {
            offset: 0,
            message: format!("invalid operand mode {m}"),
        }),
    }
}

fn alu(opcode: u64, dst: u64, a: Reg, b: Operand, c: Reg, modifier: u64) -> Result<u64, SassError> {
    Ok((opcode << 5)
        | (dst << 13)
        | (u64::from(a.index()) << 19)
        | (u64::from(c.index()) << 25)
        | (modifier << 31)
        | encode_operand_b(b)?)
}

fn mem_space_tag(space: MemSpace) -> u64 {
    match space {
        MemSpace::Global => 0,
        MemSpace::Shared => 1,
        MemSpace::Local => 2,
    }
}

fn width_tag(width: MemWidth) -> u64 {
    match width {
        MemWidth::B32 => 0,
        MemWidth::B64 => 1,
        MemWidth::B128 => 2,
    }
}

fn special_reg_id(sr: SpecialReg) -> u64 {
    sr.index() as u64
}

fn cmp_id(cmp: CmpOp) -> u64 {
    cmp.index() as u64
}

/// Encode one instruction at instruction index `index` (needed for branch
/// offsets) into its 64-bit word.
///
/// # Errors
///
/// Returns an error if an immediate/offset does not fit its field.
pub fn encode(inst: &Instruction, index: u32) -> Result<u64, SassError> {
    let g = guard_bits(inst);
    let w = match inst.op {
        Op::Nop => OPC_NOP << 5,
        Op::Exit => OPC_EXIT << 5,
        Op::Bar => OPC_BAR << 5,
        Op::Bra { target } => {
            let rel = i64::from(target) - (i64::from(index) + 1);
            if !fits_signed(rel, 24) {
                return Err(SassError::ImmediateOutOfRange {
                    value: rel,
                    bits: 24,
                });
            }
            (OPC_BRA << 5) | (((rel as u32 as u64) & 0xFF_FFFF) << 13)
        }
        Op::Mov { dst, src } => alu(OPC_MOV, u64::from(dst.index()), Reg::RZ, src, Reg::RZ, 0)?,
        Op::Mov32i { dst, imm } => {
            (OPC_MOV32I << 5) | (u64::from(dst.index()) << 13) | (u64::from(imm) << 19)
        }
        Op::S2r { dst, sr } => alu(
            OPC_S2R,
            u64::from(dst.index()),
            Reg::RZ,
            Operand::Reg(Reg::RZ),
            Reg::RZ,
            special_reg_id(sr),
        )?,
        Op::Fadd { dst, a, b } => alu(OPC_FADD, u64::from(dst.index()), a, b, Reg::RZ, 0)?,
        Op::Fmul { dst, a, b } => alu(OPC_FMUL, u64::from(dst.index()), a, b, Reg::RZ, 0)?,
        Op::Ffma { dst, a, b, c } => alu(OPC_FFMA, u64::from(dst.index()), a, b, c, 0)?,
        Op::Iadd { dst, a, b } => alu(OPC_IADD, u64::from(dst.index()), a, b, Reg::RZ, 0)?,
        Op::Imul { dst, a, b } => alu(OPC_IMUL, u64::from(dst.index()), a, b, Reg::RZ, 0)?,
        Op::Imad { dst, a, b, c } => alu(OPC_IMAD, u64::from(dst.index()), a, b, c, 0)?,
        Op::Iscadd { dst, a, b, shift } => {
            if shift > 31 {
                return Err(SassError::ImmediateOutOfRange {
                    value: i64::from(shift),
                    bits: 5,
                });
            }
            alu(
                OPC_ISCADD,
                u64::from(dst.index()),
                a,
                b,
                Reg::RZ,
                u64::from(shift),
            )?
        }
        Op::Shl { dst, a, b } => alu(OPC_SHL, u64::from(dst.index()), a, b, Reg::RZ, 0)?,
        Op::Shr { dst, a, b } => alu(OPC_SHR, u64::from(dst.index()), a, b, Reg::RZ, 0)?,
        Op::Lop { op, dst, a, b } => {
            let opcode = match op {
                LogicOp::And => OPC_LOP_AND,
                LogicOp::Or => OPC_LOP_OR,
                LogicOp::Xor => OPC_LOP_XOR,
            };
            alu(opcode, u64::from(dst.index()), a, b, Reg::RZ, 0)?
        }
        Op::Isetp { p, cmp, a, b } => {
            alu(OPC_ISETP, u64::from(p.index()), a, b, Reg::RZ, cmp_id(cmp))?
        }
        Op::Ld {
            space,
            width,
            dst,
            addr,
            offset,
        } => {
            if !fits_signed(i64::from(offset), 24) {
                return Err(SassError::ImmediateOutOfRange {
                    value: i64::from(offset),
                    bits: 24,
                });
            }
            (OPC_LD << 5)
                | (u64::from(dst.index()) << 13)
                | (u64::from(addr.index()) << 19)
                | (width_tag(width) << 25)
                | (mem_space_tag(space) << 27)
                | (((offset as u32 as u64) & 0xFF_FFFF) << 29)
        }
        Op::St {
            space,
            width,
            src,
            addr,
            offset,
        } => {
            if !fits_signed(i64::from(offset), 24) {
                return Err(SassError::ImmediateOutOfRange {
                    value: i64::from(offset),
                    bits: 24,
                });
            }
            (OPC_ST << 5)
                | (u64::from(src.index()) << 13)
                | (u64::from(addr.index()) << 19)
                | (width_tag(width) << 25)
                | (mem_space_tag(space) << 27)
                | (((offset as u32 as u64) & 0xFF_FFFF) << 29)
        }
        Op::Ldc { dst, bank, offset } => {
            Operand::Const { bank, offset }.check()?;
            (OPC_LDC << 5)
                | (u64::from(dst.index()) << 13)
                | (u64::from(bank) << 19)
                | (u64::from(offset / 4) << 23)
        }
    };
    Ok(w | g)
}

fn decode_guard(w: u64) -> (Option<Pred>, bool) {
    if bits(w, 4, 5) == 1 {
        (Some(Pred::p(bits(w, 0, 3) as u8)), bits(w, 3, 4) == 1)
    } else {
        (None, false)
    }
}

fn decode_reg(w: u64, lo: u32) -> Result<Reg, SassError> {
    Reg::new(bits(w, lo, lo + 6) as u8)
}

fn decode_mem_space(tag: u64, offset: usize) -> Result<MemSpace, SassError> {
    match tag {
        0 => Ok(MemSpace::Global),
        1 => Ok(MemSpace::Shared),
        2 => Ok(MemSpace::Local),
        t => Err(SassError::Decode {
            offset,
            message: format!("invalid memory space tag {t}"),
        }),
    }
}

fn decode_width(tag: u64, offset: usize) -> Result<MemWidth, SassError> {
    match tag {
        0 => Ok(MemWidth::B32),
        1 => Ok(MemWidth::B64),
        2 => Ok(MemWidth::B128),
        t => Err(SassError::Decode {
            offset,
            message: format!("invalid memory width tag {t}"),
        }),
    }
}

/// Decode the 64-bit word of the instruction at index `index`.
///
/// # Errors
///
/// Returns [`SassError::Decode`] on unknown opcodes or malformed fields.
pub fn decode(w: u64, index: u32) -> Result<Instruction, SassError> {
    let (pred, pred_neg) = decode_guard(w);
    let opcode = bits(w, 5, 13);
    let byte_offset = index as usize * 8;
    let op = match opcode {
        OPC_NOP => Op::Nop,
        OPC_EXIT => Op::Exit,
        OPC_BAR => Op::Bar,
        OPC_BRA => {
            let rel = sign_extend(bits(w, 13, 37), 24);
            let target = i64::from(index) + 1 + rel;
            if target < 0 || target > u32::MAX.into() {
                return Err(SassError::Decode {
                    offset: byte_offset,
                    message: format!("branch target {target} out of range"),
                });
            }
            Op::Bra {
                target: target as u32,
            }
        }
        OPC_MOV => Op::Mov {
            dst: decode_reg(w, 13)?,
            src: decode_operand_b(w)?,
        },
        OPC_MOV32I => Op::Mov32i {
            dst: decode_reg(w, 13)?,
            imm: bits(w, 19, 51) as u32,
        },
        OPC_S2R => {
            let id = bits(w, 31, 36) as usize;
            let sr = *SpecialReg::ALL.get(id).ok_or_else(|| SassError::Decode {
                offset: byte_offset,
                message: format!("invalid special register id {id}"),
            })?;
            Op::S2r {
                dst: decode_reg(w, 13)?,
                sr,
            }
        }
        OPC_FADD => Op::Fadd {
            dst: decode_reg(w, 13)?,
            a: decode_reg(w, 19)?,
            b: decode_operand_b(w)?,
        },
        OPC_FMUL => Op::Fmul {
            dst: decode_reg(w, 13)?,
            a: decode_reg(w, 19)?,
            b: decode_operand_b(w)?,
        },
        OPC_FFMA => Op::Ffma {
            dst: decode_reg(w, 13)?,
            a: decode_reg(w, 19)?,
            b: decode_operand_b(w)?,
            c: decode_reg(w, 25)?,
        },
        OPC_IADD => Op::Iadd {
            dst: decode_reg(w, 13)?,
            a: decode_reg(w, 19)?,
            b: decode_operand_b(w)?,
        },
        OPC_IMUL => Op::Imul {
            dst: decode_reg(w, 13)?,
            a: decode_reg(w, 19)?,
            b: decode_operand_b(w)?,
        },
        OPC_IMAD => Op::Imad {
            dst: decode_reg(w, 13)?,
            a: decode_reg(w, 19)?,
            b: decode_operand_b(w)?,
            c: decode_reg(w, 25)?,
        },
        OPC_ISCADD => Op::Iscadd {
            dst: decode_reg(w, 13)?,
            a: decode_reg(w, 19)?,
            b: decode_operand_b(w)?,
            shift: bits(w, 31, 36) as u8,
        },
        OPC_SHL => Op::Shl {
            dst: decode_reg(w, 13)?,
            a: decode_reg(w, 19)?,
            b: decode_operand_b(w)?,
        },
        OPC_SHR => Op::Shr {
            dst: decode_reg(w, 13)?,
            a: decode_reg(w, 19)?,
            b: decode_operand_b(w)?,
        },
        OPC_LOP_AND | OPC_LOP_OR | OPC_LOP_XOR => {
            let op = match opcode {
                OPC_LOP_AND => LogicOp::And,
                OPC_LOP_OR => LogicOp::Or,
                _ => LogicOp::Xor,
            };
            Op::Lop {
                op,
                dst: decode_reg(w, 13)?,
                a: decode_reg(w, 19)?,
                b: decode_operand_b(w)?,
            }
        }
        OPC_ISETP => {
            let id = bits(w, 31, 36) as usize;
            let cmp = *CmpOp::ALL.get(id).ok_or_else(|| SassError::Decode {
                offset: byte_offset,
                message: format!("invalid comparison id {id}"),
            })?;
            Op::Isetp {
                p: Pred::new(bits(w, 13, 16) as u8)?,
                cmp,
                a: decode_reg(w, 19)?,
                b: decode_operand_b(w)?,
            }
        }
        OPC_LD => Op::Ld {
            space: decode_mem_space(bits(w, 27, 29), byte_offset)?,
            width: decode_width(bits(w, 25, 27), byte_offset)?,
            dst: decode_reg(w, 13)?,
            addr: decode_reg(w, 19)?,
            offset: sign_extend(bits(w, 29, 53), 24) as i32,
        },
        OPC_ST => Op::St {
            space: decode_mem_space(bits(w, 27, 29), byte_offset)?,
            width: decode_width(bits(w, 25, 27), byte_offset)?,
            src: decode_reg(w, 13)?,
            addr: decode_reg(w, 19)?,
            offset: sign_extend(bits(w, 29, 53), 24) as i32,
        },
        OPC_LDC => Op::Ldc {
            dst: decode_reg(w, 13)?,
            bank: bits(w, 19, 23) as u8,
            offset: (bits(w, 23, 37) as u32) * 4,
        },
        other => {
            return Err(SassError::Decode {
                offset: byte_offset,
                message: format!("unknown opcode {other}"),
            })
        }
    };
    Ok(Instruction { pred, pred_neg, op })
}

/// Encode a whole instruction stream.
///
/// # Errors
///
/// Propagates the first per-instruction encoding error.
pub fn encode_stream(code: &[Instruction]) -> Result<Vec<u64>, SassError> {
    code.iter()
        .enumerate()
        .map(|(i, inst)| encode(inst, i as u32))
        .collect()
}

/// Decode a whole instruction stream.
///
/// # Errors
///
/// Propagates the first per-instruction decoding error.
pub fn decode_stream(words: &[u64]) -> Result<Vec<Instruction>, SassError> {
    words
        .iter()
        .enumerate()
        .map(|(i, &w)| decode(w, i as u32))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Instruction;

    fn roundtrip(inst: Instruction, index: u32) {
        let w = encode(&inst, index).unwrap();
        let back = decode(w, index).unwrap();
        assert_eq!(back, inst, "word {w:#018x}");
    }

    #[test]
    fn alu_round_trips() {
        roundtrip(
            Instruction::new(Op::Ffma {
                dst: Reg::r(8),
                a: Reg::r(4),
                b: Operand::reg(5),
                c: Reg::r(8),
            }),
            0,
        );
        roundtrip(
            Instruction::new(Op::Iadd {
                dst: Reg::r(2),
                a: Reg::r(3),
                b: Operand::Imm(-1),
            }),
            3,
        );
        roundtrip(
            Instruction::new(Op::Fmul {
                dst: Reg::r(1),
                a: Reg::r(2),
                b: Operand::Const {
                    bank: 0,
                    offset: 0x24,
                },
            }),
            1,
        );
        roundtrip(
            Instruction::new(Op::Iscadd {
                dst: Reg::r(10),
                a: Reg::r(11),
                b: Operand::reg(12),
                shift: 4,
            }),
            9,
        );
    }

    #[test]
    fn guard_round_trips() {
        roundtrip(Instruction::predicated(Pred::p(3), true, Op::Exit), 7);
        roundtrip(Instruction::predicated(Pred::p(0), false, Op::Nop), 0);
    }

    #[test]
    fn branches_encode_relative() {
        // Backward branch.
        roundtrip(Instruction::new(Op::Bra { target: 2 }), 100);
        // Forward branch.
        roundtrip(Instruction::new(Op::Bra { target: 500 }), 10);
        // Self loop.
        roundtrip(Instruction::new(Op::Bra { target: 5 }), 5);
    }

    #[test]
    fn memory_round_trips() {
        for space in [MemSpace::Global, MemSpace::Shared, MemSpace::Local] {
            for width in MemWidth::ALL {
                roundtrip(
                    Instruction::new(Op::Ld {
                        space,
                        width,
                        dst: Reg::r(12),
                        addr: Reg::r(20),
                        offset: -64,
                    }),
                    2,
                );
                roundtrip(
                    Instruction::new(Op::St {
                        space,
                        width,
                        src: Reg::r(4),
                        addr: Reg::r(21),
                        offset: 0x1000,
                    }),
                    2,
                );
            }
        }
    }

    #[test]
    fn mov32i_carries_full_word() {
        roundtrip(
            Instruction::new(Op::Mov32i {
                dst: Reg::r(0),
                imm: 0xDEAD_BEEF,
            }),
            0,
        );
    }

    #[test]
    fn ldc_round_trips() {
        roundtrip(
            Instruction::new(Op::Ldc {
                dst: Reg::r(7),
                bank: 0,
                offset: 0x20,
            }),
            0,
        );
    }

    #[test]
    fn six_bit_register_fields_enforce_limit() {
        // The encoding cannot express R64: Reg construction already fails,
        // which is exactly the ISA constraint behind Equation 2.
        assert!(Reg::new(64).is_err());
    }

    #[test]
    fn immediates_out_of_range_error() {
        let inst = Instruction::new(Op::Iadd {
            dst: Reg::r(0),
            a: Reg::r(1),
            b: Operand::Imm(1 << 20),
        });
        assert!(encode(&inst, 0).is_err());

        let inst = Instruction::new(Op::Ld {
            space: MemSpace::Global,
            width: MemWidth::B32,
            dst: Reg::r(0),
            addr: Reg::r(1),
            offset: 1 << 24,
        });
        assert!(encode(&inst, 0).is_err());
    }

    #[test]
    fn unknown_opcode_rejected() {
        let w = 0xFFu64 << 5;
        assert!(decode(w, 0).is_err());
    }

    #[test]
    fn stream_round_trip() {
        let code = vec![
            Instruction::new(Op::S2r {
                dst: Reg::r(0),
                sr: SpecialReg::TidX,
            }),
            Instruction::new(Op::Isetp {
                p: Pred::p(0),
                cmp: CmpOp::Lt,
                a: Reg::r(0),
                b: Operand::Imm(32),
            }),
            Instruction::predicated(Pred::p(0), true, Op::Bra { target: 0 }),
            Instruction::new(Op::Exit),
        ];
        let words = encode_stream(&code).unwrap();
        assert_eq!(decode_stream(&words).unwrap(), code);
    }
}
