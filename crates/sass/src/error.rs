//! Error type shared by the assembler, encoder, and validators.

use std::fmt;

/// Errors produced by the SASS toolchain.
#[derive(Debug, Clone, PartialEq)]
pub enum SassError {
    /// A register index does not fit the 6-bit encoding field.
    RegisterOutOfRange {
        /// The offending index.
        index: u8,
    },
    /// A predicate index does not fit the 3-bit encoding field.
    PredicateOutOfRange {
        /// The offending index.
        index: u8,
    },
    /// An immediate does not fit its encoding field.
    ImmediateOutOfRange {
        /// The value that did not fit.
        value: i64,
        /// Width of the field in bits.
        bits: u32,
    },
    /// A constant-bank operand is out of range.
    ConstOutOfRange {
        /// Constant bank index.
        bank: u8,
        /// Byte offset within the bank.
        offset: u32,
    },
    /// Parse error in assembly text.
    Parse {
        /// 1-based source line.
        line: usize,
        /// Description of the problem.
        message: String,
    },
    /// An undefined label was referenced.
    UndefinedLabel {
        /// The label name.
        name: String,
    },
    /// A label was defined twice.
    DuplicateLabel {
        /// The label name.
        name: String,
    },
    /// Binary decoding failed.
    Decode {
        /// Byte offset of the failure.
        offset: usize,
        /// Description of the problem.
        message: String,
    },
    /// Structural validation failed (alignment, register budget, ...).
    Validate {
        /// Instruction index within the kernel, if applicable.
        index: Option<usize>,
        /// Description of the violated constraint.
        message: String,
    },
    /// The module container bytes are malformed.
    Container {
        /// Description of the problem.
        message: String,
    },
}

impl fmt::Display for SassError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SassError::RegisterOutOfRange { index } => {
                write!(f, "register index {index} exceeds the 6-bit field (max 63)")
            }
            SassError::PredicateOutOfRange { index } => {
                write!(f, "predicate index {index} exceeds the 3-bit field (max 7)")
            }
            SassError::ImmediateOutOfRange { value, bits } => {
                write!(f, "immediate {value} does not fit in {bits} bits")
            }
            SassError::ConstOutOfRange { bank, offset } => {
                write!(f, "constant operand c[{bank:#x}][{offset:#x}] out of range")
            }
            SassError::Parse { line, message } => write!(f, "line {line}: {message}"),
            SassError::UndefinedLabel { name } => write!(f, "undefined label `{name}`"),
            SassError::DuplicateLabel { name } => write!(f, "duplicate label `{name}`"),
            SassError::Decode { offset, message } => {
                write!(f, "decode error at byte {offset}: {message}")
            }
            SassError::Validate { index, message } => match index {
                Some(i) => write!(f, "instruction {i}: {message}"),
                None => f.write_str(message),
            },
            SassError::Container { message } => write!(f, "malformed module: {message}"),
        }
    }
}

impl std::error::Error for SassError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_lowercase_and_informative() {
        let e = SassError::RegisterOutOfRange { index: 70 };
        assert!(e.to_string().contains("70"));
        let e = SassError::Parse {
            line: 3,
            message: "expected register".into(),
        };
        assert_eq!(e.to_string(), "line 3: expected register");
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_bounds<T: Send + Sync + std::error::Error>() {}
        assert_bounds::<SassError>();
    }
}
