//! Source operands for ALU instructions.

use std::fmt;

use crate::{Reg, SassError};

/// The maximum signed immediate width of the generic ALU encoding.
pub const IMM_BITS: u32 = 20;

/// A source operand of an ALU instruction: a register, a signed 20-bit
/// immediate, or a constant-bank location.
///
/// Mirrors the Fermi operand model: the *last* register-or-immediate source
/// slot of an arithmetic instruction may instead name an immediate or a
/// `c[bank][offset]` constant. Shared memory is deliberately *not* an
/// operand kind — that restriction is the core of the paper's analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Operand {
    /// A general-purpose register.
    Reg(Reg),
    /// A signed immediate; must fit in 20 bits.
    Imm(i32),
    /// A 32-bit word in a constant bank (`c[bank][offset]`); `offset` is a
    /// byte offset and must be 4-byte aligned.
    Const {
        /// Constant bank index (0..=15). Bank 0 holds kernel parameters.
        bank: u8,
        /// Byte offset within the bank (0..=0xFFFC, 4-byte aligned).
        offset: u32,
    },
}

impl Operand {
    /// Shorthand for a register operand.
    pub fn reg(index: u8) -> Operand {
        Operand::Reg(Reg::r(index))
    }

    /// The register if this operand is one.
    pub fn as_reg(self) -> Option<Reg> {
        match self {
            Operand::Reg(r) => Some(r),
            _ => None,
        }
    }

    /// Check the operand's encodability constraints.
    ///
    /// # Errors
    ///
    /// [`SassError::ImmediateOutOfRange`] if an immediate exceeds 20 signed
    /// bits; [`SassError::ConstOutOfRange`] if a constant operand is
    /// misaligned or outside the 16-bank / 64 KiB-per-bank space.
    pub fn check(self) -> Result<(), SassError> {
        match self {
            Operand::Reg(_) => Ok(()),
            Operand::Imm(v) => {
                let min = -(1 << (IMM_BITS - 1));
                let max = (1 << (IMM_BITS - 1)) - 1;
                if i64::from(v) < min || i64::from(v) > max {
                    Err(SassError::ImmediateOutOfRange {
                        value: i64::from(v),
                        bits: IMM_BITS,
                    })
                } else {
                    Ok(())
                }
            }
            Operand::Const { bank, offset } => {
                if bank > 15 || offset > 0xFFFC || offset % 4 != 0 {
                    Err(SassError::ConstOutOfRange { bank, offset })
                } else {
                    Ok(())
                }
            }
        }
    }
}

impl From<Reg> for Operand {
    fn from(r: Reg) -> Operand {
        Operand::Reg(r)
    }
}

impl From<i32> for Operand {
    fn from(v: i32) -> Operand {
        Operand::Imm(v)
    }
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Reg(r) => write!(f, "{r}"),
            Operand::Imm(v) => {
                if *v < 0 {
                    write!(f, "-{:#x}", -(i64::from(*v)))
                } else {
                    write!(f, "{v:#x}")
                }
            }
            Operand::Const { bank, offset } => write!(f, "c[{bank:#x}][{offset:#x}]"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn immediate_range() {
        assert!(Operand::Imm(0x7FFFF).check().is_ok());
        assert!(Operand::Imm(-0x80000).check().is_ok());
        assert!(Operand::Imm(0x80000).check().is_err());
        assert!(Operand::Imm(-0x80001).check().is_err());
    }

    #[test]
    fn const_constraints() {
        assert!(Operand::Const {
            bank: 0,
            offset: 0x20
        }
        .check()
        .is_ok());
        assert!(Operand::Const {
            bank: 0,
            offset: 0x21
        }
        .check()
        .is_err());
        assert!(Operand::Const {
            bank: 16,
            offset: 0
        }
        .check()
        .is_err());
        assert!(Operand::Const {
            bank: 0,
            offset: 0x10000
        }
        .check()
        .is_err());
    }

    #[test]
    fn display_forms() {
        assert_eq!(Operand::reg(7).to_string(), "R7");
        assert_eq!(Operand::Imm(16).to_string(), "0x10");
        assert_eq!(Operand::Imm(-4).to_string(), "-0x4");
        assert_eq!(
            Operand::Const {
                bank: 0,
                offset: 0x24
            }
            .to_string(),
            "c[0x0][0x24]"
        );
    }

    #[test]
    fn conversions() {
        let o: Operand = Reg::r(3).into();
        assert_eq!(o, Operand::reg(3));
        let o: Operand = 5i32.into();
        assert_eq!(o, Operand::Imm(5));
    }
}
