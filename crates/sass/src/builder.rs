//! Programmatic kernel construction.
//!
//! The kernel generators in `peakperf-kernels` build SGEMM and
//! microbenchmark kernels instruction by instruction; this builder provides
//! labels with back-patching, per-instruction control notation, and
//! automatic register counting.

use std::collections::HashMap;

use peakperf_arch::Generation;

use crate::ctl::CtlInfo;
use crate::op::{CmpOp, MemSpace, MemWidth, SpecialReg};
use crate::{Instruction, Kernel, Op, Operand, Pred, Reg, SassError};

/// A forward-referencable branch target.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Label(usize);

/// Incremental builder for a [`Kernel`].
///
/// # Example
///
/// ```
/// use peakperf_sass::{Generation, KernelBuilder, Op, Operand, Reg, Pred, CmpOp};
///
/// let mut b = KernelBuilder::new("count", Generation::Fermi);
/// b.mov32i(Reg::r(0), 8);
/// let top = b.label_here();
/// b.iadd(Reg::r(0), Reg::r(0), Operand::Imm(-1));
/// b.isetp(Pred::p(0), CmpOp::Gt, Reg::r(0), Operand::Imm(0));
/// b.bra_if(Pred::p(0), false, top);
/// b.exit();
/// let kernel = b.finish()?;
/// assert_eq!(kernel.code.len(), 5);
/// # Ok::<(), peakperf_sass::SassError>(())
/// ```
#[derive(Debug)]
pub struct KernelBuilder {
    generation: Generation,
    kernel: Kernel,
    ctl: Vec<CtlInfo>,
    pending_pred: Option<(Pred, bool)>,
    pending_ctl: Option<CtlInfo>,
    labels: Vec<Option<u32>>,
    fixups: HashMap<usize, Label>,
    max_reg_seen: u32,
}

impl KernelBuilder {
    /// Start building a kernel for the given generation.
    pub fn new(name: impl Into<String>, generation: Generation) -> KernelBuilder {
        KernelBuilder {
            generation,
            kernel: Kernel::new(name),
            ctl: Vec::new(),
            pending_pred: None,
            pending_ctl: None,
            labels: Vec::new(),
            fixups: HashMap::new(),
            max_reg_seen: 0,
        }
    }

    /// Target generation of the kernel under construction.
    pub fn generation(&self) -> Generation {
        self.generation
    }

    /// Declare static shared memory for the block.
    pub fn shared_bytes(&mut self, bytes: u32) -> &mut Self {
        self.kernel.shared_bytes = bytes;
        self
    }

    /// Declare per-thread local (spill) memory.
    pub fn local_bytes(&mut self, bytes: u32) -> &mut Self {
        self.kernel.local_bytes = bytes;
        self
    }

    /// Declare the next kernel parameter and return its constant-bank
    /// operand.
    pub fn param(&mut self, name: impl Into<String>) -> Operand {
        let offset = self.kernel.add_param(name);
        Operand::Const { bank: 0, offset }
    }

    /// Number of instructions emitted so far.
    pub fn len(&self) -> usize {
        self.kernel.code.len()
    }

    /// Whether no instructions have been emitted.
    pub fn is_empty(&self) -> bool {
        self.kernel.code.is_empty()
    }

    /// Create an unbound label for a forward branch.
    pub fn new_label(&mut self) -> Label {
        self.labels.push(None);
        Label(self.labels.len() - 1)
    }

    /// Bind `label` to the current position.
    ///
    /// # Panics
    ///
    /// Panics if the label was already bound.
    pub fn bind(&mut self, label: Label) {
        let slot = &mut self.labels[label.0];
        assert!(slot.is_none(), "label bound twice");
        *slot = Some(self.kernel.code.len() as u32);
    }

    /// Create a label bound to the current position (loop heads).
    pub fn label_here(&mut self) -> Label {
        let l = self.new_label();
        self.bind(l);
        l
    }

    /// Predicate the *next* emitted instruction with `@pred` (or `@!pred`).
    pub fn with_pred(&mut self, pred: Pred, negated: bool) -> &mut Self {
        self.pending_pred = Some((pred, negated));
        self
    }

    /// Attach control notation to the *next* emitted instruction.
    pub fn with_ctl(&mut self, ctl: CtlInfo) -> &mut Self {
        self.pending_ctl = Some(ctl);
        self
    }

    /// Emit a raw operation.
    pub fn push(&mut self, op: Op) -> &mut Self {
        let (pred, pred_neg) = match self.pending_pred.take() {
            Some((p, n)) => (Some(p), n),
            None => (None, false),
        };
        let inst = Instruction { pred, pred_neg, op };
        for r in inst.op.def_regs().into_iter().chain(inst.op.use_regs()) {
            if !r.is_rz() {
                self.max_reg_seen = self.max_reg_seen.max(u32::from(r.index()) + 1);
            }
        }
        self.kernel.code.push(inst);
        self.ctl
            .push(self.pending_ctl.take().unwrap_or(CtlInfo::NONE));
        self
    }

    // ---- convenience emitters -------------------------------------------

    /// `NOP`.
    pub fn nop(&mut self) -> &mut Self {
        self.push(Op::Nop)
    }

    /// `EXIT`.
    pub fn exit(&mut self) -> &mut Self {
        self.push(Op::Exit)
    }

    /// `BAR.SYNC`.
    pub fn bar(&mut self) -> &mut Self {
        self.push(Op::Bar)
    }

    /// Unconditional branch to `label`.
    pub fn bra(&mut self, label: Label) -> &mut Self {
        self.fixups.insert(self.kernel.code.len(), label);
        self.push(Op::Bra { target: 0 })
    }

    /// Conditional branch: `@P BRA label` (or `@!P`).
    pub fn bra_if(&mut self, pred: Pred, negated: bool, label: Label) -> &mut Self {
        self.with_pred(pred, negated);
        self.bra(label)
    }

    /// `MOV dst, src`.
    pub fn mov(&mut self, dst: Reg, src: impl Into<Operand>) -> &mut Self {
        self.push(Op::Mov {
            dst,
            src: src.into(),
        })
    }

    /// `MOV32I dst, imm`.
    pub fn mov32i(&mut self, dst: Reg, imm: u32) -> &mut Self {
        self.push(Op::Mov32i { dst, imm })
    }

    /// `MOV32I dst, float_bits(v)`.
    pub fn mov_f32(&mut self, dst: Reg, v: f32) -> &mut Self {
        self.mov32i(dst, v.to_bits())
    }

    /// `S2R dst, sr`.
    pub fn s2r(&mut self, dst: Reg, sr: SpecialReg) -> &mut Self {
        self.push(Op::S2r { dst, sr })
    }

    /// `FADD dst, a, b`.
    pub fn fadd(&mut self, dst: Reg, a: Reg, b: impl Into<Operand>) -> &mut Self {
        self.push(Op::Fadd {
            dst,
            a,
            b: b.into(),
        })
    }

    /// `FMUL dst, a, b`.
    pub fn fmul(&mut self, dst: Reg, a: Reg, b: impl Into<Operand>) -> &mut Self {
        self.push(Op::Fmul {
            dst,
            a,
            b: b.into(),
        })
    }

    /// `FFMA dst, a, b, c`.
    pub fn ffma(&mut self, dst: Reg, a: Reg, b: impl Into<Operand>, c: Reg) -> &mut Self {
        self.push(Op::Ffma {
            dst,
            a,
            b: b.into(),
            c,
        })
    }

    /// `IADD dst, a, b`.
    pub fn iadd(&mut self, dst: Reg, a: Reg, b: impl Into<Operand>) -> &mut Self {
        self.push(Op::Iadd {
            dst,
            a,
            b: b.into(),
        })
    }

    /// `IMUL dst, a, b`.
    pub fn imul(&mut self, dst: Reg, a: Reg, b: impl Into<Operand>) -> &mut Self {
        self.push(Op::Imul {
            dst,
            a,
            b: b.into(),
        })
    }

    /// `IMAD dst, a, b, c`.
    pub fn imad(&mut self, dst: Reg, a: Reg, b: impl Into<Operand>, c: Reg) -> &mut Self {
        self.push(Op::Imad {
            dst,
            a,
            b: b.into(),
            c,
        })
    }

    /// `ISCADD dst, a, b, shift` (`dst = (a << shift) + b`).
    pub fn iscadd(&mut self, dst: Reg, a: Reg, b: impl Into<Operand>, shift: u8) -> &mut Self {
        self.push(Op::Iscadd {
            dst,
            a,
            b: b.into(),
            shift,
        })
    }

    /// `SHL dst, a, b`.
    pub fn shl(&mut self, dst: Reg, a: Reg, b: impl Into<Operand>) -> &mut Self {
        self.push(Op::Shl {
            dst,
            a,
            b: b.into(),
        })
    }

    /// `SHR dst, a, b`.
    pub fn shr(&mut self, dst: Reg, a: Reg, b: impl Into<Operand>) -> &mut Self {
        self.push(Op::Shr {
            dst,
            a,
            b: b.into(),
        })
    }

    /// `ISETP.cmp p, a, b`.
    pub fn isetp(&mut self, p: Pred, cmp: CmpOp, a: Reg, b: impl Into<Operand>) -> &mut Self {
        self.push(Op::Isetp {
            p,
            cmp,
            a,
            b: b.into(),
        })
    }

    /// Load: `LD/LDS/LDL[.width] dst, [addr+offset]`.
    pub fn ld(
        &mut self,
        space: MemSpace,
        width: MemWidth,
        dst: Reg,
        addr: Reg,
        offset: i32,
    ) -> &mut Self {
        self.push(Op::Ld {
            space,
            width,
            dst,
            addr,
            offset,
        })
    }

    /// Store: `ST/STS/STL[.width] [addr+offset], src`.
    pub fn st(
        &mut self,
        space: MemSpace,
        width: MemWidth,
        src: Reg,
        addr: Reg,
        offset: i32,
    ) -> &mut Self {
        self.push(Op::St {
            space,
            width,
            src,
            addr,
            offset,
        })
    }

    /// `LDC dst, c[bank][offset]`.
    pub fn ldc(&mut self, dst: Reg, bank: u8, offset: u32) -> &mut Self {
        self.push(Op::Ldc { dst, bank, offset })
    }

    /// Replace the control field of every already-emitted instruction that
    /// still carries [`CtlInfo::NONE`] with `f(&op)`. Used by kernel
    /// generators that tag hot instructions explicitly and fill in
    /// per-class defaults afterwards.
    pub fn retag_default_ctl(&mut self, f: impl Fn(&Op) -> CtlInfo) {
        for (i, inst) in self.kernel.code.iter().enumerate() {
            if self.ctl[i] == CtlInfo::NONE {
                self.ctl[i] = f(&inst.op);
            }
        }
    }

    /// Finish the kernel: resolve labels, set the register count to the
    /// highest register used (plus one), and attach control notation for
    /// Kepler targets.
    ///
    /// # Errors
    ///
    /// Returns [`SassError::UndefinedLabel`] if a referenced label was never
    /// bound, and propagates [`crate::validate_kernel`] failures.
    pub fn finish(mut self) -> Result<Kernel, SassError> {
        for (pos, label) in &self.fixups {
            let target = self.labels[label.0].ok_or_else(|| SassError::UndefinedLabel {
                name: format!("label#{}", label.0),
            })?;
            if let Op::Bra { target: t } = &mut self.kernel.code[*pos].op {
                *t = target;
            }
        }
        self.kernel.num_regs = self.kernel.num_regs.max(self.max_reg_seen);
        if self.generation.uses_control_notation() {
            self.kernel.ctl = Some(self.ctl);
        }
        crate::validate_kernel(&self.kernel, self.generation)?;
        Ok(self.kernel)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_labels_are_patched() {
        let mut b = KernelBuilder::new("t", Generation::Fermi);
        let end = b.new_label();
        b.bra(end);
        b.nop();
        b.nop();
        b.bind(end);
        b.exit();
        let k = b.finish().unwrap();
        assert_eq!(k.code[0].op, Op::Bra { target: 3 });
    }

    #[test]
    fn unbound_label_is_error() {
        let mut b = KernelBuilder::new("t", Generation::Fermi);
        let l = b.new_label();
        b.bra(l);
        b.exit();
        assert!(matches!(b.finish(), Err(SassError::UndefinedLabel { .. })));
    }

    #[test]
    fn register_count_is_inferred() {
        let mut b = KernelBuilder::new("t", Generation::Fermi);
        b.mov32i(Reg::r(17), 1);
        b.exit();
        let k = b.finish().unwrap();
        assert_eq!(k.num_regs, 18);
    }

    #[test]
    fn wide_load_counts_all_written_registers() {
        let mut b = KernelBuilder::new("t", Generation::Fermi);
        b.ld(MemSpace::Shared, MemWidth::B128, Reg::r(8), Reg::r(0), 0);
        b.exit();
        let k = b.finish().unwrap();
        assert_eq!(k.num_regs, 12); // R8..R11 written
    }

    #[test]
    fn kepler_kernels_get_ctl() {
        let mut b = KernelBuilder::new("t", Generation::Kepler);
        b.with_ctl(CtlInfo::stall(3));
        b.nop();
        b.exit();
        let k = b.finish().unwrap();
        let ctl = k.ctl.as_ref().unwrap();
        assert_eq!(ctl.len(), 2);
        assert_eq!(ctl[0].stall, 3);
    }

    #[test]
    fn pred_applies_to_next_instruction_only() {
        let mut b = KernelBuilder::new("t", Generation::Fermi);
        b.with_pred(Pred::p(1), true);
        b.nop();
        b.nop();
        b.exit();
        let k = b.finish().unwrap();
        assert_eq!(k.code[0].pred, Some(Pred::p(1)));
        assert!(k.code[0].pred_neg);
        assert_eq!(k.code[1].pred, None);
    }

    #[test]
    fn params_are_sequential_const_operands() {
        let mut b = KernelBuilder::new("t", Generation::Fermi);
        let p0 = b.param("n");
        let p1 = b.param("ptr");
        assert_eq!(
            p0,
            Operand::Const {
                bank: 0,
                offset: crate::PARAM_BASE
            }
        );
        assert_eq!(
            p1,
            Operand::Const {
                bank: 0,
                offset: crate::PARAM_BASE + 4
            }
        );
    }

    #[test]
    fn validation_runs_on_finish() {
        let mut b = KernelBuilder::new("t", Generation::Fermi);
        // Misaligned LDS.64 destination.
        b.ld(MemSpace::Shared, MemWidth::B64, Reg::r(7), Reg::r(0), 0);
        b.exit();
        assert!(b.finish().is_err());
    }
}
