//! A SASS-like GPU assembly toolchain for Fermi (GF110) and Kepler (GK104).
//!
//! The paper (Lai & Seznec, CGO 2013) programs NVIDIA GPUs in native
//! assembly through a patched version of the `asfermi` assembler. NVIDIA has
//! never documented the SASS encodings, so this crate implements a
//! *SASS-like* instruction set that preserves every property the paper's
//! analysis depends on:
//!
//! * arithmetic instructions cannot read shared memory — explicit
//!   [`Op::Lds`] loads are required (the root cause of the FFMA/LDS mixing
//!   problem of Section 4);
//! * register operands are encoded in **6-bit fields**, so at most 63
//!   general registers (plus the always-zero `RZ`) can be addressed — the
//!   hard limit of Equation 2;
//! * wide shared-memory loads (`LDS.64` / `LDS.128`) exist and impose
//!   register-alignment constraints;
//! * Kepler binaries interleave a *control notation* word before each group
//!   of 7 instructions (`0xXXXXXXX7 0x2XXXXXXX`, Section 3.2) that carries
//!   scheduling hints.
//!
//! The crate provides:
//!
//! * the instruction set ([`Op`], [`Instruction`], [`Reg`], [`Operand`]);
//! * a text assembler ([`assemble`]) and disassembler (`Display` on
//!   [`Instruction`] / [`Module`]);
//! * a binary encoder/decoder ([`encode`], [`decode`]) and a cubin-like
//!   container format ([`Module::to_bytes`] / [`Module::from_bytes`]);
//! * the Kepler control notation ([`ctl`]);
//! * a programmatic [`KernelBuilder`] with labels, used by the kernel
//!   generators in `peakperf-kernels`;
//! * a latency-aware list scheduler and automatic control-notation
//!   generator ([`sched`]), automating the Section 5.3 hand reorderings;
//! * a [`validate_kernel`] pass enforcing the ISA's structural constraints.
//!
//! # Example
//!
//! ```
//! use peakperf_sass::{assemble, Generation};
//!
//! let src = r#"
//! .kernel saxpy
//! .regs 8
//! S2R R0, SR_TID.X;
//! LDC R1, c[0x0][0x20];
//! ISETP.LT P0, R0, R1;
//! @!P0 EXIT;
//! EXIT;
//! "#;
//! let module = assemble(src, Generation::Fermi)?;
//! assert_eq!(module.kernels[0].name, "saxpy");
//! assert_eq!(module.kernels[0].code.len(), 5);
//! # Ok::<(), peakperf_sass::SassError>(())
//! ```

// This crate is the entry point of the fuzzed parse → validate → encode
// pipeline (see `peakperf-bench::fault`): malformed input must surface as a
// typed `SassError`, so panicking shortcuts are rejected outside test code.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

mod builder;
pub mod ctl;
mod encode;
mod error;
mod inst;
mod module;
mod op;
mod operand;
mod parse;
mod reg;
pub mod sched;
mod validate;

pub use builder::{KernelBuilder, Label};
pub use ctl::{CtlInfo, CtlWord};
pub use encode::{decode, decode_stream, encode, encode_stream};
pub use error::SassError;
pub use inst::Instruction;
pub use module::{Kernel, Module, ParamDesc};
pub use op::{CmpOp, LogicOp, MemSpace, MemWidth, Op, OpClass, SpecialReg};
pub use operand::Operand;
pub use parse::assemble;
pub use reg::{Pred, Reg};
pub use validate::{validate_instruction, validate_kernel};

pub use peakperf_arch::Generation;

/// Byte offset of the first kernel parameter in constant bank 0
/// (the Fermi ABI convention: `c[0x0][0x20]`).
pub const PARAM_BASE: u32 = 0x20;
