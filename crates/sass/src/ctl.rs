//! The Kepler control notation (Section 3.2 of the paper).
//!
//! Kepler (GK104) binaries embed static scheduling information: before each
//! group of 7 instructions, the compiler places a 64-bit word of the form
//! `0xXXXXXXX7 0x2XXXXXXX` — the low nibble `0x7` and the high nibble `0x2`
//! are identifiers, and the 56 bits in between are split into 7 fields of
//! 8 bits, one per following instruction. NVIDIA never disclosed the field
//! encoding; the paper (like this reproduction) uses a best-effort model:
//! per-instruction fields carrying a stall count, a yield hint and a
//! dual-issue flag.
//!
//! Our field layout (8 bits per instruction):
//!
//! ```text
//!   bits 0..4  stall   cycles to wait after issuing this instruction (0..15)
//!   bit  4     yield   prefer switching to another warp after this issue
//!   bit  5     dual    this instruction may dual-issue with its successor
//!   bits 6..8  reserved (kept zero; reserved bits round-trip)
//! ```

use std::fmt;

use crate::SassError;

/// Number of instructions covered by one control word.
pub const GROUP: usize = 7;

/// Scheduling control information for a single instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CtlInfo {
    /// Cycles the scheduler must wait after issuing this instruction before
    /// issuing the next instruction of the same warp (0..=15).
    pub stall: u8,
    /// Hint: deprioritize this warp after issue.
    pub yield_hint: bool,
    /// This instruction may be dual-issued with its successor.
    pub dual: bool,
}

impl CtlInfo {
    /// The neutral control field: no stall, no hints.
    pub const NONE: CtlInfo = CtlInfo {
        stall: 0,
        yield_hint: false,
        dual: false,
    };

    /// A plain stall of `n` cycles.
    ///
    /// # Panics
    ///
    /// Panics if `n > 15`.
    pub fn stall(n: u8) -> CtlInfo {
        assert!(n <= 15, "stall count {n} exceeds 4-bit field");
        CtlInfo {
            stall: n,
            yield_hint: false,
            dual: false,
        }
    }

    /// A stall of `n` cycles with the dual-issue flag set: this instruction
    /// may pair with its successor in the scheduler's second dispatch slot,
    /// and the stall then paces the pair as a whole.
    ///
    /// # Panics
    ///
    /// Panics if `n > 15`.
    pub fn dual_stall(n: u8) -> CtlInfo {
        assert!(n <= 15, "stall count {n} exceeds 4-bit field");
        CtlInfo {
            stall: n,
            yield_hint: false,
            dual: true,
        }
    }

    /// Pack into the 8-bit field.
    pub fn to_byte(self) -> u8 {
        (self.stall & 0xF) | (u8::from(self.yield_hint) << 4) | (u8::from(self.dual) << 5)
    }

    /// Unpack from the 8-bit field.
    ///
    /// # Errors
    ///
    /// Returns [`SassError::Decode`] if reserved bits are set.
    pub fn from_byte(b: u8) -> Result<CtlInfo, SassError> {
        if b & 0xC0 != 0 {
            return Err(SassError::Decode {
                offset: 0,
                message: format!("reserved control bits set in {b:#04x}"),
            });
        }
        Ok(CtlInfo {
            stall: b & 0xF,
            yield_hint: b & 0x10 != 0,
            dual: b & 0x20 != 0,
        })
    }
}

impl Default for CtlInfo {
    fn default() -> CtlInfo {
        CtlInfo::NONE
    }
}

impl fmt::Display for CtlInfo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "stall={}", self.stall)?;
        if self.yield_hint {
            f.write_str(" yield")?;
        }
        if self.dual {
            f.write_str(" dual")?;
        }
        Ok(())
    }
}

/// A packed control word covering up to [`GROUP`] instructions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CtlWord(pub u64);

/// Low-nibble identifier of a control word.
const LOW_ID: u64 = 0x7;
/// High-nibble identifier of a control word.
const HIGH_ID: u64 = 0x2;

impl CtlWord {
    /// Pack up to 7 per-instruction fields into a control word
    /// (`0x2XXXXXXX_XXXXXXX7` as a little-endian u64, matching the
    /// `0xXXXXXXX7 0x2XXXXXXX` two-word form the paper prints).
    ///
    /// Missing trailing fields (when the final group is short) are packed as
    /// [`CtlInfo::NONE`].
    ///
    /// # Panics
    ///
    /// Panics if `fields.len() > 7`.
    pub fn pack(fields: &[CtlInfo]) -> CtlWord {
        assert!(fields.len() <= GROUP, "control group longer than 7");
        let mut w: u64 = LOW_ID | (HIGH_ID << 60);
        for (i, info) in fields.iter().enumerate() {
            w |= u64::from(info.to_byte()) << (4 + 8 * i);
        }
        CtlWord(w)
    }

    /// Whether a raw 64-bit word carries the control-word identifiers.
    pub fn is_ctl(raw: u64) -> bool {
        raw & 0xF == LOW_ID && raw >> 60 == HIGH_ID
    }

    /// Unpack the 7 per-instruction fields.
    ///
    /// # Errors
    ///
    /// Returns [`SassError::Decode`] if the identifiers are wrong or a field
    /// has reserved bits set.
    pub fn unpack(self) -> Result<[CtlInfo; GROUP], SassError> {
        if !CtlWord::is_ctl(self.0) {
            return Err(SassError::Decode {
                offset: 0,
                message: format!("word {:#018x} lacks control identifiers", self.0),
            });
        }
        let mut out = [CtlInfo::NONE; GROUP];
        for (i, slot) in out.iter_mut().enumerate() {
            *slot = CtlInfo::from_byte(((self.0 >> (4 + 8 * i)) & 0xFF) as u8)?;
        }
        Ok(out)
    }
}

impl fmt::Display for CtlWord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Print as the paper does: two 32-bit halves, low half first.
        write!(f, "{:#010x} {:#010x}", self.0 & 0xFFFF_FFFF, self.0 >> 32)
    }
}

/// Interleave per-instruction control info into the word stream: one
/// [`CtlWord`] before each group of 7 instruction fields.
pub fn pack_stream(fields: &[CtlInfo]) -> Vec<CtlWord> {
    fields.chunks(GROUP).map(CtlWord::pack).collect()
}

/// Recover per-instruction control info for `n_insts` instructions from the
/// packed words.
///
/// # Errors
///
/// Returns [`SassError::Decode`] if there are too few words or any word is
/// malformed.
pub fn unpack_stream(words: &[CtlWord], n_insts: usize) -> Result<Vec<CtlInfo>, SassError> {
    let needed = n_insts.div_ceil(GROUP);
    if words.len() < needed {
        return Err(SassError::Decode {
            offset: 0,
            message: format!(
                "{} control words cannot cover {} instructions",
                words.len(),
                n_insts
            ),
        });
    }
    let mut out = Vec::with_capacity(n_insts);
    for (g, word) in words.iter().take(needed).enumerate() {
        let fields = word.unpack()?;
        let remaining = n_insts - g * GROUP;
        out.extend_from_slice(&fields[..remaining.min(GROUP)]);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_round_trip() {
        for stall in 0..16 {
            for yh in [false, true] {
                for dual in [false, true] {
                    let info = CtlInfo {
                        stall,
                        yield_hint: yh,
                        dual,
                    };
                    assert_eq!(CtlInfo::from_byte(info.to_byte()).unwrap(), info);
                }
            }
        }
    }

    #[test]
    fn reserved_bits_rejected() {
        assert!(CtlInfo::from_byte(0x40).is_err());
        assert!(CtlInfo::from_byte(0x80).is_err());
    }

    #[test]
    fn word_identifiers_match_paper_format() {
        let w = CtlWord::pack(&[CtlInfo::stall(2); 7]);
        // Low nibble 0x7, high nibble 0x2 — the 0x...7 0x2... pattern.
        assert_eq!(w.0 & 0xF, 0x7);
        assert_eq!(w.0 >> 60, 0x2);
        assert!(CtlWord::is_ctl(w.0));
        assert!(!CtlWord::is_ctl(0xDEAD_BEEF));
    }

    #[test]
    fn word_round_trip() {
        let fields = [
            CtlInfo::stall(1),
            CtlInfo::NONE,
            CtlInfo {
                stall: 4,
                yield_hint: true,
                dual: false,
            },
            CtlInfo {
                stall: 0,
                yield_hint: false,
                dual: true,
            },
            CtlInfo::stall(15),
            CtlInfo::NONE,
            CtlInfo::stall(7),
        ];
        let w = CtlWord::pack(&fields);
        assert_eq!(w.unpack().unwrap(), fields);
    }

    #[test]
    fn stream_round_trip_with_partial_group() {
        let fields: Vec<CtlInfo> = (0..17).map(|i| CtlInfo::stall(i % 16)).collect();
        let words = pack_stream(&fields);
        assert_eq!(words.len(), 3);
        let back = unpack_stream(&words, 17).unwrap();
        assert_eq!(back, fields);
    }

    #[test]
    fn stream_undersupply_is_error() {
        let words = pack_stream(&[CtlInfo::NONE; 7]);
        assert!(unpack_stream(&words, 8).is_err());
    }

    #[test]
    fn display_prints_two_halves() {
        let w = CtlWord::pack(&[CtlInfo::NONE; 7]);
        let s = w.to_string();
        assert!(s.starts_with("0x"));
        assert!(s.contains(' '));
    }
}
