//! The text assembler.
//!
//! Parses the canonical assembly dialect produced by the `Display`
//! implementations, plus directives:
//!
//! ```text
//! .kernel <name>      start a new kernel
//! .regs <n>           registers per thread
//! .shared <bytes>     static shared memory per block
//! .local <bytes>      per-thread local (spill) memory
//! .param <name>       declare the next kernel parameter
//! .ctl <byte>         control-notation field for the next instruction
//! <label>:            define a branch label
//! @P0 / @!P0          predicate guard prefix
//! ```
//!
//! Branch targets may be labels or absolute instruction indices, so
//! disassembled output re-assembles bit-identically.

use std::collections::HashMap;

use peakperf_arch::Generation;

use crate::ctl::CtlInfo;
use crate::op::{CmpOp, LogicOp, MemSpace, MemWidth, SpecialReg};
use crate::{Instruction, Kernel, Module, Op, Operand, Pred, Reg, SassError};

/// Assemble a source text into a [`Module`] for the given generation.
///
/// Kepler modules get a control-notation vector (defaulting to
/// [`CtlInfo::NONE`] per instruction, overridable with `.ctl`).
///
/// # Errors
///
/// Returns [`SassError::Parse`] with a 1-based line number on syntax errors,
/// and label-resolution errors for undefined/duplicate labels.
pub fn assemble(source: &str, generation: Generation) -> Result<Module, SassError> {
    let mut module = Module::new(generation);
    let mut state: Option<KernelState> = None;

    for (lineno, raw) in source.lines().enumerate() {
        let stripped = strip_comment(raw);
        let line = stripped.trim();
        if line.is_empty() {
            continue;
        }
        let lineno = lineno + 1;
        if let Some(rest) = line.strip_prefix('.') {
            parse_directive(rest, lineno, &mut module, &mut state)?;
        } else if let Some(name) = line.strip_suffix(':') {
            let st = expect_kernel(&mut state, lineno)?;
            let name = name.trim();
            if !is_ident(name) {
                return Err(err(lineno, format!("invalid label name `{name}`")));
            }
            if st
                .labels
                .insert(name.to_owned(), st.code.len() as u32)
                .is_some()
            {
                return Err(SassError::DuplicateLabel {
                    name: name.to_owned(),
                });
            }
        } else {
            let st = expect_kernel(&mut state, lineno)?;
            let mut cur = Cursor::new(line, lineno);
            let inst = parse_instruction(&mut cur)?;
            cur.skip_ws();
            if !cur.done() {
                return Err(err(lineno, format!("trailing input `{}`", cur.rest())));
            }
            st.code.push(inst);
            st.ctl.push(st.pending_ctl.take().unwrap_or(CtlInfo::NONE));
        }
    }
    if let Some(st) = state {
        module.kernels.push(st.finish(generation)?);
    }
    if module.kernels.is_empty() {
        return Err(err(0, "no `.kernel` directive found".to_owned()));
    }
    Ok(module)
}

struct KernelState {
    kernel: Kernel,
    code: Vec<PendingInst>,
    ctl: Vec<CtlInfo>,
    labels: HashMap<String, u32>,
    pending_ctl: Option<CtlInfo>,
}

/// An instruction whose branch target may still be symbolic.
enum PendingInst {
    Done(Instruction),
    Branch {
        pred: Option<Pred>,
        pred_neg: bool,
        target: BranchTarget,
        line: usize,
    },
}

enum BranchTarget {
    Absolute(u32),
    Label(String),
}

impl KernelState {
    fn new(name: &str) -> KernelState {
        KernelState {
            kernel: Kernel::new(name),
            code: Vec::new(),
            ctl: Vec::new(),
            labels: HashMap::new(),
            pending_ctl: None,
        }
    }

    fn finish(self, generation: Generation) -> Result<Kernel, SassError> {
        let mut kernel = self.kernel;
        for pending in self.code {
            let inst = match pending {
                PendingInst::Done(i) => i,
                PendingInst::Branch {
                    pred,
                    pred_neg,
                    target,
                    line,
                } => {
                    let target = match target {
                        BranchTarget::Absolute(t) => t,
                        BranchTarget::Label(name) => *self
                            .labels
                            .get(&name)
                            .ok_or(SassError::UndefinedLabel { name: name.clone() })?,
                    };
                    if target as usize > self.ctl.len() {
                        return Err(err(
                            line,
                            format!("branch target {target:#x} is past the end of the kernel"),
                        ));
                    }
                    Instruction {
                        pred,
                        pred_neg,
                        op: Op::Bra { target },
                    }
                }
            };
            kernel.code.push(inst);
        }
        if kernel.num_regs == 0 {
            // No `.regs` directive: infer the count like the builder does.
            let highest = kernel
                .code
                .iter()
                .flat_map(|i| i.op.def_regs().into_iter().chain(i.op.use_regs()))
                .map(|r| u32::from(r.index()) + 1)
                .max()
                .unwrap_or(0);
            kernel.num_regs = highest;
        }
        kernel.ctl = if generation.uses_control_notation() {
            Some(self.ctl)
        } else {
            None
        };
        Ok(kernel)
    }
}

fn expect_kernel(
    state: &mut Option<KernelState>,
    lineno: usize,
) -> Result<&mut KernelState, SassError> {
    state
        .as_mut()
        .ok_or_else(|| err(lineno, "statement before `.kernel`".to_owned()))
}

fn parse_directive(
    rest: &str,
    lineno: usize,
    module: &mut Module,
    state: &mut Option<KernelState>,
) -> Result<(), SassError> {
    let (word, arg) = match rest.split_once(char::is_whitespace) {
        Some((w, a)) => (w, a.trim()),
        None => (rest, ""),
    };
    match word {
        "kernel" => {
            if !is_ident(arg) {
                return Err(err(lineno, format!("invalid kernel name `{arg}`")));
            }
            if let Some(prev) = state.take() {
                module.kernels.push(prev.finish(module.generation)?);
            }
            *state = Some(KernelState::new(arg));
        }
        "regs" => {
            expect_kernel(state, lineno)?.kernel.num_regs =
                parse_u32(arg).ok_or_else(|| err(lineno, "expected register count".to_owned()))?;
        }
        "shared" => {
            expect_kernel(state, lineno)?.kernel.shared_bytes =
                parse_u32(arg).ok_or_else(|| err(lineno, "expected byte count".to_owned()))?;
        }
        "local" => {
            expect_kernel(state, lineno)?.kernel.local_bytes =
                parse_u32(arg).ok_or_else(|| err(lineno, "expected byte count".to_owned()))?;
        }
        "param" => {
            if !is_ident(arg) {
                return Err(err(lineno, format!("invalid parameter name `{arg}`")));
            }
            expect_kernel(state, lineno)?.kernel.add_param(arg);
        }
        "ctl" => {
            let byte = parse_u32(arg)
                .filter(|&v| v <= 0xFF)
                .ok_or_else(|| err(lineno, "expected control byte".to_owned()))?;
            let info = CtlInfo::from_byte(byte as u8).map_err(|e| err(lineno, e.to_string()))?;
            expect_kernel(state, lineno)?.pending_ctl = Some(info);
        }
        other => return Err(err(lineno, format!("unknown directive `.{other}`"))),
    }
    Ok(())
}

fn strip_comment(line: &str) -> String {
    // `//` comments and `/* ... */` (single-line) comments.
    let mut out = String::with_capacity(line.len());
    let mut chars = line.char_indices().peekable();
    while let Some((i, c)) = chars.next() {
        if c == '/' {
            match chars.peek() {
                Some((_, '/')) => break,
                Some((_, '*')) => {
                    chars.next();
                    let rest = &line[i + 2..];
                    if let Some(end) = rest.find("*/") {
                        let skip_to = i + 2 + end + 2;
                        while let Some(&(j, _)) = chars.peek() {
                            if j >= skip_to {
                                break;
                            }
                            chars.next();
                        }
                        continue;
                    }
                    break;
                }
                _ => out.push(c),
            }
        } else {
            out.push(c);
        }
    }
    out
}

fn is_ident(s: &str) -> bool {
    !s.is_empty()
        && s.chars()
            .next()
            .is_some_and(|c| c.is_ascii_alphabetic() || c == '_')
        && s.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
}

fn parse_u32(s: &str) -> Option<u32> {
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u32::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}

fn err(line: usize, message: impl Into<String>) -> SassError {
    SassError::Parse {
        line,
        message: message.into(),
    }
}

/// Character cursor over one statement.
struct Cursor<'a> {
    text: &'a str,
    pos: usize,
    line: usize,
}

impl<'a> Cursor<'a> {
    fn new(text: &'a str, line: usize) -> Cursor<'a> {
        Cursor { text, pos: 0, line }
    }

    fn rest(&self) -> &'a str {
        &self.text[self.pos..]
    }

    fn done(&self) -> bool {
        self.pos >= self.text.len()
    }

    fn skip_ws(&mut self) {
        while self
            .rest()
            .chars()
            .next()
            .is_some_and(|c| c.is_whitespace())
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<char> {
        self.rest().chars().next()
    }

    fn eat(&mut self, c: char) -> bool {
        if self.peek() == Some(c) {
            self.pos += c.len_utf8();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, c: char) -> Result<(), SassError> {
        self.skip_ws();
        if self.eat(c) {
            Ok(())
        } else {
            Err(err(
                self.line,
                format!("expected `{c}` before `{}`", self.rest()),
            ))
        }
    }

    /// Consume a word: identifier characters plus `.` (mnemonics and
    /// special-register names contain dots).
    fn word(&mut self) -> &'a str {
        self.skip_ws();
        let start = self.pos;
        while self
            .peek()
            .is_some_and(|c| c.is_ascii_alphanumeric() || c == '_' || c == '.')
        {
            self.pos += 1;
        }
        &self.text[start..self.pos]
    }

    fn number_i64(&mut self) -> Result<i64, SassError> {
        self.skip_ws();
        let neg = self.eat('-');
        let start = self.pos;
        let hex = self.rest().starts_with("0x") || self.rest().starts_with("0X");
        if hex {
            self.pos += 2;
            while self.peek().is_some_and(|c| c.is_ascii_hexdigit()) {
                self.pos += 1;
            }
        } else {
            while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = &self.text[start..self.pos];
        let value = if hex {
            i64::from_str_radix(&text[2..], 16)
        } else {
            text.parse()
        }
        .map_err(|_| err(self.line, format!("invalid number `{text}`")))?;
        Ok(if neg { -value } else { value })
    }

    fn number_i32(&mut self) -> Result<i32, SassError> {
        let v = self.number_i64()?;
        i32::try_from(v)
            .or_else(|_| u32::try_from(v).map(|u| u as i32))
            .map_err(|_| err(self.line, format!("number {v} out of 32-bit range")))
    }

    fn reg(&mut self) -> Result<Reg, SassError> {
        self.skip_ws();
        let w = self.word();
        if w == "RZ" {
            return Ok(Reg::RZ);
        }
        let idx = w
            .strip_prefix('R')
            .and_then(|s| s.parse::<u8>().ok())
            .ok_or_else(|| err(self.line, format!("expected register, found `{w}`")))?;
        Reg::new(idx)
    }

    fn pred(&mut self) -> Result<Pred, SassError> {
        self.skip_ws();
        let w = self.word();
        if w == "PT" {
            return Ok(Pred::PT);
        }
        let idx = w
            .strip_prefix('P')
            .and_then(|s| s.parse::<u8>().ok())
            .ok_or_else(|| err(self.line, format!("expected predicate, found `{w}`")))?;
        Pred::new(idx)
    }

    /// Parse a flexible operand: register, immediate, or `c[bank][offset]`.
    fn operand(&mut self) -> Result<Operand, SassError> {
        self.skip_ws();
        match self.peek() {
            Some('R') => Ok(Operand::Reg(self.reg()?)),
            Some('c') => {
                let (bank, offset) = self.const_ref()?;
                Ok(Operand::Const { bank, offset })
            }
            _ => Ok(Operand::Imm(self.number_i32()?)),
        }
    }

    fn const_ref(&mut self) -> Result<(u8, u32), SassError> {
        self.skip_ws();
        if !self.eat('c') {
            return Err(err(self.line, "expected constant reference".to_owned()));
        }
        self.expect('[')?;
        let bank = self.number_i64()?;
        self.expect(']')?;
        self.expect('[')?;
        let offset = self.number_i64()?;
        self.expect(']')?;
        let bank = u8::try_from(bank)
            .map_err(|_| err(self.line, format!("constant bank {bank} out of range")))?;
        let offset = u32::try_from(offset)
            .map_err(|_| err(self.line, format!("constant offset {offset} out of range")))?;
        Ok((bank, offset))
    }

    /// Parse `[Rn]`, `[Rn+0x8]`, or `[Rn-0x8]`.
    fn mem_addr(&mut self) -> Result<(Reg, i32), SassError> {
        self.expect('[')?;
        let base = self.reg()?;
        self.skip_ws();
        // A `-` is consumed by `number_i32` as the sign; `+` is eaten here.
        let offset = if self.eat('+') || self.peek() == Some('-') {
            self.number_i32()?
        } else {
            0
        };
        self.expect(']')?;
        Ok((base, offset))
    }
}

fn special_reg_by_name(name: &str) -> Option<SpecialReg> {
    SpecialReg::ALL.iter().copied().find(|s| s.name() == name)
}

fn cmp_by_suffix(suffix: &str) -> Option<CmpOp> {
    CmpOp::ALL.iter().copied().find(|c| c.suffix() == suffix)
}

fn parse_instruction(cur: &mut Cursor<'_>) -> Result<PendingInst, SassError> {
    cur.skip_ws();
    let (pred, pred_neg) = if cur.eat('@') {
        let neg = cur.eat('!');
        (Some(cur.pred()?), neg)
    } else {
        (None, false)
    };

    let mnemonic = cur.word().to_owned();
    let line = cur.line;
    let (base, suffix) = match mnemonic.split_once('.') {
        Some((b, s)) => (b, Some(s)),
        None => (mnemonic.as_str(), None),
    };

    let width_from_suffix = |s: Option<&str>| -> Result<MemWidth, SassError> {
        match s {
            None => Ok(MemWidth::B32),
            Some("64") => Ok(MemWidth::B64),
            Some("128") => Ok(MemWidth::B128),
            Some(other) => Err(err(line, format!("invalid width suffix `.{other}`"))),
        }
    };

    let op = match base {
        "NOP" => end(cur, Op::Nop)?,
        "EXIT" => end(cur, Op::Exit)?,
        "BAR" => {
            if suffix != Some("SYNC") {
                return Err(err(line, "expected `BAR.SYNC`".to_owned()));
            }
            end(cur, Op::Bar)?
        }
        "BRA" => {
            cur.skip_ws();
            let target = if cur.peek().is_some_and(|c| c.is_ascii_digit()) {
                BranchTarget::Absolute(
                    cur.number_i64()?
                        .try_into()
                        .map_err(|_| err(line, "branch target out of range".to_owned()))?,
                )
            } else {
                let name = cur.word();
                if !is_ident(name) {
                    return Err(err(line, format!("invalid branch target `{name}`")));
                }
                BranchTarget::Label(name.to_owned())
            };
            cur.expect(';')?;
            return Ok(PendingInst::Branch {
                pred,
                pred_neg,
                target,
                line,
            });
        }
        "MOV" => {
            let dst = cur.reg()?;
            cur.expect(',')?;
            let src = cur.operand()?;
            end(cur, Op::Mov { dst, src })?
        }
        "MOV32I" => {
            let dst = cur.reg()?;
            cur.expect(',')?;
            let imm = cur.number_i64()?;
            if !(0..=0xFFFF_FFFF).contains(&imm) && !(-0x8000_0000..0).contains(&imm) {
                return Err(err(line, format!("immediate {imm} out of 32-bit range")));
            }
            end(
                cur,
                Op::Mov32i {
                    dst,
                    imm: imm as u32,
                },
            )?
        }
        "S2R" => {
            let dst = cur.reg()?;
            cur.expect(',')?;
            let name = cur.word();
            let sr = special_reg_by_name(name)
                .ok_or_else(|| err(line, format!("unknown special register `{name}`")))?;
            end(cur, Op::S2r { dst, sr })?
        }
        "FADD" | "FMUL" | "IADD" | "IMUL" | "SHL" | "SHR" => {
            let dst = cur.reg()?;
            cur.expect(',')?;
            let a = cur.reg()?;
            cur.expect(',')?;
            let b = cur.operand()?;
            let op = match base {
                "FADD" => Op::Fadd { dst, a, b },
                "FMUL" => Op::Fmul { dst, a, b },
                "IADD" => Op::Iadd { dst, a, b },
                "IMUL" => Op::Imul { dst, a, b },
                "SHL" => Op::Shl { dst, a, b },
                _ => Op::Shr { dst, a, b },
            };
            end(cur, op)?
        }
        "FFMA" | "IMAD" => {
            let dst = cur.reg()?;
            cur.expect(',')?;
            let a = cur.reg()?;
            cur.expect(',')?;
            let b = cur.operand()?;
            cur.expect(',')?;
            let c = cur.reg()?;
            let op = if base == "FFMA" {
                Op::Ffma { dst, a, b, c }
            } else {
                Op::Imad { dst, a, b, c }
            };
            end(cur, op)?
        }
        "ISCADD" => {
            let dst = cur.reg()?;
            cur.expect(',')?;
            let a = cur.reg()?;
            cur.expect(',')?;
            let b = cur.operand()?;
            cur.expect(',')?;
            let shift = cur.number_i64()?;
            if !(0..=31).contains(&shift) {
                return Err(err(line, format!("shift {shift} out of range")));
            }
            end(
                cur,
                Op::Iscadd {
                    dst,
                    a,
                    b,
                    shift: shift as u8,
                },
            )?
        }
        "LOP" => {
            let lop = match suffix {
                Some("AND") => LogicOp::And,
                Some("OR") => LogicOp::Or,
                Some("XOR") => LogicOp::Xor,
                _ => return Err(err(line, "expected LOP.AND/OR/XOR".to_owned())),
            };
            let dst = cur.reg()?;
            cur.expect(',')?;
            let a = cur.reg()?;
            cur.expect(',')?;
            let b = cur.operand()?;
            end(cur, Op::Lop { op: lop, dst, a, b })?
        }
        "ISETP" => {
            let cmp = suffix
                .and_then(cmp_by_suffix)
                .ok_or_else(|| err(line, "expected ISETP.<LT|LE|GT|GE|EQ|NE>".to_owned()))?;
            let p = cur.pred()?;
            cur.expect(',')?;
            let a = cur.reg()?;
            cur.expect(',')?;
            let b = cur.operand()?;
            end(cur, Op::Isetp { p, cmp, a, b })?
        }
        "LD" | "LDS" | "LDL" => {
            let space = match base {
                "LD" => MemSpace::Global,
                "LDS" => MemSpace::Shared,
                _ => MemSpace::Local,
            };
            let width = width_from_suffix(suffix)?;
            let dst = cur.reg()?;
            cur.expect(',')?;
            let (addr, offset) = cur.mem_addr()?;
            end(
                cur,
                Op::Ld {
                    space,
                    width,
                    dst,
                    addr,
                    offset,
                },
            )?
        }
        "ST" | "STS" | "STL" => {
            let space = match base {
                "ST" => MemSpace::Global,
                "STS" => MemSpace::Shared,
                _ => MemSpace::Local,
            };
            let width = width_from_suffix(suffix)?;
            let (addr, offset) = cur.mem_addr()?;
            cur.expect(',')?;
            let src = cur.reg()?;
            end(
                cur,
                Op::St {
                    space,
                    width,
                    src,
                    addr,
                    offset,
                },
            )?
        }
        "LDC" => {
            let dst = cur.reg()?;
            cur.expect(',')?;
            let (bank, offset) = cur.const_ref()?;
            end(cur, Op::Ldc { dst, bank, offset })?
        }
        other => {
            return Err(err(line, format!("unknown mnemonic `{other}`")));
        }
    };
    Ok(PendingInst::Done(Instruction { pred, pred_neg, op }))
}

fn end(cur: &mut Cursor<'_>, op: Op) -> Result<Op, SassError> {
    cur.expect(';')?;
    Ok(op)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn one(src: &str) -> Instruction {
        let full = format!(".kernel t\n{src}\n");
        let m = assemble(&full, Generation::Fermi).unwrap();
        assert_eq!(m.kernels[0].code.len(), 1);
        m.kernels[0].code[0]
    }

    #[test]
    fn parses_basic_instructions() {
        assert_eq!(
            one("FFMA R8, R4, R5, R8;").op,
            Op::Ffma {
                dst: Reg::r(8),
                a: Reg::r(4),
                b: Operand::reg(5),
                c: Reg::r(8),
            }
        );
        assert_eq!(
            one("LDS.64 R6, [R20+0x8];").op,
            Op::Ld {
                space: MemSpace::Shared,
                width: MemWidth::B64,
                dst: Reg::r(6),
                addr: Reg::r(20),
                offset: 8,
            }
        );
        assert_eq!(
            one("STS [R3-0x4], R2;").op,
            Op::St {
                space: MemSpace::Shared,
                width: MemWidth::B32,
                src: Reg::r(2),
                addr: Reg::r(3),
                offset: -4,
            }
        );
        assert_eq!(
            one("IADD R4, R4, -0x10;").op,
            Op::Iadd {
                dst: Reg::r(4),
                a: Reg::r(4),
                b: Operand::Imm(-16),
            }
        );
        assert_eq!(
            one("LDC R1, c[0x0][0x20];").op,
            Op::Ldc {
                dst: Reg::r(1),
                bank: 0,
                offset: 0x20,
            }
        );
        assert_eq!(
            one("FMUL R1, R2, c[0x0][0x28];").op,
            Op::Fmul {
                dst: Reg::r(1),
                a: Reg::r(2),
                b: Operand::Const {
                    bank: 0,
                    offset: 0x28
                },
            }
        );
    }

    #[test]
    fn parses_guards() {
        let i = one("@!P0 EXIT;");
        assert_eq!(i.pred, Some(Pred::p(0)));
        assert!(i.pred_neg);
        let i = one("@P3 NOP;");
        assert_eq!(i.pred, Some(Pred::p(3)));
        assert!(!i.pred_neg);
    }

    #[test]
    fn labels_resolve() {
        let src = r#"
.kernel loopy
.regs 4
MOV32I R0, 0x10;
LOOP:
IADD R0, R0, -0x1;
ISETP.GT P0, R0, 0x0;
@P0 BRA LOOP;
EXIT;
"#;
        let m = assemble(src, Generation::Fermi).unwrap();
        let code = &m.kernels[0].code;
        assert_eq!(code[3].op, Op::Bra { target: 1 });
    }

    #[test]
    fn numeric_branch_targets_work() {
        let src = ".kernel t\nBRA 0x0;\nEXIT;\n";
        let m = assemble(src, Generation::Fermi).unwrap();
        assert_eq!(m.kernels[0].code[0].op, Op::Bra { target: 0 });
    }

    #[test]
    fn undefined_label_is_error() {
        let src = ".kernel t\nBRA NOWHERE;\nEXIT;\n";
        assert!(matches!(
            assemble(src, Generation::Fermi),
            Err(SassError::UndefinedLabel { .. })
        ));
    }

    #[test]
    fn duplicate_label_is_error() {
        let src = ".kernel t\nA:\nNOP;\nA:\nEXIT;\n";
        assert!(matches!(
            assemble(src, Generation::Fermi),
            Err(SassError::DuplicateLabel { .. })
        ));
    }

    #[test]
    fn comments_are_stripped() {
        let src = ".kernel t\n/*0000*/ NOP; // trailing\nEXIT;\n";
        let m = assemble(src, Generation::Fermi).unwrap();
        assert_eq!(m.kernels[0].code.len(), 2);
    }

    #[test]
    fn directives_populate_metadata() {
        let src = "\
.kernel meta
.regs 63
.shared 0x3000
.local 40
.param n
.param a_ptr
EXIT;
";
        let m = assemble(src, Generation::Fermi).unwrap();
        let k = &m.kernels[0];
        assert_eq!(k.num_regs, 63);
        assert_eq!(k.shared_bytes, 0x3000);
        assert_eq!(k.local_bytes, 40);
        assert_eq!(k.params.len(), 2);
        assert_eq!(k.params[1].offset, crate::PARAM_BASE + 4);
    }

    #[test]
    fn ctl_directive_applies_to_next_instruction() {
        let src = ".kernel t\n.ctl 0x04\nNOP;\nEXIT;\n";
        let m = assemble(src, Generation::Kepler).unwrap();
        let k = &m.kernels[0];
        let ctl = k.ctl.as_ref().unwrap();
        assert_eq!(ctl[0].stall, 4);
        assert_eq!(ctl[1], CtlInfo::NONE);
    }

    #[test]
    fn fermi_modules_carry_no_ctl() {
        let src = ".kernel t\nNOP;\n";
        let m = assemble(src, Generation::Fermi).unwrap();
        assert!(m.kernels[0].ctl.is_none());
    }

    #[test]
    fn multiple_kernels() {
        let src = ".kernel a\nEXIT;\n.kernel b\nNOP;\nEXIT;\n";
        let m = assemble(src, Generation::Fermi).unwrap();
        assert_eq!(m.kernels.len(), 2);
        assert_eq!(m.kernel("b").unwrap().code.len(), 2);
    }

    #[test]
    fn error_reports_line_numbers() {
        let src = ".kernel t\nNOP;\nBOGUS R1;\n";
        match assemble(src, Generation::Fermi) {
            Err(SassError::Parse { line, .. }) => assert_eq!(line, 3),
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn disassembly_reassembles() {
        let src = r#"
.kernel t
.regs 16
S2R R0, SR_TID.X;
S2R R1, SR_CTAID.X;
IMAD R2, R1, 0x100, R0;
SHL R3, R2, 0x2;
LD R4, [R3];
FFMA R4, R4, R4, R4;
ST [R3], R4;
EXIT;
"#;
        let m = assemble(src, Generation::Fermi).unwrap();
        let text = m.to_string();
        let m2 = assemble(&text, Generation::Fermi).unwrap();
        assert_eq!(m2.kernels[0].code, m.kernels[0].code);
    }
}
