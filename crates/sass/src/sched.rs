//! Static instruction scheduling: the automated counterpart of the paper's
//! Section 5.3 hand reorderings, plus exact control-notation generation
//! (completing the Section 3.2 story — the paper could only guess the
//! encoding; our simulator's is documented, so a perfect assembler pass is
//! possible).
//!
//! Two passes over straight-line *regions* (maximal runs without control
//! flow, barriers, or predicate redefinition):
//!
//! * [`schedule`] — latency-aware list scheduling. Dependence edges are
//!   RAW/WAR/WAW over registers and predicates; memory operations keep
//!   their relative order per address space (loads may slide past loads).
//!   Ready instructions are picked by earliest dependence-ready time, then
//!   longest critical path, and ties prefer alternating execution pipes —
//!   which is exactly "interleave different instruction types to get
//!   better balance between functional units" (Section 5.3).
//! * [`auto_ctl`] — compute each instruction's control-notation stall
//!   field from the distance to its nearest dependent successor and the
//!   producer latency, clamped to the 4-bit field.

use crate::ctl::CtlInfo;
use crate::op::{MemSpace, Op, OpClass};
use crate::{Instruction, Reg};

/// Options for [`schedule`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SchedOptions {
    /// Do not move instructions more than this many slots from their
    /// original position (0 = unlimited). Bounding the motion keeps
    /// prefetch placement intent intact.
    pub max_motion: usize,
}

/// True when the instruction ends a straight-line region.
fn is_region_boundary(inst: &Instruction) -> bool {
    matches!(inst.op, Op::Bra { .. } | Op::Bar | Op::Exit | Op::Nop) || inst.pred.is_some()
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum MemKind {
    Load(MemSpace),
    Store(MemSpace),
}

fn mem_kind(op: &Op) -> Option<MemKind> {
    match op {
        Op::Ld { space, .. } => Some(MemKind::Load(*space)),
        Op::St { space, .. } => Some(MemKind::Store(*space)),
        _ => None,
    }
}

fn mem_conflicts(a: MemKind, b: MemKind) -> bool {
    match (a, b) {
        (MemKind::Load(sa), MemKind::Store(sb))
        | (MemKind::Store(sa), MemKind::Load(sb))
        | (MemKind::Store(sa), MemKind::Store(sb)) => sa == sb,
        (MemKind::Load(_), MemKind::Load(_)) => false,
    }
}

/// Register/predicate dependence between two instructions (earlier `a`,
/// later `b`): RAW, WAR, or WAW.
fn reg_dependence(a: &Instruction, b: &Instruction) -> bool {
    let a_defs: Vec<Reg> = a.op.def_regs();
    let b_defs: Vec<Reg> = b.op.def_regs();
    let a_uses = a.op.use_regs();
    let b_uses = b.op.use_regs();
    // RAW / WAW / WAR over registers.
    if b_uses.iter().any(|r| a_defs.contains(r))
        || b_defs.iter().any(|r| a_defs.contains(r))
        || b_defs.iter().any(|r| a_uses.contains(r))
    {
        return true;
    }
    // Predicates.
    let a_pdef = a.op.def_pred();
    let b_pdef = b.op.def_pred();
    let a_puse = a.pred;
    let b_puse = b.pred;
    if let Some(p) = a_pdef {
        if b_puse == Some(p) || b_pdef == Some(p) {
            return true;
        }
    }
    if let (Some(p), Some(q)) = (a_puse, b_pdef) {
        if p == q {
            return true;
        }
    }
    false
}

struct Region<'a> {
    insts: &'a [Instruction],
    /// preds[i] = indices of instructions i depends on (with latency flag).
    preds: Vec<Vec<(usize, bool)>>,
    succs: Vec<Vec<usize>>,
    /// Length of the longest latency-weighted path from i to a sink.
    height: Vec<u64>,
}

fn build_region<'a>(insts: &'a [Instruction], latency: &dyn Fn(&Op) -> u32) -> Region<'a> {
    let n = insts.len();
    let mut preds: Vec<Vec<(usize, bool)>> = vec![Vec::new(); n];
    let mut succs: Vec<Vec<usize>> = vec![Vec::new(); n];
    for i in 0..n {
        for j in (i + 1)..n {
            let dep_reg = reg_dependence(&insts[i], &insts[j]);
            let dep_mem = match (mem_kind(&insts[i].op), mem_kind(&insts[j].op)) {
                (Some(a), Some(b)) => mem_conflicts(a, b),
                _ => false,
            };
            if dep_reg || dep_mem {
                preds[j].push((i, dep_reg));
                succs[i].push(j);
            }
        }
    }
    let mut height = vec![0u64; n];
    for i in (0..n).rev() {
        let own = u64::from(latency(&insts[i].op));
        let best = succs[i].iter().map(|&j| height[j]).max().unwrap_or(0);
        height[i] = own + best;
    }
    Region {
        insts,
        preds,
        succs,
        height,
    }
}

fn schedule_region(
    region: &Region<'_>,
    opts: &SchedOptions,
    latency: &dyn Fn(&Op) -> u32,
) -> Vec<usize> {
    let n = region.insts.len();
    let mut remaining_preds: Vec<usize> = region.preds.iter().map(Vec::len).collect();
    let mut ready_at = vec![0u64; n];
    let mut scheduled: Vec<usize> = Vec::with_capacity(n);
    let mut done = vec![false; n];
    let mut cycle: u64 = 0;
    let mut last_class: Option<OpClass> = None;

    while scheduled.len() < n {
        // Candidates: all deps scheduled; obey the motion bound.
        let slot = scheduled.len();
        let mut best: Option<usize> = None;
        for i in 0..n {
            if done[i] || remaining_preds[i] > 0 {
                continue;
            }
            if opts.max_motion > 0 && i > slot + opts.max_motion {
                continue;
            }
            best = match best {
                None => Some(i),
                Some(b) => {
                    let key = |k: usize| {
                        let stalled = ready_at[k].max(cycle) - cycle;
                        let class_bonus = u64::from(Some(region.insts[k].op.class()) == last_class);
                        // Lower is better: (stall, same-pipe-as-last,
                        // -height, original index).
                        (stalled, class_bonus, u64::MAX - region.height[k], k)
                    };
                    if key(i) < key(b) {
                        Some(i)
                    } else {
                        Some(b)
                    }
                }
            };
        }
        // Region construction topologically orders a DAG, so while any
        // instruction is unscheduled at least one has all predecessors done.
        #[allow(clippy::expect_used)]
        let pick = best.expect("a dependence-acyclic region always has a ready instruction");
        done[pick] = true;
        cycle = ready_at[pick].max(cycle) + 1;
        last_class = Some(region.insts[pick].op.class());
        for &j in &region.succs[pick] {
            remaining_preds[j] -= 1;
            let lat = u64::from(latency(&region.insts[pick].op));
            ready_at[j] = ready_at[j].max(cycle + lat);
        }
        scheduled.push(pick);
    }
    scheduled
}

/// Reorder the instructions of `code` region by region so that dependent
/// instructions are spaced by their producers' latencies where possible.
///
/// The result executes identically: only independent instructions are
/// permuted, all register/predicate/memory dependence orders are kept, and
/// control flow (branches, barriers, predicated instructions) never moves.
pub fn schedule(
    code: &[Instruction],
    opts: &SchedOptions,
    latency: impl Fn(&Op) -> u32,
) -> Vec<Instruction> {
    let mut out: Vec<Instruction> = Vec::with_capacity(code.len());
    let mut start = 0usize;
    // Branch targets index into the code; reordering must keep every
    // instruction at a stable index region-wise. Regions never cross
    // boundaries and boundaries stay in place, so intra-region permutation
    // keeps all indices within the region... which is NOT index-stable for
    // branch targets pointing into the middle of a region. To stay safe we
    // only permute regions no branch jumps into: conservatively, regions
    // in code without any Bra target inside them.
    let targets: Vec<u32> = code
        .iter()
        .filter_map(|i| match i.op {
            Op::Bra { target } => Some(target),
            _ => None,
        })
        .collect();
    let mut i = 0usize;
    while i <= code.len() {
        let at_end = i == code.len();
        if at_end || is_region_boundary(&code[i]) {
            let region_insts = &code[start..i];
            let has_target_inside = targets
                .iter()
                .any(|&t| (t as usize) > start && (t as usize) < i);
            if region_insts.len() > 1 && !has_target_inside {
                let region = build_region(region_insts, &latency);
                let order = schedule_region(&region, opts, &latency);
                out.extend(order.into_iter().map(|k| region_insts[k]));
            } else {
                out.extend_from_slice(region_insts);
            }
            if !at_end {
                out.push(code[i]);
            }
            start = i + 1;
        }
        i += 1;
    }
    out
}

/// Compute a full control-notation vector: each instruction's stall field
/// covers the latency still outstanding when its nearest dependent
/// successor wants to issue, clamped to the 15-cycle field. Instructions
/// with no nearby dependent successor get stall 1 (issue spacing only).
pub fn auto_ctl(code: &[Instruction], latency: impl Fn(&Op) -> u32) -> Vec<CtlInfo> {
    let n = code.len();
    let mut out = vec![CtlInfo::stall(1); n];
    for i in 0..n {
        if matches!(
            code[i].op.class(),
            OpClass::Ctrl | OpClass::Barrier | OpClass::Nop
        ) {
            out[i] = CtlInfo::NONE;
            continue;
        }
        // Distance to the nearest dependent successor within the window.
        let lat = u64::from(latency(&code[i].op));
        let mut stall = 1u64;
        for (dist, j) in (i + 1..n.min(i + 1 + lat as usize)).enumerate() {
            if reg_dependence(&code[i], &code[j]) {
                // The consumer is `dist + 1` slots away; cover the rest of
                // the latency with a stall on the producer.
                stall = lat.saturating_sub(dist as u64).max(1);
                break;
            }
        }
        out[i] = CtlInfo::stall(stall.min(15) as u8);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{KernelBuilder, Operand};
    use peakperf_arch::Generation;

    fn lat(op: &Op) -> u32 {
        match op.class() {
            OpClass::Mem(_) => 24,
            _ => 8,
        }
    }

    fn indices(order: &[Instruction], original: &[Instruction]) -> Vec<usize> {
        order
            .iter()
            .map(|i| original.iter().position(|o| o == i).unwrap())
            .collect()
    }

    #[test]
    fn dependent_pair_is_separated_by_independents() {
        // i0 -> i1 dependent; i2..i5 independent fillers.
        let mut b = KernelBuilder::new("t", Generation::Fermi);
        b.mov32i(Reg::r(0), 1); // i0
        b.iadd(Reg::r(1), Reg::r(0), 1); // i1 depends on i0
        b.mov32i(Reg::r(2), 2); // i2
        b.mov32i(Reg::r(3), 3); // i3
        b.mov32i(Reg::r(4), 4); // i4
        b.exit();
        let code = b.finish().unwrap().code;
        let body = &code[..5];
        let scheduled = schedule(body, &SchedOptions::default(), lat);
        let order = indices(&scheduled, body);
        let pos0 = order.iter().position(|&k| k == 0).unwrap();
        let pos1 = order.iter().position(|&k| k == 1).unwrap();
        assert!(pos1 > pos0, "dependence preserved");
        assert!(
            pos1 - pos0 > 1,
            "fillers should separate the dependent pair: {order:?}"
        );
    }

    #[test]
    fn all_dependences_survive_scheduling() {
        let mut b = KernelBuilder::new("t", Generation::Fermi);
        for i in 0..10u8 {
            b.mov32i(Reg::r(i), u32::from(i));
        }
        for i in 0..9u8 {
            b.iadd(Reg::r(i + 20), Reg::r(i), Operand::reg(i + 1));
        }
        b.exit();
        let code = b.finish().unwrap().code;
        let body = &code[..code.len() - 1];
        let scheduled = schedule(body, &SchedOptions::default(), lat);
        assert_eq!(scheduled.len(), body.len());
        // For every dependent pair in the original, order is preserved.
        let order = indices(&scheduled, body);
        let pos: Vec<usize> = {
            let mut p = vec![0; body.len()];
            for (slot, &orig) in order.iter().enumerate() {
                p[orig] = slot;
            }
            p
        };
        for i in 0..body.len() {
            for j in (i + 1)..body.len() {
                if reg_dependence(&body[i], &body[j]) {
                    assert!(pos[i] < pos[j], "{i} -> {j} reordered");
                }
            }
        }
    }

    #[test]
    fn barriers_and_branches_never_move() {
        let mut b = KernelBuilder::new("t", Generation::Fermi);
        b.mov32i(Reg::r(0), 1);
        b.bar();
        b.mov32i(Reg::r(1), 2);
        b.exit();
        let code = b.finish().unwrap().code;
        let scheduled = schedule(&code, &SchedOptions::default(), lat);
        assert_eq!(scheduled[1].op, Op::Bar);
        assert_eq!(scheduled[3].op, Op::Exit);
    }

    #[test]
    fn stores_and_loads_keep_their_order_per_space() {
        use crate::{MemSpace, MemWidth};
        let mut b = KernelBuilder::new("t", Generation::Fermi);
        b.st(MemSpace::Shared, MemWidth::B32, Reg::r(0), Reg::r(1), 0);
        b.ld(MemSpace::Shared, MemWidth::B32, Reg::r(2), Reg::r(3), 0);
        b.exit();
        let code = b.finish().unwrap().code;
        let scheduled = schedule(&code[..2], &SchedOptions::default(), lat);
        assert!(matches!(scheduled[0].op, Op::St { .. }));
        assert!(matches!(scheduled[1].op, Op::Ld { .. }));
    }

    #[test]
    fn regions_with_branch_targets_inside_are_untouched() {
        let mut b = KernelBuilder::new("t", Generation::Fermi);
        b.mov32i(Reg::r(0), 8);
        let top = b.label_here();
        b.mov32i(Reg::r(1), 1);
        b.iadd(Reg::r(0), Reg::r(0), -1);
        b.isetp(crate::Pred::p(0), crate::CmpOp::Gt, Reg::r(0), 0);
        b.bra_if(crate::Pred::p(0), false, top);
        b.exit();
        let code = b.finish().unwrap().code;
        let scheduled = schedule(&code, &SchedOptions::default(), lat);
        // The loop body (a branch target lands at index 1) keeps order.
        assert_eq!(scheduled, code);
    }

    #[test]
    fn auto_ctl_covers_adjacent_dependences() {
        let mut b = KernelBuilder::new("t", Generation::Fermi);
        b.mov32i(Reg::r(0), 1);
        b.iadd(Reg::r(1), Reg::r(0), 1); // depends on previous, distance 1
        b.mov32i(Reg::r(2), 2); // independent
        b.exit();
        let code = b.finish().unwrap().code;
        let ctl = auto_ctl(&code, lat);
        // Producer of an immediately-dependent value: stall = latency.
        assert_eq!(ctl[0].stall, 8);
        // No nearby consumer: minimal spacing.
        assert_eq!(ctl[1].stall, 1);
        assert_eq!(ctl[2].stall, 1);
        // Control flow carries no stall.
        assert_eq!(ctl[3], CtlInfo::NONE);
    }

    #[test]
    fn motion_bound_limits_displacement() {
        let mut b = KernelBuilder::new("t", Generation::Fermi);
        b.mov32i(Reg::r(0), 1);
        b.iadd(Reg::r(1), Reg::r(0), 1);
        for i in 0..8u8 {
            b.mov32i(Reg::r(10 + i), 1);
        }
        b.exit();
        let code = b.finish().unwrap().code;
        let body = &code[..code.len() - 1];
        let bounded = schedule(body, &SchedOptions { max_motion: 2 }, lat);
        let order = indices(&bounded, body);
        for (slot, &orig) in order.iter().enumerate() {
            assert!(
                orig <= slot + 2,
                "instruction {orig} moved earlier than its bound ({slot})"
            );
        }
    }
}
