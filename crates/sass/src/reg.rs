//! General-purpose registers and predicate registers.

use std::fmt;

use peakperf_arch::{register_bank, RegisterBank};

use crate::SassError;

/// A general-purpose 32-bit register.
///
/// Indices `0..=62` are real registers; index 63 is `RZ`, the hardwired zero
/// register (reads return 0, writes are discarded). The 6-bit encoding field
/// is what creates the Fermi/GK104 limit of 63 usable registers per thread
/// (Section 2 of the paper).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Reg(u8);

impl Reg {
    /// The hardwired zero register.
    pub const RZ: Reg = Reg(63);

    /// Highest usable general-purpose register index (`R62`).
    pub const MAX_INDEX: u8 = 62;

    /// Create a register from its index.
    ///
    /// # Errors
    ///
    /// Returns [`SassError::RegisterOutOfRange`] for indices above 63.
    /// Index 63 yields [`Reg::RZ`].
    pub fn new(index: u8) -> Result<Reg, SassError> {
        if index > 63 {
            Err(SassError::RegisterOutOfRange { index })
        } else {
            Ok(Reg(index))
        }
    }

    /// Create a register, panicking on out-of-range indices.
    ///
    /// Convenience for generator code with static indices.
    ///
    /// # Panics
    ///
    /// Panics if `index > 63`.
    // The panic is this constructor's documented contract for static
    // indices; fallible callers use `Reg::new`.
    #[allow(clippy::expect_used)]
    pub fn r(index: u8) -> Reg {
        Reg::new(index).expect("register index out of range")
    }

    /// The register index (63 for `RZ`).
    pub fn index(self) -> u8 {
        self.0
    }

    /// Whether this is the hardwired zero register.
    pub fn is_rz(self) -> bool {
        self.0 == 63
    }

    /// The Kepler register-file bank this register lives in (Section 3.3).
    ///
    /// `RZ` is materialized in the operand collector and occupies no bank
    /// bandwidth, but the mapping is still defined for it.
    pub fn bank(self) -> RegisterBank {
        register_bank(self.0)
    }

    /// The register `offset` slots above this one.
    ///
    /// # Panics
    ///
    /// Panics if the result exceeds `R62` (wide loads never target `RZ`).
    pub fn offset(self, offset: u8) -> Reg {
        let idx = self.0 + offset;
        assert!(idx <= Reg::MAX_INDEX, "register R{idx} out of range");
        Reg(idx)
    }

    /// The register `offset` slots above this one, without panicking:
    /// `None` past the register file, `Some(RZ)` when the slot lands on
    /// index 63. For code that must stay total on arbitrary (possibly
    /// invalid) kernels — validators, simulators, fuzzers — where the
    /// panicking [`Reg::offset`] contract is wrong.
    pub fn offset_checked(self, offset: u8) -> Option<Reg> {
        self.0.checked_add(offset).and_then(|i| Reg::new(i).ok())
    }

    /// Whether the register index is aligned for a memory access of
    /// `words` 32-bit words (LDS.64 needs even registers, LDS.128 needs
    /// quad-aligned registers).
    pub fn is_aligned_for(self, words: u32) -> bool {
        match words {
            1 => true,
            2 => self.0.is_multiple_of(2),
            4 => self.0.is_multiple_of(4),
            _ => false,
        }
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_rz() {
            f.write_str("RZ")
        } else {
            write!(f, "R{}", self.0)
        }
    }
}

impl fmt::Debug for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

/// A predicate register.
///
/// `P0..=P6` are real predicates; `PT` (index 7) is the hardwired true
/// predicate.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Pred(u8);

impl Pred {
    /// The hardwired true predicate.
    pub const PT: Pred = Pred(7);

    /// Create a predicate register from its index.
    ///
    /// # Errors
    ///
    /// Returns [`SassError::PredicateOutOfRange`] for indices above 7.
    pub fn new(index: u8) -> Result<Pred, SassError> {
        if index > 7 {
            Err(SassError::PredicateOutOfRange { index })
        } else {
            Ok(Pred(index))
        }
    }

    /// Create a predicate register, panicking on out-of-range indices.
    ///
    /// # Panics
    ///
    /// Panics if `index > 7`.
    // The panic is this constructor's documented contract for static
    // indices; fallible callers use `Pred::new`.
    #[allow(clippy::expect_used)]
    pub fn p(index: u8) -> Pred {
        Pred::new(index).expect("predicate index out of range")
    }

    /// The predicate index (7 for `PT`).
    pub fn index(self) -> u8 {
        self.0
    }

    /// Whether this is the hardwired true predicate.
    pub fn is_pt(self) -> bool {
        self.0 == 7
    }
}

impl fmt::Display for Pred {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_pt() {
            f.write_str("PT")
        } else {
            write!(f, "P{}", self.0)
        }
    }
}

impl fmt::Debug for Pred {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_limits() {
        assert!(Reg::new(62).is_ok());
        assert_eq!(Reg::new(63).unwrap(), Reg::RZ);
        assert!(Reg::new(64).is_err());
        assert!(Pred::new(7).is_ok());
        assert!(Pred::new(8).is_err());
    }

    #[test]
    fn display() {
        assert_eq!(Reg::r(5).to_string(), "R5");
        assert_eq!(Reg::RZ.to_string(), "RZ");
        assert_eq!(Pred::p(2).to_string(), "P2");
        assert_eq!(Pred::PT.to_string(), "PT");
    }

    #[test]
    fn alignment() {
        assert!(Reg::r(4).is_aligned_for(4));
        assert!(Reg::r(6).is_aligned_for(2));
        assert!(!Reg::r(6).is_aligned_for(4));
        assert!(!Reg::r(3).is_aligned_for(2));
        assert!(Reg::r(3).is_aligned_for(1));
    }

    #[test]
    fn bank_delegates_to_arch() {
        assert_eq!(Reg::r(4).bank(), register_bank(4));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn offset_past_r62_panics() {
        let _ = Reg::r(62).offset(1);
    }

    #[test]
    fn offset_checked_is_total() {
        assert_eq!(Reg::r(10).offset_checked(2), Some(Reg::r(12)));
        assert_eq!(Reg::r(62).offset_checked(1), Some(Reg::RZ));
        assert_eq!(Reg::RZ.offset_checked(0), Some(Reg::RZ));
        assert_eq!(Reg::r(62).offset_checked(2), None);
        assert_eq!(Reg::RZ.offset_checked(255), None);
    }
}
