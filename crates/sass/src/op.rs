//! The instruction set: operations and their payloads.

use peakperf_arch::LdsWidth;

use crate::{Operand, Pred, Reg};

/// Width of a memory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum MemWidth {
    /// 32-bit (one register).
    B32,
    /// 64-bit (an even-aligned register pair), e.g. `LDS.64`.
    B64,
    /// 128-bit (a quad-aligned register quartet), e.g. `LDS.128`.
    B128,
}

impl MemWidth {
    /// All widths, narrow to wide.
    pub const ALL: [MemWidth; 3] = [MemWidth::B32, MemWidth::B64, MemWidth::B128];

    /// Number of 32-bit registers transferred.
    pub fn words(self) -> u32 {
        match self {
            MemWidth::B32 => 1,
            MemWidth::B64 => 2,
            MemWidth::B128 => 4,
        }
    }

    /// Bytes transferred per thread.
    pub fn bytes(self) -> u32 {
        self.words() * 4
    }

    /// The mnemonic suffix (`""` / `".64"` / `".128"`).
    pub fn suffix(self) -> &'static str {
        match self {
            MemWidth::B32 => "",
            MemWidth::B64 => ".64",
            MemWidth::B128 => ".128",
        }
    }
}

impl From<MemWidth> for LdsWidth {
    fn from(w: MemWidth) -> LdsWidth {
        match w {
            MemWidth::B32 => LdsWidth::B32,
            MemWidth::B64 => LdsWidth::B64,
            MemWidth::B128 => LdsWidth::B128,
        }
    }
}

impl From<LdsWidth> for MemWidth {
    fn from(w: LdsWidth) -> MemWidth {
        match w {
            LdsWidth::B32 => MemWidth::B32,
            LdsWidth::B64 => MemWidth::B64,
            LdsWidth::B128 => MemWidth::B128,
        }
    }
}

/// Address space of a load/store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemSpace {
    /// Off-chip global memory (`LD` / `ST`).
    Global,
    /// On-chip shared memory (`LDS` / `STS`).
    Shared,
    /// Per-thread local memory, used for register spills (`LDL` / `STL`).
    Local,
}

impl MemSpace {
    /// Load mnemonic for this space.
    pub fn load_mnemonic(self) -> &'static str {
        match self {
            MemSpace::Global => "LD",
            MemSpace::Shared => "LDS",
            MemSpace::Local => "LDL",
        }
    }

    /// Store mnemonic for this space.
    pub fn store_mnemonic(self) -> &'static str {
        match self {
            MemSpace::Global => "ST",
            MemSpace::Shared => "STS",
            MemSpace::Local => "STL",
        }
    }
}

/// Integer comparison operator of `ISETP`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// Less than (signed).
    Lt,
    /// Less than or equal (signed).
    Le,
    /// Greater than (signed).
    Gt,
    /// Greater than or equal (signed).
    Ge,
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
}

impl CmpOp {
    /// All comparison operators.
    pub const ALL: [CmpOp; 6] = [
        CmpOp::Lt,
        CmpOp::Le,
        CmpOp::Gt,
        CmpOp::Ge,
        CmpOp::Eq,
        CmpOp::Ne,
    ];

    /// This operator's position in [`CmpOp::ALL`] (the encoding index).
    pub const fn index(self) -> usize {
        match self {
            CmpOp::Lt => 0,
            CmpOp::Le => 1,
            CmpOp::Gt => 2,
            CmpOp::Ge => 3,
            CmpOp::Eq => 4,
            CmpOp::Ne => 5,
        }
    }

    /// The mnemonic suffix (`LT`, `LE`, ...).
    pub fn suffix(self) -> &'static str {
        match self {
            CmpOp::Lt => "LT",
            CmpOp::Le => "LE",
            CmpOp::Gt => "GT",
            CmpOp::Ge => "GE",
            CmpOp::Eq => "EQ",
            CmpOp::Ne => "NE",
        }
    }

    /// Evaluate the comparison on signed 32-bit values.
    pub fn eval(self, a: i32, b: i32) -> bool {
        match self {
            CmpOp::Lt => a < b,
            CmpOp::Le => a <= b,
            CmpOp::Gt => a > b,
            CmpOp::Ge => a >= b,
            CmpOp::Eq => a == b,
            CmpOp::Ne => a != b,
        }
    }
}

/// Bitwise operation of `LOP`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LogicOp {
    /// Bitwise AND.
    And,
    /// Bitwise OR.
    Or,
    /// Bitwise XOR.
    Xor,
}

impl LogicOp {
    /// The mnemonic suffix.
    pub fn suffix(self) -> &'static str {
        match self {
            LogicOp::And => "AND",
            LogicOp::Or => "OR",
            LogicOp::Xor => "XOR",
        }
    }

    /// Evaluate the operation.
    pub fn eval(self, a: u32, b: u32) -> u32 {
        match self {
            LogicOp::And => a & b,
            LogicOp::Or => a | b,
            LogicOp::Xor => a ^ b,
        }
    }
}

/// Special (read-only) registers accessible through `S2R`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SpecialReg {
    /// Thread index within the block, x component.
    TidX,
    /// Thread index within the block, y component.
    TidY,
    /// Thread index within the block, z component.
    TidZ,
    /// Block index within the grid, x component.
    CtaidX,
    /// Block index within the grid, y component.
    CtaidY,
    /// Block index within the grid, z component.
    CtaidZ,
    /// Block dimension, x component.
    NtidX,
    /// Block dimension, y component.
    NtidY,
    /// Block dimension, z component.
    NtidZ,
    /// Grid dimension, x component.
    NctaidX,
    /// Grid dimension, y component.
    NctaidY,
    /// Lane index within the warp (0..32).
    LaneId,
}

impl SpecialReg {
    /// All special registers (used by the parser and property tests).
    pub const ALL: [SpecialReg; 12] = [
        SpecialReg::TidX,
        SpecialReg::TidY,
        SpecialReg::TidZ,
        SpecialReg::CtaidX,
        SpecialReg::CtaidY,
        SpecialReg::CtaidZ,
        SpecialReg::NtidX,
        SpecialReg::NtidY,
        SpecialReg::NtidZ,
        SpecialReg::NctaidX,
        SpecialReg::NctaidY,
        SpecialReg::LaneId,
    ];

    /// This register's position in [`SpecialReg::ALL`] (the encoding index).
    pub const fn index(self) -> usize {
        match self {
            SpecialReg::TidX => 0,
            SpecialReg::TidY => 1,
            SpecialReg::TidZ => 2,
            SpecialReg::CtaidX => 3,
            SpecialReg::CtaidY => 4,
            SpecialReg::CtaidZ => 5,
            SpecialReg::NtidX => 6,
            SpecialReg::NtidY => 7,
            SpecialReg::NtidZ => 8,
            SpecialReg::NctaidX => 9,
            SpecialReg::NctaidY => 10,
            SpecialReg::LaneId => 11,
        }
    }

    /// Assembly name (e.g. `SR_TID.X`).
    pub fn name(self) -> &'static str {
        match self {
            SpecialReg::TidX => "SR_TID.X",
            SpecialReg::TidY => "SR_TID.Y",
            SpecialReg::TidZ => "SR_TID.Z",
            SpecialReg::CtaidX => "SR_CTAID.X",
            SpecialReg::CtaidY => "SR_CTAID.Y",
            SpecialReg::CtaidZ => "SR_CTAID.Z",
            SpecialReg::NtidX => "SR_NTID.X",
            SpecialReg::NtidY => "SR_NTID.Y",
            SpecialReg::NtidZ => "SR_NTID.Z",
            SpecialReg::NctaidX => "SR_NCTAID.X",
            SpecialReg::NctaidY => "SR_NCTAID.Y",
            SpecialReg::LaneId => "SR_LANEID",
        }
    }
}

/// Functional class of an operation, used by the timing model and the
/// statistics counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpClass {
    /// Single-precision floating point (SP pipe).
    Fp32,
    /// 32-bit integer ALU (SP pipe, possibly derated).
    Int,
    /// Integer multiply path (quarter rate on Kepler).
    IntMul,
    /// Register moves and special-register reads.
    Mov,
    /// Loads/stores (LD/ST pipe).
    Mem(MemSpace),
    /// Control flow.
    Ctrl,
    /// Block-wide barrier.
    Barrier,
    /// No operation.
    Nop,
}

/// One operation with its operands.
///
/// The payloads mirror SASS operand shapes: three-input FP ops read two
/// registers and one flexible operand; memory ops use register + immediate
/// offset addressing (32-bit addressing, as the paper's kernels use to save
/// address registers).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Op {
    /// No operation.
    Nop,
    /// Terminate the thread.
    Exit,
    /// Branch to an absolute instruction index within the kernel
    /// (the assembler resolves labels; the encoder stores a relative
    /// offset).
    Bra {
        /// Absolute instruction index of the branch target.
        target: u32,
    },
    /// Block-wide barrier (`BAR.SYNC`).
    Bar,
    /// Copy an operand into a register.
    Mov {
        /// Destination.
        dst: Reg,
        /// Source operand.
        src: Operand,
    },
    /// Load a full 32-bit immediate.
    Mov32i {
        /// Destination.
        dst: Reg,
        /// The 32-bit immediate (raw bits; may hold a float).
        imm: u32,
    },
    /// Read a special register.
    S2r {
        /// Destination.
        dst: Reg,
        /// The special register.
        sr: SpecialReg,
    },
    /// `dst = a + b` (f32).
    Fadd {
        /// Destination.
        dst: Reg,
        /// First addend.
        a: Reg,
        /// Second addend (register or constant; no immediates for FP).
        b: Operand,
    },
    /// `dst = a * b` (f32).
    Fmul {
        /// Destination.
        dst: Reg,
        /// Multiplicand.
        a: Reg,
        /// Multiplier (register or constant).
        b: Operand,
    },
    /// Fused multiply-add: `dst = a * b + c` (f32, single rounding).
    Ffma {
        /// Destination.
        dst: Reg,
        /// Multiplicand.
        a: Reg,
        /// Multiplier (register or constant).
        b: Operand,
        /// Addend.
        c: Reg,
    },
    /// `dst = a + b` (i32, wrapping).
    Iadd {
        /// Destination.
        dst: Reg,
        /// First addend.
        a: Reg,
        /// Second addend.
        b: Operand,
    },
    /// `dst = a * b` (i32, wrapping, low 32 bits).
    Imul {
        /// Destination.
        dst: Reg,
        /// Multiplicand.
        a: Reg,
        /// Multiplier.
        b: Operand,
    },
    /// `dst = a * b + c` (i32, wrapping).
    Imad {
        /// Destination.
        dst: Reg,
        /// Multiplicand.
        a: Reg,
        /// Multiplier.
        b: Operand,
        /// Addend.
        c: Reg,
    },
    /// Scaled add: `dst = (a << shift) + b` (i32, wrapping).
    Iscadd {
        /// Destination.
        dst: Reg,
        /// The operand that is shifted.
        a: Reg,
        /// The unshifted addend.
        b: Operand,
        /// Shift amount (0..=31).
        shift: u8,
    },
    /// Logical shift left: `dst = a << b`.
    Shl {
        /// Destination.
        dst: Reg,
        /// Value to shift.
        a: Reg,
        /// Shift amount (low 5 bits used).
        b: Operand,
    },
    /// Logical shift right: `dst = a >> b`.
    Shr {
        /// Destination.
        dst: Reg,
        /// Value to shift.
        a: Reg,
        /// Shift amount (low 5 bits used).
        b: Operand,
    },
    /// Bitwise logic: `dst = a <op> b`.
    Lop {
        /// The bitwise operation.
        op: LogicOp,
        /// Destination.
        dst: Reg,
        /// First operand.
        a: Reg,
        /// Second operand.
        b: Operand,
    },
    /// Integer compare to predicate: `p = (a <cmp> b)`.
    Isetp {
        /// Destination predicate.
        p: Pred,
        /// Comparison operator.
        cmp: CmpOp,
        /// Left-hand side.
        a: Reg,
        /// Right-hand side.
        b: Operand,
    },
    /// Load from memory: `dst[..width.words()] = space[addr + offset]`.
    Ld {
        /// Address space.
        space: MemSpace,
        /// Access width.
        width: MemWidth,
        /// First destination register (width-aligned).
        dst: Reg,
        /// Base address register (byte address).
        addr: Reg,
        /// Signed byte offset.
        offset: i32,
    },
    /// Store to memory: `space[addr + offset] = src[..width.words()]`.
    St {
        /// Address space.
        space: MemSpace,
        /// Access width.
        width: MemWidth,
        /// First source register (width-aligned).
        src: Reg,
        /// Base address register (byte address).
        addr: Reg,
        /// Signed byte offset.
        offset: i32,
    },
    /// Load from a constant bank: `dst = c[bank][offset]`.
    Ldc {
        /// Destination.
        dst: Reg,
        /// Constant bank.
        bank: u8,
        /// Byte offset (4-byte aligned).
        offset: u32,
    },
}

impl Op {
    /// The functional class of this operation.
    pub fn class(&self) -> OpClass {
        match self {
            Op::Nop => OpClass::Nop,
            Op::Exit | Op::Bra { .. } => OpClass::Ctrl,
            Op::Bar => OpClass::Barrier,
            Op::Mov { .. } | Op::Mov32i { .. } | Op::S2r { .. } | Op::Ldc { .. } => OpClass::Mov,
            Op::Fadd { .. } | Op::Fmul { .. } | Op::Ffma { .. } => OpClass::Fp32,
            Op::Imul { .. } | Op::Imad { .. } => OpClass::IntMul,
            Op::Iadd { .. }
            | Op::Iscadd { .. }
            | Op::Shl { .. }
            | Op::Shr { .. }
            | Op::Lop { .. }
            | Op::Isetp { .. } => OpClass::Int,
            Op::Ld { space, .. } | Op::St { space, .. } => OpClass::Mem(*space),
        }
    }

    /// The mnemonic, without operands (e.g. `"LDS.64"`).
    pub fn mnemonic(&self) -> String {
        match self {
            Op::Nop => "NOP".into(),
            Op::Exit => "EXIT".into(),
            Op::Bra { .. } => "BRA".into(),
            Op::Bar => "BAR.SYNC".into(),
            Op::Mov { .. } => "MOV".into(),
            Op::Mov32i { .. } => "MOV32I".into(),
            Op::S2r { .. } => "S2R".into(),
            Op::Fadd { .. } => "FADD".into(),
            Op::Fmul { .. } => "FMUL".into(),
            Op::Ffma { .. } => "FFMA".into(),
            Op::Iadd { .. } => "IADD".into(),
            Op::Imul { .. } => "IMUL".into(),
            Op::Imad { .. } => "IMAD".into(),
            Op::Iscadd { .. } => "ISCADD".into(),
            Op::Shl { .. } => "SHL".into(),
            Op::Shr { .. } => "SHR".into(),
            Op::Lop { op, .. } => format!("LOP.{}", op.suffix()),
            Op::Isetp { cmp, .. } => format!("ISETP.{}", cmp.suffix()),
            Op::Ld { space, width, .. } => {
                format!("{}{}", space.load_mnemonic(), width.suffix())
            }
            Op::St { space, width, .. } => {
                format!("{}{}", space.store_mnemonic(), width.suffix())
            }
            Op::Ldc { .. } => "LDC".into(),
        }
    }

    /// General-purpose registers written by this operation (wide loads
    /// expand to consecutive registers).
    pub fn def_regs(&self) -> Vec<Reg> {
        let single = |r: &Reg| {
            if r.is_rz() {
                vec![]
            } else {
                vec![*r]
            }
        };
        match self {
            Op::Mov { dst, .. }
            | Op::Mov32i { dst, .. }
            | Op::S2r { dst, .. }
            | Op::Fadd { dst, .. }
            | Op::Fmul { dst, .. }
            | Op::Ffma { dst, .. }
            | Op::Iadd { dst, .. }
            | Op::Imul { dst, .. }
            | Op::Imad { dst, .. }
            | Op::Iscadd { dst, .. }
            | Op::Shl { dst, .. }
            | Op::Shr { dst, .. }
            | Op::Lop { dst, .. }
            | Op::Ldc { dst, .. } => single(dst),
            Op::Ld { width, dst, .. } => (0..width.words() as u8)
                .filter_map(|i| dst.offset_checked(i))
                .filter(|r| !r.is_rz())
                .collect(),
            _ => vec![],
        }
    }

    /// General-purpose registers read by this operation (`RZ` excluded).
    pub fn use_regs(&self) -> Vec<Reg> {
        fn push(out: &mut Vec<Reg>, r: Reg) {
            if !r.is_rz() {
                out.push(r);
            }
        }
        fn push_op(out: &mut Vec<Reg>, o: &Operand) {
            if let Operand::Reg(r) = o {
                push(out, *r);
            }
        }
        let mut out = Vec::new();
        match self {
            Op::Mov { src, .. } => push_op(&mut out, src),
            Op::Fadd { a, b, .. }
            | Op::Fmul { a, b, .. }
            | Op::Iadd { a, b, .. }
            | Op::Imul { a, b, .. }
            | Op::Iscadd { a, b, .. }
            | Op::Shl { a, b, .. }
            | Op::Shr { a, b, .. }
            | Op::Lop { a, b, .. }
            | Op::Isetp { a, b, .. } => {
                push(&mut out, *a);
                push_op(&mut out, b);
            }
            Op::Ffma { a, b, c, .. } | Op::Imad { a, b, c, .. } => {
                push(&mut out, *a);
                push_op(&mut out, b);
                push(&mut out, *c);
            }
            Op::Ld { addr, .. } => push(&mut out, *addr),
            Op::St {
                width, src, addr, ..
            } => {
                push(&mut out, *addr);
                for r in (0..width.words() as u8).filter_map(|i| src.offset_checked(i)) {
                    push(&mut out, r);
                }
            }
            _ => {}
        }
        out
    }

    /// The predicate register written, if any.
    pub fn def_pred(&self) -> Option<Pred> {
        match self {
            Op::Isetp { p, .. } if !p.is_pt() => Some(*p),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_width_roundtrip_with_arch() {
        for w in MemWidth::ALL {
            let lds: LdsWidth = w.into();
            let back: MemWidth = lds.into();
            assert_eq!(back, w);
            assert_eq!(w.bytes(), lds.bytes());
        }
    }

    #[test]
    fn cmp_eval() {
        assert!(CmpOp::Lt.eval(-1, 0));
        assert!(!CmpOp::Gt.eval(-1, 0));
        assert!(CmpOp::Ne.eval(1, 2));
        assert!(CmpOp::Ge.eval(3, 3));
    }

    #[test]
    fn ffma_def_use() {
        let op = Op::Ffma {
            dst: Reg::r(8),
            a: Reg::r(1),
            b: Operand::reg(2),
            c: Reg::r(8),
        };
        assert_eq!(op.def_regs(), vec![Reg::r(8)]);
        assert_eq!(op.use_regs(), vec![Reg::r(1), Reg::r(2), Reg::r(8)]);
        assert_eq!(op.class(), OpClass::Fp32);
    }

    #[test]
    fn wide_load_defs_expand() {
        let op = Op::Ld {
            space: MemSpace::Shared,
            width: MemWidth::B128,
            dst: Reg::r(12),
            addr: Reg::r(20),
            offset: 16,
        };
        assert_eq!(
            op.def_regs(),
            vec![Reg::r(12), Reg::r(13), Reg::r(14), Reg::r(15)]
        );
        assert_eq!(op.use_regs(), vec![Reg::r(20)]);
        assert_eq!(op.mnemonic(), "LDS.128");
    }

    #[test]
    fn wide_store_uses_expand() {
        let op = Op::St {
            space: MemSpace::Global,
            width: MemWidth::B64,
            src: Reg::r(4),
            addr: Reg::r(10),
            offset: 0,
        };
        assert_eq!(op.use_regs(), vec![Reg::r(10), Reg::r(4), Reg::r(5)]);
        assert!(op.def_regs().is_empty());
        assert_eq!(op.mnemonic(), "ST.64");
    }

    #[test]
    fn rz_is_filtered_from_def_use() {
        let op = Op::Iadd {
            dst: Reg::RZ,
            a: Reg::RZ,
            b: Operand::Reg(Reg::RZ),
        };
        assert!(op.def_regs().is_empty());
        assert!(op.use_regs().is_empty());
    }

    #[test]
    fn def_use_are_total_on_rz_adjacent_wide_accesses() {
        // Found by the differential fuzzer: register expansion must not
        // panic on (invalid, but representable) memory ops whose word
        // range touches or passes RZ — the validator rejects them, but
        // it does so *by calling these functions*.
        let ld = Op::Ld {
            space: MemSpace::Shared,
            width: MemWidth::B64,
            dst: Reg::r(62),
            addr: Reg::r(0),
            offset: 0,
        };
        assert_eq!(ld.def_regs(), vec![Reg::r(62)]);
        let ld_rz = Op::Ld {
            space: MemSpace::Shared,
            width: MemWidth::B32,
            dst: Reg::RZ,
            addr: Reg::r(0),
            offset: 0,
        };
        assert!(ld_rz.def_regs().is_empty());
        let st = Op::St {
            space: MemSpace::Global,
            width: MemWidth::B128,
            src: Reg::r(61),
            addr: Reg::r(10),
            offset: 0,
        };
        assert_eq!(st.use_regs(), vec![Reg::r(10), Reg::r(61), Reg::r(62)]);
        let st_rz = Op::St {
            space: MemSpace::Global,
            width: MemWidth::B32,
            src: Reg::RZ,
            addr: Reg::r(10),
            offset: 0,
        };
        assert_eq!(st_rz.use_regs(), vec![Reg::r(10)]);
    }

    #[test]
    fn isetp_def_pred() {
        let op = Op::Isetp {
            p: Pred::p(0),
            cmp: CmpOp::Lt,
            a: Reg::r(1),
            b: Operand::Imm(5),
        };
        assert_eq!(op.def_pred(), Some(Pred::p(0)));
        assert_eq!(op.mnemonic(), "ISETP.LT");
    }

    #[test]
    fn classes() {
        assert_eq!(Op::Bar.class(), OpClass::Barrier);
        assert_eq!(Op::Exit.class(), OpClass::Ctrl);
        assert_eq!(
            Op::Imul {
                dst: Reg::r(0),
                a: Reg::r(1),
                b: Operand::Imm(3)
            }
            .class(),
            OpClass::IntMul
        );
    }
}
