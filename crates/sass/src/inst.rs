//! A predicated instruction and its textual form.

use std::fmt;

use crate::{Op, Pred};

/// One SASS instruction: an operation under an optional predicate guard.
///
/// The `Display` implementation produces the canonical assembly text that
/// [`crate::assemble`] parses back, e.g. `@!P0 FFMA R8, R4, R5, R8;`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Instruction {
    /// Guard predicate: the instruction only executes in lanes where the
    /// predicate (negated if `pred_neg`) is true. `None` means always
    /// execute.
    pub pred: Option<Pred>,
    /// Whether the guard is negated (`@!P0`).
    pub pred_neg: bool,
    /// The operation.
    pub op: Op,
}

impl Instruction {
    /// An unpredicated instruction.
    pub fn new(op: Op) -> Instruction {
        Instruction {
            pred: None,
            pred_neg: false,
            op,
        }
    }

    /// A predicated instruction (`@Pp op` or `@!Pp op`).
    pub fn predicated(pred: Pred, negated: bool, op: Op) -> Instruction {
        Instruction {
            pred: Some(pred),
            pred_neg: negated,
            op,
        }
    }
}

impl From<Op> for Instruction {
    fn from(op: Op) -> Instruction {
        Instruction::new(op)
    }
}

fn fmt_offset(f: &mut fmt::Formatter<'_>, offset: i32) -> fmt::Result {
    if offset > 0 {
        write!(f, "+{offset:#x}")
    } else if offset < 0 {
        write!(f, "-{:#x}", -(i64::from(offset)))
    } else {
        Ok(())
    }
}

impl fmt::Display for Instruction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(p) = self.pred {
            if self.pred_neg {
                write!(f, "@!{p} ")?;
            } else {
                write!(f, "@{p} ")?;
            }
        }
        use crate::Op::*;
        match &self.op {
            Nop => write!(f, "NOP;"),
            Exit => write!(f, "EXIT;"),
            Bra { target } => write!(f, "BRA {target:#x};"),
            Bar => write!(f, "BAR.SYNC;"),
            Mov { dst, src } => write!(f, "MOV {dst}, {src};"),
            Mov32i { dst, imm } => write!(f, "MOV32I {dst}, {imm:#x};"),
            S2r { dst, sr } => write!(f, "S2R {dst}, {};", sr.name()),
            Fadd { dst, a, b } => write!(f, "FADD {dst}, {a}, {b};"),
            Fmul { dst, a, b } => write!(f, "FMUL {dst}, {a}, {b};"),
            Ffma { dst, a, b, c } => write!(f, "FFMA {dst}, {a}, {b}, {c};"),
            Iadd { dst, a, b } => write!(f, "IADD {dst}, {a}, {b};"),
            Imul { dst, a, b } => write!(f, "IMUL {dst}, {a}, {b};"),
            Imad { dst, a, b, c } => write!(f, "IMAD {dst}, {a}, {b}, {c};"),
            Iscadd { dst, a, b, shift } => {
                write!(f, "ISCADD {dst}, {a}, {b}, {shift:#x};")
            }
            Shl { dst, a, b } => write!(f, "SHL {dst}, {a}, {b};"),
            Shr { dst, a, b } => write!(f, "SHR {dst}, {a}, {b};"),
            Lop { op, dst, a, b } => write!(f, "LOP.{} {dst}, {a}, {b};", op.suffix()),
            Isetp { p, cmp, a, b } => {
                write!(f, "ISETP.{} {p}, {a}, {b};", cmp.suffix())
            }
            Ld {
                space,
                width,
                dst,
                addr,
                offset,
            } => {
                write!(
                    f,
                    "{}{} {dst}, [{addr}",
                    space.load_mnemonic(),
                    width.suffix()
                )?;
                fmt_offset(f, *offset)?;
                write!(f, "];")
            }
            St {
                space,
                width,
                src,
                addr,
                offset,
            } => {
                write!(f, "{}{} [{addr}", space.store_mnemonic(), width.suffix())?;
                fmt_offset(f, *offset)?;
                write!(f, "], {src};")
            }
            Ldc { dst, bank, offset } => {
                write!(f, "LDC {dst}, c[{bank:#x}][{offset:#x}];")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CmpOp, MemSpace, MemWidth, Operand, Reg};

    #[test]
    fn display_matches_sass_style() {
        let i = Instruction::new(Op::Ffma {
            dst: Reg::r(8),
            a: Reg::r(4),
            b: Operand::reg(5),
            c: Reg::r(8),
        });
        assert_eq!(i.to_string(), "FFMA R8, R4, R5, R8;");

        let i = Instruction::predicated(Pred::p(0), true, Op::Bra { target: 0x10 });
        assert_eq!(i.to_string(), "@!P0 BRA 0x10;");

        let i = Instruction::new(Op::Ld {
            space: MemSpace::Shared,
            width: MemWidth::B64,
            dst: Reg::r(6),
            addr: Reg::r(20),
            offset: 8,
        });
        assert_eq!(i.to_string(), "LDS.64 R6, [R20+0x8];");

        let i = Instruction::new(Op::St {
            space: MemSpace::Shared,
            width: MemWidth::B32,
            src: Reg::r(2),
            addr: Reg::r(3),
            offset: -4,
        });
        assert_eq!(i.to_string(), "STS [R3-0x4], R2;");

        let i = Instruction::new(Op::Isetp {
            p: Pred::p(1),
            cmp: CmpOp::Ge,
            a: Reg::r(18),
            b: Operand::Imm(16),
        });
        assert_eq!(i.to_string(), "ISETP.GE P1, R18, 0x10;");
    }

    #[test]
    fn zero_offset_is_elided() {
        let i = Instruction::new(Op::Ld {
            space: MemSpace::Global,
            width: MemWidth::B128,
            dst: Reg::r(12),
            addr: Reg::r(16),
            offset: 0,
        });
        assert_eq!(i.to_string(), "LD.128 R12, [R16];");
    }
}
