//! Structural validation of kernels against the ISA and generation limits.

use peakperf_arch::Generation;

use crate::{Instruction, Kernel, MemSpace, Op, SassError};

fn verr(index: Option<usize>, message: impl Into<String>) -> SassError {
    SassError::Validate {
        index,
        message: message.into(),
    }
}

/// Memory-offset range shared by LD/ST: the encoding stores a signed
/// 24-bit byte offset (the validator must be at least as strict as the
/// encoder, so every validated kernel is encodable).
fn check_mem_offset(offset: i32, index: usize) -> Result<(), SassError> {
    if !(-(1 << 23)..1 << 23).contains(&offset) {
        return Err(verr(
            Some(index),
            format!("memory offset {offset} outside the signed 24-bit encoding range"),
        ));
    }
    Ok(())
}

/// Validate one instruction (register-alignment rules for wide accesses,
/// operand encodability).
///
/// # Errors
///
/// Returns [`SassError::Validate`] describing the violated constraint.
pub fn validate_instruction(inst: &Instruction, index: usize) -> Result<(), SassError> {
    match inst.op {
        Op::Ld {
            width, dst, offset, ..
        } => {
            check_mem_offset(offset, index)?;
            if !dst.is_aligned_for(width.words()) {
                return Err(verr(
                    Some(index),
                    format!(
                        "{} destination {dst} must be {}-register aligned",
                        inst.op.mnemonic(),
                        width.words()
                    ),
                ));
            }
            // Wide accesses expand to consecutive general registers, so
            // the range must stop at R62: index 63 is RZ, not storage.
            // (Single-word RZ stays legal — a discard load.)
            if width.words() > 1 && dst.index() as u32 + width.words() > 63 {
                return Err(verr(
                    Some(index),
                    format!("wide load at {dst} runs past R62 into the zero register"),
                ));
            }
        }
        Op::St {
            width, src, offset, ..
        } => {
            check_mem_offset(offset, index)?;
            if !src.is_aligned_for(width.words()) {
                return Err(verr(
                    Some(index),
                    format!(
                        "{} source {src} must be {}-register aligned",
                        inst.op.mnemonic(),
                        width.words()
                    ),
                ));
            }
            // Single-word RZ is the store-zero idiom; wide ranges must
            // stop at R62 like loads.
            if width.words() > 1 && src.index() as u32 + width.words() > 63 {
                return Err(verr(
                    Some(index),
                    format!("wide store at {src} runs past R62 into the zero register"),
                ));
            }
        }
        Op::Fadd { b, .. } | Op::Fmul { b, .. } | Op::Ffma { b, .. } => {
            if matches!(b, crate::Operand::Imm(_)) {
                return Err(verr(
                    Some(index),
                    "floating-point instructions take register or constant operands \
                     (use MOV32I for literals)",
                ));
            }
            b.check().map_err(|e| verr(Some(index), e.to_string()))?;
        }
        Op::Iscadd { b, shift, .. } => {
            if shift > 31 {
                return Err(verr(
                    Some(index),
                    format!("ISCADD shift {shift} outside the encodable range 0..=31"),
                ));
            }
            b.check().map_err(|e| verr(Some(index), e.to_string()))?;
        }
        Op::Ldc { bank, offset, .. } => {
            crate::Operand::Const { bank, offset }
                .check()
                .map_err(|e| verr(Some(index), e.to_string()))?;
        }
        Op::Mov { src: b, .. }
        | Op::Iadd { b, .. }
        | Op::Imul { b, .. }
        | Op::Imad { b, .. }
        | Op::Shl { b, .. }
        | Op::Shr { b, .. }
        | Op::Lop { b, .. }
        | Op::Isetp { b, .. } => {
            b.check().map_err(|e| verr(Some(index), e.to_string()))?;
        }
        _ => {}
    }
    Ok(())
}

/// Validate a whole kernel for a target generation:
///
/// * every instruction passes [`validate_instruction`];
/// * the highest register index used is within `num_regs` and the
///   generation's hard encoding limit (63 on Fermi/GK104, Section 2);
/// * branch targets stay inside the kernel;
/// * the shared-memory declaration fits the generation's per-block limit;
/// * local-memory accesses require a non-zero `local_bytes` declaration;
/// * Kepler kernels carry one control field per instruction.
///
/// # Errors
///
/// Returns the first violated constraint as [`SassError::Validate`].
pub fn validate_kernel(kernel: &Kernel, generation: Generation) -> Result<(), SassError> {
    let n = kernel.code.len();
    if n == 0 {
        return Err(verr(None, "kernel has no instructions"));
    }
    let max_shared = generation.max_shared_bytes_per_block();
    if kernel.shared_bytes > max_shared {
        return Err(verr(
            None,
            format!(
                "kernel declares {} bytes of shared memory but {generation} allows {max_shared}",
                kernel.shared_bytes
            ),
        ));
    }
    let max_regs = generation.max_registers_per_thread();
    if kernel.num_regs > max_regs {
        return Err(verr(
            None,
            format!(
                "kernel declares {} registers but {generation} allows {max_regs}",
                kernel.num_regs
            ),
        ));
    }
    let mut highest: Option<u8> = None;
    for (i, inst) in kernel.code.iter().enumerate() {
        validate_instruction(inst, i)?;
        for r in inst.op.def_regs().into_iter().chain(inst.op.use_regs()) {
            highest = Some(highest.map_or(r.index(), |h| h.max(r.index())));
        }
        if let Op::Bra { target } = inst.op {
            if target as usize >= n {
                return Err(verr(
                    Some(i),
                    format!("branch target {target:#x} outside kernel of {n} instructions"),
                ));
            }
        }
        if let Op::Ld {
            space: MemSpace::Local,
            ..
        }
        | Op::St {
            space: MemSpace::Local,
            ..
        } = inst.op
        {
            if kernel.local_bytes == 0 {
                return Err(verr(
                    Some(i),
                    "local-memory access in a kernel with no `.local` declaration",
                ));
            }
        }
    }
    if let Some(h) = highest {
        if u32::from(h) >= kernel.num_regs && kernel.num_regs > 0 {
            return Err(verr(
                None,
                format!(
                    "register R{h} used but kernel declares only {} registers",
                    kernel.num_regs
                ),
            ));
        }
        if u32::from(h) >= max_regs {
            return Err(verr(
                None,
                format!("register R{h} exceeds the {generation} limit of {max_regs}"),
            ));
        }
    }
    if generation.uses_control_notation() {
        match &kernel.ctl {
            Some(fields) if fields.len() == n => {}
            Some(fields) => {
                return Err(verr(
                    None,
                    format!(
                        "control notation covers {} of {n} instructions",
                        fields.len()
                    ),
                ))
            }
            None => {
                return Err(verr(
                    None,
                    "Kepler kernels require control notation (Section 3.2)",
                ))
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctl::CtlInfo;
    use crate::{MemWidth, Operand, Reg};

    fn kernel_with(code: Vec<Instruction>, num_regs: u32) -> Kernel {
        let mut k = Kernel::new("t");
        k.num_regs = num_regs;
        k.code = code;
        k
    }

    #[test]
    fn misaligned_wide_load_rejected() {
        let inst = Instruction::new(Op::Ld {
            space: MemSpace::Shared,
            width: MemWidth::B64,
            dst: Reg::r(7),
            addr: Reg::r(0),
            offset: 0,
        });
        assert!(validate_instruction(&inst, 0).is_err());
        let ok = Instruction::new(Op::Ld {
            space: MemSpace::Shared,
            width: MemWidth::B64,
            dst: Reg::r(6),
            addr: Reg::r(0),
            offset: 0,
        });
        assert!(validate_instruction(&ok, 0).is_ok());
    }

    #[test]
    fn lds128_requires_quad_alignment() {
        let inst = Instruction::new(Op::Ld {
            space: MemSpace::Shared,
            width: MemWidth::B128,
            dst: Reg::r(6),
            addr: Reg::r(0),
            offset: 0,
        });
        assert!(validate_instruction(&inst, 0).is_err());
    }

    #[test]
    fn float_immediates_rejected() {
        let inst = Instruction::new(Op::Ffma {
            dst: Reg::r(0),
            a: Reg::r(1),
            b: Operand::Imm(2),
            c: Reg::r(0),
        });
        assert!(validate_instruction(&inst, 0).is_err());
    }

    #[test]
    fn register_budget_enforced() {
        let code = vec![
            Instruction::new(Op::Mov {
                dst: Reg::r(40),
                src: Operand::Imm(0),
            }),
            Instruction::new(Op::Exit),
        ];
        let k = kernel_with(code, 16);
        let e = validate_kernel(&k, Generation::Fermi).unwrap_err();
        assert!(e.to_string().contains("R40"));
    }

    #[test]
    fn branch_bounds_enforced() {
        let code = vec![
            Instruction::new(Op::Bra { target: 9 }),
            Instruction::new(Op::Exit),
        ];
        let k = kernel_with(code, 4);
        assert!(validate_kernel(&k, Generation::Fermi).is_err());
    }

    #[test]
    fn local_access_requires_declaration() {
        let code = vec![
            Instruction::new(Op::St {
                space: MemSpace::Local,
                width: MemWidth::B32,
                src: Reg::r(0),
                addr: Reg::RZ,
                offset: 0,
            }),
            Instruction::new(Op::Exit),
        ];
        let mut k = kernel_with(code, 4);
        assert!(validate_kernel(&k, Generation::Fermi).is_err());
        k.local_bytes = 64;
        assert!(validate_kernel(&k, Generation::Fermi).is_ok());
    }

    #[test]
    fn kepler_requires_ctl() {
        let code = vec![Instruction::new(Op::Exit)];
        let mut k = kernel_with(code, 4);
        assert!(validate_kernel(&k, Generation::Kepler).is_err());
        k.ctl = Some(vec![CtlInfo::NONE]);
        assert!(validate_kernel(&k, Generation::Kepler).is_ok());
        assert!(validate_kernel(&k, Generation::Fermi).is_ok());
    }

    #[test]
    fn empty_kernel_rejected() {
        let k = kernel_with(vec![], 4);
        assert!(validate_kernel(&k, Generation::Fermi).is_err());
    }

    #[test]
    fn iscadd_shift_range_enforced() {
        let bad = Instruction::new(Op::Iscadd {
            dst: Reg::r(0),
            a: Reg::r(1),
            b: Operand::reg(2),
            shift: 32,
        });
        assert!(validate_instruction(&bad, 0).is_err());
        let ok = Instruction::new(Op::Iscadd {
            dst: Reg::r(0),
            a: Reg::r(1),
            b: Operand::reg(2),
            shift: 31,
        });
        assert!(validate_instruction(&ok, 0).is_ok());
    }

    #[test]
    fn memory_offset_range_enforced() {
        let mk = |offset| {
            Instruction::new(Op::Ld {
                space: MemSpace::Global,
                width: MemWidth::B32,
                dst: Reg::r(0),
                addr: Reg::r(1),
                offset,
            })
        };
        assert!(validate_instruction(&mk(1 << 23), 0).is_err());
        assert!(validate_instruction(&mk(-(1 << 23) - 1), 0).is_err());
        assert!(validate_instruction(&mk((1 << 23) - 1), 0).is_ok());
        assert!(validate_instruction(&mk(-(1 << 23)), 0).is_ok());
    }

    #[test]
    fn ldc_operand_range_enforced() {
        let bad_bank = Instruction::new(Op::Ldc {
            dst: Reg::r(0),
            bank: 16,
            offset: 0,
        });
        assert!(validate_instruction(&bad_bank, 0).is_err());
        let misaligned = Instruction::new(Op::Ldc {
            dst: Reg::r(0),
            bank: 0,
            offset: 6,
        });
        assert!(validate_instruction(&misaligned, 0).is_err());
        let ok = Instruction::new(Op::Ldc {
            dst: Reg::r(0),
            bank: 15,
            offset: 0xFFFC,
        });
        assert!(validate_instruction(&ok, 0).is_ok());
    }

    #[test]
    fn wide_access_may_not_run_into_rz() {
        // Found by the differential fuzzer: LD.64 R62 / LD.128 R60 pass
        // alignment and sit inside the 6-bit encoding, but their last
        // word lands on index 63 (RZ). They must be rejected, not left
        // to panic downstream register-expansion code.
        let ld64 = Instruction::new(Op::Ld {
            space: MemSpace::Shared,
            width: MemWidth::B64,
            dst: Reg::r(62),
            addr: Reg::r(0),
            offset: 0,
        });
        assert!(validate_instruction(&ld64, 0).is_err());
        let ld128 = Instruction::new(Op::Ld {
            space: MemSpace::Shared,
            width: MemWidth::B128,
            dst: Reg::r(60),
            addr: Reg::r(0),
            offset: 0,
        });
        assert!(validate_instruction(&ld128, 0).is_err());
        let st64 = Instruction::new(Op::St {
            space: MemSpace::Shared,
            width: MemWidth::B64,
            src: Reg::r(62),
            addr: Reg::r(0),
            offset: 0,
        });
        assert!(validate_instruction(&st64, 0).is_err());
    }

    #[test]
    fn single_word_rz_data_register_is_legal() {
        // `LD RZ` is a discard load and `ST ..., RZ` stores zero; both
        // are valid and must validate without panicking.
        let ld = Instruction::new(Op::Ld {
            space: MemSpace::Shared,
            width: MemWidth::B32,
            dst: Reg::RZ,
            addr: Reg::r(0),
            offset: 0,
        });
        let st = Instruction::new(Op::St {
            space: MemSpace::Shared,
            width: MemWidth::B32,
            src: Reg::RZ,
            addr: Reg::r(0),
            offset: 0,
        });
        let k = kernel_with(vec![ld, st, Instruction::new(Op::Exit)], 4);
        assert!(validate_kernel(&k, Generation::Fermi).is_ok());
    }

    #[test]
    fn shared_memory_limit_enforced() {
        let mut k = kernel_with(vec![Instruction::new(Op::Exit)], 4);
        k.shared_bytes = 48 * 1024;
        assert!(validate_kernel(&k, Generation::Fermi).is_ok());
        assert!(validate_kernel(&k, Generation::Gt200).is_err());
        k.shared_bytes = 48 * 1024 + 4;
        let e = validate_kernel(&k, Generation::Fermi).unwrap_err();
        assert!(e.to_string().contains("shared"));
    }

    #[test]
    fn gt200_allows_more_registers() {
        let mut k = kernel_with(vec![Instruction::new(Op::Exit)], 100);
        k.num_regs = 100;
        assert!(validate_kernel(&k, Generation::Gt200).is_ok());
        assert!(validate_kernel(&k, Generation::Fermi).is_err());
    }
}
