//! The cubin-like container: kernels, parameters, and binary serialization.

use std::fmt;

use peakperf_arch::Generation;

use crate::ctl::{pack_stream, unpack_stream, CtlInfo, CtlWord};
use crate::encode::{decode_stream, encode_stream};
use crate::{Instruction, SassError, PARAM_BASE};

/// Description of one kernel parameter (a 32-bit word in constant bank 0).
///
/// Pointers are passed as 32-bit offsets into the simulator's global memory
/// — the paper's kernels deliberately use 32-bit addressing to save address
/// registers (Section 5.2).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParamDesc {
    /// Parameter name (informational).
    pub name: String,
    /// Byte offset in constant bank 0 (`PARAM_BASE + 4 * position`).
    pub offset: u32,
}

/// A single kernel: code plus launch metadata.
#[derive(Debug, Clone, PartialEq)]
pub struct Kernel {
    /// Kernel (entry) name.
    pub name: String,
    /// Number of general-purpose registers each thread uses.
    pub num_regs: u32,
    /// Static shared memory per block, in bytes.
    pub shared_bytes: u32,
    /// Per-thread local memory (spill space), in bytes.
    pub local_bytes: u32,
    /// Parameter layout.
    pub params: Vec<ParamDesc>,
    /// The instruction stream.
    pub code: Vec<Instruction>,
    /// Per-instruction Kepler control notation; `None` for Fermi kernels.
    /// When present, its length equals `code.len()`.
    pub ctl: Option<Vec<CtlInfo>>,
}

impl Kernel {
    /// Create an empty kernel with the given name.
    pub fn new(name: impl Into<String>) -> Kernel {
        Kernel {
            name: name.into(),
            num_regs: 0,
            shared_bytes: 0,
            local_bytes: 0,
            params: Vec::new(),
            code: Vec::new(),
            ctl: None,
        }
    }

    /// Append a parameter named `name`, returning its constant-bank offset.
    pub fn add_param(&mut self, name: impl Into<String>) -> u32 {
        let offset = PARAM_BASE + 4 * self.params.len() as u32;
        self.params.push(ParamDesc {
            name: name.into(),
            offset,
        });
        offset
    }

    /// The control info for instruction `i` ([`CtlInfo::NONE`] when the
    /// kernel carries no notation).
    pub fn ctl_for(&self, i: usize) -> CtlInfo {
        self.ctl
            .as_ref()
            .and_then(|v| v.get(i).copied())
            .unwrap_or(CtlInfo::NONE)
    }

    /// Count instructions whose mnemonic starts with `prefix`
    /// (e.g. `"FFMA"`, `"LDS"`). Convenience for instruction-mix reports.
    pub fn count_mnemonic(&self, prefix: &str) -> usize {
        self.code
            .iter()
            .filter(|i| i.op.mnemonic().starts_with(prefix))
            .count()
    }
}

impl fmt::Display for Kernel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, ".kernel {}", self.name)?;
        writeln!(f, ".regs {}", self.num_regs)?;
        if self.shared_bytes > 0 {
            writeln!(f, ".shared {}", self.shared_bytes)?;
        }
        if self.local_bytes > 0 {
            writeln!(f, ".local {}", self.local_bytes)?;
        }
        for p in &self.params {
            writeln!(f, ".param {}", p.name)?;
        }
        for (i, inst) in self.code.iter().enumerate() {
            let ctl = self.ctl_for(i);
            if self.ctl.is_some() && ctl != CtlInfo::NONE {
                writeln!(f, ".ctl {:#04x}", ctl.to_byte())?;
            }
            writeln!(f, "/*{i:04x}*/ {inst}")?;
        }
        Ok(())
    }
}

/// A module: one or more kernels targeting a GPU generation.
#[derive(Debug, Clone, PartialEq)]
pub struct Module {
    /// Target generation. Kepler modules carry control notation.
    pub generation: Generation,
    /// The kernels.
    pub kernels: Vec<Kernel>,
}

impl Module {
    /// An empty module for a generation.
    pub fn new(generation: Generation) -> Module {
        Module {
            generation,
            kernels: Vec::new(),
        }
    }

    /// Find a kernel by name.
    pub fn kernel(&self, name: &str) -> Option<&Kernel> {
        self.kernels.iter().find(|k| k.name == name)
    }

    /// Serialize to the binary container format.
    ///
    /// Layout (all integers little-endian):
    ///
    /// ```text
    /// magic  "PKPF"          4 bytes
    /// version u32            currently 1
    /// generation u8          0 = GT200, 1 = Fermi, 2 = Kepler
    /// kernel count u32
    /// per kernel:
    ///   name len u32, name bytes (UTF-8)
    ///   num_regs u32, shared_bytes u32, local_bytes u32
    ///   param count u32, then per param: name len u32 + bytes, offset u32
    ///   inst count u32, then inst count * 8 bytes of encoded instructions
    ///   ctl flag u8; if 1: ceil(n/7) control words of 8 bytes, interleaved
    ///     *before* each group of 7 instructions is how real Kepler lays
    ///     them out — here they are stored after the code section, which
    ///     keeps decoding single-pass while preserving the word format
    /// ```
    ///
    /// # Errors
    ///
    /// Propagates encoding failures (e.g. out-of-range immediates).
    pub fn to_bytes(&self) -> Result<Vec<u8>, SassError> {
        let mut out = Vec::new();
        out.extend_from_slice(b"PKPF");
        out.extend_from_slice(&1u32.to_le_bytes());
        out.push(match self.generation {
            Generation::Gt200 => 0,
            Generation::Fermi => 1,
            Generation::Kepler => 2,
        });
        out.extend_from_slice(&(self.kernels.len() as u32).to_le_bytes());
        for k in &self.kernels {
            write_str(&mut out, &k.name);
            out.extend_from_slice(&k.num_regs.to_le_bytes());
            out.extend_from_slice(&k.shared_bytes.to_le_bytes());
            out.extend_from_slice(&k.local_bytes.to_le_bytes());
            out.extend_from_slice(&(k.params.len() as u32).to_le_bytes());
            for p in &k.params {
                write_str(&mut out, &p.name);
                out.extend_from_slice(&p.offset.to_le_bytes());
            }
            out.extend_from_slice(&(k.code.len() as u32).to_le_bytes());
            for w in encode_stream(&k.code)? {
                out.extend_from_slice(&w.to_le_bytes());
            }
            match &k.ctl {
                Some(fields) => {
                    out.push(1);
                    for w in pack_stream(fields) {
                        out.extend_from_slice(&w.0.to_le_bytes());
                    }
                }
                None => out.push(0),
            }
        }
        Ok(out)
    }

    /// Deserialize from the binary container format.
    ///
    /// # Errors
    ///
    /// Returns [`SassError::Container`] or [`SassError::Decode`] on
    /// malformed input.
    pub fn from_bytes(bytes: &[u8]) -> Result<Module, SassError> {
        let mut r = Reader { bytes, pos: 0 };
        if r.take(4)? != b"PKPF" {
            return Err(SassError::Container {
                message: "bad magic".into(),
            });
        }
        let version = r.u32()?;
        if version != 1 {
            return Err(SassError::Container {
                message: format!("unsupported version {version}"),
            });
        }
        let generation = match r.u8()? {
            0 => Generation::Gt200,
            1 => Generation::Fermi,
            2 => Generation::Kepler,
            g => {
                return Err(SassError::Container {
                    message: format!("unknown generation tag {g}"),
                })
            }
        };
        let nk = r.u32()? as usize;
        let mut kernels = Vec::with_capacity(nk);
        for _ in 0..nk {
            let name = r.string()?;
            let num_regs = r.u32()?;
            let shared_bytes = r.u32()?;
            let local_bytes = r.u32()?;
            let np = r.u32()? as usize;
            let mut params = Vec::with_capacity(np);
            for _ in 0..np {
                let pname = r.string()?;
                let offset = r.u32()?;
                params.push(ParamDesc {
                    name: pname,
                    offset,
                });
            }
            let ni = r.u32()? as usize;
            let mut words = Vec::with_capacity(ni);
            for _ in 0..ni {
                words.push(r.u64()?);
            }
            let code = decode_stream(&words)?;
            let ctl = if r.u8()? == 1 {
                let nw = ni.div_ceil(crate::ctl::GROUP);
                let mut cws = Vec::with_capacity(nw);
                for _ in 0..nw {
                    cws.push(CtlWord(r.u64()?));
                }
                Some(unpack_stream(&cws, ni)?)
            } else {
                None
            };
            kernels.push(Kernel {
                name,
                num_regs,
                shared_bytes,
                local_bytes,
                params,
                code,
                ctl,
            });
        }
        Ok(Module {
            generation,
            kernels,
        })
    }
}

impl fmt::Display for Module {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "// target: {}", self.generation)?;
        for k in &self.kernels {
            writeln!(f, "{k}")?;
        }
        Ok(())
    }
}

fn write_str(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], SassError> {
        if self.pos + n > self.bytes.len() {
            return Err(SassError::Container {
                message: format!("truncated at byte {}", self.pos),
            });
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, SassError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, SassError> {
        let mut b = [0u8; 4];
        b.copy_from_slice(self.take(4)?);
        Ok(u32::from_le_bytes(b))
    }

    fn u64(&mut self) -> Result<u64, SassError> {
        let mut b = [0u8; 8];
        b.copy_from_slice(self.take(8)?);
        Ok(u64::from_le_bytes(b))
    }

    fn string(&mut self) -> Result<String, SassError> {
        let n = self.u32()? as usize;
        if n > 1 << 20 {
            return Err(SassError::Container {
                message: format!("string length {n} is implausible"),
            });
        }
        String::from_utf8(self.take(n)?.to_vec()).map_err(|_| SassError::Container {
            message: "invalid UTF-8 in string".into(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Op, Operand, Reg};

    fn sample_kernel() -> Kernel {
        let mut k = Kernel::new("test");
        k.num_regs = 8;
        k.shared_bytes = 1024;
        k.add_param("n");
        k.add_param("ptr");
        k.code = vec![
            Instruction::new(Op::Mov32i {
                dst: Reg::r(0),
                imm: 0x3f80_0000,
            }),
            Instruction::new(Op::Ffma {
                dst: Reg::r(1),
                a: Reg::r(0),
                b: Operand::reg(0),
                c: Reg::r(1),
            }),
            Instruction::new(Op::Exit),
        ];
        k
    }

    #[test]
    fn param_offsets_follow_abi() {
        let k = sample_kernel();
        assert_eq!(k.params[0].offset, PARAM_BASE);
        assert_eq!(k.params[1].offset, PARAM_BASE + 4);
    }

    #[test]
    fn binary_round_trip_fermi() {
        let mut m = Module::new(Generation::Fermi);
        m.kernels.push(sample_kernel());
        let bytes = m.to_bytes().unwrap();
        let back = Module::from_bytes(&bytes).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn binary_round_trip_kepler_with_ctl() {
        let mut m = Module::new(Generation::Kepler);
        let mut k = sample_kernel();
        k.ctl = Some(vec![CtlInfo::stall(1), CtlInfo::stall(4), CtlInfo::NONE]);
        m.kernels.push(k);
        let bytes = m.to_bytes().unwrap();
        let back = Module::from_bytes(&bytes).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn malformed_container_is_rejected() {
        assert!(Module::from_bytes(b"NOPE").is_err());
        let mut m = Module::new(Generation::Fermi);
        m.kernels.push(sample_kernel());
        let mut bytes = m.to_bytes().unwrap();
        bytes.truncate(bytes.len() - 3);
        assert!(Module::from_bytes(&bytes).is_err());
    }

    #[test]
    fn kernel_lookup_and_counts() {
        let mut m = Module::new(Generation::Fermi);
        m.kernels.push(sample_kernel());
        assert!(m.kernel("test").is_some());
        assert!(m.kernel("missing").is_none());
        assert_eq!(m.kernel("test").unwrap().count_mnemonic("FFMA"), 1);
    }

    #[test]
    fn display_contains_directives() {
        let k = sample_kernel();
        let text = k.to_string();
        assert!(text.contains(".kernel test"));
        assert!(text.contains(".regs 8"));
        assert!(text.contains(".shared 1024"));
        assert!(text.contains("FFMA R1, R0, R0, R1;"));
    }
}
