//! Automatic bank-conflict removal on existing binaries (the "simple
//! solution" the paper proposes in Sections 5.4-5.5 for optimizers and
//! auto-tuning tools).
//!
//! The transformation is a *bijective register renaming*: every physical
//! register of the kernel is renamed by one global permutation. A
//! permutation preserves every data dependence (it is applied to
//! definitions and uses alike), so the rewritten kernel is semantically
//! identical — only the register *indices*, and therefore the Kepler bank
//! assignment, change. The permutation is chosen by the same backtracking
//! solver used for the hand allocation:
//!
//! * every FFMA's distinct source registers should land on distinct banks;
//! * registers accessed by wide loads/stores (`.64`/`.128`) must stay
//!   consecutive and aligned;
//! * `RZ` and unused registers are untouched.

use std::collections::HashMap;

use peakperf_sass::{Instruction, Kernel, MemWidth, Op, Operand, Reg};

use crate::{analyze_ffma_conflicts, solve, AllocProblem, ConflictReport, RegAllocError, VReg};

/// Outcome of [`optimize_banks`].
#[derive(Debug, Clone)]
pub struct RewriteOutcome {
    /// The rewritten kernel.
    pub kernel: Kernel,
    /// FFMA conflict census before the rewrite.
    pub before: ConflictReport,
    /// FFMA conflict census after the rewrite.
    pub after: ConflictReport,
    /// The register permutation that was applied (old index → new).
    pub mapping: HashMap<Reg, Reg>,
}

fn remap(map: &HashMap<Reg, Reg>, r: Reg) -> Reg {
    if r.is_rz() {
        r
    } else {
        *map.get(&r).unwrap_or(&r)
    }
}

fn remap_operand(map: &HashMap<Reg, Reg>, o: Operand) -> Operand {
    match o {
        Operand::Reg(r) => Operand::Reg(remap(map, r)),
        other => other,
    }
}

/// Apply a register mapping to every instruction of a code stream.
///
/// Registers not present in the map are left unchanged; `RZ` is never
/// renamed. Wide accesses are renamed through their base register (the
/// caller must supply a mapping that keeps wide groups consecutive — as
/// [`optimize_banks`] does).
pub fn apply_mapping(code: &[Instruction], map: &HashMap<Reg, Reg>) -> Vec<Instruction> {
    code.iter()
        .map(|inst| {
            let op = match inst.op {
                Op::Nop | Op::Exit | Op::Bar | Op::Bra { .. } => inst.op,
                Op::Mov { dst, src } => Op::Mov {
                    dst: remap(map, dst),
                    src: remap_operand(map, src),
                },
                Op::Mov32i { dst, imm } => Op::Mov32i {
                    dst: remap(map, dst),
                    imm,
                },
                Op::S2r { dst, sr } => Op::S2r {
                    dst: remap(map, dst),
                    sr,
                },
                Op::Fadd { dst, a, b } => Op::Fadd {
                    dst: remap(map, dst),
                    a: remap(map, a),
                    b: remap_operand(map, b),
                },
                Op::Fmul { dst, a, b } => Op::Fmul {
                    dst: remap(map, dst),
                    a: remap(map, a),
                    b: remap_operand(map, b),
                },
                Op::Ffma { dst, a, b, c } => Op::Ffma {
                    dst: remap(map, dst),
                    a: remap(map, a),
                    b: remap_operand(map, b),
                    c: remap(map, c),
                },
                Op::Iadd { dst, a, b } => Op::Iadd {
                    dst: remap(map, dst),
                    a: remap(map, a),
                    b: remap_operand(map, b),
                },
                Op::Imul { dst, a, b } => Op::Imul {
                    dst: remap(map, dst),
                    a: remap(map, a),
                    b: remap_operand(map, b),
                },
                Op::Imad { dst, a, b, c } => Op::Imad {
                    dst: remap(map, dst),
                    a: remap(map, a),
                    b: remap_operand(map, b),
                    c: remap(map, c),
                },
                Op::Iscadd { dst, a, b, shift } => Op::Iscadd {
                    dst: remap(map, dst),
                    a: remap(map, a),
                    b: remap_operand(map, b),
                    shift,
                },
                Op::Shl { dst, a, b } => Op::Shl {
                    dst: remap(map, dst),
                    a: remap(map, a),
                    b: remap_operand(map, b),
                },
                Op::Shr { dst, a, b } => Op::Shr {
                    dst: remap(map, dst),
                    a: remap(map, a),
                    b: remap_operand(map, b),
                },
                Op::Lop { op, dst, a, b } => Op::Lop {
                    op,
                    dst: remap(map, dst),
                    a: remap(map, a),
                    b: remap_operand(map, b),
                },
                Op::Isetp { p, cmp, a, b } => Op::Isetp {
                    p,
                    cmp,
                    a: remap(map, a),
                    b: remap_operand(map, b),
                },
                Op::Ld {
                    space,
                    width,
                    dst,
                    addr,
                    offset,
                } => Op::Ld {
                    space,
                    width,
                    dst: remap(map, dst),
                    addr: remap(map, addr),
                    offset,
                },
                Op::St {
                    space,
                    width,
                    src,
                    addr,
                    offset,
                } => Op::St {
                    space,
                    width,
                    src: remap(map, src),
                    addr: remap(map, addr),
                    offset,
                },
                Op::Ldc { dst, bank, offset } => Op::Ldc {
                    dst: remap(map, dst),
                    bank,
                    offset,
                },
            };
            Instruction {
                pred: inst.pred,
                pred_neg: inst.pred_neg,
                op,
            }
        })
        .collect()
}

/// Collect the wide-access groups of a kernel: each `.64`/`.128` load or
/// store pins `width.words()` consecutive registers.
fn wide_groups(code: &[Instruction]) -> Vec<Vec<Reg>> {
    let mut groups: Vec<Vec<Reg>> = Vec::new();
    let mut push = |base: Reg, width: MemWidth| {
        if width == MemWidth::B32 || base.is_rz() {
            return;
        }
        let group: Vec<Reg> = (0..width.words() as u8).map(|i| base.offset(i)).collect();
        if !groups.contains(&group) {
            groups.push(group);
        }
    };
    for inst in code {
        match inst.op {
            Op::Ld { width, dst, .. } => push(dst, width),
            Op::St { width, src, .. } => push(src, width),
            _ => {}
        }
    }
    groups
}

/// Rename the registers of `kernel` so that its main-loop FFMAs become
/// bank-conflict-free (best effort), preserving semantics exactly.
///
/// This is the automatic counterpart of the paper's hand allocation: run
/// it on an nvcc-like binary and the ~30 % conflicted FFMAs of Figure 8
/// disappear.
///
/// # Errors
///
/// Returns [`RegAllocError::Unsatisfiable`] when no permutation satisfies
/// all FFMA groups together with the wide-access alignment pins. (This can
/// happen for kernels whose wide groups overlap FFMA operands in
/// incompatible ways; callers may then fall back to the original kernel.)
pub fn optimize_banks(kernel: &Kernel) -> Result<RewriteOutcome, RegAllocError> {
    let before = analyze_ffma_conflicts(&kernel.code);

    // Virtual register per physical register in use.
    let mut used: Vec<Reg> = Vec::new();
    for inst in &kernel.code {
        for r in inst.op.def_regs().into_iter().chain(inst.op.use_regs()) {
            if !r.is_rz() && !used.contains(&r) {
                used.push(r);
            }
        }
    }
    used.sort_unstable();
    let index_of: HashMap<Reg, usize> = used.iter().enumerate().map(|(i, &r)| (r, i)).collect();

    let mut problem = AllocProblem::new(used.len());
    for group in wide_groups(&kernel.code) {
        let vgroup: Vec<VReg> = group
            .iter()
            .filter_map(|r| index_of.get(r).map(|&i| VReg(i)))
            .collect();
        if vgroup.len() == group.len() {
            problem.require_wide(&vgroup);
        }
    }
    let mut seen_triples: Vec<Vec<VReg>> = Vec::new();
    for inst in &kernel.code {
        if let Op::Ffma { a, b, c, .. } = inst.op {
            let mut distinct: Vec<Reg> = Vec::new();
            for r in [Some(a), b.as_reg(), Some(c)].into_iter().flatten() {
                if !r.is_rz() && !distinct.contains(&r) {
                    distinct.push(r);
                }
            }
            if distinct.len() < 2 {
                continue;
            }
            let vgroup: Vec<VReg> = distinct.iter().map(|r| VReg(index_of[r])).collect();
            if !seen_triples.contains(&vgroup) {
                seen_triples.push(vgroup.clone());
                problem.require_distinct_banks(&vgroup);
            }
        }
    }

    let assignment = solve(&problem)?;
    let mapping: HashMap<Reg, Reg> = used
        .iter()
        .enumerate()
        .map(|(i, &r)| (r, assignment[&VReg(i)]))
        .collect();

    let mut rewritten = kernel.clone();
    rewritten.code = apply_mapping(&kernel.code, &mapping);
    rewritten.num_regs = rewritten
        .code
        .iter()
        .flat_map(|i| i.op.def_regs().into_iter().chain(i.op.use_regs()))
        .map(|r| u32::from(r.index()) + 1)
        .max()
        .unwrap_or(0)
        .max(kernel.num_regs.min(63));
    let after = analyze_ffma_conflicts(&rewritten.code);
    Ok(RewriteOutcome {
        kernel: rewritten,
        before,
        after,
        mapping,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use peakperf_sass::{MemSpace, Operand};

    fn ffma(dst: u8, a: u8, b: u8, c: u8) -> Instruction {
        Instruction::new(Op::Ffma {
            dst: Reg::r(dst),
            a: Reg::r(a),
            b: Operand::reg(b),
            c: Reg::r(c),
        })
    }

    #[test]
    fn conflicted_triples_are_fixed() {
        let mut kernel = Kernel::new("t");
        // R1, R3, R9 all on odd0 — the worst Table 2 case.
        kernel.code = vec![
            ffma(0, 1, 3, 9),
            ffma(2, 1, 3, 5),
            Instruction::new(Op::Exit),
        ];
        kernel.num_regs = 10;
        let out = optimize_banks(&kernel).unwrap();
        assert!(out.before.three_way == 1 && out.before.two_way == 1);
        assert_eq!(out.after.free, 2);
        assert_eq!(out.after.two_way + out.after.three_way, 0);
    }

    #[test]
    fn renaming_preserves_dependences() {
        let mut kernel = Kernel::new("t");
        kernel.code = vec![
            Instruction::new(Op::Mov32i {
                dst: Reg::r(1),
                imm: 7,
            }),
            Instruction::new(Op::Iadd {
                dst: Reg::r(3),
                a: Reg::r(1),
                b: Operand::Imm(1),
            }),
            ffma(5, 1, 3, 9),
            Instruction::new(Op::Exit),
        ];
        kernel.num_regs = 10;
        let out = optimize_banks(&kernel).unwrap();
        // The def-use chain Mov32i -> Iadd -> Ffma must still reference the
        // same renamed registers.
        let r1 = out.mapping[&Reg::r(1)];
        let r3 = out.mapping[&Reg::r(3)];
        match out.kernel.code[0].op {
            Op::Mov32i { dst, .. } => assert_eq!(dst, r1),
            ref other => panic!("unexpected {other:?}"),
        }
        match out.kernel.code[1].op {
            Op::Iadd { dst, a, .. } => {
                assert_eq!(dst, r3);
                assert_eq!(a, r1);
            }
            ref other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn wide_groups_stay_aligned() {
        let mut kernel = Kernel::new("t");
        kernel.code = vec![
            Instruction::new(Op::Ld {
                space: MemSpace::Shared,
                width: MemWidth::B64,
                dst: Reg::r(6),
                addr: Reg::r(20),
                offset: 0,
            }),
            ffma(0, 6, 7, 9),
            Instruction::new(Op::Exit),
        ];
        kernel.num_regs = 21;
        kernel.shared_bytes = 64;
        let out = optimize_banks(&kernel).unwrap();
        let base = out.mapping[&Reg::r(6)];
        let hi = out.mapping[&Reg::r(7)];
        assert_eq!(base.index() % 2, 0);
        assert_eq!(hi.index(), base.index() + 1);
        match out.kernel.code[0].op {
            Op::Ld { dst, .. } => assert_eq!(dst, base),
            ref other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn mapping_is_injective() {
        let mut kernel = Kernel::new("t");
        kernel.code = (0..12u8)
            .map(|i| ffma(i, (i + 1) % 12, (i + 2) % 12, (i + 3) % 12))
            .chain(std::iter::once(Instruction::new(Op::Exit)))
            .collect();
        kernel.num_regs = 12;
        let out = optimize_banks(&kernel).unwrap();
        let mut targets: Vec<u8> = out.mapping.values().map(|r| r.index()).collect();
        targets.sort_unstable();
        targets.dedup();
        assert_eq!(targets.len(), out.mapping.len());
    }
}
