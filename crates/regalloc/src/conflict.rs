//! Static register-bank conflict analysis (Figure 8).

use std::fmt;

use peakperf_sass::{Instruction, Op, Operand, Reg};

/// Conflict degree of one FFMA: the maximum number of *distinct* source
/// registers that share a register bank (1 = conflict-free).
///
/// `RZ` is materialized by the operand collector and never conflicts;
/// repeated uses of the same register read one bank port once.
pub fn ffma_conflict_ways(a: Reg, b: Option<Reg>, c: Reg) -> u32 {
    let mut distinct: Vec<Reg> = Vec::with_capacity(3);
    for r in [Some(a), b, Some(c)].into_iter().flatten() {
        if !r.is_rz() && !distinct.contains(&r) {
            distinct.push(r);
        }
    }
    let mut per_bank = [0u32; 4];
    for r in &distinct {
        per_bank[r.bank().index()] += 1;
    }
    per_bank.iter().copied().max().unwrap_or(1).max(1)
}

/// Per-kernel conflict census of FFMA instructions, as plotted in Figure 8.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ConflictReport {
    /// FFMA instructions examined.
    pub total: u64,
    /// FFMAs with no bank conflict.
    pub free: u64,
    /// FFMAs with a 2-way conflict.
    pub two_way: u64,
    /// FFMAs with a 3-way conflict.
    pub three_way: u64,
}

impl ConflictReport {
    /// Fraction of conflict-free FFMAs (0..=1).
    pub fn free_fraction(&self) -> f64 {
        self.fraction(self.free)
    }

    /// Fraction of 2-way-conflicted FFMAs (0..=1).
    pub fn two_way_fraction(&self) -> f64 {
        self.fraction(self.two_way)
    }

    /// Fraction of 3-way-conflicted FFMAs (0..=1).
    pub fn three_way_fraction(&self) -> f64 {
        self.fraction(self.three_way)
    }

    fn fraction(&self, n: u64) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            n as f64 / self.total as f64
        }
    }
}

impl fmt::Display for ConflictReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} FFMA: {:.1}% conflict-free, {:.1}% 2-way, {:.1}% 3-way",
            self.total,
            100.0 * self.free_fraction(),
            100.0 * self.two_way_fraction(),
            100.0 * self.three_way_fraction()
        )
    }
}

/// Analyze the FFMA register-bank conflicts of an instruction stream
/// (static census over the code, as in Figure 8; the timing simulator
/// independently charges the dynamic cost).
pub fn analyze_ffma_conflicts(code: &[Instruction]) -> ConflictReport {
    let mut report = ConflictReport::default();
    for inst in code {
        if let Op::Ffma { a, b, c, .. } = inst.op {
            let b_reg = match b {
                Operand::Reg(r) => Some(r),
                _ => None,
            };
            report.total += 1;
            match ffma_conflict_ways(a, b_reg, c) {
                1 => report.free += 1,
                2 => report.two_way += 1,
                _ => report.three_way += 1,
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ffma(a: u8, b: u8, c: u8) -> Instruction {
        Instruction::new(Op::Ffma {
            dst: Reg::r(0),
            a: Reg::r(a),
            b: Operand::reg(b),
            c: Reg::r(c),
        })
    }

    #[test]
    fn ways_match_table2_examples() {
        // FFMA R0, R1, R4, R5: O0, E1, O1 -> conflict-free.
        assert_eq!(ffma_conflict_ways(Reg::r(1), Some(Reg::r(4)), Reg::r(5)), 1);
        // FFMA R0, R1, R3, R5: R1 and R3 on odd0 -> 2-way.
        assert_eq!(ffma_conflict_ways(Reg::r(1), Some(Reg::r(3)), Reg::r(5)), 2);
        // FFMA R0, R1, R3, R9: all odd0 -> 3-way.
        assert_eq!(ffma_conflict_ways(Reg::r(1), Some(Reg::r(3)), Reg::r(9)), 3);
    }

    #[test]
    fn repeated_registers_do_not_conflict() {
        // FFMA R0, R1, R4, R0 with repeated R1: only distinct regs count.
        assert_eq!(ffma_conflict_ways(Reg::r(1), Some(Reg::r(1)), Reg::r(5)), 1);
        assert_eq!(ffma_conflict_ways(Reg::r(1), None, Reg::r(1)), 1);
    }

    #[test]
    fn rz_never_conflicts() {
        assert_eq!(ffma_conflict_ways(Reg::RZ, Some(Reg::RZ), Reg::RZ), 1);
        assert_eq!(ffma_conflict_ways(Reg::r(1), Some(Reg::RZ), Reg::r(9)), 2);
    }

    #[test]
    fn census_counts() {
        let code = vec![
            ffma(1, 4, 5), // free
            ffma(1, 3, 5), // 2-way
            ffma(1, 3, 9), // 3-way
            ffma(2, 4, 7), // free
            Instruction::new(Op::Exit),
        ];
        let r = analyze_ffma_conflicts(&code);
        assert_eq!(r.total, 4);
        assert_eq!(r.free, 2);
        assert_eq!(r.two_way, 1);
        assert_eq!(r.three_way, 1);
        assert!((r.two_way_fraction() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn const_operand_ffma_uses_two_regs() {
        let inst = Instruction::new(Op::Ffma {
            dst: Reg::r(0),
            a: Reg::r(1),
            b: Operand::Const {
                bank: 0,
                offset: 0x20,
            },
            c: Reg::r(9),
        });
        let r = analyze_ffma_conflicts(&[inst]);
        // R1 and R9 share odd0 -> 2-way even with a const operand.
        assert_eq!(r.two_way, 1);
    }

    #[test]
    fn report_display() {
        let r = ConflictReport {
            total: 10,
            free: 7,
            two_way: 2,
            three_way: 1,
        };
        let s = r.to_string();
        assert!(s.contains("70.0%"));
        assert!(s.contains("20.0%"));
    }
}
