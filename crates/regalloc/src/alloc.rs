//! A backtracking register allocator with bank constraints.

use std::collections::HashMap;
use std::fmt;

use peakperf_sass::Reg;

/// A virtual register: an index into the allocation problem.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VReg(pub usize);

/// Errors from the allocator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegAllocError {
    /// No assignment satisfies the constraints within the register budget.
    Unsatisfiable,
    /// The problem is malformed (unknown virtual register, duplicate pin,
    /// overlapping wide groups, ...).
    Malformed {
        /// Description of the problem.
        message: String,
    },
}

impl fmt::Display for RegAllocError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegAllocError::Unsatisfiable => {
                f.write_str("no register assignment satisfies the constraints")
            }
            RegAllocError::Malformed { message } => write!(f, "malformed problem: {message}"),
        }
    }
}

impl std::error::Error for RegAllocError {}

/// A bank-aware allocation problem.
///
/// Virtual registers `VReg(0..n)` are mapped to distinct physical registers
/// `R0..=R62` such that:
///
/// * every *distinct-bank group* (typically the three sources of an FFMA)
///   has its members on pairwise different banks;
/// * every *wide group* occupies consecutive physical registers starting at
///   a multiple of the group length (the `LDS.64`/`LDS.128` alignment
///   rule);
/// * *pins* are honored exactly;
/// * only registers in `pool` are used.
#[derive(Debug, Clone, Default)]
pub struct AllocProblem {
    n: usize,
    distinct_groups: Vec<Vec<VReg>>,
    wide_groups: Vec<Vec<VReg>>,
    pins: Vec<(VReg, Reg)>,
    pool: Vec<Reg>,
}

impl AllocProblem {
    /// A problem over `n` virtual registers with the default pool
    /// (`R0..=R62`).
    pub fn new(n: usize) -> AllocProblem {
        AllocProblem {
            n,
            distinct_groups: Vec::new(),
            wide_groups: Vec::new(),
            pins: Vec::new(),
            pool: (0..=Reg::MAX_INDEX).map(Reg::r).collect(),
        }
    }

    /// Number of virtual registers.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the problem has no virtual registers.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Restrict the physical pool.
    pub fn set_pool(&mut self, pool: Vec<Reg>) -> &mut Self {
        self.pool = pool;
        self
    }

    /// Require the members of `group` to sit on pairwise distinct banks
    /// (e.g. the three source registers of an FFMA).
    pub fn require_distinct_banks(&mut self, group: &[VReg]) -> &mut Self {
        self.distinct_groups.push(group.to_vec());
        self
    }

    /// Require `group` to occupy consecutive physical registers aligned to
    /// the group length (2 for `LDS.64`, 4 for `LDS.128`).
    pub fn require_wide(&mut self, group: &[VReg]) -> &mut Self {
        self.wide_groups.push(group.to_vec());
        self
    }

    /// Pin a virtual register to a physical register.
    pub fn pin(&mut self, v: VReg, r: Reg) -> &mut Self {
        self.pins.push((v, r));
        self
    }

    fn check(&self) -> Result<(), RegAllocError> {
        let mut seen_pin = HashMap::new();
        for (v, r) in &self.pins {
            if v.0 >= self.n {
                return Err(RegAllocError::Malformed {
                    message: format!("pin references unknown v{}", v.0),
                });
            }
            if r.is_rz() {
                return Err(RegAllocError::Malformed {
                    message: "cannot pin to RZ".to_owned(),
                });
            }
            if let Some(prev) = seen_pin.insert(*v, *r) {
                if prev != *r {
                    return Err(RegAllocError::Malformed {
                        message: format!("v{} pinned twice", v.0),
                    });
                }
            }
        }
        for g in self.distinct_groups.iter().chain(self.wide_groups.iter()) {
            for v in g {
                if v.0 >= self.n {
                    return Err(RegAllocError::Malformed {
                        message: format!("group references unknown v{}", v.0),
                    });
                }
            }
        }
        for g in &self.distinct_groups {
            if g.len() > 4 {
                return Err(RegAllocError::Malformed {
                    message: "distinct-bank group larger than the 4 banks".to_owned(),
                });
            }
        }
        for g in &self.wide_groups {
            if !matches!(g.len(), 2 | 4) {
                return Err(RegAllocError::Malformed {
                    message: "wide group must have 2 or 4 members".to_owned(),
                });
            }
        }
        Ok(())
    }
}

/// Solve an allocation problem by backtracking with most-constrained-first
/// ordering.
///
/// # Errors
///
/// [`RegAllocError::Malformed`] for inconsistent problems,
/// [`RegAllocError::Unsatisfiable`] when no assignment exists.
pub fn solve(problem: &AllocProblem) -> Result<HashMap<VReg, Reg>, RegAllocError> {
    problem.check()?;
    let n = problem.n;

    // Wide groups assign several vregs at once: treat each wide group as a
    // unit, remaining vregs individually.
    let mut in_wide = vec![false; n];
    for g in &problem.wide_groups {
        for v in g {
            if in_wide[v.0] {
                return Err(RegAllocError::Malformed {
                    message: format!("v{} in two wide groups", v.0),
                });
            }
            in_wide[v.0] = true;
        }
    }

    // Constraint index: for each vreg, the distinct-bank groups it is in.
    let mut groups_of: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (gi, g) in problem.distinct_groups.iter().enumerate() {
        for v in g {
            groups_of[v.0].push(gi);
        }
    }

    let pool_set: Vec<Reg> = problem.pool.clone();
    let mut assignment: HashMap<VReg, Reg> = HashMap::new();
    let mut used: Vec<bool> = vec![false; 64];

    // Apply pins.
    for (v, r) in &problem.pins {
        if used[r.index() as usize] {
            return Err(RegAllocError::Malformed {
                message: format!("register {r} pinned twice"),
            });
        }
        assignment.insert(*v, *r);
        used[r.index() as usize] = true;
    }

    // Units to assign: wide groups first (most constrained), then single
    // vregs ordered by how many distinct-bank groups they participate in.
    enum Unit {
        Wide(usize),
        Single(VReg),
    }
    let mut units: Vec<Unit> = Vec::new();
    for gi in 0..problem.wide_groups.len() {
        units.push(Unit::Wide(gi));
    }
    let mut singles: Vec<VReg> = (0..n)
        .map(VReg)
        .filter(|v| !in_wide[v.0] && !assignment.contains_key(v))
        .collect();
    singles.sort_by_key(|v| std::cmp::Reverse(groups_of[v.0].len()));
    units.extend(singles.into_iter().map(Unit::Single));

    fn banks_ok(
        problem: &AllocProblem,
        groups_of: &[Vec<usize>],
        assignment: &HashMap<VReg, Reg>,
        v: VReg,
        r: Reg,
    ) -> bool {
        for &gi in &groups_of[v.0] {
            for other in &problem.distinct_groups[gi] {
                if *other == v {
                    continue;
                }
                if let Some(o) = assignment.get(other) {
                    if o.bank() == r.bank() {
                        return false;
                    }
                }
            }
        }
        true
    }

    fn backtrack(
        problem: &AllocProblem,
        groups_of: &[Vec<usize>],
        pool: &[Reg],
        units: &[Unit],
        idx: usize,
        assignment: &mut HashMap<VReg, Reg>,
        used: &mut Vec<bool>,
    ) -> bool {
        let Some(unit) = units.get(idx) else {
            return true;
        };
        match unit {
            Unit::Single(v) => {
                if assignment.contains_key(v) {
                    return backtrack(problem, groups_of, pool, units, idx + 1, assignment, used);
                }
                for &r in pool {
                    if used[r.index() as usize] || r.is_rz() {
                        continue;
                    }
                    if !banks_ok(problem, groups_of, assignment, *v, r) {
                        continue;
                    }
                    assignment.insert(*v, r);
                    used[r.index() as usize] = true;
                    if backtrack(problem, groups_of, pool, units, idx + 1, assignment, used) {
                        return true;
                    }
                    assignment.remove(v);
                    used[r.index() as usize] = false;
                }
                false
            }
            Unit::Wide(gi) => {
                let group = &problem.wide_groups[*gi];
                let len = group.len() as u8;
                // If any member is pinned, the whole placement is forced.
                let forced_base = group
                    .iter()
                    .enumerate()
                    .find_map(|(i, v)| assignment.get(v).map(|r| r.index().wrapping_sub(i as u8)));
                let candidates: Vec<u8> = match forced_base {
                    Some(b) => vec![b],
                    None => (0..=Reg::MAX_INDEX)
                        .filter(|b| b % len == 0 && b + len - 1 <= Reg::MAX_INDEX)
                        .collect(),
                };
                'base: for base in candidates {
                    if base % len != 0 || base + len - 1 > Reg::MAX_INDEX {
                        continue;
                    }
                    let regs: Vec<Reg> = (0..len).map(|i| Reg::r(base + i)).collect();
                    // All members must be in the pool and free (unless
                    // already assigned to exactly this slot).
                    for (i, v) in group.iter().enumerate() {
                        let r = regs[i];
                        match assignment.get(v) {
                            Some(cur) if *cur == r => {}
                            Some(_) => continue 'base,
                            None => {
                                if used[r.index() as usize]
                                    || !pool.contains(&r)
                                    || !banks_ok(problem, groups_of, assignment, *v, r)
                                {
                                    continue 'base;
                                }
                            }
                        }
                    }
                    let mut placed = Vec::new();
                    for (i, v) in group.iter().enumerate() {
                        if !assignment.contains_key(v) {
                            assignment.insert(*v, regs[i]);
                            used[regs[i].index() as usize] = true;
                            placed.push((*v, regs[i]));
                        }
                    }
                    if backtrack(problem, groups_of, pool, units, idx + 1, assignment, used) {
                        return true;
                    }
                    for (v, r) in placed {
                        assignment.remove(&v);
                        used[r.index() as usize] = false;
                    }
                }
                false
            }
        }
    }

    if backtrack(
        problem,
        &groups_of,
        &pool_set,
        &units,
        0,
        &mut assignment,
        &mut used,
    ) {
        Ok(assignment)
    } else {
        Err(RegAllocError::Unsatisfiable)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use peakperf_arch::RegisterBank;

    #[test]
    fn simple_distinct_banks() {
        let mut p = AllocProblem::new(3);
        p.require_distinct_banks(&[VReg(0), VReg(1), VReg(2)]);
        let a = solve(&p).unwrap();
        let banks: Vec<RegisterBank> = (0..3).map(|i| a[&VReg(i)].bank()).collect();
        assert_ne!(banks[0], banks[1]);
        assert_ne!(banks[0], banks[2]);
        assert_ne!(banks[1], banks[2]);
    }

    #[test]
    fn wide_groups_are_aligned() {
        let mut p = AllocProblem::new(6);
        p.require_wide(&[VReg(0), VReg(1)]);
        p.require_wide(&[VReg(2), VReg(3), VReg(4), VReg(5)]);
        let a = solve(&p).unwrap();
        assert_eq!(a[&VReg(0)].index() % 2, 0);
        assert_eq!(a[&VReg(1)].index(), a[&VReg(0)].index() + 1);
        assert_eq!(a[&VReg(2)].index() % 4, 0);
        for i in 0..4u8 {
            assert_eq!(a[&VReg(2 + i as usize)].index(), a[&VReg(2)].index() + i);
        }
    }

    #[test]
    fn pins_are_honored() {
        let mut p = AllocProblem::new(2);
        p.pin(VReg(0), Reg::r(6));
        p.require_distinct_banks(&[VReg(0), VReg(1)]);
        let a = solve(&p).unwrap();
        assert_eq!(a[&VReg(0)], Reg::r(6));
        assert_ne!(a[&VReg(1)].bank(), Reg::r(6).bank());
    }

    #[test]
    fn infeasible_group_is_detected() {
        // Five registers cannot sit on 4 distinct banks.
        let mut p = AllocProblem::new(5);
        let group: Vec<VReg> = (0..5).map(VReg).collect();
        assert!(matches!(
            {
                p.require_distinct_banks(&group);
                p.check()
            },
            Err(RegAllocError::Malformed { .. })
        ));
    }

    #[test]
    fn pool_restriction_can_make_unsatisfiable() {
        let mut p = AllocProblem::new(2);
        // Pool of two same-bank registers cannot satisfy distinctness.
        p.set_pool(vec![Reg::r(0), Reg::r(8)]);
        p.require_distinct_banks(&[VReg(0), VReg(1)]);
        assert_eq!(solve(&p), Err(RegAllocError::Unsatisfiable));
    }

    #[test]
    fn assignment_registers_are_unique() {
        let mut p = AllocProblem::new(20);
        for i in (0..18).step_by(3) {
            p.require_distinct_banks(&[VReg(i), VReg(i + 1), VReg(i + 2)]);
        }
        let a = solve(&p).unwrap();
        let mut regs: Vec<u8> = a.values().map(|r| r.index()).collect();
        regs.sort_unstable();
        regs.dedup();
        assert_eq!(regs.len(), 20);
    }

    #[test]
    fn pin_to_rz_rejected() {
        let mut p = AllocProblem::new(1);
        p.pin(VReg(0), Reg::RZ);
        assert!(matches!(solve(&p), Err(RegAllocError::Malformed { .. })));
    }
}
