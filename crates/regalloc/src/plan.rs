//! The SGEMM register plan (Section 5.2 register budget, Section 5.4 /
//! Figure 9 bank assignment).

use peakperf_sass::Reg;

use crate::{ffma_conflict_ways, solve, AllocProblem, RegAllocError, VReg};

/// Address/bookkeeping registers of the SGEMM kernel (Section 5.2 items
/// 4-7: global A/B cursors, the loop-end condition — held in R1's slot
/// since no stack is needed — and the shared-memory cursors for the
/// prefetch and main loop).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AddrRegs {
    /// Cursor of A in global memory.
    pub a_global: Reg,
    /// Cursor of B in global memory.
    pub b_global: Reg,
    /// Loop end condition.
    pub loop_end: Reg,
    /// Cursor of A in shared memory during the prefetch store.
    pub a_smem_store: Reg,
    /// Cursor of B in shared memory during the prefetch store.
    pub b_smem_store: Reg,
    /// Cursor of A in shared memory in the main loop.
    pub a_smem: Reg,
    /// Cursor of B in shared memory in the main loop.
    pub b_smem: Reg,
}

/// The complete register assignment of the register-blocked SGEMM main
/// loop: `BR*BR` accumulators, a column of A, a 2-register B pair (loaded
/// three times per stage with `LDS.64`), 12 global-prefetch registers, and
/// 7 address registers — 63 registers in total for `BR = 6`, exactly the
/// Fermi/GK104 budget (Section 5.2).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SgemmPlan {
    /// Register blocking factor.
    pub br: usize,
    /// Accumulators, row-major: `c[i][j]` holds C(i, j).
    pub c: Vec<Vec<Reg>>,
    /// The A column (`br` registers, loaded with `LDS.64` pairs).
    pub a_col: Vec<Reg>,
    /// The B pair (2 registers, an aligned `LDS.64` destination).
    pub b_row: Vec<Reg>,
    /// Global-memory prefetch staging (12 registers in 6 aligned pairs).
    pub prefetch: Vec<Reg>,
    /// Address/bookkeeping registers.
    pub addr: AddrRegs,
}

impl SgemmPlan {
    /// The naive sequential assignment: registers are handed out in
    /// declaration order, as a compiler without bank awareness would.
    ///
    /// On Fermi this is perfectly fine (no register banks); on Kepler it
    /// produces heavy FFMA bank conflicts — the paper's first
    /// implementation measured 68.8 % 2-way and 10.6 % 3-way (Section 5.4).
    ///
    /// # Panics
    ///
    /// Panics if the register budget (`br² + br + 2 + 12 + 7`) exceeds 63.
    pub fn naive(br: usize) -> SgemmPlan {
        let needed = br * br + br + 2 + 12 + 7;
        assert!(
            needed <= 63,
            "blocking factor {br} needs {needed} > 63 registers"
        );
        let mut next = 0u8;
        let mut take = |n: usize| -> Vec<Reg> {
            let v: Vec<Reg> = (0..n).map(|i| Reg::r(next + i as u8)).collect();
            next += n as u8;
            v
        };
        // Keep LDS.64 alignment even in the naive plan (it is required for
        // the code to be encodable at all): allocate pairs from the start.
        let a_col = take(br + (br & 1));
        let b_row = take(2);
        let prefetch = take(12);
        let addr_regs = take(7);
        let c = (0..br).map(|_| take(br)).collect();
        SgemmPlan {
            br,
            c,
            a_col: a_col.into_iter().take(br).collect(),
            b_row,
            prefetch,
            addr: AddrRegs {
                a_global: addr_regs[0],
                b_global: addr_regs[1],
                loop_end: addr_regs[2],
                a_smem_store: addr_regs[3],
                b_smem_store: addr_regs[4],
                a_smem: addr_regs[5],
                b_smem: addr_regs[6],
            },
        }
    }

    /// The bank-optimized assignment of Section 5.4: solved so that every
    /// main-loop FFMA `C[i][j] += A[i] * B[j%2]` reads its three distinct
    /// sources from three different banks, while preserving the `LDS.64`
    /// pair alignment of the A column, the B pair, and the prefetch
    /// staging.
    ///
    /// # Errors
    ///
    /// Propagates [`RegAllocError`] (e.g. for blocking factors whose budget
    /// does not fit).
    pub fn bank_optimized(br: usize) -> Result<SgemmPlan, RegAllocError> {
        let needed = br * br + br + 2 + 12 + 7;
        if needed > 63 {
            return Err(RegAllocError::Malformed {
                message: format!("blocking factor {br} needs {needed} > 63 registers"),
            });
        }
        // Virtual register layout:
        //   0..br*br            C accumulators (row-major)
        //   br*br..+br          A column
        //   +br..+2             B pair
        //   +2..+12             prefetch
        //   +12..+7             address registers
        let n_c = br * br;
        let v_c = |i: usize, j: usize| VReg(i * br + j);
        let v_a = |i: usize| VReg(n_c + i);
        let v_b = |j: usize| VReg(n_c + br + j);
        let v_pf = |k: usize| VReg(n_c + br + 2 + k);
        let v_addr = |k: usize| VReg(n_c + br + 14 + k);
        let total = n_c + br + 2 + 12 + 7;

        let mut p = AllocProblem::new(total);
        // LDS.64 pair alignment.
        for pair in 0..br / 2 {
            p.require_wide(&[v_a(2 * pair), v_a(2 * pair + 1)]);
        }
        p.require_wide(&[v_b(0), v_b(1)]);
        for pair in 0..6 {
            p.require_wide(&[v_pf(2 * pair), v_pf(2 * pair + 1)]);
        }
        // FFMA bank distinctness: C[i][j] += A[i] * B[j % 2].
        for i in 0..br {
            for j in 0..br {
                p.require_distinct_banks(&[v_a(i), v_b(j % 2), v_c(i, j)]);
            }
        }
        let assignment = solve(&p)?;
        let reg = |v: VReg| assignment[&v];
        Ok(SgemmPlan {
            br,
            c: (0..br)
                .map(|i| (0..br).map(|j| reg(v_c(i, j))).collect())
                .collect(),
            a_col: (0..br).map(|i| reg(v_a(i))).collect(),
            b_row: (0..2).map(|j| reg(v_b(j))).collect(),
            prefetch: (0..12).map(|k| reg(v_pf(k))).collect(),
            addr: AddrRegs {
                a_global: reg(v_addr(0)),
                b_global: reg(v_addr(1)),
                loop_end: reg(v_addr(2)),
                a_smem_store: reg(v_addr(3)),
                b_smem_store: reg(v_addr(4)),
                a_smem: reg(v_addr(5)),
                b_smem: reg(v_addr(6)),
            },
        })
    }

    /// Total registers used by the plan.
    pub fn register_count(&self) -> usize {
        self.br * self.br + self.br + 2 + 12 + 7
    }

    /// Count the main-loop FFMAs that would suffer a bank conflict under
    /// this plan: returns `(free, two_way, three_way)` over the
    /// `br * br` FFMAs of one stage.
    pub fn conflict_census(&self) -> (usize, usize, usize) {
        let mut free = 0;
        let mut two = 0;
        let mut three = 0;
        for i in 0..self.br {
            for j in 0..self.br {
                let ways = ffma_conflict_ways(self.a_col[i], Some(self.b_row[j % 2]), self.c[i][j]);
                match ways {
                    1 => free += 1,
                    2 => two += 1,
                    _ => three += 1,
                }
            }
        }
        (free, two, three)
    }

    /// All registers of the plan (for uniqueness checks).
    pub fn all_registers(&self) -> Vec<Reg> {
        let mut v = Vec::new();
        for row in &self.c {
            v.extend_from_slice(row);
        }
        v.extend_from_slice(&self.a_col);
        v.extend_from_slice(&self.b_row);
        v.extend_from_slice(&self.prefetch);
        v.extend_from_slice(&[
            self.addr.a_global,
            self.addr.b_global,
            self.addr.loop_end,
            self.addr.a_smem_store,
            self.addr.b_smem_store,
            self.addr.a_smem,
            self.addr.b_smem,
        ]);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn naive_plan_uses_63_registers_for_br6() {
        let p = SgemmPlan::naive(6);
        assert_eq!(p.register_count(), 63);
        let mut regs: Vec<u8> = p.all_registers().iter().map(|r| r.index()).collect();
        regs.sort_unstable();
        regs.dedup();
        assert_eq!(regs.len(), 63);
    }

    #[test]
    fn naive_plan_has_kepler_conflicts() {
        let p = SgemmPlan::naive(6);
        let (_, two, three) = p.conflict_census();
        // The paper's first (unoptimized) Kepler version had 68.8% 2-way
        // and 10.6% 3-way; the naive sequential plan must conflict heavily.
        assert!(
            two + three > 10,
            "expected heavy conflicts, got {two}+{three}"
        );
    }

    #[test]
    fn optimized_plan_is_conflict_free() {
        let p = SgemmPlan::bank_optimized(6).unwrap();
        assert_eq!(p.conflict_census(), (36, 0, 0));
    }

    #[test]
    fn optimized_plan_respects_alignment_and_uniqueness() {
        let p = SgemmPlan::bank_optimized(6).unwrap();
        for pair in p.a_col.chunks(2) {
            assert_eq!(pair[0].index() % 2, 0);
            assert_eq!(pair[1].index(), pair[0].index() + 1);
        }
        assert_eq!(p.b_row[0].index() % 2, 0);
        assert_eq!(p.b_row[1].index(), p.b_row[0].index() + 1);
        for pair in p.prefetch.chunks(2) {
            assert_eq!(pair[0].index() % 2, 0);
        }
        let mut regs: Vec<u8> = p.all_registers().iter().map(|r| r.index()).collect();
        let before = regs.len();
        regs.sort_unstable();
        regs.dedup();
        assert_eq!(regs.len(), before);
        assert!(regs.iter().all(|&r| r <= 62));
    }

    #[test]
    fn smaller_blocking_factors_solve_too() {
        for br in [2usize, 4] {
            let p = SgemmPlan::bank_optimized(br).unwrap();
            let (free, two, three) = p.conflict_census();
            assert_eq!(free, br * br);
            assert_eq!(two + three, 0);
        }
    }

    #[test]
    fn oversized_blocking_factor_fails_cleanly() {
        assert!(SgemmPlan::bank_optimized(7).is_err());
    }

    #[test]
    #[should_panic(expected = "registers")]
    fn naive_oversized_panics() {
        let _ = SgemmPlan::naive(7);
    }
}
