//! Register-bank conflict analysis and bank-aware register allocation for
//! Kepler (Section 5.4 of the paper).
//!
//! On GK104 the register file is split into four banks
//! ([`peakperf_arch::register_bank`]); an `FFMA` whose distinct source
//! registers share a bank loses half (2-way) or two-thirds (3-way) of its
//! issue throughput (Table 2). The paper shows that ~30 % of the FFMAs in
//! the nvcc-compiled MAGMA SGEMM have a 2-way conflict, and that a careful
//! manual allocation removes all conflicts (Figures 8 and 9).
//!
//! This crate provides both halves of that story:
//!
//! * [`analyze_ffma_conflicts`] — the static analysis behind Figure 8;
//! * [`AllocProblem`] / [`solve`] — a constraint solver that assigns
//!   physical registers subject to bank-distinctness groups (FFMA source
//!   triples), wide-load alignment (`LDS.64`/`LDS.128` destinations), and
//!   pinned registers;
//! * [`SgemmPlan`] — the 6×6-blocking register plan of Figure 9, produced
//!   by the solver ([`SgemmPlan::bank_optimized`]) or by the naive
//!   sequential assignment ([`SgemmPlan::naive`]) that exhibits the
//!   conflicts the paper measured in its first implementation;
//! * [`optimize_banks`] — the automatic version (Section 5.5): a
//!   semantics-preserving register renaming that removes the conflicts
//!   from an existing binary.

mod alloc;
mod conflict;
mod plan;
mod rewrite;

pub use alloc::{solve, AllocProblem, RegAllocError, VReg};
pub use conflict::{analyze_ffma_conflicts, ffma_conflict_ways, ConflictReport};
pub use plan::SgemmPlan;
pub use rewrite::{apply_mapping, optimize_banks, RewriteOutcome};
