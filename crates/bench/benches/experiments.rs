//! Criterion benches over the paper's experiments: one group per
//! table/figure, measuring the simulation that regenerates it. The actual
//! rows/series are printed by the `reproduce` binary; these benches keep
//! the regeneration cost tracked and exercise every experiment end to end.

use criterion::{criterion_group, criterion_main, Criterion};

use peakperf_arch::{GpuConfig, LdsWidth};
use peakperf_bench::experiments::{self, sgemm_gflops, Speed};
use peakperf_bound::UpperBoundModel;
use peakperf_kernels::microbench::{math, mix, threads};
use peakperf_kernels::sgemm::{Preset, Variant};

fn bench_table1(c: &mut Criterion) {
    c.bench_function("table1_architecture", |b| {
        b.iter(|| std::hint::black_box(experiments::table1()))
    });
}

fn bench_table2(c: &mut Criterion) {
    let gpu = GpuConfig::gtx680();
    let patterns = math::table2_patterns();
    let mut g = c.benchmark_group("table2_math_throughput");
    g.sample_size(10);
    // One representative pattern per conflict class.
    for idx in [7usize, 8, 9, 16] {
        let p = patterns[idx];
        g.bench_function(p.label().replace(", ", "_"), |b| {
            b.iter(|| math::measure_math(&gpu, &p).unwrap().throughput)
        });
    }
    g.finish();
}

fn bench_fig2(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig2_mix_throughput");
    g.sample_size(10);
    for gpu in [GpuConfig::gtx580(), GpuConfig::gtx680()] {
        g.bench_function(format!("{}_6to1_lds64", gpu.name), |b| {
            b.iter(|| mix::measure_mix(&gpu, 6, LdsWidth::B64).unwrap().throughput)
        });
    }
    g.finish();
}

fn bench_fig3(c: &mut Criterion) {
    c.bench_function("fig3_ffma_percentage", |b| {
        b.iter(|| std::hint::black_box(experiments::fig3()))
    });
}

fn bench_fig4(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig4_active_threads");
    g.sample_size(10);
    for gpu in [GpuConfig::gtx580(), GpuConfig::gtx680()] {
        g.bench_function(format!("{}_dependent_512", gpu.name), |b| {
            b.iter(|| {
                threads::measure_threads(&gpu, threads::Dependence::Dependent, 512)
                    .unwrap()
                    .throughput
            })
        });
    }
    g.finish();
}

fn bench_upperbound(c: &mut Criterion) {
    c.bench_function("upperbound_model_sweep", |b| {
        b.iter(|| {
            let fermi = UpperBoundModel::new(&GpuConfig::gtx580()).best_sgemm_bound();
            let kepler = UpperBoundModel::new(&GpuConfig::gtx680()).best_sgemm_bound();
            (fermi.gflops, kepler.gflops)
        })
    });
}

fn bench_fig5(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig5_sgemm_variants");
    g.sample_size(10);
    let gpu = GpuConfig::gtx580();
    for variant in [Variant::NN, Variant::NT] {
        g.bench_function(format!("fermi_{}_asm_480", variant.name()), |b| {
            b.iter(|| sgemm_gflops(&gpu, variant, Preset::AsmOpt, 480, Speed::Quick).unwrap())
        });
    }
    g.finish();
}

fn bench_fig6_fig7(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig6_fig7_sgemm_sweep_point");
    g.sample_size(10);
    for gpu in [GpuConfig::gtx580(), GpuConfig::gtx680()] {
        for preset in [Preset::AsmOpt, Preset::CublasLike, Preset::MagmaLike] {
            g.bench_function(format!("{}_{}_480", gpu.name, preset.name()), |b| {
                b.iter(|| {
                    sgemm_gflops(&gpu, Variant::NN, preset, 480, Speed::Quick).unwrap()
                })
            });
        }
    }
    g.finish();
}

fn bench_fig8(c: &mut Criterion) {
    c.bench_function("fig8_conflict_analysis", |b| {
        b.iter(|| experiments::fig8().unwrap())
    });
}

fn bench_fig9(c: &mut Criterion) {
    c.bench_function("fig9_register_allocation", |b| {
        b.iter(|| experiments::fig9().unwrap())
    });
}

criterion_group!(
    experiments_benches,
    bench_table1,
    bench_table2,
    bench_fig2,
    bench_fig3,
    bench_fig4,
    bench_upperbound,
    bench_fig5,
    bench_fig6_fig7,
    bench_fig8,
    bench_fig9,
);
criterion_main!(experiments_benches);
