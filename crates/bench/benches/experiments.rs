//! Benches over the paper's experiments: one group per table/figure,
//! measuring the simulation that regenerates it. The actual rows/series are
//! printed by the `reproduce` binary; these benches keep the regeneration
//! cost tracked and exercise every experiment end to end.

use peakperf_arch::{GpuConfig, LdsWidth};
use peakperf_bench::experiments::{self, sgemm_gflops, Speed};
use peakperf_bench::harness::Bencher;
use peakperf_bound::UpperBoundModel;
use peakperf_kernels::microbench::{math, mix, threads};
use peakperf_kernels::sgemm::{Preset, Variant};

fn bench_table1() {
    let b = Bencher::group("table1_architecture").iters(20);
    b.bench("render", experiments::table1);
}

fn bench_table2() {
    let gpu = GpuConfig::gtx680();
    let patterns = math::table2_patterns();
    let b = Bencher::group("table2_math_throughput");
    // One representative pattern per conflict class.
    for idx in [7usize, 8, 9, 16] {
        let p = patterns[idx];
        b.bench(&p.label().replace(", ", "_"), || {
            math::measure_math(&gpu, &p).unwrap().throughput
        });
    }
}

fn bench_fig2() {
    let b = Bencher::group("fig2_mix_throughput");
    for gpu in [GpuConfig::gtx580(), GpuConfig::gtx680()] {
        b.bench(&format!("{}_6to1_lds64", gpu.name), || {
            mix::measure_mix(&gpu, 6, LdsWidth::B64).unwrap().throughput
        });
    }
}

fn bench_fig3() {
    let b = Bencher::group("fig3_ffma_percentage").iters(20);
    b.bench("render", experiments::fig3);
}

fn bench_fig4() {
    let b = Bencher::group("fig4_active_threads");
    for gpu in [GpuConfig::gtx580(), GpuConfig::gtx680()] {
        b.bench(&format!("{}_dependent_512", gpu.name), || {
            threads::measure_threads(&gpu, threads::Dependence::Dependent, 512)
                .unwrap()
                .throughput
        });
    }
}

fn bench_upperbound() {
    let b = Bencher::group("upperbound_model_sweep").iters(20);
    b.bench("both_gpus", || {
        let fermi = UpperBoundModel::new(&GpuConfig::gtx580()).best_sgemm_bound();
        let kepler = UpperBoundModel::new(&GpuConfig::gtx680()).best_sgemm_bound();
        (fermi.gflops, kepler.gflops)
    });
}

fn bench_fig5() {
    let b = Bencher::group("fig5_sgemm_variants");
    let gpu = GpuConfig::gtx580();
    for variant in [Variant::NN, Variant::NT] {
        b.bench(&format!("fermi_{}_asm_480", variant.name()), || {
            sgemm_gflops(&gpu, variant, Preset::AsmOpt, 480, Speed::Quick).unwrap()
        });
    }
}

fn bench_fig6_fig7() {
    let b = Bencher::group("fig6_fig7_sgemm_sweep_point");
    for gpu in [GpuConfig::gtx580(), GpuConfig::gtx680()] {
        for preset in [Preset::AsmOpt, Preset::CublasLike, Preset::MagmaLike] {
            b.bench(&format!("{}_{}_480", gpu.name, preset.name()), || {
                sgemm_gflops(&gpu, Variant::NN, preset, 480, Speed::Quick).unwrap()
            });
        }
    }
}

fn bench_fig8() {
    let b = Bencher::group("fig8_conflict_analysis");
    b.bench("census", || experiments::fig8().unwrap());
}

fn bench_fig9() {
    let b = Bencher::group("fig9_register_allocation");
    b.bench("plan", || experiments::fig9().unwrap());
}

fn main() {
    bench_table1();
    bench_table2();
    bench_fig2();
    bench_fig3();
    bench_fig4();
    bench_upperbound();
    bench_fig5();
    bench_fig6_fig7();
    bench_fig8();
    bench_fig9();
}
