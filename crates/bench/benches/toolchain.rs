//! Benches of the toolchain itself: assembler, encoder, allocator, and the
//! two simulation engines.

use peakperf_arch::{Generation, GpuConfig};
use peakperf_bench::harness::Bencher;
use peakperf_kernels::matrix::Matrix;
use peakperf_kernels::sgemm::{build_preset, run_sgemm, Preset, SgemmProblem, Variant};
use peakperf_regalloc::SgemmPlan;
use peakperf_sass::{assemble, encode_stream, Module};
use peakperf_sim::Gpu;

fn sample_module() -> Module {
    let problem = SgemmProblem::square(Variant::NN, 960);
    let build = build_preset(Generation::Fermi, &problem, Preset::AsmOpt).unwrap();
    let mut m = Module::new(Generation::Fermi);
    m.kernels.push(build.kernel);
    m
}

fn bench_assembler() {
    let module = sample_module();
    let text = module.to_string();
    let b = Bencher::group("assembler").iters(20);
    b.bench("parse_sgemm_kernel", || {
        assemble(&text, Generation::Fermi).unwrap()
    });
    b.bench("disassemble_sgemm_kernel", || module.to_string());
}

fn bench_encoder() {
    let module = sample_module();
    let code = &module.kernels[0].code;
    let b = Bencher::group("encoder").iters(20);
    b.bench("encode_sgemm_kernel", || encode_stream(code).unwrap());
    let bytes = module.to_bytes().unwrap();
    b.bench("container_round_trip", || {
        Module::from_bytes(&bytes).unwrap()
    });
}

fn bench_regalloc() {
    let b = Bencher::group("regalloc").iters(20);
    b.bench("bank_optimized_plan", || {
        SgemmPlan::bank_optimized(6).unwrap()
    });
}

fn bench_functional_sim() {
    let problem = SgemmProblem {
        variant: Variant::NN,
        m: 96,
        n: 96,
        k: 64,
    };
    let build = build_preset(Generation::Fermi, &problem, Preset::AsmOpt).unwrap();
    let a = Matrix::random(96, 64, 1);
    let bm = Matrix::random(64, 96, 2);
    let c0 = Matrix::zeros(96, 96);
    let b = Bencher::group("functional_sim");
    b.bench("sgemm_96x96x64", || {
        let mut gpu = Gpu::new(Generation::Fermi);
        run_sgemm(&mut gpu, &build, &a, &bm, &c0, 1.0, 0.0).unwrap()
    });
}

fn bench_timing_sim() {
    let gpu = GpuConfig::gtx580();
    let problem = SgemmProblem {
        variant: Variant::NN,
        m: 192,
        n: 192,
        k: 96,
    };
    let build = build_preset(gpu.generation, &problem, Preset::AsmOpt).unwrap();
    let b = Bencher::group("timing_sim");
    b.bench("sgemm_wave_192x192x96", || {
        let mut memory = peakperf_sim::GlobalMemory::new();
        let (a, bb, cc) =
            peakperf_kernels::sgemm::upload_problem(&mut memory, &problem, 3).unwrap();
        peakperf_sim::timing::time_kernel(
            &gpu,
            &build.kernel,
            build.config,
            &[a, bb, cc, 1.0f32.to_bits(), 0.0f32.to_bits()],
            &mut memory,
            Some(problem.flops()),
        )
        .unwrap()
        .gflops
    });
}

fn main() {
    bench_assembler();
    bench_encoder();
    bench_regalloc();
    bench_functional_sim();
    bench_timing_sim();
}
