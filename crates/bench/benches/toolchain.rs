//! Benches of the toolchain itself: assembler, encoder, allocator, and the
//! two simulation engines.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};

use peakperf_arch::{Generation, GpuConfig};
use peakperf_kernels::matrix::Matrix;
use peakperf_kernels::sgemm::{build_preset, run_sgemm, Preset, SgemmProblem, Variant};
use peakperf_regalloc::SgemmPlan;
use peakperf_sass::{assemble, encode_stream, Module};
use peakperf_sim::Gpu;

fn sample_module() -> Module {
    let problem = SgemmProblem::square(Variant::NN, 960);
    let build = build_preset(Generation::Fermi, &problem, Preset::AsmOpt).unwrap();
    let mut m = Module::new(Generation::Fermi);
    m.kernels.push(build.kernel);
    m
}

fn bench_assembler(c: &mut Criterion) {
    let module = sample_module();
    let text = module.to_string();
    let n_insts = module.kernels[0].code.len() as u64;

    let mut g = c.benchmark_group("assembler");
    g.throughput(Throughput::Elements(n_insts));
    g.bench_function("parse_sgemm_kernel", |b| {
        b.iter(|| assemble(&text, Generation::Fermi).unwrap())
    });
    g.bench_function("disassemble_sgemm_kernel", |b| b.iter(|| module.to_string()));
    g.finish();
}

fn bench_encoder(c: &mut Criterion) {
    let module = sample_module();
    let code = &module.kernels[0].code;
    let mut g = c.benchmark_group("encoder");
    g.throughput(Throughput::Elements(code.len() as u64));
    g.bench_function("encode_sgemm_kernel", |b| {
        b.iter(|| encode_stream(code).unwrap())
    });
    let bytes = module.to_bytes().unwrap();
    g.bench_function("container_round_trip", |b| {
        b.iter(|| Module::from_bytes(&bytes).unwrap())
    });
    g.finish();
}

fn bench_regalloc(c: &mut Criterion) {
    c.bench_function("regalloc_bank_optimized_plan", |b| {
        b.iter(|| SgemmPlan::bank_optimized(6).unwrap())
    });
}

fn bench_functional_sim(c: &mut Criterion) {
    let problem = SgemmProblem {
        variant: Variant::NN,
        m: 96,
        n: 96,
        k: 64,
    };
    let build = build_preset(Generation::Fermi, &problem, Preset::AsmOpt).unwrap();
    let a = Matrix::random(96, 64, 1);
    let bm = Matrix::random(64, 96, 2);
    let c0 = Matrix::zeros(96, 96);
    let mut g = c.benchmark_group("functional_sim");
    g.sample_size(20);
    g.throughput(Throughput::Elements(problem.flops()));
    g.bench_function("sgemm_96x96x64", |b| {
        b.iter(|| {
            let mut gpu = Gpu::new(Generation::Fermi);
            run_sgemm(&mut gpu, &build, &a, &bm, &c0, 1.0, 0.0).unwrap()
        })
    });
    g.finish();
}

fn bench_timing_sim(c: &mut Criterion) {
    let gpu = GpuConfig::gtx580();
    let problem = SgemmProblem {
        variant: Variant::NN,
        m: 192,
        n: 192,
        k: 96,
    };
    let build = build_preset(gpu.generation, &problem, Preset::AsmOpt).unwrap();
    let mut g = c.benchmark_group("timing_sim");
    g.sample_size(10);
    g.bench_function("sgemm_wave_192x192x96", |b| {
        b.iter(|| {
            let mut memory = peakperf_sim::GlobalMemory::new();
            let (a, bb, cc) =
                peakperf_kernels::sgemm::upload_problem(&mut memory, &problem, 3).unwrap();
            peakperf_sim::timing::time_kernel(
                &gpu,
                &build.kernel,
                build.config,
                &[a, bb, cc, 1.0f32.to_bits(), 0.0f32.to_bits()],
                &mut memory,
                Some(problem.flops()),
            )
            .unwrap()
            .gflops
        })
    });
    g.finish();
}

criterion_group!(
    toolchain_benches,
    bench_assembler,
    bench_encoder,
    bench_regalloc,
    bench_functional_sim,
    bench_timing_sim,
);
criterion_main!(toolchain_benches);
