//! Fault injection and differential fuzzing for the SASS → simulator
//! pipeline.
//!
//! The reproduction rests on two independent executions of every kernel:
//! the functional model ([`peakperf_sim::Gpu`]) and the cycle-level timing
//! model ([`TimingSim`]). This module perturbs *known-good* kernels — the
//! Table-2 throughput microbenchmarks and the SGEMM presets — with seeded,
//! reproducible corruptions and drives every mutant through
//! parse → validate → encode → functional sim → timing sim under a
//! panic-to-error boundary and watchdog budgets.
//!
//! The oracle accepts a mutant when:
//!
//! * the validator rejects it with a structured error on both models, or
//! * both models complete and agree on the coarse outcome class
//!   (ok / reject / fault), and the traced timing run is identical to the
//!   untraced one, and
//! * a kernel the validator *accepts* encodes and decodes back to itself.
//!
//! Anything else — a panic anywhere in the pipeline, a functional/timing
//! disagreement, a tracer that changes timing, a validated kernel that
//! fails to round-trip — is a violation. Violations are greedily
//! minimized by instruction removal and written to a replayable corpus
//! (`tests/fault_corpus/`), which a regression test replays on every run.
//!
//! Everything is deterministic: a campaign is fully described by one
//! `u64` seed, and each mutant by `(generation, seed kernel, mutation
//! seed)` — there is no wall-clock or global state in the mutation path.

use std::fmt;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use peakperf_arch::{Generation, GpuConfig};
use peakperf_kernels::microbench::math::{build_math_kernel, table2_patterns};
use peakperf_kernels::rng::Rng;
use peakperf_kernels::sgemm::{build_preset, upload_problem, Preset, SgemmProblem, Variant};
use peakperf_sass::{validate_kernel, CtlInfo, Instruction, Kernel, Module, Op, Operand, Reg};
use peakperf_sim::timing::{TimingSim, TraceEvent, TraceSink};
use peakperf_sim::{GlobalMemory, Gpu, LaunchConfig, SimError};

use crate::exec::{panic_message, run_isolated, Executor};
use crate::report::{envelope_json, json_f64, json_string, Table};

/// Functional-model step budget per mutant (mutants routinely turn loop
/// bounds into near-infinite counters; the watchdog keeps them cheap).
pub const FUZZ_STEP_LIMIT: u64 = 2_000_000;

/// Timing-model cycle budget per mutant.
pub const FUZZ_CYCLE_LIMIT: u64 = 400_000;

/// Matrix size for the SGEMM seed kernels: one 96×96 block, so the
/// functional model (whole grid) and the timing model (resident wave)
/// simulate exactly the same work.
const SGEMM_SIZE: u32 = 96;

/// Deterministic seed for the SGEMM input matrices.
const UPLOAD_SEED: u64 = 0xF00D;

/// The GPU model a generation is fuzzed on.
pub fn gpu_config_for(generation: Generation) -> GpuConfig {
    match generation {
        Generation::Gt200 => GpuConfig::gtx280(),
        Generation::Fermi => GpuConfig::gtx580(),
        Generation::Kepler => GpuConfig::gtx680(),
    }
}

fn generation_name(g: Generation) -> &'static str {
    match g {
        Generation::Gt200 => "gt200",
        Generation::Fermi => "fermi",
        Generation::Kepler => "kepler",
    }
}

fn parse_generation(s: &str) -> Option<Generation> {
    match s {
        "gt200" => Some(Generation::Gt200),
        "fermi" => Some(Generation::Fermi),
        "kepler" => Some(Generation::Kepler),
        _ => None,
    }
}

// ---------------------------------------------------------------------------
// Seed kernels
// ---------------------------------------------------------------------------

/// A known-good kernel the fuzzer perturbs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SeedSpec {
    /// Table-2 throughput microbenchmark (pattern index).
    Table2(usize),
    /// SGEMM `AsmOpt` preset for one transpose variant.
    Sgemm(Variant),
}

/// A built seed: the kernel plus everything needed to launch it.
#[derive(Debug, Clone)]
pub struct SeedCase {
    /// The kernel before mutation.
    pub kernel: Kernel,
    /// Launch shape (always a single block, see [`SGEMM_SIZE`]).
    pub config: LaunchConfig,
    /// SGEMM problem for parameter upload; `None` for parameterless seeds.
    pub problem: Option<SgemmProblem>,
}

impl SeedSpec {
    /// Every seed kernel the fuzzer draws from.
    pub fn all() -> Vec<SeedSpec> {
        let mut v: Vec<SeedSpec> = (0..table2_patterns().len()).map(SeedSpec::Table2).collect();
        v.extend(Variant::ALL.iter().copied().map(SeedSpec::Sgemm));
        v
    }

    /// Stable identifier (`table2:07`, `sgemm:nt`) used in corpus files.
    pub fn id(self) -> String {
        match self {
            SeedSpec::Table2(i) => format!("table2:{i:02}"),
            SeedSpec::Sgemm(v) => format!("sgemm:{}", v.name().to_lowercase()),
        }
    }

    /// Inverse of [`SeedSpec::id`].
    pub fn parse(s: &str) -> Option<SeedSpec> {
        let (kind, rest) = s.split_once(':')?;
        match kind {
            "table2" => {
                let i: usize = rest.parse().ok()?;
                (i < table2_patterns().len()).then_some(SeedSpec::Table2(i))
            }
            "sgemm" => Variant::ALL
                .iter()
                .copied()
                .find(|v| v.name().to_lowercase() == rest)
                .map(SeedSpec::Sgemm),
            _ => None,
        }
    }

    /// Build the seed kernel for a generation.
    ///
    /// # Errors
    ///
    /// Seed kernels are expected to always build; an error here is a
    /// harness bug and is reported as a string.
    pub fn build(self, generation: Generation) -> Result<SeedCase, String> {
        match self {
            SeedSpec::Table2(i) => {
                let patterns = table2_patterns();
                let pattern = patterns
                    .get(i)
                    .ok_or_else(|| format!("table2 pattern {i} out of range"))?;
                let kernel = build_math_kernel(generation, pattern, 16, 4)
                    .map_err(|e| format!("table2:{i} failed to build: {e}"))?;
                Ok(SeedCase {
                    kernel,
                    config: LaunchConfig::linear(1, 256),
                    problem: None,
                })
            }
            SeedSpec::Sgemm(variant) => {
                let problem = SgemmProblem::square(variant, SGEMM_SIZE);
                let build = build_preset(generation, &problem, Preset::AsmOpt)
                    .map_err(|e| format!("sgemm {} failed to build: {e}", variant.name()))?;
                Ok(SeedCase {
                    kernel: build.kernel,
                    config: build.config,
                    problem: Some(build.problem),
                })
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Mutation engine
// ---------------------------------------------------------------------------

/// The corruption classes the mutation engine draws from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MutationKind {
    /// Replace a flexible operand with a random register, immediate
    /// (sometimes outside the signed 20-bit encoding), or constant-bank
    /// reference (sometimes misaligned or out of range).
    OperandScramble,
    /// Overwrite one register slot with a random index (including `RZ`).
    RegScramble,
    /// Flip a bit in one Kepler control word, or desynchronize the
    /// control-word vector length from the instruction count.
    CtlBitFlip,
    /// Truncate the instruction stream at a random point.
    StreamTruncate,
    /// Retarget (or insert) a branch, sometimes past the end of the kernel.
    BranchRetarget,
    /// Insert, remove, or duplicate a `BAR.SYNC` without fixing up branch
    /// targets — exercises divergent-barrier and barrier-deadlock paths.
    BarrierMutate,
    /// Perturb the static shared-memory declaration (zero, doubled,
    /// misaligned, or past the per-block limit).
    SharedSizePerturb,
    /// Perturb an immediate field: `MOV32I` payloads, memory offsets,
    /// `LDC` bank/offset, `ISCADD` shift amounts.
    ImmPerturb,
}

impl MutationKind {
    /// All mutation classes, in drawing order.
    pub const ALL: [MutationKind; 8] = [
        MutationKind::OperandScramble,
        MutationKind::RegScramble,
        MutationKind::CtlBitFlip,
        MutationKind::StreamTruncate,
        MutationKind::BranchRetarget,
        MutationKind::BarrierMutate,
        MutationKind::SharedSizePerturb,
        MutationKind::ImmPerturb,
    ];

    /// Stable kebab-case name used in reports and corpus files.
    pub fn name(self) -> &'static str {
        match self {
            MutationKind::OperandScramble => "operand-scramble",
            MutationKind::RegScramble => "reg-scramble",
            MutationKind::CtlBitFlip => "ctl-bit-flip",
            MutationKind::StreamTruncate => "stream-truncate",
            MutationKind::BranchRetarget => "branch-retarget",
            MutationKind::BarrierMutate => "barrier-mutate",
            MutationKind::SharedSizePerturb => "shared-size-perturb",
            MutationKind::ImmPerturb => "imm-perturb",
        }
    }
}

/// Mutable references to every `Reg`-typed field of an operation
/// (registers *inside* flexible operands are reached via [`operand_mut`]).
fn regs_mut(op: &mut Op) -> Vec<&mut Reg> {
    match op {
        Op::Nop | Op::Exit | Op::Bar | Op::Bra { .. } => vec![],
        Op::Mov { dst, .. } | Op::Mov32i { dst, .. } | Op::S2r { dst, .. } => vec![dst],
        Op::Fadd { dst, a, .. }
        | Op::Fmul { dst, a, .. }
        | Op::Iadd { dst, a, .. }
        | Op::Imul { dst, a, .. }
        | Op::Iscadd { dst, a, .. }
        | Op::Shl { dst, a, .. }
        | Op::Shr { dst, a, .. }
        | Op::Lop { dst, a, .. } => vec![dst, a],
        Op::Ffma { dst, a, c, .. } | Op::Imad { dst, a, c, .. } => vec![dst, a, c],
        Op::Isetp { a, .. } => vec![a],
        Op::Ld { dst, addr, .. } => vec![dst, addr],
        Op::St { src, addr, .. } => vec![src, addr],
        Op::Ldc { dst, .. } => vec![dst],
    }
}

/// Mutable reference to the flexible operand of an operation, if it has one.
fn operand_mut(op: &mut Op) -> Option<&mut Operand> {
    match op {
        Op::Mov { src, .. } => Some(src),
        Op::Fadd { b, .. }
        | Op::Fmul { b, .. }
        | Op::Ffma { b, .. }
        | Op::Iadd { b, .. }
        | Op::Imul { b, .. }
        | Op::Imad { b, .. }
        | Op::Iscadd { b, .. }
        | Op::Shl { b, .. }
        | Op::Shr { b, .. }
        | Op::Lop { b, .. }
        | Op::Isetp { b, .. } => Some(b),
        _ => None,
    }
}

/// Indices of instructions satisfying `pred` (operating on a scratch copy
/// of the op so the scan never borrows the kernel mutably).
fn matching_indices(kernel: &Kernel, pred: impl Fn(&mut Op) -> bool) -> Vec<usize> {
    kernel
        .code
        .iter()
        .enumerate()
        .filter(|(_, inst)| {
            let mut op = inst.op;
            pred(&mut op)
        })
        .map(|(i, _)| i)
        .collect()
}

fn pick<T: Copy>(items: &[T], rng: &mut Rng) -> Option<T> {
    if items.is_empty() {
        None
    } else {
        Some(items[rng.gen_range_usize(0, items.len())])
    }
}

/// Insert `inst` at `index`, randomly deciding whether to keep a Kepler
/// control vector in sync (leaving it desynchronized is itself an
/// interesting mutant: the validator must reject it).
fn insert_instruction(kernel: &mut Kernel, index: usize, inst: Instruction, rng: &mut Rng) {
    kernel.code.insert(index, inst);
    if let Some(ctl) = kernel.ctl.as_mut() {
        if rng.gen_bool() && index <= ctl.len() {
            ctl.insert(index, CtlInfo::NONE);
        }
    }
}

/// Apply one mutation of class `kind`; returns `false` when the class does
/// not apply to this kernel (e.g. no control words on Fermi).
fn try_apply(kernel: &mut Kernel, kind: MutationKind, rng: &mut Rng) -> bool {
    match kind {
        MutationKind::OperandScramble => {
            let targets = matching_indices(kernel, |op| operand_mut(op).is_some());
            let Some(i) = pick(&targets, rng) else {
                return false;
            };
            let replacement = match rng.gen_below(3) {
                0 => Operand::Reg(Reg::r(rng.gen_below(64) as u8)),
                // Sometimes outside the signed 20-bit immediate range.
                1 => Operand::Imm(rng.gen_range_i64(-(1 << 21), 1 << 21) as i32),
                // Sometimes bank > 15, misaligned, or past 0xFFFC.
                _ => Operand::Const {
                    bank: rng.gen_below(19) as u8,
                    offset: rng.gen_below(0x1_0010) as u32,
                },
            };
            if let Some(operand) = operand_mut(&mut kernel.code[i].op) {
                *operand = replacement;
            }
            true
        }
        MutationKind::RegScramble => {
            let targets = matching_indices(kernel, |op| !regs_mut(op).is_empty());
            let Some(i) = pick(&targets, rng) else {
                return false;
            };
            let mut slots = regs_mut(&mut kernel.code[i].op);
            let s = rng.gen_range_usize(0, slots.len());
            *slots[s] = Reg::r(rng.gen_below(64) as u8);
            true
        }
        MutationKind::CtlBitFlip => {
            let Some(ctl) = kernel.ctl.as_mut() else {
                return false;
            };
            if ctl.is_empty() {
                return false;
            }
            match rng.gen_below(4) {
                0 | 1 => {
                    // Bits 0..=5 are all meaningful (only 0xC0 is
                    // reserved), so every single-bit flip stays decodable.
                    let i = rng.gen_range_usize(0, ctl.len());
                    let byte = ctl[i].to_byte() ^ (1 << rng.gen_below(6));
                    match CtlInfo::from_byte(byte) {
                        Ok(c) => {
                            ctl[i] = c;
                            true
                        }
                        Err(_) => false,
                    }
                }
                2 => {
                    ctl.pop();
                    true
                }
                _ => {
                    let i = rng.gen_range_usize(0, ctl.len());
                    let dup = ctl[i];
                    ctl.push(dup);
                    true
                }
            }
        }
        MutationKind::StreamTruncate => {
            if kernel.code.is_empty() {
                return false;
            }
            let keep = rng.gen_range_usize(0, kernel.code.len());
            kernel.code.truncate(keep);
            if let Some(ctl) = kernel.ctl.as_mut() {
                if rng.gen_bool() {
                    ctl.truncate(keep);
                }
            }
            true
        }
        MutationKind::BranchRetarget => {
            let target = rng.gen_below(kernel.code.len() as u64 + 4) as u32;
            let bras = matching_indices(kernel, |op| matches!(op, Op::Bra { .. }));
            if let Some(i) = pick(&bras, rng) {
                kernel.code[i].op = Op::Bra { target };
            } else {
                let at = rng.gen_range_usize(0, kernel.code.len() + 1);
                insert_instruction(kernel, at, Instruction::new(Op::Bra { target }), rng);
            }
            true
        }
        MutationKind::BarrierMutate => {
            let bars = matching_indices(kernel, |op| matches!(op, Op::Bar));
            match rng.gen_below(3) {
                0 => {
                    let at = rng.gen_range_usize(0, kernel.code.len() + 1);
                    insert_instruction(kernel, at, Instruction::new(Op::Bar), rng);
                    true
                }
                1 => {
                    let Some(i) = pick(&bars, rng) else {
                        return false;
                    };
                    remove_instruction(kernel, i);
                    true
                }
                _ => {
                    let Some(i) = pick(&bars, rng) else {
                        return false;
                    };
                    insert_instruction(kernel, i, Instruction::new(Op::Bar), rng);
                    true
                }
            }
        }
        MutationKind::SharedSizePerturb => {
            let cur = kernel.shared_bytes;
            kernel.shared_bytes = match rng.gen_below(7) {
                0 => 0,
                1 => cur / 2,
                2 => cur.saturating_add(4),
                3 => cur.saturating_mul(2),
                4 => 48 * 1024,
                5 => 48 * 1024 + 4,
                _ => rng.gen_below(128 * 1024) as u32,
            };
            true
        }
        MutationKind::ImmPerturb => {
            let targets = matching_indices(kernel, |op| {
                matches!(
                    op,
                    Op::Mov32i { .. }
                        | Op::Ld { .. }
                        | Op::St { .. }
                        | Op::Ldc { .. }
                        | Op::Iscadd { .. }
                )
            });
            let Some(i) = pick(&targets, rng) else {
                return false;
            };
            match &mut kernel.code[i].op {
                Op::Mov32i { imm, .. } => {
                    *imm = if rng.gen_bool() {
                        *imm ^ (1 << rng.gen_below(32))
                    } else {
                        rng.next_u32()
                    };
                }
                Op::Ld { offset, .. } | Op::St { offset, .. } => {
                    *offset = rng.gen_range_i64(-(1 << 24), 1 << 24) as i32;
                }
                Op::Ldc { bank, offset, .. } => {
                    if rng.gen_bool() {
                        *bank = rng.gen_below(20) as u8;
                    } else {
                        *offset = rng.gen_below(0x2_0000) as u32;
                    }
                }
                Op::Iscadd { shift, .. } => {
                    *shift = rng.gen_below(64) as u8;
                }
                _ => return false,
            }
            true
        }
    }
}

/// Apply one random mutation, retrying inapplicable classes; falls back to
/// [`MutationKind::SharedSizePerturb`] (always applicable) so the loop
/// terminates even on a degenerate kernel.
pub fn mutate(kernel: &mut Kernel, rng: &mut Rng) -> MutationKind {
    for _ in 0..16 {
        let kind = MutationKind::ALL[rng.gen_range_usize(0, MutationKind::ALL.len())];
        if try_apply(kernel, kind, rng) {
            return kind;
        }
    }
    let fallback = MutationKind::SharedSizePerturb;
    try_apply(kernel, fallback, rng);
    fallback
}

/// Remove instruction `i`, keeping the control vector in sync and
/// decrementing branch targets past the removal point (a branch *to* the
/// removed instruction now lands on its successor).
pub fn remove_instruction(kernel: &mut Kernel, i: usize) {
    if i >= kernel.code.len() {
        return;
    }
    kernel.code.remove(i);
    if let Some(ctl) = kernel.ctl.as_mut() {
        if i < ctl.len() {
            ctl.remove(i);
        }
    }
    for inst in &mut kernel.code {
        if let Op::Bra { target } = &mut inst.op {
            if *target > i as u32 {
                *target -= 1;
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Differential pipeline
// ---------------------------------------------------------------------------

/// One fully-specified fuzz input: rebuilding the seed and replaying the
/// mutation stream from `mutation_seed` reproduces the exact mutant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FuzzCase {
    /// Target generation (selects validator rules and the GPU model).
    pub generation: Generation,
    /// The seed kernel being perturbed.
    pub seed: SeedSpec,
    /// Seed for the mutation RNG.
    pub mutation_seed: u64,
}

/// What one engine did with a mutant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Outcome {
    /// Completed (`cycles` is 0 for the functional model).
    Ok {
        /// Timing-model cycle count.
        cycles: u64,
    },
    /// Structured rejection before execution (validator or launch check).
    Reject(String),
    /// Structured runtime fault (coarse class).
    Fault(&'static str),
    /// Watchdog budget exhausted.
    Timeout,
    /// The engine panicked — always a violation.
    Panic(String),
}

impl Outcome {
    /// Coarse class used for cross-model agreement.
    pub fn class(&self) -> &'static str {
        match self {
            Outcome::Ok { .. } => "ok",
            Outcome::Reject(_) => "reject",
            Outcome::Fault(_) => "fault",
            Outcome::Timeout => "timeout",
            Outcome::Panic(_) => "panic",
        }
    }
}

impl fmt::Display for Outcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Outcome::Ok { cycles } => write!(f, "ok(cycles={cycles})"),
            Outcome::Reject(m) => write!(f, "reject({m})"),
            Outcome::Fault(c) => write!(f, "fault({c})"),
            Outcome::Timeout => f.write_str("timeout"),
            Outcome::Panic(m) => write!(f, "panic({m})"),
        }
    }
}

/// Why a mutant violated the oracle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ViolationKind {
    /// Some engine panicked instead of returning a structured error.
    Panic,
    /// Functional and timing models disagree on the outcome class.
    FuncTimingDisagree,
    /// Traced and untraced timing runs differ (the tracer must be a pure
    /// observer).
    TraceDivergence,
    /// A validator-accepted kernel failed to encode/decode back to itself.
    RoundTrip,
}

impl ViolationKind {
    /// Stable kebab-case name used in reports and corpus files.
    pub fn name(self) -> &'static str {
        match self {
            ViolationKind::Panic => "panic",
            ViolationKind::FuncTimingDisagree => "func-timing-disagree",
            ViolationKind::TraceDivergence => "trace-divergence",
            ViolationKind::RoundTrip => "round-trip",
        }
    }

    /// Inverse of [`ViolationKind::name`].
    pub fn parse(s: &str) -> Option<ViolationKind> {
        match s {
            "panic" => Some(ViolationKind::Panic),
            "func-timing-disagree" => Some(ViolationKind::FuncTimingDisagree),
            "trace-divergence" => Some(ViolationKind::TraceDivergence),
            "round-trip" => Some(ViolationKind::RoundTrip),
            _ => None,
        }
    }
}

/// An oracle violation with human-readable context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// The oracle rule that failed.
    pub kind: ViolationKind,
    /// What the engines actually did.
    pub detail: String,
}

/// The full differential result for one mutant.
#[derive(Debug, Clone)]
pub struct MutantReport {
    /// The input that produced this mutant.
    pub case: FuzzCase,
    /// The mutation classes that were applied, in order.
    pub kinds: Vec<MutationKind>,
    /// Functional-model outcome.
    pub func: Outcome,
    /// Untraced timing-model outcome.
    pub timing: Outcome,
    /// Traced timing-model outcome (must equal `timing`).
    pub traced: Outcome,
    /// The oracle's verdict; `None` means the mutant is accepted.
    pub violation: Option<Violation>,
}

/// A trace sink that only counts events: forces the traced code path
/// (`ENABLED = true`) with bounded memory, unlike a recording buffer.
#[derive(Debug, Default)]
pub struct CountSink {
    /// Events observed.
    pub events: u64,
}

impl TraceSink for CountSink {
    const ENABLED: bool = true;

    fn record(&mut self, _event: TraceEvent) {
        self.events += 1;
    }
}

/// Map a simulation result onto the fuzzer's outcome classes.
fn classify(result: Result<u64, SimError>) -> Outcome {
    match result {
        Ok(cycles) => Outcome::Ok { cycles },
        Err(SimError::Invalid { message }) | Err(SimError::Launch { message }) => {
            Outcome::Reject(message)
        }
        Err(SimError::OutOfBounds { .. }) => Outcome::Fault("out_of_bounds"),
        Err(SimError::Misaligned { .. }) => Outcome::Fault("misaligned"),
        Err(SimError::DivergentBarrier { .. }) => Outcome::Fault("divergent_barrier"),
        Err(SimError::BarrierDeadlock { .. }) => Outcome::Fault("barrier_deadlock"),
        Err(SimError::RanOffEnd) => Outcome::Fault("ran_off_end"),
        Err(SimError::StepLimit { .. }) => Outcome::Timeout,
        // The fuzzer never arms a CancelToken, but the service's chaos-soak
        // mode replays its mutants under deadlines; both aborts classify as
        // timeouts (host-imposed, not a simulator defect).
        Err(SimError::Cancelled { .. }) | Err(SimError::DeadlineExceeded { .. }) => {
            Outcome::Timeout
        }
    }
}

/// Run one engine under the panic-to-error boundary.
fn engine(f: impl FnOnce() -> Result<u64, SimError>) -> Outcome {
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(f)) {
        Ok(result) => classify(result),
        Err(payload) => Outcome::Panic(panic_message(payload.as_ref())),
    }
}

fn launch_params(
    memory: &mut GlobalMemory,
    problem: Option<&SgemmProblem>,
) -> Result<Vec<u32>, SimError> {
    match problem {
        Some(p) => {
            let (a, b, c) = upload_problem(memory, p, UPLOAD_SEED)?;
            Ok(vec![a, b, c, 1.0f32.to_bits(), 0.0f32.to_bits()])
        }
        None => Ok(Vec::new()),
    }
}

fn run_func(
    kernel: &Kernel,
    config: LaunchConfig,
    problem: Option<&SgemmProblem>,
    generation: Generation,
) -> Result<u64, SimError> {
    let mut gpu = Gpu::new(generation);
    gpu.set_step_limit(FUZZ_STEP_LIMIT);
    let params = launch_params(gpu.memory_mut(), problem)?;
    gpu.launch(kernel, config, &params)?;
    Ok(0)
}

fn run_timing(
    kernel: &Kernel,
    config: LaunchConfig,
    problem: Option<&SgemmProblem>,
    gpu: &GpuConfig,
    traced: bool,
) -> Result<u64, SimError> {
    let mut memory = GlobalMemory::new();
    let params = launch_params(&mut memory, problem)?;
    let mut sim = TimingSim::new(gpu, kernel, config, &params, 1)?;
    sim.set_cycle_limit(FUZZ_CYCLE_LIMIT);
    let report = if traced {
        let mut sink = CountSink::default();
        sim.run_traced(&mut memory, &mut sink)?
    } else {
        sim.run(&mut memory)?
    };
    Ok(report.cycles)
}

/// The round-trip oracle: a kernel the validator accepts must survive
/// `Module` serialization bit-exactly. (Kernels the validator rejects are
/// exempt — the encoder is allowed to reject them too.)
fn round_trip_violation(kernel: &Kernel, generation: Generation) -> Option<String> {
    if validate_kernel(kernel, generation).is_err() {
        return None;
    }
    let module = Module {
        generation,
        kernels: vec![kernel.clone()],
    };
    let bytes = match module.to_bytes() {
        Ok(b) => b,
        Err(e) => return Some(format!("validated kernel failed to encode: {e}")),
    };
    match Module::from_bytes(&bytes) {
        Ok(back) if back.kernels.len() == 1 && back.kernels[0] == *kernel => None,
        Ok(_) => Some("decode(encode(kernel)) differs from the kernel".to_owned()),
        Err(e) => Some(format!("validated kernel failed to decode: {e}")),
    }
}

/// The three-way oracle over one mutant's engine outcomes.
fn judge(func: &Outcome, timing: &Outcome, traced: &Outcome) -> Option<Violation> {
    for (name, outcome) in [("func", func), ("timing", timing), ("traced", traced)] {
        if let Outcome::Panic(msg) = outcome {
            return Some(Violation {
                kind: ViolationKind::Panic,
                detail: format!("{name}: {msg}"),
            });
        }
    }
    // The tracer is a pure observer of a deterministic engine, so the
    // traced run must match the untraced one exactly — including cycles.
    if traced != timing {
        return Some(Violation {
            kind: ViolationKind::TraceDivergence,
            detail: format!("timing={timing} traced={traced}"),
        });
    }
    // A timeout on either side makes the comparison inconclusive: the two
    // models spend their budgets differently (steps vs cycles).
    if matches!(func, Outcome::Timeout) || matches!(timing, Outcome::Timeout) {
        return None;
    }
    // Coarse-class agreement: fault *subclasses* may differ (the models
    // schedule warps differently, so a mutant with several latent faults
    // may trip them in a different order), but ok/reject/fault must match.
    if func.class() != timing.class() {
        return Some(Violation {
            kind: ViolationKind::FuncTimingDisagree,
            detail: format!("func={func} timing={timing}"),
        });
    }
    None
}

/// Rebuild a case's mutant kernel: seed build, mutation replay, then the
/// recorded shrinker removals (applied in recording order).
///
/// # Errors
///
/// Reports seed-build failures (harness bugs) as strings.
pub fn mutant_kernel(
    case: &FuzzCase,
    removals: &[usize],
) -> Result<(SeedCase, Kernel, Vec<MutationKind>), String> {
    let seed = case.seed.build(case.generation)?;
    let mut kernel = seed.kernel.clone();
    let mut rng = Rng::seed_from_u64(case.mutation_seed);
    let count = 1 + rng.gen_below(3) as usize;
    let mut kinds = Vec::with_capacity(count);
    for _ in 0..count {
        kinds.push(mutate(&mut kernel, &mut rng));
    }
    for &i in removals {
        remove_instruction(&mut kernel, i);
    }
    Ok((seed, kernel, kinds))
}

/// Drive one mutant through every engine and the oracle.
///
/// # Errors
///
/// Reports seed-build failures (harness bugs) as strings; mutant
/// misbehavior is never an `Err` — it lands in the report.
pub fn run_case_with(case: &FuzzCase, removals: &[usize]) -> Result<MutantReport, String> {
    let (seed, kernel, kinds) = mutant_kernel(case, removals)?;
    let problem = seed.problem.as_ref();
    let func = engine(|| run_func(&kernel, seed.config, problem, case.generation));
    let gpu = gpu_config_for(case.generation);
    let timing = engine(|| run_timing(&kernel, seed.config, problem, &gpu, false));
    let traced = engine(|| run_timing(&kernel, seed.config, problem, &gpu, true));
    // The round-trip oracle calls into the validator/encoder on an
    // arbitrary mutant, so it gets the same panic boundary as the
    // engines: a panicking toolchain is itself a reportable violation,
    // not a harness crash.
    let round_trip = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        round_trip_violation(&kernel, case.generation)
    }));
    let mut violation = match round_trip {
        Ok(detail) => detail.map(|detail| Violation {
            kind: ViolationKind::RoundTrip,
            detail,
        }),
        Err(payload) => Some(Violation {
            kind: ViolationKind::Panic,
            detail: format!("round-trip oracle: {}", panic_message(payload.as_ref())),
        }),
    };
    if violation.is_none() {
        violation = judge(&func, &timing, &traced);
    }
    Ok(MutantReport {
        case: *case,
        kinds,
        func,
        timing,
        traced,
        violation,
    })
}

/// [`run_case_with`] without shrinker removals.
///
/// # Errors
///
/// Same as [`run_case_with`].
pub fn run_case(case: &FuzzCase) -> Result<MutantReport, String> {
    run_case_with(case, &[])
}

// ---------------------------------------------------------------------------
// Shrinking
// ---------------------------------------------------------------------------

/// Greedily minimize a violating mutant by instruction removal: a removal
/// is kept iff the *same violation kind* persists. Returns the removal
/// indices (to be replayed in order) and the final report.
///
/// The evaluation budget bounds total pipeline runs, so shrinking a large
/// SGEMM mutant stays affordable.
///
/// # Errors
///
/// Reports seed-build failures as strings.
pub fn shrink_case(case: &FuzzCase) -> Result<(Vec<usize>, MutantReport), String> {
    let baseline = run_case(case)?;
    let Some(kind) = baseline.violation.as_ref().map(|v| v.kind) else {
        return Ok((Vec::new(), baseline));
    };
    let mut removed: Vec<usize> = Vec::new();
    let mut best = baseline;
    let mut budget = 600usize;
    loop {
        let mut progressed = false;
        let (_, kernel, _) = mutant_kernel(case, &removed)?;
        let mut len = kernel.code.len();
        let mut i = 0;
        while i < len && budget > 0 {
            budget -= 1;
            let mut attempt = removed.clone();
            attempt.push(i);
            if let Ok(report) = run_case_with(case, &attempt) {
                if report.violation.as_ref().map(|v| v.kind) == Some(kind) {
                    removed = attempt;
                    best = report;
                    len -= 1;
                    progressed = true;
                    continue; // the next instruction slid into slot i
                }
            }
            i += 1;
        }
        if !progressed || budget == 0 {
            break;
        }
    }
    Ok((removed, best))
}

// ---------------------------------------------------------------------------
// Corpus
// ---------------------------------------------------------------------------

/// A minimized violation ready for the corpus.
#[derive(Debug, Clone)]
pub struct ViolationCase {
    /// The originating fuzz input.
    pub case: FuzzCase,
    /// The violation observed after shrinking.
    pub violation: Violation,
    /// Shrinker removals, in application order.
    pub removed: Vec<usize>,
}

const CORPUS_HEADER: &str = "peakperf-fault-case v1";

/// Render a violation case in the line-based corpus format.
pub fn render_corpus_case(vc: &ViolationCase) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{CORPUS_HEADER}");
    let _ = writeln!(out, "gen = {}", generation_name(vc.case.generation));
    let _ = writeln!(out, "seed = {}", vc.case.seed.id());
    let _ = writeln!(out, "mutation_seed = {}", vc.case.mutation_seed);
    let _ = writeln!(out, "kind = {}", vc.violation.kind.name());
    let _ = writeln!(out, "detail = {}", vc.violation.detail.replace('\n', " "));
    if !vc.removed.is_empty() {
        let list: Vec<String> = vc.removed.iter().map(usize::to_string).collect();
        let _ = writeln!(out, "removed = {}", list.join(","));
    }
    out
}

/// Parse a corpus file back into `(case, removals, recorded kind)`.
///
/// # Errors
///
/// Reports malformed files as strings.
pub fn parse_corpus_case(text: &str) -> Result<(FuzzCase, Vec<usize>, ViolationKind), String> {
    let mut lines = text.lines().filter(|l| !l.trim().is_empty());
    if lines.next().map(str::trim) != Some(CORPUS_HEADER) {
        return Err(format!("missing `{CORPUS_HEADER}` header"));
    }
    let mut generation = None;
    let mut seed = None;
    let mut mutation_seed = None;
    let mut kind = None;
    let mut removed = Vec::new();
    for line in lines {
        let Some((key, value)) = line.split_once('=') else {
            return Err(format!("malformed line `{line}`"));
        };
        let (key, value) = (key.trim(), value.trim());
        match key {
            "gen" => {
                generation =
                    Some(parse_generation(value).ok_or_else(|| format!("bad gen `{value}`"))?);
            }
            "seed" => {
                seed = Some(SeedSpec::parse(value).ok_or_else(|| format!("bad seed `{value}`"))?);
            }
            "mutation_seed" => {
                mutation_seed = Some(
                    value
                        .parse::<u64>()
                        .map_err(|_| format!("bad mutation_seed `{value}`"))?,
                );
            }
            "kind" => {
                kind =
                    Some(ViolationKind::parse(value).ok_or_else(|| format!("bad kind `{value}`"))?);
            }
            "removed" => {
                removed = value
                    .split(',')
                    .filter(|s| !s.is_empty())
                    .map(|s| s.trim().parse::<usize>())
                    .collect::<Result<Vec<_>, _>>()
                    .map_err(|_| format!("bad removed list `{value}`"))?;
            }
            "detail" => {}
            other => return Err(format!("unknown key `{other}`")),
        }
    }
    let case = FuzzCase {
        generation: generation.ok_or("missing gen")?,
        seed: seed.ok_or("missing seed")?,
        mutation_seed: mutation_seed.ok_or("missing mutation_seed")?,
    };
    Ok((case, removed, kind.ok_or("missing kind")?))
}

/// File name for a corpus case (unique per case within a campaign).
pub fn corpus_file_name(case: &FuzzCase) -> String {
    format!(
        "{}-{}-{:016x}.case",
        generation_name(case.generation),
        case.seed.id().replace(':', "-"),
        case.mutation_seed
    )
}

/// Write one minimized case into `dir` (created if needed).
///
/// # Errors
///
/// Propagates I/O errors.
pub fn write_corpus_case(dir: &Path, vc: &ViolationCase) -> std::io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(corpus_file_name(&vc.case));
    std::fs::write(&path, render_corpus_case(vc))?;
    Ok(path)
}

/// Replay every `.case` file under `dir`. Returns one entry per file:
/// the path and the violation the replay produced (`None` = the pipeline
/// now handles the case cleanly, which is what the regression test wants).
///
/// # Errors
///
/// Propagates I/O and parse failures.
pub fn replay_corpus(dir: &Path) -> Result<Vec<(PathBuf, Option<Violation>)>, String> {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)
        .map_err(|e| format!("cannot read corpus dir {}: {e}", dir.display()))?
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "case"))
        .collect();
    entries.sort();
    let _quiet = silence_panics();
    let mut out = Vec::with_capacity(entries.len());
    for path in entries {
        let text = std::fs::read_to_string(&path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        let (case, removed, _kind) =
            parse_corpus_case(&text).map_err(|e| format!("{}: {e}", path.display()))?;
        let report = run_isolated(|| run_case_with(&case, &removed))
            .map_err(|e| format!("{}: {e}", path.display()))?;
        out.push((path, report.violation));
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// Campaign
// ---------------------------------------------------------------------------

/// Parameters of one fuzz campaign.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Master seed; the whole campaign is a pure function of it.
    pub seed: u64,
    /// Number of mutants.
    pub iters: u64,
    /// Generations to draw from (default: Fermi and Kepler).
    pub generations: Vec<Generation>,
}

impl Default for CampaignConfig {
    fn default() -> CampaignConfig {
        CampaignConfig {
            seed: 1,
            iters: 500,
            generations: vec![Generation::Fermi, Generation::Kepler],
        }
    }
}

/// Per-class outcome tallies (a mutant counts under its most severe
/// engine outcome: panic > timeout > fault > reject > ok).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Tally {
    /// Mutants where every engine completed.
    pub ok: u64,
    /// Mutants rejected by validation/launch checks.
    pub reject: u64,
    /// Mutants stopped by a structured runtime fault.
    pub fault: u64,
    /// Mutants that exhausted a watchdog budget.
    pub timeout: u64,
    /// Mutants that panicked somewhere (always a violation too).
    pub panic: u64,
    /// Harness-level failures (seed build errors) — not mutant behavior.
    pub harness_errors: u64,
}

impl Tally {
    fn severity(class: &str) -> u8 {
        match class {
            "panic" => 4,
            "timeout" => 3,
            "fault" => 2,
            "reject" => 1,
            _ => 0,
        }
    }

    fn count(&mut self, report: &MutantReport) {
        let outcomes = [&report.func, &report.timing, &report.traced];
        let class = outcomes
            .iter()
            .map(|o| o.class())
            .max_by_key(|c| Tally::severity(c))
            .unwrap_or("ok");
        match class {
            "panic" => self.panic += 1,
            "timeout" => self.timeout += 1,
            "fault" => self.fault += 1,
            "reject" => self.reject += 1,
            _ => self.ok += 1,
        }
    }
}

/// The result of a fuzz campaign.
#[derive(Debug, Clone)]
pub struct CampaignResult {
    /// Mutants executed.
    pub cases: u64,
    /// Per-class outcome tallies.
    pub tally: Tally,
    /// Applications per mutation class, aligned with [`MutationKind::ALL`].
    pub kind_counts: [u64; MutationKind::ALL.len()],
    /// Minimized violations, in discovery order.
    pub violations: Vec<ViolationCase>,
}

/// Serialize the panic-hook swap: campaigns suppress the default hook's
/// stderr spew (mutant panics are expected and caught), and concurrent
/// campaigns in one process must not clobber each other's saved hook.
fn silence_panics() -> impl Drop {
    static HOOK_LOCK: Mutex<()> = Mutex::new(());

    type PanicHook = Box<dyn Fn(&std::panic::PanicHookInfo<'_>) + Sync + Send>;
    struct Quiet {
        guard: Option<std::sync::MutexGuard<'static, ()>>,
        previous: Option<PanicHook>,
    }
    impl Drop for Quiet {
        fn drop(&mut self) {
            if let Some(previous) = self.previous.take() {
                std::panic::set_hook(previous);
            }
            drop(self.guard.take());
        }
    }

    let guard = HOOK_LOCK
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    let previous = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    Quiet {
        guard: Some(guard),
        previous: Some(previous),
    }
}

/// Derive the deterministic case list for a campaign.
pub fn campaign_cases(cfg: &CampaignConfig) -> Vec<FuzzCase> {
    let specs = SeedSpec::all();
    let mut master = Rng::seed_from_u64(cfg.seed);
    (0..cfg.iters)
        .map(|_| {
            let mutation_seed = master.next_u64();
            let seed = specs[master.gen_range_usize(0, specs.len())];
            let generation = cfg.generations[master.gen_range_usize(0, cfg.generations.len())];
            FuzzCase {
                generation,
                seed,
                mutation_seed,
            }
        })
        .collect()
}

/// Run a campaign: generate the case list, drive every mutant through the
/// differential pipeline in parallel, and minimize every violation.
pub fn run_campaign(cfg: &CampaignConfig) -> CampaignResult {
    let cases = campaign_cases(cfg);
    let _quiet = silence_panics();
    let reports = Executor::auto().map(&cases, |case| run_isolated(|| run_case(case)));

    let mut result = CampaignResult {
        cases: cases.len() as u64,
        tally: Tally::default(),
        kind_counts: [0; MutationKind::ALL.len()],
        violations: Vec::new(),
    };
    let mut to_shrink: Vec<FuzzCase> = Vec::new();
    for report in reports.iter().flatten() {
        result.tally.count(report);
        for kind in &report.kinds {
            if let Some(slot) = MutationKind::ALL.iter().position(|k| k == kind) {
                result.kind_counts[slot] += 1;
            }
        }
        if report.violation.is_some() {
            to_shrink.push(report.case);
        }
    }
    result.tally.harness_errors += reports.iter().filter(|r| r.is_err()).count() as u64;

    // Minimize sequentially: violations are rare, and the shrinker itself
    // fans out full pipeline runs.
    for case in to_shrink {
        match shrink_case(&case) {
            Ok((removed, report)) => {
                if let Some(violation) = report.violation {
                    result.violations.push(ViolationCase {
                        case,
                        violation,
                        removed,
                    });
                }
            }
            Err(_) => result.tally.harness_errors += 1,
        }
    }
    result
}

/// Render a campaign summary as a text table plus violation listing.
pub fn render_campaign(cfg: &CampaignConfig, result: &CampaignResult) -> String {
    let gens: Vec<&str> = cfg
        .generations
        .iter()
        .map(|&g| generation_name(g))
        .collect();
    let mut table = Table::new(
        format!(
            "Fuzz campaign: seed {}, {} mutants on {}",
            cfg.seed,
            result.cases,
            gens.join("+")
        ),
        &["class", "mutants"],
    );
    let t = &result.tally;
    for (name, count) in [
        ("ok", t.ok),
        ("reject", t.reject),
        ("fault", t.fault),
        ("timeout", t.timeout),
        ("panic", t.panic),
        ("harness-error", t.harness_errors),
    ] {
        table.row(vec![name.to_owned(), count.to_string()]);
    }
    let mut kinds = Table::new("Mutations applied", &["class", "count"]);
    for (kind, count) in MutationKind::ALL.iter().zip(result.kind_counts) {
        kinds.row(vec![kind.name().to_owned(), count.to_string()]);
    }
    let mut out = format!("{}\n{}", table.render(), kinds.render());
    if result.violations.is_empty() {
        out.push_str("\nNo oracle violations.\n");
    } else {
        let _ = writeln!(out, "\n{} oracle violation(s):", result.violations.len());
        for vc in &result.violations {
            let _ = writeln!(
                out,
                "  {} {} seed={} kind={} removed={} detail={}",
                generation_name(vc.case.generation),
                vc.case.seed.id(),
                vc.case.mutation_seed,
                vc.violation.kind.name(),
                vc.removed.len(),
                vc.violation.detail,
            );
        }
    }
    out
}

/// Render the machine-readable `peakperf-fuzz-v1` campaign summary.
pub fn campaign_json(cfg: &CampaignConfig, result: &CampaignResult, wall_ms: f64) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let gens: Vec<&str> = cfg
        .generations
        .iter()
        .map(|&g| generation_name(g))
        .collect();
    out.push_str(&envelope_json("peakperf-fuzz-v1", &gens));
    let _ = writeln!(out, "  \"seed\": {},", cfg.seed);
    let _ = writeln!(out, "  \"iters\": {},", cfg.iters);
    let _ = writeln!(out, "  \"wall_ms\": {},", json_f64(wall_ms));
    let t = &result.tally;
    let _ = writeln!(
        out,
        "  \"outcomes\": {{\"ok\": {}, \"reject\": {}, \"fault\": {}, \
         \"timeout\": {}, \"panic\": {}, \"harness_errors\": {}}},",
        t.ok, t.reject, t.fault, t.timeout, t.panic, t.harness_errors
    );
    let kinds: Vec<String> = MutationKind::ALL
        .iter()
        .zip(result.kind_counts)
        .map(|(kind, count)| format!("{}: {count}", json_string(kind.name())))
        .collect();
    let _ = writeln!(out, "  \"mutations\": {{{}}},", kinds.join(", "));
    out.push_str("  \"violations\": [");
    for (i, vc) in result.violations.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let removed: Vec<String> = vc.removed.iter().map(usize::to_string).collect();
        let _ = write!(
            out,
            "\n    {{\"gen\": {}, \"seed\": {}, \"mutation_seed\": {}, \
             \"kind\": {}, \"detail\": {}, \"removed\": [{}]}}",
            json_string(generation_name(vc.case.generation)),
            json_string(&vc.case.seed.id()),
            vc.case.mutation_seed,
            json_string(vc.violation.kind.name()),
            json_string(&vc.violation.detail),
            removed.join(", ")
        );
    }
    if result.violations.is_empty() {
        out.push_str("]\n");
    } else {
        out.push_str("\n  ]\n");
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn case(seed: SeedSpec, generation: Generation, mutation_seed: u64) -> FuzzCase {
        FuzzCase {
            generation,
            seed,
            mutation_seed,
        }
    }

    #[test]
    fn seed_ids_round_trip() {
        for spec in SeedSpec::all() {
            assert_eq!(SeedSpec::parse(&spec.id()), Some(spec), "{}", spec.id());
        }
        assert_eq!(SeedSpec::parse("table2:99"), None);
        assert_eq!(SeedSpec::parse("sgemm:xx"), None);
        assert_eq!(SeedSpec::parse("nonsense"), None);
    }

    #[test]
    fn mutation_is_deterministic() {
        let c = case(SeedSpec::Table2(3), Generation::Kepler, 0xDEADBEEF);
        let (_, k1, kinds1) = mutant_kernel(&c, &[]).unwrap();
        let (_, k2, kinds2) = mutant_kernel(&c, &[]).unwrap();
        assert_eq!(kinds1, kinds2);
        assert_eq!(k1, k2);
    }

    #[test]
    fn mutants_differ_from_the_seed() {
        // Across a handful of seeds at least one mutant must actually
        // change the kernel (mutation that never mutates = broken engine).
        let mut changed = 0;
        for ms in 0..8u64 {
            let c = case(SeedSpec::Table2(0), Generation::Fermi, ms);
            let seed = c.seed.build(c.generation).unwrap();
            let (_, mutant, _) = mutant_kernel(&c, &[]).unwrap();
            if mutant != seed.kernel {
                changed += 1;
            }
        }
        assert!(changed >= 6, "only {changed}/8 mutants changed the kernel");
    }

    #[test]
    fn remove_instruction_fixes_branch_targets() {
        let mut kernel = Kernel::new("t");
        kernel.code = vec![
            Instruction::new(Op::Nop),
            Instruction::new(Op::Nop),
            Instruction::new(Op::Bra { target: 1 }),
            Instruction::new(Op::Bra { target: 3 }),
            Instruction::new(Op::Exit),
        ];
        remove_instruction(&mut kernel, 1);
        assert_eq!(kernel.code.len(), 4);
        // A branch to the removed slot keeps its index (now the successor);
        // branches past it shift down by one.
        assert_eq!(kernel.code[1].op, Op::Bra { target: 1 });
        assert_eq!(kernel.code[2].op, Op::Bra { target: 2 });
    }

    #[test]
    fn corpus_format_round_trips() {
        let vc = ViolationCase {
            case: case(SeedSpec::Sgemm(Variant::ALL[1]), Generation::Fermi, 42),
            violation: Violation {
                kind: ViolationKind::TraceDivergence,
                detail: "timing=ok(cycles=10) traced=ok(cycles=11)".to_owned(),
            },
            removed: vec![3, 0, 7],
        };
        let text = render_corpus_case(&vc);
        let (parsed, removed, kind) = parse_corpus_case(&text).unwrap();
        assert_eq!(parsed, vc.case);
        assert_eq!(removed, vc.removed);
        assert_eq!(kind, ViolationKind::TraceDivergence);
        assert!(parse_corpus_case("not a corpus file").is_err());
    }

    #[test]
    fn classify_maps_errors_to_classes() {
        assert_eq!(classify(Ok(7)), Outcome::Ok { cycles: 7 });
        assert_eq!(
            classify(Err(SimError::RanOffEnd)),
            Outcome::Fault("ran_off_end")
        );
        assert_eq!(
            classify(Err(SimError::StepLimit {
                limit: 1,
                snapshot: None
            })),
            Outcome::Timeout
        );
        assert!(matches!(
            classify(Err(SimError::Invalid {
                message: "x".into()
            })),
            Outcome::Reject(_)
        ));
    }

    #[test]
    fn unmutated_table2_seed_runs_clean() {
        for generation in [Generation::Fermi, Generation::Kepler] {
            let seed = SeedSpec::Table2(0).build(generation).unwrap();
            let func = engine(|| run_func(&seed.kernel, seed.config, None, generation));
            let gpu = gpu_config_for(generation);
            let timing = engine(|| run_timing(&seed.kernel, seed.config, None, &gpu, false));
            let traced = engine(|| run_timing(&seed.kernel, seed.config, None, &gpu, true));
            assert_eq!(func, Outcome::Ok { cycles: 0 });
            assert!(matches!(timing, Outcome::Ok { .. }), "{timing}");
            assert_eq!(traced, timing);
            assert_eq!(judge(&func, &timing, &traced), None);
            assert_eq!(round_trip_violation(&seed.kernel, generation), None);
        }
    }

    #[test]
    fn judge_flags_the_three_violation_kinds() {
        let ok = Outcome::Ok { cycles: 5 };
        let fault = Outcome::Fault("out_of_bounds");
        let panic = Outcome::Panic("boom".into());
        assert_eq!(
            judge(&ok, &ok, &ok).map(|v| v.kind),
            None,
            "agreement is clean"
        );
        assert_eq!(
            judge(&panic, &ok, &ok).map(|v| v.kind),
            Some(ViolationKind::Panic)
        );
        assert_eq!(
            judge(&ok, &ok, &Outcome::Ok { cycles: 6 }).map(|v| v.kind),
            Some(ViolationKind::TraceDivergence)
        );
        assert_eq!(
            judge(&ok, &fault, &fault).map(|v| v.kind),
            Some(ViolationKind::FuncTimingDisagree)
        );
        // Timeouts are inconclusive, and fault subclasses may differ.
        assert_eq!(judge(&Outcome::Timeout, &ok, &ok), None);
        assert_eq!(
            judge(&Outcome::Fault("misaligned"), &fault, &fault),
            None,
            "coarse fault agreement is enough"
        );
    }

    #[test]
    fn campaign_is_deterministic_and_json_renders() {
        let cfg = CampaignConfig {
            seed: 7,
            iters: 6,
            generations: vec![Generation::Fermi, Generation::Kepler],
        };
        let a = campaign_cases(&cfg);
        let b = campaign_cases(&cfg);
        assert_eq!(a, b);
        let result = run_campaign(&cfg);
        assert_eq!(result.cases, 6);
        assert_eq!(result.tally.panic, 0, "mutants must never panic");
        let json = campaign_json(&cfg, &result, 12.0);
        assert!(json.contains("\"schema\": \"peakperf-fuzz-v1\""));
        assert!(json.contains("\"gpu\": [\"fermi\", \"kepler\"]"));
        assert!(json.contains("\"generated_by\": \"peakperf-bench"));
        assert!(json.contains("\"outcomes\""));
        let text = render_campaign(&cfg, &result);
        assert!(text.contains("Fuzz campaign"));
    }
}
