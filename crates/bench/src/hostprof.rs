//! The `reproduce hostprof` subcommand: profile the *simulator itself*.
//!
//! Where `reproduce profile` decomposes the simulated GPU's bound-vs-
//! achieved gap, this module runs the same named targets under a
//! [`HostProf`] probe (see `peakperf_sim::perfmon`) and reports where the
//! *host* wall time goes and how much of the simulated cycle stream an
//! optimized engine could skip:
//!
//! * per-[`Phase`] wall-time shares of the scheduler loop;
//! * idle-cycle run-length histograms by dominant [`StallKind`] — the
//!   event-driven fast-forward headroom;
//! * a steady-state loop-periodicity fingerprint — the memoized-replay
//!   headroom;
//! * the combined projected speedup, which is what ROADMAP Open item 1's
//!   ≥10× target is measured against.
//!
//! Probed runs always simulate (a cache hit has nothing to observe), and
//! they run without a trace sink, so the `trace_emit` share is zero here
//! by construction; attach `--trace-out` to `reproduce profile` to price
//! tracing itself.

use std::fmt::Write as _;

use peakperf_sim::perfmon::{HostProf, Opportunity, Phase};
use peakperf_sim::timing::{NoopSink, StallKind, TimingSim};
use peakperf_sim::SimError;

use crate::profiling::{self, PreparedTarget};
use crate::report::{envelope_json, json_f64};

/// The result of host-profiling one target.
#[derive(Debug, Clone)]
pub struct HostProfOutcome {
    /// The GPU the target ran on (for the document envelope).
    pub gpu: &'static str,
    /// Human-readable summary.
    pub text: String,
    /// `peakperf-hostprof-v1` JSON object for this target.
    pub json: String,
}

/// Every target `reproduce hostprof` accepts — the same named set as
/// `reproduce profile`, so the two reports line up target for target.
pub fn targets() -> &'static [profiling::ProfileTarget] {
    &profiling::TARGETS
}

/// Run one named target under the host profiler.
///
/// # Errors
///
/// Unknown target names and simulation failures.
pub fn run_target(name: &str) -> Result<HostProfOutcome, SimError> {
    let mut prepared: PreparedTarget = profiling::prepare(name)?;
    let mut sim = TimingSim::new(
        &prepared.gpu,
        &prepared.kernel,
        prepared.config,
        &prepared.params,
        prepared.resident,
    )?;
    let mut probe = HostProf::new();
    let report = sim.run_probed(&mut prepared.memory, &mut NoopSink, &mut probe)?;
    if peakperf_sim::perfmon::enabled() {
        peakperf_sim::perfmon::counter_add("hostprof.targets", 1);
        peakperf_sim::perfmon::counter_add("hostprof.simulated_cycles", report.cycles);
        peakperf_sim::perfmon::counter_add("hostprof.probe_wall_ns", probe.total_nanos());
    }
    let opp = probe.analyze();
    let text = render_text(name, prepared.gpu.name, &probe, &opp, &report);
    let json = render_json(name, prepared.gpu.name, &probe, &opp, &report);
    Ok(HostProfOutcome {
        gpu: prepared.gpu.name,
        text,
        json,
    })
}

/// Phases sorted by recorded wall time, largest first.
fn phases_by_weight(probe: &HostProf) -> Vec<(Phase, u64)> {
    let mut phases: Vec<(Phase, u64)> = Phase::ALL
        .into_iter()
        .map(|p| (p, probe.phase_nanos(p)))
        .collect();
    phases.sort_by_key(|&(_, nanos)| std::cmp::Reverse(nanos));
    phases
}

fn render_text(
    name: &str,
    gpu: &str,
    probe: &HostProf,
    opp: &Opportunity,
    report: &peakperf_sim::timing::TimingReport,
) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "== hostprof: {name} ({gpu}) ==");
    let total_ms = probe.total_nanos() as f64 / 1e6;
    let _ = writeln!(
        out,
        "simulated {} cycles ({} warp insts) in {total_ms:.1} ms host wall \
         ({:.0} cycles/sec)",
        report.cycles,
        report.warp_instructions,
        report.cycles as f64 / (probe.total_nanos().max(1) as f64 / 1e9),
    );
    let _ = writeln!(out, "wall-time attribution:");
    for (phase, nanos) in phases_by_weight(probe) {
        if nanos == 0 {
            continue;
        }
        let _ = writeln!(
            out,
            "  {:<16} {:>9.1} ms  ({:.1}%)",
            phase.as_str(),
            nanos as f64 / 1e6,
            100.0 * nanos as f64 / probe.total_nanos().max(1) as f64
        );
    }
    let _ = writeln!(
        out,
        "idle cycles: {} of {} ({:.1}%) in {} runs; event-skippable: {}",
        opp.idle_cycles,
        opp.cycles,
        100.0 * opp.idle_cycles as f64 / opp.cycles.max(1) as f64,
        opp.idle_runs,
        opp.idle_skippable,
    );
    let mut kinds: Vec<String> = Vec::new();
    for kind in StallKind::ALL {
        let h = probe.idle_histogram(Some(kind));
        if !h.is_empty() {
            kinds.push(format!(
                "{} {} runs/{} cycles",
                kind.as_str(),
                h.count(),
                h.sum()
            ));
        }
    }
    let unattr = probe.idle_histogram(None);
    if !unattr.is_empty() {
        kinds.push(format!(
            "unattributed {} runs/{} cycles",
            unattr.count(),
            unattr.sum()
        ));
    }
    if !kinds.is_empty() {
        let _ = writeln!(out, "idle runs by dominant cause: {}", kinds.join(", "));
    }
    match opp.periodicity {
        Some(p) => {
            let _ = writeln!(
                out,
                "steady-state period: {} cycles (longest run {}, replay could cover {})",
                p.period, p.longest_run, p.replay_covered
            );
        }
        None => {
            let _ = writeln!(out, "steady-state period: none detected");
        }
    }
    let _ = writeln!(
        out,
        "projected speedup: idle-skip {:.2}x, replay {:.2}x, combined {:.2}x",
        opp.idle_skip_speedup(),
        opp.replay_speedup(),
        opp.combined_speedup()
    );
    out
}

fn histogram_json(h: &peakperf_sim::perfmon::Histogram) -> String {
    let mut out = String::from("[");
    for (i, (lo, hi, count)) in h.iter_nonzero().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(out, "{{\"lo\": {lo}, \"hi\": {hi}, \"count\": {count}}}");
    }
    out.push(']');
    out
}

fn render_json(
    name: &str,
    gpu: &str,
    probe: &HostProf,
    opp: &Opportunity,
    report: &peakperf_sim::timing::TimingReport,
) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"target\": \"{name}\",");
    let _ = writeln!(out, "  \"gpu\": \"{gpu}\",");
    let _ = writeln!(out, "  \"cycles\": {},", report.cycles);
    let _ = writeln!(
        out,
        "  \"warp_instructions\": {},",
        report.warp_instructions
    );
    // Wall-clock values are volatile run to run; each lives on a line
    // containing `wall_ms` so report diffing can strip them wholesale
    // (the same convention as every other document in this crate). The
    // per-phase entries carry their (equally volatile) shares on the same
    // line for that reason.
    let _ = writeln!(
        out,
        "  \"wall_ms\": {},",
        json_f64(probe.total_nanos() as f64 / 1e6)
    );
    out.push_str("  \"phases\": [\n");
    let total = probe.total_nanos().max(1) as f64;
    for (i, phase) in Phase::ALL.into_iter().enumerate() {
        let nanos = probe.phase_nanos(phase);
        let _ = write!(
            out,
            "    {{\"phase\": \"{}\", \"wall_ms\": {}, \"share\": {}}}",
            phase.as_str(),
            json_f64(nanos as f64 / 1e6),
            json_f64(nanos as f64 / total),
        );
        out.push_str(if i + 1 < Phase::COUNT { ",\n" } else { "\n" });
    }
    out.push_str("  ],\n");
    out.push_str("  \"idle\": {\n");
    let _ = writeln!(out, "    \"idle_cycles\": {},", opp.idle_cycles);
    let _ = writeln!(out, "    \"idle_runs\": {},", opp.idle_runs);
    let _ = writeln!(out, "    \"skippable_cycles\": {},", opp.idle_skippable);
    out.push_str("    \"run_length_histograms\": {\n");
    for kind in StallKind::ALL {
        let _ = writeln!(
            out,
            "      \"{}\": {},",
            kind.as_str(),
            histogram_json(probe.idle_histogram(Some(kind)))
        );
    }
    let _ = writeln!(
        out,
        "      \"unattributed\": {}",
        histogram_json(probe.idle_histogram(None))
    );
    out.push_str("    }\n  },\n");
    out.push_str("  \"periodicity\": {\n");
    match opp.periodicity {
        Some(p) => {
            let _ = writeln!(out, "    \"period\": {},", p.period);
            let _ = writeln!(out, "    \"matched\": {},", p.matched);
            let _ = writeln!(out, "    \"longest_run\": {},", p.longest_run);
        }
        None => {
            out.push_str("    \"period\": null,\n");
            out.push_str("    \"matched\": 0,\n");
            out.push_str("    \"longest_run\": 0,\n");
        }
    }
    let _ = writeln!(out, "    \"replay_covered\": {},", opp.replay_covered);
    let _ = writeln!(out, "    \"fingerprinted_cycles\": {},", opp.fingerprinted);
    let _ = writeln!(
        out,
        "    \"fingerprints_dropped\": {}",
        opp.fingerprints_dropped
    );
    out.push_str("  },\n");
    out.push_str("  \"projection\": {\n");
    let _ = writeln!(
        out,
        "    \"idle_skip_speedup\": {},",
        json_f64(opp.idle_skip_speedup())
    );
    let _ = writeln!(
        out,
        "    \"replay_speedup\": {},",
        json_f64(opp.replay_speedup())
    );
    let _ = writeln!(
        out,
        "    \"combined_speedup\": {}",
        json_f64(opp.combined_speedup())
    );
    out.push_str("  }\n}");
    out
}

/// Wrap rendered target objects into the `peakperf-hostprof-v1` document
/// written by `reproduce hostprof --json` (validated in CI against
/// `scripts/hostprof_schema.json`). `gpus` lists the GPUs the profiled
/// targets ran on, for the shared document envelope.
pub fn hostprof_document(targets: &[String], gpus: &[&str]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&envelope_json("peakperf-hostprof-v1", gpus));
    out.push_str("  \"phases\": [");
    for (i, phase) in Phase::ALL.into_iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(out, "\"{}\"", phase.as_str());
    }
    out.push_str("],\n  \"targets\": [");
    for (i, t) in targets.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('\n');
        // Indent the nested target object under the array.
        for (j, line) in t.trim_end().lines().enumerate() {
            if j > 0 {
                out.push('\n');
            }
            out.push_str("    ");
            out.push_str(line);
        }
    }
    out.push_str("\n  ]\n}\n");
    out
}

/// Render the current perfmon registry as a `peakperf-metrics-v1`
/// document (written by `reproduce ... --metrics-out`). Counter names
/// ending in `_ns` are wall-time totals and therefore volatile run to
/// run; everything else is deterministic for a fixed invocation.
pub fn metrics_document(gpus: &[&str]) -> String {
    let snap = peakperf_sim::perfmon::snapshot();
    let mut out = String::from("{\n");
    out.push_str(&envelope_json("peakperf-metrics-v1", gpus));
    out.push_str("  \"counters\": ");
    out.push_str(&snap.to_json_object("  "));
    out.push_str("\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metrics_document_is_balanced() {
        let doc = metrics_document(&["GTX580"]);
        assert!(doc.contains("peakperf-metrics-v1"));
        assert!(doc.contains("\"counters\""));
        assert_eq!(doc.matches('{').count(), doc.matches('}').count());
    }

    #[test]
    fn unknown_target_is_rejected() {
        let err = run_target("nonesuch").unwrap_err();
        assert!(err.to_string().contains("unknown profile target"));
    }

    #[test]
    fn fermi_ffma_hostprof_is_coherent() {
        let outcome = run_target("fermi_ffma").unwrap();
        assert_eq!(outcome.gpu, "GTX580");
        assert!(outcome.text.contains("== hostprof: fermi_ffma (GTX580) =="));
        assert!(outcome.text.contains("projected speedup"));
        assert_eq!(
            outcome.json.matches('{').count(),
            outcome.json.matches('}').count()
        );
        for phase in Phase::ALL {
            assert!(
                outcome
                    .json
                    .contains(&format!("\"phase\": \"{}\"", phase.as_str())),
                "missing phase {}",
                phase.as_str()
            );
        }
        // No trace sink attached, so trace emission cost nothing.
        assert!(outcome
            .json
            .contains("{\"phase\": \"trace_emit\", \"wall_ms\": 0.000, \"share\": 0.000}"));
        assert!(outcome.json.contains("\"combined_speedup\""));
    }

    #[test]
    fn hostprof_document_is_balanced() {
        let doc = hostprof_document(&["{\"target\": \"t\"}".to_owned()], &["GTX680"]);
        assert!(doc.contains("peakperf-hostprof-v1"));
        assert!(doc.contains("\"generated_by\": \"peakperf-bench"));
        assert!(doc.contains("\"issue_select\""));
        assert_eq!(doc.matches('{').count(), doc.matches('}').count());
    }
}
