//! Continuous performance telemetry: the `reproduce bench` suite,
//! baselines, and regression gates.
//!
//! The paper's whole method is holding *measured* numbers against
//! *modeled* bounds; this module does the same to the repository itself.
//! [`run_suite`] executes a fixed benchmark suite — every Table-2
//! microbenchmark row plus the assembly-optimized SGEMM in all four
//! transpose variants on both GPUs — and records two kinds of telemetry
//! per row:
//!
//! * **harness performance** — wall time, simulated cycles/sec and
//!   warp-instructions/sec, executor utilization, and timing-cache
//!   hit rate, attributed per row by the executor-boundary counter
//!   scopes ([`peakperf_sim::with_counter_scope`]);
//! * **model accuracy** — the simulated throughput against the paper's
//!   measured value, the percent error, and the per-[`StallKind`]
//!   stall-cycle decomposition from the PR-2 profiler's attribution
//!   sites.
//!
//! The whole run renders as a versioned `peakperf-bench-v1` JSON
//! document. Checked-in documents under `bench/baselines/` are the
//! repository's performance memory: [`compare`] diffs a fresh run
//! against one and classifies every metric as improved / unchanged /
//! regressed, with two distinct rules — **accuracy drift is always an
//! error** (a drift in either direction means the model changed and the
//! baseline must be consciously re-recorded), while **wall-time metrics
//! carry a noise band** so machine jitter does not gate. The `reproduce
//! bench --compare` exit code reflects the gate, which is what CI runs
//! on every push.
//!
//! Volatile (machine/load-dependent) fields are kept on their own JSON
//! lines and named `wall_ms` / `*_per_sec` / `utilization`, so tooling
//! (and the determinism self-test) can strip them and compare the rest
//! byte for byte.

use std::fmt::Write as _;
use std::time::{Duration, Instant};

use peakperf_arch::GpuConfig;
use peakperf_bound::paper_reference;
use peakperf_kernels::microbench::math::{table2_patterns, MathPattern};
use peakperf_kernels::sgemm::{Preset, Variant};
use peakperf_sim::perfmon::MetricsSnapshot;
use peakperf_sim::timing::StallKind;
use peakperf_sim::{Counters, SimError};

use crate::exec::{Executor, JobStats};
use crate::experiments::{sgemm_gflops, Speed, TABLE2_PAPER};
use crate::json::Json;
use crate::perf::counters_json;
use crate::report::{envelope_json, json_f64, json_string, Table, PAPER_GPUS};

/// Matrix size for the SGEMM bench rows: a common multiple of the Fermi
/// (96) and Kepler (64) tile sizes, the same steady-state-but-interactive
/// size the profiling targets use.
pub const SGEMM_BENCH_SIZE: u32 = 576;

/// The schema identifier of the bench document.
pub const BENCH_SCHEMA: &str = "peakperf-bench-v1";

/// The schema identifier of the comparison document.
pub const COMPARE_SCHEMA: &str = "peakperf-bench-compare-v1";

// ---------------------------------------------------------------------
// Suite definition
// ---------------------------------------------------------------------

/// One row of the fixed suite.
#[derive(Debug, Clone)]
enum RowSpec {
    /// A Table-2 math-throughput pattern on the Kepler GPU.
    Table2 { index: usize, pattern: MathPattern },
    /// The assembly-optimized SGEMM, one transpose variant on one GPU.
    Sgemm { fermi: bool, variant: Variant },
}

impl RowSpec {
    fn id(&self) -> String {
        match self {
            RowSpec::Table2 { pattern, .. } => format!("table2/{}", slug(&pattern.label())),
            RowSpec::Sgemm { fermi, variant } => format!(
                "sgemm/{}/{}",
                if *fermi { "gtx580" } else { "gtx680" },
                variant.name().to_ascii_lowercase()
            ),
        }
    }
}

/// `"FFMA R0, R1, R4, R5"` → `"ffma_r0_r1_r4_r5"`.
fn slug(label: &str) -> String {
    let mut out = String::with_capacity(label.len());
    let mut last_sep = true;
    for c in label.chars() {
        if c.is_ascii_alphanumeric() {
            out.push(c.to_ascii_lowercase());
            last_sep = false;
        } else if !last_sep {
            out.push('_');
            last_sep = true;
        }
    }
    while out.ends_with('_') {
        out.pop();
    }
    out
}

/// The full fixed suite, in document order: the 20 Table-2 rows, then
/// SGEMM NN/NT/TN/TT on GTX580 and GTX680.
fn suite() -> Vec<RowSpec> {
    let mut specs: Vec<RowSpec> = table2_patterns()
        .into_iter()
        .enumerate()
        .map(|(index, pattern)| RowSpec::Table2 { index, pattern })
        .collect();
    for fermi in [true, false] {
        for variant in Variant::ALL {
            specs.push(RowSpec::Sgemm { fermi, variant });
        }
    }
    specs
}

// ---------------------------------------------------------------------
// Running the suite
// ---------------------------------------------------------------------

/// One measured suite row.
#[derive(Debug, Clone)]
pub struct BenchRow {
    /// Stable row identifier (`table2/...` or `sgemm/<gpu>/<variant>`).
    pub id: String,
    /// Row family: `table2` or `sgemm`.
    pub kind: &'static str,
    /// GPU the row ran on.
    pub gpu: &'static str,
    /// Human-readable label (the paper's row notation).
    pub label: String,
    /// Unit of `simulated` and `paper`.
    pub unit: &'static str,
    /// Simulated throughput.
    pub simulated: f64,
    /// The paper's measured value for the same row.
    pub paper: f64,
    /// Wall time of the row's simulation (volatile).
    pub wall: Duration,
    /// Simulation-counter growth attributable to this row alone.
    pub counters: Counters,
}

impl BenchRow {
    /// Signed percent error of the simulated value vs the paper.
    pub fn pct_error(&self) -> f64 {
        100.0 * (self.simulated - self.paper) / self.paper
    }

    /// Fraction of this row's stall cycles attributed to `kind`.
    pub fn stall_share(&self, kind: StallKind) -> f64 {
        let total = self.counters.stalled_cycles();
        if total == 0 {
            0.0
        } else {
            self.counters.stall_cycles[kind.index()] as f64 / total as f64
        }
    }
}

/// A whole suite run.
#[derive(Debug, Clone)]
pub struct BenchReport {
    /// Worker threads used.
    pub workers: usize,
    /// Whether the timing cache was enabled.
    pub cache_enabled: bool,
    /// Rows, in suite order.
    pub rows: Vec<BenchRow>,
    /// Wall time of the whole suite (volatile).
    pub wall: Duration,
    /// Executor job statistics over the suite.
    pub jobs: JobStats,
    /// Perfmon registry growth over the suite, when the registry was
    /// enabled (`--metrics-out`); `None` otherwise, and the JSON document
    /// is byte-identical to one from a build without perfmon.
    pub perfmon: Option<MetricsSnapshot>,
}

impl BenchReport {
    /// Summed counters over all rows.
    pub fn totals(&self) -> Counters {
        let mut t = Counters::default();
        for row in &self.rows {
            t.accumulate(&row.counters);
        }
        t
    }

    /// Timing-cache hit rate over the suite (0 when no lookups happened).
    pub fn cache_hit_rate(&self) -> f64 {
        let t = self.totals();
        let lookups = t.cache_hits + t.cache_misses;
        if lookups == 0 {
            0.0
        } else {
            t.cache_hits as f64 / lookups as f64
        }
    }

    /// Timing-cache hit rate as the perfmon registry saw it: `hits /
    /// lookups` from the `timing_cache.*` counters. `None` when perfmon
    /// was off or no lookup was instrumented. Cross-checks
    /// [`BenchReport::cache_hit_rate`], which derives the same ratio from
    /// the independent simulation-counter path.
    pub fn perfmon_cache_hit_rate(&self) -> Option<f64> {
        let pm = self.perfmon.as_ref()?;
        let lookups = pm.get("timing_cache.lookups");
        if lookups == 0 {
            None
        } else {
            Some(pm.get("timing_cache.hits") as f64 / lookups as f64)
        }
    }

    /// Mean absolute percent error across rows.
    pub fn mean_abs_pct_error(&self) -> f64 {
        if self.rows.is_empty() {
            return 0.0;
        }
        self.rows.iter().map(|r| r.pct_error().abs()).sum::<f64>() / self.rows.len() as f64
    }

    /// Worst absolute percent error across rows.
    pub fn max_abs_pct_error(&self) -> f64 {
        self.rows
            .iter()
            .map(|r| r.pct_error().abs())
            .fold(0.0, f64::max)
    }

    /// Executor thread utilization: summed job busy time over
    /// `workers × wall` (volatile).
    pub fn utilization(&self) -> f64 {
        let capacity = self.wall.as_secs_f64() * self.workers.max(1) as f64;
        if capacity <= 0.0 {
            0.0
        } else {
            (self.jobs.busy_nanos as f64 / 1e9) / capacity
        }
    }

    fn per_sec(n: u64, wall: Duration) -> f64 {
        let secs = wall.as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            n as f64 / secs
        }
    }

    /// Render the human-readable scorecard.
    pub fn render_text(&self) -> String {
        let mut t = Table::new(
            format!(
                "Benchmark telemetry — model accuracy ({} rows)",
                self.rows.len()
            ),
            &["row", "unit", "simulated", "paper", "error", "top stall"],
        );
        for row in &self.rows {
            let top = StallKind::ALL
                .into_iter()
                .max_by(|a, b| row.stall_share(*a).total_cmp(&row.stall_share(*b)))
                .filter(|k| row.stall_share(*k) > 0.0);
            t.row(vec![
                row.id.clone(),
                row.unit.to_owned(),
                format!("{:.1}", row.simulated),
                format!("{:.1}", row.paper),
                format!("{:+.1}%", row.pct_error()),
                match top {
                    Some(k) => format!("{} {:.0}%", k.as_str(), 100.0 * row.stall_share(k)),
                    None => "-".to_owned(),
                },
            ]);
        }
        let mut out = t.render();
        let totals = self.totals();
        let _ = writeln!(
            out,
            "\naccuracy: mean |err| {:.2}%, max |err| {:.2}% over {} rows",
            self.mean_abs_pct_error(),
            self.max_abs_pct_error(),
            self.rows.len()
        );
        let _ = writeln!(
            out,
            "harness:  {:.1} ms wall, {} workers at {:.0}% utilization, \
             {:.2} Mcycles/s, {:.2} Minsts/s, cache hit rate {:.1}%",
            self.wall.as_secs_f64() * 1e3,
            self.workers,
            100.0 * self.utilization(),
            Self::per_sec(totals.sim_cycles, self.wall) / 1e6,
            Self::per_sec(totals.warp_instructions, self.wall) / 1e6,
            100.0 * self.cache_hit_rate(),
        );
        if let Some(pm) = &self.perfmon {
            let cross = match self.perfmon_cache_hit_rate() {
                Some(rate) => format!(
                    "cache {} lookups at {:.1}% hits (counter path: {:.1}%)",
                    pm.get("timing_cache.lookups"),
                    100.0 * rate,
                    100.0 * self.cache_hit_rate(),
                ),
                None => "no instrumented cache lookups".to_owned(),
            };
            let _ = writeln!(
                out,
                "perfmon:  {cross}, {} stores, queue wait {:.1} ms over {} jobs",
                pm.get("timing_cache.stores"),
                pm.get("executor.queue_wait_ns") as f64 / 1e6,
                pm.get("executor.jobs"),
            );
        }
        out
    }

    /// Render the `peakperf-bench-v1` document.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&envelope_json(BENCH_SCHEMA, &PAPER_GPUS));
        let _ = writeln!(out, "  \"workers\": {},", self.workers);
        let _ = writeln!(out, "  \"cache_enabled\": {},", self.cache_enabled);
        let _ = writeln!(
            out,
            "  \"wall_ms\": {},",
            json_f64(self.wall.as_secs_f64() * 1e3)
        );
        let _ = writeln!(out, "  \"utilization\": {},", json_f64(self.utilization()));
        let totals = self.totals();
        let _ = writeln!(
            out,
            "  \"cycles_per_sec\": {},",
            json_f64(Self::per_sec(totals.sim_cycles, self.wall))
        );
        let _ = writeln!(
            out,
            "  \"insts_per_sec\": {},",
            json_f64(Self::per_sec(totals.warp_instructions, self.wall))
        );
        let _ = writeln!(
            out,
            "  \"cache_hit_rate\": {},",
            json_f64(self.cache_hit_rate())
        );
        if let Some(pm) = &self.perfmon {
            // Wall-time counters (`*_ns`) render as `*_wall_ms` so they sit
            // under the same volatile-field naming rule as everything else;
            // plain counts are deterministic and keep their registry names.
            out.push_str("  \"perfmon\": {");
            for (i, (name, value)) in pm.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                match name.strip_suffix("_ns") {
                    Some(prefix) => {
                        let _ = write!(
                            out,
                            "\n    \"{}_wall_ms\": {}",
                            prefix,
                            json_f64(value as f64 / 1e6)
                        );
                    }
                    None => {
                        let _ = write!(out, "\n    \"{name}\": {value}");
                    }
                }
            }
            out.push_str("\n  },\n");
        }
        let _ = writeln!(
            out,
            "  \"accuracy\": {{\"rows\": {}, \"mean_abs_pct_error\": {}, \
             \"max_abs_pct_error\": {}}},",
            self.rows.len(),
            json_f64(self.mean_abs_pct_error()),
            json_f64(self.max_abs_pct_error())
        );
        let _ = writeln!(out, "  \"totals\": {},", counters_json(&totals, "  "));
        out.push_str("  \"rows\": [");
        for (i, row) in self.rows.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {\n");
            let _ = writeln!(out, "      \"id\": {},", json_string(&row.id));
            let _ = writeln!(out, "      \"kind\": {},", json_string(row.kind));
            let _ = writeln!(out, "      \"gpu\": {},", json_string(row.gpu));
            let _ = writeln!(out, "      \"label\": {},", json_string(&row.label));
            let _ = writeln!(out, "      \"unit\": {},", json_string(row.unit));
            let _ = writeln!(out, "      \"simulated\": {},", json_f64(row.simulated));
            let _ = writeln!(out, "      \"paper\": {},", json_f64(row.paper));
            let _ = writeln!(out, "      \"pct_error\": {},", json_f64(row.pct_error()));
            let _ = writeln!(
                out,
                "      \"wall_ms\": {},",
                json_f64(row.wall.as_secs_f64() * 1e3)
            );
            let _ = writeln!(
                out,
                "      \"cycles_per_sec\": {},",
                json_f64(Self::per_sec(row.counters.sim_cycles, row.wall))
            );
            let _ = writeln!(
                out,
                "      \"insts_per_sec\": {},",
                json_f64(Self::per_sec(row.counters.warp_instructions, row.wall))
            );
            let _ = writeln!(
                out,
                "      \"counters\": {},",
                counters_json(&row.counters, "      ")
            );
            let shares: Vec<String> = StallKind::ALL
                .into_iter()
                .map(|k| format!("\"{}\": {}", k.as_str(), json_f64(row.stall_share(k))))
                .collect();
            let _ = writeln!(out, "      \"stall_share\": {{{}}}", shares.join(", "));
            out.push_str("    }");
        }
        out.push_str("\n  ]\n}\n");
        out
    }
}

fn run_row(spec: &RowSpec) -> Result<(BenchRow, Duration), SimError> {
    let t0 = Instant::now();
    let (gpu, kind, label, unit, simulated, paper) = match spec {
        RowSpec::Table2 { index, pattern } => {
            let gpu = GpuConfig::gtx680();
            let measured = peakperf_kernels::microbench::math::measure_math(&gpu, pattern)?;
            (
                gpu.name,
                "table2",
                pattern.label(),
                "thread-insts/cycle/SM",
                measured.throughput,
                TABLE2_PAPER[*index],
            )
        }
        RowSpec::Sgemm { fermi, variant } => {
            let gpu = if *fermi {
                GpuConfig::gtx580()
            } else {
                GpuConfig::gtx680()
            };
            let gflops = sgemm_gflops(
                &gpu,
                *variant,
                Preset::AsmOpt,
                SGEMM_BENCH_SIZE,
                Speed::Full,
            )?;
            // The paper reports per-GPU achieved GFLOPS for the asm
            // kernel (Section 5); Figure 5 shows the four variants within
            // a few percent of each other, so the NN headline is the
            // reference for every variant.
            let paper = paper_reference(gpu.generation).achieved_gflops();
            (
                gpu.name,
                "sgemm",
                format!("asm {} @ {}", variant.name(), SGEMM_BENCH_SIZE),
                "GFLOPS",
                gflops,
                paper,
            )
        }
    };
    Ok((
        BenchRow {
            id: spec.id(),
            kind,
            gpu,
            label,
            unit,
            simulated,
            paper,
            wall: Duration::ZERO,          // patched in below with the job wall
            counters: Counters::default(), // patched with the scoped delta
        },
        t0.elapsed(),
    ))
}

/// Run the suite rows whose id starts with `filter` (all rows when
/// `None`), fanning the rows out over the executor with per-row counter
/// attribution.
///
/// # Errors
///
/// The first failing row, by suite order; an empty selection.
pub fn run_suite_filtered(filter: Option<&str>) -> Result<BenchReport, SimError> {
    let specs: Vec<RowSpec> = suite()
        .into_iter()
        .filter(|s| filter.is_none_or(|f| s.id().starts_with(f)))
        .collect();
    if specs.is_empty() {
        return Err(SimError::Invalid {
            message: format!(
                "bench filter `{}` matches no suite row",
                filter.unwrap_or_default()
            ),
        });
    }
    let executor = Executor::auto();
    let jobs_before = JobStats::snapshot();
    let perf_before = peakperf_sim::perfmon::enabled().then(peakperf_sim::perfmon::snapshot);
    let t0 = Instant::now();
    let results = executor.try_map_scoped(&specs, run_row)?;
    let wall = t0.elapsed();
    let jobs = JobStats::snapshot().delta_since(&jobs_before);
    let perfmon = perf_before.map(|before| peakperf_sim::perfmon::snapshot().delta_since(&before));
    let rows = results
        .into_iter()
        .map(|((mut row, row_wall), counters)| {
            row.wall = row_wall;
            row.counters = counters;
            row
        })
        .collect();
    Ok(BenchReport {
        workers: executor.workers(),
        cache_enabled: peakperf_sim::timing::cache::global_enabled(),
        rows,
        wall,
        jobs,
        perfmon,
    })
}

/// Run the full fixed suite.
///
/// # Errors
///
/// The first failing row, by suite order.
pub fn run_suite() -> Result<BenchReport, SimError> {
    run_suite_filtered(None)
}

// ---------------------------------------------------------------------
// Baseline comparison
// ---------------------------------------------------------------------

/// Comparison thresholds.
#[derive(Debug, Clone, Copy)]
pub struct CompareConfig {
    /// Relative noise band for wall-time-derived metrics: a change of at
    /// most `wall_band` (e.g. `0.3` = ±30 %) classifies as unchanged.
    pub wall_band: f64,
    /// Accuracy band in percentage points of model error: a row's
    /// percent error moving more than this is drift — **always** a gate
    /// failure, in either direction.
    pub acc_band: f64,
}

impl Default for CompareConfig {
    fn default() -> CompareConfig {
        CompareConfig {
            wall_band: 0.30,
            acc_band: 0.5,
        }
    }
}

/// Classification of one compared metric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricClass {
    /// Better than baseline (beyond the band).
    Improved,
    /// Within the band.
    Unchanged,
    /// Worse than baseline (beyond the band).
    Regressed,
    /// Present now, absent from the baseline.
    New,
    /// Present in the baseline, absent now (coverage loss).
    Removed,
}

impl MetricClass {
    /// Lower-case label used in both renderings.
    pub fn as_str(self) -> &'static str {
        match self {
            MetricClass::Improved => "improved",
            MetricClass::Unchanged => "unchanged",
            MetricClass::Regressed => "regressed",
            MetricClass::New => "new",
            MetricClass::Removed => "removed",
        }
    }
}

/// One compared metric.
#[derive(Debug, Clone)]
pub struct MetricDelta {
    /// Metric name (`<row-id> <metric>` or `suite <metric>`).
    pub metric: String,
    /// Baseline value (absent for [`MetricClass::New`]).
    pub baseline: Option<f64>,
    /// Current value (absent for [`MetricClass::Removed`]).
    pub current: Option<f64>,
    /// Classification under the configured bands.
    pub class: MetricClass,
    /// Whether this metric counts toward the gate (exit code).
    pub gate: bool,
}

/// The whole comparison.
#[derive(Debug, Clone)]
pub struct Comparison {
    /// The thresholds used.
    pub config: CompareConfig,
    /// Every compared metric, suite metrics first, then rows in suite
    /// order.
    pub deltas: Vec<MetricDelta>,
}

impl Comparison {
    /// Metrics that fail the gate.
    pub fn failures(&self) -> Vec<&MetricDelta> {
        self.deltas.iter().filter(|d| d.gate).collect()
    }

    fn count(&self, class: MetricClass) -> usize {
        self.deltas.iter().filter(|d| d.class == class).count()
    }

    /// Human-readable comparison: all suite metrics plus every non-
    /// unchanged row metric.
    pub fn render_text(&self) -> String {
        let mut t = Table::new(
            "Benchmark comparison vs baseline",
            &["metric", "baseline", "current", "delta", "class"],
        );
        let fmt = |v: Option<f64>| v.map_or("-".to_owned(), |v| format!("{v:.3}"));
        for d in &self.deltas {
            let interesting = d.class != MetricClass::Unchanged || d.metric.starts_with("suite ");
            if !interesting {
                continue;
            }
            let delta = match (d.baseline, d.current) {
                (Some(b), Some(c)) if b != 0.0 => format!("{:+.1}%", 100.0 * (c - b) / b),
                (Some(b), Some(c)) => format!("{:+.3}", c - b),
                _ => "-".to_owned(),
            };
            let class = if d.gate {
                format!("{} (GATE)", d.class.as_str())
            } else {
                d.class.as_str().to_owned()
            };
            t.row(vec![
                d.metric.clone(),
                fmt(d.baseline),
                fmt(d.current),
                delta,
                class,
            ]);
        }
        let mut out = t.render();
        let failures = self.failures();
        let _ = writeln!(
            out,
            "\n{} metric(s): {} improved, {} unchanged, {} regressed, {} new, {} removed \
             — gate {}",
            self.deltas.len(),
            self.count(MetricClass::Improved),
            self.count(MetricClass::Unchanged),
            self.count(MetricClass::Regressed),
            self.count(MetricClass::New),
            self.count(MetricClass::Removed),
            if failures.is_empty() {
                "PASS".to_owned()
            } else {
                format!("FAIL ({} violation(s))", failures.len())
            }
        );
        if !failures.is_empty() {
            for d in &failures {
                let _ = writeln!(out, "  GATE {} ({})", d.metric, d.class.as_str());
            }
            let _ = writeln!(
                out,
                "accuracy drift means the model changed: re-record the baseline \
                 (`reproduce bench --json <baseline>`) if the change is intended"
            );
        }
        out
    }

    /// Render the `peakperf-bench-compare-v1` document.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&envelope_json(COMPARE_SCHEMA, &PAPER_GPUS));
        let _ = writeln!(
            out,
            "  \"bands\": {{\"wall\": {}, \"accuracy_pp\": {}}},",
            json_f64(self.config.wall_band),
            json_f64(self.config.acc_band)
        );
        let _ = writeln!(
            out,
            "  \"counts\": {{\"improved\": {}, \"unchanged\": {}, \"regressed\": {}, \
             \"new\": {}, \"removed\": {}}},",
            self.count(MetricClass::Improved),
            self.count(MetricClass::Unchanged),
            self.count(MetricClass::Regressed),
            self.count(MetricClass::New),
            self.count(MetricClass::Removed)
        );
        let _ = writeln!(out, "  \"pass\": {},", self.failures().is_empty());
        out.push_str("  \"metrics\": [");
        for (i, d) in self.deltas.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let opt = |v: Option<f64>| v.map_or("null".to_owned(), json_f64);
            let _ = write!(
                out,
                "\n    {{\"metric\": {}, \"baseline\": {}, \"current\": {}, \
                 \"class\": {}, \"gate\": {}}}",
                json_string(&d.metric),
                opt(d.baseline),
                opt(d.current),
                json_string(d.class.as_str()),
                d.gate
            );
        }
        out.push_str("\n  ]\n}\n");
        out
    }
}

/// Percent error and wall time of one baseline row.
struct BaselineRow {
    pct_error: f64,
    wall_ms: f64,
}

fn baseline_rows(baseline: &Json) -> Result<Vec<(String, BaselineRow)>, String> {
    let rows = baseline
        .get("rows")
        .and_then(Json::as_arr)
        .ok_or("baseline has no `rows` array")?;
    let mut out = Vec::with_capacity(rows.len());
    for (i, row) in rows.iter().enumerate() {
        let id = row
            .get("id")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("baseline rows[{i}] has no `id`"))?;
        let num = |key: &str| {
            row.get(key)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("baseline row `{id}` has no numeric `{key}`"))
        };
        out.push((
            id.to_owned(),
            BaselineRow {
                pct_error: num("pct_error")?,
                wall_ms: num("wall_ms")?,
            },
        ));
    }
    Ok(out)
}

fn wall_class(baseline: f64, current: f64, band: f64) -> MetricClass {
    if baseline <= 0.0 {
        return MetricClass::Unchanged;
    }
    let rel = current / baseline - 1.0;
    if rel > band {
        MetricClass::Regressed
    } else if rel < -band {
        MetricClass::Improved
    } else {
        MetricClass::Unchanged
    }
}

/// Compare a fresh run against a parsed baseline document.
///
/// Gate rules: any per-row accuracy drift beyond the accuracy band fails
/// (in either direction — a model change must re-record the baseline);
/// wall-time metrics fail only on a slowdown beyond the noise band; a
/// row present in the baseline but missing from the run fails (coverage
/// loss).
///
/// # Errors
///
/// A baseline that is not a `peakperf-bench-v1` document or lacks the
/// required row fields.
pub fn compare(
    current: &BenchReport,
    baseline: &Json,
    config: CompareConfig,
) -> Result<Comparison, String> {
    match baseline.get("schema").and_then(Json::as_str) {
        Some(BENCH_SCHEMA) => {}
        other => {
            return Err(format!(
                "baseline schema is {other:?}, expected {BENCH_SCHEMA:?}"
            ))
        }
    }
    let base_rows = baseline_rows(baseline)?;
    let mut deltas = Vec::new();

    // Suite-level metrics first.
    let base_num = |key: &str| baseline.get(key).and_then(Json::as_f64);
    let cur_wall_ms = current.wall.as_secs_f64() * 1e3;
    if let Some(base_wall) = base_num("wall_ms") {
        deltas.push(MetricDelta {
            metric: "suite wall_ms".to_owned(),
            baseline: Some(base_wall),
            current: Some(cur_wall_ms),
            class: wall_class(base_wall, cur_wall_ms, config.wall_band),
            gate: wall_class(base_wall, cur_wall_ms, config.wall_band) == MetricClass::Regressed,
        });
    }
    if let Some(base_cps) = base_num("cycles_per_sec") {
        let totals = current.totals();
        let cur_cps = BenchReport::per_sec(totals.sim_cycles, current.wall);
        // Higher is better: compare inverted through the wall rule.
        let class = wall_class(cur_cps.max(1e-9), base_cps, config.wall_band);
        let class = match class {
            MetricClass::Regressed => MetricClass::Improved,
            MetricClass::Improved => MetricClass::Regressed,
            other => other,
        };
        deltas.push(MetricDelta {
            metric: "suite cycles_per_sec".to_owned(),
            baseline: Some(base_cps),
            current: Some(cur_cps),
            class,
            gate: class == MetricClass::Regressed,
        });
    }
    if let Some(base_rate) = base_num("cache_hit_rate") {
        let cur_rate = current.cache_hit_rate();
        let class = if (cur_rate - base_rate).abs() <= 0.01 {
            MetricClass::Unchanged
        } else if cur_rate > base_rate {
            MetricClass::Improved
        } else {
            MetricClass::Regressed
        };
        deltas.push(MetricDelta {
            metric: "suite cache_hit_rate".to_owned(),
            baseline: Some(base_rate),
            current: Some(cur_rate),
            class,
            gate: false, // informational: hit rate shifts with suite shape
        });
    }
    if let Some(base_mean) = baseline
        .get("accuracy")
        .and_then(|a| a.get("mean_abs_pct_error"))
        .and_then(Json::as_f64)
    {
        let cur_mean = current.mean_abs_pct_error();
        let class = if (cur_mean - base_mean).abs() <= config.acc_band {
            MetricClass::Unchanged
        } else if cur_mean < base_mean {
            MetricClass::Improved
        } else {
            MetricClass::Regressed
        };
        deltas.push(MetricDelta {
            metric: "suite mean_abs_pct_error".to_owned(),
            baseline: Some(base_mean),
            current: Some(cur_mean),
            class,
            gate: false, // per-row accuracy gates below; this is the headline
        });
    }

    // Per-row metrics, in current-suite order.
    for row in &current.rows {
        let base = base_rows.iter().find(|(id, _)| *id == row.id);
        let Some((_, base)) = base else {
            deltas.push(MetricDelta {
                metric: format!("{} pct_error", row.id),
                baseline: None,
                current: Some(row.pct_error()),
                class: MetricClass::New,
                gate: false,
            });
            continue;
        };
        let cur_err = row.pct_error();
        let drift = cur_err - base.pct_error;
        let acc_class = if drift.abs() <= config.acc_band {
            MetricClass::Unchanged
        } else if cur_err.abs() < base.pct_error.abs() {
            MetricClass::Improved
        } else {
            MetricClass::Regressed
        };
        deltas.push(MetricDelta {
            metric: format!("{} pct_error", row.id),
            baseline: Some(base.pct_error),
            current: Some(cur_err),
            class: acc_class,
            // Accuracy drift is always an error, even when it looks like
            // an improvement: the model changed, so the baseline must be
            // re-recorded deliberately.
            gate: acc_class != MetricClass::Unchanged,
        });
        let cur_wall = row.wall.as_secs_f64() * 1e3;
        let class = wall_class(base.wall_ms, cur_wall, config.wall_band);
        deltas.push(MetricDelta {
            metric: format!("{} wall_ms", row.id),
            baseline: Some(base.wall_ms),
            current: Some(cur_wall),
            class,
            gate: class == MetricClass::Regressed,
        });
    }

    // Baseline rows the run no longer covers.
    for (id, base) in &base_rows {
        if !current.rows.iter().any(|r| r.id == *id) {
            deltas.push(MetricDelta {
                metric: format!("{id} pct_error"),
                baseline: Some(base.pct_error),
                current: None,
                class: MetricClass::Removed,
                gate: true,
            });
        }
    }

    Ok(Comparison { config, deltas })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_covers_table2_and_all_sgemm_variants() {
        let specs = suite();
        assert_eq!(specs.len(), 28);
        let ids: Vec<String> = specs.iter().map(RowSpec::id).collect();
        let mut unique = ids.clone();
        unique.sort();
        unique.dedup();
        assert_eq!(unique.len(), ids.len(), "row ids must be unique: {ids:?}");
        assert_eq!(ids.iter().filter(|i| i.starts_with("table2/")).count(), 20);
        for gpu in ["gtx580", "gtx680"] {
            for v in ["nn", "nt", "tn", "tt"] {
                assert!(ids.contains(&format!("sgemm/{gpu}/{v}")), "{gpu}/{v}");
            }
        }
        assert!(ids.contains(&"table2/ffma_r0_r1_r4_r5".to_owned()));
    }

    #[test]
    fn slugs_normalize_labels() {
        assert_eq!(slug("FFMA R0, R1, R4, R5"), "ffma_r0_r1_r4_r5");
        assert_eq!(slug("IADD R0, R1, R0"), "iadd_r0_r1_r0");
        assert_eq!(slug("  odd -- label "), "odd_label");
    }

    fn sample_report() -> BenchReport {
        let mut counters = Counters {
            timing_runs: 1,
            sim_cycles: 1000,
            warp_instructions: 400,
            cache_misses: 1,
            ..Counters::default()
        };
        counters.stall_cycles[0] = 30;
        counters.stall_cycles[1] = 10;
        BenchReport {
            workers: 2,
            cache_enabled: true,
            rows: vec![
                BenchRow {
                    id: "table2/demo".into(),
                    kind: "table2",
                    gpu: "GTX680",
                    label: "DEMO".into(),
                    unit: "thread-insts/cycle/SM",
                    simulated: 129.4,
                    paper: 132.0,
                    wall: Duration::from_millis(10),
                    counters,
                },
                BenchRow {
                    id: "sgemm/gtx580/nn".into(),
                    kind: "sgemm",
                    gpu: "GTX580",
                    label: "asm NN @ 576".into(),
                    unit: "GFLOPS",
                    simulated: 1100.0,
                    paper: 1173.0,
                    wall: Duration::from_millis(40),
                    counters: Counters::default(),
                },
            ],
            wall: Duration::from_millis(30),
            jobs: JobStats {
                jobs: 2,
                busy_nanos: 50_000_000,
            },
            perfmon: None,
        }
    }

    #[test]
    fn perfmon_section_is_absent_by_default_and_volatile_when_present() {
        let mut report = sample_report();
        assert!(!report.to_json().contains("perfmon"));
        assert_eq!(report.perfmon_cache_hit_rate(), None);

        report.perfmon = Some(MetricsSnapshot::from_iter([
            ("executor.jobs", 2),
            ("executor.queue_wait_ns", 1_500_000),
            ("timing_cache.hits", 3),
            ("timing_cache.lookups", 4),
            ("timing_cache.lookup_ns", 2_000_000),
        ]));
        let json = report.to_json();
        // Wall-time counters turn into `*_wall_ms` volatile lines; counts
        // keep their registry names.
        assert!(json.contains("\"executor.queue_wait_wall_ms\": 1.500"));
        assert!(json.contains("\"timing_cache.lookup_wall_ms\": 2.000"));
        assert!(json.contains("\"executor.jobs\": 2"));
        assert!(!json.contains("_ns\""));
        let parsed = Json::parse(&json).unwrap();
        assert_eq!(
            parsed.get("perfmon").unwrap().get("timing_cache.hits"),
            Some(&Json::Num(3.0))
        );
        // The registry-side hit rate cross-checks the counter-side one.
        assert_eq!(report.perfmon_cache_hit_rate(), Some(0.75));
        assert!(report.render_text().contains("counter path:"));
        assert!(report.render_text().contains("75.0% hits"));
    }

    #[test]
    fn report_json_is_balanced_and_carries_the_envelope() {
        let json = sample_report().to_json();
        assert!(json.contains("\"schema\": \"peakperf-bench-v1\""));
        assert!(json.contains("\"generated_by\": \"peakperf-bench"));
        assert!(json.contains("\"id\": \"table2/demo\""));
        assert!(json.contains("\"stall_share\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        // The document round-trips through the in-repo parser.
        let parsed = Json::parse(&json).unwrap();
        assert_eq!(
            parsed.get("accuracy").unwrap().get("rows"),
            Some(&Json::Num(2.0))
        );
    }

    #[test]
    fn stall_shares_sum_to_one_when_stalled() {
        let report = sample_report();
        let row = &report.rows[0];
        let sum: f64 = StallKind::ALL.into_iter().map(|k| row.stall_share(k)).sum();
        assert!((sum - 1.0).abs() < 1e-12);
        assert_eq!(report.rows[1].stall_share(StallKind::Scoreboard), 0.0);
    }

    #[test]
    fn self_comparison_passes() {
        let report = sample_report();
        let baseline = Json::parse(&report.to_json()).unwrap();
        let cmp = compare(&report, &baseline, CompareConfig::default()).unwrap();
        assert!(cmp.failures().is_empty(), "{}", cmp.render_text());
        assert!(cmp.render_text().contains("PASS"));
        assert!(cmp.to_json().contains("\"pass\": true"));
    }

    #[test]
    fn accuracy_drift_gates_in_both_directions() {
        let report = sample_report();
        let mut baseline = Json::parse(&report.to_json()).unwrap();
        // Shift the first row's baseline error by 10 percentage points:
        // the current run now *looks* more accurate, but drift is drift.
        let rows = match baseline.get_mut("rows").unwrap() {
            Json::Arr(rows) => rows,
            _ => unreachable!(),
        };
        *rows[0].get_mut("pct_error").unwrap() = Json::Num(-12.0);
        let cmp = compare(&report, &baseline, CompareConfig::default()).unwrap();
        let failing: Vec<String> = cmp.failures().iter().map(|d| d.metric.clone()).collect();
        assert_eq!(failing, vec!["table2/demo pct_error".to_owned()]);
        assert_eq!(
            cmp.deltas
                .iter()
                .find(|d| d.metric == "table2/demo pct_error")
                .unwrap()
                .class,
            MetricClass::Improved,
            "drift toward the paper is still a gated model change"
        );
    }

    #[test]
    fn fabricated_slowdown_fails_only_beyond_the_band() {
        let report = sample_report();
        let mut baseline = Json::parse(&report.to_json()).unwrap();
        let rows = match baseline.get_mut("rows").unwrap() {
            Json::Arr(rows) => rows,
            _ => unreachable!(),
        };
        // Baseline claims the row took 1 ms; the current 10 ms is a 10x
        // slowdown, far beyond any reasonable band.
        *rows[0].get_mut("wall_ms").unwrap() = Json::Num(1.0);
        let cmp = compare(&report, &baseline, CompareConfig::default()).unwrap();
        assert!(cmp
            .failures()
            .iter()
            .any(|d| d.metric == "table2/demo wall_ms"));
        // A wide-enough band (CI runners) absorbs the same delta.
        let wide = CompareConfig {
            wall_band: 20.0,
            ..CompareConfig::default()
        };
        let cmp = compare(&report, &baseline, wide).unwrap();
        assert!(cmp.failures().is_empty());
    }

    #[test]
    fn removed_rows_fail_the_gate_and_new_rows_do_not() {
        let report = sample_report();
        let mut baseline = Json::parse(&report.to_json()).unwrap();
        let rows = match baseline.get_mut("rows").unwrap() {
            Json::Arr(rows) => rows,
            _ => unreachable!(),
        };
        // Rename a baseline row: the current run "lost" it (gate) and
        // "gained" an unknown one (no gate).
        *rows[1].get_mut("id").unwrap() = Json::Str("sgemm/gtx580/zz".into());
        let cmp = compare(&report, &baseline, CompareConfig::default()).unwrap();
        let classes: Vec<(String, MetricClass)> = cmp
            .deltas
            .iter()
            .map(|d| (d.metric.clone(), d.class))
            .collect();
        assert!(classes.contains(&("sgemm/gtx580/nn pct_error".into(), MetricClass::New)));
        assert!(classes.contains(&("sgemm/gtx580/zz pct_error".into(), MetricClass::Removed)));
        let failures: Vec<&str> = cmp.failures().iter().map(|d| d.metric.as_str()).collect();
        assert_eq!(failures, vec!["sgemm/gtx580/zz pct_error"]);
    }

    #[test]
    fn rejects_foreign_baselines() {
        let report = sample_report();
        let not_bench = Json::parse("{\"schema\": \"peakperf-fuzz-v1\"}").unwrap();
        assert!(compare(&report, &not_bench, CompareConfig::default()).is_err());
        let no_rows = Json::parse("{\"schema\": \"peakperf-bench-v1\"}").unwrap();
        assert!(compare(&report, &no_rows, CompareConfig::default()).is_err());
    }
}
