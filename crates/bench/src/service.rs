//! A resilient, embeddable job-service core over the simulator.
//!
//! ROADMAP's "long-running simulation service" needs more than a loop
//! around [`TimingSim`](peakperf_sim::timing::TimingSim): jobs arrive
//! faster than they finish, hostile inputs panic or spin forever, and the
//! process gets killed mid-write. This module is that hardening layer —
//! the `reproduce serve` subcommand is a thin CLI over it:
//!
//! * **bounded queue, explicit shedding** — [`Service::submit`] either
//!   accepts a job or rejects it *now* with a reason
//!   ([`SubmitOutcome::Rejected`]); nothing blocks and nothing queues
//!   without bound. Rejections are also emitted on the results channel,
//!   so the accounting identity (every submitted job reaches exactly one
//!   terminal state) holds from the result stream alone.
//! * **deadlines and cancellation** — each job may carry a wall-clock
//!   budget; the worker arms a [`CancelToken`] that the timing simulator
//!   polls cooperatively ([`peakperf_sim::cancel::CHECK_INTERVAL_CYCLES`]),
//!   so runaway simulations abort with a typed error and a per-warp
//!   snapshot instead of hanging a worker. [`Service::cancel`] aborts a
//!   queued *or* in-flight job by id.
//! * **panic isolation and bounded retries** — every attempt runs under
//!   [`run_isolated`], so a panicking job becomes a `failed` result
//!   (message + condensed backtrace) and the worker survives. Transient
//!   failures retry up to [`JobSpec::max_retries`] times with bounded
//!   exponential backoff; deadlines span attempts.
//! * **graceful shutdown** — [`Service::drain`] stops intake and runs the
//!   queue dry; [`Service::shutdown_now`] additionally cancels in-flight
//!   work and reports queued jobs as `cancelled`. Either way every
//!   accepted job still produces its terminal result.
//! * **observability** — a [`Health`] snapshot (queue depth, in-flight,
//!   per-status counters) backed by atomics, mirrored into the
//!   [`peakperf_sim::perfmon`] registry when enabled; and, when a
//!   [`journal::Journal`] is attached via [`Service::start_with_journal`],
//!   a structured event for every lifecycle transition (the flight
//!   recorder — see the [`journal`] module docs). No journal attached
//!   means no events are even constructed.
//!
//! Terminal statuses are `completed`, `failed`, `cancelled`, `deadline`
//! and `rejected`; their counts must sum to `submitted` once the service
//! has drained — `scripts/check_trace_schema.py --service` enforces this
//! identity on the emitted `peakperf-service-v1` document.

pub mod journal;

use std::collections::{HashMap, VecDeque};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use peakperf_arch::{Generation, GpuConfig};
use peakperf_sass::KernelBuilder;
use peakperf_sim::timing::TimingSim;
use peakperf_sim::{CancelCause, CancelSource, CancelToken, GlobalMemory, LaunchConfig, SimError};

use crate::exec::run_isolated;
use crate::fault::{FuzzCase, Outcome, SeedSpec};
use crate::json::Json;
use crate::profiling;
use crate::report::{envelope_json, json_f64, json_string, Table, PAPER_GPUS};
use journal::{ErrorClass, EventKind, Journal};

// ---------------------------------------------------------------------------
// Job specification
// ---------------------------------------------------------------------------

/// What one job runs. The hostile kinds (`Spin`, `Panic`, `Flaky`) exist
/// so the chaos-soak mode (and the tests) can prove the resilience
/// properties against worst-case inputs, not just well-behaved ones.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobKind {
    /// Profile one named [`profiling::TARGETS`] target (no trace capture);
    /// the structured `peakperf-profile-v1` object lands in
    /// [`JobResult::report_json`].
    Profile {
        /// Target name, e.g. `fermi_ffma`.
        target: String,
    },
    /// Run one differential fuzz mutant through [`crate::fault::run_case`]
    /// — the service's "untrusted kernel" ingestion path. The mutant's own
    /// step/cycle budgets bound each attempt; a deadline additionally
    /// bounds the job across attempts.
    Fault {
        /// The fully-specified mutant.
        case: FuzzCase,
    },
    /// An intentionally infinite kernel: completes only by firing its
    /// token (deadline or [`cancel_at_cycle`](JobSpec::cancel_at_cycle)),
    /// else the simulator's cycle watchdog fails it.
    Spin,
    /// Panics on every attempt — proves the isolation boundary.
    Panic,
    /// Fails the first `fail_attempts` attempts, then succeeds — proves
    /// the retry policy (terminally fails when
    /// `fail_attempts > max_retries`).
    Flaky {
        /// Attempts that fail before the first success.
        fail_attempts: u32,
    },
}

impl JobKind {
    /// Stable kind tag used in job/result documents.
    pub fn name(&self) -> &'static str {
        match self {
            JobKind::Profile { .. } => "profile",
            JobKind::Fault { .. } => "fault",
            JobKind::Spin => "spin",
            JobKind::Panic => "panic",
            JobKind::Flaky { .. } => "flaky",
        }
    }
}

/// One job submission (`peakperf-job-v1` in JSONL form).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobSpec {
    /// Caller-chosen identifier, echoed on the result.
    pub id: String,
    /// What to run.
    pub kind: JobKind,
    /// Wall-clock budget for the whole job (all attempts), measured from
    /// the moment a worker picks it up. `None` = no deadline (hostile
    /// simulations are still bounded by the cycle watchdog).
    pub deadline_ms: Option<u64>,
    /// Extra attempts after a failure (0 = fail fast). Cancellation and
    /// deadline expiry are never retried.
    pub max_retries: u32,
    /// Deterministic abort: fire the job's token at this simulated cycle
    /// (only meaningful for kinds that run the timing simulator).
    pub cancel_at_cycle: Option<u64>,
}

impl JobSpec {
    /// A job with no deadline, no retries and no cycle trigger.
    pub fn new(id: impl Into<String>, kind: JobKind) -> JobSpec {
        JobSpec {
            id: id.into(),
            kind,
            deadline_ms: None,
            max_retries: 0,
            cancel_at_cycle: None,
        }
    }

    /// Render as one `peakperf-job-v1` JSONL line (inverse of
    /// [`parse_job_line`]).
    pub fn to_json_line(&self) -> String {
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"schema\":\"peakperf-job-v1\",\"id\":{},\"kind\":\"{}\"",
            json_string(&self.id),
            self.kind.name()
        );
        match &self.kind {
            JobKind::Profile { target } => {
                let _ = write!(out, ",\"target\":{}", json_string(target));
            }
            JobKind::Fault { case } => {
                let _ = write!(
                    out,
                    ",\"gpu\":\"{}\",\"seed\":\"{}\",\"mutation_seed\":{}",
                    generation_name(case.generation),
                    case.seed.id(),
                    case.mutation_seed
                );
            }
            JobKind::Flaky { fail_attempts } => {
                let _ = write!(out, ",\"fail_attempts\":{fail_attempts}");
            }
            JobKind::Spin | JobKind::Panic => {}
        }
        if let Some(ms) = self.deadline_ms {
            let _ = write!(out, ",\"deadline_ms\":{ms}");
        }
        if self.max_retries > 0 {
            let _ = write!(out, ",\"max_retries\":{}", self.max_retries);
        }
        if let Some(c) = self.cancel_at_cycle {
            let _ = write!(out, ",\"cancel_at_cycle\":{c}");
        }
        out.push('}');
        out
    }
}

fn generation_name(g: Generation) -> &'static str {
    match g {
        Generation::Gt200 => "gt200",
        Generation::Fermi => "fermi",
        Generation::Kepler => "kepler",
    }
}

fn parse_generation(s: &str) -> Option<Generation> {
    match s {
        "gt200" => Some(Generation::Gt200),
        "fermi" => Some(Generation::Fermi),
        "kepler" => Some(Generation::Kepler),
        _ => None,
    }
}

/// Parse one `peakperf-job-v1` JSONL line.
///
/// # Errors
///
/// Malformed JSON, a wrong/missing `schema`, an unknown `kind`, or
/// missing kind-specific fields.
pub fn parse_job_line(line: &str) -> Result<JobSpec, String> {
    let doc = Json::parse(line)?;
    let schema = doc.get("schema").and_then(Json::as_str).unwrap_or("");
    if schema != "peakperf-job-v1" {
        return Err(format!("expected schema peakperf-job-v1, got `{schema}`"));
    }
    let id = doc
        .get("id")
        .and_then(Json::as_str)
        .filter(|s| !s.is_empty())
        .ok_or("job needs a non-empty string `id`")?
        .to_owned();
    let get_u64 = |key: &str| -> Result<Option<u64>, String> {
        match doc.get(key) {
            None | Some(Json::Null) => Ok(None),
            Some(v) => v
                .as_f64()
                .filter(|n| *n >= 0.0 && n.fract() == 0.0)
                .map(|n| Some(n as u64))
                .ok_or_else(|| format!("field `{key}` must be a non-negative integer")),
        }
    };
    let kind_tag = doc
        .get("kind")
        .and_then(Json::as_str)
        .ok_or("job needs a string `kind`")?;
    let kind = match kind_tag {
        "profile" => JobKind::Profile {
            target: doc
                .get("target")
                .and_then(Json::as_str)
                .ok_or("profile job needs a string `target`")?
                .to_owned(),
        },
        "fault" => {
            let gpu = doc.get("gpu").and_then(Json::as_str).unwrap_or("kepler");
            let generation = parse_generation(gpu).ok_or_else(|| format!("unknown gpu `{gpu}`"))?;
            let seed_id = doc
                .get("seed")
                .and_then(Json::as_str)
                .ok_or("fault job needs a string `seed` (e.g. table2:07)")?;
            let seed =
                SeedSpec::parse(seed_id).ok_or_else(|| format!("unknown seed spec `{seed_id}`"))?;
            JobKind::Fault {
                case: FuzzCase {
                    generation,
                    seed,
                    mutation_seed: get_u64("mutation_seed")?.unwrap_or(1),
                },
            }
        }
        "spin" => JobKind::Spin,
        "panic" => JobKind::Panic,
        "flaky" => JobKind::Flaky {
            fail_attempts: get_u64("fail_attempts")?
                .unwrap_or(1)
                .min(u64::from(u32::MAX)) as u32,
        },
        other => {
            return Err(format!(
                "unknown job kind `{other}`; known: profile fault spin panic flaky"
            ))
        }
    };
    Ok(JobSpec {
        id,
        kind,
        deadline_ms: get_u64("deadline_ms")?,
        max_retries: get_u64("max_retries")?
            .unwrap_or(0)
            .min(u64::from(u32::MAX)) as u32,
        cancel_at_cycle: get_u64("cancel_at_cycle")?,
    })
}

/// Parse a whole `--jobs` file (one `peakperf-job-v1` object per
/// non-empty line).
///
/// # Errors
///
/// The first bad line, with its 1-based line number.
pub fn parse_jobs_jsonl(text: &str) -> Result<Vec<JobSpec>, String> {
    let mut jobs = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        jobs.push(parse_job_line(line).map_err(|e| format!("jobs line {}: {e}", i + 1))?);
    }
    Ok(jobs)
}

// ---------------------------------------------------------------------------
// Results
// ---------------------------------------------------------------------------

/// The terminal state of one submitted job. Every submission reaches
/// exactly one of these (the accounting identity the schema validator
/// checks).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobStatus {
    /// Ran to completion (possibly after retries).
    Completed,
    /// Failed on its final attempt (structured error or isolated panic).
    Failed,
    /// Aborted by [`Service::cancel`], a cycle trigger, or shutdown.
    Cancelled,
    /// Its wall-clock deadline elapsed.
    Deadline,
    /// Shed at submission (queue full or service shutting down).
    Rejected,
}

impl JobStatus {
    /// Stable status tag used in result documents.
    pub fn as_str(self) -> &'static str {
        match self {
            JobStatus::Completed => "completed",
            JobStatus::Failed => "failed",
            JobStatus::Cancelled => "cancelled",
            JobStatus::Deadline => "deadline",
            JobStatus::Rejected => "rejected",
        }
    }
}

/// The terminal result of one job (`peakperf-job-result-v1`).
#[derive(Debug, Clone)]
pub struct JobResult {
    /// The submission's id.
    pub id: String,
    /// The submission's kind tag.
    pub kind: &'static str,
    /// Terminal state.
    pub status: JobStatus,
    /// Attempts actually started (0 for rejected jobs).
    pub attempts: u32,
    /// Wall time from worker pickup to the terminal state (0 for
    /// rejected jobs).
    pub wall_ms: f64,
    /// Human-readable summary: completion note, error message (with
    /// backtrace for panics), rejection reason, or abort diagnostics.
    pub detail: String,
    /// Simulated cycles, when the job ran the timing simulator to
    /// completion.
    pub cycles: Option<u64>,
    /// The structured report for kinds that produce one (profile jobs:
    /// the `peakperf-profile-v1` object). Not serialized into the result
    /// line; available to embedders.
    pub report_json: Option<String>,
    /// Microseconds the job waited in the queue before a worker picked
    /// it up. `None` for jobs that never reached a worker (rejected, or
    /// cancelled while queued).
    pub queue_wait_us: Option<u64>,
    /// Microseconds spent actually executing attempts (excluding queue
    /// wait and retry backoff sleeps). `None` for jobs that never ran.
    pub attempts_wall_us: Option<u64>,
    /// Which trigger path aborted the job, for `cancelled`/`deadline`
    /// results (`api | cycle | deadline | shutdown`).
    pub cancel_source: Option<CancelSource>,
}

impl JobResult {
    /// Render as one `peakperf-job-result-v1` JSONL line.
    pub fn to_json_line(&self) -> String {
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"schema\":\"peakperf-job-result-v1\",\"id\":{},\"kind\":\"{}\",\
             \"status\":\"{}\",\"attempts\":{},\"wall_ms\":{}",
            json_string(&self.id),
            self.kind,
            self.status.as_str(),
            self.attempts,
            json_f64(self.wall_ms),
        );
        if let Some(us) = self.queue_wait_us {
            let _ = write!(out, ",\"queue_wait_us\":{us}");
        }
        if let Some(us) = self.attempts_wall_us {
            let _ = write!(out, ",\"attempts_wall_us\":{us}");
        }
        if let Some(src) = self.cancel_source {
            let _ = write!(out, ",\"cancel_source\":\"{}\"", src.as_str());
        }
        if let Some(c) = self.cycles {
            let _ = write!(out, ",\"cycles\":{c}");
        }
        let _ = write!(out, ",\"detail\":{}}}", json_string(&self.detail));
        out
    }
}

/// The immediate answer to [`Service::submit`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitOutcome {
    /// Queued; the terminal result will arrive on the results channel.
    Accepted,
    /// Shed: the job will not run. A `rejected` result is also emitted on
    /// the results channel so stream-side accounting stays complete.
    Rejected {
        /// Why (`overloaded` or `shutting-down`).
        reason: &'static str,
    },
}

// ---------------------------------------------------------------------------
// Health
// ---------------------------------------------------------------------------

/// A point-in-time snapshot of the service counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Health {
    /// Jobs ever submitted (accepted + rejected).
    pub submitted: u64,
    /// Jobs shed at submission.
    pub rejected: u64,
    /// Jobs that completed.
    pub completed: u64,
    /// Jobs that failed terminally.
    pub failed: u64,
    /// Jobs cancelled (explicitly or by shutdown).
    pub cancelled: u64,
    /// Jobs that exceeded their deadline.
    pub deadline: u64,
    /// Retry attempts performed (not jobs — a job retried twice counts 2).
    pub retried: u64,
    /// Jobs currently executing on a worker.
    pub in_flight: u64,
    /// Jobs currently queued.
    pub queue_depth: u64,
    /// High-water mark of the queue depth (never exceeds the configured
    /// capacity).
    pub queue_depth_max: u64,
    /// Highest queue depth any periodic journal snapshot observed (0
    /// when no journal with snapshots is attached). Unlike
    /// `queue_depth_max` this is the *sampled* high-water mark — the one
    /// a dashboard polling health would have seen.
    pub snapshot_queue_depth_max: u64,
}

impl Health {
    /// Jobs that reached a terminal state.
    pub fn terminal(&self) -> u64 {
        self.rejected + self.completed + self.failed + self.cancelled + self.deadline
    }

    /// The accounting identity: every submission is terminal, queued, or
    /// in flight — nothing is ever lost.
    pub fn accounted(&self) -> bool {
        self.terminal() + self.queue_depth + self.in_flight == self.submitted
    }

    /// One-line text rendering for logs. The snapshot-derived peak only
    /// appears when a journal with snapshots observed one, so the line
    /// is unchanged for journal-less runs.
    pub fn render_line(&self) -> String {
        let mut line = format!(
            "submitted {} | completed {} failed {} cancelled {} deadline {} rejected {} \
             | retried {} | queued {} in-flight {} (peak queue {})",
            self.submitted,
            self.completed,
            self.failed,
            self.cancelled,
            self.deadline,
            self.rejected,
            self.retried,
            self.queue_depth,
            self.in_flight,
            self.queue_depth_max,
        );
        if self.snapshot_queue_depth_max > 0 {
            let _ = write!(line, " (snapshot peak {})", self.snapshot_queue_depth_max);
        }
        line
    }
}

// ---------------------------------------------------------------------------
// The service core
// ---------------------------------------------------------------------------

/// Service sizing and policy.
#[derive(Debug, Clone, Copy)]
pub struct ServiceConfig {
    /// Worker threads (0 = [`crate::exec::default_workers`]).
    pub workers: usize,
    /// Queue bound; submissions beyond it are rejected with
    /// `overloaded`.
    pub queue_capacity: usize,
    /// Base backoff between retry attempts; attempt `n` waits
    /// `base << (n-1)`, capped at [`ServiceConfig::MAX_BACKOFF_MS`] and at
    /// the job's remaining deadline.
    pub retry_backoff_ms: u64,
}

impl ServiceConfig {
    /// Upper bound on a single retry backoff sleep.
    pub const MAX_BACKOFF_MS: u64 = 250;
}

impl Default for ServiceConfig {
    fn default() -> ServiceConfig {
        ServiceConfig {
            workers: 0,
            queue_capacity: 256,
            retry_backoff_ms: 10,
        }
    }
}

/// One queued submission, timestamped so the queue wait is measurable
/// whether or not a journal is attached.
#[derive(Debug)]
struct Queued {
    spec: JobSpec,
    enqueued: Instant,
}

#[derive(Debug)]
struct QueueState {
    queue: VecDeque<Queued>,
    /// New submissions accepted?
    accepting: bool,
    /// Drain requested: workers exit once the queue is empty.
    stop: bool,
    /// Immediate stop: workers exit without touching the queue again.
    stop_now: bool,
}

#[derive(Debug, Default)]
struct HealthCounters {
    submitted: AtomicU64,
    rejected: AtomicU64,
    completed: AtomicU64,
    failed: AtomicU64,
    cancelled: AtomicU64,
    deadline: AtomicU64,
    retried: AtomicU64,
    in_flight: AtomicU64,
    queue_depth_max: AtomicU64,
}

#[derive(Debug)]
struct Shared {
    state: Mutex<QueueState>,
    jobs_ready: Condvar,
    counters: HealthCounters,
    /// Tokens of in-flight jobs, for [`Service::cancel`] and
    /// [`Service::shutdown_now`].
    inflight: Mutex<HashMap<String, CancelToken>>,
    config: ServiceConfig,
    /// The attached flight recorder; `None` = record nothing (the
    /// zero-overhead-when-off discipline).
    journal: Option<Arc<Journal>>,
    /// Tells the snapshot sampler thread to exit.
    sampler_stop: AtomicBool,
}

impl Shared {
    fn bump(&self, status: JobStatus) {
        let (counter, metric): (&AtomicU64, &'static str) = match status {
            JobStatus::Completed => (&self.counters.completed, "service.completed"),
            JobStatus::Failed => (&self.counters.failed, "service.failed"),
            JobStatus::Cancelled => (&self.counters.cancelled, "service.cancelled"),
            JobStatus::Deadline => (&self.counters.deadline, "service.deadline"),
            JobStatus::Rejected => (&self.counters.rejected, "service.rejected"),
        };
        counter.fetch_add(1, Ordering::Relaxed);
        peakperf_sim::perfmon::counter_add(metric, 1);
    }

    /// Journal one event, when a journal is attached.
    fn record(&self, job: &str, worker: Option<u32>, kind: EventKind) {
        if let Some(journal) = &self.journal {
            journal.record(job, worker, kind);
        }
    }

    fn health(&self) -> Health {
        let c = &self.counters;
        Health {
            submitted: c.submitted.load(Ordering::Relaxed),
            rejected: c.rejected.load(Ordering::Relaxed),
            completed: c.completed.load(Ordering::Relaxed),
            failed: c.failed.load(Ordering::Relaxed),
            cancelled: c.cancelled.load(Ordering::Relaxed),
            deadline: c.deadline.load(Ordering::Relaxed),
            retried: c.retried.load(Ordering::Relaxed),
            in_flight: c.in_flight.load(Ordering::Relaxed),
            queue_depth: lock(&self.state).queue.len() as u64,
            queue_depth_max: c.queue_depth_max.load(Ordering::Relaxed),
            snapshot_queue_depth_max: self
                .journal
                .as_ref()
                .map_or(0, |j| j.snapshot_queue_depth_max()),
        }
    }
}

/// The periodic health sampler: turns [`Health`] into the journal's
/// time-series. Sleeps in short chunks so shutdown is never blocked on a
/// long snapshot interval.
fn sampler_loop(shared: &Shared, journal: &Journal, interval: Duration) {
    let chunk = interval.min(Duration::from_millis(25));
    let mut last = Instant::now();
    while !shared.sampler_stop.load(Ordering::Relaxed) {
        std::thread::sleep(chunk);
        if last.elapsed() >= interval {
            journal.record_snapshot(shared.health());
            last = Instant::now();
        }
    }
    // One final sample so the series covers the end of the run.
    journal.record_snapshot(shared.health());
}

/// The running service: worker threads plus the bounded queue. See the
/// module docs for the guarantees. Obtain one with [`Service::start`].
#[derive(Debug)]
pub struct Service {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    sampler: Option<JoinHandle<()>>,
    results: mpsc::Sender<JobResult>,
}

impl Service {
    /// Start the worker pool. Terminal results (including rejections)
    /// arrive on the returned channel in completion order.
    pub fn start(config: ServiceConfig) -> (Service, mpsc::Receiver<JobResult>) {
        Service::start_with_journal(config, None)
    }

    /// [`Service::start`] with a flight recorder attached: every job
    /// transition is journaled, and if the journal has a snapshot
    /// interval a sampler thread records periodic `HealthSnapshot`
    /// events until the service drains.
    pub fn start_with_journal(
        config: ServiceConfig,
        journal: Option<Arc<Journal>>,
    ) -> (Service, mpsc::Receiver<JobResult>) {
        let workers = if config.workers == 0 {
            crate::exec::default_workers()
        } else {
            config.workers
        };
        let shared = Arc::new(Shared {
            state: Mutex::new(QueueState {
                queue: VecDeque::new(),
                accepting: true,
                stop: false,
                stop_now: false,
            }),
            jobs_ready: Condvar::new(),
            counters: HealthCounters::default(),
            inflight: Mutex::new(HashMap::new()),
            config,
            journal,
            sampler_stop: AtomicBool::new(false),
        });
        let (tx, rx) = mpsc::channel();
        let handles = (0..workers)
            .map(|w| {
                let shared = Arc::clone(&shared);
                let tx = tx.clone();
                std::thread::spawn(move || worker_loop(&shared, &tx, w as u32))
            })
            .collect();
        let sampler = shared.journal.as_ref().and_then(|journal| {
            journal.snapshot_interval().map(|interval| {
                let shared = Arc::clone(&shared);
                let journal = Arc::clone(journal);
                std::thread::spawn(move || sampler_loop(&shared, &journal, interval))
            })
        });
        (
            Service {
                shared,
                workers: handles,
                sampler,
                results: tx,
            },
            rx,
        )
    }

    /// Submit one job. Never blocks: the job is queued, or shed with a
    /// reason (and a `rejected` result on the channel).
    pub fn submit(&self, spec: JobSpec) -> SubmitOutcome {
        self.shared
            .counters
            .submitted
            .fetch_add(1, Ordering::Relaxed);
        peakperf_sim::perfmon::counter_add("service.submitted", 1);
        let reason = {
            let mut state = lock(&self.shared.state);
            if !state.accepting {
                Some(("shutting-down", state.queue.len() as u64))
            } else if state.queue.len() >= self.shared.config.queue_capacity {
                Some(("overloaded", state.queue.len() as u64))
            } else {
                state.queue.push_back(Queued {
                    spec: spec.clone(),
                    enqueued: Instant::now(),
                });
                let depth = state.queue.len() as u64;
                self.shared
                    .counters
                    .queue_depth_max
                    .fetch_max(depth, Ordering::Relaxed);
                // Journaled under the state lock so the `Submitted`
                // event is sequenced before any worker can record the
                // matching `Dequeued` (pops take the same lock).
                self.shared
                    .record(&spec.id, None, EventKind::Submitted { queue_depth: depth });
                None
            }
        };
        match reason {
            None => {
                self.shared.jobs_ready.notify_one();
                SubmitOutcome::Accepted
            }
            Some((reason, depth)) => {
                self.shared
                    .record(&spec.id, None, EventKind::Submitted { queue_depth: depth });
                self.shared
                    .record(&spec.id, None, EventKind::Rejected { reason });
                self.shared.record(
                    &spec.id,
                    None,
                    EventKind::Terminal {
                        status: JobStatus::Rejected,
                        total_wall_us: 0,
                    },
                );
                self.shared.bump(JobStatus::Rejected);
                let _ = self.results.send(JobResult {
                    id: spec.id,
                    kind: spec.kind.name(),
                    status: JobStatus::Rejected,
                    attempts: 0,
                    wall_ms: 0.0,
                    detail: reason.to_owned(),
                    cycles: None,
                    report_json: None,
                    queue_wait_us: None,
                    attempts_wall_us: None,
                    cancel_source: None,
                });
                SubmitOutcome::Rejected { reason }
            }
        }
    }

    /// Cancel a job by id: a queued job is removed and reported
    /// `cancelled`; an in-flight job has its token fired (the result
    /// arrives from its worker once the simulator observes the poll).
    /// Returns `false` when the id is neither queued nor in flight.
    pub fn cancel(&self, id: &str) -> bool {
        let removed = {
            let mut state = lock(&self.shared.state);
            match state.queue.iter().position(|j| j.spec.id == id) {
                Some(i) => state.queue.remove(i),
                None => None,
            }
        };
        if let Some(queued) = removed {
            let spec = queued.spec;
            self.shared.record(
                &spec.id,
                None,
                EventKind::CancelRequested {
                    source: CancelSource::Api,
                },
            );
            self.shared.record(
                &spec.id,
                None,
                EventKind::Terminal {
                    status: JobStatus::Cancelled,
                    total_wall_us: 0,
                },
            );
            self.shared.bump(JobStatus::Cancelled);
            let _ = self.results.send(JobResult {
                id: spec.id,
                kind: spec.kind.name(),
                status: JobStatus::Cancelled,
                attempts: 0,
                wall_ms: 0.0,
                detail: "cancelled while queued".to_owned(),
                cycles: None,
                report_json: None,
                queue_wait_us: None,
                attempts_wall_us: None,
                cancel_source: Some(CancelSource::Api),
            });
            return true;
        }
        // Journaled under the inflight lock: the worker removes the id
        // (same lock) *before* recording `Terminal`, so the
        // `CancelRequested` event can never be sequenced after it.
        let inflight = lock(&self.shared.inflight);
        if let Some(token) = inflight.get(id) {
            self.shared.record(
                id,
                None,
                EventKind::CancelRequested {
                    source: CancelSource::Api,
                },
            );
            token.cancel();
            return true;
        }
        false
    }

    /// Current counters.
    pub fn health(&self) -> Health {
        self.shared.health()
    }

    /// Stop intake, run the queue dry, join the workers, and return the
    /// final counters. Every accepted job still reaches its terminal
    /// result before this returns.
    pub fn drain(mut self) -> Health {
        {
            let mut state = lock(&self.shared.state);
            state.accepting = false;
            state.stop = true;
        }
        self.shared.jobs_ready.notify_all();
        self.join_workers();
        self.stop_sampler();
        self.health()
    }

    /// Stop immediately: intake closes, in-flight jobs are cancelled via
    /// their tokens, queued jobs are reported `cancelled` without running.
    /// Joins the workers (bounded by the token poll interval) and returns
    /// the final counters.
    pub fn shutdown_now(mut self) -> Health {
        let queued: Vec<JobSpec> = {
            let mut state = lock(&self.shared.state);
            state.accepting = false;
            state.stop = true;
            state.stop_now = true;
            state.queue.drain(..).map(|q| q.spec).collect()
        };
        {
            let inflight = lock(&self.shared.inflight);
            for (id, token) in inflight.iter() {
                self.shared.record(
                    id,
                    None,
                    EventKind::CancelRequested {
                        source: CancelSource::Shutdown,
                    },
                );
                token.cancel_from(CancelSource::Shutdown);
            }
        }
        self.shared.jobs_ready.notify_all();
        for spec in queued {
            self.shared.record(
                &spec.id,
                None,
                EventKind::CancelRequested {
                    source: CancelSource::Shutdown,
                },
            );
            self.shared.record(
                &spec.id,
                None,
                EventKind::Terminal {
                    status: JobStatus::Cancelled,
                    total_wall_us: 0,
                },
            );
            self.shared.bump(JobStatus::Cancelled);
            let _ = self.results.send(JobResult {
                id: spec.id,
                kind: spec.kind.name(),
                status: JobStatus::Cancelled,
                attempts: 0,
                wall_ms: 0.0,
                detail: "cancelled by shutdown before running".to_owned(),
                cycles: None,
                report_json: None,
                queue_wait_us: None,
                attempts_wall_us: None,
                cancel_source: Some(CancelSource::Shutdown),
            });
        }
        self.join_workers();
        self.stop_sampler();
        self.health()
    }

    fn join_workers(&mut self) {
        for handle in self.workers.drain(..) {
            // Workers run jobs under the isolation boundary, so a join
            // error means a harness bug; the counters already reflect
            // every job that produced a result.
            let _ = handle.join();
        }
    }

    /// Stop and join the snapshot sampler (after the workers, so its
    /// final sample sees the drained counters).
    fn stop_sampler(&mut self) {
        self.shared.sampler_stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.sampler.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for Service {
    /// Dropping without [`Service::drain`]/[`Service::shutdown_now`]
    /// releases the workers (they exit at their next queue poll or token
    /// check) instead of leaking them on a parked condvar.
    fn drop(&mut self) {
        {
            let mut state = lock(&self.shared.state);
            state.accepting = false;
            state.stop = true;
            state.stop_now = true;
        }
        for token in lock(&self.shared.inflight).values() {
            token.cancel_from(CancelSource::Shutdown);
        }
        self.shared.jobs_ready.notify_all();
        self.join_workers();
        self.stop_sampler();
    }
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    // Workers never panic while holding these locks (jobs run under the
    // isolation boundary outside any lock), so poisoning is recoverable.
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn worker_loop(shared: &Shared, results: &mpsc::Sender<JobResult>, worker: u32) {
    loop {
        let queued = {
            let mut state = lock(&shared.state);
            loop {
                if state.stop_now {
                    return;
                }
                if let Some(queued) = state.queue.pop_front() {
                    break queued;
                }
                if state.stop {
                    return;
                }
                state = shared
                    .jobs_ready
                    .wait(state)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
            }
        };
        let queue_wait = queued.enqueued.elapsed();
        let queue_wait_us = queue_wait.as_micros().min(u128::from(u64::MAX)) as u64;
        peakperf_sim::perfmon::counter_add("service.queue_wait_us", queue_wait_us);
        shared.record(
            &queued.spec.id,
            Some(worker),
            EventKind::Dequeued { queue_wait_us },
        );
        shared.counters.in_flight.fetch_add(1, Ordering::Relaxed);
        let result = run_job(shared, queued.spec, worker, queue_wait_us);
        shared.bump(result.status);
        let _ = results.send(result);
        shared.counters.in_flight.fetch_sub(1, Ordering::Relaxed);
    }
}

// ---------------------------------------------------------------------------
// Job execution
// ---------------------------------------------------------------------------

/// What one attempt produced, distinguished from retryable failures
/// (which travel as `Err(String)` through [`run_isolated`]).
enum Attempt {
    Done {
        detail: String,
        cycles: Option<u64>,
        report_json: Option<String>,
    },
    Cancelled {
        at_cycle: u64,
    },
    Deadline {
        at_cycle: u64,
    },
}

fn run_job(shared: &Shared, spec: JobSpec, worker: u32, queue_wait_us: u64) -> JobResult {
    // One token per job: the deadline spans attempts, and an explicit
    // cancel (or a fired deadline) stays fired across retries.
    let token = match spec.deadline_ms {
        Some(ms) => CancelToken::with_deadline(Duration::from_millis(ms)),
        None => CancelToken::new(),
    };
    if let Some(cycle) = spec.cancel_at_cycle {
        token.cancel_at_cycle(cycle);
    }
    lock(&shared.inflight).insert(spec.id.clone(), token.clone());
    let t0 = Instant::now();
    let mut attempts: u32 = 0;
    let mut attempts_wall = Duration::ZERO;
    let (status, detail, cycles, report_json) = loop {
        // Between attempts (and before the first), honour a token that
        // fired while we were not inside the simulator — a cancel during
        // backoff sleep, or a deadline consumed by earlier attempts.
        // `fire_state(0)` never trips an armed `cancel_at_cycle > 0`.
        match token.fire_state(0) {
            Some(CancelCause::Cancelled) if spec.cancel_at_cycle != Some(0) => {
                break (
                    JobStatus::Cancelled,
                    format!("cancelled before attempt {}", attempts + 1),
                    None,
                    None,
                );
            }
            Some(CancelCause::DeadlineExceeded) => {
                break (
                    JobStatus::Deadline,
                    format!(
                        "deadline of {} ms exhausted before attempt {}",
                        spec.deadline_ms.unwrap_or(0),
                        attempts + 1
                    ),
                    None,
                    None,
                );
            }
            _ => {}
        }
        attempts += 1;
        let attempt = attempts;
        shared.record(
            &spec.id,
            Some(worker),
            EventKind::AttemptStarted { attempt },
        );
        let attempt_t0 = Instant::now();
        let outcome = run_isolated(|| run_attempt(&spec, &token, attempt));
        attempts_wall += attempt_t0.elapsed();
        match outcome {
            Ok(Attempt::Done {
                detail,
                cycles,
                report_json,
            }) => break (JobStatus::Completed, detail, cycles, report_json),
            Ok(Attempt::Cancelled { at_cycle }) => {
                break (
                    JobStatus::Cancelled,
                    format!("cancelled at cycle {at_cycle}"),
                    None,
                    None,
                );
            }
            Ok(Attempt::Deadline { at_cycle }) => {
                break (
                    JobStatus::Deadline,
                    format!(
                        "deadline of {} ms exceeded at cycle {at_cycle}",
                        spec.deadline_ms.unwrap_or(0)
                    ),
                    None,
                    None,
                );
            }
            Err(message) => {
                if attempts > spec.max_retries {
                    break (
                        JobStatus::Failed,
                        format!("attempt {attempts}: {message}"),
                        None,
                        None,
                    );
                }
                shared.counters.retried.fetch_add(1, Ordering::Relaxed);
                peakperf_sim::perfmon::counter_add("service.retried", 1);
                let backoff = Duration::from_millis(
                    (shared.config.retry_backoff_ms << (attempts - 1).min(8))
                        .min(ServiceConfig::MAX_BACKOFF_MS),
                );
                shared.record(
                    &spec.id,
                    Some(worker),
                    EventKind::AttemptFailed {
                        attempt,
                        error_class: ErrorClass::classify(&message),
                        backoff_us: backoff.as_micros().min(u128::from(u64::MAX)) as u64,
                    },
                );
                std::thread::sleep(backoff);
            }
        }
    };
    // Token-driven aborts name their trigger path. Cycle and deadline
    // fire *inside* the run, so this worker journals the request; api
    // and shutdown requests were journaled by the requesting thread.
    let cancel_source = match status {
        JobStatus::Cancelled | JobStatus::Deadline => token.fired_source(),
        _ => None,
    };
    if let Some(source @ (CancelSource::Cycle | CancelSource::Deadline)) = cancel_source {
        shared.record(
            &spec.id,
            Some(worker),
            EventKind::CancelRequested { source },
        );
    }
    // Remove from inflight *before* journaling `Terminal`:
    // `Service::cancel` records its `CancelRequested` while holding the
    // inflight lock, so either it sees the id and sequences before this
    // terminal, or it misses the id and records nothing.
    lock(&shared.inflight).remove(&spec.id);
    let wall = t0.elapsed();
    shared.record(
        &spec.id,
        Some(worker),
        EventKind::Terminal {
            status,
            total_wall_us: wall.as_micros().min(u128::from(u64::MAX)) as u64,
        },
    );
    JobResult {
        id: spec.id,
        kind: spec.kind.name(),
        status,
        attempts,
        wall_ms: wall.as_secs_f64() * 1e3,
        detail,
        cycles,
        report_json,
        queue_wait_us: Some(queue_wait_us),
        attempts_wall_us: Some(attempts_wall.as_micros().min(u128::from(u64::MAX)) as u64),
        cancel_source,
    }
}

/// Map a simulator error to its attempt outcome: token-driven aborts are
/// terminal states, everything else is a retryable failure.
fn classify_sim_error(e: SimError) -> Result<Attempt, String> {
    match e {
        SimError::Cancelled { at_cycle, .. } => Ok(Attempt::Cancelled { at_cycle }),
        SimError::DeadlineExceeded { at_cycle, .. } => Ok(Attempt::Deadline { at_cycle }),
        other => Err(other.to_string()),
    }
}

fn run_attempt(spec: &JobSpec, token: &CancelToken, attempt: u32) -> Result<Attempt, String> {
    match &spec.kind {
        JobKind::Profile { target } => {
            match profiling::run_target_cancellable(target, false, Some(token)) {
                Ok(out) => Ok(Attempt::Done {
                    detail: format!("profiled {target} on {}", out.gpu),
                    cycles: None,
                    report_json: Some(out.json),
                }),
                Err(e) => classify_sim_error(e),
            }
        }
        JobKind::Fault { case } => {
            let report = crate::fault::run_case(case)?;
            let detail = match &report.violation {
                Some(v) => format!("mutant violation [{}]: {}", v.kind.name(), v.detail),
                None => format!(
                    "mutant ok: func={} timing={}",
                    report.func.class(),
                    report.timing.class()
                ),
            };
            let cycles = match report.timing {
                Outcome::Ok { cycles } => Some(cycles),
                _ => None,
            };
            Ok(Attempt::Done {
                detail,
                cycles,
                report_json: None,
            })
        }
        JobKind::Spin => {
            let mut b = KernelBuilder::new("service_spin", Generation::Fermi);
            let top = b.label_here();
            b.bra(top);
            b.exit();
            let kernel = b.finish().map_err(|e| e.to_string())?;
            let gpu = GpuConfig::gtx580();
            let mut memory = GlobalMemory::new();
            let mut sim = TimingSim::new(&gpu, &kernel, LaunchConfig::linear(1, 64), &[], 1)
                .map_err(|e| e.to_string())?;
            if spec.deadline_ms.is_none() && spec.cancel_at_cycle.is_none() {
                // Untriggered spins should fail fast on the watchdog, not
                // burn the default multi-million-cycle budget.
                sim.set_cycle_limit(200_000);
            }
            sim.set_cancel_token(token.clone());
            match sim.run(&mut memory) {
                Ok(report) => Ok(Attempt::Done {
                    detail: "spin kernel finished (unexpected)".to_owned(),
                    cycles: Some(report.cycles),
                    report_json: None,
                }),
                Err(e) => classify_sim_error(e),
            }
        }
        JobKind::Panic => panic!("forced panic job (isolation check), attempt {attempt}"),
        JobKind::Flaky { fail_attempts } => {
            if attempt <= *fail_attempts {
                Err(format!(
                    "flaky job failed attempt {attempt} of {fail_attempts} planned failure(s)"
                ))
            } else {
                Ok(Attempt::Done {
                    detail: format!("succeeded on attempt {attempt}"),
                    cycles: None,
                    report_json: None,
                })
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Chaos soak
// ---------------------------------------------------------------------------

/// Generate a deterministic chaos-soak job mix: fault mutants (hostile
/// kernels), flaky and panicking jobs (isolation + retry), spins with
/// short deadlines or cycle triggers (cancellation), and a sprinkle of
/// real profile jobs — everything the resilience claims must survive.
pub fn soak_jobs(count: u64, seed: u64) -> Vec<JobSpec> {
    let mut rng = peakperf_kernels::rng::Rng::seed_from_u64(seed ^ 0x5EED_50AC);
    let seeds = SeedSpec::all();
    (0..count)
        .map(|i| {
            let id = format!("soak-{i:04}");
            let roll = rng.gen_below(100);
            match roll {
                // Hostile mutants are the bulk of the traffic.
                0..=54 => {
                    let generation = if rng.gen_bool() {
                        Generation::Fermi
                    } else {
                        Generation::Kepler
                    };
                    let seed_spec = seeds[rng.gen_range_usize(0, seeds.len())];
                    JobSpec {
                        deadline_ms: Some(30_000),
                        ..JobSpec::new(
                            id,
                            JobKind::Fault {
                                case: FuzzCase {
                                    generation,
                                    seed: seed_spec,
                                    mutation_seed: rng.next_u64(),
                                },
                            },
                        )
                    }
                }
                // Flaky jobs: some recover within their retry budget,
                // some exhaust it and fail terminally.
                55..=69 => JobSpec {
                    max_retries: rng.gen_range_u32(0, 4),
                    ..JobSpec::new(
                        id,
                        JobKind::Flaky {
                            fail_attempts: rng.gen_range_u32(1, 4),
                        },
                    )
                },
                70..=79 => JobSpec::new(id, JobKind::Panic),
                // Deadline-doomed spins: must come back as `deadline`.
                80..=89 => JobSpec {
                    deadline_ms: Some(rng.gen_below(41) + 20),
                    ..JobSpec::new(id, JobKind::Spin)
                },
                // Cycle-triggered spins: must come back as `cancelled`.
                90..=94 => JobSpec {
                    cancel_at_cycle: Some(rng.gen_below(100_000) + 1),
                    deadline_ms: Some(30_000),
                    ..JobSpec::new(id, JobKind::Spin)
                },
                // Well-behaved profile work sharing the pool.
                _ => JobSpec {
                    deadline_ms: Some(60_000),
                    ..JobSpec::new(
                        id,
                        JobKind::Profile {
                            target: if rng.gen_bool() {
                                "fermi_ffma".to_owned()
                            } else {
                                "table2_ffma".to_owned()
                            },
                        },
                    )
                },
            }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Documents and rendering
// ---------------------------------------------------------------------------

/// The `peakperf-service-v1` summary document for one `reproduce serve`
/// run (validated by `scripts/check_trace_schema.py --service`).
///
/// When a perfmon snapshot is supplied (`reproduce serve --metrics-out`)
/// the registry's counters are embedded as a `perfmon` section — the
/// cross-check surface for the journal's queue-wait totals
/// (`service.queue_wait_us` accumulates the same values the journal's
/// `Dequeued` events carry). `None` keeps the document byte-identical to
/// a build without perfmon.
pub fn service_document(
    workers: usize,
    queue_capacity: usize,
    health: &Health,
    results: &[JobResult],
    wall_ms: f64,
    perfmon: Option<&peakperf_sim::perfmon::MetricsSnapshot>,
) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&envelope_json("peakperf-service-v1", &PAPER_GPUS));
    let _ = writeln!(out, "  \"workers\": {workers},");
    let _ = writeln!(out, "  \"queue_capacity\": {queue_capacity},");
    let _ = writeln!(out, "  \"wall_ms\": {},", json_f64(wall_ms));
    out.push_str("  \"health\": {\n");
    let fields = [
        ("submitted", health.submitted),
        ("completed", health.completed),
        ("failed", health.failed),
        ("cancelled", health.cancelled),
        ("deadline", health.deadline),
        ("rejected", health.rejected),
        ("retried", health.retried),
        ("in_flight", health.in_flight),
        ("queue_depth", health.queue_depth),
        ("queue_depth_max", health.queue_depth_max),
    ];
    for (i, (name, value)) in fields.iter().enumerate() {
        let _ = writeln!(
            out,
            "    \"{name}\": {value}{}",
            if i + 1 < fields.len() { "," } else { "" }
        );
    }
    out.push_str("  },\n");
    if let Some(pm) = perfmon {
        let _ = writeln!(out, "  \"perfmon\": {},", pm.to_json_object("  "));
    }
    out.push_str("  \"results\": [\n");
    for (i, r) in results.iter().enumerate() {
        let _ = writeln!(
            out,
            "    {}{}",
            r.to_json_line(),
            if i + 1 < results.len() { "," } else { "" }
        );
    }
    out.push_str("  ]\n}\n");
    out
}

/// Text summary table for one serve run.
pub fn render_summary(health: &Health, results: &[JobResult], wall_ms: f64) -> String {
    let mut by_status: Vec<(&'static str, u64)> = Vec::new();
    for r in results {
        match by_status.iter_mut().find(|(s, _)| *s == r.status.as_str()) {
            Some((_, n)) => *n += 1,
            None => by_status.push((r.status.as_str(), 1)),
        }
    }
    let mut table = Table::new(
        "service jobs",
        &["id", "kind", "status", "attempts", "wall ms", "detail"],
    );
    for r in results {
        let mut detail = r.detail.lines().next().unwrap_or("").to_owned();
        if detail.len() > 60 {
            let cut = detail
                .char_indices()
                .take_while(|(i, _)| *i < 57)
                .last()
                .map_or(0, |(i, c)| i + c.len_utf8());
            detail.truncate(cut);
            detail.push_str("...");
        }
        table.row(vec![
            r.id.clone(),
            r.kind.to_owned(),
            r.status.as_str().to_owned(),
            r.attempts.to_string(),
            format!("{:.1}", r.wall_ms),
            detail,
        ]);
    }
    let mut out = table.render();
    let _ = writeln!(out, "\n{}", health.render_line());
    let _ = writeln!(
        out,
        "{} job(s) in {:.1} ms; accounting identity {}",
        results.len(),
        wall_ms,
        if health.terminal() == health.submitted && health.accounted() {
            "holds"
        } else {
            "VIOLATED"
        }
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain_results(rx: &mpsc::Receiver<JobResult>) -> Vec<JobResult> {
        rx.try_iter().collect()
    }

    fn small_service(workers: usize, cap: usize) -> (Service, mpsc::Receiver<JobResult>) {
        Service::start(ServiceConfig {
            workers,
            queue_capacity: cap,
            retry_backoff_ms: 1,
        })
    }

    #[test]
    fn flaky_job_retries_to_completion() {
        let (service, rx) = small_service(1, 8);
        service.submit(JobSpec {
            max_retries: 3,
            ..JobSpec::new("flaky", JobKind::Flaky { fail_attempts: 2 })
        });
        let health = service.drain();
        let results = drain_results(&rx);
        assert_eq!(results.len(), 1);
        assert_eq!(results[0].status, JobStatus::Completed);
        assert_eq!(results[0].attempts, 3);
        assert_eq!(health.retried, 2);
        assert_eq!(health.completed, 1);
        assert!(health.accounted());
    }

    #[test]
    fn flaky_job_exhausting_retries_fails_terminally() {
        let (service, rx) = small_service(1, 8);
        service.submit(JobSpec {
            max_retries: 1,
            ..JobSpec::new("doomed", JobKind::Flaky { fail_attempts: 5 })
        });
        service.drain();
        let results = drain_results(&rx);
        assert_eq!(results[0].status, JobStatus::Failed);
        assert_eq!(results[0].attempts, 2);
        assert!(results[0].detail.contains("flaky job failed"));
    }

    #[test]
    fn panic_job_is_isolated_and_reports_a_backtrace() {
        let (service, rx) = small_service(2, 8);
        service.submit(JobSpec::new("boom", JobKind::Panic));
        service.submit(JobSpec::new("ok", JobKind::Flaky { fail_attempts: 0 }));
        let health = service.drain();
        let results = drain_results(&rx);
        assert_eq!(results.len(), 2);
        let boom = results.iter().find(|r| r.id == "boom").unwrap();
        assert_eq!(boom.status, JobStatus::Failed);
        assert!(boom.detail.contains("forced panic job"), "{}", boom.detail);
        assert!(boom.detail.contains("backtrace:"), "{}", boom.detail);
        let ok = results.iter().find(|r| r.id == "ok").unwrap();
        assert_eq!(ok.status, JobStatus::Completed);
        assert_eq!(health.completed, 1);
        assert_eq!(health.failed, 1);
    }

    #[test]
    fn deadline_doomed_spin_reports_deadline() {
        let (service, rx) = small_service(1, 8);
        service.submit(JobSpec {
            deadline_ms: Some(20),
            ..JobSpec::new("spin", JobKind::Spin)
        });
        let health = service.drain();
        let results = drain_results(&rx);
        assert_eq!(results[0].status, JobStatus::Deadline);
        assert!(results[0].detail.contains("20 ms"), "{}", results[0].detail);
        assert_eq!(health.deadline, 1);
        assert!(health.accounted());
    }

    #[test]
    fn cycle_triggered_spin_reports_cancelled() {
        let (service, rx) = small_service(1, 8);
        service.submit(JobSpec {
            cancel_at_cycle: Some(4096),
            ..JobSpec::new("spin", JobKind::Spin)
        });
        service.drain();
        let results = drain_results(&rx);
        assert_eq!(results[0].status, JobStatus::Cancelled);
        assert!(
            results[0].detail.contains("cancelled at cycle"),
            "{}",
            results[0].detail
        );
    }

    #[test]
    fn overload_sheds_explicitly_and_accounts_for_everything() {
        // One worker, tiny queue: flood it and require
        // accepted + rejected == submitted with every job terminal.
        let (service, rx) = small_service(1, 2);
        let total = 24;
        let mut accepted = 0u64;
        let mut rejected = 0u64;
        for i in 0..total {
            let outcome = service.submit(JobSpec {
                deadline_ms: Some(15),
                ..JobSpec::new(format!("j{i}"), JobKind::Spin)
            });
            match outcome {
                SubmitOutcome::Accepted => accepted += 1,
                SubmitOutcome::Rejected { reason } => {
                    assert_eq!(reason, "overloaded");
                    rejected += 1;
                }
            }
        }
        let health = service.drain();
        let results = drain_results(&rx);
        assert_eq!(accepted + rejected, total);
        assert_eq!(results.len() as u64, total, "one result per submission");
        assert_eq!(health.submitted, total);
        assert_eq!(health.terminal(), total);
        assert!(health.queue_depth_max <= 2, "queue bound violated");
        assert_eq!(health.rejected, rejected);
        assert!(rejected > 0, "flooding a 2-slot queue must shed load");
    }

    #[test]
    fn submit_after_drain_starts_is_rejected_shutting_down() {
        let (service, rx) = small_service(1, 8);
        // Close intake via shutdown_now, then probe with a fresh submit
        // on the still-live handle path: emulate by toggling state first.
        {
            let mut state = lock(&service.shared.state);
            state.accepting = false;
        }
        let outcome = service.submit(JobSpec::new("late", JobKind::Panic));
        assert_eq!(
            outcome,
            SubmitOutcome::Rejected {
                reason: "shutting-down"
            }
        );
        let health = service.drain();
        assert_eq!(health.rejected, 1);
        assert_eq!(drain_results(&rx)[0].status, JobStatus::Rejected);
    }

    #[test]
    fn cancel_removes_queued_jobs_and_fires_inflight_tokens() {
        let (service, rx) = small_service(1, 8);
        // First job occupies the single worker long enough to cancel it;
        // the second sits in the queue.
        service.submit(JobSpec {
            deadline_ms: Some(10_000),
            ..JobSpec::new("running", JobKind::Spin)
        });
        service.submit(JobSpec::new("queued", JobKind::Panic));
        // Wait until the first job is actually in flight.
        let t0 = Instant::now();
        while !lock(&service.shared.inflight).contains_key("running") {
            assert!(t0.elapsed() < Duration::from_secs(10), "job never started");
            std::thread::sleep(Duration::from_millis(1));
        }
        assert!(service.cancel("queued"), "queued job should be cancellable");
        assert!(
            service.cancel("running"),
            "in-flight job should be cancellable"
        );
        assert!(!service.cancel("nonesuch"));
        let health = service.drain();
        let results = drain_results(&rx);
        assert_eq!(health.cancelled, 2);
        let queued = results.iter().find(|r| r.id == "queued").unwrap();
        assert_eq!(queued.status, JobStatus::Cancelled);
        assert_eq!(queued.attempts, 0);
        let running = results.iter().find(|r| r.id == "running").unwrap();
        assert_eq!(running.status, JobStatus::Cancelled);
        assert!(running.attempts >= 1);
    }

    #[test]
    fn shutdown_now_cancels_queued_and_inflight_work() {
        let (service, rx) = small_service(1, 16);
        for i in 0..4 {
            service.submit(JobSpec {
                deadline_ms: Some(10_000),
                ..JobSpec::new(format!("s{i}"), JobKind::Spin)
            });
        }
        // Let the worker pick one up.
        let t0 = Instant::now();
        while lock(&service.shared.inflight).is_empty() {
            assert!(t0.elapsed() < Duration::from_secs(10), "no job started");
            std::thread::sleep(Duration::from_millis(1));
        }
        let health = service.shutdown_now();
        let results = drain_results(&rx);
        assert_eq!(results.len(), 4);
        assert_eq!(health.terminal(), 4);
        assert!(results.iter().all(|r| r.status == JobStatus::Cancelled));
        assert!(health.accounted());
    }

    #[test]
    fn fault_mutant_jobs_complete_with_outcome_detail() {
        let (service, rx) = small_service(2, 8);
        service.submit(JobSpec::new(
            "mutant",
            JobKind::Fault {
                case: FuzzCase {
                    generation: Generation::Kepler,
                    seed: SeedSpec::parse("table2:07").unwrap(),
                    mutation_seed: 3,
                },
            },
        ));
        service.drain();
        let results = drain_results(&rx);
        assert_eq!(results[0].status, JobStatus::Completed);
        assert!(
            results[0].detail.starts_with("mutant"),
            "{}",
            results[0].detail
        );
    }

    #[test]
    fn job_line_round_trips() {
        let specs = vec![
            JobSpec {
                deadline_ms: Some(2500),
                max_retries: 2,
                ..JobSpec::new(
                    "p1",
                    JobKind::Profile {
                        target: "fermi_ffma".to_owned(),
                    },
                )
            },
            JobSpec::new(
                "f1",
                JobKind::Fault {
                    case: FuzzCase {
                        generation: Generation::Fermi,
                        seed: SeedSpec::parse("sgemm:nn").unwrap(),
                        mutation_seed: 99,
                    },
                },
            ),
            JobSpec {
                cancel_at_cycle: Some(1024),
                ..JobSpec::new("s1", JobKind::Spin)
            },
            JobSpec::new("x1", JobKind::Panic),
            JobSpec::new("fl", JobKind::Flaky { fail_attempts: 3 }),
        ];
        for spec in &specs {
            let line = spec.to_json_line();
            let back = parse_job_line(&line).unwrap_or_else(|e| panic!("{line}: {e}"));
            assert_eq!(&back, spec, "{line}");
        }
        let text = specs
            .iter()
            .map(JobSpec::to_json_line)
            .collect::<Vec<_>>()
            .join("\n");
        assert_eq!(parse_jobs_jsonl(&text).unwrap(), specs);
    }

    #[test]
    fn bad_job_lines_are_rejected_with_line_numbers() {
        for (bad, want) in [
            ("{}", "schema"),
            ("{\"schema\":\"peakperf-job-v1\"}", "id"),
            (
                "{\"schema\":\"peakperf-job-v1\",\"id\":\"a\",\"kind\":\"nope\"}",
                "unknown job kind",
            ),
            (
                "{\"schema\":\"peakperf-job-v1\",\"id\":\"a\",\"kind\":\"profile\"}",
                "target",
            ),
            (
                "{\"schema\":\"peakperf-job-v1\",\"id\":\"a\",\"kind\":\"fault\",\"seed\":\"zzz\"}",
                "seed spec",
            ),
            (
                "{\"schema\":\"peakperf-job-v1\",\"id\":\"a\",\"kind\":\"spin\",\"deadline_ms\":-3}",
                "deadline_ms",
            ),
        ] {
            let err = parse_job_line(bad).unwrap_err();
            assert!(err.contains(want), "`{bad}` -> `{err}`");
        }
        let err = parse_jobs_jsonl("\n{}\n").unwrap_err();
        assert!(err.starts_with("jobs line 2:"), "{err}");
    }

    #[test]
    fn service_document_is_balanced_and_accounted() {
        let (service, rx) = small_service(2, 8);
        service.submit(JobSpec::new("a", JobKind::Flaky { fail_attempts: 0 }));
        service.submit(JobSpec::new("b", JobKind::Panic));
        let health = service.drain();
        let results = drain_results(&rx);
        let doc = service_document(2, 8, &health, &results, 12.5, None);
        assert_eq!(doc.matches('{').count(), doc.matches('}').count());
        let parsed = Json::parse(&doc).unwrap();
        assert_eq!(
            parsed.get("schema").and_then(Json::as_str),
            Some("peakperf-service-v1")
        );
        let h = parsed.get("health").unwrap();
        let n = |k: &str| h.get(k).and_then(Json::as_f64).unwrap() as u64;
        assert_eq!(
            n("completed") + n("failed") + n("cancelled") + n("deadline") + n("rejected"),
            n("submitted")
        );
        assert_eq!(parsed.get("results").unwrap().as_arr().unwrap().len(), 2);
        let summary = render_summary(&health, &results, 12.5);
        assert!(summary.contains("identity holds"), "{summary}");
    }

    #[test]
    fn journal_records_gap_free_chains_matching_health() {
        let journal = Arc::new(Journal::full(None));
        let (service, rx) = Service::start_with_journal(
            ServiceConfig {
                workers: 2,
                queue_capacity: 8,
                retry_backoff_ms: 1,
            },
            Some(Arc::clone(&journal)),
        );
        service.submit(JobSpec {
            max_retries: 2,
            ..JobSpec::new("flaky", JobKind::Flaky { fail_attempts: 1 })
        });
        service.submit(JobSpec::new("boom", JobKind::Panic));
        service.submit(JobSpec {
            cancel_at_cycle: Some(2048),
            deadline_ms: Some(30_000),
            ..JobSpec::new("spin", JobKind::Spin)
        });
        let health = service.drain();
        let results = drain_results(&rx);
        assert_eq!(results.len(), 3);
        assert_eq!(
            journal.check_invariants(Some(&health)),
            Vec::<String>::new()
        );
        assert!(journal.derived().identity_holds());

        let flaky = journal.spans_for("flaky");
        assert_eq!(flaky[0].kind.type_name(), "submitted");
        assert!(flaky.iter().any(|e| e.kind.type_name() == "attempt_failed"));
        assert_eq!(flaky.last().unwrap().kind.type_name(), "terminal");

        // The cycle-cancelled spin names its trigger path, both in the
        // journal and on the result line.
        let spin = journal.spans_for("spin");
        assert!(spin.iter().any(|e| matches!(
            e.kind,
            EventKind::CancelRequested {
                source: CancelSource::Cycle
            }
        )));
        let spin_result = results.iter().find(|r| r.id == "spin").unwrap();
        assert_eq!(spin_result.cancel_source, Some(CancelSource::Cycle));
        assert!(spin_result
            .to_json_line()
            .contains("\"cancel_source\":\"cycle\""));

        // Every executed job carries its latency fields.
        assert!(results
            .iter()
            .all(|r| r.queue_wait_us.is_some() && r.attempts_wall_us.is_some()));
    }

    #[test]
    fn rejected_jobs_have_no_latency_fields_and_close_their_chains() {
        let journal = Arc::new(Journal::full(None));
        let (service, rx) = Service::start_with_journal(
            ServiceConfig {
                workers: 1,
                queue_capacity: 1,
                retry_backoff_ms: 1,
            },
            Some(Arc::clone(&journal)),
        );
        // Hold the single worker, fill the 1-slot queue, then overflow.
        service.submit(JobSpec {
            deadline_ms: Some(10_000),
            ..JobSpec::new("hold", JobKind::Spin)
        });
        let t0 = Instant::now();
        while !lock(&service.shared.inflight).contains_key("hold") {
            assert!(t0.elapsed() < Duration::from_secs(10), "job never started");
            std::thread::sleep(Duration::from_millis(1));
        }
        service.submit(JobSpec::new("fill", JobKind::Flaky { fail_attempts: 0 }));
        let outcome = service.submit(JobSpec::new("shed", JobKind::Panic));
        assert_eq!(
            outcome,
            SubmitOutcome::Rejected {
                reason: "overloaded"
            }
        );
        assert!(service.cancel("hold"));
        let health = service.drain();
        let results = drain_results(&rx);
        assert_eq!(
            journal.check_invariants(Some(&health)),
            Vec::<String>::new()
        );
        let shed = results.iter().find(|r| r.id == "shed").unwrap();
        assert_eq!(shed.queue_wait_us, None);
        assert_eq!(shed.attempts_wall_us, None);
        assert!(!shed.to_json_line().contains("queue_wait_us"));
        let chain: Vec<&'static str> = journal
            .spans_for("shed")
            .iter()
            .map(|e| e.kind.type_name())
            .collect();
        assert_eq!(chain, ["submitted", "rejected", "terminal"]);
        let hold = results.iter().find(|r| r.id == "hold").unwrap();
        assert_eq!(hold.status, JobStatus::Cancelled);
        assert_eq!(hold.cancel_source, Some(CancelSource::Api));
    }

    #[test]
    fn sampler_emits_health_snapshots_and_a_final_sample() {
        let journal = Arc::new(Journal::full(Some(Duration::from_millis(5))));
        let (service, rx) = Service::start_with_journal(
            ServiceConfig {
                workers: 1,
                queue_capacity: 8,
                retry_backoff_ms: 1,
            },
            Some(Arc::clone(&journal)),
        );
        service.submit(JobSpec::new("a", JobKind::Flaky { fail_attempts: 0 }));
        let health = service.drain();
        drain_results(&rx);
        // The sampler records one final snapshot on stop, so at least one
        // exists no matter how fast the drain was.
        let snapshots: Vec<Health> = journal
            .events()
            .iter()
            .filter_map(|e| match e.kind {
                EventKind::HealthSnapshot { health } => Some(health),
                _ => None,
            })
            .collect();
        assert!(!snapshots.is_empty(), "final sample must exist");
        let last = snapshots.last().unwrap();
        assert_eq!(last.completed, health.completed);
        assert_eq!(
            journal.check_invariants(Some(&health)),
            Vec::<String>::new()
        );
    }

    #[test]
    fn shutdown_tags_cancellations_with_the_shutdown_source() {
        let journal = Arc::new(Journal::full(None));
        let (service, rx) = Service::start_with_journal(
            ServiceConfig {
                workers: 1,
                queue_capacity: 16,
                retry_backoff_ms: 1,
            },
            Some(Arc::clone(&journal)),
        );
        for i in 0..3 {
            service.submit(JobSpec {
                deadline_ms: Some(10_000),
                ..JobSpec::new(format!("s{i}"), JobKind::Spin)
            });
        }
        let t0 = Instant::now();
        while lock(&service.shared.inflight).is_empty() {
            assert!(t0.elapsed() < Duration::from_secs(10), "no job started");
            std::thread::sleep(Duration::from_millis(1));
        }
        let health = service.shutdown_now();
        let results = drain_results(&rx);
        assert_eq!(
            journal.check_invariants(Some(&health)),
            Vec::<String>::new()
        );
        assert!(results
            .iter()
            .all(|r| r.cancel_source == Some(CancelSource::Shutdown)));
    }

    #[test]
    fn soak_mix_is_deterministic_and_covers_every_kind() {
        let a = soak_jobs(200, 42);
        let b = soak_jobs(200, 42);
        assert_eq!(a, b, "same seed must generate the same jobs");
        assert_ne!(a, soak_jobs(200, 43), "different seed, different mix");
        for kind in ["profile", "fault", "spin", "panic", "flaky"] {
            assert!(
                a.iter().any(|j| j.kind.name() == kind),
                "200-job soak should include a {kind} job"
            );
        }
        // The deterministic cancellation and deadline paths must both be
        // represented, or the soak proves less than it claims.
        assert!(a
            .iter()
            .any(|j| j.kind == JobKind::Spin && j.cancel_at_cycle.is_some()));
        assert!(a.iter().any(|j| j.kind == JobKind::Spin
            && j.deadline_ms.is_some_and(|ms| ms < 100)
            && j.cancel_at_cycle.is_none()));
    }
}
