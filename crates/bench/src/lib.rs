//! The benchmark harness: regenerates every table and figure of the paper.
//!
//! Each experiment in [`experiments`] produces the same rows/series the
//! paper reports, printed next to the paper's reference values. The
//! `reproduce` binary exposes them as subcommands; the benches under
//! `benches/` (driven by the in-repo [`harness`]) exercise the same entry
//! points.

pub mod exec;
pub mod experiments;
pub mod fault;
pub mod harness;
pub mod hostprof;
pub mod json;
pub mod perf;
pub mod profiling;
pub mod report;
pub mod service;
pub mod telemetry;
