//! Regenerate the paper's tables and figures on the simulator.
//!
//! ```text
//! reproduce [options] <experiment>...
//! reproduce all            # everything (quick mode unless --full)
//! reproduce profile <target>... [--trace-out <path>] [--profile-out <path>]
//! reproduce fuzz [--seed <n>] [--iters <n>] [--gpu <gen>]...
//!                [--corpus-dir <path>] [--replay <dir>]
//! reproduce bench [--json <path>] [--compare <baseline.json>]
//!                 [--compare-out <path>] [--wall-band <f>] [--acc-band <f>]
//!                 [--filter <prefix>]
//! reproduce hostprof <target>... [--json <path>]
//! reproduce serve [--jobs <file.jsonl>] [--soak <n>] [--seed <n>]
//!                 [--queue-cap <n>] [--results <path.jsonl>] [--json <path>]
//!                 [--journal-out <path>] [--trace-out <path>]
//!                 [--snapshot-ms <n>]
//!
//! options:
//!   --full               simulate the full problem sizes
//!   --quick              thin the size grids (default)
//!   --workers <n>        worker threads (default: autodetect, or
//!                        PEAKPERF_WORKERS)
//!   --no-cache           disable the in-memory timing cache
//!   --cache-dir <path>   persist timing-cache entries under <path>
//!   --json <path>        write a machine-readable run report to <path>
//!   --metrics-out <path> enable the perfmon registry and dump it as a
//!                        peakperf-metrics-v1 document alongside the
//!                        primary output (any subcommand)
//!
//! profile options:
//!   --trace-out <path>   write a Chrome trace-event JSON (Perfetto /
//!                        chrome://tracing) for the single profiled target
//!   --profile-out <path> write the peakperf-profile-v1 JSON document
//!
//! fuzz options:
//!   --seed <n>           campaign master seed (default 1)
//!   --iters <n>          number of mutants (default 500)
//!   --gpu <gen>          fermi|kepler|gt200, repeatable (default both
//!                        paper GPUs: fermi and kepler)
//!   --corpus-dir <path>  write minimized violations as .case files
//!   --replay <dir>       replay a corpus directory instead of fuzzing
//!
//! bench options:
//!   --json <path>        write the peakperf-bench-v1 telemetry document
//!   --compare <path>     diff against a baseline document; the exit code
//!                        fails on any gated regression (accuracy drift in
//!                        either direction, wall time beyond the noise
//!                        band, lost rows)
//!   --compare-out <path> write the peakperf-bench-compare-v1 diff
//!   --wall-band <f>      relative wall-time noise band (default 0.30;
//!                        CI uses a much wider band)
//!   --acc-band <f>       accuracy drift band in percentage points of
//!                        model error (default 0.5)
//!   --filter <prefix>    run only suite rows whose id starts with
//!                        <prefix> (e.g. `table2/` or `sgemm/gtx680`)
//!
//! hostprof options:
//!   --json <path>        write the peakperf-hostprof-v1 document (host
//!                        wall-time attribution, idle-run histograms, and
//!                        the projected simulator speedup per target)
//!
//! serve options:
//!   --jobs <file.jsonl>  submit one peakperf-job-v1 object per line; any
//!                        failed or rejected job from the file fails the
//!                        exit code
//!   --soak <n>           append n chaos-soak jobs (hostile mutants,
//!                        panics, deadline-doomed spins, ...); their
//!                        individual failures are expected and do not
//!                        fail the run — only a broken resilience
//!                        invariant does
//!   --seed <n>           soak mix seed (default 1)
//!   --queue-cap <n>      bounded queue capacity; submissions beyond it
//!                        are shed as `rejected` (default 256)
//!   --results <path>     write one peakperf-job-result-v1 line per job
//!   --json <path>        write the peakperf-service-v1 summary document
//!   --journal-out <path> record every job-lifecycle event and write the
//!                        peakperf-servicetrace-v1 journal document
//!   --trace-out <path>   write the journal as Chrome trace-event JSON
//!                        (Perfetto): one track per worker, queue depth
//!                        as a counter track
//!   --snapshot-ms <n>    health time-series snapshot interval for the
//!                        journal (default 100; 0 disables snapshots)
//! ```
//!
//! `serve` always arms a bounded flight-recorder ring even without
//! `--journal-out`: when a resilience invariant fails, the last events
//! are dumped as a servicetrace document and the error message points at
//! the dump.
//!
//! Experiment names are validated up front; a failing (or panicking)
//! experiment is reported and the remaining ones still run, with the exit
//! code reflecting whether any failed.

use std::process::ExitCode;
use std::time::Instant;

use peakperf_arch::Generation;
use peakperf_bench::exec;
use peakperf_bench::experiments::{self, Speed};
use peakperf_bench::fault;
use peakperf_bench::hostprof;
use peakperf_bench::json::Json;
use peakperf_bench::perf::{PerfSpan, RunReport};
use peakperf_bench::profiling;
use peakperf_bench::service;
use peakperf_bench::telemetry;

fn usage() -> ExitCode {
    eprintln!(
        "usage: reproduce [--full|--quick] [--workers <n>] [--no-cache] \
         [--cache-dir <path>] [--json <path>] [--metrics-out <path>] <experiment>...\n\
         \x20      reproduce profile [--trace-out <path>] [--profile-out <path>] \
         [--json <path>] <target>...\n\
         \x20      reproduce fuzz [--seed <n>] [--iters <n>] [--gpu <gen>]... \
         [--corpus-dir <path>] [--replay <dir>] [--json <path>]\n\
         \x20      reproduce bench [--json <path>] [--compare <baseline.json>] \
         [--compare-out <path>] [--wall-band <f>] [--acc-band <f>] [--filter <prefix>]\n\
         \x20      reproduce hostprof [--json <path>] <target>...\n\
         \x20      reproduce serve [--jobs <file.jsonl>] [--soak <n>] [--seed <n>] \
         [--queue-cap <n>] [--results <path.jsonl>] [--json <path>] \
         [--journal-out <path>] [--trace-out <path>] [--snapshot-ms <n>]\n\
         experiments: {} all\n\
         profile targets: {}",
        ALL.join(" "),
        profiling::TARGETS
            .iter()
            .map(|t| t.name)
            .collect::<Vec<_>>()
            .join(" ")
    );
    ExitCode::FAILURE
}

fn run_one(name: &str, speed: Speed) -> Result<String, String> {
    let out = match name {
        "table1" => experiments::table1(),
        "table2" => experiments::table2().map_err(|e| e.to_string())?,
        "fig2" => experiments::fig2(speed).map_err(|e| e.to_string())?,
        "fig3" => experiments::fig3(),
        "fig4" => experiments::fig4(speed).map_err(|e| e.to_string())?,
        "fig5" => experiments::fig5(speed).map_err(|e| e.to_string())?,
        "fig6" => experiments::fig6(speed).map_err(|e| e.to_string())?,
        "fig7" => experiments::fig7(speed).map_err(|e| e.to_string())?,
        "fig8" => experiments::fig8().map_err(|e| e.to_string())?,
        "fig9" => experiments::fig9().map_err(|e| e.to_string())?,
        "upperbound" => experiments::upperbound(),
        "ablation" => experiments::ablation(),
        "optimizer" => experiments::optimizer(speed).map_err(|e| e.to_string())?,
        "throughputdb" => experiments::throughput_db().map_err(|e| e.to_string())?,
        "achieved" => experiments::achieved(speed).map_err(|e| e.to_string())?,
        other => return Err(format!("unknown experiment `{other}`")),
    };
    Ok(out)
}

const ALL: [&str; 15] = [
    "table1",
    "table2",
    "fig2",
    "fig3",
    "fig4",
    "upperbound",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "achieved",
    "ablation",
    "optimizer",
    "throughputdb",
];

struct Options {
    speed: Speed,
    names: Vec<String>,
    json_path: Option<String>,
    cache_dir: Option<String>,
    use_cache: bool,
    profile_mode: bool,
    trace_out: Option<String>,
    profile_out: Option<String>,
    fuzz_mode: bool,
    fuzz_seed: u64,
    fuzz_iters: u64,
    fuzz_gpus: Vec<Generation>,
    corpus_dir: Option<String>,
    replay_dir: Option<String>,
    bench_mode: bool,
    compare: Option<String>,
    compare_out: Option<String>,
    bench_filter: Option<String>,
    compare_config: telemetry::CompareConfig,
    hostprof_mode: bool,
    serve_mode: bool,
    jobs_path: Option<String>,
    soak: Option<u64>,
    queue_cap: Option<usize>,
    results_path: Option<String>,
    journal_out: Option<String>,
    snapshot_ms: Option<u64>,
    metrics_out: Option<String>,
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        speed: Speed::Quick,
        names: Vec::new(),
        json_path: None,
        cache_dir: None,
        use_cache: true,
        profile_mode: false,
        trace_out: None,
        profile_out: None,
        fuzz_mode: false,
        fuzz_seed: 1,
        fuzz_iters: 500,
        fuzz_gpus: Vec::new(),
        corpus_dir: None,
        replay_dir: None,
        bench_mode: false,
        compare: None,
        compare_out: None,
        bench_filter: None,
        compare_config: telemetry::CompareConfig::default(),
        hostprof_mode: false,
        serve_mode: false,
        jobs_path: None,
        soak: None,
        queue_cap: None,
        results_path: None,
        journal_out: None,
        snapshot_ms: None,
        metrics_out: None,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--full" => opts.speed = Speed::Full,
            "--quick" => opts.speed = Speed::Quick,
            "--no-cache" => opts.use_cache = false,
            "--workers" => {
                let v = it.next().ok_or("--workers needs a value")?;
                let n: usize = v
                    .parse()
                    .ok()
                    .filter(|&n| n > 0)
                    .ok_or_else(|| format!("invalid worker count `{v}`"))?;
                exec::set_default_workers(n);
            }
            "--cache-dir" => {
                let v = it.next().ok_or("--cache-dir needs a value")?;
                opts.cache_dir = Some(v.clone());
            }
            "--json" => {
                let v = it.next().ok_or("--json needs a value")?;
                opts.json_path = Some(v.clone());
            }
            "--metrics-out" => {
                let v = it.next().ok_or("--metrics-out needs a value")?;
                opts.metrics_out = Some(v.clone());
            }
            "--trace-out" => {
                let v = it.next().ok_or("--trace-out needs a value")?;
                opts.trace_out = Some(v.clone());
            }
            "--profile-out" => {
                let v = it.next().ok_or("--profile-out needs a value")?;
                opts.profile_out = Some(v.clone());
            }
            "--seed" => {
                let v = it.next().ok_or("--seed needs a value")?;
                opts.fuzz_seed = v.parse().map_err(|_| format!("invalid seed `{v}`"))?;
            }
            "--iters" => {
                let v = it.next().ok_or("--iters needs a value")?;
                opts.fuzz_iters = v
                    .parse()
                    .ok()
                    .filter(|&n: &u64| n > 0)
                    .ok_or_else(|| format!("invalid iteration count `{v}`"))?;
            }
            "--gpu" => {
                let v = it.next().ok_or("--gpu needs a value")?;
                let gen = match v.as_str() {
                    "gt200" => Generation::Gt200,
                    "fermi" => Generation::Fermi,
                    "kepler" => Generation::Kepler,
                    other => return Err(format!("unknown gpu `{other}`")),
                };
                if !opts.fuzz_gpus.contains(&gen) {
                    opts.fuzz_gpus.push(gen);
                }
            }
            "--corpus-dir" => {
                let v = it.next().ok_or("--corpus-dir needs a value")?;
                opts.corpus_dir = Some(v.clone());
            }
            "--replay" => {
                let v = it.next().ok_or("--replay needs a value")?;
                opts.replay_dir = Some(v.clone());
            }
            "--jobs" => {
                let v = it.next().ok_or("--jobs needs a value")?;
                opts.jobs_path = Some(v.clone());
            }
            "--soak" => {
                let v = it.next().ok_or("--soak needs a value")?;
                opts.soak = Some(
                    v.parse()
                        .ok()
                        .filter(|&n: &u64| n > 0)
                        .ok_or_else(|| format!("invalid soak count `{v}`"))?,
                );
            }
            "--queue-cap" => {
                let v = it.next().ok_or("--queue-cap needs a value")?;
                opts.queue_cap = Some(
                    v.parse()
                        .ok()
                        .filter(|&n: &usize| n > 0)
                        .ok_or_else(|| format!("invalid queue capacity `{v}`"))?,
                );
            }
            "--results" => {
                let v = it.next().ok_or("--results needs a value")?;
                opts.results_path = Some(v.clone());
            }
            "--journal-out" => {
                let v = it.next().ok_or("--journal-out needs a value")?;
                opts.journal_out = Some(v.clone());
            }
            "--snapshot-ms" => {
                let v = it.next().ok_or("--snapshot-ms needs a value")?;
                opts.snapshot_ms = Some(
                    v.parse()
                        .map_err(|_| format!("invalid snapshot interval `{v}`"))?,
                );
            }
            "--compare" => {
                let v = it.next().ok_or("--compare needs a value")?;
                opts.compare = Some(v.clone());
            }
            "--compare-out" => {
                let v = it.next().ok_or("--compare-out needs a value")?;
                opts.compare_out = Some(v.clone());
            }
            "--filter" => {
                let v = it.next().ok_or("--filter needs a value")?;
                opts.bench_filter = Some(v.clone());
            }
            "--wall-band" => {
                let v = it.next().ok_or("--wall-band needs a value")?;
                opts.compare_config.wall_band = v
                    .parse()
                    .ok()
                    .filter(|b: &f64| b.is_finite() && *b >= 0.0)
                    .ok_or_else(|| format!("invalid wall band `{v}`"))?;
            }
            "--acc-band" => {
                let v = it.next().ok_or("--acc-band needs a value")?;
                opts.compare_config.acc_band = v
                    .parse()
                    .ok()
                    .filter(|b: &f64| b.is_finite() && *b >= 0.0)
                    .ok_or_else(|| format!("invalid accuracy band `{v}`"))?;
            }
            "-h" | "--help" => return Err(String::new()),
            other if other.starts_with('-') => {
                return Err(format!("unknown option `{other}`"));
            }
            "profile"
                if opts.names.is_empty()
                    && !opts.profile_mode
                    && !opts.fuzz_mode
                    && !opts.hostprof_mode
                    && !opts.serve_mode =>
            {
                opts.profile_mode = true;
            }
            "fuzz"
                if opts.names.is_empty()
                    && !opts.profile_mode
                    && !opts.fuzz_mode
                    && !opts.hostprof_mode
                    && !opts.serve_mode =>
            {
                opts.fuzz_mode = true;
            }
            "bench"
                if opts.names.is_empty()
                    && !opts.profile_mode
                    && !opts.fuzz_mode
                    && !opts.bench_mode
                    && !opts.hostprof_mode
                    && !opts.serve_mode =>
            {
                opts.bench_mode = true;
            }
            "hostprof"
                if opts.names.is_empty()
                    && !opts.profile_mode
                    && !opts.fuzz_mode
                    && !opts.bench_mode
                    && !opts.hostprof_mode
                    && !opts.serve_mode =>
            {
                opts.hostprof_mode = true;
            }
            "serve"
                if opts.names.is_empty()
                    && !opts.profile_mode
                    && !opts.fuzz_mode
                    && !opts.bench_mode
                    && !opts.hostprof_mode
                    && !opts.serve_mode =>
            {
                opts.serve_mode = true;
            }
            other => opts.names.push(other.to_owned()),
        }
    }
    if opts.bench_mode {
        if !opts.names.is_empty() {
            return Err(format!(
                "bench takes no positional arguments (got {}); \
                 use --filter <prefix> to select rows",
                opts.names.join(", ")
            ));
        }
        return Ok(opts);
    }
    if opts.compare.is_some() || opts.compare_out.is_some() || opts.bench_filter.is_some() {
        return Err("--compare/--compare-out/--filter require the `bench` subcommand".to_owned());
    }
    if opts.serve_mode {
        if !opts.names.is_empty() {
            return Err(format!(
                "serve takes no positional arguments (got {})",
                opts.names.join(", ")
            ));
        }
        if opts.jobs_path.is_none() && opts.soak.is_none() {
            return Err("serve needs --jobs <file.jsonl> and/or --soak <n>".to_owned());
        }
        return Ok(opts);
    }
    if opts.jobs_path.is_some()
        || opts.soak.is_some()
        || opts.queue_cap.is_some()
        || opts.results_path.is_some()
        || opts.journal_out.is_some()
        || opts.snapshot_ms.is_some()
    {
        return Err(
            "--jobs/--soak/--queue-cap/--results/--journal-out/--snapshot-ms \
             require the `serve` subcommand"
                .to_owned(),
        );
    }
    if opts.fuzz_mode {
        if !opts.names.is_empty() {
            return Err(format!(
                "fuzz takes no positional arguments (got {})",
                opts.names.join(", ")
            ));
        }
        if opts.fuzz_gpus.is_empty() {
            opts.fuzz_gpus = vec![Generation::Fermi, Generation::Kepler];
        }
        return Ok(opts);
    }
    if opts.corpus_dir.is_some() || opts.replay_dir.is_some() {
        return Err("--corpus-dir/--replay require the `fuzz` subcommand".to_owned());
    }
    if opts.hostprof_mode {
        if opts.trace_out.is_some() || opts.profile_out.is_some() {
            return Err("--trace-out/--profile-out require the `profile` subcommand".to_owned());
        }
        let known: Vec<&str> = profiling::TARGETS.iter().map(|t| t.name).collect();
        if opts.names.is_empty() {
            return Err(format!(
                "hostprof needs at least one target; known: {}",
                known.join(" ")
            ));
        }
        let unknown: Vec<&str> = opts
            .names
            .iter()
            .map(String::as_str)
            .filter(|n| !known.contains(n))
            .collect();
        if !unknown.is_empty() {
            return Err(format!(
                "unknown hostprof target{} {}; known: {}",
                if unknown.len() > 1 { "s" } else { "" },
                unknown.join(", "),
                known.join(" ")
            ));
        }
        return Ok(opts);
    }
    if opts.profile_mode {
        let known: Vec<&str> = profiling::TARGETS.iter().map(|t| t.name).collect();
        if opts.names.is_empty() {
            return Err(format!(
                "profile needs at least one target; known: {}",
                known.join(" ")
            ));
        }
        let unknown: Vec<&str> = opts
            .names
            .iter()
            .map(String::as_str)
            .filter(|n| !known.contains(n))
            .collect();
        if !unknown.is_empty() {
            return Err(format!(
                "unknown profile target{} {}; known: {}",
                if unknown.len() > 1 { "s" } else { "" },
                unknown.join(", "),
                known.join(" ")
            ));
        }
        if opts.trace_out.is_some() && opts.names.len() != 1 {
            return Err("--trace-out profiles exactly one target".to_owned());
        }
        return Ok(opts);
    }
    if opts.trace_out.is_some() || opts.profile_out.is_some() {
        return Err("--trace-out/--profile-out require the `profile` subcommand".to_owned());
    }
    if opts.names.iter().any(|n| n == "all") {
        opts.names = ALL.iter().map(|s| (*s).to_owned()).collect();
    }
    // Validate every experiment name up front, so a typo at position 5
    // does not cost four experiments of simulation first.
    let unknown: Vec<&str> = opts
        .names
        .iter()
        .map(String::as_str)
        .filter(|n| !ALL.contains(n))
        .collect();
    if !unknown.is_empty() {
        return Err(format!(
            "unknown experiment{} {}; known: {} all",
            if unknown.len() > 1 { "s" } else { "" },
            unknown.join(", "),
            ALL.join(" ")
        ));
    }
    Ok(opts)
}

/// Run the `profile` subcommand: each target simulates under the tracer,
/// prints its gap decomposition + profile, and contributes a
/// `peakperf-profile-v1` object to `--profile-out` / `--json`.
fn run_profiles(opts: &Options, report: &mut RunReport) -> u32 {
    let mut failures = 0u32;
    let mut profile_jsons: Vec<String> = Vec::new();
    let mut profile_gpus: Vec<&'static str> = Vec::new();
    for name in &opts.names {
        let span = PerfSpan::begin();
        let want_trace = opts.trace_out.is_some();
        // Panic boundary: a crashing profile target becomes a failed
        // entry in the report instead of tearing down the whole run.
        let outcome = exec::run_isolated(|| {
            profiling::run_target(name, want_trace).map_err(|e| e.to_string())
        });
        match &outcome {
            Ok(out) => {
                println!("{}", out.text);
                profile_jsons.push(out.json.clone());
                if !profile_gpus.contains(&out.gpu) {
                    profile_gpus.push(out.gpu);
                }
                if let (Some(path), Some(chrome)) = (&opts.trace_out, &out.chrome) {
                    if let Err(e) = std::fs::write(path, chrome) {
                        eprintln!("error: could not write trace to {path}: {e}");
                        failures += 1;
                    } else {
                        eprintln!("[trace written to {path}]");
                    }
                }
            }
            Err(e) => {
                eprintln!("error in profile {name}: {e}");
                failures += 1;
            }
        }
        let perf = span.finish(&format!("profile:{name}"), outcome.map(|_| ()));
        eprintln!(
            "[profile:{name} {} in {:.1?}]",
            if perf.ok { "done" } else { "FAILED" },
            perf.wall
        );
        report.experiments.push(perf);
    }
    if let Some(path) = &opts.profile_out {
        let doc = profiling::profile_document(&profile_jsons, &profile_gpus);
        if let Err(e) = std::fs::write(path, doc) {
            eprintln!("error: could not write profile document to {path}: {e}");
            failures += 1;
        } else {
            eprintln!("[profile document written to {path}]");
        }
    }
    report.profiles = profile_jsons;
    failures
}

/// Run the `fuzz` subcommand: a differential fuzz campaign (or a corpus
/// replay with `--replay`), with minimized violations optionally written
/// to `--corpus-dir` and a `peakperf-fuzz-v1` summary to `--json`.
fn run_fuzz(opts: &Options) -> ExitCode {
    if let Some(dir) = &opts.replay_dir {
        let dir = std::path::Path::new(dir);
        return match fault::replay_corpus(dir) {
            Ok(entries) => {
                let mut failures = 0u32;
                for (path, violation) in &entries {
                    match violation {
                        None => println!("replay ok      {}", path.display()),
                        Some(v) => {
                            println!(
                                "replay VIOLATION {} [{}] {}",
                                path.display(),
                                v.kind.name(),
                                v.detail
                            );
                            failures += 1;
                        }
                    }
                }
                println!(
                    "{} corpus case(s), {failures} still violating",
                    entries.len()
                );
                if failures > 0 {
                    ExitCode::FAILURE
                } else {
                    ExitCode::SUCCESS
                }
            }
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        };
    }

    let cfg = fault::CampaignConfig {
        seed: opts.fuzz_seed,
        iters: opts.fuzz_iters,
        generations: opts.fuzz_gpus.clone(),
    };
    let t0 = Instant::now();
    let result = fault::run_campaign(&cfg);
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    println!("{}", fault::render_campaign(&cfg, &result));
    eprintln!(
        "[fuzz {} mutants in {:.1} ms, {} workers]",
        result.cases,
        wall_ms,
        exec::default_workers()
    );

    let mut failures = u32::try_from(result.violations.len()).unwrap_or(u32::MAX);
    if let Some(dir) = &opts.corpus_dir {
        let dir = std::path::Path::new(dir);
        for vc in &result.violations {
            match fault::write_corpus_case(dir, vc) {
                Ok(path) => eprintln!("[minimized case written to {}]", path.display()),
                Err(e) => {
                    eprintln!("error: could not write corpus case: {e}");
                    failures += 1;
                }
            }
        }
    } else if !result.violations.is_empty() {
        eprintln!("[re-run with --corpus-dir <path> to save minimized cases]");
    }
    if let Some(path) = &opts.json_path {
        if let Err(e) = std::fs::write(path, fault::campaign_json(&cfg, &result, wall_ms)) {
            eprintln!("error: could not write JSON report to {path}: {e}");
            failures += 1;
        }
    }
    if result.tally.harness_errors > 0 {
        eprintln!(
            "error: {} harness-level failure(s) during the campaign",
            result.tally.harness_errors
        );
        failures += 1;
    }
    if failures > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// Run the `hostprof` subcommand: each target simulates under a perfmon
/// probe, prints its wall-time attribution + opportunity analysis, and
/// contributes a `peakperf-hostprof-v1` object to `--json`.
fn run_hostprof(opts: &Options) -> ExitCode {
    let mut failures = 0u32;
    let mut jsons: Vec<String> = Vec::new();
    let mut gpus: Vec<&'static str> = Vec::new();
    for name in &opts.names {
        let t0 = Instant::now();
        // Panic boundary: a crashing target becomes a failure, not a
        // torn-down run.
        let outcome = exec::run_isolated(|| hostprof::run_target(name).map_err(|e| e.to_string()));
        match outcome {
            Ok(out) => {
                println!("{}", out.text);
                jsons.push(out.json);
                if !gpus.contains(&out.gpu) {
                    gpus.push(out.gpu);
                }
                eprintln!("[hostprof:{name} done in {:.1?}]", t0.elapsed());
            }
            Err(e) => {
                eprintln!("error in hostprof {name}: {e}");
                failures += 1;
            }
        }
    }
    if let Some(path) = &opts.json_path {
        let doc = hostprof::hostprof_document(&jsons, &gpus);
        if let Err(e) = std::fs::write(path, doc) {
            eprintln!("error: could not write hostprof document to {path}: {e}");
            failures += 1;
        } else {
            eprintln!("[hostprof document written to {path}]");
        }
    }
    if failures > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// Run the `serve` subcommand: feed a job file and/or a generated
/// chaos-soak mix through the resilient service core, then check the
/// resilience invariants on the way out. Soak jobs are *meant* to fail,
/// panic and blow deadlines — the run fails only when an accepted job
/// never reaches a terminal state, the accounting identity breaks, the
/// queue bound is exceeded, or a job from `--jobs` fails/is rejected.
fn run_serve(opts: &Options) -> ExitCode {
    let mut jobs: Vec<service::JobSpec> = Vec::new();
    let mut file_ids: std::collections::HashSet<String> = std::collections::HashSet::new();
    if let Some(path) = &opts.jobs_path {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("error: could not read {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        match service::parse_jobs_jsonl(&text) {
            Ok(parsed) => {
                file_ids.extend(parsed.iter().map(|j| j.id.clone()));
                jobs.extend(parsed);
            }
            Err(e) => {
                eprintln!("error: {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    if let Some(n) = opts.soak {
        jobs.extend(service::soak_jobs(n, opts.fuzz_seed));
    }
    {
        let mut seen = std::collections::HashSet::new();
        if let Some(dup) = jobs.iter().find(|j| !seen.insert(j.id.as_str())) {
            eprintln!("error: duplicate job id `{}`", dup.id);
            return ExitCode::FAILURE;
        }
    }

    let queue_capacity = opts.queue_cap.unwrap_or(256);
    let config = service::ServiceConfig {
        workers: 0,
        queue_capacity,
        ..service::ServiceConfig::default()
    };
    // The flight recorder is always armed: a full journal when the run
    // asked for one (`--journal-out`/`--trace-out`), else a bounded ring
    // whose tail is dumped if a resilience invariant fails.
    let snapshot_interval = match opts.snapshot_ms.unwrap_or(100) {
        0 => None,
        ms => Some(std::time::Duration::from_millis(ms)),
    };
    let want_full = opts.journal_out.is_some() || opts.trace_out.is_some();
    let journal = std::sync::Arc::new(if want_full {
        service::journal::Journal::full(snapshot_interval)
    } else {
        service::journal::Journal::flight_recorder(
            service::journal::DEFAULT_RING_CAPACITY,
            snapshot_interval,
        )
    });
    let (svc, rx) =
        service::Service::start_with_journal(config, Some(std::sync::Arc::clone(&journal)));
    let workers = exec::default_workers();
    let submitted = jobs.len();
    let t0 = Instant::now();
    for job in jobs {
        svc.submit(job);
    }
    let health = svc.drain();
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    let results: Vec<service::JobResult> = rx.try_iter().collect();
    println!("{}", service::render_summary(&health, &results, wall_ms));
    eprintln!("[serve: {submitted} job(s) in {wall_ms:.1} ms, {workers} workers]");

    let mut failures = 0u32;
    if let Some(path) = &opts.results_path {
        let lines = results
            .iter()
            .map(service::JobResult::to_json_line)
            .collect::<Vec<_>>()
            .join("\n")
            + "\n";
        if let Err(e) = std::fs::write(path, lines) {
            eprintln!("error: could not write results to {path}: {e}");
            failures += 1;
        } else {
            eprintln!("[results written to {path}]");
        }
    }
    if let Some(path) = &opts.json_path {
        let perfmon = peakperf_sim::perfmon::enabled().then(peakperf_sim::perfmon::snapshot);
        let doc = service::service_document(
            workers,
            queue_capacity,
            &health,
            &results,
            wall_ms,
            perfmon.as_ref(),
        );
        if let Err(e) = std::fs::write(path, doc) {
            eprintln!("error: could not write service document to {path}: {e}");
            failures += 1;
        } else {
            eprintln!("[service document written to {path}]");
        }
    }
    if let Some(path) = &opts.journal_out {
        let doc = journal.document(workers, queue_capacity, &health, wall_ms);
        if let Err(e) = std::fs::write(path, doc) {
            eprintln!("error: could not write journal to {path}: {e}");
            failures += 1;
        } else {
            eprintln!("[journal written to {path}]");
        }
    }
    if let Some(path) = &opts.trace_out {
        let trace = journal.chrome_trace(workers);
        if let Err(e) = std::fs::write(path, trace) {
            eprintln!("error: could not write chrome trace to {path}: {e}");
            failures += 1;
        } else {
            eprintln!("[chrome trace written to {path}]");
        }
    }

    // The resilience invariants: every job terminal, nothing lost,
    // nothing left queued or running, the queue bound respected.
    if results.len() != submitted {
        eprintln!(
            "error: {} result(s) for {submitted} submission(s) — a job was lost",
            results.len()
        );
        failures += 1;
    }
    if health.terminal() != health.submitted || !health.accounted() {
        eprintln!(
            "error: accounting identity violated: {}",
            health.render_line()
        );
        failures += 1;
    }
    if health.queue_depth != 0 || health.in_flight != 0 {
        eprintln!("error: drain left work behind: {}", health.render_line());
        failures += 1;
    }
    if health.queue_depth_max > queue_capacity as u64 {
        eprintln!(
            "error: queue depth peaked at {} with capacity {queue_capacity}",
            health.queue_depth_max
        );
        failures += 1;
    }
    // The journal's own invariants: gap-free span chains and the
    // accounting identity re-derived from events alone.
    for violation in journal.check_invariants(Some(&health)) {
        eprintln!("error: journal invariant violated: {violation}");
        failures += 1;
    }
    // Jobs from an explicit --jobs file are production work: failing or
    // being shed is an error (cancel/deadline are requested semantics).
    for r in results.iter().filter(|r| file_ids.contains(&r.id)) {
        if matches!(
            r.status,
            service::JobStatus::Failed | service::JobStatus::Rejected
        ) {
            eprintln!("error: job {} {}: {}", r.id, r.status.as_str(), r.detail);
            failures += 1;
        }
    }
    if failures > 0 {
        // Any failure ships with its history: dump the flight-recorder
        // ring (unless the full journal was already written above) and
        // point at it from the error message.
        if opts.journal_out.is_none() {
            let dump_path = "serve-flightrec.json";
            let doc = journal.document(workers, queue_capacity, &health, wall_ms);
            match std::fs::write(dump_path, doc) {
                Ok(()) => eprintln!(
                    "error: serve run failed; flight recorder ({} event(s)) dumped to \
                     {dump_path}",
                    journal.len()
                ),
                Err(e) => eprintln!("error: could not dump flight recorder to {dump_path}: {e}"),
            }
        } else if let Some(path) = &opts.journal_out {
            eprintln!("error: serve run failed; see the journal at {path}");
        }
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// Write the perfmon registry dump requested with `--metrics-out`;
/// returns the number of failures (0 or 1).
fn write_metrics(opts: &Options) -> u32 {
    let Some(path) = &opts.metrics_out else {
        return 0;
    };
    let doc = hostprof::metrics_document(&peakperf_bench::report::PAPER_GPUS);
    match std::fs::write(path, doc) {
        Ok(()) => {
            eprintln!("[metrics written to {path}]");
            0
        }
        Err(e) => {
            eprintln!("error: could not write metrics to {path}: {e}");
            1
        }
    }
}

/// Dump the perfmon registry (when requested) on the way out of a mode.
fn with_metrics(opts: &Options, code: ExitCode) -> ExitCode {
    if write_metrics(opts) > 0 {
        ExitCode::FAILURE
    } else {
        code
    }
}

/// Run the `bench` subcommand: the fixed telemetry suite, optionally
/// written as a `peakperf-bench-v1` document and/or gated against a
/// checked-in baseline.
fn run_bench(opts: &Options) -> ExitCode {
    let report = match telemetry::run_suite_filtered(opts.bench_filter.as_deref()) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: bench suite failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("{}", report.render_text());
    let mut failures = 0u32;
    if let Some(path) = &opts.json_path {
        if let Err(e) = std::fs::write(path, report.to_json()) {
            eprintln!("error: could not write bench document to {path}: {e}");
            failures += 1;
        } else {
            eprintln!("[bench document written to {path}]");
        }
    }
    if let Some(baseline_path) = &opts.compare {
        let comparison = std::fs::read_to_string(baseline_path)
            .map_err(|e| format!("could not read baseline {baseline_path}: {e}"))
            .and_then(|text| {
                Json::parse(&text).map_err(|e| format!("baseline {baseline_path}: {e}"))
            })
            .and_then(|baseline| telemetry::compare(&report, &baseline, opts.compare_config));
        match comparison {
            Ok(cmp) => {
                println!("{}", cmp.render_text());
                if let Some(path) = &opts.compare_out {
                    if let Err(e) = std::fs::write(path, cmp.to_json()) {
                        eprintln!("error: could not write comparison to {path}: {e}");
                        failures += 1;
                    } else {
                        eprintln!("[comparison written to {path}]");
                    }
                }
                failures += u32::try_from(cmp.failures().len()).unwrap_or(u32::MAX);
            }
            Err(e) => {
                eprintln!("error: {e}");
                failures += 1;
            }
        }
    }
    if failures > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(o) => o,
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("error: {msg}");
            }
            return usage();
        }
    };
    // `--metrics-out` opts any run into the perfmon registry; `hostprof`
    // is observability by definition, so it always records.
    if opts.metrics_out.is_some() || opts.hostprof_mode {
        peakperf_sim::perfmon::enable();
    }
    if opts.fuzz_mode {
        return with_metrics(&opts, run_fuzz(&opts));
    }
    if opts.serve_mode {
        return with_metrics(&opts, run_serve(&opts));
    }
    if opts.hostprof_mode {
        return with_metrics(&opts, run_hostprof(&opts));
    }
    if opts.bench_mode {
        if opts.use_cache {
            peakperf_sim::timing::cache::enable_global(
                opts.cache_dir.clone().map(std::path::PathBuf::from),
            );
        }
        return with_metrics(&opts, run_bench(&opts));
    }
    if opts.names.is_empty() {
        return usage();
    }
    if opts.use_cache {
        peakperf_sim::timing::cache::enable_global(
            opts.cache_dir.clone().map(std::path::PathBuf::from),
        );
    }

    let mut report = RunReport {
        workers: exec::default_workers(),
        cache_enabled: opts.use_cache,
        cache_dir: opts.cache_dir.clone(),
        experiments: Vec::new(),
        profiles: Vec::new(),
    };
    let mut failures = 0u32;
    if opts.profile_mode {
        failures += run_profiles(&opts, &mut report);
        eprintln!("{}", report.render_text());
        if let Some(path) = &opts.json_path {
            if let Err(e) = std::fs::write(path, report.to_json()) {
                eprintln!("error: could not write JSON report to {path}: {e}");
                failures += 1;
            }
        }
        let code = if failures > 0 {
            ExitCode::FAILURE
        } else {
            ExitCode::SUCCESS
        };
        return with_metrics(&opts, code);
    }
    for name in &opts.names {
        let span = PerfSpan::begin();
        // Panic boundary: a crashing experiment renders as FAILED (text
        // and --json) and flips the exit code, but the rest still run.
        let outcome = exec::run_isolated(|| run_one(name, opts.speed));
        match &outcome {
            Ok(out) => println!("{out}"),
            Err(e) => {
                // Report and keep going: one broken experiment should not
                // cost the results of the others.
                eprintln!("error in {name}: {e}");
                failures += 1;
            }
        }
        let perf = span.finish(name, outcome.map(|_| ()));
        eprintln!(
            "[{name} {} in {:.1?}]",
            if perf.ok { "done" } else { "FAILED" },
            perf.wall
        );
        report.experiments.push(perf);
    }

    eprintln!("{}", report.render_text());
    if let Some(path) = &opts.json_path {
        if let Err(e) = std::fs::write(path, report.to_json()) {
            eprintln!("error: could not write JSON report to {path}: {e}");
            failures += 1;
        }
    }
    let code = if failures > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    };
    with_metrics(&opts, code)
}
