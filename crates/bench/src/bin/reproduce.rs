//! Regenerate the paper's tables and figures on the simulator.
//!
//! ```text
//! reproduce [--full] <experiment>...
//! reproduce all            # everything (quick mode unless --full)
//! ```
//!
//! Experiments: `table1 table2 fig2 fig3 fig4 fig5 fig6 fig7 fig8 fig9
//! upperbound achieved`.

use std::process::ExitCode;

use peakperf_bench::experiments::{self, Speed};

fn usage() -> ExitCode {
    eprintln!(
        "usage: reproduce [--full] <experiment>...\n\
         experiments: table1 table2 fig2 fig3 fig4 fig5 fig6 fig7 fig8 fig9 \
         upperbound achieved ablation optimizer throughputdb all"
    );
    ExitCode::FAILURE
}

fn run_one(name: &str, speed: Speed) -> Result<String, String> {
    let out = match name {
        "table1" => experiments::table1(),
        "table2" => experiments::table2().map_err(|e| e.to_string())?,
        "fig2" => experiments::fig2(speed).map_err(|e| e.to_string())?,
        "fig3" => experiments::fig3(),
        "fig4" => experiments::fig4(speed).map_err(|e| e.to_string())?,
        "fig5" => experiments::fig5(speed).map_err(|e| e.to_string())?,
        "fig6" => experiments::fig6(speed).map_err(|e| e.to_string())?,
        "fig7" => experiments::fig7(speed).map_err(|e| e.to_string())?,
        "fig8" => experiments::fig8().map_err(|e| e.to_string())?,
        "fig9" => experiments::fig9().map_err(|e| e.to_string())?,
        "upperbound" => experiments::upperbound(),
        "ablation" => experiments::ablation(),
        "optimizer" => experiments::optimizer(speed).map_err(|e| e.to_string())?,
        "throughputdb" => experiments::throughput_db().map_err(|e| e.to_string())?,
        "achieved" => experiments::achieved(speed).map_err(|e| e.to_string())?,
        other => return Err(format!("unknown experiment `{other}`")),
    };
    Ok(out)
}

const ALL: [&str; 15] = [
    "table1",
    "table2",
    "fig2",
    "fig3",
    "fig4",
    "upperbound",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "achieved",
    "ablation",
    "optimizer",
    "throughputdb",
];

fn main() -> ExitCode {
    let mut speed = Speed::Quick;
    let mut names: Vec<String> = Vec::new();
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--full" => speed = Speed::Full,
            "--quick" => speed = Speed::Quick,
            "-h" | "--help" => return usage(),
            other => names.push(other.to_owned()),
        }
    }
    if names.is_empty() {
        return usage();
    }
    if names.iter().any(|n| n == "all") {
        names = ALL.iter().map(|s| (*s).to_owned()).collect();
    }
    for name in &names {
        let started = std::time::Instant::now();
        match run_one(name, speed) {
            Ok(out) => {
                println!("{out}");
                eprintln!("[{name} done in {:.1?}]", started.elapsed());
            }
            Err(e) => {
                eprintln!("error in {name}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
