//! `sassc` — the command-line face of the toolchain, playing the role
//! `asfermi` plays in the paper: assemble, disassemble, validate, and run
//! SASS-like kernels.
//!
//! ```text
//! sassc as  <input.sass> <output.bin> [--gen fermi|kepler]   assemble
//! sassc dis <input.bin>                                      disassemble
//! sassc run <input.sass> <kernel> [--gen g] [--blocks N] [--threads N]
//!           [--param <u32|f32:X|buf:N>]...                   assemble + run
//! ```
//!
//! Buffer parameters (`buf:N`) allocate N zeroed f32 elements; after the
//! run their first values are printed.

use std::process::ExitCode;

use peakperf_arch::Generation;
use peakperf_sass::{assemble, validate_kernel, Module};
use peakperf_sim::{Gpu, LaunchConfig};

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  sassc as  <in.sass> <out.bin> [--gen fermi|kepler]\n  \
         sassc dis <in.bin>\n  \
         sassc run <in.sass> <kernel> [--gen g] [--blocks N] [--threads N] \
         [--param u32|f32:X|buf:N]..."
    );
    ExitCode::FAILURE
}

struct RunOpts {
    generation: Generation,
    blocks: u32,
    threads: u32,
    params: Vec<ParamSpec>,
}

enum ParamSpec {
    Scalar(u32),
    Buffer(u32),
}

fn parse_param(s: &str) -> Result<ParamSpec, String> {
    if let Some(n) = s.strip_prefix("buf:") {
        return n
            .parse()
            .map(ParamSpec::Buffer)
            .map_err(|_| format!("bad buffer size `{n}`"));
    }
    if let Some(f) = s.strip_prefix("f32:") {
        return f
            .parse::<f32>()
            .map(|v| ParamSpec::Scalar(v.to_bits()))
            .map_err(|_| format!("bad f32 `{f}`"));
    }
    if let Some(hex) = s.strip_prefix("0x") {
        return u32::from_str_radix(hex, 16)
            .map(ParamSpec::Scalar)
            .map_err(|_| format!("bad hex `{s}`"));
    }
    s.parse()
        .map(ParamSpec::Scalar)
        .map_err(|_| format!("bad parameter `{s}`"))
}

fn cmd_as(input: &str, output: &str, generation: Generation) -> Result<(), String> {
    let text = std::fs::read_to_string(input).map_err(|e| format!("{input}: {e}"))?;
    let module = assemble(&text, generation).map_err(|e| e.to_string())?;
    for kernel in &module.kernels {
        validate_kernel(kernel, generation).map_err(|e| format!("{}: {e}", kernel.name))?;
        eprintln!(
            "kernel `{}`: {} instructions, {} registers, {} B shared",
            kernel.name,
            kernel.code.len(),
            kernel.num_regs,
            kernel.shared_bytes
        );
    }
    let bytes = module.to_bytes().map_err(|e| e.to_string())?;
    std::fs::write(output, &bytes).map_err(|e| format!("{output}: {e}"))?;
    eprintln!("wrote {} bytes to {output}", bytes.len());
    Ok(())
}

fn cmd_dis(input: &str) -> Result<(), String> {
    let bytes = std::fs::read(input).map_err(|e| format!("{input}: {e}"))?;
    let module = Module::from_bytes(&bytes).map_err(|e| e.to_string())?;
    print!("{module}");
    Ok(())
}

fn cmd_run(input: &str, kernel_name: &str, opts: &RunOpts) -> Result<(), String> {
    let text = std::fs::read_to_string(input).map_err(|e| format!("{input}: {e}"))?;
    let module = assemble(&text, opts.generation).map_err(|e| e.to_string())?;
    let kernel = module
        .kernel(kernel_name)
        .ok_or_else(|| format!("no kernel `{kernel_name}` in {input}"))?;

    let mut gpu = Gpu::new(opts.generation);
    let mut values = Vec::new();
    let mut buffers = Vec::new();
    for p in &opts.params {
        match p {
            ParamSpec::Scalar(v) => values.push(*v),
            ParamSpec::Buffer(n) => {
                let addr = gpu
                    .memory_mut()
                    .alloc_zeroed(n * 4)
                    .map_err(|e| e.to_string())?;
                values.push(addr);
                buffers.push((addr, *n));
            }
        }
    }
    let stats = gpu
        .launch(
            kernel,
            LaunchConfig::linear(opts.blocks, opts.threads),
            &values,
        )
        .map_err(|e| e.to_string())?;
    eprintln!(
        "ran `{kernel_name}`: {} warp instructions, {} thread instructions, {} flops",
        stats.warp_instructions, stats.thread_instructions, stats.flops
    );
    eprintln!("instruction mix:\n{}", stats.mix);
    for (i, (addr, n)) in buffers.iter().enumerate() {
        let show = (*n).min(8) as usize;
        let vals = gpu
            .memory()
            .read_f32_slice(*addr, show)
            .map_err(|e| e.to_string())?;
        println!("buffer {i} (first {show} of {n}): {vals:?}");
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        return usage();
    }
    let mut generation = Generation::Fermi;
    let mut blocks = 1u32;
    let mut threads = 32u32;
    let mut params = Vec::new();
    let mut positional: Vec<&str> = Vec::new();
    let mut it = args.iter();
    let cmd = it.next().map(String::as_str).unwrap_or("");
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--gen" => match it.next().map(String::as_str) {
                Some(g) => match g.parse() {
                    Ok(g) => generation = g,
                    Err(e) => {
                        eprintln!("{e}");
                        return ExitCode::FAILURE;
                    }
                },
                None => return usage(),
            },
            "--blocks" => match it.next().and_then(|s| s.parse().ok()) {
                Some(n) => blocks = n,
                None => return usage(),
            },
            "--threads" => match it.next().and_then(|s| s.parse().ok()) {
                Some(n) => threads = n,
                None => return usage(),
            },
            "--param" => match it.next().map(|s| parse_param(s)) {
                Some(Ok(p)) => params.push(p),
                Some(Err(e)) => {
                    eprintln!("{e}");
                    return ExitCode::FAILURE;
                }
                None => return usage(),
            },
            other => positional.push(other),
        }
    }

    let result = match (cmd, positional.as_slice()) {
        ("as", [input, output]) => cmd_as(input, output, generation),
        ("dis", [input]) => cmd_dis(input),
        ("run", [input, kernel]) => cmd_run(
            input,
            kernel,
            &RunOpts {
                generation,
                blocks,
                threads,
                params,
            },
        ),
        _ => return usage(),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
